// Figure 10 — Effects of Write Combining (paper §6.2).
//
// Throughput of a raw store stream into the fast side while sweeping the
// application write size, under Write-Combining vs Uncached MMIO mappings
// and SRAM vs DRAM CMB backing. Results are normalized to the best
// observed throughput, as in the paper.
//
// Paper shape: WC beats UC at every size; SRAM reaches its peak only at
// 64-byte writes (one full WC line per TLP); DRAM-backed CMB tops out from
// 16 bytes on (the shared DDR bus, not the link, is the ceiling).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "host/node.h"

namespace xssd {
namespace {

double RunOne(core::BackingKind backing, pcie::MmioMode mode,
              uint32_t write_size, sim::SimTime duration) {
  sim::Simulator sim;
  host::XLogClientOptions options;
  options.mmio_mode = mode;
  options.respect_ring_capacity = false;  // raw intake measurement
  host::StorageNode node(&sim, bench::PaperVillarsConfig(backing),
                         bench::PaperFabricConfig(), "bench", options);
  Status status = node.Init();
  if (!status.ok()) {
    std::fprintf(stderr, "init failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }

  // This is a pure intake-path microbenchmark (as in the paper): destaging
  // is parked with a zero barrier so the conventional side does not become
  // the measured bottleneck, and the ring-room check is moot.
  uint64_t barrier = 0;
  Status barrier_status = node.fabric().FunctionalWrite(
      host::NodeLayout::kCmbBase + core::kRegDestageBarrier,
      reinterpret_cast<const uint8_t*>(&barrier), 8);
  if (!barrier_status.ok()) std::exit(1);

  std::vector<uint8_t> chunk(write_size, 0xAB);
  uint64_t appended = 0;
  bool stop = false;

  // Issue back-to-back writes of `write_size` (each one fenced, as a log
  // append is), as fast as the flow control allows.
  std::function<void()> pump = [&]() {
    if (stop) return;
    node.client().Append(chunk.data(), chunk.size(), [&](Status s) {
      if (!s.ok()) {
        stop = true;
        return;
      }
      appended += chunk.size();
      pump();
    });
  };
  pump();

  sim.RunFor(sim::Ms(2));  // warmup
  uint64_t start_bytes = appended;
  sim::SimTime start = sim.Now();
  sim.RunFor(duration);
  double secs = sim::ToSec(sim.Now() - start);
  stop = true;
  return static_cast<double>(appended - start_bytes) / secs;
}

}  // namespace
}  // namespace xssd

int main() {
  using namespace xssd;
  // Raw-intake runs intentionally lap the ring; silence the advisory note.
  SetLogLevel(LogLevel::kError);
  const uint32_t sizes[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

  bench::PrintHeader("Figure 10: write combining vs uncached, by write size");

  for (core::BackingKind backing :
       {core::BackingKind::kSram, core::BackingKind::kDram}) {
    const char* backing_name =
        backing == core::BackingKind::kSram ? "SRAM" : "DRAM";
    double results[2][9];
    double best = 0;
    int mi = 0;
    for (pcie::MmioMode mode : {pcie::MmioMode::kWriteCombining,
                                pcie::MmioMode::kUncached}) {
      for (int si = 0; si < 9; ++si) {
        // Small writes dominate event counts; a shorter window suffices
        // for a steady-state rate.
        sim::SimTime duration =
            sizes[si] < 16
                ? sim::Ms(1)
                : (sizes[si] < 64 ? sim::Ms(4) : sim::Ms(10));
        results[mi][si] = RunOne(backing, mode, sizes[si], duration);
        best = std::max(best, results[mi][si]);
      }
      ++mi;
    }
    std::printf("\n-- %s-backed CMB (normalized to best = %.0f MB/s) --\n",
                backing_name, best / 1e6);
    std::printf("%-6s %12s %12s %10s %10s\n", "size", "WC_MB/s", "UC_MB/s",
                "WC_norm", "UC_norm");
    for (int si = 0; si < 9; ++si) {
      std::printf("%-6u %12.1f %12.1f %10.3f %10.3f\n", sizes[si],
                  results[0][si] / 1e6, results[1][si] / 1e6,
                  results[0][si] / best, results[1][si] / best);
    }
  }
  return 0;
}
