#ifndef XSSD_BENCH_BENCH_UTIL_H_
#define XSSD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcie/fabric.h"
#include "sim/simulator.h"

namespace xssd::bench {

/// Villars configuration matching the paper's prototype environment (§6):
/// PCIe Gen2 ×4 (2 GB/s) for the CMB experiments, SRAM 4 GB/s / DRAM
/// 2 GB/s shared backing, 16 KiB flash pages, ~2 GB/s flash array.
inline core::VillarsConfig PaperVillarsConfig(core::BackingKind backing) {
  core::VillarsConfig config;
  config.cmb.backing = backing;
  if (backing == core::BackingKind::kDram) {
    // 128 MiB DRAM CMB would dominate memory; 8 MiB preserves behaviour
    // (the ring never limits; bandwidth does).
    config.cmb.ring_bytes = 8ull << 20;
  }
  config.destage.ring_lba_count = 2048;
  return config;
}

inline pcie::FabricConfig PaperFabricConfig() {
  pcie::FabricConfig config;
  config.generation = 2;
  config.lanes = 4;
  return config;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// \brief Uniform bench reporting: one MetricsRegistry per bench binary,
/// exported as a JSON snapshot on exit, plus an optional Chrome trace.
///
/// Flags consumed from argv (remaining arguments are exposed through
/// positional()):
///   --metrics PATH   snapshot destination (default: <name>.metrics.json)
///   --trace PATH     record simulator events as Chrome trace_event JSON
///
/// Device counters accumulate across every run the bench performs; per-run
/// headline numbers go in as `bench.<name>.*` gauges via SetResult(), so
/// the snapshot carries both the raw device view and the figure's table.
class BenchReporter {
 public:
  BenchReporter(int argc, char** argv, const std::string& name)
      : name_(name), metrics_path_(name + ".metrics.json") {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--metrics" && i + 1 < argc) {
        metrics_path_ = argv[++i];
      } else if (arg == "--trace" && i + 1 < argc) {
        trace_path_ = argv[++i];
        trace_ = std::make_unique<obs::ChromeTraceWriter>();
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  obs::MetricsRegistry& registry() { return registry_; }
  const std::vector<std::string>& positional() const { return positional_; }

  /// Hook the trace writer (if --trace was given) into `sim`, grouping the
  /// run's events under `run_label` in the viewer.
  void AttachTrace(sim::Simulator* sim, const std::string& run_label) {
    if (!trace_) return;
    trace_->BeginProcess(run_label);
    sim->set_trace_sink(trace_.get());
  }

  /// Record one headline result as a gauge named
  /// "bench.<name>.<label>.<field>".
  void SetResult(const std::string& label, const std::string& field,
                 double value) {
    registry_.GetGauge("bench." + name_ + "." + label + "." + field)
        ->Set(value);
  }
  double Result(const std::string& label, const std::string& field) {
    return registry_.GetGauge("bench." + name_ + "." + label + "." + field)
        ->value();
  }

  /// Write the metrics snapshot (and the trace, when recording). Call once
  /// at the end of main().
  int Finish() {
    obs::JsonExporter exporter(&registry_);
    Status status = exporter.WriteFile(metrics_path_);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot: %s (%zu metrics)\n",
                metrics_path_.c_str(), registry_.size());
    if (trace_) {
      status = trace_->WriteFile(trace_path_);
      if (!status.ok()) {
        std::fprintf(stderr, "trace export failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("trace: %s (%zu events, %llu dropped)\n",
                  trace_path_.c_str(), trace_->event_count(),
                  static_cast<unsigned long long>(trace_->dropped()));
    }
    return 0;
  }

 private:
  std::string name_;
  std::string metrics_path_;
  std::string trace_path_;
  std::vector<std::string> positional_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::ChromeTraceWriter> trace_;
};

}  // namespace xssd::bench

#endif  // XSSD_BENCH_BENCH_UTIL_H_
