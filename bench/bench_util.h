#ifndef XSSD_BENCH_BENCH_UTIL_H_
#define XSSD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "core/config.h"
#include "pcie/fabric.h"

namespace xssd::bench {

/// Villars configuration matching the paper's prototype environment (§6):
/// PCIe Gen2 ×4 (2 GB/s) for the CMB experiments, SRAM 4 GB/s / DRAM
/// 2 GB/s shared backing, 16 KiB flash pages, ~2 GB/s flash array.
inline core::VillarsConfig PaperVillarsConfig(core::BackingKind backing) {
  core::VillarsConfig config;
  config.cmb.backing = backing;
  if (backing == core::BackingKind::kDram) {
    // 128 MiB DRAM CMB would dominate memory; 8 MiB preserves behaviour
    // (the ring never limits; bandwidth does).
    config.cmb.ring_bytes = 8ull << 20;
  }
  config.destage.ring_lba_count = 2048;
  return config;
}

inline pcie::FabricConfig PaperFabricConfig() {
  pcie::FabricConfig config;
  config.generation = 2;
  config.lanes = 4;
  return config;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace xssd::bench

#endif  // XSSD_BENCH_BENCH_UTIL_H_
