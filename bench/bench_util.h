#ifndef XSSD_BENCH_BENCH_UTIL_H_
#define XSSD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "obs/critical_path.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "pcie/fabric.h"
#include "sim/simulator.h"

namespace xssd::bench {

/// Villars configuration matching the paper's prototype environment (§6):
/// PCIe Gen2 ×4 (2 GB/s) for the CMB experiments, SRAM 4 GB/s / DRAM
/// 2 GB/s shared backing, 16 KiB flash pages, ~2 GB/s flash array.
inline core::VillarsConfig PaperVillarsConfig(core::BackingKind backing) {
  core::VillarsConfig config;
  config.cmb.backing = backing;
  if (backing == core::BackingKind::kDram) {
    // 128 MiB DRAM CMB would dominate memory; 8 MiB preserves behaviour
    // (the ring never limits; bandwidth does).
    config.cmb.ring_bytes = 8ull << 20;
  }
  config.destage.ring_lba_count = 2048;
  return config;
}

inline pcie::FabricConfig PaperFabricConfig() {
  pcie::FabricConfig config;
  config.generation = 2;
  config.lanes = 4;
  return config;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// \brief Uniform bench reporting: one MetricsRegistry per bench binary,
/// exported as a JSON snapshot on exit, plus an optional Chrome trace.
///
/// Flags consumed from argv (remaining arguments are exposed through
/// positional()):
///   --metrics PATH     snapshot destination (default: <name>.metrics.json)
///   --trace PATH       record simulator events as Chrome trace_event JSON
///   --breakdown PATH   record request spans and write the critical-path
///                      latency breakdown (per run, per request kind)
///
/// Device counters accumulate across every run the bench performs; per-run
/// headline numbers go in as `bench.<name>.*` gauges via SetResult(), so
/// the snapshot carries both the raw device view and the figure's table.
class BenchReporter {
 public:
  BenchReporter(int argc, char** argv, const std::string& name)
      : name_(name), metrics_path_(name + ".metrics.json") {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--metrics" && i + 1 < argc) {
        metrics_path_ = argv[++i];
      } else if (arg == "--trace" && i + 1 < argc) {
        trace_path_ = argv[++i];
        trace_ = std::make_unique<obs::ChromeTraceWriter>();
      } else if (arg == "--breakdown" && i + 1 < argc) {
        breakdown_path_ = argv[++i];
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  obs::MetricsRegistry& registry() { return registry_; }
  const std::vector<std::string>& positional() const { return positional_; }

  /// Hook the trace writer (if --trace was given) into `sim`, grouping the
  /// run's events under `run_label` in the viewer.
  void AttachTrace(sim::Simulator* sim, const std::string& run_label) {
    if (!trace_) return;
    trace_->BeginProcess(run_label);
    sim->set_trace_sink(trace_.get());
  }

  /// Allocate a fresh span recorder for one run (nullptr unless
  /// --breakdown was given). The bench wires it into its nodes via
  /// EnableSpans; Finish() analyses every recorder into the breakdown
  /// report. One recorder per run keeps stream-offset joins unambiguous.
  obs::SpanRecorder* AttachSpans(sim::Simulator* sim,
                                 const std::string& run_label) {
    if (breakdown_path_.empty()) return nullptr;
    span_runs_.push_back(
        {run_label, std::make_unique<obs::SpanRecorder>(sim)});
    return span_runs_.back().recorder.get();
  }

  bool breakdown_enabled() const { return !breakdown_path_.empty(); }

  /// Record one headline result as a gauge named
  /// "bench.<name>.<label>.<field>".
  void SetResult(const std::string& label, const std::string& field,
                 double value) {
    registry_.GetGauge("bench." + name_ + "." + label + "." + field)
        ->Set(value);
  }
  double Result(const std::string& label, const std::string& field) {
    return registry_.GetGauge("bench." + name_ + "." + label + "." + field)
        ->value();
  }

  /// Write the metrics snapshot (and the trace, when recording). Call once
  /// at the end of main().
  int Finish() {
    obs::JsonExporter exporter(&registry_);
    Status status = exporter.WriteFile(metrics_path_);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot: %s (%zu metrics)\n",
                metrics_path_.c_str(), registry_.size());
    if (!breakdown_path_.empty()) {
      obs::BreakdownReporter breakdown(name_);
      for (const SpanRun& run : span_runs_) {
        breakdown.AddRun(run.label, *run.recorder);
        if (trace_) EmitSpansToTrace(*run.recorder, trace_.get());
      }
      status = breakdown.WriteFile(breakdown_path_);
      if (!status.ok()) {
        std::fprintf(stderr, "breakdown export failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("breakdown: %s (%llu requests)\n", breakdown_path_.c_str(),
                  static_cast<unsigned long long>(breakdown.request_count()));
      if (breakdown.conservation_violations() > 0) {
        // The invariant every consumer of the report relies on: attributed
        // segments partition each request's end-to-end latency exactly.
        std::fprintf(stderr,
                     "breakdown conservation violated for %llu requests\n",
                     static_cast<unsigned long long>(
                         breakdown.conservation_violations()));
        return 1;
      }
    }
    if (trace_) {
      status = trace_->WriteFile(trace_path_);
      if (!status.ok()) {
        std::fprintf(stderr, "trace export failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("trace: %s (%zu events, %llu dropped)\n",
                  trace_path_.c_str(), trace_->event_count(),
                  static_cast<unsigned long long>(trace_->dropped()));
    }
    return 0;
  }

 private:
  struct SpanRun {
    std::string label;
    std::unique_ptr<obs::SpanRecorder> recorder;
  };

  std::string name_;
  std::string metrics_path_;
  std::string trace_path_;
  std::string breakdown_path_;
  std::vector<std::string> positional_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::ChromeTraceWriter> trace_;
  std::vector<SpanRun> span_runs_;
};

}  // namespace xssd::bench

#endif  // XSSD_BENCH_BENCH_UTIL_H_
