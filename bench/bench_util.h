#ifndef XSSD_BENCH_BENCH_UTIL_H_
#define XSSD_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "obs/critical_path.h"
#include "obs/flightrec.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "pcie/fabric.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::bench {

/// Villars configuration matching the paper's prototype environment (§6):
/// PCIe Gen2 ×4 (2 GB/s) for the CMB experiments, SRAM 4 GB/s / DRAM
/// 2 GB/s shared backing, 16 KiB flash pages, ~2 GB/s flash array.
inline core::VillarsConfig PaperVillarsConfig(core::BackingKind backing) {
  core::VillarsConfig config;
  config.cmb.backing = backing;
  if (backing == core::BackingKind::kDram) {
    // 128 MiB DRAM CMB would dominate memory; 8 MiB preserves behaviour
    // (the ring never limits; bandwidth does).
    config.cmb.ring_bytes = 8ull << 20;
  }
  config.destage.ring_lba_count = 2048;
  return config;
}

inline pcie::FabricConfig PaperFabricConfig() {
  pcie::FabricConfig config;
  config.generation = 2;
  config.lanes = 4;
  return config;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// \brief Uniform bench reporting: one MetricsRegistry per bench binary,
/// exported as a JSON snapshot on exit, plus an optional Chrome trace.
///
/// Flags consumed from argv (remaining arguments are exposed through
/// positional()):
///   --metrics PATH     snapshot destination (default: <name>.metrics.json)
///   --trace PATH       record simulator events as Chrome trace_event JSON
///   --breakdown PATH   record request spans and write the critical-path
///                      latency breakdown (per run, per request kind)
///   --timeseries PATH  per-window time series of every metric, one
///                      sampler per run (see AttachTimeSeries)
///   --ts-interval-us N sampling window length in virtual µs (default 1000)
///   --slo PATH         JSON SLO rules evaluated per window (implies
///                      sampling); a fatal rule's alert fails the bench
///   --flightrec PATH   write the flight-recorder ring to PATH at exit
///                      (the recorder itself is always on; crash-site
///                      AutoDumps also land in PATH instead of stderr)
///
/// Device counters accumulate across every run the bench performs; per-run
/// headline numbers go in as `bench.<name>.*` gauges via SetResult(), so
/// the snapshot carries both the raw device view and the figure's table.
class BenchReporter {
 public:
  BenchReporter(int argc, char** argv, const std::string& name)
      : name_(name), metrics_path_(name + ".metrics.json") {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--metrics" && i + 1 < argc) {
        metrics_path_ = argv[++i];
      } else if (arg == "--trace" && i + 1 < argc) {
        trace_path_ = argv[++i];
        trace_ = std::make_unique<obs::ChromeTraceWriter>();
      } else if (arg == "--breakdown" && i + 1 < argc) {
        breakdown_path_ = argv[++i];
      } else if (arg == "--timeseries" && i + 1 < argc) {
        timeseries_path_ = argv[++i];
      } else if (arg == "--ts-interval-us" && i + 1 < argc) {
        ts_interval_us_ = std::strtoull(argv[++i], nullptr, 10);
        if (ts_interval_us_ == 0) ts_interval_us_ = 1000;
      } else if (arg == "--slo" && i + 1 < argc) {
        std::string path = argv[++i];
        Status status = LoadSloFile(path);
        if (!status.ok()) {
          std::fprintf(stderr, "--slo %s: %s\n", path.c_str(),
                       status.ToString().c_str());
          flag_error_ = true;
        }
      } else if (arg == "--flightrec" && i + 1 < argc) {
        flightrec_path_ = argv[++i];
        flightrec_.set_dump_path(flightrec_path_);
      } else {
        positional_.push_back(std::move(arg));
      }
    }
    flightrec_.SetMetrics(&registry_);
  }

  obs::MetricsRegistry& registry() { return registry_; }
  const std::vector<std::string>& positional() const { return positional_; }

  /// Hook the trace writer (if --trace was given) into `sim`, grouping the
  /// run's events under `run_label` in the viewer.
  void AttachTrace(sim::Simulator* sim, const std::string& run_label) {
    if (!trace_) return;
    trace_->BeginProcess(run_label);
    sim->set_trace_sink(trace_.get());
  }

  /// Allocate a fresh span recorder for one run (nullptr unless
  /// --breakdown was given). The bench wires it into its nodes via
  /// EnableSpans; Finish() analyses every recorder into the breakdown
  /// report. One recorder per run keeps stream-offset joins unambiguous.
  obs::SpanRecorder* AttachSpans(sim::Simulator* sim,
                                 const std::string& run_label) {
    if (breakdown_path_.empty()) return nullptr;
    span_runs_.push_back(
        {run_label, std::make_unique<obs::SpanRecorder>(sim)});
    return span_runs_.back().recorder.get();
  }

  bool breakdown_enabled() const { return !breakdown_path_.empty(); }

  /// True when per-window sampling is on: --timeseries was given, --slo
  /// loaded rules, or the bench added rules programmatically.
  bool sampling_enabled() const {
    return !timeseries_path_.empty() || !slo_rules_.empty();
  }

  /// Add an SLO rule programmatically (campaign headline gates). Must be
  /// called before the runs whose samplers should evaluate it. Adding a
  /// rule enables sampling even without --timeseries.
  void AddSloRule(obs::SloRule rule) { slo_rules_.push_back(std::move(rule)); }

  /// The bench-wide black-box ring: always on, shared by every run.
  /// Benches hand it to devices (EnableFlightRecorder), injectors, and
  /// supervisors; crash sites AutoDump it.
  obs::FlightRecorder* flight_recorder() { return &flightrec_; }

  /// Allocate a per-run sampler (plus watchdog when rules exist) over the
  /// shared registry and start it at `sim`'s current time; nullptr when
  /// sampling is off. The sampler rides the simulator's time-observer
  /// hook, so the run's event sequence is identical with sampling on or
  /// off. Safe to let `sim` die first — teardown finalizes the sampler.
  obs::TimeSeriesSampler* AttachTimeSeries(sim::Simulator* sim,
                                           const std::string& run_label) {
    if (!sampling_enabled()) return nullptr;
    obs::TimeSeriesOptions options;
    options.interval = sim::Us(ts_interval_us_);
    TsRun run;
    run.label = run_label;
    if (!slo_rules_.empty()) {
      run.watchdog = std::make_unique<obs::SloWatchdog>();
      run.watchdog->SetMetrics(&registry_);
      for (const obs::SloRule& rule : slo_rules_) run.watchdog->AddRule(rule);
      run.watchdog->set_flight_recorder(&flightrec_);
    }
    run.sampler =
        std::make_unique<obs::TimeSeriesSampler>(sim, &registry_, options);
    if (run.watchdog) run.sampler->set_watchdog(run.watchdog.get());
    if (trace_) run.sampler->set_trace(trace_.get());
    run.sampler->Start();
    ts_runs_.push_back(std::move(run));
    return ts_runs_.back().sampler.get();
  }

  /// Alerts of the rule named `name`, summed over every run's watchdog.
  uint64_t SloAlerts(std::string_view name) const {
    uint64_t total = 0;
    for (const TsRun& run : ts_runs_) {
      if (run.watchdog) total += run.watchdog->AlertsFor(name);
    }
    return total;
  }

  /// Record one headline result as a gauge named
  /// "bench.<name>.<label>.<field>".
  void SetResult(const std::string& label, const std::string& field,
                 double value) {
    registry_.GetGauge("bench." + name_ + "." + label + "." + field)
        ->Set(value);
  }
  double Result(const std::string& label, const std::string& field) {
    return registry_.GetGauge("bench." + name_ + "." + label + "." + field)
        ->value();
  }

  /// Write the metrics snapshot (and the trace / time series / flight
  /// recorder, when recording). Call once at the end of main(). Returns
  /// non-zero on export failures and on any fatal SLO alert.
  int Finish() {
    if (flag_error_) return 1;
    // Close trailing partial windows before exporting anything: samplers
    // whose simulators are still alive detach here; ones whose simulators
    // already died were finalized at teardown (Finalize is idempotent).
    for (TsRun& run : ts_runs_) run.sampler->Finalize();
    obs::JsonExporter exporter(&registry_);
    Status status = exporter.WriteFile(metrics_path_);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot: %s (%zu metrics)\n",
                metrics_path_.c_str(), registry_.size());
    if (!breakdown_path_.empty()) {
      obs::BreakdownReporter breakdown(name_);
      for (const SpanRun& run : span_runs_) {
        breakdown.AddRun(run.label, *run.recorder);
        if (trace_) EmitSpansToTrace(*run.recorder, trace_.get());
      }
      status = breakdown.WriteFile(breakdown_path_);
      if (!status.ok()) {
        std::fprintf(stderr, "breakdown export failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("breakdown: %s (%llu requests)\n", breakdown_path_.c_str(),
                  static_cast<unsigned long long>(breakdown.request_count()));
      if (breakdown.conservation_violations() > 0) {
        // The invariant every consumer of the report relies on: attributed
        // segments partition each request's end-to-end latency exactly.
        std::fprintf(stderr,
                     "breakdown conservation violated for %llu requests\n",
                     static_cast<unsigned long long>(
                         breakdown.conservation_violations()));
        return 1;
      }
    }
    if (!timeseries_path_.empty()) {
      std::string doc = "{\"schema\": \"xssd.timeseries.v1\", \"bench\": \"" +
                        obs::JsonEscape(name_) + "\", \"runs\": {";
      bool first = true;
      for (const TsRun& run : ts_runs_) {
        if (!first) doc += ", ";
        first = false;
        doc += "\"" + obs::JsonEscape(run.label) + "\": ";
        run.sampler->AppendJson(&doc);
      }
      doc += "}}\n";
      std::ofstream ts_out(timeseries_path_);
      ts_out << doc;
      ts_out.close();
      if (!ts_out) {
        std::fprintf(stderr, "timeseries export failed: cannot write %s\n",
                     timeseries_path_.c_str());
        return 1;
      }
      size_t windows = 0;
      for (const TsRun& run : ts_runs_) windows += run.sampler->windows();
      std::printf("timeseries: %s (%zu runs, %zu windows)\n",
                  timeseries_path_.c_str(), ts_runs_.size(), windows);
    }
    if (!flightrec_path_.empty()) {
      status = flightrec_.DumpToFile(flightrec_path_, "bench exit");
      if (!status.ok()) {
        std::fprintf(stderr, "flight recorder export failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("flight recorder: %s (%llu events)\n",
                  flightrec_path_.c_str(),
                  static_cast<unsigned long long>(flightrec_.appended()));
    }
    if (trace_) {
      status = trace_->WriteFile(trace_path_);
      if (!status.ok()) {
        std::fprintf(stderr, "trace export failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("trace: %s (%zu events, %llu dropped)\n",
                  trace_path_.c_str(), trace_->event_count(),
                  static_cast<unsigned long long>(trace_->dropped()));
    }
    uint64_t fatal = 0;
    for (const TsRun& run : ts_runs_) {
      if (run.watchdog) fatal += run.watchdog->fatal_alerts();
    }
    if (fatal > 0) {
      std::fprintf(stderr, "%llu fatal SLO alert(s) — failing the bench\n",
                   static_cast<unsigned long long>(fatal));
      return 1;
    }
    return 0;
  }

 private:
  struct SpanRun {
    std::string label;
    std::unique_ptr<obs::SpanRecorder> recorder;
  };
  /// Watchdog before sampler: the sampler's destructor finalizes trailing
  /// windows, which evaluates the watchdog.
  struct TsRun {
    std::string label;
    std::unique_ptr<obs::SloWatchdog> watchdog;
    std::unique_ptr<obs::TimeSeriesSampler> sampler;
  };

  Status LoadSloFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) return Status::IoError("cannot open " + path);
    std::ostringstream text;
    text << in.rdbuf();
    // Qualified: the Result(...) accessor above shadows xssd::Result<T>.
    xssd::Result<std::vector<obs::SloRule>> rules =
        obs::ParseSloRules(text.str());
    if (!rules.ok()) return rules.status();
    for (obs::SloRule& rule : *rules) slo_rules_.push_back(std::move(rule));
    return Status::OK();
  }

  std::string name_;
  std::string metrics_path_;
  std::string trace_path_;
  std::string breakdown_path_;
  std::string timeseries_path_;
  std::string flightrec_path_;
  uint64_t ts_interval_us_ = 1000;
  bool flag_error_ = false;
  std::vector<std::string> positional_;
  obs::MetricsRegistry registry_;
  obs::FlightRecorder flightrec_;
  std::unique_ptr<obs::ChromeTraceWriter> trace_;
  std::vector<SpanRun> span_runs_;
  std::vector<obs::SloRule> slo_rules_;
  std::vector<TsRun> ts_runs_;
};

}  // namespace xssd::bench

#endif  // XSSD_BENCH_BENCH_UTIL_H_
