// Figure 12 — Effects of Opportunistic Destaging (paper §6.4).
//
// A conventional block-write workload sized at ~50% of the device's flash
// write bandwidth runs together with a fast-side append workload swept
// from 30% to 60%, under the three scheduling policies.
//
// Paper shape: with Neutral priority both workloads are served until the
// device runs out of bandwidth, then they interfere and both degrade;
// with Conventional priority the conventional throughput is preserved
// regardless of the fast load (Destage priority is symmetric).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "host/node.h"

namespace xssd {
namespace {

struct CellResult {
  double conv_mb_s;
  double fast_mb_s;
};

CellResult RunOne(ftl::SchedulingPolicy policy, double conv_frac,
                  double fast_frac, sim::SimTime duration) {
  sim::Simulator sim;
  core::VillarsConfig config =
      bench::PaperVillarsConfig(core::BackingKind::kSram);
  config.scheduling = policy;
  config.cmb.ring_bytes = 4ull << 20;  // decouple ring slack from the sweep
  config.destage.ring_lba_count = 8192;
  // Deep, *balanced* pipelines on both sides so the scheduler — not an
  // admission depth — decides who gets the array.
  config.destage.max_inflight = 128;
  config.ftl.max_writeback_inflight = 128;

  // The ×4 Gen2 link (2 GB/s) would itself throttle the combined load; the
  // paper constrains the link only for CMB experiments, so give this
  // workload the board's ×8 interface and let the flash array (~2 GB/s) be
  // the contended resource.
  pcie::FabricConfig fabric = bench::PaperFabricConfig();
  fabric.lanes = 8;

  host::StorageNode node(&sim, config, fabric, "bench");
  Status status = node.Init();
  if (!status.ok()) std::exit(1);

  double device_bw = node.device().flash_array().MaxProgramBandwidth();
  double conv_rate = device_bw * conv_frac;   // offered, bytes/sec
  double fast_rate = device_bw * fast_frac;

  const uint32_t block = node.driver().block_bytes();

  // Conventional generator: open-loop arrivals of one-block writes at
  // conv_rate, with a bounded outstanding window.
  uint64_t conv_outstanding = 0;
  uint64_t next_lba = 8192;
  const uint64_t conv_span = 16384;
  std::vector<uint8_t> conv_payload(block, 0xC7);
  sim::SimTime conv_interval =
      sim::TransferTime(block, conv_rate);  // time per block at conv_rate
  std::function<void()> conv_arrival = [&]() {
    if (conv_outstanding < 64) {
      ++conv_outstanding;
      node.driver().Write(8192 + (next_lba++ % conv_span), conv_payload.data(),
                          1, [&](Status) { --conv_outstanding; });
    }
    sim.Schedule(conv_interval, conv_arrival);
  };
  conv_arrival();

  // Fast generator: closed-loop appends throttled to fast_rate by pacing.
  std::vector<uint8_t> fast_payload(16 * 1024, 0xFA);
  sim::SimTime fast_interval =
      sim::TransferTime(fast_payload.size(), fast_rate);
  bool fast_busy = false;
  std::function<void()> fast_arrival = [&]() {
    if (!fast_busy) {
      fast_busy = true;
      node.client().Append(fast_payload.data(), fast_payload.size(),
                           [&](Status) { fast_busy = false; });
    }
    sim.Schedule(fast_interval, fast_arrival);
  };
  fast_arrival();

  sim.RunFor(sim::Ms(30));  // warmup: fill buffers, reach steady state
  node.device().ftl().scheduler().ResetStats();
  sim::SimTime start = sim.Now();
  sim.RunFor(duration);
  double secs = sim::ToSec(sim.Now() - start);

  auto& scheduler = node.device().ftl().scheduler();
  return CellResult{
      scheduler.completed_bytes(ftl::IoClass::kConventional) / secs / 1e6,
      scheduler.completed_bytes(ftl::IoClass::kDestage) / secs / 1e6};
}

}  // namespace
}  // namespace xssd

int main() {
  using namespace xssd;
  const double fast_fracs[] = {0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60};

  bench::PrintHeader(
      "Figure 12: opportunistic destaging (conventional fixed at 50% BW)");

  for (ftl::SchedulingPolicy policy :
       {ftl::SchedulingPolicy::kNeutral,
        ftl::SchedulingPolicy::kConventionalPriority,
        ftl::SchedulingPolicy::kDestagePriority}) {
    std::printf("\n-- policy: %s --\n", ftl::SchedulingPolicyName(policy));
    std::printf("%-10s %14s %14s %12s\n", "fast_load", "conv_MB/s",
                "fast_MB/s", "total_MB/s");
    for (double frac : fast_fracs) {
      CellResult r = RunOne(policy, 0.50, frac, sim::Ms(50));
      std::printf("%9.0f%% %14.1f %14.1f %12.1f\n", frac * 100, r.conv_mb_s,
                  r.fast_mb_s, r.conv_mb_s + r.fast_mb_s);
    }
  }
  return 0;
}
