// Figure 9 — Logging to Local Storage (paper §6.1).
//
// Latency (left) and throughput (right) of TPC-C with an increasing number
// of log-writer workers under five local logging setups:
//   no-log          : durability disabled (ERMIA ceiling)
//   nvdimm          : log to host PM (battery-backed DIMMs)
//   nvme            : log to the Villars conventional side (pwrite+fsync)
//   villars-sram    : log to the fast side, SRAM-backed CMB
//   villars-dram    : log to the fast side, DRAM-backed CMB
//
// Paper shape: all methods track each other up to 4 workers; at 8 the
// conventional side saturates near ~200 ktxn/s while the rest reach the
// ~300 ktxn/s CPU ceiling; NVMe latency sits well above the PM-class
// methods; DRAM-backed CMB shows back-pressure at 8 workers.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "db/log_backend.h"
#include "db/log_manager.h"
#include "db/tpcc.h"
#include "db/workload.h"
#include "host/node.h"

namespace xssd {
namespace {

struct RunResult {
  double txns_per_sec;
  double mean_latency_us;
  double p50_us;
  double p99_us;
};

enum class Method { kNoLog, kNvdimm, kNvme, kVillarsSram, kVillarsDram };

const char* MethodName(Method method) {
  switch (method) {
    case Method::kNoLog:
      return "no-log";
    case Method::kNvdimm:
      return "nvdimm";
    case Method::kNvme:
      return "nvme";
    case Method::kVillarsSram:
      return "villars-sram";
    case Method::kVillarsDram:
      return "villars-dram";
  }
  return "?";
}

std::string RunLabel(Method method, uint32_t workers) {
  return std::string(MethodName(method)) + ".w" + std::to_string(workers);
}

RunResult RunOne(Method method, uint32_t workers, sim::SimTime measure,
                 bench::BenchReporter* reporter) {
  sim::Simulator sim;
  reporter->AttachTrace(&sim, RunLabel(method, workers));
  reporter->AttachTimeSeries(&sim, RunLabel(method, workers));

  core::BackingKind backing = method == Method::kVillarsDram
                                  ? core::BackingKind::kDram
                                  : core::BackingKind::kSram;
  host::StorageNode node(&sim, bench::PaperVillarsConfig(backing),
                         bench::PaperFabricConfig(), "bench");
  Status status = node.Init();
  if (!status.ok()) {
    std::fprintf(stderr, "node init failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  // Unprefixed registration: the snapshot carries the plain device-metric
  // namespace (cmb.*, destage.*, flash.*, ...), accumulated across runs.
  node.EnableMetrics(&reporter->registry());
  if (obs::SpanRecorder* spans =
          reporter->AttachSpans(&sim, RunLabel(method, workers))) {
    node.EnableSpans(spans, "dev");
  }

  std::unique_ptr<db::LogBackend> backend;
  switch (method) {
    case Method::kNoLog:
      backend = std::make_unique<db::NoLogBackend>(&sim);
      break;
    case Method::kNvdimm:
      backend = std::make_unique<db::NvdimmBackend>(&sim);
      break;
    case Method::kNvme:
      // Log file region above the destage ring.
      backend = std::make_unique<db::NvmeLogBackend>(&node.driver(), 4096,
                                                     4096);
      break;
    case Method::kVillarsSram:
    case Method::kVillarsDram:
      backend = std::make_unique<db::VillarsLogBackend>(&node.client());
      break;
  }

  db::LogManager log(&sim, backend.get());
  db::Database database(&log);
  db::TpccConfig tpcc_config;
  db::TpccWorkload workload(&database, tpcc_config, 1234);
  workload.Populate();

  db::WorkloadDriver driver(&sim, &database, &workload, workers);
  db::WorkloadResult result = driver.Run(sim::Ms(100), measure);

  RunResult r{result.txns_per_sec, result.latency_us.Mean(),
              result.latency_us.Percentile(50),
              result.latency_us.Percentile(99)};
  std::string label = RunLabel(method, workers);
  reporter->SetResult(label, "txns_per_sec", r.txns_per_sec);
  reporter->SetResult(label, "mean_latency_us", r.mean_latency_us);
  reporter->SetResult(label, "p50_us", r.p50_us);
  reporter->SetResult(label, "p99_us", r.p99_us);
  return r;
}

}  // namespace
}  // namespace xssd

int main(int argc, char** argv) {
  using namespace xssd;
  bench::BenchReporter reporter(argc, argv, "fig09");
  sim::SimTime measure = sim::Ms(400);
  if (!reporter.positional().empty()) {
    measure = sim::Ms(std::atoi(reporter.positional()[0].c_str()));
  }

  bench::PrintHeader("Figure 9: logging to local storage (TPC-C, 16 WH)");
  std::printf("%-14s %8s %14s %12s %10s %10s\n", "method", "workers",
              "txn/s", "mean_lat_us", "p50_us", "p99_us");
  for (Method method :
       {Method::kNoLog, Method::kNvdimm, Method::kNvme,
        Method::kVillarsSram, Method::kVillarsDram}) {
    for (uint32_t workers : {1u, 2u, 4u, 8u}) {
      RunResult r = RunOne(method, workers, measure, &reporter);
      std::printf("%-14s %8u %14.0f %12.1f %10.1f %10.1f\n",
                  MethodName(method), workers, r.txns_per_sec,
                  r.mean_latency_us, r.p50_us, r.p99_us);
    }
  }
  return reporter.Finish();
}
