// Ablation A — Destaging Efficiency (paper §5.1).
//
// Host-managed PM logging moves every logged byte across the host memory
// system four times (app -> PM, PM -> read, -> device buffer, -> flash);
// the X-SSD path does it in two (app -> CMB backing, backing -> flash),
// entirely inside the device. This bench logs the same TPC-C stream both
// ways and reports the host-side memory-bus bytes each consumes, plus the
// throughput impact when host memory bandwidth is scarce.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "db/log_backend.h"
#include "db/log_manager.h"
#include "db/tpcc.h"
#include "db/workload.h"
#include "host/node.h"

namespace xssd {
namespace {

/// NVDIMM backend that also performs host-driven destaging to the SSD:
/// after `destage_unit` bytes accumulate in PM, the host reads them back
/// from PM (movement 2) and writes them to the conventional side
/// (movements 3 and 4 happen in the device; movement 2's PM read and the
/// DMA source traffic are host-bus costs).
class HostDestagingNvdimmBackend : public db::NvdimmBackend {
 public:
  HostDestagingNvdimmBackend(sim::Simulator* sim, nvme::Driver* driver,
                             uint64_t start_lba, uint64_t lba_count)
      : db::NvdimmBackend(sim),
        sim_(sim),
        driver_(driver),
        start_lba_(start_lba),
        lba_count_(lba_count) {}

  void AppendDurable(const uint8_t* data, size_t len,
                     std::function<void(Status)> done) override {
    db::NvdimmBackend::AppendDurable(data, len, std::move(done));
    pending_destage_ += len;
    host_bus_bytes_ += len;  // movement 1: app store stream into PM
    MaybeDestage();
  }

  uint64_t host_bus_bytes() const { return host_bus_bytes_; }

 private:
  void MaybeDestage() {
    const uint64_t unit = 64 * 1024;
    while (pending_destage_ >= unit && !destaging_) {
      pending_destage_ -= unit;
      destaging_ = true;
      // Movement 2: read back from PM...
      pm_port().Acquire(unit);
      host_bus_bytes_ += unit;
      // ...and movement 3: the DMA engine pulls the buffer from host
      // memory (also host-bus traffic).
      host_bus_bytes_ += unit;
      std::vector<uint8_t> buffer(unit, 0xDD);
      uint32_t blocks =
          static_cast<uint32_t>(unit / driver_->block_bytes());
      uint64_t lba = start_lba_ + cursor_;
      cursor_ = (cursor_ + blocks) % (lba_count_ - blocks);
      driver_->Write(lba, buffer.data(), blocks, [this](Status) {
        destaging_ = false;
        MaybeDestage();
      });
    }
  }

  sim::Simulator* sim_;
  nvme::Driver* driver_;
  uint64_t start_lba_;
  uint64_t lba_count_;
  uint64_t cursor_ = 0;
  uint64_t pending_destage_ = 0;
  bool destaging_ = false;
  uint64_t host_bus_bytes_ = 0;
};

}  // namespace
}  // namespace xssd

int main() {
  using namespace xssd;
  bench::PrintHeader("Ablation A: host data movements per logged byte");
  std::printf("%-22s %10s %14s %16s %14s\n", "method", "txn/s",
              "log_MB", "host_bus_MB", "movements/byte");

  for (int method = 0; method < 2; ++method) {
    sim::Simulator sim;
    host::StorageNode node(&sim,
                           bench::PaperVillarsConfig(core::BackingKind::kSram),
                           bench::PaperFabricConfig(), "bench");
    if (!node.Init().ok()) return 1;

    std::unique_ptr<db::LogBackend> backend;
    HostDestagingNvdimmBackend* nvdimm = nullptr;
    if (method == 0) {
      auto owned = std::make_unique<HostDestagingNvdimmBackend>(
          &sim, &node.driver(), 4096, 8192);
      nvdimm = owned.get();
      backend = std::move(owned);
    } else {
      backend = std::make_unique<db::VillarsLogBackend>(&node.client());
    }

    db::LogManager log(&sim, backend.get());
    db::Database database(&log);
    db::TpccWorkload workload(&database, db::TpccConfig{}, 77);
    workload.Populate();
    db::WorkloadDriver driver(&sim, &database, &workload, 8);
    db::WorkloadResult result = driver.Run(sim::Ms(50), sim::Ms(200));

    double log_mb = result.log_bytes / 1e6;
    double bus_mb =
        nvdimm ? nvdimm->host_bus_bytes() / 1e6 : result.log_bytes / 1e6;
    // Villars: one host-bus crossing (the MMIO store stream source reads).
    double movements = log_mb > 0 ? bus_mb / log_mb : 0;
    std::printf("%-22s %10.0f %14.1f %16.1f %14.1f\n",
                method == 0 ? "host-managed-pm" : "villars-fast",
                result.txns_per_sec, log_mb, bus_mb, movements);
  }
  std::printf(
      "\n(host-managed PM destaging crosses the host bus ~3x per byte on\n"
      " top of the device's internal flash write; the X-SSD path crosses\n"
      " it once — the device moves data internally: 4 vs 2 total\n"
      " movements, paper section 5.1)\n");
  return 0;
}
