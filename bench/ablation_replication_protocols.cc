// Ablation B — Replication protocol semantics (paper §4.2).
//
// A primary with two secondaries, one of them slow (its shadow-counter
// update period is 20x longer). The protocol decides what the credit
// counter the database reads means:
//   eager : min over all secondaries — commit waits for the slowest
//   lazy  : local counter — commit is independent of the secondaries
//   chain : the tail secondary's counter
//
// The bench reports durable-append latency under each protocol. Shape:
// lazy ≈ local PM latency; eager tracks the slow secondary; chain tracks
// whichever secondary is the tail.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "host/node.h"
#include "sim/stats.h"

namespace xssd {
namespace {

void RunOne(core::ReplicationProtocol protocol, const char* name,
            bool slow_is_tail = true) {
  sim::Simulator sim;
  core::VillarsConfig config =
      bench::PaperVillarsConfig(core::BackingKind::kSram);
  host::StorageNode primary(&sim, config, bench::PaperFabricConfig(), "pri");
  host::StorageNode fast_sec(&sim, config, bench::PaperFabricConfig(), "s1");
  host::StorageNode slow_sec(&sim, config, bench::PaperFabricConfig(), "s2");
  if (!primary.Init().ok() || !fast_sec.Init().ok() || !slow_sec.Init().ok())
    std::exit(1);

  host::ReplicationGroup group(
      slow_is_tail
          ? std::vector<host::StorageNode*>{&primary, &fast_sec, &slow_sec}
          : std::vector<host::StorageNode*>{&primary, &slow_sec, &fast_sec});
  Status status = group.Setup(protocol, sim::UsF(0.8));
  if (!status.ok()) std::exit(1);

  // Slow down the second secondary's updates.
  slow_sec.device().transport().set_update_period(sim::Us(16));

  sim::LatencyRecorder latency_us;
  std::vector<uint8_t> entry(256, 0x11);
  bool stop = false;
  std::function<void()> writer = [&]() {
    if (stop) return;
    sim::SimTime start = sim.Now();
    primary.client().AppendDurable(entry.data(), entry.size(),
                                   [&, start](Status) {
                                     latency_us.Add(
                                         sim::ToUs(sim.Now() - start));
                                     writer();
                                   });
  };
  writer();

  sim.RunFor(sim::Ms(2));
  latency_us.Clear();
  sim.RunFor(sim::Ms(20));
  stop = true;

  auto candle = latency_us.Candlestick();
  std::printf("%-8s %10.2f %10.2f %10.2f %10.2f %10.2f %10lu\n", name,
              candle.min, candle.p25, candle.p50, candle.p75, candle.max,
              static_cast<unsigned long>(latency_us.count()));
}

}  // namespace
}  // namespace xssd

int main() {
  using namespace xssd;
  bench::PrintHeader(
      "Ablation B: replication protocols (2 secondaries, one slow)");
  std::printf("%-8s %10s %10s %10s %10s %10s %10s\n", "proto", "min_us",
              "p25_us", "p50_us", "p75_us", "max_us", "ops");
  RunOne(core::ReplicationProtocol::kLazy, "lazy");
  RunOne(core::ReplicationProtocol::kEager, "eager");
  // Chain semantics: only the tail's counter gates commit. With the slow
  // node at the tail, chain == eager; with the fast node at the tail, the
  // slow node no longer gates latency.
  RunOne(core::ReplicationProtocol::kChain, "chain-s", /*slow_is_tail=*/true);
  RunOne(core::ReplicationProtocol::kChain, "chain-f", /*slow_is_tail=*/false);
  return 0;
}
