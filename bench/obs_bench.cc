// Observability overhead bench: the cost of the PR's always-on pieces,
// measured so the zero-perturbation claim ("sampling changes no events")
// is paired with a wall-clock claim ("and it is cheap"). Writes
// BENCH_obs.json — the per-PR point on the repo's perf trajectory — and
// CI gates it against the floors in bench/baselines/obs_floor.json.
//
//   obs_bench [--out BENCH_obs.json] [--events N] [--seed S]
//
// Three measurements:
//  * sampler off: a synthetic event mix (counter bumps, gauge updates,
//    latency samples — the shape a device run presents to the registry)
//    with no sampler attached. Baseline events/sec.
//  * sampler on: the identical mix with a TimeSeriesSampler at a 1 ms
//    virtual window. Same event count, same virtual end time (the
//    zero-perturbation invariant, asserted here too); the wall-clock
//    ratio is the whole cost of the time-observer hook plus window
//    closes.
//  * flight recorder: Record() throughput into a full ring (every append
//    evicts), the steady state of an always-on black box.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd {
namespace {

struct MixStats {
  uint64_t events = 0;
  double wall_sec = 0;
  double events_per_sec = 0;
  uint64_t windows = 0;
  sim::SimTime end_ns = 0;
  uint64_t counter_total = 0;
};

// Self-rescheduling chains touching the registry the way device code
// does: every event bumps a counter, every 4th sets a gauge, every 8th
// logs a latency sample. Event spacing ~1-3 us, so a 1 ms sampling window
// covers ~500 events per chain — windows are frequent enough to matter
// but the hot path is still the per-event observer branch.
struct Ctx {
  sim::Simulator* sim;
  sim::Rng* rng;
  uint64_t budget;
  obs::Counter* ops;
  obs::Gauge* depth;
  obs::LatencyRecorder* lat;
  uint64_t n = 0;
};

void Chain(Ctx* ctx) {
  if (ctx->budget == 0) return;
  --ctx->budget;
  ++ctx->n;
  ctx->ops->Add();
  if ((ctx->n & 3) == 0) {
    ctx->depth->Set(static_cast<double>(ctx->n & 1023));
  }
  if ((ctx->n & 7) == 0) {
    ctx->lat->Add(static_cast<double>(100 + (ctx->rng->Next() & 4095)));
  }
  ctx->sim->Schedule(ctx->rng->UniformRange(1000, 3000),
                     [ctx]() { Chain(ctx); });
}

MixStats RunMix(uint64_t seed, uint64_t events, bool sampled) {
  sim::Simulator sim;
  sim::Rng rng(seed);
  obs::MetricsRegistry registry;
  Ctx ctx;
  ctx.sim = &sim;
  ctx.rng = &rng;
  ctx.budget = events;
  ctx.ops = registry.GetCounter("bench.ops");
  ctx.depth = registry.GetGauge("bench.depth");
  ctx.lat = registry.GetLatency("bench.latency_ns");

  obs::TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
  if (sampled) sampler.Start();
  for (int i = 0; i < 16; ++i) {
    sim.Schedule(rng.UniformRange(1000, 3000), [&ctx]() { Chain(&ctx); });
  }

  auto start = std::chrono::steady_clock::now();
  sim.Run();
  auto stop = std::chrono::steady_clock::now();
  if (sampled) sampler.Finalize();

  MixStats out;
  out.events = sim.executed_events();
  out.wall_sec = std::chrono::duration<double>(stop - start).count();
  out.events_per_sec =
      out.wall_sec > 0 ? static_cast<double>(out.events) / out.wall_sec : 0;
  out.windows = sampler.windows();
  out.end_ns = sim.Now();
  out.counter_total = ctx.ops->value();
  return out;
}

struct FrStats {
  uint64_t appends = 0;
  double wall_sec = 0;
  double appends_per_sec = 0;
};

FrStats RunFlightRec(uint64_t appends) {
  obs::FlightRecorder fr;  // default 512-entry ring: steady-state evicts
  std::string base = "gc collect block 12345, valid=17";
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < appends; ++i) {
    fr.Record(i, "bench", base + std::to_string(i & 1023));
  }
  auto stop = std::chrono::steady_clock::now();
  FrStats out;
  out.appends = appends;
  out.wall_sec = std::chrono::duration<double>(stop - start).count();
  out.appends_per_sec =
      out.wall_sec > 0 ? static_cast<double>(appends) / out.wall_sec : 0;
  return out;
}

}  // namespace
}  // namespace xssd

int main(int argc, char** argv) {
  using namespace xssd;
  std::string out_path = "BENCH_obs.json";
  uint64_t events = 2000000;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: obs_bench [--out BENCH_obs.json] [--events N] "
                   "[--seed S]\n");
      return 2;
    }
  }

  MixStats off = RunMix(seed, events, /*sampled=*/false);
  MixStats on = RunMix(seed, events, /*sampled=*/true);
  FrStats fr = RunFlightRec(events);

  // The zero-perturbation invariant, cheap enough to assert every run:
  // the sampled run executed the same events to the same virtual time.
  if (off.events != on.events || off.end_ns != on.end_ns ||
      off.counter_total != on.counter_total) {
    std::fprintf(stderr,
                 "PERTURBATION: off(events=%" PRIu64 " end=%" PRIu64
                 " ops=%" PRIu64 ") != on(events=%" PRIu64 " end=%" PRIu64
                 " ops=%" PRIu64 ")\n",
                 off.events, static_cast<uint64_t>(off.end_ns),
                 off.counter_total, on.events,
                 static_cast<uint64_t>(on.end_ns), on.counter_total);
    return 1;
  }
  if (on.windows == 0) {
    std::fprintf(stderr, "sampler closed no windows — bench broken\n");
    return 1;
  }

  double overhead =
      off.wall_sec > 0 ? on.wall_sec / off.wall_sec : 1.0;
  std::printf("sampler off: %.0f events/sec (%" PRIu64 " events)\n",
              off.events_per_sec, off.events);
  std::printf("sampler on:  %.0f events/sec (%" PRIu64
              " windows, overhead x%.3f)\n",
              on.events_per_sec, on.windows, overhead);
  std::printf("flightrec:   %.0f appends/sec\n", fr.appends_per_sec);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"xssd.obs-bench.v1\",\n"
               "  \"events\": %" PRIu64
               ",\n"
               "  \"seed\": %" PRIu64
               ",\n"
               "  \"sampler_off\": {\"events_per_sec\": %.0f, \"wall_sec\": "
               "%.6f},\n"
               "  \"sampler_on\": {\"events_per_sec\": %.0f, \"wall_sec\": "
               "%.6f, \"windows\": %" PRIu64
               "},\n"
               "  \"sampler_overhead_ratio\": %.4f,\n"
               "  \"flightrec\": {\"appends_per_sec\": %.0f, \"wall_sec\": "
               "%.6f}\n"
               "}\n",
               events, seed, off.events_per_sec, off.wall_sec,
               on.events_per_sec, on.wall_sec, on.windows, overhead,
               fr.appends_per_sec, fr.wall_sec);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
