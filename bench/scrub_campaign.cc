// Media-reliability campaign: age a filled device through retention dwell
// and read disturb with the patrol scrubber ON vs OFF, and gate the
// self-healing story end to end:
//  * scrub on: every acked byte reads back intact (zero uncorrectable
//    reads, zero byte mismatches) and the OOB mapping rebuild stays exact,
//    while the scrubber keeps inside its pages/sec budget.
//  * scrub off: the very same stress produces nonzero uncorrectable reads,
//    retry-ladder exhaustions, and read-path escalations — proving the
//    healing path is load-bearing, not decorative.
//  * destage priority: with the scrubber running, destage-class appends
//    still wait >= 3x less than under the neutral policy (the ftl_campaign
//    no-inversion property, now with background patrol traffic present).
//
//   scrub_campaign --seed 3 --metrics out.json
//
// A (seed) run is bit-deterministic: two invocations produce identical
// metric snapshots (CI diffs them).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "check/mapping_oracle.h"
#include "flash/array.h"
#include "ftl/ftl.h"
#include "ftl/scrub.h"
#include "sim/random.h"

namespace xssd {
namespace {

flash::Geometry CampaignGeometry() {
  flash::Geometry g;
  g.channels = 4;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 16;
  g.pages_per_block = 32;
  g.page_bytes = 4096;
  return g;  // 128 blocks, 4096 pages, 16 MiB
}

// Decay tuned so cold data crosses the ECC budget within the campaign's
// ~24 s of virtual dwell even through the retry ladder (scrub off), while
// the scrubber's refresh margin fires with wide headroom (scrub on): at
// 1.5e-4 BER/s a page hits the 0.5 * 24-bit refresh threshold after ~2.2 s
// and the (retry-rescued) uncorrectable region only past ~9 s of dwell —
// several full scrub sweeps away.
flash::Reliability CampaignReliability() {
  flash::Reliability r;
  r.raw_bit_error_rate = 5e-5;
  r.ber_per_retention_sec = 1.5e-4;
  r.ber_per_read_disturb = 2e-6;
  r.ecc_correctable_bits = 24;
  r.read_retry_levels = 2;
  r.retry_ber_factor = 0.5;
  return r;
}

ftl::FtlConfig CampaignConfig() {
  ftl::FtlConfig config;
  config.buffer_pages = 64;
  config.flush_watermark = 16;
  config.gc_low_watermark = 4;
  return config;
}

ftl::ScrubConfig CampaignScrub(bool enabled) {
  ftl::ScrubConfig config;
  config.enabled = enabled;
  config.scan_interval = sim::Ms(1);
  // High enough that patrol reads of below-margin blocks (which share the
  // token bucket) cannot starve the refresh stream: the fleet decays at
  // ~45 blocks/s here and refreshes cost ~28 pages each.
  config.pages_per_sec = 16000.0;
  config.busy_threshold = 1;
  config.refresh_margin = 0.5;
  return config;
}

struct Gate {
  int failures = 0;
  void Check(bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GATE FAILED: %s\n", what);
      ++failures;
    }
  }
};

uint8_t OracleByte(uint64_t lpn, uint64_t seed) {
  return static_cast<uint8_t>(lpn * 131 + seed * 7 + 1);
}

// One aging run. The scrubber's self-rearming tick keeps the event queue
// populated, so every pump is time-bounded (RunFor), never Run().
int RunAging(bench::BenchReporter& reporter, uint64_t seed, bool scrub_on,
             Gate& gate) {
  const std::string label = scrub_on ? "scrub_on" : "scrub_off";
  sim::Simulator sim;
  flash::Array array(&sim, CampaignGeometry(), flash::Timing{},
                     CampaignReliability(), seed);
  ftl::Ftl ftl(&sim, &array, CampaignConfig());
  ftl.SetMetrics(&reporter.registry(), label + ".");
  ftl.scheduler().set_policy(ftl::SchedulingPolicy::kDestagePriority);
  ftl::PatrolScrubber scrubber(&sim, &ftl, &array, CampaignScrub(scrub_on));
  scrubber.SetMetrics(&reporter.registry(), label + ".");
  scrubber.Start();
  ftl.SetFlightRecorder(reporter.flight_recorder(), label);
  reporter.AttachTimeSeries(&sim, label);
  sim::Rng rng(seed);

  // Fill 70% of logical space with seeded content: cold data the retention
  // model decays, with enough free blocks left for refresh relocation.
  const uint64_t lpns = ftl.page_map().lpn_count() * 70 / 100;
  for (uint64_t lpn = 0; lpn < lpns; ++lpn) {
    ftl.WriteBuffered(lpn,
                      std::vector<uint8_t>(4096, OracleByte(lpn, seed)),
                      [](Status) {});
    if (lpn % 128 == 127) sim.RunFor(sim::Ms(10));
  }
  Status flushed = Status::Internal("pending");
  ftl.Flush([&](Status s) { flushed = s; });
  sim.RunFor(sim::Ms(100));
  gate.Check(flushed.ok(), "fill-phase flush failed");

  // Aging: long retention dwell punctuated by hot-set reads (disturb) and
  // a light write trickle. 12 rounds x 2 s of cold dwell; the scrubber
  // (when on) must refresh every data block faster than it decays. The
  // trickle matters beyond realism: it keeps the write frontier advancing
  // so open blocks seal — dwell is per-block from first program, and only
  // sealed blocks are eligible for patrol/refresh, so a frontier block
  // parked open for the whole campaign would strand its pages beyond any
  // scrubber's reach.
  const uint64_t hot_set = std::min<uint64_t>(256, lpns);
  for (int round = 0; round < 12; ++round) {
    sim.RunFor(sim::Sec(2));
    for (int i = 0; i < 64; ++i) {
      ftl.ReadPage(ftl::IoClass::kConventional, rng.Uniform(hot_set),
                   [](Status, std::vector<uint8_t>) {});
    }
    for (int i = 0; i < 64; ++i) {
      uint64_t lpn = rng.Uniform(lpns);
      ftl.WriteBuffered(lpn,
                        std::vector<uint8_t>(4096, OracleByte(lpn, seed)),
                        [](Status) {});
    }
    sim.RunFor(sim::Ms(50));
  }

  // Verify every acked byte against the oracle.
  uint64_t corrupt_lpns = 0;
  uint64_t mismatched_lpns = 0;
  for (uint64_t lpn = 0; lpn < lpns; ++lpn) {
    ftl.ReadPage(ftl::IoClass::kConventional, lpn,
                 [&, lpn](Status status, std::vector<uint8_t> data) {
                   if (!status.ok()) {
                     ++corrupt_lpns;
                     return;
                   }
                   uint8_t want = OracleByte(lpn, seed);
                   for (uint8_t byte : data) {
                     if (byte != want) {
                       ++mismatched_lpns;
                       return;
                     }
                   }
                 });
    if (lpn % 64 == 63) sim.RunFor(sim::Ms(20));
  }
  sim.RunFor(sim::Ms(500));

  // Quiesce before taking the snapshot: RebuildFromOob only equals the
  // live map at a quiesced point, and the scrubber never quiesces on its
  // own — the decay model keeps nominating refresh victims forever. A
  // relocation program caught mid-flight already has its OOB in flash but
  // has not mapped yet, which a scan would misread as divergence.
  scrubber.Stop();
  for (int spins = 0; spins < 1000; ++spins) {
    if (ftl.scheduler().inflight() == 0 &&
        ftl.scheduler().queued(ftl::IoClass::kConventional) == 0 &&
        ftl.scheduler().queued(ftl::IoClass::kDestage) == 0) {
      break;
    }
    sim.RunFor(sim::Ms(1));
  }

  const double elapsed_sec = sim::ToSec(sim.Now());
  const flash::ArrayStats& astats = array.stats();
  const ftl::FtlStats& fstats = ftl.stats();
  const ftl::ScrubStats& sstats = scrubber.stats();

  if (scrub_on) {
    gate.Check(corrupt_lpns == 0 && mismatched_lpns == 0,
               "acked bytes lost under retention+disturb with scrub ON");
    gate.Check(fstats.uncorrectable_reads == 0,
               "uncorrectable reads leaked through with scrub ON");
    std::vector<check::Divergence> divergences =
        check::CheckRebuildMatches(ftl, array.geometry());
    for (const check::Divergence& d : divergences) {
      std::fprintf(stderr, "rebuild divergence: %s — %s\n", d.rule.c_str(),
                   d.detail.c_str());
    }
    gate.Check(divergences.empty(), "OOB rebuild diverged with scrub ON");
    gate.Check(sstats.refreshes > 0, "scrubber never refreshed a block");
    // Budget: everything the scrubber read or relocated must fit the token
    // rate (one bucket of slack for the initial fill of the bucket).
    const double budget_spent =
        static_cast<double>(sstats.patrol_reads) +
        static_cast<double>(fstats.refresh_relocations);
    const double budget_earned =
        CampaignScrub(true).pages_per_sec * elapsed_sec +
        static_cast<double>(CampaignGeometry().pages_per_block);
    gate.Check(budget_spent <= budget_earned,
               "scrubber overdrew its pages/sec budget");
    reporter.SetResult(label, "rebuild_mismatch",
                       static_cast<double>(divergences.size()));
  } else {
    gate.Check(fstats.uncorrectable_reads > 0,
               "aging never produced an uncorrectable read with scrub OFF "
               "(the threat model is vacuous)");
    gate.Check(corrupt_lpns > 0,
               "no acked-byte loss surfaced with scrub OFF");
    gate.Check(astats.retry_exhausted > 0,
               "retry ladder never exhausted with scrub OFF");
    gate.Check(astats.read_retries > 0, "retry ladder never engaged");
    gate.Check(fstats.escalations > 0,
               "uncorrectable reads never escalated to block retirement");
  }

  reporter.SetResult(label, "corrupt_lpns",
                     static_cast<double>(corrupt_lpns));
  reporter.SetResult(label, "mismatched_lpns",
                     static_cast<double>(mismatched_lpns));
  reporter.SetResult(label, "uncorrectable_reads",
                     static_cast<double>(fstats.uncorrectable_reads));
  reporter.SetResult(label, "read_retries",
                     static_cast<double>(astats.read_retries));
  reporter.SetResult(label, "retry_exhausted",
                     static_cast<double>(astats.retry_exhausted));
  reporter.SetResult(label, "refreshes",
                     static_cast<double>(sstats.refreshes));
  reporter.SetResult(label, "refresh_relocations",
                     static_cast<double>(fstats.refresh_relocations));
  reporter.SetResult(label, "patrol_reads",
                     static_cast<double>(sstats.patrol_reads));
  reporter.SetResult(label, "patrol_uncorrectable",
                     static_cast<double>(sstats.patrol_uncorrectable));
  reporter.SetResult(label, "escalations",
                     static_cast<double>(fstats.escalations));
  reporter.SetResult(label, "retired_blocks",
                     static_cast<double>(fstats.reliability_retires));
  reporter.SetResult(label, "pages_lost",
                     static_cast<double>(fstats.pages_lost));
  reporter.SetResult(label, "elapsed_sec", elapsed_sec);

  std::printf(
      "%s: corrupt=%llu mismatch=%llu uncorrectable=%llu retries=%llu "
      "exhausted=%llu refreshes=%llu patrol=%llu escalations=%llu\n",
      label.c_str(), static_cast<unsigned long long>(corrupt_lpns),
      static_cast<unsigned long long>(mismatched_lpns),
      static_cast<unsigned long long>(fstats.uncorrectable_reads),
      static_cast<unsigned long long>(astats.read_retries),
      static_cast<unsigned long long>(astats.retry_exhausted),
      static_cast<unsigned long long>(sstats.refreshes),
      static_cast<unsigned long long>(sstats.patrol_reads),
      static_cast<unsigned long long>(fstats.escalations));
  return gate.failures;
}

// Destage-priority probe with the scrubber running: the patrol traffic is
// conventional-class and budgeted, so the priority separation ftl_campaign
// measures must survive it. Media decay is off for this phase — the
// scrubber still ticks and patrol-reads, but the workload (and the queue
// drains between bursts) stays comparable to ftl_campaign's.
int RunPriority(bench::BenchReporter& reporter, uint64_t seed, Gate& gate) {
  flash::Reliability steady;
  steady.raw_bit_error_rate = 5e-5;
  sim::Simulator sim;
  flash::Array array(&sim, CampaignGeometry(), flash::Timing{}, steady,
                     seed);
  ftl::Ftl ftl(&sim, &array, CampaignConfig());
  ftl::PatrolScrubber scrubber(&sim, &ftl, &array, CampaignScrub(true));
  scrubber.Start();
  sim::Rng rng(seed);

  const uint64_t lpns = ftl.page_map().lpn_count() * 90 / 100;
  for (uint64_t lpn = 0; lpn < lpns; ++lpn) {
    ftl.WriteBuffered(lpn, std::vector<uint8_t>(4096, 0xF1), [](Status) {});
    if (lpn % 128 == 127) sim.RunFor(sim::Ms(10));
  }
  Status flushed = Status::Internal("pending");
  ftl.Flush([&](Status s) { flushed = s; });
  sim.RunFor(sim::Ms(100));
  gate.Check(flushed.ok(), "priority-phase fill flush failed");

  const uint64_t log_ring = 256;
  const uint64_t warm_set = lpns - log_ring;
  uint64_t log_head = 0;
  // Drain the flash queues between bursts (the plain Run() ftl_campaign
  // uses would never return: the scrubber's tick re-arms forever). The
  // iteration bound only guards against a stuck scheduler.
  auto drain = [&]() {
    for (int spins = 0; spins < 1000; ++spins) {
      if (ftl.scheduler().inflight() == 0 &&
          ftl.scheduler().queued(ftl::IoClass::kConventional) == 0 &&
          ftl.scheduler().queued(ftl::IoClass::kDestage) == 0) {
        return;
      }
      sim.RunFor(sim::Ms(1));
    }
  };
  auto churn = [&](int ops) -> double {
    ftl.scheduler().ResetStats();
    for (int i = 0; i < ops; ++i) {
      uint8_t fill = static_cast<uint8_t>(rng.Next());
      if (i % 4 == 0) {
        ftl.WriteDirect(ftl::IoClass::kDestage,
                        warm_set + (log_head++ % log_ring),
                        std::vector<uint8_t>(4096, fill), [](Status) {});
      } else {
        ftl.WriteBuffered(rng.Uniform(warm_set),
                          std::vector<uint8_t>(4096, fill), [](Status) {});
      }
      if (i % 64 == 63) drain();
    }
    drain();
    uint64_t issued = ftl.scheduler().issued(ftl::IoClass::kDestage);
    return issued == 0 ? 0.0
                       : static_cast<double>(ftl.scheduler().wait_ns(
                             ftl::IoClass::kDestage)) /
                             1000.0 / static_cast<double>(issued);
  };

  ftl.scheduler().set_policy(ftl::SchedulingPolicy::kDestagePriority);
  const double wait_priority = churn(8000);
  ftl.scheduler().set_policy(ftl::SchedulingPolicy::kNeutral);
  const double wait_neutral = churn(8000);

  gate.Check(wait_priority > 0 && wait_neutral > 0,
             "priority probe issued no destage traffic");
  gate.Check(wait_neutral >= 3.0 * wait_priority,
             "destage priority worth < 3x on queue wait with the scrubber "
             "running");
  gate.Check(ftl.stats().gc_erases > 100,
             "priority probe never forced a GC storm");

  reporter.SetResult("priority", "destage_mean_wait_priority_us",
                     wait_priority);
  reporter.SetResult("priority", "destage_mean_wait_neutral_us",
                     wait_neutral);
  reporter.SetResult("priority", "scrub_deferred_busy",
                     static_cast<double>(scrubber.stats().deferred_busy));
  std::printf("priority: destage wait priority=%.1fus neutral=%.1fus "
              "(%.2fx) deferred_busy=%llu\n",
              wait_priority, wait_neutral,
              wait_priority > 0 ? wait_neutral / wait_priority : 0.0,
              static_cast<unsigned long long>(
                  scrubber.stats().deferred_busy));
  return gate.failures;
}

}  // namespace
}  // namespace xssd

int main(int argc, char** argv) {
  using namespace xssd;
  bench::BenchReporter reporter(argc, argv, "scrub_campaign");

  uint64_t seed = 1;
  const std::vector<std::string>& args = reporter.positional();
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: scrub_campaign [--seed N] [--metrics out.json]\n");
      return 2;
    }
  }

  bench::PrintHeader("Media-reliability scrub campaign (seed " +
                     std::to_string(seed) + ")");
  if (reporter.sampling_enabled()) {
    // Media-health watch: the riskiest block's expected raw errors as a
    // fraction of the ECC budget. Refreshes trigger at 0.5 (refresh_margin)
    // — a sustained sit above 0.45 means decay is outrunning the scrubber.
    obs::SloRule pressure;
    pressure.name = "refresh_pressure";
    pressure.metric = "scrub_on.scrub.refresh_pressure";
    pressure.pred = obs::SloRule::Pred::kGt;
    pressure.threshold = 0.45;
    pressure.for_windows = 3;
    reporter.AddSloRule(pressure);
  }
  Gate gate;
  RunAging(reporter, seed, /*scrub_on=*/false, gate);
  RunAging(reporter, seed, /*scrub_on=*/true, gate);
  RunPriority(reporter, seed, gate);
  reporter.SetResult("campaign", "gate_failures",
                     static_cast<double>(gate.failures));
  std::printf("scrub_campaign seed=%llu %s (%d gate failures)\n",
              static_cast<unsigned long long>(seed),
              gate.failures == 0 ? "OK" : "FAILED", gate.failures);
  int finish_rc = reporter.Finish();
  return gate.failures != 0 ? 1 : finish_rc;
}
