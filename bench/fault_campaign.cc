// Fault campaign: run a replicated logging workload under a named (or
// file-loaded) fault plan and verify the system's durability invariants
// survived. Exits non-zero when any invariant breaks, so CI can sweep
// plan × seed matrices and fail loudly.
//
//   fault_campaign --plan flash-fail --seed 3 --metrics out.json
//
// --plan accepts one of the embedded plans (flash-fail, ntb-flap,
// crash-mid-destage — the same documents as bench/plans/*.json) or a path
// to a plan file. A (plan, seed) pair is bit-deterministic: two runs
// produce identical metric snapshots.

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "host/node.h"
#include "host/recovery.h"
#include "host/xcalls.h"
#include "sim/random.h"

namespace xssd {
namespace {

struct EmbeddedPlan {
  const char* name;
  const char* json;
};

// Keep in sync with bench/plans/*.json (CI runs the names; the files are
// the editable/documented form).
constexpr EmbeddedPlan kEmbeddedPlans[] = {
    {"flash-fail", R"({
      "name": "flash-fail",
      "faults": [
        {"kind": "flash.program_fail", "at_us": 20, "duration_us": 400},
        {"kind": "flash.program_fail", "at_us": 900, "duration_us": 2000,
         "probability": 0.4}
      ]
    })"},
    {"ntb-flap", R"({
      "name": "ntb-flap",
      "faults": [
        {"kind": "ntb.link_down", "at_us": 0, "duration_us": 600},
        {"kind": "ntb.link_stall", "at_us": 900, "duration_us": 300,
         "probability": 0.5, "delay_us": 4}
      ]
    })"},
    {"crash-mid-destage", R"({
      "name": "crash-mid-destage",
      "faults": [
        {"kind": "crash", "site": "destage.emit_page", "after_hits": 4}
      ]
    })"},
    {"retention-stress", R"({
      "name": "retention-stress",
      "faults": [
        {"kind": "flash.retention", "at_us": 0, "duration_us": 2000000,
         "probability": 0.3, "delay_us": 3000000},
        {"kind": "flash.disturb", "at_us": 0, "duration_us": 2000000,
         "probability": 0.5, "magnitude": 2000}
      ]
    })"},
};

Result<fault::FaultPlan> ResolvePlan(const std::string& arg) {
  for (const EmbeddedPlan& p : kEmbeddedPlans) {
    if (arg == p.name) return fault::ParseFaultPlan(p.json);
  }
  return fault::LoadFaultPlan(arg);
}

uint64_t TotalInjected(const fault::FaultInjector::Totals& t) {
  return t.flash_program_fails + t.flash_erase_fails +
         t.flash_read_uncorrectable + t.flash_retention_boosts +
         t.flash_disturb_boosts + t.ntb_dropped + t.ntb_stalled +
         t.pcie_delayed + t.pcie_truncated + t.nvme_timeouts + t.crashes;
}

bool PlanHasCrash(const fault::FaultPlan& plan) {
  for (const fault::FaultSpec& spec : plan.faults) {
    if (spec.kind == fault::FaultKind::kCrash) return true;
  }
  return false;
}

int RunCampaign(bench::BenchReporter& reporter, const fault::FaultPlan& plan,
                uint64_t seed) {
  sim::Simulator sim;
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 256;
  // The healing paths under test are opt-in; the campaign always runs with
  // retransmission and degraded-mode fallback armed.
  config.transport.retransmit_timeout = sim::Us(50);
  config.transport.degrade_timeout = sim::Us(300);
  // A mild media model so retention/disturb boosts (retention-stress plan)
  // actually move the sampled error count: organic decay over the
  // campaign's few-ms span stays far below the ECC budget, while an
  // injected 3 s dwell lands a handful of correctable errors per read.
  config.reliability.raw_bit_error_rate = 1e-7;
  config.reliability.ber_per_retention_sec = 1e-5;
  config.reliability.ber_per_read_disturb = 1e-8;
  config.reliability.ecc_correctable_bits = 24;
  config.reliability.read_retry_levels = 4;
  config.reliability.retry_ber_factor = 0.5;
  config.seed = seed;

  host::StorageNode primary(&sim, config, pcie::FabricConfig{}, "pri");
  host::StorageNode secondary(&sim, config, pcie::FabricConfig{}, "sec");
  if (!primary.Init().ok() || !secondary.Init().ok()) {
    std::fprintf(stderr, "node init failed\n");
    return 1;
  }
  host::ReplicationGroup group({&primary, &secondary});
  Status setup = group.Setup(core::ReplicationProtocol::kEager, sim::UsF(0.8));
  if (!setup.ok()) {
    std::fprintf(stderr, "replication setup failed: %s\n",
                 setup.ToString().c_str());
    return 1;
  }

  fault::FaultInjector injector(&sim, plan, seed);
  injector.SetMetrics(&reporter.registry());
  injector.SetFlightRecorder(reporter.flight_recorder());
  primary.ArmFaults(&injector, /*install_crash_handler=*/false);
  bool drained = false;
  bool crash_graceful = true;
  injector.SetCrashHandler([&](const fault::FaultSpec& spec) {
    crash_graceful = spec.graceful;
    if (spec.graceful) {
      primary.device().PowerFail([&]() { drained = true; });
    } else {
      primary.device().CrashHard();
      drained = true;
    }
  });
  primary.EnableMetrics(&reporter.registry(), "pri.");
  secondary.EnableMetrics(&reporter.registry(), "sec.");
  primary.device().EnableFlightRecorder(reporter.flight_recorder());
  secondary.device().EnableFlightRecorder(reporter.flight_recorder());
  reporter.AttachTimeSeries(&sim, plan.name.empty() ? "plan" : plan.name);
  // Always-on span recording: the scenario's metrics snapshot carries a
  // latency-breakdown block, and segment/e2e conservation joins the
  // campaign invariants.
  obs::SpanRecorder spans(&sim);
  primary.EnableSpans(&spans, "pri");
  secondary.EnableSpans(&spans, "sec");

  // Seeded random reference stream, appended in random-sized records. The
  // driver loop is callback-chained (not blocking) so a mid-append crash
  // cannot wedge the campaign.
  sim::Rng rng(seed ^ 0xCA3B417Aull);
  std::vector<uint8_t> stream(60000);
  for (auto& b : stream) b = static_cast<uint8_t>(rng.Next());
  size_t submitted = 0;
  bool posted_all = false;
  std::function<void()> append_next = [&]() {
    size_t chunk =
        std::min<size_t>(64 + rng.Uniform(900), stream.size() - submitted);
    if (chunk == 0) {
      posted_all = true;
      return;
    }
    primary.client().Append(stream.data() + submitted, chunk,
                            [&](Status) { append_next(); });
    submitted += chunk;
  };
  append_next();
  sim.RunWhile([&]() { return posted_all || drained; });
  if (PlanHasCrash(plan) && !drained) {
    // The crash clause may fire during destage, after the append chain has
    // posted everything; give it bounded simulated time to land.
    for (int i = 0; i < 100 && !drained; ++i) sim.RunFor(sim::Ms(1));
  }

  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "INVARIANT FAILED [%s seed %llu]: %s\n",
                   plan.name.c_str(), static_cast<unsigned long long>(seed),
                   what);
      ++failures;
    }
  };

  const std::string label = plan.name.empty() ? "plan" : plan.name;
  if (injector.crashed()) {
    // Crash path: reboot and recover; the chain walk must cover the
    // acknowledged prefix (graceful) and never fabricate or reorder bytes.
    check(drained, "crash fired but device never finished halting");
    uint64_t acknowledged = primary.device().cmb().local_credit();
    sim.RunFor(sim::Ms(5));  // let in-flight flash programs settle
    primary.device().Reboot();
    Result<host::RecoveredLog> recovered = host::RecoverLog(
        sim, primary.driver(), primary.device().destage().ring_start_lba(),
        primary.device().destage().ring_lba_count());
    check(recovered.ok(), "post-crash recovery scan failed");
    if (recovered.ok()) {
      if (crash_graceful) {
        check(recovered->end_offset() >= acknowledged,
              "recovery lost acknowledged bytes");
      }
      check(recovered->end_offset() <= submitted,
            "recovery returned bytes never submitted");
      check(std::memcmp(recovered->data.data(),
                        stream.data() + recovered->start_offset,
                        recovered->data.size()) == 0,
            "recovered bytes differ from the reference stream");
      reporter.SetResult(label, "recovered_end",
                         static_cast<double>(recovered->end_offset()));
    }
    reporter.SetResult(label, "acknowledged",
                       static_cast<double>(acknowledged));
  } else {
    // Fault-but-no-crash path: the workload must complete durably — every
    // byte replicated and destaged despite the injected faults.
    check(posted_all, "append workload never completed");
    check(host::x_fsync(sim, primary.client()) == 0, "x_fsync failed");
    sim.RunFor(sim::Ms(30));  // drain destage through any retry backoffs

    check(primary.device().cmb().local_credit() == stream.size(),
          "primary credit does not cover the stream");
    check(secondary.device().cmb().local_credit() == stream.size(),
          "secondary lost or duplicated replicated bytes");
    std::vector<uint8_t> replica(stream.size());
    secondary.device().cmb().CopyOut(0, replica.data(), replica.size());
    check(replica == stream, "replica differs from the reference stream");
    check(primary.device().destage().destaged() >= stream.size(),
          "destage never caught up");
    std::vector<uint8_t> tail(stream.size());
    check(host::x_pread(sim, primary.client(), primary.driver(), tail.data(),
                        tail.size()) == static_cast<ssize_t>(tail.size()),
          "x_pread of the destaged tail failed");
    check(tail == stream, "destaged bytes differ from the reference stream");
    if (injector.totals().ntb_dropped > 0) {
      check(primary.device().transport().retransmit_rounds() >= 1,
            "writes were dropped but retransmission never ran");
    }
    reporter.SetResult(
        label, "retransmit_rounds",
        static_cast<double>(primary.device().transport().retransmit_rounds()));
  }

  // A campaign that injected nothing proves nothing.
  check(TotalInjected(injector.totals()) > 0, "plan injected no faults");
  if (PlanHasCrash(plan)) {
    check(injector.crashed(), "plan has a crash clause that never fired");
  }

  obs::BreakdownReporter breakdown("fault_campaign");
  breakdown.AddRun(label, spans);
  breakdown.ExportGauges(&reporter.registry(),
                         "bench.fault_campaign." + label + ".");
  check(breakdown.conservation_violations() == 0,
        "latency attribution violated segment/e2e conservation");

  reporter.SetResult(label, "submitted", static_cast<double>(submitted));
  reporter.SetResult(label, "faults_injected",
                     static_cast<double>(TotalInjected(injector.totals())));
  reporter.SetResult(label, "invariant_failures",
                     static_cast<double>(failures));
  // Nonzero means some fault/workload site asked for a past timestamp and
  // the scheduler clamped it to Now() — an ordering bug in the plan.
  reporter.SetResult(label, "schedule_past_clamps",
                     static_cast<double>(sim.past_schedule_clamps()));
  std::printf("plan=%s seed=%llu submitted=%zu injected=%llu %s\n",
              label.c_str(), static_cast<unsigned long long>(seed), submitted,
              static_cast<unsigned long long>(TotalInjected(injector.totals())),
              failures == 0 ? "OK" : "FAILED");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace xssd

int main(int argc, char** argv) {
  using namespace xssd;
  bench::BenchReporter reporter(argc, argv, "fault_campaign");

  std::string plan_arg = "flash-fail";
  uint64_t seed = 1;
  const std::vector<std::string>& args = reporter.positional();
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--plan" && i + 1 < args.size()) {
      plan_arg = args[++i];
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: fault_campaign [--plan name|path] [--seed N] "
                   "[--metrics out.json]\n  embedded plans:");
      for (const EmbeddedPlan& p : kEmbeddedPlans) {
        std::fprintf(stderr, " %s", p.name);
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
  }

  Result<fault::FaultPlan> plan = ResolvePlan(plan_arg);
  if (!plan.ok()) {
    std::fprintf(stderr, "cannot load plan '%s': %s\n", plan_arg.c_str(),
                 plan.status().ToString().c_str());
    return 2;
  }

  bench::PrintHeader("Fault campaign: " + plan->name + " (seed " +
                     std::to_string(seed) + ")");
  int rc = RunCampaign(reporter, *plan, seed);
  int finish_rc = reporter.Finish();
  return rc != 0 ? rc : finish_rc;
}
