// Figure 13 — Replication Delay (paper §6.5).
//
// A primary/secondary Villars pair over NTB. The primary takes a stream of
// small CMB writes and mirrors them; the secondary periodically forwards
// its credit counter to the primary's shadow mailbox. We measure, per
// write, the delay between (a) the write against the primary's CMB and
// (b) the shadow counter on the primary covering it — i.e. the time until
// the primary can confirm the write is safely replicated. We also report
// the PCIe bandwidth share the counter-update traffic consumes.
//
// Paper shape: frequent updates (0.4 µs) give a tight candle (≈4.5–5.2 µs)
// at ~2.35% bandwidth cost; infrequent updates (1.6 µs) widen the candle
// (≈4.6–7.3 µs) but cost proportionally less bandwidth.

#include <cstdio>
#include <map>
#include "sim/random.h"
#include <vector>

#include "bench_util.h"
#include "host/node.h"
#include "sim/stats.h"

namespace xssd {
namespace {

struct RunResult {
  sim::LatencyRecorder::Candle candle_us;
  double update_bw_pct;
  uint64_t samples;
};

std::string RunLabel(double update_period_us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "period%.1fus", update_period_us);
  return buf;
}

RunResult RunOne(double update_period_us, sim::SimTime duration,
                 bench::BenchReporter* reporter) {
  sim::Simulator sim;
  // Each fabric is its own scheduler domain: under XSSD_SIM_SCHEDULER=
  // parallel the two nodes advance on separate workers, synchronized by the
  // NTB hop latency (the serial backends merge the domains identically).
  sim.ConfigureDomains(2);
  reporter->AttachTrace(&sim, RunLabel(update_period_us));
  reporter->AttachTimeSeries(&sim, RunLabel(update_period_us));
  core::VillarsConfig config =
      bench::PaperVillarsConfig(core::BackingKind::kSram);
  pcie::FabricConfig secondary_fabric = bench::PaperFabricConfig();
  secondary_fabric.domain = 1;
  host::StorageNode primary(&sim, config, bench::PaperFabricConfig(), "pri");
  host::StorageNode secondary(&sim, config, secondary_fabric, "sec");
  if (!primary.Init().ok() || !secondary.Init().ok()) std::exit(1);
  // Node prefixes keep the two devices' metric namespaces apart.
  primary.EnableMetrics(&reporter->registry(), "pri.");
  secondary.EnableMetrics(&reporter->registry(), "sec.");
  if (obs::SpanRecorder* spans =
          reporter->AttachSpans(&sim, RunLabel(update_period_us))) {
    primary.EnableSpans(spans, "pri");
    secondary.EnableSpans(spans, "sec");
  }

  host::ReplicationGroup group({&primary, &secondary});
  Status status = group.Setup(core::ReplicationProtocol::kEager,
                              sim::UsF(update_period_us));
  if (!status.ok()) {
    std::fprintf(stderr, "replication setup failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }

  // Track per-offset write timestamps; resolve them as the shadow counter
  // advances past the offset.
  std::map<uint64_t, sim::SimTime> pending;  // end-offset -> write time
  sim::LatencyRecorder delay_us;
  bool measuring = false;

  primary.device().transport().SetShadowHook(
      [&](uint32_t, uint64_t value) {
        auto it = pending.begin();
        while (it != pending.end() && it->first <= value) {
          if (measuring) {
            delay_us.Add(sim::ToUs(sim.Now() - it->second));
          }
          it = pending.erase(it);
        }
      });

  // Write stream: 64-byte log entries every 2 µs (a steady, non-saturating
  // load so the measured delay is the replication path, not queueing).
  std::vector<uint8_t> entry(64, 0xEE);
  sim::Rng jitter(99);
  std::function<void()> writer = [&]() {
    primary.client().Append(entry.data(), entry.size(), [](Status) {});
    pending.emplace(primary.client().written(), sim.Now());
    // Jittered arrivals so write times do not phase-lock with the update
    // period (a real database has no such clock alignment).
    sim.Schedule(sim::Ns(1600 + jitter.Uniform(800)), writer);
  };
  writer();

  sim.RunFor(sim::Ms(2));
  measuring = true;
  delay_us.Clear();
  primary.ntb().ResetStats();
  secondary.ntb().ResetStats();
  sim::SimTime start = sim.Now();
  sim.RunFor(duration);
  double secs = sim::ToSec(sim.Now() - start);
  measuring = false;

  // Counter updates flow over the secondary's NTB adapter.
  double update_bytes_per_sec = secondary.ntb().forwarded_wire_bytes() / secs;
  double bw_pct =
      update_bytes_per_sec / primary.fabric().link_bytes_per_sec() * 100.0;

  RunResult result;
  result.candle_us = delay_us.Candlestick();
  result.update_bw_pct = bw_pct;
  result.samples = delay_us.count();

  std::string label = RunLabel(update_period_us);
  reporter->SetResult(label, "p50_delay_us", result.candle_us.p50);
  reporter->SetResult(label, "max_delay_us", result.candle_us.max);
  reporter->SetResult(label, "update_bw_pct", result.update_bw_pct);
  reporter->SetResult(label, "samples",
                      static_cast<double>(result.samples));
  return result;
}

}  // namespace
}  // namespace xssd

int main(int argc, char** argv) {
  using namespace xssd;
  bench::BenchReporter reporter(argc, argv, "fig13");
  const double periods_us[] = {0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6};

  bench::PrintHeader(
      "Figure 13: shadow-counter update frequency vs replication delay");
  std::printf("%-10s %8s %8s %8s %8s %8s %10s %8s\n", "period_us", "min",
              "p25", "p50", "p75", "max", "bw_pct", "samples");
  for (double period : periods_us) {
    RunResult r = RunOne(period, sim::Ms(20), &reporter);
    std::printf("%-10.1f %8.2f %8.2f %8.2f %8.2f %8.2f %9.2f%% %8lu\n",
                period, r.candle_us.min, r.candle_us.p25, r.candle_us.p50,
                r.candle_us.p75, r.candle_us.max, r.update_bw_pct,
                static_cast<unsigned long>(r.samples));
  }
  return reporter.Finish();
}
