// Component microbenchmarks (google-benchmark): hot paths of the library
// itself — these measure the *simulator's* execution cost, complementing
// the virtual-time figure benches.

#include <benchmark/benchmark.h>

#include "common/crc32.h"
#include "core/page_format.h"
#include "db/log_record.h"
#include "ftl/mapping.h"
#include "pcie/tlp.h"
#include "sim/interval_set.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace xssd {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(static_cast<sim::SimTime>(i), []() {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(state.range(0), 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(16384);

void BM_TlpEncodeDecode(benchmark::State& state) {
  pcie::Tlp tlp;
  tlp.type = pcie::TlpType::kMemWrite;
  tlp.address = 0xE0001000;
  tlp.payload.assign(64, 0xAB);
  for (auto _ : state) {
    auto wire = pcie::EncodeTlp(tlp);
    auto decoded = pcie::DecodeTlp(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_TlpEncodeDecode);

void BM_IntervalSetInsertContiguous(benchmark::State& state) {
  for (auto _ : state) {
    sim::IntervalSet set;
    uint64_t offset = 0;
    for (int i = 0; i < 1000; ++i) {
      set.Insert(offset, offset + 64);
      offset += 64;
    }
    benchmark::DoNotOptimize(set.ContiguousEnd(0));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IntervalSetInsertContiguous);

void BM_IntervalSetInsertShuffled(benchmark::State& state) {
  sim::Rng rng(7);
  std::vector<uint64_t> order(1000);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i * 64;
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  for (auto _ : state) {
    sim::IntervalSet set;
    for (uint64_t offset : order) set.Insert(offset, offset + 64);
    benchmark::DoNotOptimize(set.ContiguousEnd(0));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IntervalSetInsertShuffled);

void BM_PageMapUpdate(benchmark::State& state) {
  flash::Geometry geometry;
  geometry.channels = 4;
  geometry.dies_per_channel = 2;
  ftl::PageMap map(geometry, geometry.pages() / 2);
  sim::Rng rng(3);
  uint64_t seq = 0;
  for (auto _ : state) {
    uint64_t lpn = rng.Uniform(map.lpn_count());
    uint64_t ppn = rng.Uniform(geometry.pages());
    map.Map(lpn, ppn, ++seq);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageMapUpdate);

void BM_DestagePageBuildParse(benchmark::State& state) {
  std::vector<uint8_t> data(8192, 0x3C);
  for (auto _ : state) {
    core::DestagePageHeader header;
    header.sequence = 1;
    header.stream_offset = 0;
    header.data_len = static_cast<uint32_t>(data.size());
    auto page = core::BuildDestagePage(header, data.data(), data.size(),
                                       16 * 1024);
    auto parsed = core::ParseDestagePage(page);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() * 16 * 1024);
}
BENCHMARK(BM_DestagePageBuildParse);

void BM_LogRecordRoundTrip(benchmark::State& state) {
  db::LogRecord record;
  record.txn_id = 42;
  record.table_id = 3;
  record.op = db::LogOp::kInsert;
  record.key = 123456;
  record.payload.assign(256, 0x77);
  for (auto _ : state) {
    std::vector<uint8_t> wire;
    db::SerializeLogRecord(record, &wire);
    size_t offset = 0;
    auto parsed = db::ParseLogRecord(wire, &offset);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_LogRecordRoundTrip);

}  // namespace
}  // namespace xssd

BENCHMARK_MAIN();
