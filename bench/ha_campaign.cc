// HA campaign: run a three-member replicated cluster under the autonomous
// replication supervisor (src/ha) while a named fault plan kills, partitions,
// or flaps the primary, then verify the failover invariants:
//
//   - zero acknowledged-byte loss: every byte a successful fsync covered is
//     present, bit for bit, on the surviving leader;
//   - exactly-once promotion, and exactly one live primary at the end;
//   - fencing: a deposed primary's stale pushes are rejected by the term
//     fence (visible in fenced_writes), never admitted into a survivor;
//   - convergence: after healing, every live member holds the same log.
//
//   ha_campaign --plan kill-primary --seed 3 --metrics out.json
//
// --plan accepts one of the embedded plans (kill-primary,
// partition-split-brain, flap — the first two are also bench/plans/*.json)
// or a path to a plan file. The scenario is classified from the plan's
// shape, so edited plan files keep working:
//   - a crash clause            -> kill-primary (hard-kill the leader);
//   - an ntb.link_down window at least as long as the failure-detection
//     window (heartbeat_period x suspicion_threshold) -> partition; the
//     longest window governs the old primary's *inbound* heartbeat path
//     (set_scratchpad_fault_injector) and every other clause its outbound
//     data path, so its outbound link heals first and its stale retransmits
//     must be fenced by the new term before it learns it was deposed;
//   - only sub-detection-window faults -> flap (no membership churn
//     allowed).
// A (plan, seed) pair is bit-deterministic: two runs produce identical
// metric snapshots.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "ha/supervisor.h"
#include "host/node.h"
#include "host/xcalls.h"
#include "sim/random.h"

namespace xssd {
namespace {

struct EmbeddedPlan {
  const char* name;
  const char* json;
};

// Keep kill-primary and partition-split-brain in sync with
// bench/plans/*.json (CI runs the names; the files are the editable form).
constexpr EmbeddedPlan kEmbeddedPlans[] = {
    {"kill-primary", R"({
      "name": "kill-primary",
      "faults": [
        {"kind": "crash", "site": "cmb.persist", "after_hits": 6,
         "graceful": false}
      ]
    })"},
    {"partition-split-brain", R"({
      "name": "partition-split-brain",
      "faults": [
        {"kind": "ntb.link_down", "at_us": 1000, "duration_us": 2000},
        {"kind": "ntb.link_down", "at_us": 1000, "duration_us": 3000}
      ]
    })"},
    {"flap", R"({
      "name": "flap",
      "faults": [
        {"kind": "ntb.link_down", "at_us": 300, "duration_us": 100},
        {"kind": "ntb.link_down", "at_us": 900, "duration_us": 100}
      ]
    })"},
};

Result<fault::FaultPlan> ResolvePlan(const std::string& arg) {
  for (const EmbeddedPlan& p : kEmbeddedPlans) {
    if (arg == p.name) return fault::ParseFaultPlan(p.json);
  }
  return fault::LoadFaultPlan(arg);
}

enum class Scenario { kKillPrimary, kPartition, kFlap };

Scenario Classify(const fault::FaultPlan& plan, sim::SimTime detection) {
  for (const fault::FaultSpec& spec : plan.faults) {
    if (spec.kind == fault::FaultKind::kCrash) return Scenario::kKillPrimary;
  }
  for (const fault::FaultSpec& spec : plan.faults) {
    if (spec.kind == fault::FaultKind::kNtbLinkDown &&
        spec.duration >= detection) {
      return Scenario::kPartition;
    }
  }
  return Scenario::kFlap;
}

// Partition plans split in two: the longest ntb.link_down clause governs the
// old primary's inbound heartbeat (scratchpad) path, everything else its
// outbound data path. The stagger — outbound heals first — is what forces
// the deposed primary to retransmit into fenced intake slots before it can
// hear the new leader and stand down.
void SplitPartitionPlan(const fault::FaultPlan& plan,
                        fault::FaultPlan* outbound,
                        fault::FaultPlan* inbound) {
  size_t longest = plan.faults.size();
  sim::SimTime best_end = 0;
  for (size_t i = 0; i < plan.faults.size(); ++i) {
    const fault::FaultSpec& spec = plan.faults[i];
    if (spec.kind == fault::FaultKind::kNtbLinkDown &&
        spec.end() >= best_end) {
      longest = i;
      best_end = spec.end();
    }
  }
  outbound->name = plan.name + "/outbound";
  inbound->name = plan.name + "/inbound";
  for (size_t i = 0; i < plan.faults.size(); ++i) {
    (i == longest ? inbound : outbound)->faults.push_back(plan.faults[i]);
  }
}

// Log contents are a pure function of the absolute stream offset, so any
// prefix of any member can be checked without tracking which client wrote
// it.
uint8_t PatternByte(uint64_t offset) {
  return static_cast<uint8_t>(offset * 131 + 17);
}

constexpr uint64_t kAckedBytes = 24000;   ///< phase 1, fsync'd before faults
constexpr uint64_t kChainBytes = 30000;   ///< kill-primary: posted mid-crash
constexpr uint64_t kSuffixBytes = 8000;   ///< partition: un-acked suffix
constexpr uint64_t kPostBytes = 6000;     ///< written on the new leader

int RunCampaign(bench::BenchReporter& reporter, const fault::FaultPlan& plan,
                uint64_t seed) {
  const ha::HaConfig ha_config;  // eager, 50 us heartbeats, 5-miss suspicion
  const sim::SimTime detection =
      ha_config.heartbeat_period *
      static_cast<sim::SimTime>(ha_config.suspicion_threshold);
  const Scenario scenario = Classify(plan, detection);

  sim::Simulator sim;
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 256;
  config.seed = seed;
  ha::ReplicaSupervisor::ConfigureDevice(&config, 3);

  std::vector<std::unique_ptr<host::StorageNode>> nodes;
  std::vector<host::StorageNode*> raw;
  for (size_t i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<host::StorageNode>(
        &sim, config, pcie::FabricConfig{}, "n" + std::to_string(i)));
    if (!nodes.back()->Init().ok()) {
      std::fprintf(stderr, "node init failed\n");
      return 1;
    }
    raw.push_back(nodes.back().get());
  }
  ha::ReplicaSupervisor supervisor(&sim, raw, ha_config);
  Status setup = supervisor.Setup();
  if (!setup.ok()) {
    std::fprintf(stderr, "supervisor setup failed: %s\n",
                 setup.ToString().c_str());
    return 1;
  }
  supervisor.Start();
  supervisor.SetFlightRecorder(reporter.flight_recorder());
  reporter.AttachTimeSeries(&sim, plan.name.empty() ? "plan" : plan.name);
  // Always-on span recording: the scenario's metrics snapshot carries a
  // latency-breakdown block, and the conservation invariant below becomes
  // part of the campaign's pass/fail verdict.
  obs::SpanRecorder spans(&sim);
  for (size_t i = 0; i < 3; ++i) {
    nodes[i]->EnableMetrics(&reporter.registry(),
                            "n" + std::to_string(i) + ".");
    nodes[i]->EnableSpans(&spans, "n" + std::to_string(i));
    nodes[i]->device().EnableFlightRecorder(reporter.flight_recorder());
  }

  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "INVARIANT FAILED [%s seed %llu]: %s\n",
                   plan.name.c_str(), static_cast<unsigned long long>(seed),
                   what);
      ++failures;
    }
  };
  auto credit = [&](size_t i) {
    return nodes[i]->device().cmb().local_credit();
  };
  auto live_primaries = [&]() {
    size_t primaries = 0;
    for (auto& node : nodes) {
      if (!node->device().halted() &&
          node->device().transport().role() == core::Role::kPrimary) {
        ++primaries;
      }
    }
    return primaries;
  };
  auto fenced_total = [&]() {
    uint64_t fenced = 0;
    for (auto& node : nodes) {
      fenced += node->device().transport().fenced_writes();
    }
    return fenced;
  };
  auto prefix_matches = [&](size_t i, uint64_t n) {
    std::vector<uint8_t> buf(n);
    nodes[i]->device().cmb().CopyOut(0, buf.data(), n);
    for (uint64_t off = 0; off < n; ++off) {
      if (buf[off] != PatternByte(off)) return false;
    }
    return true;
  };
  auto run_until = [&](sim::SimTime t) {
    if (sim.Now() < t) sim.RunFor(t - sim.Now());
  };

  // Reference stream, sliced into seeded random-sized appends.
  std::vector<uint8_t> stream(kAckedBytes + kChainBytes + kSuffixBytes +
                              kPostBytes);
  for (uint64_t off = 0; off < stream.size(); ++off) {
    stream[off] = PatternByte(off);
  }
  sim::Rng rng(seed ^ 0x8A1EC7ull);
  auto append_chunked = [&](host::XLogClient& client, const uint8_t* data,
                            uint64_t bytes) {
    uint64_t done = 0;
    while (done < bytes) {
      uint64_t chunk =
          std::min<uint64_t>(bytes - done, 256 + rng.Uniform(1500));
      if (host::x_pwrite(sim, client, data + done, chunk) !=
          static_cast<ssize_t>(chunk)) {
        break;
      }
      done += chunk;
    }
    return done;
  };

  // Phase 1 (all scenarios): build an acknowledged prefix. After the fsync
  // ack, losing any of these bytes is a failover bug by definition.
  fault::FaultPlan outbound_plan, inbound_plan;
  std::unique_ptr<fault::FaultInjector> injector, inbound_injector;
  if (scenario == Scenario::kPartition) {
    SplitPartitionPlan(plan, &outbound_plan, &inbound_plan);
    injector =
        std::make_unique<fault::FaultInjector>(&sim, outbound_plan, seed);
    inbound_injector =
        std::make_unique<fault::FaultInjector>(&sim, inbound_plan, seed);
    nodes[0]->ntb().set_fault_injector(injector.get());
    // After set_fault_injector, which points both paths at the outbound
    // injector, re-point the inbound scratchpad path at its own plan.
    nodes[0]->ntb().set_scratchpad_fault_injector(inbound_injector.get());
  } else if (scenario == Scenario::kFlap) {
    injector = std::make_unique<fault::FaultInjector>(&sim, plan, seed);
    nodes[0]->ntb().set_fault_injector(injector.get());
  }
  if (injector) {
    injector->SetMetrics(&reporter.registry());
    injector->SetFlightRecorder(reporter.flight_recorder());
  }
  if (inbound_injector) {
    inbound_injector->SetFlightRecorder(reporter.flight_recorder());
  }

  check(append_chunked(nodes[0]->client(), stream.data(), kAckedBytes) ==
            kAckedBytes,
        "phase-1 append did not complete");
  check(host::x_fsync(sim, nodes[0]->client()) == 0, "phase-1 fsync failed");
  const uint64_t acked = credit(0);
  check(acked >= kAckedBytes, "phase-1 fsync acked fewer bytes than written");

  const std::string label = plan.name.empty() ? "plan" : plan.name;
  size_t leader = 0;

  if (scenario == Scenario::kKillPrimary) {
    // Arm the crash clause only now, so its hit counter starts after the
    // acked watermark is established.
    injector = std::make_unique<fault::FaultInjector>(&sim, plan, seed);
    injector->SetMetrics(&reporter.registry());
    injector->SetFlightRecorder(reporter.flight_recorder());
    nodes[0]->ArmFaults(injector.get(), /*install_crash_handler=*/false);
    bool killed = false;
    injector->SetCrashHandler([&](const fault::FaultSpec&) {
      nodes[0]->device().CrashHard();
      killed = true;
    });

    // Keep appending (callback-chained, so the mid-append kill cannot wedge
    // the campaign) until the clause fires.
    uint64_t posted = acked;
    bool posted_all = false;
    std::function<void()> append_next = [&]() {
      if (killed || nodes[0]->device().halted()) return;
      uint64_t chunk = std::min<uint64_t>(acked + kChainBytes - posted,
                                          256 + rng.Uniform(1500));
      if (chunk == 0) {
        posted_all = true;
        return;
      }
      nodes[0]->client().Append(stream.data() + posted, chunk,
                                [&](Status) { append_next(); });
      posted += chunk;
    };
    append_next();
    sim.RunWhile([&]() { return posted_all || killed; });
    for (int i = 0; i < 100 && !killed; ++i) sim.RunFor(sim::Ms(1));
    check(injector->crashed(), "kill-primary: crash clause never fired");

    sim.RunFor(sim::Ms(4));  // detect, elect, promote, fence in survivors
    leader = supervisor.leader_index();
    check(supervisor.promotions() == 1, "promotion did not happen exactly once");
    check(leader != 0, "dead member still believed leader");
    check(supervisor.term() == 2, "promotion did not advance the term");
    check(live_primaries() == 1, "not exactly one live primary");
    check(credit(leader) >= acked, "promoted leader lost acknowledged bytes");
    check(prefix_matches(leader, credit(leader)),
          "promoted log differs from the reference stream");

    // The new leader serves writes; eager acks require the surviving
    // secondary to be fenced in at the new term.
    check(append_chunked(nodes[leader]->client(),
                         stream.data() + nodes[leader]->client().written(),
                         kPostBytes) == kPostBytes,
          "post-failover append did not complete");
    check(host::x_fsync(sim, nodes[leader]->client()) == 0,
          "post-failover fsync failed");
    check(supervisor.promotions() == 1, "a second promotion happened");
    size_t other = 3 - leader;  // the surviving secondary (member 0 is dead)
    check(credit(other) == credit(leader),
          "surviving secondary did not converge");
    check(prefix_matches(other, credit(other)),
          "surviving secondary's log differs from the reference stream");
  } else if (scenario == Scenario::kPartition) {
    sim::SimTime first_at = fault::FaultSpec::kForever;
    sim::SimTime outbound_end = 0;
    for (const fault::FaultSpec& spec : outbound_plan.faults) {
      first_at = std::min(first_at, spec.at);
      outbound_end = std::max(outbound_end, spec.end());
    }
    sim::SimTime inbound_end = outbound_end;
    for (const fault::FaultSpec& spec : inbound_plan.faults) {
      first_at = std::min(first_at, spec.at);
      inbound_end = std::max(inbound_end, spec.end());
    }
    check(sim.Now() < first_at,
          "phase-1 workload overran the partition start; raise at_us");

    // Inside the partition, the isolated primary keeps accepting appends it
    // can no longer replicate. The suffix uses an inverted pattern: were
    // fencing ever to leak one of these bytes into a survivor, the final
    // byte-compare would see it.
    run_until(first_at + sim::Us(50));
    std::vector<uint8_t> doomed(kSuffixBytes);
    for (uint64_t off = 0; off < kSuffixBytes; ++off) {
      doomed[off] = static_cast<uint8_t>(PatternByte(acked + off) ^ 0xFF);
    }
    check(host::x_pwrite(sim, nodes[0]->client(), doomed.data(),
                         doomed.size()) ==
              static_cast<ssize_t>(doomed.size()),
          "partition: local append on the isolated primary failed");

    // Majority side elects while the minority's outbound link is down; once
    // it heals, the deposed primary's retransmits must die at the fence.
    run_until(outbound_end + sim::Us(600));
    check(supervisor.promotions() == 1,
          "majority did not promote exactly once");
    leader = supervisor.leader_index();
    check(leader != 0, "partitioned member still believed leader");
    check(supervisor.term() == 2, "promotion did not advance the term");
    check(fenced_total() >= 1,
          "no stale write from the deposed primary was fenced");

    // Inbound heal: the deposed primary hears the new leader, truncates its
    // divergent suffix, and rejoins as a secondary.
    run_until(inbound_end + sim::Ms(2));
    check(supervisor.demotions() == 1, "deposed primary never stood down");
    check(supervisor.joins() >= 1, "deposed primary was never re-admitted");
    check(live_primaries() == 1, "not exactly one live primary after heal");

    check(append_chunked(nodes[leader]->client(),
                         stream.data() + nodes[leader]->client().written(),
                         kPostBytes) == kPostBytes,
          "post-failover append did not complete");
    check(host::x_fsync(sim, nodes[leader]->client()) == 0,
          "post-failover fsync failed");
    sim.RunFor(sim::Ms(2));  // stream the rejoined member to convergence
    check(credit(leader) >= acked, "new leader lost acknowledged bytes");
    for (size_t i = 0; i < 3; ++i) {
      check(credit(i) == credit(leader), "member did not converge");
      check(prefix_matches(i, credit(i)),
            "member log differs from the reference stream");
    }
  } else {
    // Flap: every fault window is shorter than the failure-detection
    // window, so the supervisor must sit on its hands while retransmission
    // heals the dropped traffic.
    run_until(sim::Us(1500));
    sim.RunFor(sim::Ms(2));
    check(supervisor.promotions() == 0, "flap caused a promotion");
    check(supervisor.demotions() == 0, "flap caused a demotion");
    check(supervisor.removals() == 0, "flap caused a membership removal");
    check(supervisor.leader_index() == 0, "flap moved the leader");
    check(live_primaries() == 1, "not exactly one live primary");
    check(append_chunked(nodes[0]->client(), stream.data() + acked,
                         kSuffixBytes) == kSuffixBytes,
          "post-flap append did not complete");
    check(host::x_fsync(sim, nodes[0]->client()) == 0,
          "post-flap fsync failed");
    leader = 0;
    for (size_t i = 0; i < 3; ++i) {
      check(credit(i) == credit(0), "member did not converge after flap");
      check(prefix_matches(i, credit(i)),
            "member log differs from the reference stream");
    }
    check(injector->totals().ntb_dropped >= 1, "plan injected no faults");
  }

  obs::BreakdownReporter breakdown("ha_campaign");
  breakdown.AddRun(label, spans);
  breakdown.ExportGauges(&reporter.registry(),
                         "bench.ha_campaign." + label + ".");
  check(breakdown.conservation_violations() == 0,
        "latency attribution violated segment/e2e conservation");

  reporter.SetResult(label, "acked", static_cast<double>(acked));
  reporter.SetResult(label, "final_credit",
                     static_cast<double>(credit(leader)));
  reporter.SetResult(label, "promotions",
                     static_cast<double>(supervisor.promotions()));
  reporter.SetResult(label, "demotions",
                     static_cast<double>(supervisor.demotions()));
  reporter.SetResult(label, "removals",
                     static_cast<double>(supervisor.removals()));
  reporter.SetResult(label, "joins", static_cast<double>(supervisor.joins()));
  reporter.SetResult(label, "fenced_writes",
                     static_cast<double>(fenced_total()));
  reporter.SetResult(label, "invariant_failures",
                     static_cast<double>(failures));
  // Nonzero means some scenario step asked for a past timestamp and the
  // scheduler clamped it to Now() — an ordering bug in the scenario.
  reporter.SetResult(label, "schedule_past_clamps",
                     static_cast<double>(sim.past_schedule_clamps()));
  std::printf("plan=%s seed=%llu acked=%llu final=%llu promotions=%llu "
              "fenced=%llu %s\n",
              label.c_str(), static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(acked),
              static_cast<unsigned long long>(credit(leader)),
              static_cast<unsigned long long>(supervisor.promotions()),
              static_cast<unsigned long long>(fenced_total()),
              failures == 0 ? "OK" : "FAILED");
  supervisor.Stop();
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace xssd

int main(int argc, char** argv) {
  using namespace xssd;
  bench::BenchReporter reporter(argc, argv, "ha_campaign");
  if (reporter.sampling_enabled()) {
    // Split-brain sentinel, one rule per member: any window where a
    // device's term fence rejects ring writes is worth an alert — after a
    // failover that is the deposed leader still writing.
    for (int i = 0; i < 3; ++i) {
      obs::SloRule fenced;
      fenced.name = "fenced_writes_n" + std::to_string(i);
      fenced.metric = "n" + std::to_string(i) + ".transport.fenced_writes";
      fenced.pred = obs::SloRule::Pred::kGt;
      fenced.threshold = 0;
      fenced.for_windows = 1;
      reporter.AddSloRule(fenced);
    }
  }

  std::string plan_arg = "kill-primary";
  uint64_t seed = 1;
  const std::vector<std::string>& args = reporter.positional();
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--plan" && i + 1 < args.size()) {
      plan_arg = args[++i];
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: ha_campaign [--plan name|path] [--seed N] "
                   "[--metrics out.json]\n  embedded plans:");
      for (const EmbeddedPlan& p : kEmbeddedPlans) {
        std::fprintf(stderr, " %s", p.name);
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
  }

  Result<fault::FaultPlan> plan = ResolvePlan(plan_arg);
  if (!plan.ok()) {
    std::fprintf(stderr, "cannot load plan '%s': %s\n", plan_arg.c_str(),
                 plan.status().ToString().c_str());
    return 2;
  }

  bench::PrintHeader("HA campaign: " + plan->name + " (seed " +
                     std::to_string(seed) + ")");
  int rc = RunCampaign(reporter, *plan, seed);
  int finish_rc = reporter.Finish();
  return rc != 0 ? rc : finish_rc;
}
