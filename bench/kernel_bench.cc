// DES-kernel microbench: replays four representative event mixes against
// the timer-wheel, legacy binary-heap, and parallel scheduler backends and
// writes BENCH_kernel.json — the per-PR point on the repo's perf trajectory
// (see TESTING.md "Performance trajectory"). CI gates on the wheel's
// events/sec staying above the checked-in floor in
// bench/baselines/kernel_floor.json, on the wheel/heap speedup, and (on
// multi-core runners) on the parallel backend's speedup over the serial
// wheel for the multi-fabric mix.
//
// Usage:
//   kernel_bench [--out BENCH_kernel.json] [--events N] [--seed S]
//                [--mix uniform|pipeline|fuzz|fabric|all]
//                [--backend wheel|heap|both]
//
// The virtual-time workload is identical across backends (same seeds, same
// event order), so only the wall-clock cost of the scheduler differs. The
// fabric mix always runs all three backends; the parallel backend is
// meaningless for the single-domain mixes (it degenerates to the wheel).

#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_pool.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace {

using xssd::sim::EventFn;
using xssd::sim::Rng;
using xssd::sim::Simulator;
using xssd::sim::SimTime;

struct MixStats {
  uint64_t events = 0;
  double wall_sec = 0.0;
  double events_per_sec = 0.0;
  size_t peak_pending = 0;
  uint64_t pool_chunk_allocs = 0;
  uint64_t callback_heap_fallbacks = 0;
  double allocs_per_event = 0.0;
};

struct RunCtx {
  Simulator* sim;
  Rng* rng;
  uint64_t budget;  // chains stop rescheduling once this hits zero
  size_t peak_pending = 0;

  bool Tick() {
    size_t pending = sim->pending_events();
    if (pending > peak_pending) peak_pending = pending;
    if (budget == 0) return false;
    --budget;
    return true;
  }
};

// ---- Mix 1: uniform near-future --------------------------------------
// A steady pool of independent chains, each rescheduling itself a uniform
// 100 ns – 16 us ahead: the "many independent devices" pattern. Exercises
// level-0/1 wheel traffic and mid-size heap depth.

struct UniformChain {
  RunCtx* ctx;
  void operator()() const {
    if (!ctx->Tick()) return;
    ctx->sim->Schedule(ctx->rng->UniformRange(100, 16000), UniformChain{ctx});
  }
};

void SeedUniform(RunCtx* ctx) {
  for (int i = 0; i < 8192; ++i) {
    ctx->sim->Schedule(ctx->rng->UniformRange(100, 16000), UniformChain{ctx});
  }
}

// ---- Mix 2: fig09-style pipeline -------------------------------------
// Concurrent log-append requests, each a fixed latency chain (doorbell →
// PCIe TLP → CMB persist → completion poll → client think), with every
// 64th request kicking off a small flash-program burst tens of
// microseconds out. Reproduces the clustered near-future timestamps plus
// periodic far-bucket writes the real benches generate.

struct PipelineStage {
  RunCtx* ctx;
  uint32_t stage;
  uint32_t request;
  void operator()() const;
};

struct FlashBurst {
  RunCtx* ctx;
  void operator()() const { ctx->Tick(); }  // terminal: program completes
};

void PipelineStage::operator()() const {
  if (!ctx->Tick()) return;
  static constexpr SimTime kStageDelay[] = {150, 400, 250, 800, 500};
  uint32_t next = (stage + 1) % 5;
  uint32_t req = next == 0 ? request + 1 : request;
  if (next == 0 && req % 64 == 0) {
    for (int i = 0; i < 4; ++i) {
      ctx->sim->Schedule(ctx->rng->UniformRange(60000, 90000),
                         FlashBurst{ctx});
    }
  }
  ctx->sim->Schedule(kStageDelay[next], PipelineStage{ctx, next, req});
}

void SeedPipeline(RunCtx* ctx) {
  for (uint32_t r = 0; r < 512; ++r) {
    ctx->sim->Schedule(150 + (r % 97), PipelineStage{ctx, 0, r});
  }
}

// ---- Mix 3: check_campaign fuzz mix ----------------------------------
// The schedule fuzzer's profile: mostly sub-2 us operations, a band of
// 2–100 us device latencies, occasional millisecond timeouts, rare
// 10–100 ms supervision timers, and periodic same-timestamp bursts that
// stress FIFO tie-breaking. Touches every wheel level.

struct FuzzBurst {
  RunCtx* ctx;
  void operator()() const { ctx->Tick(); }  // terminal
};

struct FuzzChain {
  RunCtx* ctx;
  void operator()() const {
    if (!ctx->Tick()) return;
    Rng* rng = ctx->rng;
    uint64_t pick = rng->Uniform(100);
    SimTime delay;
    if (pick < 60) {
      delay = rng->Uniform(2000);
    } else if (pick < 90) {
      delay = rng->UniformRange(2000, 100000);
    } else if (pick < 99) {
      delay = rng->UniformRange(1000000, 10000000);
    } else {
      delay = rng->UniformRange(10000000, 100000000);
    }
    if (rng->Uniform(256) == 0) {
      SimTime burst_at = rng->UniformRange(500, 4000);
      for (int i = 0; i < 16; ++i) {
        ctx->sim->Schedule(burst_at, FuzzBurst{ctx});  // identical timestamp
      }
    }
    ctx->sim->Schedule(delay, FuzzChain{ctx});
  }
};

void SeedFuzz(RunCtx* ctx) {
  for (int i = 0; i < 32768; ++i) {
    ctx->sim->Schedule(ctx->rng->Uniform(100000), FuzzChain{ctx});
  }
}

// ---- Mix 4: multi-fabric NTB mix -------------------------------------
// Four scheduler domains, each a pool of independent near-future chains
// (the per-fabric device traffic), with every 64th chain step forwarding a
// terminal cross-domain event to the next domain one NTB hop latency out —
// the fig13 replication shape at kernel scale. This is the only mix the
// parallel backend can spread across workers; the serial backends merge
// the domains on one thread. All state is per-domain so parallel workers
// never share mutable data.

constexpr uint32_t kFabricDomains = 4;
constexpr SimTime kFabricLookahead = 1300;  // NtbConfig::hop_latency default

struct FabricCtx {
  Simulator* sim;
  struct alignas(64) PerDomain {
    Rng rng{0};
    uint64_t budget = 0;
    uint64_t iter = 0;
    size_t peak_pending = 0;
  };
  std::array<PerDomain, kFabricDomains> dom;

  bool Tick(uint32_t d) {
    PerDomain& pd = dom[d];
    size_t pending = sim->domain_pending_events(d);
    if (pending > pd.peak_pending) pd.peak_pending = pending;
    if (pd.budget == 0) return false;
    --pd.budget;
    return true;
  }
};

struct FabricCross {
  FabricCtx* ctx;
  uint32_t domain;
  void operator()() const { ctx->Tick(domain); }  // terminal: NTB delivery
};

struct FabricChain {
  FabricCtx* ctx;
  uint32_t domain;
  void operator()() const {
    if (!ctx->Tick(domain)) return;
    FabricCtx::PerDomain& pd = ctx->dom[domain];
    if (++pd.iter % 64 == 0) {
      uint32_t peer = (domain + 1) % kFabricDomains;
      ctx->sim->ScheduleIn(peer, kFabricLookahead + pd.rng.Uniform(700),
                           FabricCross{ctx, peer});
    }
    ctx->sim->Schedule(pd.rng.UniformRange(100, 16000),
                       FabricChain{ctx, domain});
  }
};

MixStats RunFabricMix(Simulator::SchedulerBackend backend, uint64_t seed,
                      uint64_t events) {
  Simulator sim(backend);
  sim.ConfigureDomains(kFabricDomains);
  sim.DeclareLookahead(kFabricLookahead);
  FabricCtx ctx;
  ctx.sim = &sim;
  uint64_t fn_heap_before = EventFn::heap_fallbacks();
  for (uint32_t d = 0; d < kFabricDomains; ++d) {
    ctx.dom[d].rng = Rng(seed * kFabricDomains + d + 1);
    ctx.dom[d].budget = events / kFabricDomains;
    Simulator::DomainScope scope(&sim, d);
    for (int i = 0; i < 2048; ++i) {
      sim.Schedule(ctx.dom[d].rng.UniformRange(100, 16000),
                   FabricChain{&ctx, d});
    }
  }

  auto start = std::chrono::steady_clock::now();
  sim.Run();
  auto stop = std::chrono::steady_clock::now();

  MixStats out;
  out.events = sim.executed_events();
  out.wall_sec = std::chrono::duration<double>(stop - start).count();
  out.events_per_sec =
      out.wall_sec > 0 ? static_cast<double>(out.events) / out.wall_sec : 0;
  uint64_t chunks = 0;
  for (uint32_t d = 0; d < kFabricDomains; ++d) {
    out.peak_pending += ctx.dom[d].peak_pending;
    chunks += sim.event_pool(d).chunks_allocated();
  }
  out.pool_chunk_allocs = chunks;
  out.callback_heap_fallbacks = EventFn::heap_fallbacks() - fn_heap_before;
  uint64_t allocs = out.pool_chunk_allocs + out.callback_heap_fallbacks;
  out.allocs_per_event =
      out.events > 0 ? static_cast<double>(allocs) / out.events : 0;
  return out;
}

// ----------------------------------------------------------------------

MixStats RunMix(const std::string& mix, Simulator::SchedulerBackend backend,
                uint64_t seed, uint64_t events) {
  if (mix == "fabric") return RunFabricMix(backend, seed, events);
  Simulator sim(backend);
  Rng rng(seed);
  RunCtx ctx{&sim, &rng, events};
  uint64_t fn_heap_before = EventFn::heap_fallbacks();

  if (mix == "uniform") {
    SeedUniform(&ctx);
  } else if (mix == "pipeline") {
    SeedPipeline(&ctx);
  } else {
    SeedFuzz(&ctx);
  }

  auto start = std::chrono::steady_clock::now();
  sim.Run();  // chains stop rescheduling at budget 0 and the queue drains
  auto stop = std::chrono::steady_clock::now();

  MixStats out;
  out.events = sim.executed_events();
  out.wall_sec = std::chrono::duration<double>(stop - start).count();
  out.events_per_sec =
      out.wall_sec > 0 ? static_cast<double>(out.events) / out.wall_sec : 0;
  out.peak_pending = ctx.peak_pending;
  out.pool_chunk_allocs = sim.event_pool().chunks_allocated();
  out.callback_heap_fallbacks = EventFn::heap_fallbacks() - fn_heap_before;
  uint64_t allocs = out.pool_chunk_allocs + out.callback_heap_fallbacks;
  out.allocs_per_event =
      out.events > 0 ? static_cast<double>(allocs) / out.events : 0;
  return out;
}

void WriteStats(FILE* f, const char* backend, const MixStats& s) {
  std::fprintf(f,
               "      \"%s\": {\n"
               "        \"events\": %" PRIu64
               ",\n"
               "        \"wall_sec\": %.6f,\n"
               "        \"events_per_sec\": %.0f,\n"
               "        \"peak_pending\": %zu,\n"
               "        \"pool_chunk_allocs\": %" PRIu64
               ",\n"
               "        \"callback_heap_fallbacks\": %" PRIu64
               ",\n"
               "        \"allocs_per_event\": %.8f\n"
               "      }",
               backend, s.events, s.wall_sec, s.events_per_sec,
               s.peak_pending, s.pool_chunk_allocs, s.callback_heap_fallbacks,
               s.allocs_per_event);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernel.json";
  std::string mix_arg = "all";
  std::string backend_arg = "both";
  uint64_t events = 2000000;
  uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--events") {
      events = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--mix") {
      mix_arg = next();
    } else if (arg == "--backend") {
      backend_arg = next();
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
      return 2;
    }
  }

  std::vector<std::string> mixes;
  if (mix_arg == "all") {
    mixes = {"uniform", "pipeline", "fuzz", "fabric"};
  } else {
    mixes = {mix_arg};
  }
  bool run_wheel = backend_arg == "both" || backend_arg == "wheel";
  bool run_heap = backend_arg == "both" || backend_arg == "heap";

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"xssd.kernel-bench.v2\",\n"
               "  \"bench\": \"kernel_bench\",\n"
               "  \"config\": {\"seed\": %" PRIu64 ", \"events_per_mix\": %" PRIu64
               ", \"fabric_domains\": %u, \"hardware_threads\": %u},\n"
               "  \"mixes\": {\n",
               seed, events, kFabricDomains,
               std::thread::hardware_concurrency());

  double min_speedup = -1.0;
  double min_wheel_eps = -1.0;
  double fabric_par_speedup = -1.0;
  for (size_t m = 0; m < mixes.size(); ++m) {
    const std::string& mix = mixes[m];
    // The fabric mix always carries a parallel row: the parallel backend is
    // indistinguishable from the wheel on the single-domain mixes.
    bool run_parallel = mix == "fabric";
    std::fprintf(f, "    \"%s\": {\n", mix.c_str());
    MixStats wheel, heap;
    if (run_wheel) {
      wheel = RunMix(mix, Simulator::SchedulerBackend::kWheel, seed, events);
      std::printf("%-8s wheel  %9.0f ev/s  wall %.3fs  peak %zu  "
                  "allocs/ev %.8f\n",
                  mix.c_str(), wheel.events_per_sec, wheel.wall_sec,
                  wheel.peak_pending, wheel.allocs_per_event);
      WriteStats(f, "wheel", wheel);
      if (min_wheel_eps < 0 || wheel.events_per_sec < min_wheel_eps) {
        min_wheel_eps = wheel.events_per_sec;
      }
    }
    if (run_heap) {
      heap = RunMix(mix, Simulator::SchedulerBackend::kHeap, seed, events);
      std::printf("%-8s heap   %9.0f ev/s  wall %.3fs  peak %zu\n",
                  mix.c_str(), heap.events_per_sec, heap.wall_sec,
                  heap.peak_pending);
      if (run_wheel) std::fprintf(f, ",\n");
      WriteStats(f, "heap", heap);
    }
    if (run_parallel && run_wheel) {
      MixStats par =
          RunMix(mix, Simulator::SchedulerBackend::kParallel, seed, events);
      std::printf("%-8s par    %9.0f ev/s  wall %.3fs  peak %zu\n",
                  mix.c_str(), par.events_per_sec, par.wall_sec,
                  par.peak_pending);
      std::fprintf(f, ",\n");
      WriteStats(f, "parallel", par);
      if (wheel.events_per_sec > 0) {
        fabric_par_speedup = par.events_per_sec / wheel.events_per_sec;
        std::fprintf(f, ",\n      \"parallel_vs_wheel_speedup\": %.3f",
                     fabric_par_speedup);
        std::printf("%-8s par/wheel %.2fx\n", mix.c_str(),
                    fabric_par_speedup);
      }
    }
    if (run_wheel && run_heap && heap.events_per_sec > 0) {
      double speedup = wheel.events_per_sec / heap.events_per_sec;
      std::fprintf(f, ",\n      \"wheel_vs_heap_speedup\": %.3f\n", speedup);
      std::printf("%-8s speedup %.2fx\n", mix.c_str(), speedup);
      if (!run_parallel && (min_speedup < 0 || speedup < min_speedup)) {
        min_speedup = speedup;
      }
    } else {
      std::fprintf(f, "\n");
    }
    std::fprintf(f, "    }%s\n", m + 1 < mixes.size() ? "," : "");
  }

  std::fprintf(f, "  },\n  \"summary\": {");
  bool first = true;
  if (min_wheel_eps >= 0) {
    std::fprintf(f, "\"min_wheel_events_per_sec\": %.0f", min_wheel_eps);
    first = false;
  }
  if (min_speedup >= 0) {
    std::fprintf(f, "%s\"min_wheel_vs_heap_speedup\": %.3f",
                 first ? "" : ", ", min_speedup);
    first = false;
  }
  if (fabric_par_speedup >= 0) {
    std::fprintf(f, "%s\"fabric_parallel_vs_wheel_speedup\": %.3f",
                 first ? "" : ", ", fabric_par_speedup);
  }
  std::fprintf(f, "}\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
