// Figure 11 — Effects of CMB Queue Size (paper §6.3).
//
// A controlled append workload (group-commit-sized durable writes, i.e.
// x_pwrite + x_fsync) through the fast side while sweeping both the write
// size (1..64 KiB) and the CMB staging-queue size (4..64 KiB), SRAM
// backing.
//
// Paper shape: once the queue is at least as big as the write, latency is
// dominated by the write size; a 32 KiB queue achieves the best
// throughput across all group-commit sizes.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "host/node.h"
#include "sim/stats.h"

namespace xssd {
namespace {

struct CellResult {
  double mean_latency_us;
  double throughput_mb_s;
};

CellResult RunOne(uint64_t queue_bytes, uint32_t write_bytes,
                  sim::SimTime duration) {
  sim::Simulator sim;
  core::VillarsConfig config =
      bench::PaperVillarsConfig(core::BackingKind::kSram);
  config.cmb.queue_bytes = queue_bytes;
  // A ring large enough that destage pipelining never caps the intake —
  // the sweep isolates the staging-queue flow control.
  config.cmb.ring_bytes = 4ull << 20;

  host::StorageNode node(&sim, config, bench::PaperFabricConfig(), "bench");
  Status status = node.Init();
  if (!status.ok()) std::exit(1);

  std::vector<uint8_t> group(write_bytes, 0x5A);
  sim::LatencyRecorder latency;
  uint64_t bytes_done = 0;
  bool stop = false;

  std::function<void()> pump = [&]() {
    if (stop) return;
    sim::SimTime start = sim.Now();
    node.client().AppendDurable(
        group.data(), group.size(), [&, start](Status s) {
          if (!s.ok()) {
            stop = true;
            return;
          }
          latency.Add(sim::ToUs(sim.Now() - start));
          bytes_done += group.size();
          pump();
        });
  };
  pump();

  sim.RunFor(sim::Ms(2));
  latency.Clear();
  uint64_t start_bytes = bytes_done;
  sim::SimTime start = sim.Now();
  sim.RunFor(duration);
  double secs = sim::ToSec(sim.Now() - start);
  stop = true;
  return CellResult{latency.Mean(),
                    static_cast<double>(bytes_done - start_bytes) / secs / 1e6};
}

}  // namespace
}  // namespace xssd

int main() {
  using namespace xssd;
  const uint32_t write_kb[] = {1, 2, 4, 8, 16, 32, 64};
  const uint64_t queue_kb[] = {4, 8, 16, 32, 64};

  bench::PrintHeader(
      "Figure 11: group-commit size x CMB queue size (SRAM backing)");

  CellResult grid[5][7];
  for (int qi = 0; qi < 5; ++qi) {
    for (int wi = 0; wi < 7; ++wi) {
      grid[qi][wi] =
          RunOne(queue_kb[qi] * 1024, write_kb[wi] * 1024, sim::Ms(10));
    }
  }

  std::printf("\n-- mean durable-append latency (us) --\n");
  std::printf("%-10s", "queue\\wr");
  for (uint32_t w : write_kb) std::printf("%9uK", w);
  std::printf("\n");
  for (int qi = 0; qi < 5; ++qi) {
    std::printf("%8luK ", queue_kb[qi]);
    for (int wi = 0; wi < 7; ++wi) {
      std::printf("%10.1f", grid[qi][wi].mean_latency_us);
    }
    std::printf("\n");
  }

  std::printf("\n-- throughput (MB/s) --\n");
  std::printf("%-10s", "queue\\wr");
  for (uint32_t w : write_kb) std::printf("%9uK", w);
  std::printf("\n");
  for (int qi = 0; qi < 5; ++qi) {
    std::printf("%8luK ", queue_kb[qi]);
    for (int wi = 0; wi < 7; ++wi) {
      std::printf("%10.1f", grid[qi][wi].throughput_mb_s);
    }
    std::printf("\n");
  }
  return 0;
}
