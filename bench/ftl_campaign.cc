// FTL steady-state campaign: drive the device past the sustained-write
// cliff and verify the three properties a log device needs from its FTL —
// bounded write amplification once GC runs continuously, bounded log-append
// tail latency through GC storms (destage priority must hold), and exact
// OOB mapping recovery from a mid-GC power cut. Exits non-zero when any
// gate fails, so CI can sweep seeds and fail loudly.
//
//   ftl_campaign --seed 3 --metrics out.json [--p99-bound-us N]
//
// Two runs share one seed:
//  * steady: sequential fill (fresh device, WA ~= 1), then a hot/cold
//    overwrite churn with concurrent destage-class log appends far past
//    raw capacity. Headline gauges: fill vs steady WA, erased-pool floor,
//    erase-count spread, per-class scheduler queue wait, append p50/p99.
//  * crash: the same churn with a power cut injected mid-GC-relocation;
//    RebuildFromOob() must reproduce the frozen mapping exactly.
//
// A (seed) run is bit-deterministic: two invocations produce identical
// metric snapshots (CI diffs them).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "check/mapping_oracle.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "ftl/ftl.h"
#include "sim/random.h"

namespace xssd {
namespace {

flash::Geometry CampaignGeometry() {
  flash::Geometry g;
  g.channels = 4;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 16;
  g.pages_per_block = 32;
  g.page_bytes = 4096;
  return g;  // 128 blocks, 4096 pages, 16 MiB
}

ftl::FtlConfig CampaignConfig() {
  ftl::FtlConfig config;
  config.buffer_pages = 64;
  config.flush_watermark = 16;
  // GC stops once free blocks reach twice this. The target must be
  // *reachable*: valid pages at the campaign's fill level have to pack into
  // the blocks left over after the free target and the open write points,
  // or GC grinds toward it forever collecting near-fully-valid victims
  // (write amplification approaches pages_per_block).
  config.gc_low_watermark = 4;
  return config;
}

struct LatencyStats {
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

LatencyStats Percentiles(std::vector<sim::SimTime>& lat) {
  LatencyStats out;
  if (lat.empty()) return out;
  std::sort(lat.begin(), lat.end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * static_cast<double>(lat.size() - 1));
    return static_cast<double>(lat[i]) / 1000.0;
  };
  out.p50_us = at(0.50);
  out.p99_us = at(0.99);
  out.max_us = static_cast<double>(lat.back()) / 1000.0;
  return out;
}

struct Gate {
  int failures = 0;
  void Check(bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GATE FAILED: %s\n", what);
      ++failures;
    }
  }
};

// Mixed steady-state churn: hot destage-class log appends over a small
// ring, conventional buffered overwrites over a wider warm set. Returns
// the number of ops issued (the crash run stops early).
int Churn(ftl::Ftl& ftl, sim::Simulator& sim, sim::Rng& rng, uint64_t lpns,
          int ops, std::vector<sim::SimTime>* append_latencies,
          const fault::FaultInjector* injector,
          obs::LatencyRecorder* append_ns = nullptr) {
  const uint64_t log_ring = 256;   // hot destage set: the fig09 log tail
  const uint64_t warm_set = lpns - log_ring;
  uint64_t log_head = 0;
  int issued = 0;
  for (int i = 0; i < ops; ++i) {
    uint8_t fill = static_cast<uint8_t>(rng.Next());
    if (i % 4 == 0) {
      // Log append: destage class, sequential ring — the X-SSD destage
      // stream's view of a circular WAL.
      uint64_t lpn = warm_set + (log_head++ % log_ring);
      sim::SimTime start = sim.Now();
      ftl.WriteDirect(ftl::IoClass::kDestage, lpn,
                      std::vector<uint8_t>(4096, fill),
                      [&, start, append_ns](Status s) {
                        if (!s.ok()) return;
                        if (append_latencies != nullptr) {
                          append_latencies->push_back(sim.Now() - start);
                        }
                        if (append_ns != nullptr) {
                          append_ns->Add(
                              static_cast<double>(sim.Now() - start));
                        }
                      });
    } else {
      // Warm overwrite churn: conventional class through the DRAM buffer.
      uint64_t lpn = rng.Uniform(warm_set);
      ftl.WriteBuffered(lpn, std::vector<uint8_t>(4096, fill),
                        [](Status) {});
    }
    ++issued;
    if (i % 64 == 63) {
      sim.Run();
      if (injector != nullptr && injector->crashed()) break;
    }
  }
  sim.Run();
  return issued;
}

int RunSteady(bench::BenchReporter& reporter, uint64_t seed,
              double p99_bound_us, Gate& gate) {
  sim::Simulator sim;
  flash::Array array(&sim, CampaignGeometry(), flash::Timing{},
                     flash::Reliability{}, seed);
  ftl::Ftl ftl(&sim, &array, CampaignConfig());
  ftl.SetMetrics(&reporter.registry(), "");
  ftl.SetFlightRecorder(reporter.flight_recorder());
  ftl.scheduler().set_policy(ftl::SchedulingPolicy::kDestagePriority);
  // Registered unconditionally so the metrics snapshot is identical with
  // sampling on or off; the sampler additionally windows it when attached.
  obs::LatencyRecorder* append_ns =
      reporter.registry().GetLatency("ftl_campaign.append_ns");
  reporter.AttachTimeSeries(&sim, "steady");
  sim::Rng rng(seed);

  // 90% of logical space (~79% of physical pages): far past the point
  // where the erased pool is gone and GC must run continuously, while the
  // GC free-block target stays reachable and victims still carry garbage —
  // at higher fill GC approaches net-zero reclaim per erase and the
  // campaign time explodes.
  const uint64_t lpns = ftl.page_map().lpn_count() * 90 / 100;

  // Phase 1 — sequential fill of a fresh device. Every program lands in an
  // erased block; write amplification must stay at exactly 1.
  for (uint64_t lpn = 0; lpn < lpns; ++lpn) {
    ftl.WriteBuffered(lpn, std::vector<uint8_t>(4096, 0xF1), [](Status) {});
    if (lpn % 128 == 127) sim.Run();
  }
  Status flushed = Status::Internal("pending");
  ftl.Flush([&](Status s) { flushed = s; });
  sim.Run();
  gate.Check(flushed.ok(), "fill-phase flush failed");
  const double fill_wa = ftl.stats().WriteAmplification();
  const uint64_t fill_hosts = ftl.stats().host_writes;
  const uint64_t fill_programs = ftl.stats().flash_programs;
  gate.Check(fill_wa <= 1.01, "fill-phase write amplification above 1");

  // Phase 2 — sustained overwrites past the cliff. The erased pool is
  // gone; every host page now costs GC relocations too.
  ftl.scheduler().ResetStats();
  std::vector<sim::SimTime> append_latencies;
  Churn(ftl, sim, rng, lpns, /*ops=*/24000, &append_latencies,
        /*injector=*/nullptr, append_ns);

  const uint64_t steady_hosts = ftl.stats().host_writes - fill_hosts;
  const uint64_t steady_programs = ftl.stats().flash_programs - fill_programs;
  const double steady_wa = steady_hosts == 0
                               ? 0.0
                               : static_cast<double>(steady_programs) /
                                     static_cast<double>(steady_hosts);
  LatencyStats lat = Percentiles(append_latencies);
  const double conv_wait_us =
      static_cast<double>(ftl.scheduler().wait_ns(ftl::IoClass::kConventional)) /
      1000.0;
  const double destage_wait_us =
      static_cast<double>(ftl.scheduler().wait_ns(ftl::IoClass::kDestage)) /
      1000.0;
  const uint64_t destage_issued = ftl.scheduler().issued(ftl::IoClass::kDestage);
  const double destage_mean_priority =
      destage_issued == 0 ? 0.0
                          : destage_wait_us / static_cast<double>(destage_issued);

  // Gates: the cliff was actually crossed, GC ran a sustained storm, and
  // the append tail stayed bounded.
  gate.Check(steady_wa > 1.1, "steady-state write amplification not past 1");
  gate.Check(ftl.stats().gc_erases > 100, "churn never forced a GC storm");
  gate.Check(!append_latencies.empty(), "no log append ever completed");
  gate.Check(lat.p99_us <= p99_bound_us,
             "log-append p99 exceeded the tail bound through GC storms");

  // Phase 3 — destage-priority contention probe. Same steady-state device,
  // same churn, scheduler policy flipped to neutral: the GC-vs-destage
  // channel contention the destage class absorbs without its priority.
  // Destage appends must not wait longer WITH priority than without — the
  // no-priority-inversion property, measured rather than assumed.
  ftl.scheduler().set_policy(ftl::SchedulingPolicy::kNeutral);
  ftl.scheduler().ResetStats();
  Churn(ftl, sim, rng, lpns, /*ops=*/8000, nullptr, /*injector=*/nullptr);
  const uint64_t neutral_issued = ftl.scheduler().issued(ftl::IoClass::kDestage);
  const double destage_mean_neutral =
      neutral_issued == 0
          ? 0.0
          : static_cast<double>(
                ftl.scheduler().wait_ns(ftl::IoClass::kDestage)) /
                1000.0 / static_cast<double>(neutral_issued);
  gate.Check(destage_mean_priority <= destage_mean_neutral * 1.05,
             "destage-priority inversion: log appends queued longer with "
             "priority than under the neutral policy");

  gate.Check(ftl.wear().Spread() <=
                 CampaignConfig().gc_max_erase_spread + 8,
             "erase-count spread escaped the wear-leveling bound");

  // The steady-state flash image must also rebuild exactly (no crash —
  // this is the cheap always-on recovery oracle).
  std::vector<check::Divergence> divergences =
      check::CheckRebuildMatches(ftl, array.geometry());
  for (const check::Divergence& d : divergences) {
    std::fprintf(stderr, "rebuild divergence: %s — %s\n", d.rule.c_str(),
                 d.detail.c_str());
  }
  gate.Check(divergences.empty(), "steady-state OOB rebuild diverged");

  reporter.SetResult("steady", "fill_wa", fill_wa);
  reporter.SetResult("steady", "steady_wa", steady_wa);
  reporter.SetResult("steady", "gc_erases",
                     static_cast<double>(ftl.stats().gc_erases));
  reporter.SetResult("steady", "gc_relocations",
                     static_cast<double>(ftl.stats().gc_relocations));
  reporter.SetResult("steady", "free_blocks",
                     static_cast<double>(ftl.free_blocks()));
  reporter.SetResult("steady", "erase_spread",
                     static_cast<double>(ftl.wear().Spread()));
  reporter.SetResult("steady", "append_p50_us", lat.p50_us);
  reporter.SetResult("steady", "append_p99_us", lat.p99_us);
  reporter.SetResult("steady", "append_max_us", lat.max_us);
  reporter.SetResult("steady", "conv_wait_us", conv_wait_us);
  reporter.SetResult("steady", "destage_wait_us", destage_wait_us);
  reporter.SetResult("steady", "destage_mean_wait_priority_us",
                     destage_mean_priority);
  reporter.SetResult("steady", "destage_mean_wait_neutral_us",
                     destage_mean_neutral);
  reporter.SetResult("steady", "rebuild_mismatch",
                     static_cast<double>(divergences.size()));

  std::printf(
      "steady: fill_wa=%.3f steady_wa=%.3f gc_erases=%llu spread=%u "
      "append_p50=%.1fus p99=%.1fus rebuild_mismatch=%zu\n",
      fill_wa, steady_wa,
      static_cast<unsigned long long>(ftl.stats().gc_erases),
      ftl.wear().Spread(), lat.p50_us, lat.p99_us, divergences.size());
  return gate.failures;
}

int RunCrash(bench::BenchReporter& reporter, uint64_t seed, Gate& gate) {
  sim::Simulator sim;
  flash::Array array(&sim, CampaignGeometry(), flash::Timing{},
                     flash::Reliability{}, seed);
  fault::FaultPlan plan =
      fault::FaultPlanBuilder("ftl-campaign-cut")
          .Crash("ftl.gc.relocate", /*after_hits=*/120, /*graceful=*/false)
          .Build();
  fault::FaultInjector injector(&sim, plan, seed);
  injector.SetFlightRecorder(reporter.flight_recorder());
  ftl::Ftl ftl(&sim, &array, CampaignConfig());
  ftl.SetMetrics(&reporter.registry(), "crash.");
  ftl.SetFaultInjector(&injector, "");
  ftl.SetFlightRecorder(reporter.flight_recorder(), "crash");
  reporter.AttachTimeSeries(&sim, "crash");
  sim::Rng rng(seed);

  const uint64_t lpns = ftl.page_map().lpn_count() * 90 / 100;
  for (uint64_t lpn = 0; lpn < lpns; ++lpn) {
    ftl.WriteBuffered(lpn, std::vector<uint8_t>(4096, 0xF2), [](Status) {});
    if (lpn % 128 == 127) {
      sim.Run();
      if (injector.crashed()) break;
    }
  }
  if (!injector.crashed()) {
    Churn(ftl, sim, rng, lpns, /*ops=*/24000, nullptr, &injector);
  }
  sim.Run();  // power-cut model: issued NAND physics completes, no new work
  gate.Check(injector.crashed(), "mid-GC crash clause never fired");

  ftl::RebuildReport report;
  ftl::PageMap rebuilt = ftl.RebuildFromOob(&report);
  bool exact = rebuilt == ftl.page_map();
  std::vector<check::Divergence> divergences =
      check::CheckRebuildMatches(ftl, array.geometry());
  for (const check::Divergence& d : divergences) {
    std::fprintf(stderr, "crash rebuild divergence: %s — %s\n",
                 d.rule.c_str(), d.detail.c_str());
  }
  gate.Check(exact && divergences.empty(),
             "mid-GC crash rebuild is not byte-identical");
  gate.Check(report.oob_decode_failures == 0,
             "OOB records corrupted on a clean power cut");

  reporter.SetResult("crash", "rebuild_mismatch",
                     static_cast<double>(divergences.size()));
  reporter.SetResult("crash", "pages_scanned",
                     static_cast<double>(report.pages_scanned));
  reporter.SetResult("crash", "stale_copies",
                     static_cast<double>(report.stale_copies));
  reporter.SetResult("crash", "mapped",
                     static_cast<double>(report.mapped));
  std::printf("crash: scanned=%llu stale=%llu mapped=%llu mismatch=%zu\n",
              static_cast<unsigned long long>(report.pages_scanned),
              static_cast<unsigned long long>(report.stale_copies),
              static_cast<unsigned long long>(report.mapped),
              divergences.size());
  return gate.failures;
}

}  // namespace
}  // namespace xssd

int main(int argc, char** argv) {
  using namespace xssd;
  bench::BenchReporter reporter(argc, argv, "ftl_campaign");

  uint64_t seed = 1;
  double p99_bound_us = 5000.0;
  const std::vector<std::string>& args = reporter.positional();
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--p99-bound-us" && i + 1 < args.size()) {
      p99_bound_us = std::strtod(args[++i].c_str(), nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: ftl_campaign [--seed N] [--p99-bound-us X] "
                   "[--metrics out.json]\n");
      return 2;
    }
  }

  bench::PrintHeader("FTL steady-state campaign (seed " +
                     std::to_string(seed) + ")");
  if (reporter.sampling_enabled()) {
    // Headline gates as declarative SLO rules, evaluated per window by the
    // samplers AttachTimeSeries creates. The write-cliff rule is the phase
    // detector: fill runs at WA ~= 1.0, steady churn past the cliff pushes
    // the ftl.write_amp gauge beyond 1.5 and holds it there.
    obs::SloRule cliff;
    cliff.name = "write_cliff";
    cliff.metric = "ftl.write_amp";
    cliff.pred = obs::SloRule::Pred::kGt;
    cliff.threshold = 1.5;
    cliff.for_windows = 2;
    reporter.AddSloRule(cliff);
    obs::SloRule tail;
    tail.name = "append_tail";
    tail.metric = "ftl_campaign.append_ns";
    tail.stat = "p99";
    tail.pred = obs::SloRule::Pred::kGt;
    tail.threshold = p99_bound_us * 4.0 * 1000.0;  // well past the gate
    tail.for_windows = 3;
    tail.fatal = true;
    reporter.AddSloRule(tail);
  }
  Gate gate;
  RunSteady(reporter, seed, p99_bound_us, gate);
  RunCrash(reporter, seed, gate);
  if (reporter.sampling_enabled()) {
    // The watchdog must have *seen* the cliff: the rule alerting is the
    // time-series pipeline's end-to-end proof (windows closed, the gauge
    // was sampled, the streak logic fired).
    gate.Check(reporter.SloAlerts("write_cliff") >= 1,
               "watchdog never alerted on the write cliff");
    std::printf("watchdog: write_cliff alerts=%llu\n",
                static_cast<unsigned long long>(
                    reporter.SloAlerts("write_cliff")));
  }
  reporter.SetResult("campaign", "gate_failures",
                     static_cast<double>(gate.failures));
  std::printf("ftl_campaign seed=%llu %s (%d gate failures)\n",
              static_cast<unsigned long long>(seed),
              gate.failures == 0 ? "OK" : "FAILED", gate.failures);
  int finish_rc = reporter.Finish();
  return gate.failures != 0 ? 1 : finish_rc;
}
