// Conformance-fuzzing campaign: run seeded randomized schedules through
// the full DES stack and cross-check every observable protocol step
// against the reference model (src/check). Exits non-zero on the first
// oracle divergence, after dumping the failing schedule and its shrunk
// counterexample as replayable trace files.
//
//   check_campaign --runs 500 --seed 1 --ops 40 --shrink --metrics out.json
//   check_campaign --replay counterexample.trace
//   check_campaign --plant-bug --runs 50 --shrink
//
// Flags:
//   --runs N       schedules to run (seeds seed, seed+1, ...; default 100)
//   --seed S       first seed (default 1)
//   --ops N        ops per generated schedule (default 40)
//   --shrink       minimize a failing schedule before exiting
//   --dump-dir D   where failing traces go (default ".")
//   --replay PATH  run one schedule from a dumped trace file and exit
//   --plant-bug    enable the planted early-credit ordering bug; the
//                  campaign then must find a divergence and shrink it to
//                  <= 15 ops, and exits non-zero if the oracle misses it
//                  (the self-test CI gates on)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "check/conformance.h"
#include "check/schedule.h"
#include "check/shrink.h"

namespace xssd {
namespace {

constexpr size_t kPlantedShrinkTarget = 15;  // acceptance: <= 15 ops

int WriteTrace(const std::string& path, const check::Schedule& schedule) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << check::ToText(schedule);
  std::printf("  dumped: %s\n", path.c_str());
  return 0;
}

void PrintResult(uint64_t seed, const check::CheckResult& result) {
  std::printf(
      "seed %llu: %s (%zu ops, %llu bytes appended%s%s)\n",
      static_cast<unsigned long long>(seed),
      result.ok ? "conforms" : result.first_divergence.c_str(),
      result.ops_executed,
      static_cast<unsigned long long>(result.appended),
      result.crashed ? (result.graceful_crash ? ", graceful crash"
                                              : ", hard crash")
                     : "",
      result.recovered ? ", recovered" : "");
}

}  // namespace

int Main(int argc, char** argv) {
  bench::BenchReporter reporter(argc, argv, "check_campaign");

  uint64_t first_seed = 1;
  size_t runs = 100;
  size_t ops = 40;
  bool shrink = false;
  bool plant_bug = false;
  std::string dump_dir = ".";
  std::string replay_path;

  const auto& args = reporter.positional();
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--seed" && i + 1 < args.size()) {
      first_seed = std::stoull(args[++i]);
    } else if (args[i] == "--runs" && i + 1 < args.size()) {
      runs = std::stoul(args[++i]);
    } else if (args[i] == "--ops" && i + 1 < args.size()) {
      ops = std::stoul(args[++i]);
    } else if (args[i] == "--shrink") {
      shrink = true;
    } else if (args[i] == "--plant-bug") {
      plant_bug = true;
    } else if (args[i] == "--dump-dir" && i + 1 < args.size()) {
      dump_dir = args[++i];
    } else if (args[i] == "--replay" && i + 1 < args.size()) {
      replay_path = args[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", args[i].c_str());
      return 2;
    }
  }

  check::CheckOptions options;
  options.plant_early_credit_bug = plant_bug;

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", replay_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    Result<check::Schedule> schedule = check::ScheduleFromText(buf.str());
    if (!schedule.ok()) {
      std::fprintf(stderr, "bad trace: %s\n",
                   schedule.status().ToString().c_str());
      return 2;
    }
    check::CheckResult result = check::RunSchedule(*schedule, options);
    PrintResult(schedule->seed, result);
    if (!result.ok) {
      for (const auto& d : result.divergences) {
        std::printf("  %s\n", d.ToString().c_str());
      }
    }
    reporter.Finish();
    return result.ok ? 0 : 1;
  }

  bench::PrintHeader(plant_bug
                         ? "conformance campaign (planted ordering bug)"
                         : "conformance campaign");
  size_t conforming = 0;
  size_t crashes = 0;
  size_t failovers = 0;
  size_t divergences = 0;
  int exit_code = 0;

  for (size_t run = 0; run < runs; ++run) {
    uint64_t seed = first_seed + run;
    check::Schedule schedule = check::GenerateSchedule(seed, ops);
    check::CheckResult result = check::RunSchedule(schedule, options);
    if (result.crashed) ++crashes;
    if (result.failed_over) ++failovers;
    if (result.ok) {
      ++conforming;
      continue;
    }
    ++divergences;
    PrintResult(seed, result);

    if (plant_bug) {
      // The planted-bug self-test only needs one counterexample; prove
      // the shrinker can minimize it and stop.
      check::ShrinkResult shrunk =
          check::ShrinkSchedule(schedule, options);
      std::printf(
          "  planted bug caught; shrunk %zu -> %zu ops in %zu runs: %s\n",
          schedule.ops.size(), shrunk.schedule.ops.size(), shrunk.runs,
          shrunk.divergence.c_str());
      WriteTrace(dump_dir + "/planted.trace", schedule);
      WriteTrace(dump_dir + "/planted.shrunk.trace", shrunk.schedule);
      reporter.SetResult("planted", "found", 1);
      reporter.SetResult("planted", "shrunk_ops",
                         static_cast<double>(shrunk.schedule.ops.size()));
      reporter.SetResult("planted", "shrink_runs",
                         static_cast<double>(shrunk.runs));
      if (!shrunk.still_failing ||
          shrunk.schedule.ops.size() > kPlantedShrinkTarget) {
        std::fprintf(stderr,
                     "FAIL: shrunk counterexample has %zu ops "
                     "(target <= %zu) or stopped failing\n",
                     shrunk.schedule.ops.size(), kPlantedShrinkTarget);
        reporter.Finish();
        return 1;
      }
      std::printf("\nplanted-bug self-test passed (%zu-op counterexample)\n",
                  shrunk.schedule.ops.size());
      reporter.Finish();
      return 0;
    }

    // A real divergence: dump the schedule (and its minimized form) for
    // replay, then fail the campaign.
    std::string base =
        dump_dir + "/diverged-seed" + std::to_string(seed);
    WriteTrace(base + ".trace", schedule);
    if (shrink) {
      check::ShrinkResult shrunk = check::ShrinkSchedule(schedule, options);
      std::printf("  shrunk %zu -> %zu ops in %zu runs: %s\n",
                  schedule.ops.size(), shrunk.schedule.ops.size(),
                  shrunk.runs, shrunk.divergence.c_str());
      WriteTrace(base + ".shrunk.trace", shrunk.schedule);
    }
    exit_code = 1;
    break;
  }

  if (plant_bug) {
    std::fprintf(stderr,
                 "FAIL: planted ordering bug survived %zu schedules "
                 "undetected\n",
                 runs);
    reporter.Finish();
    return 1;
  }

  std::printf("\n%zu/%zu schedules conform (%zu crash/recovery runs, "
              "%zu failover runs, %zu divergences)\n",
              conforming, runs, crashes, failovers, divergences);
  reporter.SetResult("campaign", "runs", static_cast<double>(runs));
  reporter.SetResult("campaign", "conforming",
                     static_cast<double>(conforming));
  reporter.SetResult("campaign", "crash_runs", static_cast<double>(crashes));
  reporter.SetResult("campaign", "failover_runs",
                     static_cast<double>(failovers));
  reporter.SetResult("campaign", "divergences",
                     static_cast<double>(divergences));
  int finish = reporter.Finish();
  return exit_code != 0 ? exit_code : finish;
}

}  // namespace xssd

int main(int argc, char** argv) { return xssd::Main(argc, argv); }
