// Crash consistency: append a WAL, cut the power mid-stream, let the
// supercap-backed emergency destage drain the fast side, reboot, and
// recover the log from the conventional-side destage ring — verifying the
// paper's §4.1 guarantee: everything the credit counter acknowledged is
// recovered, and the recovered stream never spans a gap.
//
// Build & run:   ./build/examples/crash_recovery

#include <cstdio>
#include <cstring>
#include <vector>

#include "db/log_record.h"
#include "host/node.h"
#include "host/recovery.h"
#include "host/xcalls.h"

using namespace xssd;

int main() {
  sim::Simulator sim;
  core::VillarsConfig config;
  host::StorageNode node(&sim, config, pcie::FabricConfig{}, "crash");
  if (!node.Init().ok()) return 1;

  // Build a WAL of real serialized log records so recovery can replay it.
  std::vector<uint8_t> wal;
  for (uint64_t txn = 1; txn <= 2000; ++txn) {
    db::LogRecord record;
    record.txn_id = txn;
    record.table_id = 1;
    record.op = db::LogOp::kUpdate;
    record.key = txn * 17;
    record.payload.assign(100, static_cast<uint8_t>(txn));
    db::SerializeLogRecord(record, &wal);
  }

  // Append record by record (as a database would), and cut the power while
  // the stream is still flowing.
  size_t submitted = 0;
  std::function<void()> append_next = [&]() {
    size_t chunk = std::min<size_t>(129, wal.size() - submitted);
    if (chunk == 0) return;
    node.client().Append(wal.data() + submitted, chunk,
                         [&](Status) { append_next(); });
    submitted += chunk;
  };
  append_next();
  sim.RunFor(sim::Us(60));  // part of the stream is through; part is not

  uint64_t acknowledged = node.device().cmb().local_credit();
  std::printf("power fails: %zu/%zu bytes submitted, %lu persistent "
              "(credit counter)\n",
              submitted, wal.size(), acknowledged);

  bool destaged = false;
  node.device().PowerFail([&]() { destaged = true; });
  sim.RunFor(sim::Ms(50));
  if (!destaged) {
    std::fprintf(stderr, "emergency destage did not finish\n");
    return 1;
  }
  std::printf("supercap destage complete; device halted\n");

  node.device().Reboot();
  std::printf("device rebooted (epoch %u); scanning the destage ring...\n",
              node.device().epoch());

  Result<host::RecoveredLog> recovered = host::RecoverLog(
      sim, node.driver(), node.device().destage().ring_start_lba(),
      node.device().destage().ring_lba_count());
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("recovered [%lu, %lu): %zu bytes from %lu valid pages\n",
              recovered->start_offset, recovered->end_offset(),
              recovered->data.size(), recovered->pages_valid);

  // Guarantee 1: at least everything acknowledged is back.
  if (recovered->end_offset() < acknowledged) {
    std::fprintf(stderr, "LOST ACKNOWLEDGED DATA\n");
    return 1;
  }
  // Guarantee 2: the bytes match what was written.
  if (std::memcmp(recovered->data.data(), wal.data(),
                  recovered->data.size()) != 0) {
    std::fprintf(stderr, "RECOVERED BYTES DIFFER\n");
    return 1;
  }
  // Replay: parse records, stopping cleanly at the torn tail.
  bool torn = false;
  auto records = db::ParseLogStream(recovered->data, &torn);
  std::printf("replayed %zu complete log records (%s tail)\n",
              records.size(), torn ? "torn" : "clean");
  std::printf("crash-consistency contract holds: acknowledged %lu <= "
              "recovered %lu, no gaps\n",
              acknowledged, recovered->end_offset());
  return 0;
}
