// TPC-C logging comparison: run the bundled main-memory database under a
// TPC-C mix with its WAL on (a) the Villars fast side and (b) the
// conventional block side, and compare commit throughput and latency —
// the headline scenario of the paper (Figure 9, condensed).
//
// Build & run:   ./build/examples/tpcc_logging [workers] [measure_ms]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "db/log_backend.h"
#include "db/log_manager.h"
#include "db/tpcc.h"
#include "db/workload.h"
#include "host/node.h"

using namespace xssd;

namespace {

void RunOnce(const char* name, bool use_fast_side, uint32_t workers,
             sim::SimTime measure) {
  sim::Simulator sim;
  core::VillarsConfig config;
  host::StorageNode node(&sim, config, pcie::FabricConfig{}, "tpcc");
  if (!node.Init().ok()) std::exit(1);

  std::unique_ptr<db::LogBackend> backend;
  if (use_fast_side) {
    backend = std::make_unique<db::VillarsLogBackend>(&node.client());
  } else {
    backend = std::make_unique<db::NvmeLogBackend>(&node.driver(),
                                                   /*start_lba=*/4096,
                                                   /*lba_count=*/4096);
  }

  db::LogManager log(&sim, backend.get());
  db::Database database(&log);
  db::TpccWorkload workload(&database, db::TpccConfig{}, 2024);
  workload.Populate();

  db::WorkloadDriver driver(&sim, &database, &workload, workers);
  db::WorkloadResult result = driver.Run(sim::Ms(100), measure);

  std::printf("%-14s %8u %12.0f %12.1f %10.1f %12.0f %14.1f\n", name,
              workers, result.txns_per_sec, result.latency_us.Mean(),
              result.latency_us.Percentile(99),
              result.log_bytes_per_sec / 1e6, result.avg_log_bytes_per_txn);
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t workers = argc > 1 ? std::atoi(argv[1]) : 8;
  sim::SimTime measure = sim::Ms(argc > 2 ? std::atoi(argv[2]) : 300);

  std::printf("TPC-C (16 warehouses), pipelined 16 KiB group commit\n");
  std::printf("%-14s %8s %12s %12s %10s %12s %14s\n", "log backend",
              "workers", "txn/s", "mean_us", "p99_us", "log_MB/s",
              "bytes/txn");
  RunOnce("villars-fast", true, workers, measure);
  RunOnce("conventional", false, workers, measure);
  std::printf(
      "\nThe fast side absorbs the same WAL at PM latency; the block path\n"
      "pays the NAND program on every group commit (paper section 6.1).\n");
  return 0;
}
