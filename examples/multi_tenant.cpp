// Multi-tenant X-SSD (paper §7.2): a hyperscaler packs two virtual
// databases onto one device. The CMB is segmented into independent
// partitions — each tenant gets its own PM ring, credit counter, and
// destage ring on the shared conventional side — and an unmodified client
// simply points at its partition's base address.
//
// Build & run:   ./build/examples/multi_tenant

#include <cstdio>

#include "core/partitioned_device.h"
#include "db/log_backend.h"
#include "db/log_manager.h"
#include "db/tpcc.h"
#include "db/workload.h"
#include "host/xlog_client.h"
#include "nvme/driver.h"

using namespace xssd;

int main() {
  sim::Simulator sim;
  pcie::PcieFabric fabric(&sim, pcie::FabricConfig{}, "host");

  // Two tenants: a big one with a roomy ring, a small one.
  core::PartitionedConfig config;
  core::PartitionConfig big, small;
  big.cmb.ring_bytes = 128 * 1024;
  big.destage.ring_start_lba = 0;
  big.destage.ring_lba_count = 1024;
  small.cmb.ring_bytes = 64 * 1024;
  small.cmb.queue_bytes = 16 * 1024;
  small.destage.ring_start_lba = 1024;
  small.destage.ring_lba_count = 512;
  config.partitions = {big, small};

  core::PartitionedVillars device(&sim, &fabric, config, "mt-xssd");
  if (!device.Attach(0xF000'0000, 0xE000'0000).ok()) return 1;
  nvme::Driver driver(&sim, &fabric, &device.controller(), 0xF000'0000);
  if (!driver.Initialize().ok()) return 1;

  host::XLogClient tenant_a(&sim, &fabric, device.partition_base(0));
  host::XLogClient tenant_b(&sim, &fabric, device.partition_base(1));
  if (!tenant_a.Setup().ok() || !tenant_b.Setup().ok()) return 1;

  std::printf("one device, %zu tenants: rings %lu KiB and %lu KiB\n",
              device.partition_count(), tenant_a.ring_bytes() / 1024,
              tenant_b.ring_bytes() / 1024);

  // Each tenant runs its own database with its own WAL.
  db::VillarsLogBackend backend_a(&tenant_a), backend_b(&tenant_b);
  db::LogManager log_a(&sim, &backend_a), log_b(&sim, &backend_b);
  db::Database db_a(&log_a), db_b(&log_b);
  db::TpccConfig tpcc;
  tpcc.warehouses = 4;
  db::TpccWorkload workload_a(&db_a, tpcc, 1), workload_b(&db_b, tpcc, 2);
  workload_a.Populate();
  workload_b.Populate();

  // Start both drivers on the same simulator: truly concurrent tenants.
  db::WorkloadDriver driver_a(&sim, &db_a, &workload_a, 4, 11);
  db::WorkloadDriver driver_b(&sim, &db_b, &workload_b, 2, 22);
  // Interleave manually: run A's workload while B's also runs by starting
  // both before pumping the shared simulator.
  db::WorkloadResult result_a, result_b;
  // WorkloadDriver::Run pumps the shared simulator; the second Run returns
  // immediately-ish since virtual time already advanced — so run tenant B
  // first for its warmup, then A (both sets of workers stay active).
  result_b = driver_b.Run(sim::Ms(20), sim::Ms(200));
  result_a = driver_a.Run(sim::Ms(20), sim::Ms(200));

  std::printf("tenant A: %8.0f txn/s, %7.1f us mean commit latency\n",
              result_a.txns_per_sec, result_a.latency_us.Mean());
  std::printf("tenant B: %8.0f txn/s, %7.1f us mean commit latency\n",
              result_b.txns_per_sec, result_b.latency_us.Mean());
  std::printf("credits: A=%lu B=%lu (independent counters)\n",
              device.cmb(0).local_credit(), device.cmb(1).local_credit());
  std::printf("destaged: A=%lu B=%lu bytes into disjoint flash rings\n",
              device.destage(0).destaged(), device.destage(1).destaged());
  return 0;
}
