// Log shipping: a primary and two secondary Villars devices over NTB.
// The primary's database appends its WAL; the devices replicate the
// stream; the secondary hosts read the shipped log from their own device
// with x_pread — the full right-hand side of the paper's Figure 1 —
// and finally a secondary is promoted to primary via the vendor admin
// command after the primary "fails".
//
// Build & run:   ./build/examples/log_shipping

#include <cstdio>
#include <cstring>
#include <string>

#include "host/node.h"
#include "host/sync.h"
#include "host/xcalls.h"

using namespace xssd;

namespace {

Status Promote(host::StorageNode& node) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetRole);
  cmd.cdw10 = static_cast<uint32_t>(core::Role::kPrimary);
  host::SyncRunner runner(&node.simulator());
  return runner.Await([&](std::function<void(Status)> done) {
    node.driver().Admin(cmd, [done = std::move(done)](
                                 nvme::Completion cpl) mutable {
      done(cpl.ok() ? Status::OK() : Status::IoError("promote failed"));
    });
  });
}

}  // namespace

int main() {
  sim::Simulator sim;
  core::VillarsConfig config;

  host::StorageNode primary(&sim, config, pcie::FabricConfig{}, "primary");
  host::StorageNode sec_a(&sim, config, pcie::FabricConfig{}, "sec-a");
  host::StorageNode sec_b(&sim, config, pcie::FabricConfig{}, "sec-b");
  for (host::StorageNode* node : {&primary, &sec_a, &sec_b}) {
    Status status = node->Init();
    if (!status.ok()) {
      std::fprintf(stderr, "%s init failed: %s\n", node->name().c_str(),
                   status.ToString().c_str());
      return 1;
    }
  }

  // Eager replication: the credit counter the primary's database reads
  // only advances when *every* secondary has persisted the bytes.
  host::ReplicationGroup group({&primary, &sec_a, &sec_b});
  Status status =
      group.Setup(core::ReplicationProtocol::kEager, sim::UsF(0.8));
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("replication group up: primary + 2 secondaries (eager)\n");

  // Ship a WAL: x_pwrite on the primary, fsync waits for both secondaries.
  std::string wal;
  for (int i = 0; i < 50; ++i) {
    wal += "txn-" + std::to_string(i) + ":payment(w=3,d=7,amount=42.00);";
  }
  host::x_pwrite(sim, primary.client(), wal.data(), wal.size());
  if (host::x_fsync(sim, primary.client()) != 0) return 1;

  std::printf("primary fsync done: local credit %lu, shadows [%lu, %lu]\n",
              primary.device().cmb().local_credit(),
              primary.device().transport().shadow_counter(0),
              primary.device().transport().shadow_counter(1));

  // Secondary-side consumption (Figure 1 right, step 3): the standby
  // database reads the shipped log from its *own* device's destage ring.
  std::vector<char> shipped(wal.size());
  ssize_t n = host::x_pread(sim, sec_a.client(), sec_a.driver(),
                            shipped.data(), shipped.size());
  bool match = n == static_cast<ssize_t>(wal.size()) &&
               std::memcmp(shipped.data(), wal.data(), wal.size()) == 0;
  std::printf("sec-a replayed %zd bytes from its conventional side: %s\n", n,
              match ? "IDENTICAL to primary WAL" : "MISMATCH");
  if (!match) return 1;

  // "Failover": the primary goes away; promote sec-a by admin command
  // (paper §7.1 — promotion is the database's decision, done in software).
  primary.device().PowerFail([]() {});
  sim.RunFor(sim::Ms(5));
  status = Promote(sec_a);
  std::printf("primary lost; sec-a promoted: %s (role now %u)\n",
              status.ToString().c_str(),
              static_cast<unsigned>(sec_a.device().transport().role()));

  // The new primary's client adopts the replicated tail, then keeps
  // taking log writes.
  if (!sec_a.client().ResumeAtDeviceTail().ok()) return 1;
  const char more[] = "txn-after-failover:new_order(w=1);";
  host::x_pwrite(sim, sec_a.client(), more, sizeof(more) - 1);
  if (host::x_fsync(sim, sec_a.client()) != 0) return 1;
  std::printf("new primary accepted %zu more bytes durably\n",
              sizeof(more) - 1);
  return 0;
}
