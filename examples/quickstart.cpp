// Quickstart: bring up a simulated server with one Villars device, append
// a transaction log through the fast side with the drop-in calls
// (x_pwrite / x_fsync), watch the credit counter, and read the log tail
// back from the conventional side (x_pread).
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>
#include <cstring>
#include <string>

#include "host/node.h"
#include "host/xcalls.h"

using namespace xssd;

int main() {
  sim::Simulator sim;

  // A Villars device with default (paper-like) parameters: SRAM-backed
  // 128 KiB CMB ring, 32 KiB staging queue, 16 KiB flash pages.
  core::VillarsConfig config;
  host::StorageNode node(&sim, config, pcie::FabricConfig{}, "quickstart");
  Status status = node.Init();
  if (!status.ok()) {
    std::fprintf(stderr, "init failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("device up: CMB ring %lu KiB, staging queue %lu KiB\n",
              node.client().ring_bytes() / 1024,
              node.client().queue_bytes() / 1024);

  // Append a few "log records" durably.
  for (int i = 0; i < 4; ++i) {
    std::string record = "txn-" + std::to_string(i) +
                         ": UPDATE accounts SET balance = balance - 100;";
    ssize_t n = host::x_pwrite(sim, node.client(), record.data(),
                               record.size());
    if (n < 0) {
      std::fprintf(stderr, "x_pwrite failed\n");
      return 1;
    }
  }
  if (host::x_fsync(sim, node.client()) != 0) {
    std::fprintf(stderr, "x_fsync failed\n");
    return 1;
  }
  std::printf("appended %lu bytes; credit counter = %lu (all persistent)\n",
              node.client().written(),
              node.device().cmb().local_credit());

  // The Destage module moves the ring to NAND in the background; x_pread
  // blocks (in virtual time) until enough reached the conventional side.
  std::vector<char> tail(node.client().written());
  ssize_t n = host::x_pread(sim, node.client(), node.driver(), tail.data(),
                            tail.size());
  if (n < 0) {
    std::fprintf(stderr, "x_pread failed\n");
    return 1;
  }
  std::printf("read %zd bytes back from the conventional side:\n", n);
  std::printf("  \"%.47s...\"\n", tail.data());

  std::printf("destage stats: %lu pages (%lu partial), %lu stream bytes\n",
              node.device().destage().stats().pages_written,
              node.device().destage().stats().partial_pages,
              node.device().destage().stats().stream_bytes);
  std::printf("virtual time elapsed: %.1f us\n", sim::ToUs(sim.Now()));
  return 0;
}
