// Percolator-style notification service (paper §7.2): with replication
// off, "the CMB area acts as a low-latency append feature with precise
// crash semantics" — the shape of Google Percolator's observer pattern.
// Producers append small notification records through the fast side;
// an observer follows the destaged tail with x_pread and "triggers" on
// each complete record, surviving the fact that producers and observer
// share no memory — only the device.
//
// Build & run:   ./build/examples/percolator_notify

#include <cstdio>
#include <cstring>
#include <vector>

#include "db/log_record.h"
#include "host/node.h"
#include "host/xcalls.h"
#include "sim/random.h"

using namespace xssd;

int main() {
  sim::Simulator sim;
  core::VillarsConfig config;
  host::StorageNode node(&sim, config, pcie::FabricConfig{}, "percolator");
  if (!node.Init().ok()) return 1;

  constexpr int kProducers = 3;
  constexpr int kNotificationsPerProducer = 40;
  sim::Rng rng(5);

  // Producers: append self-describing notification records at random
  // intervals. db::LogRecord doubles as the notification envelope.
  int active_producers = kProducers;
  uint64_t produced = 0;
  uint64_t produced_bytes = 0;
  auto produce = std::make_shared<std::function<void(int, int)>>();
  *produce = [&, produce](int id, int remaining) {
    if (remaining == 0) {
      if (--active_producers == 0) {
        // End-of-stream flush: a filler run larger than the observer's
        // read unit guarantees every real record crosses a read boundary.
        std::vector<uint8_t> filler(512, 0xFF);
        node.client().Append(filler.data(), filler.size(), [](Status) {});
      }
      return;
    }
    db::LogRecord note;
    note.txn_id = ++produced;
    note.table_id = static_cast<uint32_t>(id);
    note.op = db::LogOp::kInsert;
    note.key = rng.Next() % 1000;
    note.payload.assign(24 + rng.Uniform(100),
                        static_cast<uint8_t>(id + 1));
    std::vector<uint8_t> wire;
    db::SerializeLogRecord(note, &wire);
    produced_bytes += wire.size();
    node.client().Append(wire.data(), wire.size(), [&, produce, id,
                                                    remaining](Status s) {
      if (!s.ok()) {
        --active_producers;
        return;
      }
      sim.Schedule(sim::Us(5 + rng.Uniform(40)), [produce, id, remaining]() {
        (*produce)(id, remaining - 1);
      });
    });
  };
  for (int id = 0; id < kProducers; ++id) {
    (*produce)(id, kNotificationsPerProducer);
  }

  // Observer: tail the destaged log, reassembling records across reads.
  uint64_t observed = 0;
  uint64_t observed_bytes = 0;
  std::vector<uint8_t> backlog;
  bool stop = false;
  auto observe = std::make_shared<std::function<void()>>();
  *observe = [&, observe]() {
    if (stop) return;
    node.client().ReadTail(
        &node.driver(), 256,
        [&, observe](Status s, std::vector<uint8_t> chunk) {
          if (!s.ok()) {
            stop = true;
            return;
          }
          backlog.insert(backlog.end(), chunk.begin(), chunk.end());
          observed_bytes += chunk.size();
          // Trigger on every complete record; keep the torn tail.
          size_t offset = 0;
          while (true) {
            size_t before = offset;
            Result<db::LogRecord> record =
                db::ParseLogRecord(backlog, &offset);
            if (!record.ok()) {
              offset = before;
              break;
            }
            ++observed;
          }
          backlog.erase(backlog.begin(), backlog.begin() + offset);
          (*observe)();
        });
  };
  (*observe)();

  // Run until all producers finish and the observer caught up.
  const uint64_t expected = kProducers * kNotificationsPerProducer;
  sim.RunWhile([&]() { return active_producers == 0 && observed >= expected; });
  stop = true;
  sim.RunFor(sim::Ms(2));

  std::printf("producers appended %lu notifications; observer triggered on "
              "%lu (%lu bytes) via the destaged tail\n",
              produced, observed, observed_bytes);
  std::printf("virtual time: %.2f ms; destage pages: %lu (%lu partial)\n",
              sim::ToMs(sim.Now()),
              node.device().destage().stats().pages_written,
              node.device().destage().stats().partial_pages);
  return observed == expected ? 0 : 1;
}
