// Journal service: the paper's §5.2/§7.2 advanced-API use case. Multiple
// "journal writer" threads (a JBD2-style filesystem journal, or ERMIA-style
// parallel log writers) each x_alloc a private area of the fast side, fill
// it in parallel — out of order on the wire — and x_free it when complete.
// Freed areas destage; active areas are held back by the destage barrier.
//
// Build & run:   ./build/examples/journal_service

#include <cstdio>
#include <vector>

#include "host/node.h"
#include "host/xcalls.h"
#include "sim/random.h"

using namespace xssd;

int main() {
  sim::Simulator sim;
  core::VillarsConfig config;
  host::StorageNode node(&sim, config, pcie::FabricConfig{}, "journal");
  if (!node.Init().ok()) return 1;

  constexpr int kWriters = 4;
  constexpr int kBatchesPerWriter = 8;
  constexpr size_t kBatchBytes = 4096;

  sim::Rng rng(1);
  int done_writers = 0;

  // Each writer: loop { x_alloc a batch area; fill it with 256-byte
  // journal blocks in random order; x_free }. Allocation order across
  // writers interleaves, exactly the "different database worker threads
  // request transaction log buffers this way but fill the areas in
  // parallel" pattern.
  std::function<void(int, int)> writer = [&](int id, int batch) {
    if (batch == kBatchesPerWriter) {
      ++done_writers;
      return;
    }
    Result<uint64_t> area = node.client().XAlloc(kBatchBytes);
    if (!area.ok()) {
      std::fprintf(stderr, "x_alloc failed: %s\n",
                   area.status().ToString().c_str());
      ++done_writers;
      return;
    }
    uint64_t base = *area;

    // Random fill order within the area.
    auto order = std::make_shared<std::vector<size_t>>();
    for (size_t off = 0; off < kBatchBytes; off += 256) {
      order->push_back(off);
    }
    for (size_t i = order->size(); i > 1; --i) {
      std::swap((*order)[i - 1], (*order)[rng.Uniform(i)]);
    }

    auto fill = std::make_shared<std::function<void(size_t)>>();
    *fill = [&, id, batch, base, order, fill](size_t index) {
      if (index == order->size()) {
        Status freed = node.client().XFree(base);
        if (!freed.ok()) {
          std::fprintf(stderr, "x_free failed: %s\n",
                       freed.ToString().c_str());
        }
        writer(id, batch + 1);
        return;
      }
      std::vector<uint8_t> block(256, static_cast<uint8_t>(id * 16 + batch));
      node.client().WriteAt(base + (*order)[index], block.data(),
                            block.size(), [fill, index](Status) {
                              (*fill)(index + 1);
                            });
    };
    (*fill)(0);
  };

  for (int id = 0; id < kWriters; ++id) writer(id, 0);
  sim.RunWhile([&]() { return done_writers == kWriters; });

  // Everything freed: the barrier lifted, the full journal destages.
  host::x_fsync(sim, node.client());
  uint64_t total = kWriters * kBatchesPerWriter * kBatchBytes;
  std::printf("journal: %d writers x %d batches x %zu B = %lu bytes\n",
              kWriters, kBatchesPerWriter, kBatchBytes, total);
  std::printf("credit counter: %lu (out-of-order fills coalesced into a "
              "gap-free stream)\n",
              node.device().cmb().local_credit());

  // Read the journal back off the conventional side.
  std::vector<uint8_t> journal(total);
  ssize_t n = host::x_pread(sim, node.client(), node.driver(),
                            journal.data(), journal.size());
  std::printf("replayed %zd journal bytes from flash; virtual time %.1f us\n",
              n, sim::ToUs(sim.Now()));
  return n == static_cast<ssize_t>(total) ? 0 : 1;
}
