# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/sim_test[1]_include.cmake")
include("/root/repo/build2/tests/common_test[1]_include.cmake")
include("/root/repo/build2/tests/pcie_test[1]_include.cmake")
include("/root/repo/build2/tests/flash_test[1]_include.cmake")
include("/root/repo/build2/tests/ftl_test[1]_include.cmake")
include("/root/repo/build2/tests/core_smoke_test[1]_include.cmake")
include("/root/repo/build2/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build2/tests/ftl_core_test[1]_include.cmake")
include("/root/repo/build2/tests/nvme_test[1]_include.cmake")
include("/root/repo/build2/tests/core_test[1]_include.cmake")
include("/root/repo/build2/tests/ntb_test[1]_include.cmake")
include("/root/repo/build2/tests/obs_test[1]_include.cmake")
include("/root/repo/build2/tests/host_test[1]_include.cmake")
include("/root/repo/build2/tests/db_test[1]_include.cmake")
include("/root/repo/build2/tests/integration_test[1]_include.cmake")
include("/root/repo/build2/tests/fault_test[1]_include.cmake")
include("/root/repo/build2/tests/fault_integration_test[1]_include.cmake")
include("/root/repo/build2/tests/ha_test[1]_include.cmake")
include("/root/repo/build2/tests/check_test[1]_include.cmake")
