file(REMOVE_RECURSE
  "CMakeFiles/ftl_core_test.dir/ftl/ftl_test.cc.o"
  "CMakeFiles/ftl_core_test.dir/ftl/ftl_test.cc.o.d"
  "ftl_core_test"
  "ftl_core_test.pdb"
  "ftl_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
