# Empty dependencies file for ftl_core_test.
# This may be replaced when dependencies are built.
