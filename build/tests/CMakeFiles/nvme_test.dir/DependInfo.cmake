
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nvme/nvme_test.cc" "tests/CMakeFiles/nvme_test.dir/nvme/nvme_test.cc.o" "gcc" "tests/CMakeFiles/nvme_test.dir/nvme/nvme_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/xssd_db.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/xssd_host.dir/DependInfo.cmake"
  "/root/repo/build/src/ntb/CMakeFiles/xssd_ntb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xssd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/xssd_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/xssd_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/xssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/xssd_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xssd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
