# Empty dependencies file for ntb_test.
# This may be replaced when dependencies are built.
