file(REMOVE_RECURSE
  "CMakeFiles/ntb_test.dir/ntb/ntb_test.cc.o"
  "CMakeFiles/ntb_test.dir/ntb/ntb_test.cc.o.d"
  "ntb_test"
  "ntb_test.pdb"
  "ntb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
