file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/cmb_module_test.cc.o"
  "CMakeFiles/core_test.dir/core/cmb_module_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/destage_module_test.cc.o"
  "CMakeFiles/core_test.dir/core/destage_module_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/page_format_test.cc.o"
  "CMakeFiles/core_test.dir/core/page_format_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/partitioned_device_test.cc.o"
  "CMakeFiles/core_test.dir/core/partitioned_device_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/transport_module_test.cc.o"
  "CMakeFiles/core_test.dir/core/transport_module_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/validate_test.cc.o"
  "CMakeFiles/core_test.dir/core/validate_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/villars_device_test.cc.o"
  "CMakeFiles/core_test.dir/core/villars_device_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
