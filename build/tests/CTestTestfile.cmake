# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/pcie_test[1]_include.cmake")
include("/root/repo/build/tests/flash_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_test[1]_include.cmake")
include("/root/repo/build/tests/core_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_core_test[1]_include.cmake")
include("/root/repo/build/tests/nvme_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/ntb_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
