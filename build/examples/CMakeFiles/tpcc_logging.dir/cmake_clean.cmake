file(REMOVE_RECURSE
  "CMakeFiles/tpcc_logging.dir/tpcc_logging.cpp.o"
  "CMakeFiles/tpcc_logging.dir/tpcc_logging.cpp.o.d"
  "tpcc_logging"
  "tpcc_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
