# Empty compiler generated dependencies file for tpcc_logging.
# This may be replaced when dependencies are built.
