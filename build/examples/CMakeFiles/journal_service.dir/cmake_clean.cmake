file(REMOVE_RECURSE
  "CMakeFiles/journal_service.dir/journal_service.cpp.o"
  "CMakeFiles/journal_service.dir/journal_service.cpp.o.d"
  "journal_service"
  "journal_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/journal_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
