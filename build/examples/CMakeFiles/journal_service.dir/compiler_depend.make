# Empty compiler generated dependencies file for journal_service.
# This may be replaced when dependencies are built.
