file(REMOVE_RECURSE
  "CMakeFiles/log_shipping.dir/log_shipping.cpp.o"
  "CMakeFiles/log_shipping.dir/log_shipping.cpp.o.d"
  "log_shipping"
  "log_shipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_shipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
