# Empty dependencies file for log_shipping.
# This may be replaced when dependencies are built.
