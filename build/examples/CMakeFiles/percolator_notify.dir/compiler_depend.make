# Empty compiler generated dependencies file for percolator_notify.
# This may be replaced when dependencies are built.
