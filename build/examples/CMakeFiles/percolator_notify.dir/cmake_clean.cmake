file(REMOVE_RECURSE
  "CMakeFiles/percolator_notify.dir/percolator_notify.cpp.o"
  "CMakeFiles/percolator_notify.dir/percolator_notify.cpp.o.d"
  "percolator_notify"
  "percolator_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/percolator_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
