file(REMOVE_RECURSE
  "CMakeFiles/xssd_db.dir/database.cc.o"
  "CMakeFiles/xssd_db.dir/database.cc.o.d"
  "CMakeFiles/xssd_db.dir/log_backend.cc.o"
  "CMakeFiles/xssd_db.dir/log_backend.cc.o.d"
  "CMakeFiles/xssd_db.dir/log_manager.cc.o"
  "CMakeFiles/xssd_db.dir/log_manager.cc.o.d"
  "CMakeFiles/xssd_db.dir/log_record.cc.o"
  "CMakeFiles/xssd_db.dir/log_record.cc.o.d"
  "CMakeFiles/xssd_db.dir/tpcc.cc.o"
  "CMakeFiles/xssd_db.dir/tpcc.cc.o.d"
  "CMakeFiles/xssd_db.dir/workload.cc.o"
  "CMakeFiles/xssd_db.dir/workload.cc.o.d"
  "libxssd_db.a"
  "libxssd_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xssd_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
