# Empty compiler generated dependencies file for xssd_db.
# This may be replaced when dependencies are built.
