file(REMOVE_RECURSE
  "libxssd_db.a"
)
