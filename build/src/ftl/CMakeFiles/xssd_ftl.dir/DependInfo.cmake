
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/ftl.cc" "src/ftl/CMakeFiles/xssd_ftl.dir/ftl.cc.o" "gcc" "src/ftl/CMakeFiles/xssd_ftl.dir/ftl.cc.o.d"
  "/root/repo/src/ftl/mapping.cc" "src/ftl/CMakeFiles/xssd_ftl.dir/mapping.cc.o" "gcc" "src/ftl/CMakeFiles/xssd_ftl.dir/mapping.cc.o.d"
  "/root/repo/src/ftl/scheduler.cc" "src/ftl/CMakeFiles/xssd_ftl.dir/scheduler.cc.o" "gcc" "src/ftl/CMakeFiles/xssd_ftl.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xssd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xssd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/xssd_flash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
