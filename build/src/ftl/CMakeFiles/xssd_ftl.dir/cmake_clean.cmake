file(REMOVE_RECURSE
  "CMakeFiles/xssd_ftl.dir/ftl.cc.o"
  "CMakeFiles/xssd_ftl.dir/ftl.cc.o.d"
  "CMakeFiles/xssd_ftl.dir/mapping.cc.o"
  "CMakeFiles/xssd_ftl.dir/mapping.cc.o.d"
  "CMakeFiles/xssd_ftl.dir/scheduler.cc.o"
  "CMakeFiles/xssd_ftl.dir/scheduler.cc.o.d"
  "libxssd_ftl.a"
  "libxssd_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xssd_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
