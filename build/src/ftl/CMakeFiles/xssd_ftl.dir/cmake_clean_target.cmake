file(REMOVE_RECURSE
  "libxssd_ftl.a"
)
