# Empty compiler generated dependencies file for xssd_ftl.
# This may be replaced when dependencies are built.
