file(REMOVE_RECURSE
  "CMakeFiles/xssd_nvme.dir/command.cc.o"
  "CMakeFiles/xssd_nvme.dir/command.cc.o.d"
  "CMakeFiles/xssd_nvme.dir/controller.cc.o"
  "CMakeFiles/xssd_nvme.dir/controller.cc.o.d"
  "CMakeFiles/xssd_nvme.dir/driver.cc.o"
  "CMakeFiles/xssd_nvme.dir/driver.cc.o.d"
  "libxssd_nvme.a"
  "libxssd_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xssd_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
