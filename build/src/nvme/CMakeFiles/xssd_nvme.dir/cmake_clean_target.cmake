file(REMOVE_RECURSE
  "libxssd_nvme.a"
)
