# Empty dependencies file for xssd_nvme.
# This may be replaced when dependencies are built.
