file(REMOVE_RECURSE
  "CMakeFiles/xssd_sim.dir/simulator.cc.o"
  "CMakeFiles/xssd_sim.dir/simulator.cc.o.d"
  "libxssd_sim.a"
  "libxssd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xssd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
