# Empty compiler generated dependencies file for xssd_sim.
# This may be replaced when dependencies are built.
