file(REMOVE_RECURSE
  "libxssd_sim.a"
)
