file(REMOVE_RECURSE
  "CMakeFiles/xssd_core.dir/cmb_module.cc.o"
  "CMakeFiles/xssd_core.dir/cmb_module.cc.o.d"
  "CMakeFiles/xssd_core.dir/destage_module.cc.o"
  "CMakeFiles/xssd_core.dir/destage_module.cc.o.d"
  "CMakeFiles/xssd_core.dir/page_format.cc.o"
  "CMakeFiles/xssd_core.dir/page_format.cc.o.d"
  "CMakeFiles/xssd_core.dir/partitioned_device.cc.o"
  "CMakeFiles/xssd_core.dir/partitioned_device.cc.o.d"
  "CMakeFiles/xssd_core.dir/transport_module.cc.o"
  "CMakeFiles/xssd_core.dir/transport_module.cc.o.d"
  "CMakeFiles/xssd_core.dir/validate.cc.o"
  "CMakeFiles/xssd_core.dir/validate.cc.o.d"
  "CMakeFiles/xssd_core.dir/villars_device.cc.o"
  "CMakeFiles/xssd_core.dir/villars_device.cc.o.d"
  "libxssd_core.a"
  "libxssd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xssd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
