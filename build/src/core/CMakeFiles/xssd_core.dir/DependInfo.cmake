
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cmb_module.cc" "src/core/CMakeFiles/xssd_core.dir/cmb_module.cc.o" "gcc" "src/core/CMakeFiles/xssd_core.dir/cmb_module.cc.o.d"
  "/root/repo/src/core/destage_module.cc" "src/core/CMakeFiles/xssd_core.dir/destage_module.cc.o" "gcc" "src/core/CMakeFiles/xssd_core.dir/destage_module.cc.o.d"
  "/root/repo/src/core/page_format.cc" "src/core/CMakeFiles/xssd_core.dir/page_format.cc.o" "gcc" "src/core/CMakeFiles/xssd_core.dir/page_format.cc.o.d"
  "/root/repo/src/core/partitioned_device.cc" "src/core/CMakeFiles/xssd_core.dir/partitioned_device.cc.o" "gcc" "src/core/CMakeFiles/xssd_core.dir/partitioned_device.cc.o.d"
  "/root/repo/src/core/transport_module.cc" "src/core/CMakeFiles/xssd_core.dir/transport_module.cc.o" "gcc" "src/core/CMakeFiles/xssd_core.dir/transport_module.cc.o.d"
  "/root/repo/src/core/validate.cc" "src/core/CMakeFiles/xssd_core.dir/validate.cc.o" "gcc" "src/core/CMakeFiles/xssd_core.dir/validate.cc.o.d"
  "/root/repo/src/core/villars_device.cc" "src/core/CMakeFiles/xssd_core.dir/villars_device.cc.o" "gcc" "src/core/CMakeFiles/xssd_core.dir/villars_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xssd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xssd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/xssd_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/xssd_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/xssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/xssd_nvme.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
