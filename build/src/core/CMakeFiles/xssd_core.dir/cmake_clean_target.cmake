file(REMOVE_RECURSE
  "libxssd_core.a"
)
