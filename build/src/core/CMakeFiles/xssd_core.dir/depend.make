# Empty dependencies file for xssd_core.
# This may be replaced when dependencies are built.
