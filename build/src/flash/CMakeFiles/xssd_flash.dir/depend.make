# Empty dependencies file for xssd_flash.
# This may be replaced when dependencies are built.
