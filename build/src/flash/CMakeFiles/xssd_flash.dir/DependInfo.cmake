
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flash/array.cc" "src/flash/CMakeFiles/xssd_flash.dir/array.cc.o" "gcc" "src/flash/CMakeFiles/xssd_flash.dir/array.cc.o.d"
  "/root/repo/src/flash/geometry.cc" "src/flash/CMakeFiles/xssd_flash.dir/geometry.cc.o" "gcc" "src/flash/CMakeFiles/xssd_flash.dir/geometry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xssd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xssd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
