file(REMOVE_RECURSE
  "libxssd_flash.a"
)
