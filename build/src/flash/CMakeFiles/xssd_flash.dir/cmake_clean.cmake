file(REMOVE_RECURSE
  "CMakeFiles/xssd_flash.dir/array.cc.o"
  "CMakeFiles/xssd_flash.dir/array.cc.o.d"
  "CMakeFiles/xssd_flash.dir/geometry.cc.o"
  "CMakeFiles/xssd_flash.dir/geometry.cc.o.d"
  "libxssd_flash.a"
  "libxssd_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xssd_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
