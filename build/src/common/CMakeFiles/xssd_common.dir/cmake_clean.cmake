file(REMOVE_RECURSE
  "CMakeFiles/xssd_common.dir/crc32.cc.o"
  "CMakeFiles/xssd_common.dir/crc32.cc.o.d"
  "CMakeFiles/xssd_common.dir/logging.cc.o"
  "CMakeFiles/xssd_common.dir/logging.cc.o.d"
  "CMakeFiles/xssd_common.dir/status.cc.o"
  "CMakeFiles/xssd_common.dir/status.cc.o.d"
  "libxssd_common.a"
  "libxssd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xssd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
