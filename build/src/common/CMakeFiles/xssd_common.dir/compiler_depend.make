# Empty compiler generated dependencies file for xssd_common.
# This may be replaced when dependencies are built.
