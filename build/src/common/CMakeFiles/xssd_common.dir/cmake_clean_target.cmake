file(REMOVE_RECURSE
  "libxssd_common.a"
)
