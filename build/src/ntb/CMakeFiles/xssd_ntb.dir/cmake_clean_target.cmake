file(REMOVE_RECURSE
  "libxssd_ntb.a"
)
