file(REMOVE_RECURSE
  "CMakeFiles/xssd_ntb.dir/ntb.cc.o"
  "CMakeFiles/xssd_ntb.dir/ntb.cc.o.d"
  "libxssd_ntb.a"
  "libxssd_ntb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xssd_ntb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
