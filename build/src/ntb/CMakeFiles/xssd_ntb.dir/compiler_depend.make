# Empty compiler generated dependencies file for xssd_ntb.
# This may be replaced when dependencies are built.
