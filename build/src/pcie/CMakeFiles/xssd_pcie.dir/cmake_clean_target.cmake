file(REMOVE_RECURSE
  "libxssd_pcie.a"
)
