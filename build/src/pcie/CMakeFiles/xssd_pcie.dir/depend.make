# Empty dependencies file for xssd_pcie.
# This may be replaced when dependencies are built.
