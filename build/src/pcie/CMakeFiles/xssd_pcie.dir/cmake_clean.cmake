file(REMOVE_RECURSE
  "CMakeFiles/xssd_pcie.dir/fabric.cc.o"
  "CMakeFiles/xssd_pcie.dir/fabric.cc.o.d"
  "CMakeFiles/xssd_pcie.dir/tlp.cc.o"
  "CMakeFiles/xssd_pcie.dir/tlp.cc.o.d"
  "libxssd_pcie.a"
  "libxssd_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xssd_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
