file(REMOVE_RECURSE
  "libxssd_host.a"
)
