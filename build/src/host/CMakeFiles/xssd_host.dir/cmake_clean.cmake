file(REMOVE_RECURSE
  "CMakeFiles/xssd_host.dir/node.cc.o"
  "CMakeFiles/xssd_host.dir/node.cc.o.d"
  "CMakeFiles/xssd_host.dir/recovery.cc.o"
  "CMakeFiles/xssd_host.dir/recovery.cc.o.d"
  "CMakeFiles/xssd_host.dir/xcalls.cc.o"
  "CMakeFiles/xssd_host.dir/xcalls.cc.o.d"
  "CMakeFiles/xssd_host.dir/xlog_client.cc.o"
  "CMakeFiles/xssd_host.dir/xlog_client.cc.o.d"
  "libxssd_host.a"
  "libxssd_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xssd_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
