# Empty dependencies file for xssd_host.
# This may be replaced when dependencies are built.
