
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/node.cc" "src/host/CMakeFiles/xssd_host.dir/node.cc.o" "gcc" "src/host/CMakeFiles/xssd_host.dir/node.cc.o.d"
  "/root/repo/src/host/recovery.cc" "src/host/CMakeFiles/xssd_host.dir/recovery.cc.o" "gcc" "src/host/CMakeFiles/xssd_host.dir/recovery.cc.o.d"
  "/root/repo/src/host/xcalls.cc" "src/host/CMakeFiles/xssd_host.dir/xcalls.cc.o" "gcc" "src/host/CMakeFiles/xssd_host.dir/xcalls.cc.o.d"
  "/root/repo/src/host/xlog_client.cc" "src/host/CMakeFiles/xssd_host.dir/xlog_client.cc.o" "gcc" "src/host/CMakeFiles/xssd_host.dir/xlog_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xssd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xssd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/xssd_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/xssd_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xssd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ntb/CMakeFiles/xssd_ntb.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/xssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/xssd_flash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
