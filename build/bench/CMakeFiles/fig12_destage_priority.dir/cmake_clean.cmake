file(REMOVE_RECURSE
  "CMakeFiles/fig12_destage_priority.dir/fig12_destage_priority.cc.o"
  "CMakeFiles/fig12_destage_priority.dir/fig12_destage_priority.cc.o.d"
  "fig12_destage_priority"
  "fig12_destage_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_destage_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
