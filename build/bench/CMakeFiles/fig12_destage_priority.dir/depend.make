# Empty dependencies file for fig12_destage_priority.
# This may be replaced when dependencies are built.
