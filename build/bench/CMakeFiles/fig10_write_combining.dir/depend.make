# Empty dependencies file for fig10_write_combining.
# This may be replaced when dependencies are built.
