file(REMOVE_RECURSE
  "CMakeFiles/fig10_write_combining.dir/fig10_write_combining.cc.o"
  "CMakeFiles/fig10_write_combining.dir/fig10_write_combining.cc.o.d"
  "fig10_write_combining"
  "fig10_write_combining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_write_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
