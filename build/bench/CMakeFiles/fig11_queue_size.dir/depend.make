# Empty dependencies file for fig11_queue_size.
# This may be replaced when dependencies are built.
