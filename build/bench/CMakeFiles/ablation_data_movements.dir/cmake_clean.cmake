file(REMOVE_RECURSE
  "CMakeFiles/ablation_data_movements.dir/ablation_data_movements.cc.o"
  "CMakeFiles/ablation_data_movements.dir/ablation_data_movements.cc.o.d"
  "ablation_data_movements"
  "ablation_data_movements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_data_movements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
