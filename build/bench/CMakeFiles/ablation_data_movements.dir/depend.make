# Empty dependencies file for ablation_data_movements.
# This may be replaced when dependencies are built.
