file(REMOVE_RECURSE
  "CMakeFiles/fig09_local_logging.dir/fig09_local_logging.cc.o"
  "CMakeFiles/fig09_local_logging.dir/fig09_local_logging.cc.o.d"
  "fig09_local_logging"
  "fig09_local_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_local_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
