# Empty compiler generated dependencies file for fig09_local_logging.
# This may be replaced when dependencies are built.
