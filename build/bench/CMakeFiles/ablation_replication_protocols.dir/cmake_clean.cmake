file(REMOVE_RECURSE
  "CMakeFiles/ablation_replication_protocols.dir/ablation_replication_protocols.cc.o"
  "CMakeFiles/ablation_replication_protocols.dir/ablation_replication_protocols.cc.o.d"
  "ablation_replication_protocols"
  "ablation_replication_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replication_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
