# Empty dependencies file for ablation_replication_protocols.
# This may be replaced when dependencies are built.
