file(REMOVE_RECURSE
  "CMakeFiles/fig13_replication_delay.dir/fig13_replication_delay.cc.o"
  "CMakeFiles/fig13_replication_delay.dir/fig13_replication_delay.cc.o.d"
  "fig13_replication_delay"
  "fig13_replication_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_replication_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
