# Empty dependencies file for fig13_replication_delay.
# This may be replaced when dependencies are built.
