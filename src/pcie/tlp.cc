#include "pcie/tlp.h"

#include <cstring>

namespace xssd::pcie {

uint64_t TlpCountFor(uint64_t len, uint32_t chunk) {
  if (len == 0) return 0;
  return (len + chunk - 1) / chunk;
}

uint64_t WireBytesFor(uint64_t len, uint32_t chunk) {
  return len + TlpCountFor(len, chunk) * kTlpOverheadBytes;
}

namespace {
// Wire image layout (little endian):
//   [0]    type
//   [1..8] address
//   [9..12] read_len
//   [13..14] tag
//   [15..18] payload length
//   [19..] payload
constexpr size_t kHeaderSize = 19;

void PutU64(std::vector<uint8_t>& out, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[at + i] = static_cast<uint8_t>(v >> (8 * i));
}
void PutU32(std::vector<uint8_t>& out, size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[at + i] = static_cast<uint8_t>(v >> (8 * i));
}
void PutU16(std::vector<uint8_t>& out, size_t at, uint16_t v) {
  out[at] = static_cast<uint8_t>(v);
  out[at + 1] = static_cast<uint8_t>(v >> 8);
}
uint64_t GetU64(const std::vector<uint8_t>& in, size_t at) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[at + i];
  return v;
}
uint32_t GetU32(const std::vector<uint8_t>& in, size_t at) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[at + i];
  return v;
}
uint16_t GetU16(const std::vector<uint8_t>& in, size_t at) {
  return static_cast<uint16_t>(in[at] | (in[at + 1] << 8));
}
}  // namespace

std::vector<uint8_t> EncodeTlp(const Tlp& tlp) {
  std::vector<uint8_t> out(kHeaderSize + tlp.payload.size());
  out[0] = static_cast<uint8_t>(tlp.type);
  PutU64(out, 1, tlp.address);
  PutU32(out, 9, tlp.read_len);
  PutU16(out, 13, tlp.tag);
  PutU32(out, 15, static_cast<uint32_t>(tlp.payload.size()));
  if (!tlp.payload.empty()) {
    std::memcpy(out.data() + kHeaderSize, tlp.payload.data(),
                tlp.payload.size());
  }
  return out;
}

Result<Tlp> DecodeTlp(const std::vector<uint8_t>& wire) {
  if (wire.size() < kHeaderSize) {
    return Status::Corruption("TLP image shorter than header");
  }
  if (wire[0] > static_cast<uint8_t>(TlpType::kCompletionData)) {
    return Status::Corruption("unknown TLP type");
  }
  Tlp tlp;
  tlp.type = static_cast<TlpType>(wire[0]);
  tlp.address = GetU64(wire, 1);
  tlp.read_len = GetU32(wire, 9);
  tlp.tag = GetU16(wire, 13);
  uint32_t payload_len = GetU32(wire, 15);
  if (wire.size() != kHeaderSize + payload_len) {
    return Status::Corruption("TLP payload length mismatch");
  }
  tlp.payload.assign(wire.begin() + kHeaderSize, wire.end());
  return tlp;
}

}  // namespace xssd::pcie
