#include "pcie/fabric.h"

#include <cstring>

#include "common/logging.h"
#include "fault/fault_injector.h"

namespace xssd::pcie {

double LaneBytesPerSec(int generation) {
  // Effective per-lane data rates after encoding overhead.
  switch (generation) {
    case 1:
      return 250e6;  // 2.5 GT/s, 8b/10b
    case 2:
      return 500e6;  // 5.0 GT/s, 8b/10b
    case 3:
      return 985e6;  // 8.0 GT/s, 128b/130b
    case 4:
      return 1969e6;
    default:
      return 500e6;
  }
}

PcieFabric::PcieFabric(sim::Simulator* sim, FabricConfig config,
                       std::string name)
    : sim_(sim),
      config_(config),
      name_(std::move(name)),
      link_bytes_per_sec_(LaneBytesPerSec(config.generation) * config.lanes),
      downstream_(sim, link_bytes_per_sec_),
      upstream_(sim, link_bytes_per_sec_),
      peer_(sim, link_bytes_per_sec_),
      host_memory_port_(sim, config.host_memory_bytes_per_sec),
      host_memory_(config.host_memory_bytes, 0) {}

void PcieFabric::SetMetrics(obs::MetricsRegistry* registry,
                            const std::string& prefix) {
  m_host_write_bytes_ =
      registry->GetCounter(prefix + "pcie.host_write_bytes");
  m_peer_write_bytes_ =
      registry->GetCounter(prefix + "pcie.peer_write_bytes");
  m_host_read_bytes_ = registry->GetCounter(prefix + "pcie.host_read_bytes");
  m_dma_to_host_bytes_ =
      registry->GetCounter(prefix + "pcie.dma_to_host_bytes");
  m_dma_from_host_bytes_ =
      registry->GetCounter(prefix + "pcie.dma_from_host_bytes");
}

Status PcieFabric::AddMmioRegion(uint64_t base, uint64_t size,
                                 MmioDevice* device,
                                 std::string region_name) {
  if (device == nullptr || size == 0) {
    return Status::InvalidArgument("null device or empty region");
  }
  for (const Region& r : regions_) {
    bool disjoint = base + size <= r.base || r.base + r.size <= base;
    if (!disjoint) {
      return Status::InvalidArgument("MMIO region overlaps " + r.name);
    }
  }
  regions_.push_back(Region{base, size, device, std::move(region_name)});
  return Status::OK();
}

const PcieFabric::Region* PcieFabric::FindRegion(uint64_t addr) const {
  for (const Region& r : regions_) {
    if (addr >= r.base && addr < r.base + r.size) return &r;
  }
  return nullptr;
}

void PcieFabric::RoutedWrite(sim::BandwidthServer& server, uint64_t addr,
                             const uint8_t* data, size_t len, uint32_t chunk,
                             sim::Simulator::Callback posted, bool peer_path) {
  CheckDomain();
  const Region* region = FindRegion(addr);
  XSSD_CHECK(region != nullptr);
  XSSD_CHECK(addr + len <= region->base + region->size);
  XSSD_CHECK(chunk > 0);

  // One Acquire covers all TLPs of this write back-to-back on the link.
  uint64_t wire_bytes = WireBytesFor(len, chunk);
  size_t landed = len;
  sim::SimTime extra_delay = 0;
  if (injector_ != nullptr) {
    extra_delay = injector_->InjectPcieStoreDelay();
    if (peer_path) {
      landed = static_cast<size_t>(injector_->InjectPcieTruncation(len));
    }
  }
  std::vector<uint8_t> copy(data, data + landed);
  uint64_t offset = addr - region->base;
  MmioDevice* device = region->device;
  sim::SimTime done_at = server.Acquire(wire_bytes);
  if (landed > 0) {
    // Carry the ambient request context across the asynchronous delivery so
    // spans opened by the device keep their parent (pure bookkeeping; the
    // schedule is identical with tracing off).
    obs::SpanContext ctx =
        spans_ ? spans_->current() : obs::SpanContext{};
    sim_->ScheduleAt(done_at + config_.propagation + extra_delay,
                     [this, ctx, device, offset, copy = std::move(copy)]() {
                       obs::ScopedContext scope(spans_, ctx);
                       device->OnMmioWrite(offset, copy.data(), copy.size());
                     });
  }
  // The write stays posted: the sender sees acceptance onto the link, never
  // the injected loss — exactly why posted-write faults are insidious.
  if (posted) sim_->ScheduleAt(done_at, std::move(posted));
}

void PcieFabric::HostWrite(uint64_t addr, const uint8_t* data, size_t len,
                           uint32_t chunk, sim::Simulator::Callback posted) {
  if (m_host_write_bytes_) m_host_write_bytes_->Add(len);
  RoutedWrite(downstream_, addr, data, len, chunk, std::move(posted),
              /*peer_path=*/false);
}

void PcieFabric::PeerWrite(uint64_t addr, const uint8_t* data, size_t len,
                           uint32_t chunk, sim::Simulator::Callback posted) {
  if (m_peer_write_bytes_) m_peer_write_bytes_->Add(len);
  RoutedWrite(peer_, addr, data, len, chunk, std::move(posted),
              /*peer_path=*/true);
}

void PcieFabric::HostRead(uint64_t addr, size_t len,
                          std::function<void(std::vector<uint8_t>)> done) {
  CheckDomain();
  const Region* region = FindRegion(addr);
  XSSD_CHECK(region != nullptr);
  XSSD_CHECK(addr + len <= region->base + region->size);
  if (m_host_read_bytes_) m_host_read_bytes_->Add(len);

  // Request TLP downstream.
  sim::SimTime req_done = downstream_.Acquire(kTlpOverheadBytes);
  uint64_t offset = addr - region->base;
  MmioDevice* device = region->device;
  sim::SimTime service_at =
      req_done + config_.propagation + config_.read_turnaround;
  sim_->ScheduleAt(service_at, [this, device, offset, len,
                                done = std::move(done)]() mutable {
    // Device serves the read *now* (functional state as of this instant),
    // then the completion travels upstream.
    std::vector<uint8_t> data(len, 0);
    device->OnMmioRead(offset, data.data(), len);
    sim::SimTime cpl_done =
        upstream_.Acquire(WireBytesFor(len, kMaxPayloadBytes));
    sim_->ScheduleAt(
        cpl_done + config_.propagation,
        [data = std::move(data), done = std::move(done)]() mutable {
          done(std::move(data));
        });
  });
}

void PcieFabric::DmaToHost(uint64_t host_addr, const uint8_t* data, size_t len,
                           sim::Simulator::Callback done) {
  CheckDomain();
  XSSD_CHECK(host_addr + len <= host_memory_.size());
  if (m_dma_to_host_bytes_) m_dma_to_host_bytes_->Add(len);
  std::vector<uint8_t> copy(data, data + len);
  sim::SimTime link_done =
      upstream_.Acquire(WireBytesFor(len, kMaxPayloadBytes));
  sim_->ScheduleAt(link_done, [this, host_addr, copy = std::move(copy),
                               done = std::move(done)]() mutable {
    std::memcpy(host_memory_.data() + host_addr, copy.data(), copy.size());
    host_memory_port_.Acquire(copy.size(), std::move(done));
  });
}

void PcieFabric::DmaFromHost(uint64_t host_addr, size_t len,
                             std::function<void(std::vector<uint8_t>)> done) {
  CheckDomain();
  XSSD_CHECK(host_addr + len <= host_memory_.size());
  if (m_dma_from_host_bytes_) m_dma_from_host_bytes_->Add(len);
  // Read request downstream is negligible; charge memory port + upstream
  // completion stream.
  sim::SimTime mem_done = host_memory_port_.Acquire(len);
  sim_->ScheduleAt(mem_done, [this, host_addr, len,
                              done = std::move(done)]() mutable {
    std::vector<uint8_t> data(host_memory_.begin() + host_addr,
                              host_memory_.begin() + host_addr + len);
    sim::SimTime link_done =
        downstream_.Acquire(WireBytesFor(len, kMaxPayloadBytes));
    sim_->ScheduleAt(
        link_done + config_.propagation,
        [data = std::move(data), done = std::move(done)]() mutable {
          done(std::move(data));
        });
  });
}

Status PcieFabric::FunctionalWrite(uint64_t addr, const uint8_t* data,
                                   size_t len) {
  const Region* region = FindRegion(addr);
  if (region == nullptr || addr + len > region->base + region->size) {
    return Status::OutOfRange("no MMIO region covers address");
  }
  region->device->OnMmioWrite(addr - region->base, data, len);
  return Status::OK();
}

Status PcieFabric::FunctionalRead(uint64_t addr, uint8_t* out, size_t len) {
  const Region* region = FindRegion(addr);
  if (region == nullptr || addr + len > region->base + region->size) {
    return Status::OutOfRange("no MMIO region covers address");
  }
  region->device->OnMmioRead(addr - region->base, out, len);
  return Status::OK();
}

}  // namespace xssd::pcie
