#ifndef XSSD_PCIE_TLP_H_
#define XSSD_PCIE_TLP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace xssd::pcie {

/// Transaction Layer Packet kinds used in the model. Memory writes are
/// posted (no completion); memory reads elicit a Completion-with-Data.
enum class TlpType : uint8_t {
  kMemWrite = 0,
  kMemRead = 1,
  kCompletionData = 2,
};

/// \brief A PCIe Transaction Layer Packet.
///
/// The fabric moves data as TLPs. Only the fields the simulation needs are
/// modeled, but packets can be serialized to a wire image (EncodeTlp) whose
/// size matches the timing model, so the per-packet overhead charged on
/// links is the same number of bytes a real link would carry.
struct Tlp {
  TlpType type = TlpType::kMemWrite;
  uint64_t address = 0;   ///< target bus address (writes/reads)
  uint32_t read_len = 0;  ///< requested bytes (kMemRead only)
  uint16_t tag = 0;       ///< matches reads to completions
  std::vector<uint8_t> payload;  ///< data (writes / completions)
};

/// Framing + DLL + TL header bytes added to every TLP on the wire:
/// STP(1) + sequence(2) + 4-DW header(16) + LCRC(4) + END(1) ≈ 24, plus
/// per-packet ACK DLLP amortization (2).
inline constexpr uint32_t kTlpOverheadBytes = 26;

/// Largest payload a single memory-write TLP may carry (Max_Payload_Size).
inline constexpr uint32_t kMaxPayloadBytes = 256;

/// Bytes a TLP occupies on the wire (header/framing + payload).
inline uint64_t TlpWireBytes(const Tlp& tlp) {
  return kTlpOverheadBytes + tlp.payload.size();
}

/// Wire bytes to move `len` payload bytes when split into `chunk`-byte TLPs.
uint64_t WireBytesFor(uint64_t len, uint32_t chunk);

/// Number of TLPs needed for `len` payload bytes at `chunk` bytes each.
uint64_t TlpCountFor(uint64_t len, uint32_t chunk);

/// Serialize/deserialize a TLP to a byte image (used by tests and by the
/// NTB bridge, which forwards raw TLP images between fabrics).
std::vector<uint8_t> EncodeTlp(const Tlp& tlp);
Result<Tlp> DecodeTlp(const std::vector<uint8_t>& wire);

}  // namespace xssd::pcie

#endif  // XSSD_PCIE_TLP_H_
