#ifndef XSSD_PCIE_STORE_ENGINE_H_
#define XSSD_PCIE_STORE_ENGINE_H_

#include <cstdint>

#include "pcie/fabric.h"

namespace xssd::pcie {

/// CPU store-ordering mode for an MMIO mapping (paper §4.1 / Intel SDM
/// ch. 11). Write-combining lets the CPU coalesce consecutive stores into
/// cache-line-sized (64 B) TLPs; uncached issues each store as its own TLP
/// of at most 8 bytes.
enum class MmioMode {
  kWriteCombining,
  kUncached,
};

/// \brief Models how CPU stores to an MMIO region become TLPs.
///
/// Each Store() covers one application-level write (e.g. one chunk of an
/// x_pwrite) and ends with the fence that the logging protocol requires, so
/// a trailing partial write-combining line is flushed rather than merged
/// with the next operation. This is exactly the knob Figure 10 sweeps.
class StoreEngine {
 public:
  StoreEngine(PcieFabric* fabric, MmioMode mode)
      : fabric_(fabric), mode_(mode) {}

  /// Store `len` bytes at bus address `addr`; `posted` fires when the last
  /// TLP has been accepted onto the link (the point a fenced CPU store
  /// sequence retires).
  void Store(uint64_t addr, const uint8_t* data, size_t len,
             sim::Simulator::Callback posted = nullptr) {
    fabric_->HostWrite(addr, data, len, ChunkBytes(), std::move(posted));
  }

  /// TLP payload granularity implied by the mode.
  uint32_t ChunkBytes() const {
    return mode_ == MmioMode::kWriteCombining ? kWcLineBytes : kUcStoreBytes;
  }

  /// Wire bytes a Store of `len` occupies, for analytic checks.
  uint64_t WireBytes(size_t len) const {
    return WireBytesFor(len, ChunkBytes());
  }

  MmioMode mode() const { return mode_; }

  static constexpr uint32_t kWcLineBytes = 64;
  static constexpr uint32_t kUcStoreBytes = 8;

 private:
  PcieFabric* fabric_;
  MmioMode mode_;
};

}  // namespace xssd::pcie

#endif  // XSSD_PCIE_STORE_ENGINE_H_
