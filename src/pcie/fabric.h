#ifndef XSSD_PCIE_FABRIC_H_
#define XSSD_PCIE_FABRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "pcie/tlp.h"
#include "sim/bandwidth_server.h"
#include "sim/simulator.h"

namespace xssd::fault {
class FaultInjector;
}  // namespace xssd::fault

namespace xssd::pcie {

/// Receiver of memory-mapped traffic (a BAR region). Offsets are relative to
/// the region base. Writes are posted; reads are served synchronously with
/// respect to functional state — their *timing* is charged by the fabric.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;

  /// A memory-write TLP for [offset, offset+len) landed on this region.
  virtual void OnMmioWrite(uint64_t offset, const uint8_t* data,
                           size_t len) = 0;

  /// Serve a memory-read of [offset, offset+len) into `out`.
  virtual void OnMmioRead(uint64_t offset, uint8_t* out, size_t len) = 0;
};

/// Link speeds per PCIe generation, bytes/sec/lane (post-encoding).
double LaneBytesPerSec(int generation);

/// \brief Configuration of a host's PCIe subsystem.
struct FabricConfig {
  int generation = 2;          ///< Villars is constrained to Gen2 (paper §6)
  int lanes = 4;               ///< ×4 → 2 GB/s, as in the paper's setup
  sim::SimTime propagation = sim::Ns(250);   ///< one-way switch+wire latency
  sim::SimTime read_turnaround = sim::Ns(400);  ///< device read service time
  uint64_t host_memory_bytes = 64ull << 20;  ///< simulated host DRAM image
  double host_memory_bytes_per_sec = 12e9;   ///< DDR bandwidth for DMA
  /// Scheduler domain this fabric (and every device on it) belongs to —
  /// the partitioning unit of the parallel backend. All traffic must enter
  /// a fabric from an event of its own domain; the only legal cross-domain
  /// edge is the NTB forward (which re-schedules into the target domain
  /// under the lookahead contract). Checked when the simulator is
  /// partitioned; single-domain simulations ignore it.
  uint32_t domain = 0;
};

/// \brief One host's PCIe subsystem: an address map of BAR regions, shared
/// bandwidth in both directions, and a flat host-memory image for DMA.
///
/// This plays the role of the root complex + switch in Figure 2 of the
/// paper. Hosts issue MMIO reads/writes downstream; devices issue DMA
/// upstream and peer-to-peer writes (used by the Transport module to reach
/// the NTB adapter on the same fabric).
class PcieFabric {
 public:
  PcieFabric(sim::Simulator* sim, FabricConfig config, std::string name);

  PcieFabric(const PcieFabric&) = delete;
  PcieFabric& operator=(const PcieFabric&) = delete;

  /// Map `device` at [base, base+size). Regions must not overlap.
  Status AddMmioRegion(uint64_t base, uint64_t size, MmioDevice* device,
                       std::string region_name);

  // -- Host-initiated traffic (CPU -> device) ------------------------------

  /// Post a memory write of `len` bytes to bus address `addr`, split into
  /// TLPs of at most `chunk` payload bytes (64 for write-combined stores,
  /// 8 for uncached stores, kMaxPayloadBytes for bulk transfers).
  /// `posted` fires when the last TLP has been accepted onto the link (the
  /// CPU-visible cost of a posted write); delivery to the device happens one
  /// propagation delay later.
  void HostWrite(uint64_t addr, const uint8_t* data, size_t len,
                 uint32_t chunk, sim::Simulator::Callback posted = nullptr);

  /// Non-posted memory read; `done` receives the bytes after the round trip.
  void HostRead(uint64_t addr, size_t len,
                std::function<void(std::vector<uint8_t>)> done);

  // -- Device-initiated traffic (device -> host memory, DMA) ---------------

  /// Device writes `len` bytes into host memory at `host_addr`.
  void DmaToHost(uint64_t host_addr, const uint8_t* data, size_t len,
                 sim::Simulator::Callback done);

  /// Device reads `len` bytes of host memory at `host_addr`.
  void DmaFromHost(uint64_t host_addr, size_t len,
                   std::function<void(std::vector<uint8_t>)> done);

  // -- Peer-to-peer (device -> device through the switch) ------------------

  /// A device posts a write to another device's BAR (e.g. Villars Transport
  /// module -> NTB adapter window). Charged on the peer-to-peer server.
  void PeerWrite(uint64_t addr, const uint8_t* data, size_t len,
                 uint32_t chunk, sim::Simulator::Callback posted = nullptr);

  /// Immediate functional write, bypassing timing. Used for setup/reset
  /// paths, never on measured paths.
  Status FunctionalWrite(uint64_t addr, const uint8_t* data, size_t len);
  Status FunctionalRead(uint64_t addr, uint8_t* out, size_t len);

  // -- Host memory image ----------------------------------------------------

  uint8_t* host_memory() { return host_memory_.data(); }
  uint64_t host_memory_size() const { return host_memory_.size(); }

  sim::Simulator* simulator() { return sim_; }
  const FabricConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

  /// Scheduler domain of this fabric (FabricConfig::domain).
  uint32_t domain() const { return config_.domain; }

  /// Aggregate link bandwidth in bytes/sec (lanes × per-lane rate).
  double link_bytes_per_sec() const { return link_bytes_per_sec_; }

  sim::BandwidthServer& downstream() { return downstream_; }
  sim::BandwidthServer& upstream() { return upstream_; }
  sim::BandwidthServer& peer() { return peer_; }

  /// Register this fabric's metrics under `prefix` + "pcie.".
  void SetMetrics(obs::MetricsRegistry* registry,
                  const std::string& prefix = "");

  /// Attach a fault injector (nullptr detaches). Store-delay faults apply
  /// to every routed write; truncation applies only to the peer path — a
  /// truncated host store would gap the log stream forever (the host never
  /// re-sends), whereas a truncated peer store is healed by the transport
  /// module's retransmit.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Attach span tracing (nullptr detaches). The fabric opens no spans of
  /// its own; it relays the ambient request context across the scheduled
  /// MMIO delivery so device-side spans keep their parent. A SpanRecorder
  /// is shared across domains and not thread-safe, so attaching one pins
  /// the parallel backend to its (identical) serial merge.
  void SetSpans(obs::SpanRecorder* spans) {
    spans_ = spans;
    if (spans != nullptr) sim_->set_force_serial(true);
  }

 private:
  struct Region {
    uint64_t base;
    uint64_t size;
    MmioDevice* device;
    std::string name;
  };

  /// Region containing `addr`, or nullptr.
  const Region* FindRegion(uint64_t addr) const;

  /// Partitioning guard: timed traffic may only enter from an event of
  /// this fabric's own domain (no-op for single-domain simulators and for
  /// idle-context setup calls).
  void CheckDomain() const {
    if (sim_->domain_count() > 1 && sim_->in_event()) {
      XSSD_CHECK(sim_->current_domain() == config_.domain);
    }
  }

  /// Common write path for HostWrite/PeerWrite.
  void RoutedWrite(sim::BandwidthServer& server, uint64_t addr,
                   const uint8_t* data, size_t len, uint32_t chunk,
                   sim::Simulator::Callback posted, bool peer_path);

  sim::Simulator* sim_;
  fault::FaultInjector* injector_ = nullptr;
  obs::SpanRecorder* spans_ = nullptr;
  FabricConfig config_;
  std::string name_;
  double link_bytes_per_sec_;

  sim::BandwidthServer downstream_;
  sim::BandwidthServer upstream_;
  sim::BandwidthServer peer_;
  sim::BandwidthServer host_memory_port_;

  std::vector<Region> regions_;
  std::vector<uint8_t> host_memory_;

  // Observability (null until SetMetrics).
  obs::Counter* m_host_write_bytes_ = nullptr;
  obs::Counter* m_peer_write_bytes_ = nullptr;
  obs::Counter* m_host_read_bytes_ = nullptr;
  obs::Counter* m_dma_to_host_bytes_ = nullptr;
  obs::Counter* m_dma_from_host_bytes_ = nullptr;
};

}  // namespace xssd::pcie

#endif  // XSSD_PCIE_FABRIC_H_
