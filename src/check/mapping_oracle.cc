#include "check/mapping_oracle.h"

#include <sstream>

namespace xssd::check {

namespace {

Divergence Diverge(const std::string& rule, const std::string& detail) {
  Divergence d;
  d.rule = rule;
  d.detail = detail;
  return d;
}

}  // namespace

std::vector<Divergence> CheckMappingConsistent(
    const ftl::PageMap& map, const flash::Geometry& geometry) {
  std::vector<Divergence> out;

  // l2p → p2l: every live mapping must be reflected in the reverse map.
  for (uint64_t lpn = 0; lpn < map.lpn_count(); ++lpn) {
    uint64_t ppn = map.Lookup(lpn);
    if (ppn == ftl::kUnmapped) continue;
    if (map.ReverseLookup(ppn) != lpn) {
      std::ostringstream detail;
      detail << "lpn " << lpn << " maps to ppn " << ppn
             << " but p2l[" << ppn << "] = " << map.ReverseLookup(ppn);
      out.push_back(Diverge("mapping.l2p_p2l", detail.str()));
      break;
    }
  }

  // p2l → l2p: a reverse entry that is not the live mapping is a leaked
  // valid page (it would pin its block against GC forever).
  for (uint64_t ppn = 0; ppn < geometry.pages(); ++ppn) {
    uint64_t lpn = map.ReverseLookup(ppn);
    if (lpn == ftl::kUnmapped) continue;
    if (map.Lookup(lpn) != ppn) {
      std::ostringstream detail;
      detail << "p2l[" << ppn << "] = " << lpn << " but lpn " << lpn
             << " maps to " << map.Lookup(lpn);
      out.push_back(Diverge("mapping.l2p_p2l", detail.str()));
      break;
    }
  }

  // Per-block valid counts against a recount of the reverse map.
  for (uint64_t block = 0; block < geometry.blocks(); ++block) {
    uint32_t recount = 0;
    uint64_t first = block * geometry.pages_per_block;
    for (uint64_t p = first; p < first + geometry.pages_per_block; ++p) {
      if (map.ReverseLookup(p) != ftl::kUnmapped) ++recount;
    }
    if (recount != map.ValidCount(block)) {
      std::ostringstream detail;
      detail << "block " << block << " ValidCount "
             << map.ValidCount(block) << " but " << recount
             << " reverse-mapped pages";
      out.push_back(Diverge("mapping.valid_count", detail.str()));
      break;
    }
  }

  uint64_t live = 0;
  for (uint64_t lpn = 0; lpn < map.lpn_count(); ++lpn) {
    if (map.Lookup(lpn) != ftl::kUnmapped) ++live;
  }
  if (live != map.mapped_pages()) {
    std::ostringstream detail;
    detail << "mapped_pages() " << map.mapped_pages() << " but " << live
           << " lpns are mapped";
    out.push_back(Diverge("mapping.mapped_total", detail.str()));
  }
  return out;
}

std::vector<Divergence> CheckRebuildMatches(const ftl::Ftl& ftl,
                                            const flash::Geometry& geometry) {
  ftl::RebuildReport report;
  ftl::PageMap rebuilt = ftl.RebuildFromOob(&report);
  const ftl::PageMap& live = ftl.page_map();

  // A rebuilt map that is internally inconsistent is its own bug class.
  std::vector<Divergence> out = CheckMappingConsistent(rebuilt, geometry);

  if (rebuilt == live) return out;

  // Pin down the first observable difference for the report.
  for (uint64_t lpn = 0; lpn < live.lpn_count(); ++lpn) {
    if (rebuilt.Lookup(lpn) != live.Lookup(lpn) ||
        rebuilt.SeqOf(lpn) != live.SeqOf(lpn)) {
      std::ostringstream detail;
      detail << "lpn " << lpn << ": live (ppn " << live.Lookup(lpn)
             << ", seq " << live.SeqOf(lpn) << ") vs rebuilt (ppn "
             << rebuilt.Lookup(lpn) << ", seq " << rebuilt.SeqOf(lpn)
             << "); scanned " << report.pages_scanned << " pages, "
             << report.stale_copies << " stale";
      out.push_back(Diverge("rebuild.mismatch", detail.str()));
      return out;
    }
  }
  for (uint64_t ppn = 0; ppn < geometry.pages(); ++ppn) {
    if (rebuilt.ReverseLookup(ppn) != live.ReverseLookup(ppn)) {
      std::ostringstream detail;
      detail << "ppn " << ppn << ": live p2l " << live.ReverseLookup(ppn)
             << " vs rebuilt " << rebuilt.ReverseLookup(ppn);
      out.push_back(Diverge("rebuild.mismatch", detail.str()));
      return out;
    }
  }
  for (uint64_t block = 0; block < geometry.blocks(); ++block) {
    if (rebuilt.ValidCount(block) != live.ValidCount(block)) {
      std::ostringstream detail;
      detail << "block " << block << ": live ValidCount "
             << live.ValidCount(block) << " vs rebuilt "
             << rebuilt.ValidCount(block);
      out.push_back(Diverge("rebuild.mismatch", detail.str()));
      return out;
    }
  }
  out.push_back(Diverge("rebuild.mismatch",
                        "maps differ (mapped total: live " +
                            std::to_string(live.mapped_pages()) +
                            " vs rebuilt " +
                            std::to_string(rebuilt.mapped_pages()) + ")"));
  return out;
}

}  // namespace xssd::check
