#ifndef XSSD_CHECK_SCHEDULE_H_
#define XSSD_CHECK_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "fault/fault_plan.h"

namespace xssd::check {

/// One step of a conformance schedule. Host ops execute in list order;
/// fault/crash clauses carry their own virtual-time windows and are
/// compiled into a fault::FaultPlan before the run starts, so the list is
/// uniform for the shrinker: dropping any Op yields a valid schedule.
struct Op {
  enum class Kind {
    kAppend,  ///< append `len` bytes of the deterministic payload
    kFsync,   ///< x_fsync and check the durability postcondition
    kRead,    ///< tail-read up to `len` bytes (clamped to appended)
    kFault,   ///< windowed fault clause (kind/at/duration/probability/delay)
    kCrash,   ///< crash clause at a named site (site/after_hits/graceful)
    kFailover,  ///< kill the primary, await exactly-once fenced promotion
  };

  Kind kind = Kind::kAppend;

  // kAppend / kRead
  uint32_t len = 0;

  // kFault
  fault::FaultKind fault = fault::FaultKind::kFlashProgramFail;
  uint64_t at_us = 0;
  uint64_t duration_us = 0;  ///< 0 = open-ended window
  double probability = 1.0;
  uint64_t delay_us = 0;

  // kCrash
  std::string site;
  uint32_t after_hits = 1;
  bool graceful = true;
};

/// A complete, self-describing fuzz case: topology + op list. Two runs of
/// the same Schedule produce bit-identical simulations (the only entropy
/// is `seed`, which feeds the fault injector's probability draws).
struct Schedule {
  uint64_t seed = 0;
  core::ReplicationProtocol protocol = core::ReplicationProtocol::kEager;
  uint32_t secondaries = 0;  ///< 0 = standalone
  std::vector<Op> ops;

  bool HasCrash() const;
  /// True when the schedule contains a kFailover op. Failover schedules run
  /// under the HA supervisor (src/ha) and never carry crash clauses: both
  /// kill the primary, but failover continues against the promoted member
  /// while crash recovers the same one.
  bool HasFailover() const;
  uint64_t TotalAppendBytes() const;

  /// Compile the fault/crash clauses into an injector plan.
  fault::FaultPlan CompileFaultPlan(const std::string& name) const;
};

/// Payload byte at absolute stream offset `offset` for run seed `seed`.
/// Keyed on the absolute offset so a shrunk schedule (fewer/smaller
/// appends) still writes the same bytes at the offsets it keeps — the
/// reference stream stays comparable across shrink attempts.
inline uint8_t PayloadByte(uint64_t seed, uint64_t offset) {
  uint64_t x = offset * 0x9E3779B97F4A7C15ull ^ seed;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  return static_cast<uint8_t>(x);
}

/// Derive a schedule from `seed`: a replication topology (standalone or
/// 1-2 secondaries, protocol drawn uniformly) and about `target_ops`
/// interleaved appends, fsyncs, tail reads, windowed faults, and at most
/// one crash/recovery. Same (seed, target_ops) -> same schedule, on every
/// platform (only sim::Rng arithmetic, no std:: distributions).
Schedule GenerateSchedule(uint64_t seed, size_t target_ops);

/// Human-readable, replayable text form (dumped next to counterexamples).
std::string ToText(const Schedule& schedule);

/// Parse the ToText format. Unknown directives are hard errors so dumped
/// traces cannot silently drift from the runner.
Result<Schedule> ScheduleFromText(std::string_view text);

}  // namespace xssd::check

#endif  // XSSD_CHECK_SCHEDULE_H_
