#include "check/reference_model.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace xssd::check {

namespace {

std::string Hex(uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

}  // namespace

void ReferenceModel::Fail(const char* rule, std::string detail) {
  divergences_.push_back(Divergence{rule, std::move(detail)});
}

std::string ReferenceModel::Describe() const {
  if (divergences_.empty()) return "";
  return divergences_.front().ToString();
}

void ReferenceModel::ReportFailure(const std::string& rule,
                                   const std::string& detail) {
  divergences_.push_back(Divergence{rule, detail});
}

void ReferenceModel::OnAppend(const uint8_t* data, size_t len) {
  stream_.insert(stream_.end(), data, data + len);
}

void ReferenceModel::OnArrival(uint64_t stream_offset, const uint8_t* data,
                               size_t len) {
  if (stream_offset + len > stream_.size()) {
    Fail("arrival.bounds",
         "chunk [" + std::to_string(stream_offset) + ", " +
             std::to_string(stream_offset + len) + ") beyond appended total " +
             std::to_string(stream_.size()));
    return;
  }
  if (std::memcmp(stream_.data() + stream_offset, data, len) != 0) {
    Fail("arrival.bytes", "chunk at offset " + std::to_string(stream_offset) +
                              " (" + std::to_string(len) +
                              " bytes) differs from the appended stream");
  }
  arrived_.Insert(stream_offset, stream_offset + len);
}

void ReferenceModel::OnCredit(uint64_t credit) {
  if (credit < credit_) {
    Fail("credit.monotonic", "credit moved backwards: " +
                                 std::to_string(credit_) + " -> " +
                                 std::to_string(credit));
    return;
  }
  // Figure 5 ordering: the counter may only cover bytes whose store *and*
  // persist both happened — i.e. the contiguous prefix of observed arrivals.
  uint64_t arrived_prefix = arrived_.ContiguousEnd(0);
  if (credit > arrived_prefix) {
    Fail("credit.persist_order",
         "credit " + std::to_string(credit) +
             " acknowledges bytes beyond the contiguous arrived prefix " +
             std::to_string(arrived_prefix) +
             " (credit advanced before persistence)");
  }
  if (credit > stream_.size()) {
    Fail("credit.bounds", "credit " + std::to_string(credit) +
                              " beyond appended total " +
                              std::to_string(stream_.size()));
  }
  credit_ = credit;
}

void ReferenceModel::OnEmit(const core::DestagePageHeader& header,
                            uint64_t lba) {
  if (header.sequence != next_sequence_) {
    Fail("destage.sequence",
         "page sequence " + std::to_string(header.sequence) + ", expected " +
             std::to_string(next_sequence_));
  }
  if (header.stream_offset != destage_cursor_) {
    Fail("destage.chain",
         "page stream offset " + std::to_string(header.stream_offset) +
             " does not chain from cursor " + std::to_string(destage_cursor_));
  }
  uint64_t expect_lba =
      ring_start_lba_ + (header.sequence % ring_lba_count_);
  if (lba != expect_lba) {
    Fail("destage.ring_position",
         "page " + std::to_string(header.sequence) + " issued to lba " +
             std::to_string(lba) + ", ring law demands " +
             std::to_string(expect_lba));
  }
  if (header.stream_offset + header.data_len > credit_) {
    Fail("destage.credit_fence",
         "page covers [" + std::to_string(header.stream_offset) + ", " +
             std::to_string(header.stream_offset + header.data_len) +
             ") beyond credit " + std::to_string(credit_) +
             " (destaged unpersisted bytes)");
  }
  if (header.data_len == 0) {
    Fail("destage.empty",
         "zero-length page " + std::to_string(header.sequence));
  }
  if (header.epoch != epoch_) {
    Fail("destage.epoch", "page stamped epoch " + std::to_string(header.epoch) +
                              ", device is in epoch " + std::to_string(epoch_));
  }
  next_sequence_ = header.sequence + 1;
  destage_cursor_ = header.stream_offset + header.data_len;
}

void ReferenceModel::OnPageDurable(uint64_t begin, uint64_t end) {
  if (end <= begin || end > destage_cursor_) {
    Fail("durable.bounds", "durable extent [" + std::to_string(begin) + ", " +
                               std::to_string(end) +
                               ") not within issued range (cursor " +
                               std::to_string(destage_cursor_) + ")");
    return;
  }
  durable_.Insert(begin, end);
}

void ReferenceModel::OnDestaged(uint64_t destaged) {
  if (destaged < destaged_) {
    Fail("destaged.monotonic", "destaged moved backwards: " +
                                   std::to_string(destaged_) + " -> " +
                                   std::to_string(destaged));
    return;
  }
  uint64_t durable_prefix = durable_.ContiguousEnd(0);
  if (destaged != durable_prefix) {
    Fail("destaged.prefix",
         "destaged counter " + std::to_string(destaged) +
             " != contiguous durable prefix " + std::to_string(durable_prefix));
  }
  if (destaged > credit_) {
    Fail("destaged.credit_fence", "destaged " + std::to_string(destaged) +
                                      " beyond credit " +
                                      std::to_string(credit_));
  }
  destaged_ = destaged;
}

void ReferenceModel::OnShadow(uint32_t index, uint64_t value) {
  if (index >= core::kMaxPeers) {
    Fail("shadow.index", "shadow index " + std::to_string(index) +
                             " out of range (max " +
                             std::to_string(core::kMaxPeers) + ")");
    return;
  }
  if (value < shadows_[index]) {
    Fail("shadow.monotonic",
         "shadow[" + std::to_string(index) + "] moved backwards: " +
             std::to_string(shadows_[index]) + " -> " + std::to_string(value));
    return;
  }
  if (value > stream_.size()) {
    Fail("shadow.bounds", "shadow[" + std::to_string(index) + "] = " +
                              std::to_string(value) +
                              " beyond appended total " +
                              std::to_string(stream_.size()));
  }
  shadows_[index] = value;
}

void ReferenceModel::OnSyncComplete(uint64_t written, uint64_t credit_observed,
                                    bool ok, bool halted) {
  if (ok && credit_observed < written) {
    Fail("fsync.durability",
         "fsync succeeded with protocol credit " +
             std::to_string(credit_observed) + " < write position " +
             std::to_string(written) + " (acknowledged undurable bytes)");
  }
  if (!ok && !halted) {
    Fail("fsync.spurious_failure",
         "fsync failed against a live device (credit " +
             std::to_string(credit_observed) + ", written " +
             std::to_string(written) + ")");
  }
  if (ok) acked_ = std::max(acked_, written);
}

void ReferenceModel::OnTailRead(const std::vector<uint8_t>& data) {
  uint64_t begin = tail_read_;
  uint64_t end = begin + data.size();
  if (end > stream_.size()) {
    Fail("read.bounds", "tail read [" + std::to_string(begin) + ", " +
                            std::to_string(end) + ") beyond appended total " +
                            std::to_string(stream_.size()));
    return;
  }
  if (!data.empty() &&
      std::memcmp(stream_.data() + begin, data.data(), data.size()) != 0) {
    Fail("read.bytes", "tail read at offset " + std::to_string(begin) + " (" +
                           std::to_string(data.size()) +
                           " bytes) differs from the appended stream");
  }
  tail_read_ = end;
}

void ReferenceModel::OnCrash(bool graceful, uint64_t credit_at_halt,
                             uint64_t destaged_settled) {
  crashed_ = true;
  crash_graceful_ = graceful;
  // Graceful halt (paper §4.1 crash protocol): the supercap flush destages
  // every persisted byte, so the whole credit must be recoverable. Hard
  // crash: only what was already settled in flash survives.
  durable_lower_bound_ = graceful ? credit_at_halt : destaged_settled;
}

void ReferenceModel::OnRecovery(uint64_t start_offset,
                                const std::vector<uint8_t>& data,
                                uint32_t epoch) {
  uint64_t end = start_offset + data.size();
  if (end > stream_.size()) {
    Fail("recovery.bounds",
         "recovered [" + std::to_string(start_offset) + ", " +
             std::to_string(end) + ") beyond appended total " +
             std::to_string(stream_.size()) + " (fabricated bytes)");
    return;
  }
  if (durable_lower_bound_ > 0) {
    if (start_offset > 0 && start_offset > destaged_) {
      // The log may begin past 0 once the ring wrapped/trimmed, but never
      // past what had settled — that would open a gap in the prefix.
      Fail("recovery.gap", "recovered log starts at " +
                               std::to_string(start_offset) +
                               " past settled progress " +
                               std::to_string(destaged_));
    }
    if (end < durable_lower_bound_) {
      Fail("recovery.durable_prefix",
           "recovered log ends at " + std::to_string(end) +
               " short of the durable lower bound " +
               std::to_string(durable_lower_bound_) +
               (crash_graceful_ ? " (graceful halt promised the full credit)"
                                : " (settled destage progress lost)"));
    }
  }
  if (!data.empty() &&
      std::memcmp(stream_.data() + start_offset, data.data(), data.size()) !=
          0) {
    Fail("recovery.bytes",
         "recovered bytes at offset " + std::to_string(start_offset) + " (" +
             std::to_string(data.size()) +
             " bytes) differ from the appended stream");
  }
  if (!data.empty() && epoch != epoch_) {
    Fail("recovery.epoch",
         "recovered log stamped epoch " + std::to_string(epoch) +
             ", crash happened in epoch " + std::to_string(epoch_) + " (" +
             Hex(epoch) + " vs " + Hex(epoch_) + ")");
  }
}

void ReferenceModel::OnFailover(bool acked_must_survive, uint64_t new_credit,
                                uint64_t next_sequence,
                                uint64_t destage_cursor, uint64_t destaged) {
  if (acked_must_survive && new_credit < acked_) {
    Fail("failover.acked_loss",
         "promoted tail " + std::to_string(new_credit) +
             " below the acknowledged watermark " + std::to_string(acked_) +
             " (a successful fsync's bytes did not survive promotion)");
  }
  if (new_credit > stream_.size()) {
    Fail("failover.bounds",
         "promoted tail " + std::to_string(new_credit) +
             " beyond appended total " + std::to_string(stream_.size()) +
             " (fabricated bytes)");
  }
  // The promoted device's log is the new truth: the un-acked suffix is
  // gone, and the destage position is whatever the secondary had reached.
  stream_.resize(std::min<uint64_t>(new_credit, stream_.size()));
  arrived_.Clear();
  if (new_credit > 0) arrived_.Insert(0, new_credit);
  credit_ = new_credit;
  next_sequence_ = next_sequence;
  destage_cursor_ = destage_cursor;
  destaged_ = destaged;
  durable_.Clear();
  if (destaged > 0) durable_.Insert(0, destaged);
  for (auto& s : shadows_) s = 0;
  tail_read_ = std::min(tail_read_, new_credit);
  acked_ = std::min(acked_, new_credit);
}

void ReferenceModel::OnReboot() {
  // A reboot starts a fresh epoch with an empty stream: the recovered log
  // is re-appended by the host through the normal path, so the model's
  // reference stream rebuilds through OnAppend like any other data.
  stream_.clear();
  arrived_.Clear();
  credit_ = 0;
  next_sequence_ = 0;
  destage_cursor_ = 0;
  destaged_ = 0;
  durable_.Clear();
  for (auto& s : shadows_) s = 0;
  tail_read_ = 0;
  acked_ = 0;
  ++epoch_;
  crashed_ = false;
  crash_graceful_ = false;
  durable_lower_bound_ = 0;
}

}  // namespace xssd::check
