#include "check/schedule.h"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "sim/random.h"
#include "sim/time.h"

namespace xssd::check {

namespace {

// Generation bounds. Total appended bytes stay well under the 128 KiB CMB
// ring so a secondary's full-stream CopyOut (used by the cross-check) never
// wraps, and runs stay fast enough for a 500-schedule CI campaign.
constexpr uint64_t kMaxTotalAppend = 64 * 1024;
constexpr uint64_t kMaxSmallAppend = 512;
constexpr uint64_t kMaxLargeAppend = 8192;

const char* ProtocolName(core::ReplicationProtocol p) {
  switch (p) {
    case core::ReplicationProtocol::kEager: return "eager";
    case core::ReplicationProtocol::kLazy: return "lazy";
    case core::ReplicationProtocol::kChain: return "chain";
  }
  return "eager";
}

Result<core::ReplicationProtocol> ProtocolFromName(std::string_view name) {
  if (name == "eager") return core::ReplicationProtocol::kEager;
  if (name == "lazy") return core::ReplicationProtocol::kLazy;
  if (name == "chain") return core::ReplicationProtocol::kChain;
  return Status::InvalidArgument("schedule: unknown protocol '" +
                                 std::string(name) + "'");
}

/// The crash sites the fuzzer aims at — the instrumented points, one per
/// protocol stage (persist / emit / completion). Unprefixed so they match
/// whatever device name the harness uses; only the primary is armed, so
/// secondaries never trip them.
const char* const kCrashSites[] = {
    "cmb.persist",
    "destage.emit_page",
    "destage.page_complete",
};

}  // namespace

bool Schedule::HasCrash() const {
  for (const Op& op : ops) {
    if (op.kind == Op::Kind::kCrash) return true;
  }
  return false;
}

bool Schedule::HasFailover() const {
  for (const Op& op : ops) {
    if (op.kind == Op::Kind::kFailover) return true;
  }
  return false;
}

uint64_t Schedule::TotalAppendBytes() const {
  uint64_t total = 0;
  for (const Op& op : ops) {
    if (op.kind == Op::Kind::kAppend) total += op.len;
  }
  return total;
}

fault::FaultPlan Schedule::CompileFaultPlan(const std::string& name) const {
  fault::FaultPlanBuilder builder(name);
  for (const Op& op : ops) {
    if (op.kind == Op::Kind::kFault) {
      builder.Window(op.fault, sim::Us(op.at_us),
                     op.duration_us == 0 ? fault::FaultSpec::kForever
                                         : sim::Us(op.duration_us),
                     op.probability, sim::Us(op.delay_us));
    } else if (op.kind == Op::Kind::kCrash) {
      builder.Crash(op.site, op.after_hits, op.graceful);
    }
  }
  return builder.Build();
}

Schedule GenerateSchedule(uint64_t seed, size_t target_ops) {
  // Independent sub-streams so op choices do not perturb parameter draws.
  sim::Rng rng(seed ^ 0xC0FFEEull);

  Schedule schedule;
  schedule.seed = seed;

  uint64_t topology = rng.Uniform(100);
  if (topology < 45) {
    schedule.secondaries = 0;
  } else if (topology < 75) {
    schedule.secondaries = 1;
  } else {
    schedule.secondaries = 2;
  }
  switch (rng.Uniform(3)) {
    case 0: schedule.protocol = core::ReplicationProtocol::kEager; break;
    case 1: schedule.protocol = core::ReplicationProtocol::kLazy; break;
    default: schedule.protocol = core::ReplicationProtocol::kChain; break;
  }

  uint64_t append_budget = kMaxTotalAppend;
  bool crash_placed = false;
  bool failover_placed = false;

  while (schedule.ops.size() < target_ops) {
    Op op;
    uint64_t roll = rng.Uniform(100);
    if (roll < 55) {
      op.kind = Op::Kind::kAppend;
      uint64_t len = rng.Bernoulli(0.2)
                         ? rng.UniformRange(1024, kMaxLargeAppend)
                         : rng.UniformRange(1, kMaxSmallAppend);
      if (len > append_budget) len = append_budget;
      if (len == 0) {
        op.kind = Op::Kind::kFsync;  // budget exhausted: sync instead
      } else {
        op.len = static_cast<uint32_t>(len);
        append_budget -= len;
      }
    } else if (roll < 70) {
      op.kind = Op::Kind::kFsync;
    } else if (roll < 82) {
      op.kind = Op::Kind::kRead;
      op.len = static_cast<uint32_t>(rng.UniformRange(1, 4096));
    } else if (roll < 92 || crash_placed || failover_placed) {
      op.kind = Op::Kind::kFault;
      op.at_us = rng.Uniform(3000);
      switch (rng.Uniform(5)) {
        case 0:
          op.fault = fault::FaultKind::kFlashProgramFail;
          op.duration_us = rng.UniformRange(100, 1000);
          op.probability = 0.3;
          break;
        case 1:
          op.fault = fault::FaultKind::kNtbLinkDown;
          op.duration_us = rng.UniformRange(50, 400);
          break;
        case 2:
          op.fault = fault::FaultKind::kNtbLinkStall;
          op.duration_us = rng.UniformRange(100, 600);
          op.delay_us = rng.UniformRange(5, 50);
          break;
        case 3:
          op.fault = fault::FaultKind::kPcieStoreDelay;
          op.duration_us = rng.UniformRange(100, 800);
          op.delay_us = rng.UniformRange(1, 20);
          break;
        default:
          op.fault = fault::FaultKind::kNvmeTimeout;
          op.duration_us = rng.UniformRange(100, 500);
          op.probability = 0.5;
          op.delay_us = rng.UniformRange(10, 100);
          break;
      }
    } else if (schedule.secondaries == 2 && rng.Bernoulli(0.5)) {
      // Only 3-member clusters fail over: a 2-member group has no live
      // majority after the primary dies, so the supervisor (correctly)
      // refuses to elect and the run would stall. Mutually exclusive with
      // crash clauses — both kill the primary, with different epilogues.
      op.kind = Op::Kind::kFailover;
      failover_placed = true;
    } else {
      op.kind = Op::Kind::kCrash;
      op.site = kCrashSites[rng.Uniform(3)];
      op.after_hits = static_cast<uint32_t>(rng.UniformRange(1, 6));
      op.graceful = rng.Bernoulli(0.5);
      crash_placed = true;
    }
    schedule.ops.push_back(std::move(op));
  }
  return schedule;
}

std::string ToText(const Schedule& schedule) {
  std::ostringstream out;
  out << "# xssd-check schedule v1\n";
  out << "seed " << schedule.seed << "\n";
  out << "protocol " << ProtocolName(schedule.protocol) << "\n";
  out << "secondaries " << schedule.secondaries << "\n";
  for (const Op& op : schedule.ops) {
    switch (op.kind) {
      case Op::Kind::kAppend:
        out << "append " << op.len << "\n";
        break;
      case Op::Kind::kFsync:
        out << "fsync\n";
        break;
      case Op::Kind::kRead:
        out << "read " << op.len << "\n";
        break;
      case Op::Kind::kFault:
        out << "fault " << fault::FaultKindName(op.fault) << " at_us "
            << op.at_us << " duration_us " << op.duration_us
            << " probability " << std::setprecision(17) << op.probability
            << " delay_us " << op.delay_us << "\n";
        break;
      case Op::Kind::kCrash:
        out << "crash " << op.site << " after_hits " << op.after_hits
            << " graceful " << (op.graceful ? 1 : 0) << "\n";
        break;
      case Op::Kind::kFailover:
        out << "failover\n";
        break;
    }
  }
  return out.str();
}

Result<Schedule> ScheduleFromText(std::string_view text) {
  Schedule schedule;
  std::istringstream in{std::string(text)};
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string word;
    fields >> word;
    auto bad = [&](const std::string& what) {
      return Status::InvalidArgument("schedule line " +
                                     std::to_string(lineno) + ": " + what);
    };
    if (word == "seed") {
      if (!(fields >> schedule.seed)) return bad("seed needs a number");
    } else if (word == "protocol") {
      std::string name;
      if (!(fields >> name)) return bad("protocol needs a name");
      auto protocol = ProtocolFromName(name);
      if (!protocol.ok()) return protocol.status();
      schedule.protocol = *protocol;
    } else if (word == "secondaries") {
      if (!(fields >> schedule.secondaries)) {
        return bad("secondaries needs a number");
      }
    } else if (word == "append" || word == "read") {
      Op op;
      op.kind = word == "append" ? Op::Kind::kAppend : Op::Kind::kRead;
      if (!(fields >> op.len) || op.len == 0) {
        return bad(word + " needs a positive length");
      }
      schedule.ops.push_back(op);
    } else if (word == "fsync") {
      Op op;
      op.kind = Op::Kind::kFsync;
      schedule.ops.push_back(op);
    } else if (word == "failover") {
      Op op;
      op.kind = Op::Kind::kFailover;
      schedule.ops.push_back(op);
    } else if (word == "fault") {
      Op op;
      op.kind = Op::Kind::kFault;
      std::string kind_name;
      if (!(fields >> kind_name)) return bad("fault needs a kind");
      auto kind = fault::FaultKindFromName(kind_name);
      if (!kind.ok()) return kind.status();
      op.fault = *kind;
      std::string key;
      while (fields >> key) {
        if (key == "at_us") {
          if (!(fields >> op.at_us)) return bad("at_us needs a number");
        } else if (key == "duration_us") {
          if (!(fields >> op.duration_us)) {
            return bad("duration_us needs a number");
          }
        } else if (key == "probability") {
          if (!(fields >> op.probability)) {
            return bad("probability needs a number");
          }
        } else if (key == "delay_us") {
          if (!(fields >> op.delay_us)) return bad("delay_us needs a number");
        } else {
          return bad("unknown fault field '" + key + "'");
        }
      }
      schedule.ops.push_back(std::move(op));
    } else if (word == "crash") {
      Op op;
      op.kind = Op::Kind::kCrash;
      if (!(fields >> op.site)) return bad("crash needs a site");
      std::string key;
      while (fields >> key) {
        if (key == "after_hits") {
          if (!(fields >> op.after_hits)) {
            return bad("after_hits needs a number");
          }
        } else if (key == "graceful") {
          int flag = 0;
          if (!(fields >> flag)) return bad("graceful needs 0 or 1");
          op.graceful = flag != 0;
        } else {
          return bad("unknown crash field '" + key + "'");
        }
      }
      schedule.ops.push_back(std::move(op));
    } else {
      return bad("unknown directive '" + word + "'");
    }
  }
  return schedule;
}

}  // namespace xssd::check
