#ifndef XSSD_CHECK_MAPPING_ORACLE_H_
#define XSSD_CHECK_MAPPING_ORACLE_H_

#include <vector>

#include "check/reference_model.h"
#include "flash/geometry.h"
#include "ftl/ftl.h"
#include "ftl/mapping.h"

namespace xssd::check {

/// \brief Structural invariants of a page map, checkable from the outside:
///
///  - mapping.l2p_p2l: the forward and reverse maps are mutual inverses —
///    every mapped lpn's physical page points back at it and every claimed
///    reverse entry is the live mapping.
///  - mapping.valid_count: each block's valid count equals the number of
///    reverse-mapped pages it holds.
///  - mapping.mapped_total: mapped_pages() equals the number of lpns with
///    a live mapping.
///
/// Returns one Divergence per violated rule (first counterexample each);
/// empty means consistent.
std::vector<Divergence> CheckMappingConsistent(
    const ftl::PageMap& map, const flash::Geometry& geometry);

/// \brief Differential recovery oracle: RebuildFromOob() must reproduce the
/// live map exactly (PageMap::operator==) at a quiesced point. On mismatch
/// reports rule "rebuild.mismatch" with the first differing lpn / physical
/// page / block as detail, plus any structural inconsistency found in the
/// rebuilt map itself.
///
/// Quiesced means no in-flight programs or erases; callers drain the
/// simulator first. TRIM is documented as not crash-persistent, so maps
/// that saw a Trim since the last overwrite of that lpn are out of scope.
std::vector<Divergence> CheckRebuildMatches(const ftl::Ftl& ftl,
                                            const flash::Geometry& geometry);

}  // namespace xssd::check

#endif  // XSSD_CHECK_MAPPING_ORACLE_H_
