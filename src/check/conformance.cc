#include "check/conformance.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>

#include "ha/supervisor.h"
#include "host/node.h"
#include "host/recovery.h"
#include "sim/simulator.h"

namespace xssd::check {

namespace {

/// Small-but-real device (the integration-test geometry): enough flash for
/// the 64-slot destage ring to wrap, small enough that 500 schedules fit in
/// a CI minute. Retransmission is enabled so NTB fault windows heal instead
/// of wedging eager replication forever.
core::VillarsConfig HarnessConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 64;
  config.transport.retransmit_timeout = sim::Us(200);
  return config;
}

/// Run `op`, pumping the simulator until its callback delivers a Status or
/// `budget` virtual time elapses. On timeout the op is abandoned — its
/// callback stays armed (captures keep state alive via shared_ptr) and is
/// ignored if it fires later. Returns nullopt on timeout.
std::optional<Status> AwaitBounded(
    sim::Simulator& sim, sim::SimTime budget,
    const std::function<void(std::function<void(Status)>)>& op) {
  auto result = std::make_shared<std::optional<Status>>();
  op([result](Status status) {
    if (!result->has_value()) *result = std::move(status);
  });
  auto deadline = std::make_shared<bool>(false);
  sim.Schedule(budget, [deadline]() { *deadline = true; });
  sim.RunWhile([&]() { return result->has_value() || *deadline; });
  return *result;
}

class Harness {
 public:
  Harness(const Schedule& schedule, const CheckOptions& options)
      : schedule_(schedule), options_(options) {}

  CheckResult Run();

 private:
  /// The node currently serving as primary — nodes_[0] until a kFailover
  /// op re-homes the harness onto the promoted member.
  host::StorageNode& primary() { return *nodes_[active_]; }

  bool BuildCluster();
  void AttachObservers();
  void DetachObservers(host::StorageNode& node);
  void AttachDestageObservers();  ///< re-run after every Reboot()
  void ArmFaults();

  void ExecAppend(const Op& op);
  bool ExecFsync();  ///< true when the sync completed with OK
  void ExecRead(const Op& op);
  void ExecFailover();

  void CrashEpilogue();
  void QuiescenceEpilogue();
  void SettlePastFaultWindows();

  /// True when `kind` appears among the schedule's fault clauses.
  bool HasFaultKind(fault::FaultKind kind) const;

  const Schedule& schedule_;
  const CheckOptions& options_;

  sim::Simulator sim_;
  std::vector<std::unique_ptr<host::StorageNode>> nodes_;
  std::unique_ptr<ReferenceModel> model_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<ha::ReplicaSupervisor> supervisor_;  ///< failover mode
  size_t active_ = 0;  ///< index of the current primary

  uint64_t appended_ = 0;       ///< bytes submitted through Append
  uint64_t tail_returned_ = 0;  ///< bytes handed back by tail reads
  bool reads_poisoned_ = false; ///< a read failed/timed out; cursors desynced
  bool crash_drained_ = false;  ///< graceful crash finished its destage
  bool crash_fired_ = false;
  bool crash_graceful_ = false;

  CheckResult result_;
};

bool Harness::BuildCluster() {
  host::XLogClientOptions client_options;
  client_options.sync_stall_timeout = sim::Ms(2);

  bool supervised = schedule_.HasFailover() && schedule_.secondaries > 0;
  core::VillarsConfig config = HarnessConfig();
  if (supervised) {
    ha::ReplicaSupervisor::ConfigureDevice(&config,
                                           1 + schedule_.secondaries);
  }
  nodes_.push_back(std::make_unique<host::StorageNode>(
      &sim_, config, pcie::FabricConfig{}, "pri", client_options));
  for (uint32_t i = 0; i < schedule_.secondaries; ++i) {
    // In supervised mode every member carries client options: any of them
    // can be promoted and must then serve the workload.
    nodes_.push_back(std::make_unique<host::StorageNode>(
        &sim_, config, pcie::FabricConfig{}, "sec" + std::to_string(i),
        supervised ? client_options : host::XLogClientOptions{}));
  }
  for (auto& node : nodes_) {
    if (!node->Init().ok()) return false;
  }
  if (supervised) {
    ha::HaConfig ha_config;
    ha_config.protocol = schedule_.protocol;
    ha_config.update_period = sim::UsF(0.8);
    // Failure detection window 100us x 25 = 2.5ms: far beyond any fault
    // window the generator emits (<= 600us), so injected link flaps never
    // cause a spurious election — only the kFailover kill does.
    ha_config.heartbeat_period = sim::Us(100);
    ha_config.suspicion_threshold = 25;
    std::vector<host::StorageNode*> raw;
    for (auto& node : nodes_) raw.push_back(node.get());
    supervisor_ =
        std::make_unique<ha::ReplicaSupervisor>(&sim_, raw, ha_config);
    if (!supervisor_->Setup().ok()) return false;
    supervisor_->Start();
  } else if (schedule_.secondaries > 0) {
    std::vector<host::StorageNode*> raw;
    for (auto& node : nodes_) raw.push_back(node.get());
    host::ReplicationGroup group(raw);
    if (!group.Setup(schedule_.protocol, sim::UsF(0.8)).ok()) return false;
  }
  return true;
}

void Harness::AttachObservers() {
  core::VillarsDevice& device = primary().device();
  device.cmb().SetArrivalObserver(
      [this](uint64_t stream_offset, const uint8_t* data, size_t len) {
        model_->OnArrival(stream_offset, data, len);
      });
  device.cmb().SetCreditObserver(
      [this](uint64_t credit) { model_->OnCredit(credit); });
  device.transport().SetShadowHook([this](uint32_t index, uint64_t value) {
    model_->OnShadow(index, value);
  });
  AttachDestageObservers();
}

void Harness::DetachObservers(host::StorageNode& node) {
  node.device().cmb().SetArrivalObserver({});
  node.device().cmb().SetCreditObserver({});
  node.device().transport().SetShadowHook({});
  node.device().destage().SetEmitObserver({});
  node.device().destage().SetDurableObserver({});
  node.device().destage().SetDestagedObserver({});
}

void Harness::AttachDestageObservers() {
  core::DestageModule& destage = primary().device().destage();
  destage.SetEmitObserver(
      [this](const core::DestagePageHeader& header, uint64_t lba) {
        model_->OnEmit(header, lba);
      });
  destage.SetDurableObserver([this](uint64_t begin, uint64_t end) {
    model_->OnPageDurable(begin, end);
  });
  destage.SetDestagedObserver(
      [this](uint64_t destaged) { model_->OnDestaged(destaged); });
}

void Harness::ArmFaults() {
  injector_ = std::make_unique<fault::FaultInjector>(
      &sim_, schedule_.CompileFaultPlan("check"), schedule_.seed);
  // install_crash_handler=false: the harness owns crash semantics so it can
  // observe the drain and the graceful flag.
  primary().ArmFaults(injector_.get(), /*install_crash_handler=*/false);
  injector_->SetCrashHandler([this](const fault::FaultSpec& spec) {
    crash_fired_ = true;
    crash_graceful_ = spec.graceful;
    if (spec.graceful) {
      primary().device().PowerFail([this]() { crash_drained_ = true; });
    } else {
      primary().device().CrashHard();
    }
  });
}

bool Harness::HasFaultKind(fault::FaultKind kind) const {
  for (const Op& op : schedule_.ops) {
    if (op.kind == Op::Kind::kFault && op.fault == kind) return true;
  }
  return false;
}

void Harness::ExecAppend(const Op& op) {
  auto data = std::make_shared<std::vector<uint8_t>>(op.len);
  for (uint32_t i = 0; i < op.len; ++i) {
    (*data)[i] = PayloadByte(schedule_.seed, appended_ + i);
  }
  model_->OnAppend(data->data(), data->size());
  appended_ += op.len;
  result_.appended += op.len;

  auto status = AwaitBounded(
      sim_, options_.op_deadline,
      [&](std::function<void(Status)> done) {
        primary().client().Append(data->data(), data->size(),
                                  [data, done](Status s) { done(s); });
      });
  if (!status.has_value() && !crash_fired_) {
    model_->ReportFailure("harness.append_stall",
                          "append of " + std::to_string(op.len) +
                              " bytes made no progress for " +
                              std::to_string(sim::ToUs(options_.op_deadline)) +
                              "us with no crash in flight");
  }
}

bool Harness::ExecFsync() {
  uint64_t written = primary().client().written();
  auto status = AwaitBounded(sim_, options_.op_deadline,
                             [&](std::function<void(Status)> done) {
                               primary().client().Sync(std::move(done));
                             });
  if (!status.has_value()) {
    if (!crash_fired_) {
      model_->ReportFailure(
          "harness.fsync_stall",
          "fsync at write position " + std::to_string(written) +
              " made no progress for " +
              std::to_string(sim::ToUs(options_.op_deadline)) +
              "us with no crash in flight");
    }
    return false;
  }
  model_->OnSyncComplete(written, primary().client().credit_cache(),
                         status->ok(), primary().device().halted());
  return status->ok();
}

void Harness::ExecRead(const Op& op) {
  if (reads_poisoned_) return;
  uint64_t available = appended_ - tail_returned_;
  size_t len = static_cast<size_t>(
      std::min<uint64_t>(op.len, available));
  if (len == 0) return;

  auto bytes = std::make_shared<std::vector<uint8_t>>();
  auto status = AwaitBounded(
      sim_, options_.op_deadline, [&](std::function<void(Status)> done) {
        primary().client().ReadTail(
            &primary().driver(), len,
            [bytes, done](Status s, std::vector<uint8_t> data) {
              *bytes = std::move(data);
              done(s);
            });
      });
  if (!status.has_value()) {
    // Abandoned mid-accumulation: the client's cursor no longer matches
    // ours, so stop issuing reads. Only a liveness bug if nothing could
    // legally stall destaging.
    reads_poisoned_ = true;
    if (!crash_fired_ &&
        !HasFaultKind(fault::FaultKind::kFlashProgramFail) &&
        !HasFaultKind(fault::FaultKind::kNvmeTimeout)) {
      model_->ReportFailure("harness.read_stall",
                            "tail read of " + std::to_string(len) +
                                " bytes never completed with no crash or "
                                "flash/nvme fault in the schedule");
    }
    return;
  }
  if (!status->ok()) {
    reads_poisoned_ = true;
    if (!crash_fired_ && !HasFaultKind(fault::FaultKind::kNvmeTimeout) &&
        !HasFaultKind(fault::FaultKind::kFlashReadUncorrectable)) {
      model_->ReportFailure("read.io_error",
                            "tail read failed with no injected read fault: " +
                                status->ToString());
    }
    return;
  }
  model_->OnTailRead(*bytes);
  tail_returned_ += bytes->size();
}

void Harness::ExecFailover() {
  if (supervisor_ == nullptr) return;  // standalone schedule: nothing to do
  uint64_t before = supervisor_->promotions();
  primary().device().CrashHard();

  // Detection (2.5ms) + election + admin chains + client reconnect all fit
  // comfortably inside 20ms of virtual time.
  auto deadline = std::make_shared<bool>(false);
  sim_.Schedule(sim::Ms(20), [deadline]() { *deadline = true; });
  sim_.RunWhile(
      [&]() { return supervisor_->promotions() > before || *deadline; });

  if (supervisor_->promotions() == before) {
    model_->ReportFailure("failover.no_promotion",
                          "no member was promoted within 20ms of the "
                          "primary's death");
    return;
  }
  size_t leader = supervisor_->leader_index();
  if (supervisor_->promotions() != before + 1 || leader == active_ ||
      nodes_[leader]->device().halted()) {
    model_->ReportFailure(
        "failover.exactly_once",
        "expected exactly one promotion to a live member, saw " +
            std::to_string(supervisor_->promotions() - before) +
            " (leader index " + std::to_string(leader) + ")");
    return;
  }

  // Re-home the harness and the model onto the promoted device. State is
  // read synchronously at the promotion event, before any further sim
  // progress, so the adopted destage position cannot race new activity.
  DetachObservers(primary());
  active_ = leader;
  core::VillarsDevice& device = primary().device();
  bool acked_must_survive =
      schedule_.protocol != core::ReplicationProtocol::kLazy;
  model_->OnFailover(acked_must_survive, device.cmb().local_credit(),
                     device.destage().next_sequence(),
                     device.destage().destage_cursor(),
                     device.destage().destaged());
  AttachObservers();

  // The promoted client resumed at the device tail; appends continue from
  // there (PayloadByte is keyed on absolute offsets, so the re-appended
  // suffix reproduces the discarded bytes exactly). The old read cursor
  // belongs to the dead client.
  appended_ = device.cmb().local_credit();
  tail_returned_ = std::min(tail_returned_, appended_);
  reads_poisoned_ = true;
  result_.failed_over = true;
}

void Harness::SettlePastFaultWindows() {
  // Recovery and the quiescence checks must not race still-open fault
  // windows (an nvme timeout window would fail recovery's ring reads for
  // reasons that are injected, not bugs). Advance past every bounded
  // window end; the generator never emits open-ended windows.
  uint64_t latest_end_us = 0;
  for (const Op& op : schedule_.ops) {
    if (op.kind == Op::Kind::kFault && op.duration_us > 0) {
      latest_end_us = std::max(latest_end_us, op.at_us + op.duration_us);
    }
  }
  sim::SimTime latest_end = sim::Us(latest_end_us) + sim::Us(1);
  if (latest_end > sim_.Now()) sim_.RunFor(latest_end - sim_.Now());
}

void Harness::CrashEpilogue() {
  result_.crashed = true;
  result_.graceful_crash = crash_graceful_;

  if (crash_graceful_) {
    auto deadline = std::make_shared<bool>(false);
    sim_.Schedule(sim::Ms(50), [deadline]() { *deadline = true; });
    sim_.RunWhile([&]() { return crash_drained_ || *deadline; });
    if (!crash_drained_) {
      model_->ReportFailure("crash.drain_stall",
                            "graceful power-fail destage never finished");
      return;
    }
  } else {
    // Let in-flight flash programs complete; their durable/destaged
    // accounting still runs on a halted device (flash is flash).
    sim_.RunFor(sim::Ms(2));
  }
  SettlePastFaultWindows();

  core::VillarsDevice& device = primary().device();
  uint64_t credit_final = device.cmb().local_credit();
  uint64_t destaged_final = device.destage().destaged();
  // The full-credit recovery promise holds for a graceful halt unless the
  // schedule armed flash write faults, which can legally pin a page (and
  // with it the destaged prefix) below the credit.
  bool strong = crash_graceful_ &&
                !HasFaultKind(fault::FaultKind::kFlashProgramFail) &&
                !HasFaultKind(fault::FaultKind::kFlashEraseFail);
  model_->OnCrash(strong, credit_final, destaged_final);

  device.Reboot();
  Result<host::RecoveredLog> recovered =
      host::RecoverLog(sim_, primary().driver(),
                       device.destage().ring_start_lba(),
                       device.destage().ring_lba_count());
  if (!recovered.ok()) {
    model_->ReportFailure("recovery.failed", recovered.status().ToString());
    return;
  }
  result_.recovered = true;
  result_.recovered_bytes = recovered->data.size();
  model_->OnRecovery(recovered->start_offset, recovered->data,
                     recovered->epoch);

  // The device is in a fresh epoch now; so is the model. The destage
  // module was recreated by Reboot(), so the taps must be re-attached.
  model_->OnReboot();
  AttachDestageObservers();

  if (schedule_.secondaries > 0) {
    // Replicated crash schedules end at recovery validation: the
    // promote-and-continue path is exercised by kFailover schedules, which
    // run under the HA supervisor and check the fencing rule end to end
    // (ExecFailover / ReferenceModel::OnFailover).
    return;
  }

  // Standalone: the rebooted device must serve a fresh append + fsync.
  if (!primary().client().Reconnect().ok()) {
    model_->ReportFailure("reboot.reconnect",
                          "client reconnect failed after reboot");
    return;
  }
  appended_ = 0;
  tail_returned_ = 0;
  reads_poisoned_ = true;  // pre-crash cursor is meaningless now
  crash_fired_ = false;    // liveness rules apply again post-reboot
  Op post;
  post.kind = Op::Kind::kAppend;
  post.len = 512;
  ExecAppend(post);
  ExecFsync();
}

void Harness::QuiescenceEpilogue() {
  bool synced_ok = ExecFsync();
  uint64_t synced = primary().client().written();
  SettlePastFaultWindows();

  // Everything credited must destage once traffic stops (the latency
  // threshold bounds the wait for the final partial page).
  core::VillarsDevice& device = primary().device();
  auto deadline = std::make_shared<bool>(false);
  sim_.Schedule(sim::Ms(20), [deadline]() { *deadline = true; });
  sim_.RunWhile([&]() {
    return crash_fired_ ||
           device.destage().destaged() >= device.cmb().local_credit() ||
           *deadline;
  });
  if (crash_fired_) {
    // A crash clause with a high hit count can trip only now, while the
    // quiescence destage drains through its site. Late or not, it is
    // still a crash run.
    CrashEpilogue();
    return;
  }
  if (device.destage().destaged() < device.cmb().local_credit() &&
      !HasFaultKind(fault::FaultKind::kFlashProgramFail) &&
      !HasFaultKind(fault::FaultKind::kFlashEraseFail)) {
    model_->ReportFailure(
        "harness.destage_stall",
        "destaged " + std::to_string(device.destage().destaged()) +
            " never reached credit " +
            std::to_string(device.cmb().local_credit()) +
            " with no flash write faults in the schedule");
  }

  // Read back whatever the schedule's reads left over.
  if (appended_ > tail_returned_) {
    Op rest;
    rest.kind = Op::Kind::kRead;
    rest.len = static_cast<uint32_t>(
        std::min<uint64_t>(appended_ - tail_returned_, 64 * 1024));
    ExecRead(rest);
  }

  // Replication postconditions: after a clean final fsync the protocol's
  // durability set must hold the full stream, byte-exact (paper §4.2).
  // After a failover the group is the promoted primary plus the surviving
  // live members — the dead ex-primary is exempt.
  if (schedule_.secondaries > 0 && synced_ok) {
    bool check_all =
        schedule_.protocol == core::ReplicationProtocol::kEager;
    bool check_last =
        schedule_.protocol == core::ReplicationProtocol::kChain;
    std::vector<size_t> members;  // current secondaries, chain order
    for (size_t j = 0; j < nodes_.size(); ++j) {
      if (j == active_ || nodes_[j]->device().halted()) continue;
      members.push_back(j);
    }
    for (size_t i = 0; i < members.size(); ++i) {
      bool must_hold = check_all || (check_last && i == members.size() - 1);
      if (!must_hold) continue;
      core::CmbModule& cmb = nodes_[members[i]]->device().cmb();
      if (cmb.local_credit() < synced) {
        model_->ReportFailure(
            "replication.lag",
            "secondary " + std::to_string(members[i]) + " credit " +
                std::to_string(cmb.local_credit()) +
                " below fsynced position " + std::to_string(synced) +
                " under " +
                (check_all ? std::string("eager") : std::string("chain")) +
                " replication");
        continue;
      }
      uint64_t n = std::min<uint64_t>(cmb.local_credit(), appended_);
      n = std::min<uint64_t>(n, model_->stream().size());
      if (n == 0) continue;
      std::vector<uint8_t> replica(n);
      cmb.CopyOut(0, replica.data(), n);
      if (std::memcmp(replica.data(), model_->stream().data(), n) != 0) {
        model_->ReportFailure("replication.bytes",
                              "secondary " + std::to_string(members[i]) +
                                  " replica differs from the appended "
                                  "stream in the first " +
                                  std::to_string(n) + " bytes");
      }
    }
  }
}

CheckResult Harness::Run() {
  model_ = std::make_unique<ReferenceModel>(0, 0);  // re-made after wiring

  if (!BuildCluster()) {
    result_.first_divergence = "harness.setup: cluster wiring failed";
    result_.divergences.push_back(
        Divergence{"harness.setup", "cluster wiring failed"});
    return result_;
  }
  core::DestageModule& destage = primary().device().destage();
  model_ = std::make_unique<ReferenceModel>(destage.ring_start_lba(),
                                            destage.ring_lba_count());
  if (options_.plant_early_credit_bug) {
    primary().device().cmb().set_test_only_early_credit(true);
  }
  AttachObservers();
  ArmFaults();

  for (const Op& op : schedule_.ops) {
    if (crash_fired_) {
      // The device is gone; the remaining host ops would only grind
      // against a halted device. The crash epilogue owns the rest.
      ++result_.ops_skipped;
      continue;
    }
    switch (op.kind) {
      case Op::Kind::kAppend:
        ExecAppend(op);
        break;
      case Op::Kind::kFsync:
        ExecFsync();
        break;
      case Op::Kind::kRead:
        ExecRead(op);
        break;
      case Op::Kind::kFailover:
        ExecFailover();
        break;
      case Op::Kind::kFault:
      case Op::Kind::kCrash:
        break;  // compiled into the fault plan before the run
    }
    ++result_.ops_executed;
    if (!model_->ok()) break;  // first divergence ends the run
  }

  if (model_->ok()) {
    if (crash_fired_) {
      CrashEpilogue();
    } else {
      QuiescenceEpilogue();
    }
  }

  if (supervisor_ != nullptr) {
    supervisor_->Stop();
    result_.promotions = supervisor_->promotions();
  }
  result_.fault_totals = injector_->totals();
  result_.divergences = model_->divergences();
  result_.ok = model_->ok();
  result_.first_divergence = model_->Describe();
  return result_;
}

}  // namespace

CheckResult RunSchedule(const Schedule& schedule,
                        const CheckOptions& options) {
  Harness harness(schedule, options);
  return harness.Run();
}

}  // namespace xssd::check
