#include "check/shrink.h"

#include <algorithm>

namespace xssd::check {

namespace {

/// One bounded oracle query: does `candidate` still fail?
class Oracle {
 public:
  Oracle(const CheckOptions& options, size_t max_runs)
      : options_(options), max_runs_(max_runs) {}

  bool Fails(const Schedule& candidate, std::string* divergence) {
    if (runs_ >= max_runs_) return false;  // budget spent: accept nothing
    ++runs_;
    CheckResult result = RunSchedule(candidate, options_);
    if (!result.ok && divergence != nullptr) {
      *divergence = result.first_divergence;
    }
    return !result.ok;
  }

  size_t runs() const { return runs_; }
  bool exhausted() const { return runs_ >= max_runs_; }

 private:
  const CheckOptions& options_;
  size_t max_runs_;
  size_t runs_ = 0;
};

Schedule WithoutRange(const Schedule& base, size_t begin, size_t end) {
  Schedule out = base;
  out.ops.erase(out.ops.begin() + begin, out.ops.begin() + end);
  return out;
}

}  // namespace

ShrinkResult ShrinkSchedule(const Schedule& failing,
                            const CheckOptions& options, size_t max_runs) {
  Oracle oracle(options, max_runs);
  ShrinkResult result;
  result.schedule = failing;

  // Phase 1: ddmin op removal. Try dropping chunks of halving size; on any
  // success restart at the same granularity (earlier removals can enable
  // later ones).
  size_t chunk = result.schedule.ops.size();
  while (chunk >= 1 && !oracle.exhausted()) {
    bool removed_any = false;
    size_t i = 0;
    while (i < result.schedule.ops.size()) {
      size_t end = std::min(i + chunk, result.schedule.ops.size());
      std::string divergence;
      Schedule candidate = WithoutRange(result.schedule, i, end);
      if (!candidate.ops.empty() && oracle.Fails(candidate, &divergence)) {
        result.schedule = std::move(candidate);
        result.divergence = divergence;
        removed_any = true;
        // Same index now names the next chunk; do not advance.
      } else {
        i = end;
      }
      if (oracle.exhausted()) break;
    }
    if (!removed_any) chunk /= 2;
  }

  // Phase 2: topology shrinking — a standalone counterexample is easier to
  // read than a replicated one.
  while (result.schedule.secondaries > 0 && !oracle.exhausted()) {
    Schedule candidate = result.schedule;
    --candidate.secondaries;
    std::string divergence;
    if (!oracle.Fails(candidate, &divergence)) break;
    result.schedule = std::move(candidate);
    result.divergence = divergence;
  }

  // Phase 3: parameter shrinking. Halve append/read lengths toward 1 and
  // drop crash trigger counts toward 1 while the failure persists.
  bool shrunk = true;
  while (shrunk && !oracle.exhausted()) {
    shrunk = false;
    for (size_t i = 0; i < result.schedule.ops.size(); ++i) {
      Op& op = result.schedule.ops[i];
      if ((op.kind == Op::Kind::kAppend || op.kind == Op::Kind::kRead) &&
          op.len > 1) {
        Schedule candidate = result.schedule;
        candidate.ops[i].len = op.len / 2;
        std::string divergence;
        if (oracle.Fails(candidate, &divergence)) {
          result.schedule = std::move(candidate);
          result.divergence = divergence;
          shrunk = true;
        }
      } else if (op.kind == Op::Kind::kCrash && op.after_hits > 1) {
        Schedule candidate = result.schedule;
        candidate.ops[i].after_hits = 1;
        std::string divergence;
        if (oracle.Fails(candidate, &divergence)) {
          result.schedule = std::move(candidate);
          result.divergence = divergence;
          shrunk = true;
        }
      }
      if (oracle.exhausted()) break;
    }
  }

  // Final confirmation run so callers can trust the reported divergence
  // even when every shrink attempt failed (divergence still empty).
  std::string divergence;
  result.still_failing = oracle.Fails(result.schedule, &divergence) ||
                         !result.divergence.empty();
  if (!divergence.empty()) result.divergence = divergence;
  result.runs = oracle.runs();
  return result;
}

}  // namespace xssd::check
