#ifndef XSSD_CHECK_CONFORMANCE_H_
#define XSSD_CHECK_CONFORMANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/reference_model.h"
#include "check/schedule.h"
#include "fault/fault_injector.h"
#include "sim/time.h"

namespace xssd::check {

/// Knobs for one conformance run.
struct CheckOptions {
  /// Enable the planted Figure 5 ordering bug in the primary's CMB
  /// (CmbModule::set_test_only_early_credit). Used to prove the oracle can
  /// catch a real ordering violation and the shrinker can minimize it.
  bool plant_early_credit_bug = false;

  /// Virtual-time budget per host op. Ops that outlive it are abandoned
  /// (their callbacks stay armed; the simulator keeps draining them). A
  /// timeout is a liveness divergence unless the run crashed or the
  /// schedule carries flash-write faults that can legally stall destaging.
  sim::SimTime op_deadline = sim::Ms(10);
};

/// Outcome of one schedule run against the reference model.
struct CheckResult {
  bool ok = false;
  std::vector<Divergence> divergences;
  /// First divergence as "rule: detail" ("" when ok).
  std::string first_divergence;

  size_t ops_executed = 0;
  size_t ops_skipped = 0;  ///< host ops dropped because the device crashed
  bool crashed = false;
  bool graceful_crash = false;
  bool recovered = false;
  bool failed_over = false;  ///< a kFailover op promoted a new primary
  uint64_t promotions = 0;   ///< supervisor promotions (must be <= 1)
  uint64_t appended = 0;
  uint64_t recovered_bytes = 0;
  fault::FaultInjector::Totals fault_totals;
};

/// \brief Execute `schedule` on a freshly wired DES stack (primary +
/// schedule.secondaries replicas) and cross-check every observable step
/// against a ReferenceModel. Fully deterministic: the same (schedule,
/// options) pair yields the same CheckResult on every run and platform.
///
/// Flow: wire nodes -> replication setup -> attach model observers -> arm
/// the compiled fault plan -> execute host ops in order (each bounded by
/// op_deadline) -> if a crash clause fired, settle, reboot, RecoverLog,
/// validate the recovered prefix, and (standalone only) reconnect and
/// re-append; otherwise run the quiescence epilogue (final fsync, destage
/// settle, tail-read the remainder, secondary byte-exactness).
///
/// Schedules containing a kFailover op run the replicas under the HA
/// supervisor (src/ha) instead of a static ReplicationGroup: the op kills
/// the primary, awaits exactly-once promotion, re-homes the model's
/// observation taps onto the promoted device (ReferenceModel::OnFailover
/// enforces the fencing rule: acknowledged bytes survive promotion under
/// eager/chain), and the remaining host ops continue against the new
/// primary.
CheckResult RunSchedule(const Schedule& schedule,
                        const CheckOptions& options = {});

}  // namespace xssd::check

#endif  // XSSD_CHECK_CONFORMANCE_H_
