#ifndef XSSD_CHECK_REFERENCE_MODEL_H_
#define XSSD_CHECK_REFERENCE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/page_format.h"
#include "core/registers.h"
#include "sim/interval_set.h"

namespace xssd::check {

/// One rule violation observed by the reference model.
struct Divergence {
  std::string rule;    ///< stable rule id, e.g. "credit.monotonic"
  std::string detail;  ///< human-readable counterexample description

  std::string ToString() const { return rule + ": " + detail; }
};

/// \brief Executable specification of the X-SSD observable contract
/// (paper §4.1–§4.3), with no simulation, queues, or timing.
///
/// The model is fed two kinds of facts:
///  - *host facts* (OnAppend): what the workload submitted, which defines
///    the reference byte stream;
///  - *device observations* (everything else): each protocol step the real
///    stack performs, tapped via the observation hooks in src/core.
///
/// Every observation is checked against the rules below; a violation is
/// recorded as a Divergence (the model never throws and keeps accepting
/// observations, so a harness can report the first divergence and stop).
///
/// Rules enforced:
///  - credit: monotonic within an epoch, never beyond the contiguous
///    prefix of arrived bytes, never beyond the appended total
///    (append → credit-advance ordering, Figure 5);
///  - arrivals: byte-exact against the reference stream, within bounds;
///  - destage: pages issue strictly in stream order with consecutive
///    sequence numbers, chaining stream offsets, the ring-position law
///    lba = start + seq % count, only over credited bytes (§4.3);
///  - destaged counter: advances exactly over the contiguous prefix of
///    durable page extents, never past the credit;
///  - shadow counters: per-secondary monotonic, never beyond the appended
///    total (§4.2);
///  - fsync: a successful sync implies the observed credit covered every
///    byte written before the sync; a failed sync is only legal against a
///    halted device;
///  - tail reads: byte-exact, sequential;
///  - recovery: returns a contiguous run that covers the durable lower
///    bound (credit at a graceful halt, settled destage progress at a hard
///    one), byte-exact against the reference stream, never containing
///    bytes that were never appended, stamped with the pre-crash epoch.
class ReferenceModel {
 public:
  ReferenceModel(uint64_t ring_start_lba, uint64_t ring_lba_count)
      : ring_start_lba_(ring_start_lba), ring_lba_count_(ring_lba_count) {}

  // -- Host facts -----------------------------------------------------------

  /// The workload appended `len` bytes; they extend the reference stream.
  void OnAppend(const uint8_t* data, size_t len);

  uint64_t appended() const { return stream_.size(); }
  const std::vector<uint8_t>& stream() const { return stream_; }

  // -- Device observations --------------------------------------------------

  /// A chunk landed on the CMB window (CmbModule arrival observer).
  void OnArrival(uint64_t stream_offset, const uint8_t* data, size_t len);

  /// The local credit counter advanced (CmbModule credit observer).
  void OnCredit(uint64_t credit);

  /// A destage page was built and issued (DestageModule emit observer).
  void OnEmit(const core::DestagePageHeader& header, uint64_t lba);

  /// A destage page became durable in flash (durable observer).
  void OnPageDurable(uint64_t begin, uint64_t end);

  /// The in-order destaged counter advanced (destaged observer).
  void OnDestaged(uint64_t destaged);

  /// Secondary `index`'s shadow counter advanced to `value`.
  void OnShadow(uint32_t index, uint64_t value);

  // -- Host-visible postconditions ------------------------------------------

  /// An x_fsync completed. `written` is the client's append position when
  /// the sync was issued, `credit_observed` the protocol credit the client
  /// saw at completion, `halted` whether the device was halted.
  void OnSyncComplete(uint64_t written, uint64_t credit_observed, bool ok,
                      bool halted);

  /// An x_pread-style tail read returned `data` (reads are sequential).
  void OnTailRead(const std::vector<uint8_t>& data);

  /// The device halted. For a graceful halt (supercap flush) every
  /// acknowledged byte must survive; for a hard crash only the settled
  /// destage progress is promised.
  void OnCrash(bool graceful, uint64_t credit_at_halt,
               uint64_t destaged_settled);

  /// Post-crash recovery returned [start_offset, start_offset + data size)
  /// from epoch `epoch` (checked only when data is non-empty).
  void OnRecovery(uint64_t start_offset, const std::vector<uint8_t>& data,
                  uint32_t epoch);

  /// The primary died and the supervisor promoted a secondary whose log
  /// tail is `new_credit`; the model's observation taps moved to the new
  /// device, so its destage position (`next_sequence`, `destage_cursor`,
  /// `destaged`) is adopted wholesale. Rules:
  ///  - fencing/durability: when `acked_must_survive` (eager/chain — lazy
  ///    promises nothing), every byte acknowledged by a successful fsync
  ///    must be inside the promoted tail — exactly-once survival of acked
  ///    bytes across promotion ("failover.acked_loss");
  ///  - the promoted tail can never exceed the appended total
  ///    ("failover.bounds").
  /// The un-acked suffix beyond `new_credit` is legally discarded: the
  /// reference stream truncates to the promoted tail and rebuilds through
  /// OnAppend as the workload resumes against the new primary.
  void OnFailover(bool acked_must_survive, uint64_t new_credit,
                  uint64_t next_sequence, uint64_t destage_cursor,
                  uint64_t destaged);

  /// The device rebooted into a fresh epoch: the stream restarts at 0.
  void OnReboot();

  /// Harness-level rule violation (e.g. convergence timeout) recorded
  /// alongside the model's own.
  void ReportFailure(const std::string& rule, const std::string& detail);

  // -- Results --------------------------------------------------------------

  bool ok() const { return divergences_.empty(); }
  const std::vector<Divergence>& divergences() const { return divergences_; }
  /// First divergence as "rule: detail", or "" when clean.
  std::string Describe() const;

  uint64_t credit() const { return credit_; }
  uint64_t destaged() const { return destaged_; }
  /// Highest write position covered by a successful fsync (what failover
  /// must preserve).
  uint64_t acked() const { return acked_; }
  uint32_t epoch() const { return epoch_; }
  bool crashed() const { return crashed_; }
  uint64_t durable_lower_bound() const { return durable_lower_bound_; }

 private:
  void Fail(const char* rule, std::string detail);

  uint64_t ring_start_lba_;
  uint64_t ring_lba_count_;

  std::vector<uint8_t> stream_;  ///< reference bytes of the current epoch
  sim::IntervalSet arrived_;
  uint64_t credit_ = 0;
  uint64_t next_sequence_ = 0;
  uint64_t destage_cursor_ = 0;
  uint64_t destaged_ = 0;
  sim::IntervalSet durable_;
  uint64_t shadows_[core::kMaxPeers] = {0};
  uint64_t tail_read_ = 0;
  uint64_t acked_ = 0;
  uint32_t epoch_ = 0;
  bool crashed_ = false;
  bool crash_graceful_ = false;
  uint64_t durable_lower_bound_ = 0;

  std::vector<Divergence> divergences_;
};

}  // namespace xssd::check

#endif  // XSSD_CHECK_REFERENCE_MODEL_H_
