#ifndef XSSD_CHECK_SHRINK_H_
#define XSSD_CHECK_SHRINK_H_

#include <cstddef>

#include "check/conformance.h"
#include "check/schedule.h"

namespace xssd::check {

/// Outcome of minimizing a failing schedule.
struct ShrinkResult {
  Schedule schedule;        ///< smallest still-failing schedule found
  std::string divergence;   ///< its first divergence
  size_t runs = 0;          ///< RunSchedule invocations spent
  bool still_failing = false;  ///< sanity: the result reproduces a failure
};

/// \brief ddmin-style minimizer for failing conformance schedules.
///
/// Repeatedly re-runs candidate schedules with ops removed — chunks of
/// halving size down to single ops — keeping any candidate that still
/// diverges (any rule counts: a shrink that shifts the failure from
/// `recovery.bytes` to `read.bytes` is still the same counterexample,
/// smaller). After op removal converges it shrinks parameters: append and
/// read lengths are halved toward 1 while the failure persists, crash
/// clauses drop to after_hits=1, and the topology collapses toward
/// standalone. Every candidate run is a full deterministic RunSchedule, so
/// shrinking is reproducible. `max_runs` bounds the total work.
ShrinkResult ShrinkSchedule(const Schedule& failing,
                            const CheckOptions& options,
                            size_t max_runs = 300);

}  // namespace xssd::check

#endif  // XSSD_CHECK_SHRINK_H_
