#ifndef XSSD_SIM_STATS_H_
#define XSSD_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/time.h"

namespace xssd::sim {

/// \brief Sample recorder for latency-style measurements.
///
/// Stores raw samples (nanoseconds or any unit) and answers min/max/mean and
/// arbitrary percentiles. Used by every benchmark harness; the candlestick
/// summaries of Figure 13 come straight out of Percentile().
class LatencyRecorder {
 public:
  void Add(double sample) {
    samples_.push_back(sample);
    ++version_;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min() const {
    return empty() ? 0 : *std::min_element(samples_.begin(), samples_.end());
  }
  double Max() const {
    return empty() ? 0 : *std::max_element(samples_.begin(), samples_.end());
  }

  double Mean() const {
    if (empty()) return 0;
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  /// Nearest-rank percentile, p in [0, 100].
  double Percentile(double p) const {
    if (empty()) return 0;
    EnsureSorted();
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  /// Candlestick summary (min, p25, p50, p75, max) — Figure 13 rendering.
  struct Candle {
    double min, p25, p50, p75, max;
  };
  Candle Candlestick() const {
    return Candle{Min(), Percentile(25), Percentile(50), Percentile(75),
                  Max()};
  }

  void Clear() {
    samples_.clear();
    ++version_;
  }

 private:
  /// The sort cache is keyed by a mutation version rather than a boolean:
  /// every mutation unconditionally bumps `version_`, so an interleaving of
  /// Add()/Clear() with Percentile() can never leave the cache marked clean
  /// while the samples have changed (the failure mode of the old
  /// set-and-forget `sorted_` flag).
  void EnsureSorted() const {
    if (sorted_version_ != version_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_version_ = version_;
    }
  }

  mutable std::vector<double> samples_;
  uint64_t version_ = 0;
  mutable uint64_t sorted_version_ = 0;
};

/// \brief Event counter with rate helper.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

  /// Events (or bytes) per second over a virtual-time interval.
  double RatePerSec(SimTime interval) const {
    if (interval == 0) return 0;
    return static_cast<double>(value_) / ToSec(interval);
  }

 private:
  uint64_t value_ = 0;
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_STATS_H_
