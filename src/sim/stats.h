#ifndef XSSD_SIM_STATS_H_
#define XSSD_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/histogram.h"
#include "sim/time.h"

namespace xssd::sim {

/// \brief Sample recorder for latency-style measurements.
///
/// Stores raw samples (nanoseconds or any unit) and answers min/max/mean and
/// arbitrary percentiles. Used by every benchmark harness; the candlestick
/// summaries of Figure 13 come straight out of Percentile().
///
/// By default every sample is retained and percentiles are exact. For
/// multi-million-sample campaigns, EnableBounded(cap) switches the recorder
/// to a fixed-memory mode: once `cap` samples have been seen, the raw
/// vector is spilled into a `Log2Histogram` and later samples go straight
/// to the histogram. Min/max/count/mean stay exact in both modes;
/// percentiles in bounded mode inherit the histogram's error bound (at most
/// ~3.2% relative, see Log2Histogram), clamped to the exact [min, max].
class LatencyRecorder {
 public:
  void Add(double sample) {
    if (count_ == 0) {
      min_ = max_ = sample;
    } else {
      min_ = std::min(min_, sample);
      max_ = std::max(max_, sample);
    }
    sum_ += sample;
    ++count_;
    ++version_;
    if (windowed_) {
      if (win_count_ == 0) {
        win_min_ = win_max_ = sample;
      } else {
        win_min_ = std::min(win_min_, sample);
        win_max_ = std::max(win_max_, sample);
      }
      win_sum_ += sample;
      ++win_count_;
      win_hist_.Add(sample);
    }
    if (overflowed_) {
      hist_.Add(sample);
      return;
    }
    samples_.push_back(sample);
    if (bounded_ && samples_.size() >= sample_cap_) SpillToHistogram();
  }

  /// Switch to bounded-memory mode: at most `sample_cap` raw samples are
  /// held; beyond that the recorder degrades to log2-bucket percentiles.
  /// Opt-in only — never enabled implicitly, so existing exact consumers
  /// are unaffected.
  void EnableBounded(size_t sample_cap) {
    bounded_ = true;
    sample_cap_ = std::max<size_t>(1, sample_cap);
    if (samples_.size() >= sample_cap_) SpillToHistogram();
  }

  /// \brief One sampling window's view: everything Add()ed since the last
  /// TakeWindow() call. Percentiles carry the log2-bucket error bound
  /// (~3.2% relative), clamped to the window's exact [min, max].
  struct WindowStats {
    uint64_t count = 0;
    double min = 0;
    double max = 0;
    double mean = 0;
    double p50 = 0;
    double p99 = 0;
    double p999 = 0;
  };

  /// Opt into per-window accumulation (the time-series sampler's view).
  /// Orthogonal to bounded mode; costs one branch per Add() plus a
  /// histogram insert while enabled. Never enabled implicitly.
  void EnableWindowTracking() { windowed_ = true; }
  bool window_tracking() const { return windowed_; }

  /// Snapshot-and-clear the current window. Requires EnableWindowTracking()
  /// first; an empty window returns all zeros.
  WindowStats TakeWindow() {
    WindowStats w;
    w.count = win_count_;
    if (win_count_ > 0) {
      w.min = win_min_;
      w.max = win_max_;
      w.mean = win_sum_ / static_cast<double>(win_count_);
      w.p50 = std::clamp(win_hist_.Percentile(50), win_min_, win_max_);
      w.p99 = std::clamp(win_hist_.Percentile(99), win_min_, win_max_);
      w.p999 = std::clamp(win_hist_.Percentile(99.9), win_min_, win_max_);
    }
    ClearWindow();
    return w;
  }

  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// True once the raw samples have been spilled to histogram buckets.
  bool bounded_overflow() const { return overflowed_; }

  double Min() const { return empty() ? 0 : min_; }
  double Max() const { return empty() ? 0 : max_; }

  double Mean() const {
    if (empty()) return 0;
    return sum_ / static_cast<double>(count_);
  }

  /// Percentile, p in [0, 100]. Exact (interpolated nearest-rank) while the
  /// raw samples are held; bucket-interpolated after a bounded-mode spill.
  double Percentile(double p) const {
    if (empty()) return 0;
    if (overflowed_) {
      return std::clamp(hist_.Percentile(p), min_, max_);
    }
    EnsureSorted();
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  /// Candlestick summary (min, p25, p50, p75, max) — Figure 13 rendering.
  struct Candle {
    double min, p25, p50, p75, max;
  };
  Candle Candlestick() const {
    return Candle{Min(), Percentile(25), Percentile(50), Percentile(75),
                  Max()};
  }

  void Clear() {
    samples_.clear();
    hist_.Clear();
    overflowed_ = false;
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
    ClearWindow();  // window tracking stays enabled across Clear()
    ++version_;
  }

 private:
  /// The sort cache is keyed by a mutation version rather than a boolean:
  /// every mutation unconditionally bumps `version_`, so an interleaving of
  /// Add()/Clear() with Percentile() can never leave the cache marked clean
  /// while the samples have changed (the failure mode of the old
  /// set-and-forget `sorted_` flag).
  void EnsureSorted() const {
    if (sorted_version_ != version_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_version_ = version_;
    }
  }

  void SpillToHistogram() {
    for (double s : samples_) hist_.Add(s);
    samples_.clear();
    samples_.shrink_to_fit();
    overflowed_ = true;
    ++version_;
  }

  void ClearWindow() {
    win_hist_.Clear();
    win_count_ = 0;
    win_sum_ = 0;
    win_min_ = 0;
    win_max_ = 0;
  }

  mutable std::vector<double> samples_;
  uint64_t version_ = 0;
  mutable uint64_t sorted_version_ = 0;

  bool windowed_ = false;
  Log2Histogram win_hist_;
  uint64_t win_count_ = 0;
  double win_sum_ = 0;
  double win_min_ = 0;
  double win_max_ = 0;

  bool bounded_ = false;
  bool overflowed_ = false;
  size_t sample_cap_ = 0;
  Log2Histogram hist_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// \brief Event counter with rate helper.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

  /// Events (or bytes) per second over a virtual-time interval.
  double RatePerSec(SimTime interval) const {
    if (interval == 0) return 0;
    return static_cast<double>(value_) / ToSec(interval);
  }

 private:
  uint64_t value_ = 0;
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_STATS_H_
