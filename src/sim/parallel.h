#ifndef XSSD_SIM_PARALLEL_H_
#define XSSD_SIM_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_pool.h"
#include "sim/time.h"

namespace xssd::sim {

/// \brief Bounded single-producer/single-consumer mailbox for cross-domain
/// events in the parallel scheduler backend.
///
/// One mailbox exists per ordered (source domain, target domain) pair. The
/// source worker pushes during a lookahead window; the coordinator drains at
/// the window barrier and merges the items into the target domain's inbox.
/// The ring indices use acquire/release atomics so a push is visible to the
/// drain without relying on the barrier alone; the overflow spill (hit only
/// when a single window emits more than kCapacity cross events) is plain
/// storage, safe because production and consumption phases never overlap —
/// the window barrier orders them.
///
/// Items are stamped by the *sender* — (when, key) where the key encodes
/// (cross bit, source domain, source issue index) — so the target's merge
/// order is independent of arrival timing. That stamp is what keeps the
/// parallel backend's per-domain event order byte-identical to the serial
/// wheel's.
class SpscMailbox {
 public:
  struct Item {
    SimTime when = 0;
    uint64_t key = 0;
    EventFn fn;
  };

  static constexpr std::size_t kCapacity = 1024;

  SpscMailbox() : ring_(kCapacity) {}
  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  /// Producer side (owning source worker only).
  void Push(SimTime when, uint64_t key, EventFn fn) {
    std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail < kCapacity) {
      Item& slot = ring_[head % kCapacity];
      slot.when = when;
      slot.key = key;
      slot.fn = std::move(fn);
      head_.store(head + 1, std::memory_order_release);
    } else {
      // Ring full inside one window: spill. Ordered after every ring item
      // of this window on drain, which is fine — the key, not arrival
      // order, decides execution order.
      spill_.push_back(Item{when, key, std::move(fn)});
      ++spilled_;
    }
  }

  /// Consumer side (coordinator, strictly between windows). Calls
  /// `f(when, key, fn&&)` for every queued item in push order.
  template <typename F>
  void Drain(F&& f) {
    std::size_t head = head_.load(std::memory_order_acquire);
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    while (tail != head) {
      Item& slot = ring_[tail % kCapacity];
      f(slot.when, slot.key, std::move(slot.fn));
      slot.fn = EventFn();
      ++tail;
    }
    tail_.store(tail, std::memory_order_release);
    for (Item& item : spill_) {
      f(item.when, item.key, std::move(item.fn));
    }
    spill_.clear();
  }

  bool EmptyUnsynchronized() const {
    return head_.load(std::memory_order_relaxed) ==
               tail_.load(std::memory_order_relaxed) &&
           spill_.empty();
  }

  /// Items that overflowed the ring (producer-side counter; read between
  /// windows or after the run).
  uint64_t spilled() const { return spilled_; }

 private:
  std::vector<Item> ring_;
  std::vector<Item> spill_;
  uint64_t spilled_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_PARALLEL_H_
