#ifndef XSSD_SIM_TIME_H_
#define XSSD_SIM_TIME_H_

#include <cmath>
#include <cstdint>

namespace xssd::sim {

/// Virtual simulation time, in nanoseconds. All device/link/flash latencies
/// are charged in this unit. 64 bits of nanoseconds cover ~584 years of
/// simulated time, far beyond any experiment here.
using SimTime = uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr SimTime Ns(uint64_t n) { return n; }
constexpr SimTime Us(uint64_t n) { return n * kMicrosecond; }
constexpr SimTime Ms(uint64_t n) { return n * kMillisecond; }
constexpr SimTime Sec(uint64_t n) { return n * kSecond; }

/// Fractional-microsecond helper (e.g. UsF(0.4) for a 400 ns period).
inline SimTime UsF(double us) {
  return static_cast<SimTime>(std::llround(us * 1000.0));
}

inline double ToUs(SimTime t) { return static_cast<double>(t) / 1000.0; }
inline double ToMs(SimTime t) { return static_cast<double>(t) / 1e6; }
inline double ToSec(SimTime t) { return static_cast<double>(t) / 1e9; }

/// Time to move `bytes` at `bytes_per_sec`, rounded up to >= 1 ns for any
/// non-zero transfer so events always make progress.
inline SimTime TransferTime(uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0) return 0;
  double ns = static_cast<double>(bytes) * 1e9 / bytes_per_sec;
  auto t = static_cast<SimTime>(std::llround(ns));
  return t == 0 ? 1 : t;
}

}  // namespace xssd::sim

#endif  // XSSD_SIM_TIME_H_
