#ifndef XSSD_SIM_BANDWIDTH_SERVER_H_
#define XSSD_SIM_BANDWIDTH_SERVER_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::sim {

/// \brief FIFO bandwidth resource: a link, bus, or memory port that serves
/// one transfer at a time at a fixed byte rate plus per-request overhead.
///
/// Requests occupy the server back-to-back: a request submitted while the
/// server is busy starts when the previous one finishes. This models shared
/// media (PCIe link, DDR bus, flash channel) without per-byte events.
class BandwidthServer {
 public:
  /// \param sim            owning simulator (not owned; must outlive this)
  /// \param bytes_per_sec  sustained data rate of the medium
  /// \param per_request_overhead  fixed time charged per request (e.g. TLP
  ///        header serialization, DDR row activation); may be 0.
  BandwidthServer(Simulator* sim, double bytes_per_sec,
                  SimTime per_request_overhead = 0)
      : sim_(sim),
        bytes_per_sec_(bytes_per_sec),
        per_request_overhead_(per_request_overhead) {}

  BandwidthServer(const BandwidthServer&) = delete;
  BandwidthServer& operator=(const BandwidthServer&) = delete;

  /// Reserve the medium for `bytes` and return the absolute completion time.
  /// Also schedules `done` at that time if non-null.
  SimTime Acquire(uint64_t bytes, Simulator::Callback done = nullptr) {
    SimTime start = std::max(sim_->Now(), busy_until_);
    SimTime duration =
        per_request_overhead_ + TransferTime(bytes, bytes_per_sec_);
    busy_until_ = start + duration;
    total_bytes_ += bytes;
    total_requests_ += 1;
    busy_time_ += duration;
    if (done) sim_->ScheduleAt(busy_until_, std::move(done));
    return busy_until_;
  }

  /// Completion time if `bytes` were submitted now, without reserving.
  SimTime Probe(uint64_t bytes) const {
    SimTime start = std::max(sim_->Now(), busy_until_);
    return start + per_request_overhead_ + TransferTime(bytes, bytes_per_sec_);
  }

  bool IdleNow() const { return busy_until_ <= sim_->Now(); }
  SimTime busy_until() const { return busy_until_; }
  double bytes_per_sec() const { return bytes_per_sec_; }

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_requests() const { return total_requests_; }
  /// Cumulative occupied time; utilization = busy_time / elapsed.
  SimTime busy_time() const { return busy_time_; }

  void ResetStats() {
    total_bytes_ = 0;
    total_requests_ = 0;
    busy_time_ = 0;
  }

 private:
  Simulator* sim_;
  double bytes_per_sec_;
  SimTime per_request_overhead_;
  SimTime busy_until_ = 0;

  uint64_t total_bytes_ = 0;
  uint64_t total_requests_ = 0;
  SimTime busy_time_ = 0;
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_BANDWIDTH_SERVER_H_
