#ifndef XSSD_SIM_HISTOGRAM_H_
#define XSSD_SIM_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace xssd::sim {

/// \brief Fixed-memory log2-bucket histogram with linear sub-buckets.
///
/// Values are bucketed at integer granularity: v < 32 is recorded exactly
/// (unit-width buckets), and each octave [2^o, 2^(o+1)) above that is split
/// into 16 linear sub-buckets. A reconstructed percentile therefore lies
/// within half a sub-bucket of the true sample, a relative error of at most
/// 1/(2*16) ~= 3.2% (and 0 below 32). Memory is a constant ~8 KiB
/// regardless of sample count — the backing `sim::LatencyRecorder` switches
/// to this representation in bounded mode so multi-million-sample campaigns
/// stop holding every sample.
class Log2Histogram {
 public:
  /// Unit-width buckets cover [0, kLinearMax); 16 sub-buckets per octave
  /// beyond. Index space for 64-bit values: 32 + 59 * 16.
  static constexpr uint32_t kLinearMax = 32;
  static constexpr uint32_t kSubBuckets = 16;
  static constexpr uint32_t kBucketCount = kLinearMax + 59 * kSubBuckets;

  void Add(double value) {
    uint64_t v = value <= 0 ? 0 : static_cast<uint64_t>(value);
    ++buckets_[IndexFor(v)];
    ++count_;
  }

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Interpolated percentile, p in [0, 100]. Within a bucket the rank is
  /// interpolated linearly between the bucket bounds.
  double Percentile(double p) const {
    if (count_ == 0) return 0;
    double rank = p / 100.0 * static_cast<double>(count_ - 1);
    uint64_t below = 0;
    for (uint32_t i = 0; i < kBucketCount; ++i) {
      if (buckets_[i] == 0) continue;
      double in_bucket = static_cast<double>(buckets_[i]);
      if (rank < static_cast<double>(below) + in_bucket) {
        double frac = (rank - static_cast<double>(below)) / in_bucket;
        double lo = static_cast<double>(LowerBound(i));
        double hi = static_cast<double>(UpperBound(i));
        return lo + frac * (hi - lo);
      }
      below += buckets_[i];
    }
    return static_cast<double>(UpperBound(kBucketCount - 1));
  }

  /// One populated bucket: samples counted in [lo, hi).
  struct Bucket {
    uint64_t lo;
    uint64_t hi;
    uint64_t count;
  };
  std::vector<Bucket> NonEmptyBuckets() const {
    std::vector<Bucket> out;
    for (uint32_t i = 0; i < kBucketCount; ++i) {
      if (buckets_[i] != 0) {
        out.push_back(Bucket{LowerBound(i), UpperBound(i), buckets_[i]});
      }
    }
    return out;
  }

  void Clear() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
  }

  static uint32_t IndexFor(uint64_t v) {
    if (v < kLinearMax) return static_cast<uint32_t>(v);
    uint32_t octave = 63 - static_cast<uint32_t>(__builtin_clzll(v));
    uint32_t sub =
        static_cast<uint32_t>((v >> (octave - 4)) & (kSubBuckets - 1));
    return kLinearMax + (octave - 5) * kSubBuckets + sub;
  }

  static uint64_t LowerBound(uint32_t index) {
    if (index < kLinearMax) return index;
    uint32_t octave = 5 + (index - kLinearMax) / kSubBuckets;
    uint32_t sub = (index - kLinearMax) % kSubBuckets;
    return (1ull << octave) + (static_cast<uint64_t>(sub) << (octave - 4));
  }

  static uint64_t UpperBound(uint32_t index) {
    if (index < kLinearMax) return index + 1;
    uint32_t octave = 5 + (index - kLinearMax) / kSubBuckets;
    return LowerBound(index) + (1ull << (octave - 4));
  }

 private:
  std::vector<uint64_t> buckets_ = std::vector<uint64_t>(kBucketCount, 0);
  uint64_t count_ = 0;
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_HISTOGRAM_H_
