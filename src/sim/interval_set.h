#ifndef XSSD_SIM_INTERVAL_SET_H_
#define XSSD_SIM_INTERVAL_SET_H_

#include <cstddef>
#include <cstdint>
#include <map>

namespace xssd::sim {

/// \brief Set of disjoint byte intervals [begin, end) over a 64-bit stream
/// offset space, with merge-on-insert.
///
/// The CMB module uses this to tolerate *mostly sequential* arrival (paper
/// §4.1): out-of-order TLPs land as disjoint intervals, and the credit
/// counter may only advance over the contiguous prefix. A "gap" is any
/// missing range below the highest received offset.
class IntervalSet {
 public:
  /// Insert [begin, end); coalesces with abutting/overlapping intervals.
  void Insert(uint64_t begin, uint64_t end) {
    if (begin >= end) return;
    // Find the first interval with key > begin, then step back to check the
    // predecessor for overlap/abutment.
    auto it = map_.upper_bound(begin);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= begin) {  // overlaps or abuts on the left
        begin = prev->first;
        end = std::max(end, prev->second);
        it = map_.erase(prev);
      }
    }
    while (it != map_.end() && it->first <= end) {  // swallow on the right
      end = std::max(end, it->second);
      it = map_.erase(it);
    }
    map_.emplace(begin, end);
  }

  /// Highest contiguous offset starting from `from`: every byte in
  /// [from, result) is present and byte `result` is missing.
  uint64_t ContiguousEnd(uint64_t from) const {
    auto it = map_.upper_bound(from);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->first <= from && prev->second > from) return prev->second;
    }
    if (it != map_.end() && it->first == from) return it->second;
    return from;
  }

  bool Contains(uint64_t offset) const {
    auto it = map_.upper_bound(offset);
    if (it == map_.begin()) return false;
    auto prev = std::prev(it);
    return prev->first <= offset && offset < prev->second;
  }

  /// True if any byte above `from` was received while some byte in
  /// [from, that byte) is missing — i.e. there is a hole.
  bool HasGapAfter(uint64_t from) const {
    uint64_t contiguous = ContiguousEnd(from);
    auto it = map_.upper_bound(contiguous);
    return it != map_.end();
  }

  size_t interval_count() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.clear(); }

  /// Drop all interval data at or above `above` (truncated suffix).
  void TrimAbove(uint64_t above) {
    auto it = map_.lower_bound(above);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > above) prev->second = above;
    }
    map_.erase(it, map_.end());
  }

  /// Drop all interval data below `below` (already consumed / destaged).
  void TrimBelow(uint64_t below) {
    auto it = map_.begin();
    while (it != map_.end() && it->second <= below) it = map_.erase(it);
    if (it != map_.end() && it->first < below) {
      uint64_t end = it->second;
      map_.erase(it);
      map_.emplace(below, end);
    }
  }

 private:
  std::map<uint64_t, uint64_t> map_;  // begin -> end
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_INTERVAL_SET_H_
