#ifndef XSSD_SIM_SIMULATOR_H_
#define XSSD_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace xssd::obs {
class TraceSink;
}  // namespace xssd::obs

namespace xssd::sim {

/// \brief Discrete-event simulation core: a virtual clock plus an ordered
/// event queue.
///
/// Every hardware component in the library (PCIe links, flash dies, PM
/// controllers, NTB hops) is modeled as callbacks scheduled on one Simulator.
/// Events at equal timestamps run in scheduling (FIFO) order, which makes
/// runs fully deterministic. The simulator is single-threaded by design;
/// "concurrency" (DB workers, channels, devices) is expressed as interleaved
/// events on the virtual clock.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedule `fn` to run `delay` nanoseconds from now.
  void Schedule(SimTime delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute virtual time (>= Now()).
  void ScheduleAt(SimTime when, Callback fn);

  /// Run until the event queue drains (or Stop() is called).
  void Run();

  /// Run events with timestamp <= `deadline`; afterwards Now() == deadline
  /// (unless stopped earlier). Returns the number of events executed.
  uint64_t RunUntil(SimTime deadline);

  /// Convenience: RunUntil(Now() + duration).
  uint64_t RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  /// Drain events until `done` returns true (checked after each event) or
  /// the queue empties. Returns true if the predicate was satisfied.
  bool RunWhile(const std::function<bool()>& done);

  /// Abort Run/RunUntil after the current event returns.
  void Stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

  /// Attach an observability sink (nullptr detaches). The simulator calls
  /// it on every schedule/fire with virtual timestamps; see obs/trace.h.
  /// Not owned; must outlive the simulator or be detached first.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs a single event. Precondition: queue not empty.
  void Step();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  bool stopped_ = false;
  obs::TraceSink* trace_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_SIMULATOR_H_
