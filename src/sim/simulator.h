#ifndef XSSD_SIM_SIMULATOR_H_
#define XSSD_SIM_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/event_pool.h"
#include "sim/parallel.h"
#include "sim/time.h"
#include "sim/timer_wheel.h"

namespace xssd::obs {
class TraceSink;
}  // namespace xssd::obs

namespace xssd::sim {

/// \brief Passive observer of virtual-time advancement (the time-series
/// sampler in obs/timeseries.h).
///
/// Attached via Simulator::set_time_observer() with a first due time. The
/// simulator calls OnTimeAdvance(when) immediately *before* executing any
/// event whose timestamp is >= the current due time; the observer snapshots
/// whatever it watches and returns the next due time. Because the observer
/// never appears in the event queue, never advances the clock, and must not
/// schedule events or consume randomness, an observed run executes the
/// exact same event sequence as an unobserved one — zero perturbation by
/// construction (the obs CI gate relies on this). An attached observer
/// forces the parallel backend into its serial merge, like a trace sink.
class TimeObserver {
 public:
  virtual ~TimeObserver() = default;

  /// The next event to execute carries timestamp `when` (>= the due time
  /// this observer last returned). Returns the new due time; return
  /// ~SimTime{0} to stop being called.
  virtual SimTime OnTimeAdvance(SimTime when) = 0;

  /// The simulator is being destroyed (benches keep per-run stack-local
  /// simulators); `last_now` is its final virtual time. The observer must
  /// not touch the simulator again.
  virtual void OnSimulatorTearDown(SimTime last_now) { (void)last_now; }
};

/// \brief Discrete-event simulation core: a virtual clock plus an ordered
/// event queue.
///
/// Every hardware component in the library (PCIe links, flash dies, PM
/// controllers, NTB hops) is modeled as callbacks scheduled on one Simulator.
/// Events at equal timestamps run in scheduling (FIFO) order, which makes
/// runs fully deterministic.
///
/// Three scheduler backends implement the same canonical event order:
///  - kWheel (default): hierarchical timer wheel + pooled event nodes;
///    O(1) schedule/fire, allocation-free in steady state.
///  - kHeap: the legacy binary heap of by-value events, kept selectable so
///    the backends can be diffed byte-for-byte on campaign metrics (CI
///    does) and as the conservative fallback.
///  - kParallel: the wheel backend plus conservative parallel execution of
///    Run()/RunUntil() when the model is partitioned into more than one
///    domain (one worker thread per simulated PCIe fabric; see below).
/// Select per-process with XSSD_SIM_SCHEDULER=heap|wheel|parallel, per-build
/// with -DXSSD_SIM_HEAP_SCHEDULER=ON, or per-instance via the constructor.
///
/// ## Domains and the parallel backend
///
/// A model may partition itself into up to kMaxDomains *domains* — disjoint
/// state islands (in X-SSD: one per PCIe fabric) that interact only through
/// explicitly declared cross-domain edges (the NTB link). Events scheduled
/// while an event runs stay in the executing domain; ScheduleAtIn/ScheduleIn
/// target another domain and are *cross events*, which must respect the
/// declared lookahead: a cross event may not land earlier than
/// `Now() + lookahead()`, where the lookahead is the minimum latency of any
/// cross-domain hop (DeclareLookahead(), min-accumulating — the NTB adapter
/// declares its hop latency at construction).
///
/// The canonical order is total and backend-independent: events execute in
/// ascending (when, domain id) order, and within one (when, domain) in
/// ascending key order, where local events carry per-domain sequence numbers
/// (assigned at schedule time, always below 1<<63) and cross events carry
/// sender-stamped keys (bit 63 set, then source domain, then the source's
/// issue counter) — so locals run before cross arrivals at equal timestamps,
/// and cross arrivals run in sender order, independent of thread timing.
///
/// Under kParallel with >1 domain, Run()/RunUntil() execute in lockstep
/// windows: each worker drains its domain's events with timestamps below
/// `T_min + lookahead` (T_min = earliest pending event across all domains);
/// cross events travel through bounded SPSC mailboxes and are merged into
/// the target domain's inbox at the window barrier. The lookahead contract
/// guarantees any cross event produced inside a window lands at or beyond
/// the window end, so no worker can receive work for a time it already
/// passed — the per-domain event sequence (and therefore every metric and
/// snapshot) is byte-identical to the serial backends. RunWhile(), attached
/// trace sinks, or a missing lookahead declaration fall back to an
/// equivalent serial merge of the per-domain queues. Stop() under parallel
/// execution takes effect at the current window boundary (the window always
/// completes, keeping the stop deterministic).
class Simulator {
  struct Domain;  // private; forward-declared for DomainScope below

 public:
  /// Move-only callable with a 48-byte inline capture buffer; converts
  /// implicitly from lambdas, function pointers and std::function.
  using Callback = EventFn;

  enum class SchedulerBackend { kWheel, kHeap, kParallel };

  /// Maximum number of domains (fabric partitions) per simulator.
  static constexpr uint32_t kMaxDomains = 16;
  /// Cross-event keys set bit 63 so they order after every local event of
  /// the same (when, domain); bits [48,63) carry the source domain.
  static constexpr uint64_t kCrossKeyBit = uint64_t{1} << 63;
  static constexpr int kCrossDomainShift = 48;
  /// lookahead() value before any DeclareLookahead() call.
  static constexpr SimTime kNoLookahead = ~SimTime{0};

  Simulator() : Simulator(DefaultBackend()) {}
  explicit Simulator(SchedulerBackend backend) : backend_(backend) {
    domains_.push_back(std::make_unique<Domain>(0));
    d0_ = domains_[0].get();
    idle_domain_ = d0_;
  }
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Backend chosen by the XSSD_SIM_SCHEDULER environment variable
  /// ("wheel", "heap" or "parallel"), falling back to the build default.
  static SchedulerBackend DefaultBackend();

  /// While alive, idle-context scheduling (calls made outside any event —
  /// setup code, blocking admin pumps) targets `domain` instead of domain 0,
  /// so a node's initialization timers land in its own partition. Nests;
  /// does not affect scheduling from inside events (those stay in the
  /// executing domain).
  class DomainScope {
   public:
    DomainScope(Simulator* sim, uint32_t domain);
    ~DomainScope();
    DomainScope(const DomainScope&) = delete;
    DomainScope& operator=(const DomainScope&) = delete;

   private:
    Simulator* sim_;
    Domain* saved_;
  };

  SchedulerBackend backend() const { return backend_; }

  /// Current virtual time — of the executing domain while an event runs,
  /// of the completed run otherwise.
  SimTime Now() const {
    if (parallel_active_) return tls_domain_->now;
    return executing_ != nullptr ? executing_->now : now_;
  }

  // ── Domain partitioning ───────────────────────────────────────────────

  /// Partition the simulator into `count` domains (1..kMaxDomains). Must be
  /// called on a fresh simulator, before anything is scheduled. A
  /// single-domain simulator (the default) behaves exactly as the classic
  /// serial core.
  void ConfigureDomains(uint32_t count);

  uint32_t domain_count() const {
    return static_cast<uint32_t>(domains_.size());
  }

  /// Domain of the currently executing event (outside execution: the active
  /// DomainScope's domain, or 0).
  uint32_t current_domain() const {
    if (parallel_active_) return tls_domain_->id;
    if (executing_ != nullptr) return executing_->id;
    return idle_domain_->id;
  }

  /// True while an event callback is running (any thread).
  bool in_event() const {
    return parallel_active_ ? tls_domain_ != nullptr : executing_ != nullptr;
  }

  /// Force serial execution even on the parallel backend. Models that
  /// attach observers shared across domains (a SpanRecorder, a debugger
  /// hook) set this: results are identical, just single-threaded.
  void set_force_serial(bool force) { force_serial_ = force; }

  /// Declare that cross-domain events are always scheduled at least `t` ns
  /// into the future (min-accumulates: the effective lookahead is the
  /// smallest declared bound). Cross-domain modules (the NTB adapter)
  /// declare their hop latency here; without a declaration cross-domain
  /// scheduling aborts and the parallel backend falls back to serial merge.
  void DeclareLookahead(SimTime t);

  SimTime lookahead() const { return lookahead_; }

  // ── Scheduling ────────────────────────────────────────────────────────

  /// Schedule `fn` to run `delay` nanoseconds from now, in the executing
  /// domain (domain 0 outside execution).
  void Schedule(SimTime delay, Callback fn) {
    ScheduleAt(Now() + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute virtual time in the executing domain.
  /// A `when` in the past is clamped to Now() — the event fires next, after
  /// already-queued events at the current timestamp — and counted in
  /// past_schedule_clamps() so fault-plan and workload authors can see the
  /// latent ordering bug. In debug builds the clamp aborts unless
  /// set_allow_past_schedules(true).
  void ScheduleAt(SimTime when, Callback fn);

  /// Schedule into an explicit domain. From inside an event of another
  /// domain this is a *cross-domain* event: `when` must be at least
  /// Now() + lookahead() (checked), and the event is stamped with the
  /// sender's issue counter so merged order is deterministic. Outside
  /// execution it simply seeds the target domain (workload setup).
  void ScheduleAtIn(uint32_t domain, SimTime when, Callback fn);

  /// Convenience: ScheduleAtIn(domain, Now() + delay, fn).
  void ScheduleIn(uint32_t domain, SimTime delay, Callback fn) {
    ScheduleAtIn(domain, Now() + delay, std::move(fn));
  }

  // ── Running ───────────────────────────────────────────────────────────

  /// Run until the event queue drains (or Stop() is called).
  void Run();

  /// Run events with timestamp <= `deadline`; afterwards Now() == deadline
  /// (unless stopped earlier). Returns the number of events executed.
  uint64_t RunUntil(SimTime deadline);

  /// Convenience: RunUntil(Now() + duration).
  uint64_t RunFor(SimTime duration) { return RunUntil(Now() + duration); }

  /// Drain events until `done` returns true (checked after each event) or
  /// the queue empties. Returns true if the predicate was satisfied.
  /// Always serial (the predicate is inherently sequential).
  bool RunWhile(const std::function<bool()>& done);

  /// Abort Run/RunUntil after the current event returns (serial), or at
  /// the current lockstep window boundary (parallel).
  void Stop() { stopped_.store(true, std::memory_order_relaxed); }

  // ── Introspection ─────────────────────────────────────────────────────

  bool empty() const { return pending_events() == 0; }

  /// Total pending events across domains. Not callable while a parallel
  /// run is in flight (worker queues are in motion); per-domain benches
  /// keep their own counters instead.
  size_t pending_events() const {
    size_t total = 0;
    for (const auto& d : domains_) {
      total += (backend_ == SchedulerBackend::kHeap ? d->heap.size()
                                                    : d->wheel.size()) +
               d->inbox.size();
    }
    return total;
  }

  size_t domain_pending_events(uint32_t domain) const {
    const Domain& d = *domains_[domain];
    return (backend_ == SchedulerBackend::kHeap ? d.heap.size()
                                                : d.wheel.size()) +
           d.inbox.size();
  }

  uint64_t executed_events() const {
    uint64_t total = 0;
    for (const auto& d : domains_) total += d->executed;
    return total;
  }

  /// Number of ScheduleAt() calls whose `when` was in the past and got
  /// clamped to Now(). Campaign benches export this as a gauge.
  uint64_t past_schedule_clamps() const {
    uint64_t total = 0;
    for (const auto& d : domains_) total += d->past_clamps;
    return total;
  }

  /// Cross-domain events issued (all source domains).
  uint64_t cross_scheduled_events() const {
    uint64_t total = 0;
    for (const auto& d : domains_) total += d->cross_issued;
    return total;
  }

  /// Lockstep windows executed by the parallel backend.
  uint64_t parallel_windows() const { return parallel_windows_; }

  /// Cross events that overflowed a mailbox ring into its spill vector.
  uint64_t mailbox_spills() const {
    uint64_t total = 0;
    for (const auto& m : mailboxes_) total += m->spilled();
    return total;
  }

  /// Permit past-timestamp scheduling (still clamped and counted) without
  /// the debug-build abort. Intended for tests that exercise the clamp.
  void set_allow_past_schedules(bool allow) { allow_past_schedules_ = allow; }

  /// Event-pool allocation stats for one domain (wheel/parallel backends;
  /// the heap backend does not pool). kernel_bench reports these as the
  /// allocs/event trajectory.
  const EventPool& event_pool(uint32_t domain = 0) const {
    return domains_[domain]->pool;
  }
  const TimerWheel& timer_wheel(uint32_t domain = 0) const {
    return domains_[domain]->wheel;
  }

  /// Attach an observability sink (nullptr detaches). The simulator calls
  /// it on every schedule/fire with virtual timestamps; see obs/trace.h.
  /// Not owned; must outlive the simulator or be detached first. An
  /// attached sink forces serial execution on the parallel backend.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

  /// Attach a passive time observer (nullptr detaches): it is called back
  /// just before the first event at or beyond `first_due` executes, and
  /// thereafter per the due times it returns. Not owned; must outlive the
  /// simulator or detach first (the destructor calls OnSimulatorTearDown).
  /// Costs one predictable branch per event when detached; forces the
  /// parallel backend into its (identical) serial merge when attached.
  void set_time_observer(TimeObserver* obs, SimTime first_due) {
    time_obs_ = obs;
    obs_due_ = obs == nullptr ? ~SimTime{0} : first_due;
  }
  TimeObserver* time_observer() const { return time_obs_; }

 private:
  /// Legacy-layout heap event: by-value storage, no pooling. `key` is the
  /// canonical intra-domain order (local seq or cross stamp).
  struct HeapEvent {
    SimTime when;
    uint64_t key;
    EventFn fn;
  };
  struct Later {
    bool operator()(const HeapEvent& a, const HeapEvent& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.key > b.key;
    }
  };
  struct NodeLater {
    bool operator()(const EventPool::Node* a, const EventPool::Node* b) const {
      if (a->when != b->when) return a->when > b->when;
      return a->seq > b->seq;
    }
  };

  /// One fabric partition: private clock, queues and pool. Single-domain
  /// simulators run entirely on domain 0.
  struct Domain {
    explicit Domain(uint32_t id_in) : id(id_in) {}
    const uint32_t id;
    SimTime now = 0;
    uint64_t next_seq = 0;      // local event keys (bit 63 always clear)
    uint64_t cross_issued = 0;  // outgoing cross-event stamp counter
    uint64_t executed = 0;
    uint64_t past_clamps = 0;
    EventPool pool;
    TimerWheel wheel;
    std::priority_queue<HeapEvent, std::vector<HeapEvent>, Later> heap;
    /// Cross arrivals (wheel/parallel backends): kept out of the wheel
    /// because bucket FIFO order must equal key order for locals; merged
    /// key-ordered at execution. The heap backend instead pushes cross
    /// events straight into `heap` (its comparator orders fully).
    std::priority_queue<EventPool::Node*, std::vector<EventPool::Node*>,
                        NodeLater>
        inbox;
  };

  bool UsesWheel() const { return backend_ != SchedulerBackend::kHeap; }

  /// Domain whose event is executing on this thread (nullptr when idle).
  Domain* ExecutingDomain() const {
    if (parallel_active_) return tls_domain_;
    return executing_;
  }

  void ScheduleAtDomain(Domain* dst, SimTime when, Callback fn);

  /// Pops and runs the earliest event if its timestamp is <= `bound`.
  /// Returns false (running nothing) otherwise.
  bool StepBounded(SimTime bound) {
    return domains_.size() == 1 ? StepBoundedSingle(bound)
                                : StepBoundedMerge(bound);
  }
  bool StepBoundedSingle(SimTime bound);  // classic single-domain hot path
  bool StepBoundedMerge(SimTime bound);   // serial merge of domain queues

  /// Out-of-line slow path of the per-event observer check: `when` has
  /// reached the observer's due time.
  void NotifyTimeObserver(SimTime when) {
    // `when >= obs_due_` with no observer only happens for an event at
    // literally ~0 ns; keep that degenerate case from dereferencing null.
    if (time_obs_ == nullptr) return;
    obs_due_ = time_obs_->OnTimeAdvance(when);
  }

  /// Earliest pending timestamp of `d` that is <= `deadline`, or
  /// TimerWheel::kNoEvent. May advance d's wheel clock (never past the
  /// inbox head or `deadline`).
  SimTime DomainNextTime(Domain* d, SimTime deadline);

  // Parallel engine (simulator.cc).
  bool ShouldRunParallel();
  uint64_t RunParallel(SimTime deadline);
  void ExecuteWindow(Domain* d, SimTime window_end, SimTime deadline);
  void DrainMailboxes();
  void PlanNextWindow(SimTime deadline);

  SchedulerBackend backend_;
  SimTime now_ = 0;
  SimTime lookahead_ = kNoLookahead;
  std::atomic<bool> stopped_{false};
  bool allow_past_schedules_ = false;
  bool force_serial_ = false;
  bool serial_fallback_warned_ = false;
  obs::TraceSink* trace_ = nullptr;
  TimeObserver* time_obs_ = nullptr;
  /// Next virtual time at which time_obs_ wants a callback; ~0 when no
  /// observer is attached, so the hot-path `when >= obs_due_` check is a
  /// single always-false branch in the common case.
  SimTime obs_due_ = ~SimTime{0};

  std::vector<std::unique_ptr<Domain>> domains_;
  Domain* d0_ = nullptr;           // domains_[0], cached for the hot path
  Domain* executing_ = nullptr;    // serial paths only
  Domain* idle_domain_ = nullptr;  // DomainScope target; defaults to d0_

  // Parallel run state. `parallel_active_` is written only before worker
  // spawn / after join; `window_end_`/`par_done_` only by the coordinator
  // between barriers (the barriers order those writes against the workers).
  bool parallel_active_ = false;
  SimTime window_end_ = 0;
  bool par_done_ = false;
  uint64_t parallel_windows_ = 0;
  std::vector<std::unique_ptr<SpscMailbox>> mailboxes_;  // [src * n + dst]

  static thread_local Domain* tls_domain_;
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_SIMULATOR_H_
