#ifndef XSSD_SIM_SIMULATOR_H_
#define XSSD_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/event_pool.h"
#include "sim/time.h"
#include "sim/timer_wheel.h"

namespace xssd::obs {
class TraceSink;
}  // namespace xssd::obs

namespace xssd::sim {

/// \brief Discrete-event simulation core: a virtual clock plus an ordered
/// event queue.
///
/// Every hardware component in the library (PCIe links, flash dies, PM
/// controllers, NTB hops) is modeled as callbacks scheduled on one Simulator.
/// Events at equal timestamps run in scheduling (FIFO) order, which makes
/// runs fully deterministic. The simulator is single-threaded by design;
/// "concurrency" (DB workers, channels, devices) is expressed as interleaved
/// events on the virtual clock.
///
/// Two scheduler backends implement the same (when, seq) total order:
///  - kWheel (default): hierarchical timer wheel + pooled event nodes;
///    O(1) schedule/fire, allocation-free in steady state.
///  - kHeap: the legacy binary heap of by-value events, kept selectable so
///    the backends can be diffed byte-for-byte on campaign metrics (CI
///    does) and as the conservative fallback.
/// Select per-process with XSSD_SIM_SCHEDULER=heap|wheel, per-build with
/// -DXSSD_SIM_HEAP_SCHEDULER=ON, or per-instance via the constructor.
class Simulator {
 public:
  /// Move-only callable with a 48-byte inline capture buffer; converts
  /// implicitly from lambdas, function pointers and std::function.
  using Callback = EventFn;

  enum class SchedulerBackend { kWheel, kHeap };

  Simulator() : Simulator(DefaultBackend()) {}
  explicit Simulator(SchedulerBackend backend) : backend_(backend) {}
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Backend chosen by the XSSD_SIM_SCHEDULER environment variable
  /// ("wheel" or "heap"), falling back to the build default.
  static SchedulerBackend DefaultBackend();

  SchedulerBackend backend() const { return backend_; }

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedule `fn` to run `delay` nanoseconds from now.
  void Schedule(SimTime delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute virtual time. A `when` in the past is
  /// clamped to Now() — the event fires next, after already-queued events
  /// at the current timestamp — and counted in past_schedule_clamps() so
  /// fault-plan and workload authors can see the latent ordering bug. In
  /// debug builds the clamp aborts unless set_allow_past_schedules(true).
  void ScheduleAt(SimTime when, Callback fn);

  /// Run until the event queue drains (or Stop() is called).
  void Run();

  /// Run events with timestamp <= `deadline`; afterwards Now() == deadline
  /// (unless stopped earlier). Returns the number of events executed.
  uint64_t RunUntil(SimTime deadline);

  /// Convenience: RunUntil(Now() + duration).
  uint64_t RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  /// Drain events until `done` returns true (checked after each event) or
  /// the queue empties. Returns true if the predicate was satisfied.
  bool RunWhile(const std::function<bool()>& done);

  /// Abort Run/RunUntil after the current event returns.
  void Stop() { stopped_ = true; }

  bool empty() const { return pending_events() == 0; }
  size_t pending_events() const {
    return backend_ == SchedulerBackend::kWheel ? wheel_.size()
                                                : heap_.size();
  }
  uint64_t executed_events() const { return executed_; }

  /// Number of ScheduleAt() calls whose `when` was in the past and got
  /// clamped to Now(). Campaign benches export this as a gauge.
  uint64_t past_schedule_clamps() const { return past_clamps_; }

  /// Permit past-timestamp scheduling (still clamped and counted) without
  /// the debug-build abort. Intended for tests that exercise the clamp.
  void set_allow_past_schedules(bool allow) { allow_past_schedules_ = allow; }

  /// Event-pool allocation stats (wheel backend; the heap backend does not
  /// pool). kernel_bench reports these as the allocs/event trajectory.
  const EventPool& event_pool() const { return pool_; }
  const TimerWheel& timer_wheel() const { return wheel_; }

  /// Attach an observability sink (nullptr detaches). The simulator calls
  /// it on every schedule/fire with virtual timestamps; see obs/trace.h.
  /// Not owned; must outlive the simulator or be detached first.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

 private:
  /// Legacy-layout heap event: by-value storage, no pooling.
  struct HeapEvent {
    SimTime when;
    uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    EventFn fn;
  };
  struct Later {
    bool operator()(const HeapEvent& a, const HeapEvent& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the earliest event if its timestamp is <= `bound`.
  /// Returns false (running nothing) otherwise.
  bool StepBounded(SimTime bound);

  SchedulerBackend backend_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  uint64_t past_clamps_ = 0;
  bool stopped_ = false;
  bool allow_past_schedules_ = false;
  obs::TraceSink* trace_ = nullptr;

  EventPool pool_;
  TimerWheel wheel_;
  std::priority_queue<HeapEvent, std::vector<HeapEvent>, Later> heap_;
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_SIMULATOR_H_
