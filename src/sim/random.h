#ifndef XSSD_SIM_RANDOM_H_
#define XSSD_SIM_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace xssd::sim {

/// \brief Deterministic 64-bit PRNG (xoshiro256**), seeded explicitly.
///
/// All stochastic behaviour in the simulator (workload mixes, bit-error
/// injection, crash points, fuzzer schedules) draws from an Rng so
/// experiments are exactly reproducible from a seed.
///
/// The engine is PINNED: xoshiro256** with SplitMix64 seed expansion,
/// implemented here over plain uint64_t arithmetic. It deliberately uses
/// no <random> engines or distributions — the standard leaves those
/// implementation-defined, so std::mt19937 + std::uniform_int_distribution
/// yields different streams on libstdc++ vs libc++ vs MSVC. Every recorded
/// seed (fault campaigns, conformance traces, CI counterexamples) assumes
/// the exact streams this file produces; any change to the algorithm,
/// the seeding, or the derived helpers (Uniform's modulo, NextDouble's
/// 53-bit scaling) is a silent break of all of them. The golden-values
/// test (tests/sim/random_golden_test.cc) exists to make that break loud;
/// do not "fix" the constants there to match a modified engine.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log1p(-u);
  }

  /// NURand-style non-uniform integer per the TPC-C specification.
  uint64_t NuRand(uint64_t a, uint64_t x, uint64_t y, uint64_t c) {
    return (((UniformRange(0, a) | UniformRange(x, y)) + c) % (y - x + 1)) + x;
  }

 private:
  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_RANDOM_H_
