#ifndef XSSD_SIM_EVENT_POOL_H_
#define XSSD_SIM_EVENT_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace xssd::sim {

/// \brief Move-only callback slot with inline (small-buffer) storage.
///
/// The scheduler hot path runs millions of tiny closures — typically a
/// module pointer plus a couple of integers. std::function's inline buffer
/// (16 bytes on libstdc++) is too small for most of them, so the legacy
/// scheduler paid one heap allocation per Schedule(). EventFn widens the
/// inline buffer to kInlineBytes so those captures are stored in place;
/// only oversized or throwing-move callables fall back to the heap, and a
/// process-wide counter keeps that fallback observable (kernel_bench
/// reports it as allocs/event).
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  EventFn() noexcept {}
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <
      typename F, typename D = std::decay_t<F>,
      typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                  !std::is_same_v<D, std::nullptr_t> &&
                                  std::is_invocable_v<D&>>>
  EventFn(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* b) { (*std::launder(reinterpret_cast<D*>(b)))(); };
      manage_ = &ManageInline<D>;
    } else {
      heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      manage_out_ = true;
      D* p = new D(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof(p));
      invoke_ = [](void* b) {
        D* p;
        std::memcpy(&p, b, sizeof(p));
        (*p)();
      };
      manage_ = &ManageHeap<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(std::move(other)); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// True when the held callable lives out-of-line (capture too large for
  /// the inline buffer).
  bool heap_allocated() const noexcept { return manage_ && manage_out_; }

  /// Process-wide count of callbacks that spilled to the heap; the perf
  /// microbench divides the delta by events executed to get allocs/event.
  static uint64_t heap_fallbacks() {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  enum class Op { kMoveTo, kDestroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* self, void* dst);

  template <typename D>
  static void ManageInline(Op op, void* self, void* dst) {
    D* p = std::launder(reinterpret_cast<D*>(self));
    if (op == Op::kMoveTo) ::new (dst) D(std::move(*p));
    p->~D();
  }

  template <typename D>
  static void ManageHeap(Op op, void* self, void* dst) {
    D* p;
    std::memcpy(&p, self, sizeof(p));
    if (op == Op::kMoveTo) {
      std::memcpy(dst, &p, sizeof(p));
    } else {
      delete p;
    }
  }

  void MoveFrom(EventFn&& other) noexcept {
    if (other.manage_) other.manage_(Op::kMoveTo, other.buf_, buf_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    manage_out_ = other.manage_out_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.manage_out_ = false;
  }

  void Reset() noexcept {
    if (manage_) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
    manage_out_ = false;
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineBytes];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  bool manage_out_ = false;

  inline static std::atomic<uint64_t> heap_fallbacks_{0};
};

/// \brief Slab allocator for scheduler event nodes.
///
/// Nodes are carved from chunked slabs and recycled through an intrusive
/// free list, so steady-state Schedule()/fire cycles perform zero heap
/// allocations: a campaign that keeps N events pending allocates
/// ceil(N / kChunkNodes) chunks once and then runs allocation-free
/// forever. Nodes are address-stable, which is what lets the timer wheel
/// link them into buckets intrusively via `next`.
class EventPool {
 public:
  struct Node {
    SimTime when;
    uint64_t seq;  // global FIFO tie-breaker among equal timestamps
    Node* next;    // intrusive bucket / free-list link
    EventFn fn;
  };

  static constexpr std::size_t kChunkNodes = 1024;

  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  Node* Acquire(SimTime when, uint64_t seq, EventFn fn) {
    void* mem;
    if (free_ != nullptr) {
      mem = free_;
      free_ = free_->next;
    } else {
      if (bump_ == chunk_end_) NewChunk();
      mem = bump_;
      bump_ += sizeof(Node);
    }
    ++live_;
    ++acquires_;
    return ::new (mem) Node{when, seq, nullptr, std::move(fn)};
  }

  void Release(Node* n) {
    n->~Node();
    auto* slot = reinterpret_cast<FreeSlot*>(n);
    slot->next = free_;
    free_ = slot;
    --live_;
  }

  std::size_t chunks_allocated() const { return chunks_.size(); }
  std::size_t live_nodes() const { return live_; }
  uint64_t total_acquires() const { return acquires_; }

 private:
  struct FreeSlot {
    FreeSlot* next;
  };
  static_assert(sizeof(FreeSlot) <= sizeof(Node));
  static_assert(alignof(Node) <= alignof(std::max_align_t));

  void NewChunk() {
    chunks_.push_back(
        std::make_unique<unsigned char[]>(kChunkNodes * sizeof(Node)));
    bump_ = chunks_.back().get();
    chunk_end_ = bump_ + kChunkNodes * sizeof(Node);
  }

  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  unsigned char* bump_ = nullptr;
  unsigned char* chunk_end_ = nullptr;
  FreeSlot* free_ = nullptr;
  std::size_t live_ = 0;
  uint64_t acquires_ = 0;
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_EVENT_POOL_H_
