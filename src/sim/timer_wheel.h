#ifndef XSSD_SIM_TIMER_WHEEL_H_
#define XSSD_SIM_TIMER_WHEEL_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "sim/event_pool.h"
#include "sim/time.h"

namespace xssd::sim {

/// \brief Hierarchical timer wheel: the fast scheduler backend.
///
/// Eight levels of 64 slots each, so level k buckets events whose
/// timestamp first differs from the current time in bit window
/// [6k, 6k+6); together the levels cover a 2^48 ns (~3.2 simulated days)
/// horizon, and anything beyond parks in a small overflow heap until the
/// clock gets close. Insert is O(1): one XOR + count-leading-zeros picks
/// the level, and the event is appended to an intrusive bucket list.
/// Finding the next event scans one 64-bit occupancy bitmap per level.
/// As the clock crosses a slot boundary, that slot's bucket cascades to
/// lower levels — each event cascades at most kLevels-1 times over its
/// lifetime, so dequeue is amortized O(1) as well (vs O(log n) sift in a
/// binary heap, with far better locality for the clustered near-future
/// timestamps PCIe/flash/NTB latencies produce).
///
/// Determinism: events are totally ordered by (when, seq). A level-0
/// bucket holds events of one exact timestamp in insertion order, and
/// cascades/migrations preserve relative order of equal timestamps, so
/// PopNext yields exactly the same sequence as the legacy binary heap —
/// campaign metrics diff byte-for-byte across backends (CI enforces it).
class TimerWheel {
 public:
  static constexpr int kLevelBits = 6;
  static constexpr int kLevels = 8;
  static constexpr int kSlots = 1 << kLevelBits;
  static constexpr uint64_t kSlotMask = kSlots - 1;
  /// Events with `when ^ now` at or above this bit go to overflow.
  static constexpr int kHorizonBits = kLevelBits * kLevels;  // 48
  /// Sentinel returned by PeekNextTime when no event is at or below the
  /// limit (doubles as the "unbounded" limit value).
  static constexpr SimTime kNoEvent = ~SimTime{0};

  using Node = EventPool::Node;

  TimerWheel() = default;
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  SimTime now() const { return now_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint64_t cascaded_events() const { return cascaded_; }
  uint64_t overflow_parked() const { return overflowed_; }

  /// Insert an event node. Precondition: n->when >= now().
  void Insert(Node* n) {
    XSSD_CHECK(n->when >= now_);
    ++size_;
    uint64_t x = n->when ^ now_;
    if ((x >> kHorizonBits) != 0) {
      ++overflowed_;
      overflow_.push(n);
      return;
    }
    InsertWheel(n, x);
  }

  /// Exact timestamp of the earliest pending event if it is <= `limit`;
  /// kNoEvent otherwise (or when empty). Resolving the minimum may advance
  /// the wheel clock — cascading slots, migrating overflow — but never past
  /// `limit`, so a caller that must stay insertable below some horizon (a
  /// RunUntil deadline, a cross-domain inbox head that will execute before
  /// the wheel's own minimum) passes that horizon as the limit.
  SimTime PeekNextTime(SimTime limit) {
    while (size_ != 0) {
      // Level-0 candidate: exact, since a level-0 bucket holds exactly one
      // timestamp. Always the wheel minimum when present (level >= 1 slots
      // all start after the current level-1 slot ends).
      uint64_t m0 = bitmap_[0] & (~uint64_t{0} << (now_ & kSlotMask));
      Node* ov = overflow_.empty() ? nullptr : overflow_.top();
      if (m0 != 0) {
        int s = std::countr_zero(m0);
        SimTime t0 = (now_ & ~kSlotMask) | static_cast<uint64_t>(s);
        // An overflow event can never tie a wheel event: it would already
        // have migrated when the clock entered its 2^48 epoch.
        if (ov == nullptr || t0 < ov->when) {
          return t0 > limit ? kNoEvent : t0;
        }
      }
      // Otherwise the earliest work is either a not-yet-cascaded slot at
      // some higher level (known only as a lower bound: its slot start) or
      // the overflow head. Advance the clock there — which cascades or
      // migrates — and rescan.
      SimTime lb = 0;
      bool have_lb = false;
      for (int k = 1; k < kLevels; ++k) {
        int shift = k * kLevelBits;
        uint64_t cur = (now_ >> shift) & kSlotMask;
        uint64_t m = bitmap_[k] & (~uint64_t{0} << cur);
        if (m != 0) {
          uint64_t s = static_cast<uint64_t>(std::countr_zero(m));
          uint64_t epoch_mask = ~uint64_t{0} << (shift + kLevelBits);
          lb = (now_ & epoch_mask) | (s << shift);
          have_lb = true;
          break;
        }
      }
      if (ov != nullptr && (!have_lb || ov->when <= lb)) {
        if (ov->when > limit) return kNoEvent;
        AdvanceTo(ov->when);  // migrates the overflow head into the wheel
        continue;
      }
      XSSD_CHECK(have_lb);  // size_ > 0, so somewhere an event exists
      if (lb > limit) return kNoEvent;
      AdvanceTo(lb);
    }
    return kNoEvent;
  }

  /// Pop the globally earliest event if its timestamp is <= `bound`;
  /// returns nullptr otherwise. May advance the wheel clock up to the
  /// popped event's timestamp (never past `bound`).
  Node* PopNext(SimTime bound) {
    SimTime t = PeekNextTime(bound);
    if (t == kNoEvent) return nullptr;
    // After a successful peek the minimum is a level-0 candidate (overflow
    // heads migrate into the wheel while the peek resolves lower bounds).
    uint64_t m0 = bitmap_[0] & (~uint64_t{0} << (now_ & kSlotMask));
    Node* n = PopHead(0, std::countr_zero(m0));
    AdvanceTo(t);
    return n;
  }

  /// Move the wheel clock to `t`, cascading every slot that becomes
  /// current and pulling overflow events that enter the horizon. All
  /// remaining events must satisfy when >= t... callers advance only to
  /// a known event time, a proven lower bound, or a RunUntil deadline.
  void AdvanceTo(SimTime t) {
    if (t <= now_) return;
    SimTime old = now_;
    now_ = t;
    uint64_t delta = old ^ t;
    if ((delta >> kLevelBits) == 0) return;  // same level-1 slot: no slots
                                             // became current
    for (int k = kLevels - 1; k >= 1; --k) {
      int shift = k * kLevelBits;
      if ((old >> shift) == (t >> shift)) continue;
      int s = static_cast<int>((t >> shift) & kSlotMask);
      if (bitmap_[k] & (uint64_t{1} << s)) Cascade(k, s);
    }
    if ((delta >> kHorizonBits) != 0) MigrateOverflow();
  }

  /// Destroy (via `pool`) every event still pending. Called from the
  /// simulator destructor so captured resources are released.
  void ReleaseAll(EventPool* pool) {
    for (int k = 0; k < kLevels; ++k) {
      for (int s = 0; s < kSlots; ++s) {
        Node* n = buckets_[k][s].head;
        while (n != nullptr) {
          Node* next = n->next;
          pool->Release(n);
          n = next;
        }
        buckets_[k][s] = Bucket{};
      }
      bitmap_[k] = 0;
    }
    while (!overflow_.empty()) {
      pool->Release(overflow_.top());
      overflow_.pop();
    }
    size_ = 0;
  }

 private:
  struct Bucket {
    Node* head = nullptr;
    Node* tail = nullptr;
  };
  struct OverflowLater {
    bool operator()(const Node* a, const Node* b) const {
      if (a->when != b->when) return a->when > b->when;
      return a->seq > b->seq;
    }
  };

  void InsertWheel(Node* n, uint64_t x) {
    int level = x == 0 ? 0 : (63 - std::countl_zero(x)) / kLevelBits;
    int slot = static_cast<int>((n->when >> (level * kLevelBits)) & kSlotMask);
    Bucket& b = buckets_[level][slot];
    n->next = nullptr;
    if (b.tail == nullptr) {
      b.head = b.tail = n;
      bitmap_[level] |= uint64_t{1} << slot;
    } else {
      b.tail->next = n;
      b.tail = n;
    }
  }

  Node* PopHead(int level, int slot) {
    Bucket& b = buckets_[level][slot];
    Node* n = b.head;
    b.head = n->next;
    if (b.head == nullptr) {
      b.tail = nullptr;
      bitmap_[level] &= ~(uint64_t{1} << slot);
    }
    --size_;
    return n;
  }

  /// Redistribute a slot that just became current to lower levels,
  /// preserving list (and thus equal-timestamp FIFO) order.
  void Cascade(int level, int slot) {
    Bucket& b = buckets_[level][slot];
    Node* n = b.head;
    b.head = b.tail = nullptr;
    bitmap_[level] &= ~(uint64_t{1} << slot);
    while (n != nullptr) {
      Node* next = n->next;
      ++cascaded_;
      InsertWheel(n, n->when ^ now_);
      n = next;
    }
  }

  /// Pull overflow events whose timestamp entered the wheel horizon. The
  /// overflow heap yields them in (when, seq) order, and at a horizon
  /// crossing the wheel holds no event sharing their epoch, so FIFO
  /// tie-break order is preserved.
  void MigrateOverflow() {
    while (!overflow_.empty() &&
           ((overflow_.top()->when ^ now_) >> kHorizonBits) == 0) {
      Node* n = overflow_.top();
      overflow_.pop();
      InsertWheel(n, n->when ^ now_);
    }
  }

  SimTime now_ = 0;
  std::size_t size_ = 0;
  uint64_t cascaded_ = 0;
  uint64_t overflowed_ = 0;
  uint64_t bitmap_[kLevels] = {};
  Bucket buckets_[kLevels][kSlots];
  std::priority_queue<Node*, std::vector<Node*>, OverflowLater> overflow_;
};

}  // namespace xssd::sim

#endif  // XSSD_SIM_TIMER_WHEEL_H_
