#include "sim/simulator.h"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "obs/trace.h"

namespace xssd::sim {

thread_local Simulator::Domain* Simulator::tls_domain_ = nullptr;

Simulator::DomainScope::DomainScope(Simulator* sim, uint32_t domain)
    : sim_(sim), saved_(sim->idle_domain_) {
  XSSD_CHECK(domain < sim->domains_.size());
  XSSD_CHECK(!sim->parallel_active_);
  sim->idle_domain_ = sim->domains_[domain].get();
}

Simulator::DomainScope::~DomainScope() { sim_->idle_domain_ = saved_; }

Simulator::~Simulator() {
  if (time_obs_ != nullptr) {
    // Benches run one stack-local simulator per run; tearing it down is the
    // natural "run over" signal for an attached sampler (it closes its
    // final partial window there).
    time_obs_->OnSimulatorTearDown(now_);
    time_obs_ = nullptr;
  }
  for (auto& dp : domains_) {
    dp->wheel.ReleaseAll(&dp->pool);
    while (!dp->inbox.empty()) {
      dp->pool.Release(dp->inbox.top());
      dp->inbox.pop();
    }
  }
}

Simulator::SchedulerBackend Simulator::DefaultBackend() {
  static const SchedulerBackend cached = [] {
#ifdef XSSD_SIM_HEAP_SCHEDULER
    SchedulerBackend fallback = SchedulerBackend::kHeap;
#else
    SchedulerBackend fallback = SchedulerBackend::kWheel;
#endif
    const char* env = std::getenv("XSSD_SIM_SCHEDULER");
    if (env == nullptr || env[0] == '\0') return fallback;
    if (std::strcmp(env, "heap") == 0) return SchedulerBackend::kHeap;
    if (std::strcmp(env, "wheel") == 0) return SchedulerBackend::kWheel;
    if (std::strcmp(env, "parallel") == 0) return SchedulerBackend::kParallel;
    XSSD_LOG(kWarning) << "unknown XSSD_SIM_SCHEDULER=" << env
                       << " (want heap|wheel|parallel); using build default";
    return fallback;
  }();
  return cached;
}

void Simulator::ConfigureDomains(uint32_t count) {
  XSSD_CHECK(count >= 1 && count <= kMaxDomains);
  XSSD_CHECK(!parallel_active_);
  // Partitioning is a construction-time decision: repartitioning mid-run
  // would have to split live queues between clocks that never agreed.
  XSSD_CHECK(executed_events() == 0 && pending_events() == 0 && now_ == 0);
  if (count == domains_.size()) return;
  domains_.clear();
  domains_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    domains_.push_back(std::make_unique<Domain>(i));
  }
  d0_ = domains_[0].get();
  idle_domain_ = d0_;
  mailboxes_.clear();
}

void Simulator::DeclareLookahead(SimTime t) {
  XSSD_CHECK(t > 0);
  if (t < lookahead_) lookahead_ = t;
}

void Simulator::ScheduleAt(SimTime when, Callback fn) {
  Domain* src = ExecutingDomain();
  ScheduleAtDomain(src != nullptr ? src : idle_domain_, when, std::move(fn));
}

void Simulator::ScheduleAtIn(uint32_t domain, SimTime when, Callback fn) {
  XSSD_CHECK(domain < domains_.size());
  ScheduleAtDomain(domains_[domain].get(), when, std::move(fn));
}

void Simulator::ScheduleAtDomain(Domain* dst, SimTime when, Callback fn) {
  Domain* src = ExecutingDomain();
  if (src != nullptr && src != dst) {
    // Cross-domain event. The lookahead contract is what lets the parallel
    // backend run whole windows without consulting other domains — enforce
    // it on the serial backends too, so a model that passes serially is
    // guaranteed to merge identically in parallel.
    XSSD_CHECK(lookahead_ != kNoLookahead);
    XSSD_CHECK(when >= src->now + lookahead_);
    uint64_t key = kCrossKeyBit |
                   (static_cast<uint64_t>(src->id) << kCrossDomainShift) |
                   src->cross_issued++;
    if (trace_) trace_->OnEventScheduled(src->now, when, key);
    if (parallel_active_) {
      mailboxes_[src->id * domains_.size() + dst->id]->Push(when, key,
                                                            std::move(fn));
    } else if (UsesWheel()) {
      dst->inbox.push(dst->pool.Acquire(when, key, std::move(fn)));
    } else {
      dst->heap.push(HeapEvent{when, key, std::move(fn)});
    }
    return;
  }
  SimTime ref = src != nullptr ? src->now : now_;
  if (when < ref) {
    ++dst->past_clamps;
    // A past timestamp is a latent ordering bug in the calling model
    // (e.g. a fault plan firing "before" the event that armed it): loud
    // in debug builds, clamped-and-counted in release so long campaigns
    // keep running and the gauge surfaces it.
    assert(allow_past_schedules_ &&
           "Simulator::ScheduleAt: `when` is in the past (clamped to Now)");
    when = ref;
  }
  uint64_t key = dst->next_seq++;
  if (trace_) trace_->OnEventScheduled(ref, when, key);
  if (UsesWheel()) {
    EventPool::Node* n = dst->pool.Acquire(when, key, std::move(fn));
    if (when < dst->wheel.now()) {
      // The serial merge may have advanced this domain's wheel clock past a
      // cross arrival that was merged in behind it; locals scheduled by that
      // arrival ride the inbox instead (its (when, key) order is exactly
      // the order the wheel would have produced — and a wheel event with
      // this timestamp cannot exist, or the clock could not have passed it).
      dst->inbox.push(n);
    } else {
      dst->wheel.Insert(n);
    }
  } else {
    dst->heap.push(HeapEvent{when, key, std::move(fn)});
  }
}

bool Simulator::StepBoundedSingle(SimTime bound) {
  Domain* d = d0_;
  if (UsesWheel()) {
    EventPool::Node* n = d->wheel.PopNext(bound);
    if (n == nullptr) return false;
    if (n->when >= obs_due_) NotifyTimeObserver(n->when);
    now_ = n->when;
    ++d->executed;
    if (trace_) trace_->OnEventBegin(n->when, n->seq);
    n->fn();
    if (trace_) trace_->OnEventEnd(n->when, n->seq);
    d->pool.Release(n);
    return true;
  }
  if (d->heap.empty() || d->heap.top().when > bound) return false;
  // The event is moved out before running so a callback can safely schedule
  // new events (which may reallocate the underlying heap).
  HeapEvent ev = std::move(const_cast<HeapEvent&>(d->heap.top()));
  d->heap.pop();
  if (ev.when >= obs_due_) NotifyTimeObserver(ev.when);
  now_ = ev.when;
  ++d->executed;
  if (trace_) trace_->OnEventBegin(ev.when, ev.key);
  ev.fn();
  if (trace_) trace_->OnEventEnd(ev.when, ev.key);
  return true;
}

SimTime Simulator::DomainNextTime(Domain* d, SimTime deadline) {
  if (!UsesWheel()) {
    if (d->heap.empty() || d->heap.top().when > deadline) {
      return TimerWheel::kNoEvent;
    }
    return d->heap.top().when;
  }
  SimTime inbox_t =
      d->inbox.empty() ? TimerWheel::kNoEvent : d->inbox.top()->when;
  // The wheel clock must never pass the inbox head (a cross arrival that
  // executes first may schedule locals at its own timestamp) or the caller's
  // horizon — both are Insert targets.
  SimTime wheel_t = d->wheel.PeekNextTime(std::min(inbox_t, deadline));
  SimTime cand = wheel_t;  // <= inbox_t when present: locals win ties
  if (inbox_t <= deadline && inbox_t < cand) cand = inbox_t;
  return cand;
}

bool Simulator::StepBoundedMerge(SimTime bound) {
  Domain* best = nullptr;
  SimTime best_when = 0;
  for (auto& dp : domains_) {
    SimTime t = DomainNextTime(dp.get(), bound);
    if (t == TimerWheel::kNoEvent) continue;
    if (best == nullptr || t < best_when) {  // strict: lowest id wins ties
      best = dp.get();
      best_when = t;
    }
  }
  if (best == nullptr) return false;
  if (best_when >= obs_due_) NotifyTimeObserver(best_when);
  best->now = best_when;
  now_ = best_when;
  ++best->executed;
  executing_ = best;
  if (UsesWheel()) {
    // Local-first at equal timestamps: the wheel only yields best_when if a
    // local event is there; otherwise the inbox head is the candidate.
    EventPool::Node* n;
    if (best->wheel.PeekNextTime(best_when) == best_when) {
      n = best->wheel.PopNext(best_when);
    } else {
      n = best->inbox.top();
      best->inbox.pop();
    }
    if (trace_) trace_->OnEventBegin(n->when, n->seq);
    n->fn();
    if (trace_) trace_->OnEventEnd(n->when, n->seq);
    best->pool.Release(n);
  } else {
    HeapEvent ev = std::move(const_cast<HeapEvent&>(best->heap.top()));
    best->heap.pop();
    if (trace_) trace_->OnEventBegin(ev.when, ev.key);
    ev.fn();
    if (trace_) trace_->OnEventEnd(ev.when, ev.key);
  }
  executing_ = nullptr;
  return true;
}

// ── Parallel engine ─────────────────────────────────────────────────────

bool Simulator::ShouldRunParallel() {
  if (backend_ != SchedulerBackend::kParallel || domains_.size() <= 1 ||
      force_serial_) {
    return false;
  }
  if (trace_ == nullptr && time_obs_ == nullptr &&
      lookahead_ != kNoLookahead) {
    return true;
  }
  if (!serial_fallback_warned_) {
    serial_fallback_warned_ = true;
    XSSD_LOG(kWarning) << "parallel scheduler falling back to serial merge ("
                       << (trace_ != nullptr     ? "trace sink attached"
                           : time_obs_ != nullptr ? "time observer attached"
                                                  : "no lookahead declared")
                       << "); results are identical, just single-threaded";
  }
  return false;
}

void Simulator::PlanNextWindow(SimTime deadline) {
  SimTime t_min = TimerWheel::kNoEvent;
  for (auto& dp : domains_) {
    t_min = std::min(t_min, DomainNextTime(dp.get(), deadline));
  }
  if (t_min == TimerWheel::kNoEvent) {
    par_done_ = true;
    return;
  }
  SimTime wend = t_min + lookahead_;
  if (wend < t_min) wend = TimerWheel::kNoEvent;  // saturate on overflow
  window_end_ = wend;
  par_done_ = false;
}

void Simulator::ExecuteWindow(Domain* d, SimTime window_end,
                              SimTime deadline) {
  // Events strictly below the window end are safe: any cross event produced
  // inside the window lands at >= sender_now + lookahead >= window_end.
  SimTime bound = std::min(window_end - 1, deadline);
  for (;;) {
    SimTime inbox_t =
        d->inbox.empty() ? TimerWheel::kNoEvent : d->inbox.top()->when;
    SimTime wheel_t = d->wheel.PeekNextTime(std::min(bound, inbox_t));
    EventPool::Node* n;
    if (wheel_t != TimerWheel::kNoEvent) {  // <= inbox_t: locals win ties
      n = d->wheel.PopNext(wheel_t);
    } else if (inbox_t <= bound) {
      n = d->inbox.top();
      d->inbox.pop();
    } else {
      break;
    }
    d->now = n->when;
    ++d->executed;
    n->fn();
    d->pool.Release(n);
  }
}

void Simulator::DrainMailboxes() {
  const size_t n = domains_.size();
  for (size_t src = 0; src < n; ++src) {
    for (size_t dst = 0; dst < n; ++dst) {
      Domain* target = domains_[dst].get();
      mailboxes_[src * n + dst]->Drain(
          [&](SimTime when, uint64_t key, EventFn&& fn) {
            target->inbox.push(target->pool.Acquire(when, key, std::move(fn)));
          });
    }
  }
}

uint64_t Simulator::RunParallel(SimTime deadline) {
  const uint32_t n = static_cast<uint32_t>(domains_.size());
  if (mailboxes_.size() != static_cast<size_t>(n) * n) {
    mailboxes_.clear();
    for (size_t i = 0; i < static_cast<size_t>(n) * n; ++i) {
      mailboxes_.push_back(std::make_unique<SpscMailbox>());
    }
  }
  stopped_.store(false, std::memory_order_relaxed);
  const uint64_t executed_before = executed_events();
  PlanNextWindow(deadline);
  parallel_active_ = true;
  std::barrier<> start_gate(n);
  std::barrier<> end_gate(n);
  // Worker d executes its domain's share of each lockstep window. The main
  // thread doubles as domain 0's worker and as the coordinator: strictly
  // between a window's end barrier and the next start barrier — while every
  // other worker idles — it drains the mailboxes into the target inboxes
  // and plans the next window, so those phases need no further locking.
  auto worker = [&](Domain* d, bool coordinator) {
    tls_domain_ = d;
    for (;;) {
      start_gate.arrive_and_wait();
      if (par_done_) break;
      ExecuteWindow(d, window_end_, deadline);
      end_gate.arrive_and_wait();
      if (coordinator) {
        ++parallel_windows_;
        DrainMailboxes();
        if (stopped_.load(std::memory_order_relaxed)) {
          par_done_ = true;  // deterministic: the window already completed
        } else {
          PlanNextWindow(deadline);
        }
      }
    }
    tls_domain_ = nullptr;
  };
  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (uint32_t i = 1; i < n; ++i) {
    threads.emplace_back(worker, domains_[i].get(), false);
  }
  worker(d0_, true);
  for (auto& t : threads) t.join();
  parallel_active_ = false;

  if (!stopped_.load(std::memory_order_relaxed) &&
      deadline != TimerWheel::kNoEvent) {
    for (auto& dp : domains_) {
      dp->wheel.AdvanceTo(deadline);
      if (dp->now < deadline) dp->now = deadline;
    }
    now_ = std::max(now_, deadline);
  } else {
    for (auto& dp : domains_) now_ = std::max(now_, dp->now);
  }
  return executed_events() - executed_before;
}

// ── Run loops ───────────────────────────────────────────────────────────

void Simulator::Run() {
  if (ShouldRunParallel()) {
    RunParallel(TimerWheel::kNoEvent);
    return;
  }
  stopped_.store(false, std::memory_order_relaxed);
  while (!stopped_.load(std::memory_order_relaxed) &&
         StepBounded(~SimTime{0})) {
  }
}

uint64_t Simulator::RunUntil(SimTime deadline) {
  if (ShouldRunParallel()) return RunParallel(deadline);
  stopped_.store(false, std::memory_order_relaxed);
  uint64_t ran = 0;
  while (!stopped_.load(std::memory_order_relaxed) && StepBounded(deadline)) {
    ++ran;
  }
  if (!stopped_.load(std::memory_order_relaxed) && now_ < deadline) {
    now_ = deadline;
    for (auto& dp : domains_) {
      dp->wheel.AdvanceTo(deadline);
      if (dp->now < deadline) dp->now = deadline;
    }
  }
  return ran;
}

bool Simulator::RunWhile(const std::function<bool()>& done) {
  stopped_.store(false, std::memory_order_relaxed);
  while (!done()) {
    if (stopped_.load(std::memory_order_relaxed)) return false;
    if (!StepBounded(~SimTime{0})) return false;
  }
  return true;
}

}  // namespace xssd::sim
