#include "sim/simulator.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace xssd::sim {

void Simulator::ScheduleAt(SimTime when, Callback fn) {
  XSSD_CHECK(when >= now_);
  uint64_t seq = next_seq_++;
  if (trace_) trace_->OnEventScheduled(now_, when, seq);
  queue_.push(Event{when, seq, std::move(fn)});
}

void Simulator::Step() {
  // The event is moved out before running so a callback can safely schedule
  // new events (which may reallocate the underlying heap).
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++executed_;
  if (trace_) trace_->OnEventBegin(ev.when, ev.seq);
  ev.fn();
  if (trace_) trace_->OnEventEnd(ev.when, ev.seq);
}

void Simulator::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Step();
  }
}

uint64_t Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  uint64_t ran = 0;
  while (!queue_.empty() && !stopped_ && queue_.top().when <= deadline) {
    Step();
    ++ran;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return ran;
}

bool Simulator::RunWhile(const std::function<bool()>& done) {
  stopped_ = false;
  while (!done()) {
    if (queue_.empty() || stopped_) return false;
    Step();
  }
  return true;
}

}  // namespace xssd::sim
