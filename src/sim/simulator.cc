#include "sim/simulator.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/trace.h"

namespace xssd::sim {

Simulator::~Simulator() { wheel_.ReleaseAll(&pool_); }

Simulator::SchedulerBackend Simulator::DefaultBackend() {
  static const SchedulerBackend cached = [] {
#ifdef XSSD_SIM_HEAP_SCHEDULER
    SchedulerBackend fallback = SchedulerBackend::kHeap;
#else
    SchedulerBackend fallback = SchedulerBackend::kWheel;
#endif
    const char* env = std::getenv("XSSD_SIM_SCHEDULER");
    if (env == nullptr || env[0] == '\0') return fallback;
    if (std::strcmp(env, "heap") == 0) return SchedulerBackend::kHeap;
    if (std::strcmp(env, "wheel") == 0) return SchedulerBackend::kWheel;
    XSSD_LOG(kWarning) << "unknown XSSD_SIM_SCHEDULER=" << env
                       << " (want heap|wheel); using build default";
    return fallback;
  }();
  return cached;
}

void Simulator::ScheduleAt(SimTime when, Callback fn) {
  if (when < now_) {
    ++past_clamps_;
    // A past timestamp is a latent ordering bug in the calling model
    // (e.g. a fault plan firing "before" the event that armed it): loud
    // in debug builds, clamped-and-counted in release so long campaigns
    // keep running and the gauge surfaces it.
    assert(allow_past_schedules_ &&
           "Simulator::ScheduleAt: `when` is in the past (clamped to Now)");
    when = now_;
  }
  uint64_t seq = next_seq_++;
  if (trace_) trace_->OnEventScheduled(now_, when, seq);
  if (backend_ == SchedulerBackend::kWheel) {
    wheel_.Insert(pool_.Acquire(when, seq, std::move(fn)));
  } else {
    heap_.push(HeapEvent{when, seq, std::move(fn)});
  }
}

bool Simulator::StepBounded(SimTime bound) {
  if (backend_ == SchedulerBackend::kWheel) {
    EventPool::Node* n = wheel_.PopNext(bound);
    if (n == nullptr) return false;
    now_ = n->when;
    ++executed_;
    if (trace_) trace_->OnEventBegin(n->when, n->seq);
    n->fn();
    if (trace_) trace_->OnEventEnd(n->when, n->seq);
    pool_.Release(n);
    return true;
  }
  if (heap_.empty() || heap_.top().when > bound) return false;
  // The event is moved out before running so a callback can safely schedule
  // new events (which may reallocate the underlying heap).
  HeapEvent ev = std::move(const_cast<HeapEvent&>(heap_.top()));
  heap_.pop();
  now_ = ev.when;
  ++executed_;
  if (trace_) trace_->OnEventBegin(ev.when, ev.seq);
  ev.fn();
  if (trace_) trace_->OnEventEnd(ev.when, ev.seq);
  return true;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && StepBounded(~SimTime{0})) {
  }
}

uint64_t Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  uint64_t ran = 0;
  while (!stopped_ && StepBounded(deadline)) ++ran;
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
    wheel_.AdvanceTo(deadline);
  }
  return ran;
}

bool Simulator::RunWhile(const std::function<bool()>& done) {
  stopped_ = false;
  while (!done()) {
    if (stopped_) return false;
    if (!StepBounded(~SimTime{0})) return false;
  }
  return true;
}

}  // namespace xssd::sim
