#include "host/xcalls.h"

#include <cstring>
#include <vector>

#include "host/sync.h"

namespace xssd::host {

ssize_t x_pwrite(sim::Simulator& sim, XLogClient& client, const void* buf,
                 size_t count) {
  SyncRunner runner(&sim);
  Status status = runner.Await([&](std::function<void(Status)> done) {
    client.Append(static_cast<const uint8_t*>(buf), count, std::move(done));
  });
  return status.ok() ? static_cast<ssize_t>(count) : -1;
}

int x_fsync(sim::Simulator& sim, XLogClient& client) {
  SyncRunner runner(&sim);
  Status status = runner.Await([&](std::function<void(Status)> done) {
    client.Sync(std::move(done));
  });
  return status.ok() ? 0 : -1;
}

ssize_t x_pread(sim::Simulator& sim, XLogClient& client,
                nvme::Driver& driver, void* buf, size_t count) {
  SyncRunner runner(&sim);
  Result<std::vector<uint8_t>> data =
      runner.AwaitValue<std::vector<uint8_t>>(
          [&](std::function<void(Status, std::vector<uint8_t>)> done) {
            client.ReadTail(&driver, count, std::move(done));
          });
  if (!data.ok()) return -1;
  std::memcpy(buf, data->data(), data->size());
  return static_cast<ssize_t>(data->size());
}

}  // namespace xssd::host
