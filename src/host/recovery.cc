#include "host/recovery.h"

#include <algorithm>
#include <map>

#include "core/page_format.h"
#include "host/sync.h"

namespace xssd::host {

Result<RecoveredLog> RecoverLog(sim::Simulator& sim, nvme::Driver& driver,
                                uint64_t ring_start_lba,
                                uint64_t ring_lba_count) {
  SyncRunner runner(&sim);
  RecoveredLog out;

  // Collect every valid destage page in the ring, keyed by sequence.
  // Transient read errors (ECC hiccups, injected uncorrectables) get a few
  // re-reads before the slot is treated as unreadable; a slot that stays
  // unreadable is skipped like a torn page, so the chain walk below stops
  // at it rather than returning bytes past a gap.
  constexpr int kReadAttempts = 3;
  std::map<uint64_t, core::ParsedDestagePage> pages;
  for (uint64_t slot = 0; slot < ring_lba_count; ++slot) {
    uint64_t lba = ring_start_lba + slot;
    Result<std::vector<uint8_t>> page = Status::Internal("unread");
    for (int attempt = 0; attempt < kReadAttempts; ++attempt) {
      page = runner.AwaitValue<std::vector<uint8_t>>(
          [&](std::function<void(Status, std::vector<uint8_t>)> done) {
            driver.Read(lba, 1, std::move(done));
          });
      if (page.ok()) break;
    }
    if (!page.ok()) {
      ++out.pages_scanned;
      ++out.pages_unreadable;
      continue;
    }
    ++out.pages_scanned;
    Result<core::ParsedDestagePage> parsed =
        core::ParseDestagePage(*page);
    if (!parsed.ok()) continue;  // unwritten slot or torn page
    ++out.pages_valid;
    pages.emplace(parsed->header.sequence, std::move(*parsed));
  }
  if (pages.empty()) {
    out.start_offset = 0;
    return out;
  }

  // The newest epoch wins; older-epoch leftovers are a previous lifetime.
  uint32_t max_epoch = 0;
  for (const auto& [seq, page] : pages) {
    max_epoch = std::max(max_epoch, page.header.epoch);
  }
  out.epoch = max_epoch;

  // Walk back from the highest sequence while sequences stay consecutive,
  // epochs match, and stream offsets chain — the longest valid tail.
  auto it = std::prev(pages.end());
  while (it != pages.begin()) {
    auto prev = std::prev(it);
    bool chained = prev->second.header.epoch == max_epoch &&
                   it->second.header.epoch == max_epoch &&
                   prev->first + 1 == it->first &&
                   prev->second.header.stream_offset +
                           prev->second.header.data_len ==
                       it->second.header.stream_offset;
    if (!chained) break;
    it = prev;
  }
  if (it->second.header.epoch != max_epoch) {
    // Highest-sequence page stands alone in the newest epoch.
    it = std::prev(pages.end());
  }

  out.start_offset = it->second.header.stream_offset;
  for (; it != pages.end(); ++it) {
    if (it->second.header.epoch != max_epoch) continue;
    out.data.insert(out.data.end(), it->second.data.begin(),
                    it->second.data.end());
  }
  return out;
}

}  // namespace xssd::host
