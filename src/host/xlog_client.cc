#include "host/xlog_client.h"

#include <cstring>
#include <memory>

#include "common/logging.h"
#include "core/page_format.h"

namespace xssd::host {

XLogClient::XLogClient(sim::Simulator* sim, pcie::PcieFabric* fabric,
                       uint64_t cmb_base, XLogClientOptions options)
    : sim_(sim),
      fabric_(fabric),
      cmb_base_(cmb_base),
      options_(options),
      store_engine_(fabric, options.mmio_mode),
      jitter_rng_(options.jitter_seed) {}

Status XLogClient::Setup() {
  uint8_t value[8];
  auto read_reg = [&](uint64_t reg, uint64_t* out) -> Status {
    XSSD_RETURN_IF_ERROR(fabric_->FunctionalRead(cmb_base_ + reg, value, 8));
    std::memcpy(out, value, 8);
    return Status::OK();
  };
  XSSD_RETURN_IF_ERROR(read_reg(core::kRegQueueBytes, &queue_bytes_));
  XSSD_RETURN_IF_ERROR(read_reg(core::kRegRingBytes, &ring_bytes_));
  XSSD_RETURN_IF_ERROR(
      read_reg(core::kRegDestageStartLba, &destage_start_lba_));
  XSSD_RETURN_IF_ERROR(
      read_reg(core::kRegDestageLbaCount, &destage_lba_count_));
  XSSD_RETURN_IF_ERROR(read_reg(core::kRegEpoch, &epoch_cache_));
  if (queue_bytes_ == 0 || ring_bytes_ == 0) {
    return Status::FailedPrecondition("device reported empty CMB geometry");
  }
  return Status::OK();
}

Status XLogClient::ResumeAtDeviceTail() {
  uint8_t raw[8];
  auto read_reg = [&](uint64_t reg, uint64_t* out) -> Status {
    XSSD_RETURN_IF_ERROR(fabric_->FunctionalRead(cmb_base_ + reg, raw, 8));
    std::memcpy(out, raw, 8);
    return Status::OK();
  };
  uint64_t credit = 0, destaged = 0;
  XSSD_RETURN_IF_ERROR(read_reg(core::kRegLocalCredit, &credit));
  XSSD_RETURN_IF_ERROR(read_reg(core::kRegDestaged, &destaged));
  written_ = credit;
  credit_cache_ = credit;
  destaged_cache_ = destaged;
  return Status::OK();
}

Status XLogClient::Reconnect() {
  uint64_t epoch_before = epoch_cache_;
  XSSD_RETURN_IF_ERROR(Setup());
  XSSD_RETURN_IF_ERROR(ResumeAtDeviceTail());
  if (epoch_cache_ != epoch_before) {
    // A reboot (or HA truncation) started a fresh epoch at stream offset
    // 0; tail reads restart with it. Allocations from the dead session
    // cannot be completed.
    read_cursor_ = 0;
    read_seq_ = 0;
    tail_leftover_.clear();
    allocations_.clear();
    alloc_head_ = 0;
    PushBarrier();
  }
  // Epoch unchanged: the local device was promoted with its log intact —
  // keep every cursor and just resume at the adopted tail.
  ++reconnects_;
  return Status::OK();
}

void XLogClient::SetSpans(obs::SpanRecorder* spans,
                          const std::string& node_tag) {
  spans_ = spans;
  span_node_ = spans ? spans->InternNode(node_tag) : 0;
}

void XLogClient::ReadRegister(uint64_t reg,
                              std::function<void(uint64_t)> done) {
  ++credit_polls_;
  // The poll span charges the CPU overhead plus the MMIO read round trip to
  // the host; the caller's ambient context is restored around `done` so
  // continuations (chunk stores, NVMe reads) keep their root request.
  obs::SpanContext caller_ctx;
  obs::SpanContext poll_ctx;
  if (spans_) {
    caller_ctx = spans_->current();
    poll_ctx = spans_->StartSpan(obs::Stage::kHostPoll, span_node_,
                                 caller_ctx);
  }
  sim_->Schedule(options_.poll_cpu_overhead, [this, reg, caller_ctx, poll_ctx,
                                              done = std::move(done)]() {
    fabric_->HostRead(cmb_base_ + reg, 8,
                      [this, caller_ctx, poll_ctx, done = std::move(done)](
                          std::vector<uint8_t> bytes) {
                        if (spans_) spans_->EndSpan(poll_ctx);
                        uint64_t value = 0;
                        std::memcpy(&value, bytes.data(), 8);
                        obs::ScopedContext scope(spans_, caller_ctx);
                        done(value);
                      });
  });
}

void XLogClient::StoreChunk(const uint8_t* data, size_t len,
                            sim::Simulator::Callback posted) {
  uint64_t ring_offset = written_ % ring_bytes_;
  uint64_t base = cmb_base_ + core::kRingWindowOffset;
  size_t first =
      static_cast<size_t>(std::min<uint64_t>(len, ring_bytes_ - ring_offset));
  if (first < len) {
    // The chunk wraps: two store sequences, completion on the second.
    store_engine_.Store(base + ring_offset, data, first, nullptr);
    store_engine_.Store(base, data + first, len - first, std::move(posted));
  } else {
    store_engine_.Store(base + ring_offset, data, len, std::move(posted));
  }
  written_ += len;
}

void XLogClient::Append(const uint8_t* data, size_t len, DoneCallback done) {
  if (len == 0) {
    done(Status::OK());
    return;
  }
  obs::SpanContext root;
  if (spans_) {
    root = spans_->StartTrace("append", span_node_, written_, written_ + len);
    done = [this, root, done = std::move(done)](Status status) mutable {
      spans_->EndSpan(root);
      done(status);
    };
  }
  auto copy = std::make_shared<std::vector<uint8_t>>(data, data + len);
  AppendLoop(std::move(copy), 0, root, std::move(done));
}

void XLogClient::AppendLoop(std::shared_ptr<std::vector<uint8_t>> data,
                            size_t offset, obs::SpanContext ctx,
                            DoneCallback done) {
  obs::ScopedContext scope(spans_, ctx);
  size_t remaining = data->size() - offset;
  if (remaining == 0) {
    done(Status::OK());
    return;
  }
  // Figure 8: use all credits available without intermediate checks, then
  // pause to read the credit anew.
  uint64_t outstanding = written_ - credit_cache_;
  uint64_t window =
      outstanding >= queue_bytes_ ? 0 : queue_bytes_ - outstanding;
  // Also respect the ring: never run further than ring_bytes ahead of the
  // destage head (only binding for small rings under destage pressure).
  uint64_t ring_room = options_.respect_ring_capacity
                           ? destaged_cache_ + ring_bytes_ - written_
                           : window;
  uint64_t avail = std::min(window, ring_room);

  if (avail == 0) {
    // Back-pressure: poll the credit counter and retry (paper §4.1). When
    // the ring (not the staging window) is what binds, refresh the destage
    // progress register instead.
    bool ring_bound = ring_room < window;
    uint64_t reg = ring_bound ? core::kRegDestaged : core::kRegCredit;
    ReadRegister(reg, [this, ring_bound, data = std::move(data), offset, ctx,
                       done = std::move(done)](uint64_t value) mutable {
      if (ring_bound) {
        destaged_cache_ = std::max(destaged_cache_, value);
      } else {
        credit_cache_ = std::max(credit_cache_, value);
      }
      AppendLoop(std::move(data), offset, ctx, std::move(done));
    });
    return;
  }

  size_t chunk = static_cast<size_t>(
      std::min<uint64_t>(remaining, avail));
  const uint8_t* src = data->data() + offset;  // before the lambda moves data
  StoreChunk(src, chunk,
             [this, data = std::move(data), offset = offset + chunk, ctx,
              done = std::move(done)]() mutable {
               AppendLoop(std::move(data), offset, ctx, std::move(done));
             });
}

void XLogClient::Sync(DoneCallback done) {
  obs::SpanContext root;
  if (spans_) {
    // The fsync covers the unacknowledged window at call time.
    root = spans_->StartTrace("fsync", span_node_, credit_cache_, written_);
    done = [this, root, done = std::move(done)](Status status) mutable {
      spans_->EndSpan(root);
      done(status);
    };
  }
  SyncLoop(root, std::move(done), sim_->Now());
}

void XLogClient::SyncLoop(obs::SpanContext ctx, DoneCallback done,
                          sim::SimTime last_progress) {
  obs::ScopedContext scope(spans_, ctx);
  if (credit_cache_ >= written_) {
    done(Status::OK());
    return;
  }
  if (options_.sync_stall_timeout > 0 &&
      sim_->Now() - last_progress >= options_.sync_stall_timeout) {
    // The counter is stuck. Ask the device whether it is still alive —
    // a degraded or stalled primary will still make (local) progress, but
    // a halted one never will, and the caller must fail over/Reconnect().
    ReadRegister(core::kRegTransportStatus,
                 [this, ctx, done = std::move(done),
                  last_progress](uint64_t word) mutable {
                   if (word & core::StatusBits::kHalted) {
                     ++sync_failures_;
                     done(Status::Unavailable(
                         "device halted with unsynced log bytes"));
                     return;
                   }
                   if (options_.fail_on_stall) {
                     ++sync_failures_;
                     done(Status::DeadlineExceeded(
                         "sync made no progress within the stall timeout; "
                         "device alive"));
                     return;
                   }
                   // Alive (possibly degraded): grant another stall window
                   // of credit polling before checking again.
                   SyncLoop(ctx, std::move(done), sim_->Now());
                 });
    return;
  }
  ReadRegister(core::kRegCredit, [this, ctx, done = std::move(done),
                                  last_progress](uint64_t credit) mutable {
    if (credit > credit_cache_) {
      credit_cache_ = credit;
      last_progress = sim_->Now();
    }
    SyncLoop(ctx, std::move(done), last_progress);
  });
}

void XLogClient::AppendDurable(const uint8_t* data, size_t len,
                               DoneCallback done) {
  Append(data, len, [this, done = std::move(done)](Status status) mutable {
    if (!status.ok()) {
      done(status);
      return;
    }
    Sync(std::move(done));
  });
}

void XLogClient::ReadTail(nvme::Driver* driver, size_t len,
                          ReadCallback done) {
  obs::SpanContext root;
  if (spans_) {
    root = spans_->StartTrace("read", span_node_, read_cursor_,
                              read_cursor_ + len);
    done = [this, root, done = std::move(done)](
               Status status, std::vector<uint8_t> data) mutable {
      spans_->EndSpan(root);
      done(status, std::move(data));
    };
  }
  auto acc = std::make_shared<std::vector<uint8_t>>();
  // Consume bytes left over from the previous call's last page first.
  if (!tail_leftover_.empty()) {
    size_t take = std::min(len, tail_leftover_.size());
    acc->assign(tail_leftover_.begin(), tail_leftover_.begin() + take);
    tail_leftover_.erase(tail_leftover_.begin(),
                         tail_leftover_.begin() + take);
  }
  ReadTailLoop(driver, len, std::move(acc), root, std::move(done), 0);
}

void XLogClient::ReadTailLoop(nvme::Driver* driver, size_t len,
                              std::shared_ptr<std::vector<uint8_t>> acc,
                              obs::SpanContext ctx, ReadCallback done,
                              uint32_t rereads) {
  obs::ScopedContext scope(spans_, ctx);
  if (acc->size() >= len) {
    // Stash any surplus from the last parsed page for the next call.
    tail_leftover_.insert(tail_leftover_.end(), acc->begin() + len,
                          acc->end());
    acc->resize(len);
    done(Status::OK(), std::move(*acc));
    return;
  }
  // Is the next destage page complete? The destaged counter advances in
  // stream order, so any progress past our cursor means page read_seq_ is
  // fully on the conventional side.
  ReadRegister(core::kRegDestaged, [this, driver, len, acc = std::move(acc),
                                    ctx, done = std::move(done), rereads](
                                       uint64_t destaged) mutable {
    destaged_cache_ = std::max(destaged_cache_, destaged);
    if (destaged_cache_ <= read_cursor_) {
      // Nothing new yet — block (fixed-interval poll: the wait is for
      // destage progress, which has no failure mode worth backing off for).
      sim_->Schedule(sim::Us(5), [this, driver, len, acc = std::move(acc),
                                  ctx, done = std::move(done)]() mutable {
        ReadTailLoop(driver, len, std::move(acc), ctx, std::move(done), 0);
      });
      return;
    }
    uint64_t lba =
        destage_start_lba_ + (read_seq_ % destage_lba_count_);
    driver->Read(lba, 1, [this, driver, len, acc = std::move(acc), ctx,
                          done = std::move(done), rereads](
                             Status status,
                             std::vector<uint8_t> page) mutable {
      if (!status.ok()) {
        if (status.IsCorruption() && replica_window_base_ != 0) {
          // Uncorrectable conventional-side read: escalate to the replica
          // over NTB instead of surfacing the error.
          ReplicaFetch(driver, len, std::move(acc), ctx, std::move(done),
                       status);
          return;
        }
        done(status, {});
        return;
      }
      Result<core::ParsedDestagePage> parsed =
          core::ParseDestagePage(page);
      if (!parsed.ok() || parsed->header.sequence != read_seq_) {
        // Page not (re)written yet at this slot. The destaged counter said
        // it is on its way, so the common case resolves in one destage
        // write time — back off exponentially with seeded jitter rather
        // than hammering the slot, and give up with a typed error once it
        // is evidently stuck (a retried slot that never lands).
        if (options_.reread_attempt_limit > 0 &&
            rereads >= options_.reread_attempt_limit) {
          ++read_deadline_failures_;
          done(Status::DeadlineExceeded(
                   "destage slot never showed the expected sequence"),
               {});
          return;
        }
        ++slot_rereads_;
        sim::SimTime delay = options_.reread_backoff;
        for (uint32_t i = 0;
             i < rereads && delay < options_.reread_backoff_max; ++i) {
          delay *= 2;
        }
        if (delay > options_.reread_backoff_max) {
          delay = options_.reread_backoff_max;
        }
        if (options_.reread_jitter > 0) {
          delay += static_cast<sim::SimTime>(
              jitter_rng_.NextDouble() * options_.reread_jitter *
              static_cast<double>(delay));
        }
        sim_->Schedule(delay, [this, driver, len, acc = std::move(acc),
                               ctx, done = std::move(done),
                               rereads]() mutable {
          ReadTailLoop(driver, len, std::move(acc), ctx, std::move(done),
                       rereads + 1);
        });
        return;
      }
      const auto& header = parsed->header;
      uint64_t data_begin = header.stream_offset;
      uint64_t data_end = header.stream_offset + header.data_len;
      if (read_cursor_ >= data_begin && read_cursor_ < data_end) {
        size_t skip = static_cast<size_t>(read_cursor_ - data_begin);
        acc->insert(acc->end(), parsed->data.begin() + skip,
                    parsed->data.end());
        read_cursor_ = data_end;
      } else if (read_cursor_ >= data_end) {
        // Fully consumed already (shouldn't normally happen).
      }
      ++read_seq_;
      ReadTailLoop(driver, len, std::move(acc), ctx, std::move(done), 0);
    });
  });
}

void XLogClient::ReplicaFetch(nvme::Driver* driver, size_t len,
                              std::shared_ptr<std::vector<uint8_t>> acc,
                              obs::SpanContext ctx, ReadCallback done,
                              Status local_status) {
  // The conventional-side copy of page read_seq_ is gone, but the same
  // stream bytes were persisted in the replica's PM ring before the destage
  // acked them. Pull the lost extent straight out of that ring over the NTB
  // window and skip the dead slot.
  obs::SpanContext fetch_ctx;
  if (spans_) {
    fetch_ctx =
        spans_->StartSpan(obs::Stage::kReplicaFetch, span_node_, ctx);
  }
  uint64_t capacity = core::DestagePayloadCapacity(driver->block_bytes());
  fabric_->HostRead(
      replica_window_base_ + core::kRegLocalCredit, 8,
      [this, driver, len, acc = std::move(acc), ctx, fetch_ctx,
       done = std::move(done), local_status,
       capacity](std::vector<uint8_t> raw) mutable {
        uint64_t credit = 0;
        std::memcpy(&credit, raw.data(), 8);
        // The lost page started at or before our cursor and carried at most
        // `capacity` payload bytes, and the destaged counter already covers
        // its end — so fetching [cursor, min(cursor + capacity, destaged))
        // covers the whole page and never undershoots into the next slot's
        // range. Overshoot into later (readable) pages is harmless: the
        // normal consume logic skips already-consumed prefixes.
        uint64_t fetch_end =
            std::min(read_cursor_ + capacity, destaged_cache_);
        bool covered = credit >= fetch_end && fetch_end > read_cursor_;
        bool overwritten = credit - read_cursor_ > ring_bytes_;
        if (!covered || overwritten) {
          // Replica cannot supply the extent (not yet replicated, or its
          // ring has already wrapped past it): the loss is real.
          if (spans_) spans_->EndSpan(fetch_ctx);
          done(local_status, {});
          return;
        }
        size_t want = static_cast<size_t>(fetch_end - read_cursor_);
        uint64_t ring_offset = read_cursor_ % ring_bytes_;
        uint64_t base = replica_window_base_ + core::kRingWindowOffset;
        size_t first = static_cast<size_t>(
            std::min<uint64_t>(want, ring_bytes_ - ring_offset));
        auto finish = [this, driver, len, acc = std::move(acc), ctx,
                       fetch_ctx, done = std::move(done),
                       fetch_end](std::vector<uint8_t> bytes) mutable {
          ++replica_fetches_;
          replica_fetched_bytes_ += bytes.size();
          if (spans_) {
            spans_->SetRange(fetch_ctx, read_cursor_, fetch_end);
            spans_->EndSpan(fetch_ctx);
          }
          acc->insert(acc->end(), bytes.begin(), bytes.end());
          read_cursor_ = fetch_end;
          ++read_seq_;  // past the dead slot
          ReadTailLoop(driver, len, std::move(acc), ctx, std::move(done), 0);
        };
        if (first < want) {
          // The extent wraps the replica ring: two window reads.
          fabric_->HostRead(
              base + ring_offset, first,
              [this, base, want, first, finish = std::move(finish)](
                  std::vector<uint8_t> head) mutable {
                fabric_->HostRead(
                    base, want - first,
                    [head = std::move(head), finish = std::move(finish)](
                        std::vector<uint8_t> tail) mutable {
                      head.insert(head.end(), tail.begin(), tail.end());
                      finish(std::move(head));
                    });
              });
        } else {
          fabric_->HostRead(base + ring_offset, want, std::move(finish));
        }
      });
}

Result<uint64_t> XLogClient::XAlloc(size_t len) {
  if (len == 0) return Status::InvalidArgument("empty allocation");
  if (len > queue_bytes_) {
    return Status::InvalidArgument(
        "allocation exceeds the staging window; split it");
  }
  uint64_t offset = written_;
  written_ += len;
  allocations_.emplace(offset, Allocation{len, false});
  PushBarrier();
  return offset;
}

void XLogClient::WriteAt(uint64_t stream_offset, const uint8_t* data,
                         size_t len, DoneCallback done) {
  auto it = allocations_.upper_bound(stream_offset);
  if (it == allocations_.begin()) {
    done(Status::InvalidArgument("write outside any allocation"));
    return;
  }
  --it;
  if (stream_offset + len > it->first + it->second.len || it->second.freed) {
    done(Status::InvalidArgument("write outside an active allocation"));
    return;
  }
  obs::SpanContext root;
  if (spans_) {
    root = spans_->StartTrace("writeat", span_node_, stream_offset,
                              stream_offset + len);
  }
  obs::ScopedContext scope(spans_, root);
  uint64_t ring_offset = stream_offset % ring_bytes_;
  uint64_t base = cmb_base_ + core::kRingWindowOffset;
  size_t first =
      static_cast<size_t>(std::min<uint64_t>(len, ring_bytes_ - ring_offset));
  auto posted = [this, root, done = std::move(done)]() {
    if (spans_) spans_->EndSpan(root);
    done(Status::OK());
  };
  if (first < len) {
    store_engine_.Store(base + ring_offset, data, first, nullptr);
    store_engine_.Store(base, data + first, len - first, std::move(posted));
  } else {
    store_engine_.Store(base + ring_offset, data, len, std::move(posted));
  }
}

Status XLogClient::XFree(uint64_t stream_offset) {
  auto it = allocations_.find(stream_offset);
  if (it == allocations_.end()) {
    return Status::NotFound("no allocation at that offset");
  }
  if (it->second.freed) {
    return Status::FailedPrecondition("allocation already freed");
  }
  it->second.freed = true;
  // Drop fully-freed prefix entries.
  while (!allocations_.empty() && allocations_.begin()->second.freed) {
    allocations_.erase(allocations_.begin());
  }
  PushBarrier();
  return Status::OK();
}

void XLogClient::PushBarrier() {
  uint64_t barrier = ~0ull;
  if (!allocations_.empty()) barrier = allocations_.begin()->first;
  uint8_t payload[8];
  std::memcpy(payload, &barrier, 8);
  fabric_->HostWrite(cmb_base_ + core::kRegDestageBarrier, payload, 8, 8);
}

}  // namespace xssd::host
