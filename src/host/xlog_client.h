#ifndef XSSD_HOST_XLOG_CLIENT_H_
#define XSSD_HOST_XLOG_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "core/registers.h"
#include "nvme/driver.h"
#include "obs/span.h"
#include "pcie/fabric.h"
#include "pcie/store_engine.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace xssd::host {

/// \brief Client options.
struct XLogClientOptions {
  /// MMIO mapping mode for the ring window. Write-combining is the fast
  /// configuration (paper §6.2); uncached exists for the Figure 10 sweep.
  pcie::MmioMode mmio_mode = pcie::MmioMode::kWriteCombining;
  /// Fixed CPU cost charged per credit-register poll (call + load).
  sim::SimTime poll_cpu_overhead = sim::Ns(60);
  /// Keep appends within ring capacity of the destage head. The device's
  /// flow control is advisory (paper §4.1); raw-intake microbenchmarks
  /// (Figure 10) turn this off.
  bool respect_ring_capacity = true;
  /// x_fsync gives up when the credit counter makes no progress for this
  /// long and the device reports itself halted (crash/power fail); Sync
  /// then fails with Unavailable so the caller can Reconnect(). 0 waits
  /// forever (the seed behaviour).
  sim::SimTime sync_stall_timeout = 0;
  /// With a stall timeout set, also fail a Sync whose counter stalled on a
  /// device that is *alive* — with DeadlineExceeded, distinguishing "log
  /// stream stuck" (replication stalled, fenced writer) from "device died"
  /// (Unavailable). Off by default: a healthy-but-slow device should be
  /// waited out, and only HA-aware callers retry on DeadlineExceeded.
  bool fail_on_stall = false;
  /// Tail-read slot reread backoff. When the destaged counter says page
  /// read_seq_ is on the conventional side but the ring slot does not parse
  /// to that sequence yet (destage write still landing, or a retried slot),
  /// the client rereads the slot after `reread_backoff`, doubling per
  /// consecutive miss up to `reread_backoff_max`.
  sim::SimTime reread_backoff = sim::Us(5);
  sim::SimTime reread_backoff_max = sim::Us(160);
  /// Seeded uniform jitter added on top of each backoff step, as a fraction
  /// of the current delay, so concurrent readers de-synchronise instead of
  /// hammering the drive in lockstep. 0 disables.
  double reread_jitter = 0.25;
  /// Fail the tail read with DeadlineExceeded after this many consecutive
  /// rereads of one slot — the slot is evidently stuck, not merely slow.
  /// 0 retries forever (the seed behaviour).
  uint32_t reread_attempt_limit = 0;
  /// Seed of the client-side jitter rng (independent of the device seed).
  uint64_t jitter_seed = 0x9E3779B9;
};

/// \brief Host-side fast-path client for one Villars device: the engine
/// under the x_pwrite / x_fsync / x_pread drop-ins (paper §5.1) and the
/// x_alloc / x_free advanced API (§5.2).
///
/// The append protocol follows Figure 8: write chunks into the CMB ring
/// window using all available credits, then pause and re-read the credit
/// counter; x_fsync polls the counter until everything written has retired
/// to PM (and, under eager replication, to every secondary). These are not
/// system calls — no kernel crossing is charged, only MMIO traffic.
class XLogClient {
 public:
  using DoneCallback = std::function<void(Status)>;
  using ReadCallback = std::function<void(Status, std::vector<uint8_t>)>;

  XLogClient(sim::Simulator* sim, pcie::PcieFabric* fabric,
             uint64_t cmb_base, XLogClientOptions options = {});

  XLogClient(const XLogClient&) = delete;
  XLogClient& operator=(const XLogClient&) = delete;

  /// Read device geometry (queue size, ring size, destage ring) off the
  /// control page. Functional; models one-time mmap/negotiation.
  Status Setup();

  /// Adopt the device's current log tail as this client's append position.
  /// Required after a failover promotion: a secondary's ring already holds
  /// the replicated stream, and the new primary must continue appending
  /// where it ends rather than at offset 0.
  Status ResumeAtDeviceTail();

  /// Re-establish the session after the device changed underneath the
  /// client: re-reads geometry and adopts the device's current tail as the
  /// append position. If the device's destage epoch changed (crash/power
  /// failure + Reboot(), or an HA truncation), the tail-read cursors reset
  /// to the new epoch's stream and outstanding allocations are discarded —
  /// their bytes died with the fast side. If the epoch is unchanged (the
  /// local device was *promoted*, its log intact), cursors and allocations
  /// are preserved: the client simply resumes appending at the device tail.
  Status Reconnect();

  /// Sessions established (initial Setup excluded).
  uint64_t reconnects() const { return reconnects_; }
  /// Syncs that failed because the device halted underneath them.
  uint64_t sync_failures() const { return sync_failures_; }

  // -- Append path (x_pwrite) ----------------------------------------------

  /// Append `len` bytes to the log. `done` fires when every chunk has been
  /// posted to the device (not necessarily persisted — call Sync for that).
  void Append(const uint8_t* data, size_t len, DoneCallback done);

  /// Wait until the credit counter covers everything appended (x_fsync).
  void Sync(DoneCallback done);

  /// Append+Sync in one call.
  void AppendDurable(const uint8_t* data, size_t len, DoneCallback done);

  /// Total bytes appended (stream offset of the next byte).
  uint64_t written() const { return written_; }
  /// Last credit value observed.
  uint64_t credit_cache() const { return credit_cache_; }
  /// Device destage epoch observed at the last Setup()/Reconnect().
  uint64_t epoch_cache() const { return epoch_cache_; }
  /// Number of credit-register polls issued (flow-control cost metric).
  uint64_t credit_polls() const { return credit_polls_; }

  // -- Tail-read path (x_pread, §5.1) ---------------------------------------

  /// Read the next `len` bytes of the destaged log tail, blocking (in
  /// virtual time) until the Destage module has moved enough data to the
  /// conventional side. Reads advance an internal cursor; `driver` performs
  /// the conventional-side NVMe reads.
  void ReadTail(nvme::Driver* driver, size_t len, ReadCallback done);

  uint64_t read_cursor() const { return read_cursor_; }
  /// Tail-read slot rereads issued (the backoff path above).
  uint64_t slot_rereads() const { return slot_rereads_; }
  /// Tail reads failed with DeadlineExceeded on a stuck slot.
  uint64_t read_deadline_failures() const { return read_deadline_failures_; }

  // -- Replica re-fetch (uncorrectable-read escalation, §4.2 HA) ------------

  /// Arm the tail-read path to survive an uncorrectable conventional-side
  /// read: `window_base` is the local bus address of an NTB window mapped
  /// onto a replica's CMB BAR (host::StorageNode::ConnectWindowTo). When a
  /// destage-ring read fails with Corruption, the client reads the
  /// replica's persisted credit and pulls the lost page's stream extent
  /// straight out of the replica's PM ring over the window, then resumes
  /// past the dead slot — no client-visible error. 0 disarms (seed
  /// behaviour: Corruption propagates to the caller).
  void SetReplicaWindow(uint64_t window_base) {
    replica_window_base_ = window_base;
  }
  /// Lost extents successfully re-fetched from the replica.
  uint64_t replica_fetches() const { return replica_fetches_; }
  /// Stream bytes recovered over the replica window.
  uint64_t replica_fetched_bytes() const { return replica_fetched_bytes_; }

  // -- Advanced API (x_alloc / x_free, §5.2) --------------------------------

  /// Reserve `len` bytes of the stream for random-order filling. The area
  /// is withheld from destaging until freed. Returns the stream offset.
  Result<uint64_t> XAlloc(size_t len);

  /// Write inside an allocated area (no credit gating; the allocation
  /// discipline bounds outstanding bytes).
  void WriteAt(uint64_t stream_offset, const uint8_t* data, size_t len,
               DoneCallback done);

  /// Mark an allocated area filled; once the lowest active area is freed
  /// the destage barrier advances past it.
  Status XFree(uint64_t stream_offset);

  uint64_t queue_bytes() const { return queue_bytes_; }
  uint64_t ring_bytes() const { return ring_bytes_; }

  /// Attach span tracing (nullptr detaches). Each Append/Sync/ReadTail/
  /// WriteAt call mints a root request span covering its stream range;
  /// device-side spans nest under it through the fabric's context relay.
  void SetSpans(obs::SpanRecorder* spans, const std::string& node_tag);

 private:
  /// One stage of the Append loop: write what the window allows, then poll.
  /// `ctx` is the root request span, re-established as the ambient context
  /// at every asynchronous re-entry.
  void AppendLoop(std::shared_ptr<std::vector<uint8_t>> data, size_t offset,
                  obs::SpanContext ctx, DoneCallback done);

  /// Store `len` bytes at stream offset `written_` (handles ring wrap).
  void StoreChunk(const uint8_t* data, size_t len,
                  sim::Simulator::Callback posted);

  /// Async read of a control register.
  void ReadRegister(uint64_t reg, std::function<void(uint64_t)> done);

  void SyncLoop(obs::SpanContext ctx, DoneCallback done,
                sim::SimTime last_progress);
  void ReadTailLoop(nvme::Driver* driver, size_t len,
                    std::shared_ptr<std::vector<uint8_t>> acc,
                    obs::SpanContext ctx, ReadCallback done,
                    uint32_t rereads);
  /// Recover the lost page's stream extent from the replica ring after an
  /// uncorrectable destage-ring read; falls back to `local_status` when the
  /// replica cannot cover it (not yet replicated, or already overwritten).
  void ReplicaFetch(nvme::Driver* driver, size_t len,
                    std::shared_ptr<std::vector<uint8_t>> acc,
                    obs::SpanContext ctx, ReadCallback done,
                    Status local_status);
  void PushBarrier();

  sim::Simulator* sim_;
  pcie::PcieFabric* fabric_;
  uint64_t cmb_base_;
  XLogClientOptions options_;
  pcie::StoreEngine store_engine_;

  uint64_t queue_bytes_ = 0;
  uint64_t ring_bytes_ = 0;
  uint64_t destage_start_lba_ = 0;
  uint64_t destage_lba_count_ = 0;

  uint64_t written_ = 0;
  uint64_t credit_cache_ = 0;
  uint64_t epoch_cache_ = 0;
  uint64_t destaged_cache_ = 0;
  uint64_t credit_polls_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t sync_failures_ = 0;

  // x_pread cursors.
  uint64_t read_cursor_ = 0;
  uint64_t read_seq_ = 0;  ///< next destage-ring sequence to parse
  std::vector<uint8_t> tail_leftover_;  ///< page bytes past the last read
  uint64_t slot_rereads_ = 0;
  uint64_t read_deadline_failures_ = 0;

  // Replica re-fetch (0 = disarmed).
  uint64_t replica_window_base_ = 0;
  uint64_t replica_fetches_ = 0;
  uint64_t replica_fetched_bytes_ = 0;

  sim::Rng jitter_rng_;

  // x_alloc state.
  struct Allocation {
    uint64_t len;
    bool freed;
  };
  std::map<uint64_t, Allocation> allocations_;  // offset -> state
  uint64_t alloc_head_ = 0;

  obs::SpanRecorder* spans_ = nullptr;
  uint16_t span_node_ = 0;
};

}  // namespace xssd::host

#endif  // XSSD_HOST_XLOG_CLIENT_H_
