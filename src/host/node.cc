#include "host/node.h"

#include "core/validate.h"
#include "host/sync.h"

namespace xssd::host {

namespace {

ntb::NtbConfig NodeNtbConfig() {
  ntb::NtbConfig config;
  config.scratchpad_offset = NodeLayout::kNtbScratchpadOffset;
  config.scratchpad_bytes = NodeLayout::kScratchpadBytes;
  return config;
}

}  // namespace

StorageNode::StorageNode(sim::Simulator* sim,
                         const core::VillarsConfig& device_config,
                         const pcie::FabricConfig& fabric_config,
                         std::string name, XLogClientOptions client_options)
    : sim_(sim),
      name_(std::move(name)),
      fabric_(sim, fabric_config, name_ + "/fabric"),
      device_(sim, &fabric_, device_config, name_ + "/villars"),
      driver_(sim, &fabric_, &device_.controller(), NodeLayout::kBar0Base),
      ntb_(sim, &fabric_, NodeNtbConfig(), name_ + "/ntb"),
      client_(std::make_unique<XLogClient>(sim, &fabric_,
                                           NodeLayout::kCmbBase,
                                           client_options)) {}

Status StorageNode::Init() {
  // Initialization timers and queue polls armed from here must land in this
  // node's scheduler domain, not default domain 0.
  sim::Simulator::DomainScope scope(sim_, fabric_.domain());
  XSSD_RETURN_IF_ERROR(core::ValidateConfig(device_.config()));
  XSSD_RETURN_IF_ERROR(
      device_.Attach(NodeLayout::kBar0Base, NodeLayout::kCmbBase));
  XSSD_RETURN_IF_ERROR(fabric_.AddMmioRegion(
      NodeLayout::kNtbBase,
      NodeLayout::kNtbWindowBytes * core::kMaxPeers +
          NodeLayout::kScratchpadBytes,
      &ntb_, name_ + "/ntb-bar"));
  ntb_attached_ = true;
  XSSD_RETURN_IF_ERROR(driver_.Initialize());
  XSSD_RETURN_IF_ERROR(client_->Setup());
  return Status::OK();
}

void StorageNode::EnableMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) {
  device_.EnableMetrics(registry, prefix);
  fabric_.SetMetrics(registry, prefix);
  ntb_.SetMetrics(registry, prefix);
}

void StorageNode::EnableSpans(obs::SpanRecorder* spans,
                              const std::string& node_tag) {
  device_.EnableSpans(spans, node_tag);
  fabric_.SetSpans(spans);
  ntb_.SetSpans(spans, node_tag);
  driver_.SetSpans(spans, node_tag);
  if (client_) client_->SetSpans(spans, node_tag);
}

void StorageNode::ArmFaults(fault::FaultInjector* injector,
                            bool install_crash_handler) {
  device_.ArmFaults(injector, install_crash_handler);
  fabric_.set_fault_injector(injector);
  ntb_.set_fault_injector(injector);
}

Result<uint64_t> StorageNode::ConnectWindowTo(uint32_t slot,
                                              StorageNode& peer) {
  if (!ntb_attached_) return Status::FailedPrecondition("Init() first");
  uint64_t window_offset = slot * NodeLayout::kNtbWindowBytes;
  XSSD_RETURN_IF_ERROR(ntb_.AddWindow(window_offset,
                                      peer.device().cmb_bar_bytes(),
                                      &peer.fabric(),
                                      NodeLayout::kCmbBase));
  return NodeLayout::kNtbBase + window_offset;
}

Result<uint64_t> StorageNode::ConnectMulticastWindowTo(
    uint32_t slot, const std::vector<StorageNode*>& peers) {
  if (!ntb_attached_) return Status::FailedPrecondition("Init() first");
  if (peers.empty()) return Status::InvalidArgument("no multicast members");
  uint64_t window_offset = slot * NodeLayout::kNtbWindowBytes;
  std::vector<ntb::NtbAdapter::MulticastTarget> members;
  uint64_t size = 0;
  for (StorageNode* peer : peers) {
    members.push_back(ntb::NtbAdapter::MulticastTarget{
        &peer->fabric(), NodeLayout::kCmbBase});
    size = std::max(size, peer->device().cmb_bar_bytes());
  }
  XSSD_RETURN_IF_ERROR(
      ntb_.AddMulticastWindow(window_offset, size, std::move(members)));
  return NodeLayout::kNtbBase + window_offset;
}

Result<uint64_t> StorageNode::ConnectScratchpadWindowTo(uint32_t slot,
                                                        StorageNode& peer) {
  if (!ntb_attached_) return Status::FailedPrecondition("Init() first");
  uint64_t window_offset = slot * NodeLayout::kNtbWindowBytes;
  XSSD_RETURN_IF_ERROR(ntb_.AddWindow(window_offset,
                                      NodeLayout::kScratchpadBytes,
                                      &peer.fabric(), ScratchpadBase()));
  return NodeLayout::kNtbBase + window_offset;
}

Status ReplicationGroup::AdminSync(StorageNode& node, nvme::Command cmd) {
  // The admin submission (and anything the device arms while handling it,
  // e.g. the shadow-update timer) belongs to the target node's domain.
  sim::Simulator::DomainScope scope(&node.simulator(),
                                    node.fabric().domain());
  SyncRunner runner(&node.simulator());
  return runner.Await([&](std::function<void(Status)> done) {
    node.driver().Admin(cmd, [done = std::move(done)](
                                 nvme::Completion cpl) mutable {
      done(cpl.ok() ? Status::OK()
                    : Status::IoError("admin command failed"));
    });
  });
}

Status ReplicationGroup::Setup(core::ReplicationProtocol protocol,
                               sim::SimTime update_period) {
  if (nodes_.size() < 2) {
    return Status::InvalidArgument("need a primary and >= 1 secondary");
  }
  StorageNode& primary = *nodes_[0];

  for (size_t i = 1; i < nodes_.size(); ++i) {
    StorageNode& secondary = *nodes_[i];
    uint32_t peer_index = static_cast<uint32_t>(i - 1);

    // Primary -> secondary window (mirror stream path).
    Result<uint64_t> fwd =
        primary.ConnectWindowTo(peer_index, secondary);
    if (!fwd.ok()) return fwd.status();

    // Secondary -> primary window (shadow-counter path); slot 0 on the
    // secondary always points home.
    Result<uint64_t> back = secondary.ConnectWindowTo(0, primary);
    if (!back.ok()) return back.status();

    // Tell the primary about its peer.
    nvme::Command add_peer;
    add_peer.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdAddPeer);
    add_peer.cdw10 = peer_index;
    add_peer.cdw11 = static_cast<uint32_t>(*fwd);
    add_peer.cdw12 = static_cast<uint32_t>(*fwd >> 32);
    XSSD_RETURN_IF_ERROR(AdminSync(primary, add_peer));

    // Configure the secondary: role + where its shadow mailbox lives.
    uint64_t shadow_addr =
        *back + core::kRegShadowBase + 8ull * peer_index;
    nvme::Command set_role;
    set_role.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetRole);
    set_role.cdw10 = static_cast<uint32_t>(core::Role::kSecondary);
    set_role.cdw11 = static_cast<uint32_t>(shadow_addr);
    set_role.cdw12 = static_cast<uint32_t>(shadow_addr >> 32);
    XSSD_RETURN_IF_ERROR(AdminSync(secondary, set_role));

    nvme::Command period;
    period.opcode =
        static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetUpdatePeriod);
    period.cdw10 = static_cast<uint32_t>(update_period);
    XSSD_RETURN_IF_ERROR(AdminSync(secondary, period));
  }

  nvme::Command set_protocol;
  set_protocol.opcode =
      static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetReplication);
  set_protocol.cdw10 = static_cast<uint32_t>(protocol);
  XSSD_RETURN_IF_ERROR(AdminSync(primary, set_protocol));

  nvme::Command set_role;
  set_role.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetRole);
  set_role.cdw10 = static_cast<uint32_t>(core::Role::kPrimary);
  return AdminSync(primary, set_role);
}

}  // namespace xssd::host
