#ifndef XSSD_HOST_XCALLS_H_
#define XSSD_HOST_XCALLS_H_

#include <cstdint>
#include <sys/types.h>

#include "host/xlog_client.h"
#include "nvme/driver.h"
#include "sim/simulator.h"

namespace xssd::host {

/// Drop-in system-call replacements (paper §5.1). Shapes mirror POSIX:
/// x_pwrite appends `count` bytes (no descriptor/offset — the call
/// implicitly targets the device's fast side), x_fsync blocks until
/// everything written has persisted per the active replication protocol,
/// x_pread reads the growing log tail from the conventional side.
///
/// These are *not* system calls: no kernel crossing is modeled, matching
/// the paper's implementation note. Blocking is realized by pumping the
/// simulator (SyncRunner). Returns follow POSIX conventions: byte counts
/// on success, -1 on failure.
ssize_t x_pwrite(sim::Simulator& sim, XLogClient& client, const void* buf,
                 size_t count);

int x_fsync(sim::Simulator& sim, XLogClient& client);

ssize_t x_pread(sim::Simulator& sim, XLogClient& client,
                nvme::Driver& driver, void* buf, size_t count);

}  // namespace xssd::host

#endif  // XSSD_HOST_XCALLS_H_
