#ifndef XSSD_HOST_SYNC_H_
#define XSSD_HOST_SYNC_H_

#include <functional>
#include <optional>
#include <utility>

#include "common/status.h"
#include "sim/simulator.h"

namespace xssd::host {

/// \brief Blocking facade over the asynchronous device API.
///
/// The drop-in calls of paper §5.1 are blocking; in the discrete-event
/// world "blocking" means driving the simulator until the completion
/// callback fires. SyncRunner wraps that pattern. It is intended for
/// single-logical-thread usage (examples, tools, recovery); concurrent
/// workloads stay on the asynchronous API.
class SyncRunner {
 public:
  explicit SyncRunner(sim::Simulator* sim) : sim_(sim) {}

  /// Run `op`, pumping the simulator until its callback delivers a Status.
  Status Await(
      const std::function<void(std::function<void(Status)>)>& op) {
    std::optional<Status> result;
    op([&result](Status status) { result = std::move(status); });
    bool completed =
        sim_->RunWhile([&result]() { return result.has_value(); });
    if (!completed) {
      return Status::Internal("event queue drained before completion");
    }
    return *result;
  }

  /// Run `op` that produces a Status plus a value.
  template <typename T>
  Result<T> AwaitValue(
      const std::function<void(std::function<void(Status, T)>)>& op) {
    std::optional<Status> status;
    std::optional<T> value;
    op([&](Status s, T v) {
      status = std::move(s);
      value = std::move(v);
    });
    bool completed =
        sim_->RunWhile([&status]() { return status.has_value(); });
    if (!completed) {
      return Status::Internal("event queue drained before completion");
    }
    if (!status->ok()) return *status;
    return std::move(*value);
  }

 private:
  sim::Simulator* sim_;
};

}  // namespace xssd::host

#endif  // XSSD_HOST_SYNC_H_
