#ifndef XSSD_HOST_RECOVERY_H_
#define XSSD_HOST_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nvme/driver.h"
#include "sim/simulator.h"

namespace xssd::host {

/// \brief Result of scanning the destage ring after a crash.
struct RecoveredLog {
  /// Stream offset of the first recovered byte (older bytes were
  /// overwritten in the ring and must come from archived storage).
  uint64_t start_offset = 0;
  /// The contiguous recovered byte run.
  std::vector<uint8_t> data;
  /// Device epoch the newest recovered page was written in.
  uint32_t epoch = 0;
  uint64_t pages_scanned = 0;
  uint64_t pages_valid = 0;
  /// Slots whose reads kept failing even after the bounded re-reads.
  uint64_t pages_unreadable = 0;

  uint64_t end_offset() const { return start_offset + data.size(); }
};

/// \brief Post-crash log recovery (paper §4.1 crash consistency): read the
/// destaging ring off the conventional side, validate page CRCs, and
/// reassemble the longest contiguous tail of the append stream.
///
/// The guarantee under test: the recovered run always covers at least every
/// byte the credit counter acknowledged before the crash, and never spans a
/// gap. Blocking (pumps the simulator).
Result<RecoveredLog> RecoverLog(sim::Simulator& sim, nvme::Driver& driver,
                                uint64_t ring_start_lba,
                                uint64_t ring_lba_count);

}  // namespace xssd::host

#endif  // XSSD_HOST_RECOVERY_H_
