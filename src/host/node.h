#ifndef XSSD_HOST_NODE_H_
#define XSSD_HOST_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/villars_device.h"
#include "host/xlog_client.h"
#include "ntb/ntb.h"
#include "nvme/driver.h"
#include "pcie/fabric.h"

namespace xssd::host {

/// Standard bus-address layout of a simulated server.
struct NodeLayout {
  static constexpr uint64_t kBar0Base = 0xF000'0000ull;
  static constexpr uint64_t kCmbBase = 0xE000'0000ull;
  static constexpr uint64_t kNtbBase = 0x2'0000'0000ull;  // above 4 GiB
  /// One NTB window per potential peer, 256 MiB apart (covers a DRAM-sized
  /// CMB BAR).
  static constexpr uint64_t kNtbWindowBytes = 0x1000'0000ull;
  /// Doorbell/scratchpad page at the top of the NTB BAR, past every peer
  /// window: peers post heartbeats here, the local HA supervisor reads
  /// them back (ntb::NtbConfig scratchpad region).
  static constexpr uint64_t kNtbScratchpadOffset =
      kNtbWindowBytes * core::kMaxPeers;
  static constexpr uint64_t kScratchpadBytes = 4096;
};

/// \brief One simulated server: a PCIe fabric with a Villars device, an
/// NVMe driver, an NTB adapter, and a fast-path client.
///
/// This is the unit the examples, benchmarks, and integration tests
/// compose. Nothing here adds behaviour — it only wires the pieces at the
/// standard addresses.
class StorageNode {
 public:
  StorageNode(sim::Simulator* sim, const core::VillarsConfig& device_config,
              const pcie::FabricConfig& fabric_config, std::string name,
              XLogClientOptions client_options = {});

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  /// Attach device + NTB BARs, initialize the driver, set up the client.
  Status Init();

  /// Map NTB window `slot` onto `peer`'s CMB BAR. Returns the local bus
  /// address through which the peer's CMB is reachable.
  Result<uint64_t> ConnectWindowTo(uint32_t slot, StorageNode& peer);

  /// Map NTB window `slot` as a hardware multicast group covering every
  /// peer's CMB BAR (§4.2). Returns the local bus address of the window.
  Result<uint64_t> ConnectMulticastWindowTo(
      uint32_t slot, const std::vector<StorageNode*>& peers);

  /// Map NTB window `slot` onto `peer`'s NTB scratchpad page (heartbeat
  /// mailbox). Returns the local bus address of the window.
  Result<uint64_t> ConnectScratchpadWindowTo(uint32_t slot,
                                             StorageNode& peer);

  /// Local bus address of this node's own scratchpad page (where peers'
  /// heartbeats land; read with fabric().FunctionalRead).
  static constexpr uint64_t ScratchpadBase() {
    return NodeLayout::kNtbBase + NodeLayout::kNtbScratchpadOffset;
  }

  /// Register metrics for the device, fabric, and NTB adapter under
  /// `prefix` (empty for the acceptance-standard plain "cmb.*" names;
  /// per-node prefixes like "pri." disambiguate multi-node benches).
  void EnableMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix = "");

  /// Attach span tracing to every component of this node — client, driver,
  /// device, fabric relay, NTB adapter — under node tag `node_tag`
  /// (nullptr detaches).
  void EnableSpans(obs::SpanRecorder* spans, const std::string& node_tag);

  /// Attach a fault injector to this node's device, fabric, and NTB
  /// adapter (nullptr detaches). Forwards to
  /// core::VillarsDevice::ArmFaults for the device-internal hooks.
  void ArmFaults(fault::FaultInjector* injector,
                 bool install_crash_handler = true);

  pcie::PcieFabric& fabric() { return fabric_; }
  core::VillarsDevice& device() { return device_; }
  nvme::Driver& driver() { return driver_; }
  ntb::NtbAdapter& ntb() { return ntb_; }
  XLogClient& client() { return *client_; }
  sim::Simulator& simulator() { return *sim_; }
  const std::string& name() const { return name_; }

 private:
  sim::Simulator* sim_;
  std::string name_;
  pcie::PcieFabric fabric_;
  core::VillarsDevice device_;
  nvme::Driver driver_;
  ntb::NtbAdapter ntb_;
  std::unique_ptr<XLogClient> client_;
  bool ntb_attached_ = false;
};

/// \brief Wires a primary and N secondaries into a replication group using
/// only the public interfaces: NTB windows plus the vendor-specific NVMe
/// admin commands of §4.2.
class ReplicationGroup {
 public:
  /// `nodes[0]` becomes the primary, the rest secondaries.
  ReplicationGroup(std::vector<StorageNode*> nodes)
      : nodes_(std::move(nodes)) {}

  /// Establish windows, roles, protocol, and the shadow-counter update
  /// period on every member. Blocking (pumps the simulator).
  Status Setup(core::ReplicationProtocol protocol,
               sim::SimTime update_period);

  StorageNode& primary() { return *nodes_[0]; }
  StorageNode& secondary(size_t i) { return *nodes_[i + 1]; }
  size_t secondary_count() const { return nodes_.size() - 1; }

 private:
  /// Issue one admin command synchronously via the node's driver.
  Status AdminSync(StorageNode& node, nvme::Command cmd);

  std::vector<StorageNode*> nodes_;
};

}  // namespace xssd::host

#endif  // XSSD_HOST_NODE_H_
