#ifndef XSSD_COMMON_STATUS_H_
#define XSSD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace xssd {

/// Error taxonomy used across the library. Mirrors the usual storage-engine
/// set (RocksDB-style): every fallible call returns a Status (or a Result<T>)
/// instead of throwing. Exceptions are never used on data paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kCorruption,
  kIoError,
  kNotSupported,
  kAborted,
  kInternal,
  kDeadlineExceeded,
};

/// \brief Lightweight status object carrying an error code and message.
///
/// The OK status carries no allocation. Statuses are cheap to copy and move
/// and are the only error-reporting channel in the library.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Human-readable rendering, e.g. "Corruption: bad page crc".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief A value-or-status pair, analogous to absl::StatusOr.
///
/// Result<T> either holds a T (status is OK) or a non-OK Status. Accessing
/// the value of an errored Result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error status keeps call sites
  /// terse (`return value;` / `return Status::NotFound(...);`).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace xssd

/// Propagate a non-OK status to the caller (function must return Status).
#define XSSD_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::xssd::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

#endif  // XSSD_COMMON_STATUS_H_
