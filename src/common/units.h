#ifndef XSSD_COMMON_UNITS_H_
#define XSSD_COMMON_UNITS_H_

#include <cstdint>

namespace xssd {

/// Byte-size constants. All capacities in the library are expressed in bytes
/// using these helpers; no raw "1024 * 1024" literals on call sites.
inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

constexpr uint64_t KiB(uint64_t n) { return n * kKiB; }
constexpr uint64_t MiB(uint64_t n) { return n * kMiB; }
constexpr uint64_t GiB(uint64_t n) { return n * kGiB; }

}  // namespace xssd

#endif  // XSSD_COMMON_UNITS_H_
