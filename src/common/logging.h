#ifndef XSSD_COMMON_LOGGING_H_
#define XSSD_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace xssd {

/// Diagnostic log severities. The library is quiet by default (kWarning);
/// tests and tools can lower the threshold for tracing.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
};

/// Global severity threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// Stream-collecting helper behind the XSSD_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace xssd

#define XSSD_LOG(severity)                                               \
  if (::xssd::LogLevel::severity < ::xssd::GetLogLevel()) {              \
  } else                                                                 \
    ::xssd::internal_logging::LogMessage(::xssd::LogLevel::severity,     \
                                         __FILE__, __LINE__)             \
        .stream()

/// Invariant check that stays on in release builds; prints and aborts.
#define XSSD_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::xssd::internal_logging::Emit(::xssd::LogLevel::kError, __FILE__,    \
                                     __LINE__, "CHECK failed: " #cond);     \
      ::std::abort();                                                       \
    }                                                                       \
  } while (0)

#endif  // XSSD_COMMON_LOGGING_H_
