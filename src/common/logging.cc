#include "common/logging.h"

#include <cstdio>

namespace xssd {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  if (level < g_level) return;
  // Strip directories for terseness.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line,
               msg.c_str());
}

}  // namespace internal_logging
}  // namespace xssd
