#ifndef XSSD_COMMON_CRC32_H_
#define XSSD_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace xssd {

/// CRC-32C (Castagnoli) over a byte range. Used to protect destage-page
/// headers and database log records; seed allows incremental computation.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace xssd

#endif  // XSSD_COMMON_CRC32_H_
