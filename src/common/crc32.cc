#include "common/crc32.h"

#include <array>

namespace xssd {

namespace {

// CRC-32C (Castagnoli) polynomial, reflected form.
constexpr uint32_t kPoly = 0x82F63B78u;

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto& table = Table();
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace xssd
