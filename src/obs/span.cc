#include "obs/span.h"

namespace xssd::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kRequest:
      return "request";
    case Stage::kHostPoll:
      return "host.poll";
    case Stage::kReplicationWait:
      return "replication.wait";
    case Stage::kCmbStage:
      return "cmb.stage";
    case Stage::kDestagePage:
      return "destage.page";
    case Stage::kNvmeRead:
      return "nvme.read";
    case Stage::kNtbLink:
      return "ntb.link";
    case Stage::kFlashProgram:
      return "flash.program";
    case Stage::kReplicaFetch:
      return "replica.fetch";
    case Stage::kScrubRefresh:
      return "scrub.refresh";
  }
  return "unknown";
}

int StageDepth(Stage stage) {
  switch (stage) {
    case Stage::kRequest:
      return 0;
    case Stage::kHostPoll:
      return 1;
    case Stage::kReplicationWait:
      return 2;
    case Stage::kCmbStage:
    case Stage::kDestagePage:
    case Stage::kNvmeRead:
      return 3;
    case Stage::kReplicaFetch:
    case Stage::kScrubRefresh:
      return 2;
    case Stage::kNtbLink:
    case Stage::kFlashProgram:
      return 4;
  }
  return 0;
}

uint16_t SpanRecorder::InternNode(const std::string& tag) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == tag) return static_cast<uint16_t>(i);
  }
  nodes_.push_back(tag);
  return static_cast<uint16_t>(nodes_.size() - 1);
}

SpanContext SpanRecorder::StartTrace(const char* kind, uint16_t node,
                                     uint64_t offset_begin,
                                     uint64_t offset_end) {
  Span span;
  span.id = spans_.size() + 1;
  span.trace_id = next_trace_++;
  span.stage = Stage::kRequest;
  span.node = node;
  span.start = sim_->Now();
  span.offset_begin = offset_begin;
  span.offset_end = offset_end;
  span.name = kind;
  spans_.push_back(span);
  return SpanContext{span.trace_id, span.id};
}

SpanContext SpanRecorder::StartSpan(Stage stage, uint16_t node,
                                    SpanContext parent) {
  Span span;
  span.id = spans_.size() + 1;
  if (parent.valid()) {
    span.parent = parent.span_id;
    span.trace_id = parent.trace_id;
  } else {
    // Orphan: timer- or completion-driven work with no ambient request.
    // Recorded under its own trace; joined by offset range at analysis.
    span.trace_id = next_trace_++;
  }
  span.stage = stage;
  span.node = node;
  span.start = sim_->Now();
  span.name = StageName(stage);
  spans_.push_back(span);
  return SpanContext{span.trace_id, span.id};
}

void SpanRecorder::SetRange(SpanContext ctx, uint64_t begin, uint64_t end) {
  if (ctx.span_id == 0 || ctx.span_id > spans_.size()) return;
  Span& span = spans_[ctx.span_id - 1];
  span.offset_begin = begin;
  span.offset_end = end;
}

void SpanRecorder::EndSpanAt(SpanContext ctx, sim::SimTime when) {
  if (ctx.span_id == 0 || ctx.span_id > spans_.size()) return;
  Span& span = spans_[ctx.span_id - 1];
  if (span.closed) return;
  span.end = when < span.start ? span.start : when;
  span.closed = true;
}

void SpanRecorder::Clear() {
  spans_.clear();
  next_trace_ = 1;
  current_ = SpanContext{};
}

}  // namespace xssd::obs
