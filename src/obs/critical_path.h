#ifndef XSSD_OBS_CRITICAL_PATH_H_
#define XSSD_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace xssd::obs {

/// One exclusive slice of a request's lifetime. `stage == kRequest` marks
/// time not covered by any child span — attributed to "request.self"
/// (client-side compute, scheduling gaps between polls, ...).
struct PathSegment {
  sim::SimTime begin = 0;
  sim::SimTime end = 0;
  Stage stage = Stage::kRequest;
  uint16_t node = 0;
};

/// Critical-path attribution for one completed request.
struct RequestBreakdown {
  SpanId root = 0;
  const char* kind = "";
  uint16_t node = 0;
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  std::vector<PathSegment> segments;
  /// Conservation invariant: segment durations sum exactly to end - start.
  /// True by construction of the sweep; verified honestly per request.
  bool conserved = true;
};

/// \brief Walks a SpanRecorder's store and attributes each completed
/// request's end-to-end latency to exclusive per-stage segments.
///
/// For each closed root span the analyzer gathers candidate work spans
/// that either belong to the same trace or carry a log-stream offset range
/// overlapping the root's (which re-attaches orphan spans: destage pages
/// cut by the latency timer, replication waits closed by a later shadow
/// update). Candidates are clamped to the request window and swept over
/// the boundary points; each elementary interval is charged to the deepest
/// overlapping stage (StageDepth, ties broken by stage then node then span
/// id — fully deterministic). Uncovered intervals become "request.self".
/// Because the segments partition the integer-nanosecond window, the
/// attributed durations sum *exactly* to the end-to-end latency.
class CriticalPathAnalyzer {
 public:
  explicit CriticalPathAnalyzer(const SpanRecorder* recorder)
      : recorder_(recorder) {}

  /// Breakdowns for every closed root span, in root-span-id order.
  std::vector<RequestBreakdown> Analyze() const;

 private:
  const SpanRecorder* recorder_;
};

/// \brief Aggregates request breakdowns into per-stage histograms and
/// emits the deterministic breakdown JSON.
///
/// Layout (all maps are sorted, all numbers deterministic):
/// {
///   "bench": "<name>",
///   "runs": {
///     "<label>": {
///       "requests": N, "spans": M, "conservation_violations": 0,
///       "kinds": {
///         "append": {
///           "count": n,
///           "e2e": {stat},
///           "stages": {"<node>/<stage>": {stat}, ...}
///         }, ...
///       }
///     }, ...
///   }
/// }
/// where {stat} is DurationStat::AppendJson (exact count/total/min/max,
/// log2-bucket p50/p99, non-empty buckets). Per request, each stage's
/// value is the *sum* of that stage's exclusive segments.
class BreakdownReporter {
 public:
  explicit BreakdownReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Analyze one run's recorder and fold it in under `label`.
  void AddRun(const std::string& label, const SpanRecorder& recorder);

  uint64_t request_count() const;
  uint64_t conservation_violations() const;

  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

  /// Mirror the per-stage totals into gauges
  /// (`<prefix>breakdown.<kind>.<node>.<stage>.total_us` plus per-kind
  /// `count`/`e2e.p50_us`/`e2e.p99_us`) so campaign metrics JSON carries a
  /// breakdown block per scenario. '/' in stage keys becomes '.'.
  void ExportGauges(MetricsRegistry* registry,
                    const std::string& prefix) const;

 private:
  struct KindAgg {
    uint64_t count = 0;
    DurationStat e2e;
    std::map<std::string, DurationStat> stages;
  };
  struct RunAgg {
    uint64_t requests = 0;
    uint64_t spans = 0;
    uint64_t violations = 0;
    std::map<std::string, KindAgg> kinds;
  };

  std::string bench_name_;
  std::map<std::string, RunAgg> runs_;
};

/// Dump every closed span of a recorder into a Chrome trace as complete
/// events with flow arrows keyed by span id (cat "span"). Call after
/// writer->BeginProcess(label) so the spans land in their own group.
void EmitSpansToTrace(const SpanRecorder& recorder, ChromeTraceWriter* writer);

}  // namespace xssd::obs

#endif  // XSSD_OBS_CRITICAL_PATH_H_
