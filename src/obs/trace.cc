#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace xssd::obs {

namespace {
/// Chrome trace timestamps are microseconds; print with ns resolution.
std::string TraceTs(sim::SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}
}  // namespace

ChromeTraceWriter::ChromeTraceWriter(ChromeTraceOptions options)
    : options_(options) {
  process_names_.push_back("sim");
}

uint32_t ChromeTraceWriter::BeginProcess(const std::string& name) {
  process_names_.push_back(name);
  pid_ = static_cast<uint32_t>(process_names_.size() - 1);
  return pid_;
}

void ChromeTraceWriter::Push(Event event) {
  if (events_.size() >= options_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void ChromeTraceWriter::OnEventScheduled(sim::SimTime now, sim::SimTime when,
                                         uint64_t seq) {
  (void)when;
  if (!options_.emit_flow) return;
  Push(Event{'s', pid_, now, seq, "dispatch"});
}

void ChromeTraceWriter::OnEventBegin(sim::SimTime when, uint64_t seq) {
  if (options_.emit_flow) Push(Event{'f', pid_, when, seq, "dispatch"});
  if (options_.emit_fired) Push(Event{'X', pid_, when, seq, "event"});
}

void ChromeTraceWriter::OnEventEnd(sim::SimTime when, uint64_t seq) {
  // Virtual events are instantaneous; the complete event was emitted at
  // Begin with zero duration.
  (void)when;
  (void)seq;
}

void ChromeTraceWriter::OnInstant(const char* name, sim::SimTime when) {
  Push(Event{'i', pid_, when, 0, name});
}

void ChromeTraceWriter::OnCounterSample(const char* name, sim::SimTime when,
                                        double value) {
  Event event{'C', pid_, when, 0, name};
  event.value = value;
  Push(event);
}

void ChromeTraceWriter::Write(std::ostream& out) const {
  out << "{\"traceEvents\": [";
  bool first = true;
  for (size_t pid = 0; pid < process_names_.size(); ++pid) {
    out << (first ? "\n" : ",\n")
        << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
        << ", \"tid\": 0, \"args\": {\"name\": \""
        << JsonEscape(process_names_[pid]) << "\"}}";
    first = false;
  }
  for (const Event& event : events_) {
    out << ",\n {\"name\": \"" << JsonEscape(event.name) << "\", \"ph\": \""
        << event.phase << "\", \"pid\": " << event.pid
        << ", \"tid\": 0, \"ts\": " << TraceTs(event.ts);
    switch (event.phase) {
      case 'X':
        out << ", \"dur\": 0, \"args\": {\"seq\": " << event.id << "}";
        break;
      case 'i':
        out << ", \"s\": \"p\"";
        break;
      case 'C':
        out << ", \"args\": {\"value\": " << JsonNumber(event.value) << "}";
        break;
      case 's':
      case 'f':
        out << ", \"cat\": \"sim\", \"id\": " << event.id;
        if (event.phase == 'f') out << ", \"bp\": \"e\"";
        break;
      default:
        break;
    }
    out << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ns\", \"droppedEvents\": " << dropped_
      << "}\n";
}

std::string ChromeTraceWriter::ToString() const {
  std::ostringstream out;
  Write(out);
  return out.str();
}

Status ChromeTraceWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  Write(out);
  out.flush();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace xssd::obs
