#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace xssd::obs {

namespace {
/// Chrome trace timestamps are microseconds; print with ns resolution.
std::string TraceTs(sim::SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}
}  // namespace

ChromeTraceWriter::ChromeTraceWriter(ChromeTraceOptions options)
    : options_(options) {
  process_names_.push_back("sim");
}

uint32_t ChromeTraceWriter::BeginProcess(const std::string& name) {
  process_names_.push_back(name);
  pid_ = static_cast<uint32_t>(process_names_.size() - 1);
  // A fresh simulator reuses seq numbers from 0; drop any arrows still
  // waiting on the previous run so they cannot bind to the new run's
  // events (flow ids themselves stay writer-global and unique).
  pending_flows_.clear();
  return pid_;
}

void ChromeTraceWriter::Push(Event event) {
  if (events_.size() >= options_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void ChromeTraceWriter::OnEventScheduled(sim::SimTime now, sim::SimTime when,
                                         uint64_t seq) {
  (void)when;
  if (!options_.emit_flow) return;
  uint64_t flow_id = next_flow_id_++;
  pending_flows_[seq] = flow_id;
  Push(Event{'s', pid_, now, flow_id, "dispatch"});
}

void ChromeTraceWriter::OnEventBegin(sim::SimTime when, uint64_t seq) {
  if (options_.emit_flow) {
    auto it = pending_flows_.find(seq);
    if (it != pending_flows_.end()) {
      Push(Event{'f', pid_, when, it->second, "dispatch"});
      pending_flows_.erase(it);
    }
  }
  if (options_.emit_fired) Push(Event{'X', pid_, when, seq, "event"});
}

void ChromeTraceWriter::OnEventEnd(sim::SimTime when, uint64_t seq) {
  // Virtual events are instantaneous; the complete event was emitted at
  // Begin with zero duration.
  (void)when;
  (void)seq;
}

void ChromeTraceWriter::OnInstant(const char* name, sim::SimTime when) {
  Push(Event{'i', pid_, when, 0, name});
}

void ChromeTraceWriter::OnCounterSample(const char* name, sim::SimTime when,
                                        double value) {
  Event event{'C', pid_, when, 0, name};
  event.value = value;
  Push(event);
}

void ChromeTraceWriter::EmitSpan(const std::string& name, sim::SimTime start,
                                 sim::SimTime end, uint64_t span_id) {
  Event complete{'X', pid_, start, span_id, name};
  complete.cat = "span";
  complete.dur = end - start;
  Push(complete);
  Event flow_start{'s', pid_, start, span_id, name};
  flow_start.cat = "span";
  Push(flow_start);
  Event flow_end{'f', pid_, end, span_id, name};
  flow_end.cat = "span";
  Push(flow_end);
}

void ChromeTraceWriter::Write(std::ostream& out) const {
  out << "{\"traceEvents\": [";
  bool first = true;
  for (size_t pid = 0; pid < process_names_.size(); ++pid) {
    out << (first ? "\n" : ",\n")
        << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
        << ", \"tid\": 0, \"args\": {\"name\": \""
        << JsonEscape(process_names_[pid]) << "\"}}";
    first = false;
  }
  for (const Event& event : events_) {
    out << ",\n {\"name\": \"" << JsonEscape(event.name) << "\", \"ph\": \""
        << event.phase << "\", \"pid\": " << event.pid
        << ", \"tid\": 0, \"ts\": " << TraceTs(event.ts);
    switch (event.phase) {
      case 'X':
        if (event.cat == std::string("span")) {
          out << ", \"cat\": \"span\", \"dur\": " << TraceTs(event.dur)
              << ", \"args\": {\"span\": " << event.id << "}";
        } else {
          out << ", \"dur\": 0, \"args\": {\"seq\": " << event.id << "}";
        }
        break;
      case 'i':
        out << ", \"s\": \"p\"";
        break;
      case 'C':
        out << ", \"args\": {\"value\": " << JsonNumber(event.value) << "}";
        break;
      case 's':
      case 'f':
        out << ", \"cat\": \"" << event.cat << "\", \"id\": " << event.id;
        if (event.phase == 'f') out << ", \"bp\": \"e\"";
        break;
      default:
        break;
    }
    out << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ns\", \"droppedEvents\": " << dropped_
      << "}\n";
}

std::string ChromeTraceWriter::ToString() const {
  std::ostringstream out;
  Write(out);
  return out.str();
}

Status ChromeTraceWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  Write(out);
  out.flush();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace xssd::obs
