#ifndef XSSD_OBS_JSON_H_
#define XSSD_OBS_JSON_H_

#include <ostream>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"

namespace xssd::obs {

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view s);

/// Render a double as a JSON number: integral values print without a
/// fraction, everything else with enough digits to round-trip. NaN/inf
/// (not representable in JSON) degrade to 0.
std::string JsonNumber(double value);

/// Strict RFC 8259 syntax check (no DOM). Used by the observability tests
/// to prove exported snapshots and traces are well-formed; `error` (if
/// non-null) receives a byte offset + reason on failure.
bool IsValidJson(std::string_view text, std::string* error = nullptr);

/// \brief Snapshots a MetricsRegistry to machine-readable JSON.
///
/// Layout (keys sorted, so identical runs produce identical bytes):
/// {
///   "counters":  {"cmb.append_bytes": 123, ...},
///   "gauges":    {"cmb.staging_occupancy": 0, ...},
///   "latencies": {"nvme.cmd_latency_us": {"count": 9, "min": ..,
///                 "mean": .., "p50": .., "p90": .., "p99": .., "max": ..}}
/// }
class JsonExporter {
 public:
  explicit JsonExporter(const MetricsRegistry* registry)
      : registry_(registry) {}

  void Write(std::ostream& out) const;
  std::string ToString() const;
  Status WriteFile(const std::string& path) const;

 private:
  const MetricsRegistry* registry_;
};

}  // namespace xssd::obs

#endif  // XSSD_OBS_JSON_H_
