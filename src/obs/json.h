#ifndef XSSD_OBS_JSON_H_
#define XSSD_OBS_JSON_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace xssd::obs {

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view s);

/// Render a double as a JSON number: integral values print without a
/// fraction, everything else with enough digits to round-trip. NaN/inf
/// (not representable in JSON) degrade to 0.
std::string JsonNumber(double value);

/// Strict RFC 8259 syntax check (no DOM). Used by the observability tests
/// to prove exported snapshots and traces are well-formed; `error` (if
/// non-null) receives a byte offset + reason on failure.
bool IsValidJson(std::string_view text, std::string* error = nullptr);

/// \brief Minimal JSON DOM for small config inputs (fault plans, tooling).
///
/// Deliberately tiny: values are held by value, object fields keep their
/// source order, and numbers are doubles (the inputs this serves are
/// microsecond offsets and probabilities, well inside double range).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;                           ///< kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  ///< kObject

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parse one JSON document (must consume the whole input). Rejects the
/// same syntax IsValidJson rejects; additionally bounds nesting depth.
Result<JsonValue> ParseJson(std::string_view text);

/// \brief Snapshots a MetricsRegistry to machine-readable JSON.
///
/// Layout (keys sorted, so identical runs produce identical bytes):
/// {
///   "counters":  {"cmb.append_bytes": 123, ...},
///   "gauges":    {"cmb.staging_occupancy": 0, ...},
///   "latencies": {"nvme.cmd_latency_us": {"count": 9, "min": ..,
///                 "mean": .., "p50": .., "p90": .., "p99": .., "max": ..}}
/// }
class JsonExporter {
 public:
  explicit JsonExporter(const MetricsRegistry* registry)
      : registry_(registry) {}

  void Write(std::ostream& out) const;
  std::string ToString() const;
  Status WriteFile(const std::string& path) const;

 private:
  const MetricsRegistry* registry_;
};

}  // namespace xssd::obs

#endif  // XSSD_OBS_JSON_H_
