#ifndef XSSD_OBS_WATCHDOG_H_
#define XSSD_OBS_WATCHDOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace xssd::obs {

class FlightRecorder;
class TimeSeriesSampler;

/// \brief One declarative SLO rule, evaluated against the last closed
/// sampling window: alert when `metric`'s `stat` satisfies `pred
/// threshold` for `for_windows` consecutive windows.
///
/// JSON form (see ParseSloRule):
///   {"name": "write_cliff", "metric": "ftl.write_amp", "pred": ">",
///    "threshold": 1.5, "for_windows": 3, "stat": "value", "fatal": false}
/// `stat` defaults by metric kind (counters: per-window delta; gauges:
/// value; latency series need an explicit count/min/max/mean/p50/p99/p999).
/// `for_windows` defaults to 1, `fatal` to false. A fatal rule's alert
/// makes BenchReporter::Finish() fail the campaign.
struct SloRule {
  enum class Pred { kGt, kGe, kLt, kLe };

  std::string name;
  std::string metric;
  std::string stat;  ///< "" = kind default
  Pred pred = Pred::kGt;
  double threshold = 0;
  uint32_t for_windows = 1;
  bool fatal = false;
};

const char* PredName(SloRule::Pred pred);

/// Parse one rule object / an array of rule objects. Unknown fields are
/// rejected, so a typo'd "for_window" cannot silently disable a gate.
Result<SloRule> ParseSloRule(const JsonValue& value);
Result<std::vector<SloRule>> ParseSloRules(std::string_view json_text);

/// \brief Declarative SLO watchdog, driven by a TimeSeriesSampler at each
/// window close.
///
/// Rules are streak-based: a window where the predicate holds extends the
/// rule's breach streak, one where it doesn't resets it; the alert fires
/// (edge-triggered, once per excursion) when the streak reaches
/// `for_windows`. Windows where the metric has no series yet (e.g. a
/// latency recorder before its first sample) leave the streak unchanged.
/// Alerts bump `obs.watchdog.*` counters — namespaced obs.* so the CI
/// zero-perturbation filter excludes them — and land in the flight
/// recorder when one is attached.
class SloWatchdog {
 public:
  SloWatchdog() = default;

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  void AddRule(SloRule rule);
  Status LoadRulesText(std::string_view json_text);
  Status LoadRulesFile(const std::string& path);

  /// Register `obs.watchdog.alerts`, `obs.watchdog.fatal_alerts`, and one
  /// `obs.watchdog.rule.<name>.alerts` per rule; nullptr detaches.
  void SetMetrics(MetricsRegistry* registry);
  void set_flight_recorder(FlightRecorder* recorder) {
    flightrec_ = recorder;
  }

  /// Evaluate every rule against `sampler`'s last closed window (index
  /// `window_index`, ending at virtual time `window_end`).
  void OnWindow(const TimeSeriesSampler& sampler, size_t window_index,
                sim::SimTime window_end);

  struct RuleState {
    SloRule rule;
    uint32_t streak = 0;      ///< consecutive breaching windows
    bool alerting = false;    ///< streak has reached for_windows
    uint64_t alerts = 0;      ///< edge-triggered excursion count
    uint64_t breach_windows = 0;
    int64_t first_alert_window = -1;
    double last_value = 0;
    bool last_valid = false;
    Counter* m_alerts = nullptr;
  };
  const std::vector<RuleState>& rules() const { return rules_; }

  uint64_t alerts() const { return alerts_; }
  uint64_t fatal_alerts() const { return fatal_alerts_; }
  size_t windows_evaluated() const { return windows_evaluated_; }

  /// Total alerts of the rule named `name` (0 when absent).
  uint64_t AlertsFor(std::string_view name) const;

  /// Deterministic JSON object: per-rule spec + alert state, plus totals.
  void AppendJson(std::string* out) const;

 private:
  std::vector<RuleState> rules_;
  MetricsRegistry* registry_ = nullptr;
  FlightRecorder* flightrec_ = nullptr;
  Counter* m_alerts_ = nullptr;
  Counter* m_fatal_alerts_ = nullptr;
  uint64_t alerts_ = 0;
  uint64_t fatal_alerts_ = 0;
  size_t windows_evaluated_ = 0;
};

}  // namespace xssd::obs

#endif  // XSSD_OBS_WATCHDOG_H_
