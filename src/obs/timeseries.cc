#include "obs/timeseries.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace xssd::obs {

TimeSeriesSampler::TimeSeriesSampler(sim::Simulator* sim,
                                     MetricsRegistry* registry,
                                     TimeSeriesOptions options)
    : sim_(sim), registry_(registry), options_(options) {
  XSSD_CHECK(options_.interval > 0);
  options_.max_windows = std::max<size_t>(1, options_.max_windows);
}

TimeSeriesSampler::~TimeSeriesSampler() { Finalize(); }

void TimeSeriesSampler::Start() {
  XSSD_CHECK(!started_);
  started_ = true;
  start_ = end_ = sim_->Now();
  next_due_ = start_ + options_.interval;
  // Base snapshots: metrics registered before this run (registries span
  // bench runs) must not charge their history to window 0. Latency
  // recorders flush any stale partial window from a previous sampler.
  for (const auto& [name, counter] : registry_->counters()) {
    ValueSeries& s = counter_series_[name];
    s.last_raw = counter->value();
  }
  for (const auto& [name, gauge] : registry_->gauges()) {
    (void)gauge;
    gauge_series_[name];
  }
  for (const auto& [name, rec] : registry_->latencies()) {
    latency_series_[name];
    rec->EnableWindowTracking();
    rec->TakeWindow();
  }
  m_windows_ = registry_->GetCounter("obs.timeseries.windows");
  counter_series_["obs.timeseries.windows"];  // self-series from window 0
  sim_->set_time_observer(this, next_due_);
  attached_ = true;
}

sim::SimTime TimeSeriesSampler::OnTimeAdvance(sim::SimTime when) {
  if (finalized_) return ~sim::SimTime{0};
  while (next_due_ <= when) {
    CloseWindow(next_due_);
    next_due_ += options_.interval;
  }
  return next_due_;
}

void TimeSeriesSampler::OnSimulatorTearDown(sim::SimTime last_now) {
  teardown_now_ = last_now;
  attached_ = false;  // the simulator is going away; do not detach from it
  Finalize();
}

void TimeSeriesSampler::Finalize() {
  if (finalized_ || !started_) {
    finalized_ = true;
    return;
  }
  finalized_ = true;
  const sim::SimTime now = attached_ ? sim_->Now() : teardown_now_;
  // Close the full windows an event-free tail (e.g. RunUntil advancing the
  // clock to a deadline) left open, then one trailing partial window.
  while (next_due_ <= now) {
    CloseWindow(next_due_);
    next_due_ += options_.interval;
  }
  if (now > next_due_ - options_.interval) CloseWindow(now);
  if (attached_) {
    sim_->set_time_observer(nullptr, 0);
    attached_ = false;
  }
}

void TimeSeriesSampler::PushValue(ValueSeries* s, double v) {
  if (s->values.size() == options_.max_windows) {
    s->values.pop_front();
    ++s->first_window;
    ++s->evicted;
    ++evicted_values_;
  }
  s->values.push_back(v);
}

void TimeSeriesSampler::CloseWindow(sim::SimTime window_end) {
  const size_t w = windows_;
  for (const auto& [name, counter] : registry_->counters()) {
    auto [it, created] = counter_series_.try_emplace(name);
    ValueSeries& s = it->second;
    if (created) s.first_window = w;  // registered mid-run: starts at 0
    const uint64_t cur = counter->value();
    // Reset()-safe delta: a mid-run registry reset makes cur < last_raw;
    // the post-reset value is the window's whole accumulation.
    const uint64_t delta = cur >= s.last_raw ? cur - s.last_raw : cur;
    s.last_raw = cur;
    PushValue(&s, static_cast<double>(delta));
    if (trace_ != nullptr) {
      trace_->OnCounterSample(name.c_str(), window_end,
                              static_cast<double>(delta));
    }
  }
  for (const auto& [name, gauge] : registry_->gauges()) {
    auto [it, created] = gauge_series_.try_emplace(name);
    ValueSeries& s = it->second;
    if (created) s.first_window = w;
    PushValue(&s, gauge->value());
    if (trace_ != nullptr) {
      trace_->OnCounterSample(name.c_str(), window_end, gauge->value());
    }
  }
  for (const auto& [name, rec] : registry_->latencies()) {
    auto [it, created] = latency_series_.try_emplace(name);
    LatencySeries& s = it->second;
    if (created) {
      s.first_window = w;
      rec->EnableWindowTracking();
      rec->TakeWindow();  // discard the partial pre-discovery window
    }
    if (s.windows.size() == options_.max_windows) {
      s.windows.pop_front();
      ++s.first_window;
      ++s.evicted;
      ++evicted_values_;
    }
    LatencyWindow win = rec->TakeWindow();
    s.windows.push_back(win);
    if (trace_ != nullptr && win.count > 0) {
      trace_->OnCounterSample((name + ".p99").c_str(), window_end, win.p99);
    }
  }
  ++windows_;
  end_ = window_end;
  if (m_windows_ != nullptr) m_windows_->Add();
  if (watchdog_ != nullptr) watchdog_->OnWindow(*this, w, window_end);
}

bool TimeSeriesSampler::LastValue(const std::string& metric,
                                  const std::string& stat,
                                  double* out) const {
  if (auto it = counter_series_.find(metric); it != counter_series_.end()) {
    if (!stat.empty() && stat != "delta") return false;
    if (it->second.values.empty()) return false;
    *out = it->second.values.back();
    return true;
  }
  if (auto it = gauge_series_.find(metric); it != gauge_series_.end()) {
    if (!stat.empty() && stat != "value") return false;
    if (it->second.values.empty()) return false;
    *out = it->second.values.back();
    return true;
  }
  if (auto it = latency_series_.find(metric); it != latency_series_.end()) {
    if (it->second.windows.empty()) return false;
    const LatencyWindow& win = it->second.windows.back();
    if (stat == "count") {
      *out = static_cast<double>(win.count);
    } else if (stat == "min") {
      *out = win.min;
    } else if (stat == "max") {
      *out = win.max;
    } else if (stat == "mean") {
      *out = win.mean;
    } else if (stat == "p50") {
      *out = win.p50;
    } else if (stat == "p99") {
      *out = win.p99;
    } else if (stat == "p999") {
      *out = win.p999;
    } else {
      return false;  // latency series have no default stat
    }
    return true;
  }
  return false;
}

namespace {

void AppendValueSeries(
    const std::map<std::string, TimeSeriesSampler::ValueSeries>& series,
    std::string* out) {
  bool first = true;
  for (const auto& [name, s] : series) {
    if (!first) *out += ", ";
    first = false;
    *out += "\"" + JsonEscape(name) + "\": {\"first_window\": " +
            std::to_string(s.first_window) +
            ", \"evicted\": " + std::to_string(s.evicted) + ", \"values\": [";
    bool fv = true;
    for (double v : s.values) {
      if (!fv) *out += ", ";
      fv = false;
      *out += JsonNumber(v);
    }
    *out += "]}";
  }
}

}  // namespace

void TimeSeriesSampler::AppendJson(std::string* out) const {
  *out += "{\"interval_ns\": " + std::to_string(options_.interval);
  *out += ", \"start_ns\": " + std::to_string(start_);
  *out += ", \"end_ns\": " + std::to_string(end_);
  *out += ", \"windows\": " + std::to_string(windows_);
  *out += ", \"max_windows\": " + std::to_string(options_.max_windows);
  *out += ", \"evicted_values\": " + std::to_string(evicted_values_);
  *out += ", \"counters\": {";
  AppendValueSeries(counter_series_, out);
  *out += "}, \"gauges\": {";
  AppendValueSeries(gauge_series_, out);
  *out += "}, \"latencies\": {";
  bool first = true;
  for (const auto& [name, s] : latency_series_) {
    if (!first) *out += ", ";
    first = false;
    *out += "\"" + JsonEscape(name) + "\": {\"first_window\": " +
            std::to_string(s.first_window) +
            ", \"evicted\": " + std::to_string(s.evicted) +
            ", \"windows\": [";
    bool fw = true;
    for (const LatencyWindow& w : s.windows) {
      if (!fw) *out += ", ";
      fw = false;
      *out += "[" + std::to_string(w.count) + ", " + JsonNumber(w.min) +
              ", " + JsonNumber(w.max) + ", " + JsonNumber(w.mean) + ", " +
              JsonNumber(w.p50) + ", " + JsonNumber(w.p99) + ", " +
              JsonNumber(w.p999) + "]";
    }
    *out += "]}";
  }
  *out += "}";
  if (watchdog_ != nullptr) {
    *out += ", \"watchdog\": ";
    watchdog_->AppendJson(out);
  }
  *out += "}";
}

}  // namespace xssd::obs
