#ifndef XSSD_OBS_TRACE_H_
#define XSSD_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/time.h"

namespace xssd::obs {

/// \brief Receiver of simulator-level trace events.
///
/// Attached to a sim::Simulator via set_trace_sink(); the simulator calls
/// the hooks with *virtual* timestamps as events are scheduled and fired.
/// Instrumented components (and benches/tests) may additionally emit named
/// instants and counter samples through the same sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// An event was placed on the queue at virtual time `now`, to fire at
  /// `when`. `seq` is the simulator's global FIFO tie-breaker — unique per
  /// event, so scheduled/fired pairs can be correlated.
  virtual void OnEventScheduled(sim::SimTime now, sim::SimTime when,
                                uint64_t seq) = 0;

  /// Event `seq` is about to run at virtual time `when`.
  virtual void OnEventBegin(sim::SimTime when, uint64_t seq) = 0;

  /// Event `seq` finished running (virtual duration is always zero; the
  /// hook exists so sinks can bracket the callback).
  virtual void OnEventEnd(sim::SimTime when, uint64_t seq) = 0;

  /// A named point-in-time marker (component instrumentation).
  virtual void OnInstant(const char* name, sim::SimTime when) = 0;

  /// A sample of a named counter series (renders as a stacked chart in the
  /// trace viewer).
  virtual void OnCounterSample(const char* name, sim::SimTime when,
                               double value) = 0;
};

/// ChromeTraceWriter knobs.
struct ChromeTraceOptions {
  /// Recording stops (events are counted as dropped) past this many
  /// buffered events, so a long run cannot OOM the host.
  size_t max_events = 1u << 20;
  /// Emit one zero-duration complete event per fired simulator event.
  bool emit_fired = true;
  /// Also emit flow arrows from schedule site to fire site (doubles the
  /// event count; off by default).
  bool emit_flow = false;
};

/// \brief TraceSink emitting Chrome `trace_event`-format JSON.
///
/// The output is the standard "JSON object format"
/// ({"traceEvents": [...], "displayTimeUnit": "ns"}) and loads directly in
/// chrome://tracing or https://ui.perfetto.dev. Virtual nanoseconds map to
/// trace microseconds with a fractional part, so viewer timestamps read in
/// simulated time.
class ChromeTraceWriter : public TraceSink {
 public:
  explicit ChromeTraceWriter(ChromeTraceOptions options = {});

  /// Start a new logical process group: subsequent events carry the
  /// returned pid, and the final JSON names it `name` (one simulation run
  /// per process group keeps multi-run bench traces separable).
  uint32_t BeginProcess(const std::string& name);

  // TraceSink
  void OnEventScheduled(sim::SimTime now, sim::SimTime when,
                        uint64_t seq) override;
  void OnEventBegin(sim::SimTime when, uint64_t seq) override;
  void OnEventEnd(sim::SimTime when, uint64_t seq) override;
  void OnInstant(const char* name, sim::SimTime when) override;
  void OnCounterSample(const char* name, sim::SimTime when,
                       double value) override;

  size_t event_count() const { return events_.size(); }
  uint64_t dropped() const { return dropped_; }

  /// Write the complete, well-formed JSON document.
  void Write(std::ostream& out) const;
  std::string ToString() const;
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    char phase;         // 'X', 'i', 'C', 's', 'f'
    uint32_t pid;
    sim::SimTime ts;
    uint64_t id;        // flow id (phase 's'/'f')
    std::string name;
    double value = 0;   // counter sample (phase 'C')
  };

  /// Append if the buffer cap allows; otherwise count a drop.
  void Push(Event event);

  ChromeTraceOptions options_;
  std::vector<Event> events_;
  std::vector<std::string> process_names_;
  uint32_t pid_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace xssd::obs

#endif  // XSSD_OBS_TRACE_H_
