#ifndef XSSD_OBS_TRACE_H_
#define XSSD_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/time.h"

namespace xssd::obs {

/// \brief Receiver of simulator-level trace events.
///
/// Attached to a sim::Simulator via set_trace_sink(); the simulator calls
/// the hooks with *virtual* timestamps as events are scheduled and fired.
/// Instrumented components (and benches/tests) may additionally emit named
/// instants and counter samples through the same sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// An event was placed on the queue at virtual time `now`, to fire at
  /// `when`. `seq` is the simulator's global FIFO tie-breaker — unique per
  /// event, so scheduled/fired pairs can be correlated.
  virtual void OnEventScheduled(sim::SimTime now, sim::SimTime when,
                                uint64_t seq) = 0;

  /// Event `seq` is about to run at virtual time `when`.
  virtual void OnEventBegin(sim::SimTime when, uint64_t seq) = 0;

  /// Event `seq` finished running (virtual duration is always zero; the
  /// hook exists so sinks can bracket the callback).
  virtual void OnEventEnd(sim::SimTime when, uint64_t seq) = 0;

  /// A named point-in-time marker (component instrumentation).
  virtual void OnInstant(const char* name, sim::SimTime when) = 0;

  /// A sample of a named counter series (renders as a stacked chart in the
  /// trace viewer).
  virtual void OnCounterSample(const char* name, sim::SimTime when,
                               double value) = 0;
};

/// ChromeTraceWriter knobs.
struct ChromeTraceOptions {
  /// Recording stops (events are counted as dropped) past this many
  /// buffered events, so a long run cannot OOM the host.
  size_t max_events = 1u << 20;
  /// Emit one zero-duration complete event per fired simulator event.
  bool emit_fired = true;
  /// Also emit flow arrows from schedule site to fire site (doubles the
  /// event count; off by default). Each schedule→fire pair gets a fresh
  /// writer-global flow id, so arrows stay distinct across process groups
  /// and across NTB hops that reuse simulator `seq` numbers.
  bool emit_flow = false;
};

/// \brief TraceSink emitting Chrome `trace_event`-format JSON.
///
/// The output is the standard "JSON object format"
/// ({"traceEvents": [...], "displayTimeUnit": "ns"}) and loads directly in
/// chrome://tracing or https://ui.perfetto.dev. Virtual nanoseconds map to
/// trace microseconds with a fractional part, so viewer timestamps read in
/// simulated time.
class ChromeTraceWriter : public TraceSink {
 public:
  explicit ChromeTraceWriter(ChromeTraceOptions options = {});

  /// Start a new logical process group: subsequent events carry the
  /// returned pid, and the final JSON names it `name` (one simulation run
  /// per process group keeps multi-run bench traces separable).
  uint32_t BeginProcess(const std::string& name);

  // TraceSink
  void OnEventScheduled(sim::SimTime now, sim::SimTime when,
                        uint64_t seq) override;
  void OnEventBegin(sim::SimTime when, uint64_t seq) override;
  void OnEventEnd(sim::SimTime when, uint64_t seq) override;
  void OnInstant(const char* name, sim::SimTime when) override;
  void OnCounterSample(const char* name, sim::SimTime when,
                       double value) override;

  /// Emit one completed request-lifecycle span as a Chrome complete event
  /// plus a flow arrow ('s' at start, 'f' at end) keyed by the span id.
  /// Span flows use cat "span", a separate binding domain from the
  /// "sim"-cat dispatch flows, so the two id spaces cannot collide.
  void EmitSpan(const std::string& name, sim::SimTime start, sim::SimTime end,
                uint64_t span_id);

  size_t event_count() const { return events_.size(); }
  uint64_t dropped() const { return dropped_; }

  /// Write the complete, well-formed JSON document.
  void Write(std::ostream& out) const;
  std::string ToString() const;
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    char phase;         // 'X', 'i', 'C', 's', 'f'
    uint32_t pid;
    sim::SimTime ts;
    uint64_t id;        // flow id (phase 's'/'f'), span id (cat "span")
    std::string name;
    double value = 0;   // counter sample (phase 'C')
    const char* cat = "sim";  // flow binding domain ("sim" or "span")
    sim::SimTime dur = 0;     // complete-event duration (span 'X' only)
  };

  /// Append if the buffer cap allows; otherwise count a drop.
  void Push(Event event);

  ChromeTraceOptions options_;
  std::vector<Event> events_;
  std::vector<std::string> process_names_;
  uint32_t pid_ = 0;
  uint64_t dropped_ = 0;
  /// Dispatch-flow bookkeeping: ids are allocated writer-globally at
  /// schedule time and looked up (then retired) at fire time, so a `seq`
  /// reused by a different process group can never splice two unrelated
  /// arrows together.
  uint64_t next_flow_id_ = 1;
  std::map<uint64_t, uint64_t> pending_flows_;  // seq -> flow id
};

}  // namespace xssd::obs

#endif  // XSSD_OBS_TRACE_H_
