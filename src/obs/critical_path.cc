#include "obs/critical_path.h"

#include <algorithm>
#include <fstream>

#include "obs/json.h"

namespace xssd::obs {

namespace {

/// A candidate span clamped to the request window.
struct Clamped {
  sim::SimTime begin;
  sim::SimTime end;
  Stage stage;
  uint16_t node;
  SpanId id;
};

/// Deterministic winner among spans covering the same instant: deepest
/// stage first, then lowest stage enum, node, span id.
bool Wins(const Clamped& a, const Clamped& b) {
  int da = StageDepth(a.stage), db = StageDepth(b.stage);
  if (da != db) return da > db;
  if (a.stage != b.stage) return a.stage < b.stage;
  if (a.node != b.node) return a.node < b.node;
  return a.id < b.id;
}

bool OffsetsOverlap(const Span& a, const Span& b) {
  return a.offset_end > a.offset_begin && b.offset_end > b.offset_begin &&
         a.offset_begin < b.offset_end && b.offset_begin < a.offset_end;
}

RequestBreakdown AnalyzeRoot(const Span& root,
                             const std::vector<const Span*>& candidates) {
  RequestBreakdown b;
  b.root = root.id;
  b.kind = root.name;
  b.node = root.node;
  b.start = root.start;
  b.end = root.end;
  if (root.end <= root.start) return b;

  std::vector<Clamped> work;
  for (const Span* s : candidates) {
    if (s->start >= root.end || s->end <= root.start) continue;
    if (s->trace_id != root.trace_id && !OffsetsOverlap(*s, root)) continue;
    work.push_back(Clamped{std::max(s->start, root.start),
                           std::min(s->end, root.end), s->stage, s->node,
                           s->id});
  }

  std::vector<sim::SimTime> bounds;
  bounds.reserve(2 * work.size() + 2);
  bounds.push_back(root.start);
  bounds.push_back(root.end);
  for (const Clamped& c : work) {
    bounds.push_back(c.begin);
    bounds.push_back(c.end);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  // Sweep the elementary intervals, maintaining the set of spans live at
  // the current interval. Sorting by begin lets us admit spans with a
  // moving pointer; expiry is checked during the winner scan.
  std::sort(work.begin(), work.end(),
            [](const Clamped& a, const Clamped& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.id < b.id;
            });
  std::vector<const Clamped*> live;
  size_t next = 0;
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    sim::SimTime t0 = bounds[i], t1 = bounds[i + 1];
    while (next < work.size() && work[next].begin <= t0) {
      live.push_back(&work[next++]);
    }
    live.erase(std::remove_if(live.begin(), live.end(),
                              [&](const Clamped* c) { return c->end <= t0; }),
               live.end());
    const Clamped* best = nullptr;
    for (const Clamped* c : live) {
      if (!best || Wins(*c, *best)) best = c;
    }
    Stage stage = best ? best->stage : Stage::kRequest;
    uint16_t node = best ? best->node : root.node;
    if (!b.segments.empty() && b.segments.back().stage == stage &&
        b.segments.back().node == node && b.segments.back().end == t0) {
      b.segments.back().end = t1;
    } else {
      b.segments.push_back(PathSegment{t0, t1, stage, node});
    }
  }

  sim::SimTime attributed = 0;
  for (const PathSegment& seg : b.segments) attributed += seg.end - seg.begin;
  b.conserved = attributed == root.end - root.start;
  return b;
}

}  // namespace

std::vector<RequestBreakdown> CriticalPathAnalyzer::Analyze() const {
  const std::vector<Span>& spans = recorder_->spans();
  std::vector<const Span*> roots;
  std::vector<const Span*> work;  // closed, positive-duration child spans
  for (const Span& s : spans) {
    if (!s.closed) continue;
    if (s.stage == Stage::kRequest) {
      roots.push_back(&s);
    } else if (s.end > s.start) {
      work.push_back(&s);
    }
  }
  // Span ids are assigned at start time, so both lists are already in
  // non-decreasing start order; a two-pointer sweep keeps only the spans
  // overlapping the current root window in `active`.
  std::vector<RequestBreakdown> out;
  out.reserve(roots.size());
  std::vector<const Span*> active;
  size_t next = 0;
  for (const Span* root : roots) {
    while (next < work.size() && work[next]->start < root->end) {
      active.push_back(work[next++]);
    }
    active.erase(
        std::remove_if(active.begin(), active.end(),
                       [&](const Span* s) { return s->end <= root->start; }),
        active.end());
    out.push_back(AnalyzeRoot(*root, active));
  }
  return out;
}

void BreakdownReporter::AddRun(const std::string& label,
                               const SpanRecorder& recorder) {
  RunAgg& run = runs_[label];
  run.spans += recorder.span_count();
  CriticalPathAnalyzer analyzer(&recorder);
  for (const RequestBreakdown& b : analyzer.Analyze()) {
    ++run.requests;
    if (!b.conserved) ++run.violations;
    KindAgg& kind = run.kinds[b.kind];
    ++kind.count;
    kind.e2e.Add(static_cast<double>(b.end - b.start));
    // Per request, a stage is charged the sum of its exclusive segments.
    std::map<std::string, double> totals;
    for (const PathSegment& seg : b.segments) {
      std::string key = recorder.NodeTag(seg.node) + "/" +
                        (seg.stage == Stage::kRequest ? "request.self"
                                                      : StageName(seg.stage));
      totals[key] += static_cast<double>(seg.end - seg.begin);
    }
    for (const auto& [key, ns] : totals) kind.stages[key].Add(ns);
  }
}

uint64_t BreakdownReporter::request_count() const {
  uint64_t n = 0;
  for (const auto& [label, run] : runs_) n += run.requests;
  return n;
}

uint64_t BreakdownReporter::conservation_violations() const {
  uint64_t n = 0;
  for (const auto& [label, run] : runs_) n += run.violations;
  return n;
}

std::string BreakdownReporter::ToJson() const {
  std::string out;
  out += "{\n \"bench\": \"" + JsonEscape(bench_name_) + "\",\n \"runs\": {";
  bool first_run = true;
  for (const auto& [label, run] : runs_) {
    out += first_run ? "\n" : ",\n";
    first_run = false;
    out += "  \"" + JsonEscape(label) + "\": {\n";
    out += "   \"requests\": " + std::to_string(run.requests) + ",\n";
    out += "   \"spans\": " + std::to_string(run.spans) + ",\n";
    out += "   \"conservation_violations\": " + std::to_string(run.violations) +
           ",\n";
    out += "   \"kinds\": {";
    bool first_kind = true;
    for (const auto& [kind, agg] : run.kinds) {
      out += first_kind ? "\n" : ",\n";
      first_kind = false;
      out += "    \"" + JsonEscape(kind) + "\": {\n";
      out += "     \"count\": " + std::to_string(agg.count) + ",\n";
      out += "     \"e2e\": ";
      agg.e2e.AppendJson(&out);
      out += ",\n     \"stages\": {";
      bool first_stage = true;
      for (const auto& [key, stat] : agg.stages) {
        out += first_stage ? "\n" : ",\n";
        first_stage = false;
        out += "      \"" + JsonEscape(key) + "\": ";
        stat.AppendJson(&out);
      }
      out += "\n     }\n    }";
    }
    out += "\n   }\n  }";
  }
  out += "\n }\n}\n";
  return out;
}

Status BreakdownReporter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out << ToJson();
  out.flush();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

void BreakdownReporter::ExportGauges(MetricsRegistry* registry,
                                     const std::string& prefix) const {
  auto sanitized = [](std::string key) {
    for (char& c : key) {
      if (c == '/') c = '.';
    }
    return key;
  };
  for (const auto& [label, run] : runs_) {
    (void)label;  // campaigns pass one scenario per reporter via prefix
    for (const auto& [kind, agg] : run.kinds) {
      std::string base = prefix + "breakdown." + kind + ".";
      registry->GetGauge(base + "count")
          ->Set(static_cast<double>(agg.count));
      registry->GetGauge(base + "e2e.p50_us")
          ->Set(agg.e2e.hist.Percentile(50) / 1000.0);
      registry->GetGauge(base + "e2e.p99_us")
          ->Set(agg.e2e.hist.Percentile(99) / 1000.0);
      for (const auto& [key, stat] : agg.stages) {
        registry->GetGauge(base + sanitized(key) + ".total_us")
            ->Set(stat.total / 1000.0);
      }
    }
  }
}

void EmitSpansToTrace(const SpanRecorder& recorder,
                      ChromeTraceWriter* writer) {
  for (const Span& s : recorder.spans()) {
    if (!s.closed) continue;
    std::string name = recorder.NodeTag(s.node) + "/" + s.name;
    writer->EmitSpan(name, s.start, s.end, s.id);
  }
}

}  // namespace xssd::obs
