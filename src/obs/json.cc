#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace xssd::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator (RFC 8259 syntax only).

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Check(std::string* error) {
    SkipWs();
    if (!Value()) return Fail(error);
    SkipWs();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters";
      return Fail(error);
    }
    return true;
  }

 private:
  bool Fail(std::string* error) {
    if (error != nullptr) {
      *error = "invalid JSON at byte " + std::to_string(pos_) + ": " +
               (reason_.empty() ? "syntax error" : reason_);
    }
    return false;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool Value() {
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) {
        reason_ = "expected object key";
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        reason_ = "expected ':'";
        return false;
      }
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return true;
      reason_ = "expected ',' or '}'";
      return false;
    }
  }

  bool Array() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return true;
      reason_ = "expected ',' or ']'";
      return false;
    }
  }

  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        reason_ = "unescaped control character in string";
        return false;
      }
      if (c == '\\') {
        ++pos_;
        char esc = Peek();
        if (esc == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (!std::isxdigit(static_cast<unsigned char>(Peek()))) {
              reason_ = "bad \\u escape";
              return false;
            }
          }
          continue;
        }
        if (esc == '"' || esc == '\\' || esc == '/' || esc == 'b' ||
            esc == 'f' || esc == 'n' || esc == 'r' || esc == 't') {
          ++pos_;
          continue;
        }
        reason_ = "bad escape";
        return false;
      }
      ++pos_;
    }
    reason_ = "unterminated string";
    return false;
  }

  bool Digits() {
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    return true;
  }

  bool Number() {
    Eat('-');
    if (Peek() == '0') {
      ++pos_;  // leading zero may not be followed by more digits
    } else if (!Digits()) {
      reason_ = "expected value";
      return false;
    }
    if (Eat('.') && !Digits()) {
      reason_ = "digits required after '.'";
      return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!Digits()) {
        reason_ = "digits required in exponent";
        return false;
      }
    }
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string reason_;
};

}  // namespace

bool IsValidJson(std::string_view text, std::string* error) {
  return JsonChecker(text).Check(error);
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser (DOM variant of the checker above).

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue root;
    if (!Value(&root, 0)) return Error();
    SkipWs();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters";
      return Error();
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 32;

  Status Error() const {
    return Status::InvalidArgument(
        "invalid JSON at byte " + std::to_string(pos_) + ": " +
        (reason_.empty() ? "syntax error" : reason_));
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      reason_ = "nesting too deep";
      return false;
    }
    switch (Peek()) {
      case '{':
        return Object(out, depth);
      case '[':
        return Array(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return String(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return Number(out);
    }
  }

  bool Object(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!String(&key)) {
        reason_ = "expected object key";
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        reason_ = "expected ':'";
        return false;
      }
      SkipWs();
      JsonValue value;
      if (!Value(&value, depth + 1)) return false;
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return true;
      reason_ = "expected ',' or '}'";
      return false;
    }
  }

  bool Array(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      JsonValue item;
      if (!Value(&item, depth + 1)) return false;
      out->items.push_back(std::move(item));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return true;
      reason_ = "expected ',' or ']'";
      return false;
    }
  }

  bool String(std::string* out) {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        reason_ = "unescaped control character in string";
        return false;
      }
      if (c == '\\') {
        ++pos_;
        char esc = Peek();
        ++pos_;
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i, ++pos_) {
              char h = Peek();
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                reason_ = "bad \\u escape";
                return false;
              }
              code = code * 16 + static_cast<unsigned>(
                                     std::isdigit(static_cast<unsigned char>(h))
                                         ? h - '0'
                                         : std::tolower(h) - 'a' + 10);
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // recombined — plan files are expected to be ASCII).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            reason_ = "bad escape";
            return false;
        }
        continue;
      }
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    reason_ = "unterminated string";
    return false;
  }

  bool Number(JsonValue* out) {
    size_t start = pos_;
    Eat('-');
    if (Peek() == '0') {
      ++pos_;  // leading zero may not be followed by more digits
    } else if (!Digits()) {
      reason_ = "expected value";
      return false;
    }
    if (Eat('.') && !Digits()) {
      reason_ = "digits required after '.'";
      return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!Digits()) {
        reason_ = "digits required in exponent";
        return false;
      }
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                              nullptr);
    return true;
  }

  bool Digits() {
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string reason_;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

// ---------------------------------------------------------------------------

void JsonExporter::Write(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : registry_->counters()) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << counter->value();
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : registry_->gauges()) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << JsonNumber(gauge->value());
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"latencies\": {";
  first = true;
  for (const auto& [name, rec] : registry_->latencies()) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {"
        << "\"count\": " << rec->count()
        << ", \"min\": " << JsonNumber(rec->Min())
        << ", \"mean\": " << JsonNumber(rec->Mean())
        << ", \"p50\": " << JsonNumber(rec->Percentile(50))
        << ", \"p90\": " << JsonNumber(rec->Percentile(90))
        << ", \"p99\": " << JsonNumber(rec->Percentile(99))
        << ", \"max\": " << JsonNumber(rec->Max()) << "}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
}

std::string JsonExporter::ToString() const {
  std::ostringstream out;
  Write(out);
  return out.str();
}

Status JsonExporter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  Write(out);
  out.flush();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace xssd::obs
