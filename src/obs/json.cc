#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace xssd::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator (RFC 8259 syntax only).

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Check(std::string* error) {
    SkipWs();
    if (!Value()) return Fail(error);
    SkipWs();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters";
      return Fail(error);
    }
    return true;
  }

 private:
  bool Fail(std::string* error) {
    if (error != nullptr) {
      *error = "invalid JSON at byte " + std::to_string(pos_) + ": " +
               (reason_.empty() ? "syntax error" : reason_);
    }
    return false;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool Value() {
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) {
        reason_ = "expected object key";
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        reason_ = "expected ':'";
        return false;
      }
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return true;
      reason_ = "expected ',' or '}'";
      return false;
    }
  }

  bool Array() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return true;
      reason_ = "expected ',' or ']'";
      return false;
    }
  }

  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        reason_ = "unescaped control character in string";
        return false;
      }
      if (c == '\\') {
        ++pos_;
        char esc = Peek();
        if (esc == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (!std::isxdigit(static_cast<unsigned char>(Peek()))) {
              reason_ = "bad \\u escape";
              return false;
            }
          }
          continue;
        }
        if (esc == '"' || esc == '\\' || esc == '/' || esc == 'b' ||
            esc == 'f' || esc == 'n' || esc == 'r' || esc == 't') {
          ++pos_;
          continue;
        }
        reason_ = "bad escape";
        return false;
      }
      ++pos_;
    }
    reason_ = "unterminated string";
    return false;
  }

  bool Digits() {
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    return true;
  }

  bool Number() {
    Eat('-');
    if (Peek() == '0') {
      ++pos_;  // leading zero may not be followed by more digits
    } else if (!Digits()) {
      reason_ = "expected value";
      return false;
    }
    if (Eat('.') && !Digits()) {
      reason_ = "digits required after '.'";
      return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!Digits()) {
        reason_ = "digits required in exponent";
        return false;
      }
    }
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string reason_;
};

}  // namespace

bool IsValidJson(std::string_view text, std::string* error) {
  return JsonChecker(text).Check(error);
}

// ---------------------------------------------------------------------------

void JsonExporter::Write(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : registry_->counters()) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << counter->value();
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : registry_->gauges()) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << JsonNumber(gauge->value());
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"latencies\": {";
  first = true;
  for (const auto& [name, rec] : registry_->latencies()) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {"
        << "\"count\": " << rec->count()
        << ", \"min\": " << JsonNumber(rec->Min())
        << ", \"mean\": " << JsonNumber(rec->Mean())
        << ", \"p50\": " << JsonNumber(rec->Percentile(50))
        << ", \"p90\": " << JsonNumber(rec->Percentile(90))
        << ", \"p99\": " << JsonNumber(rec->Percentile(99))
        << ", \"max\": " << JsonNumber(rec->Max()) << "}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
}

std::string JsonExporter::ToString() const {
  std::ostringstream out;
  Write(out);
  return out.str();
}

Status JsonExporter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  Write(out);
  out.flush();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace xssd::obs
