#include "obs/flightrec.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace xssd::obs {

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {
  options_.capacity = std::max<size_t>(1, options_.capacity);
  ring_.reserve(options_.capacity);
}

void FlightRecorder::Record(sim::SimTime when, std::string_view category,
                            std::string message) {
  Entry e;
  e.seq = appended_++;
  e.when = when;
  e.category.assign(category.data(), category.size());
  e.message = std::move(message);
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(e));
  } else {
    ring_[oldest_] = std::move(e);
    oldest_ = (oldest_ + 1) % options_.capacity;
    ++evicted_;
    if (m_evicted_) m_evicted_->Add();
  }
  if (m_appends_) m_appends_->Add();
}

std::vector<FlightRecorder::Entry> FlightRecorder::Snapshot() const {
  std::vector<Entry> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(oldest_ + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::Dump(std::ostream& out, std::string_view reason) const {
  out << "=== flight recorder dump (reason: " << reason << "; " << appended_
      << " recorded, " << evicted_ << " evicted, showing last "
      << ring_.size() << ") ===\n";
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Entry& e = ring_[(oldest_ + i) % ring_.size()];
    char stamp[64];
    std::snprintf(stamp, sizeof(stamp), "[%6llu] t=%-12llu ",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(e.when));
    out << stamp << e.category << ": " << e.message << "\n";
  }
  out << "=== end flight recorder dump ===\n";
}

Status FlightRecorder::DumpToFile(const std::string& path,
                                  std::string_view reason) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("flightrec: cannot open " + path);
  Dump(out, reason);
  out.flush();
  if (!out) return Status::IoError("flightrec: write failed for " + path);
  return Status::OK();
}

void FlightRecorder::AutoDump(std::string_view reason) {
  ++auto_dumps_;
  if (m_auto_dumps_) m_auto_dumps_->Add();
  if (!options_.dump_path.empty()) {
    Status status = DumpToFile(options_.dump_path, reason);
    if (status.ok()) {
      std::fprintf(stderr, "flightrec: dumped to %s (%s)\n",
                   options_.dump_path.c_str(), std::string(reason).c_str());
      return;
    }
    std::fprintf(stderr, "flightrec: %s; dumping to stderr\n",
                 status.ToString().c_str());
  }
  Dump(std::cerr, reason);
}

void FlightRecorder::SetMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_appends_ = m_evicted_ = m_auto_dumps_ = nullptr;
    return;
  }
  m_appends_ = registry->GetCounter("obs.flightrec.appends");
  m_evicted_ = registry->GetCounter("obs.flightrec.evicted");
  m_auto_dumps_ = registry->GetCounter("obs.flightrec.auto_dumps");
}

}  // namespace xssd::obs
