#include "obs/watchdog.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/flightrec.h"
#include "obs/timeseries.h"

namespace xssd::obs {

const char* PredName(SloRule::Pred pred) {
  switch (pred) {
    case SloRule::Pred::kGt:
      return ">";
    case SloRule::Pred::kGe:
      return ">=";
    case SloRule::Pred::kLt:
      return "<";
    case SloRule::Pred::kLe:
      return "<=";
  }
  return "?";
}

namespace {

bool Holds(SloRule::Pred pred, double value, double threshold) {
  switch (pred) {
    case SloRule::Pred::kGt:
      return value > threshold;
    case SloRule::Pred::kGe:
      return value >= threshold;
    case SloRule::Pred::kLt:
      return value < threshold;
    case SloRule::Pred::kLe:
      return value <= threshold;
  }
  return false;
}

/// Metric-name characters only, so a rule name can serve as a metric-name
/// segment (obs.watchdog.rule.<name>.alerts).
std::string SanitizeRuleName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "rule";
  return out;
}

}  // namespace

Result<SloRule> ParseSloRule(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("slo rule must be an object");
  }
  SloRule rule;
  bool have_metric = false;
  for (const auto& [key, field] : value.fields) {
    if (key == "name") {
      if (!field.is_string()) {
        return Status::InvalidArgument("slo rule: name must be a string");
      }
      rule.name = field.string;
    } else if (key == "metric") {
      if (!field.is_string() || field.string.empty()) {
        return Status::InvalidArgument(
            "slo rule: metric must be a non-empty string");
      }
      rule.metric = field.string;
      have_metric = true;
    } else if (key == "stat") {
      if (!field.is_string()) {
        return Status::InvalidArgument("slo rule: stat must be a string");
      }
      rule.stat = field.string;
    } else if (key == "pred") {
      if (!field.is_string()) {
        return Status::InvalidArgument("slo rule: pred must be a string");
      }
      if (field.string == ">") {
        rule.pred = SloRule::Pred::kGt;
      } else if (field.string == ">=") {
        rule.pred = SloRule::Pred::kGe;
      } else if (field.string == "<") {
        rule.pred = SloRule::Pred::kLt;
      } else if (field.string == "<=") {
        rule.pred = SloRule::Pred::kLe;
      } else {
        return Status::InvalidArgument("slo rule: pred must be one of > >= < <= (got \"" +
                                       field.string + "\")");
      }
    } else if (key == "threshold") {
      if (!field.is_number()) {
        return Status::InvalidArgument(
            "slo rule: threshold must be a number");
      }
      rule.threshold = field.number;
    } else if (key == "for_windows") {
      if (!field.is_number() || field.number < 1) {
        return Status::InvalidArgument(
            "slo rule: for_windows must be a number >= 1");
      }
      rule.for_windows = static_cast<uint32_t>(field.number);
    } else if (key == "fatal") {
      if (!field.is_bool()) {
        return Status::InvalidArgument("slo rule: fatal must be a bool");
      }
      rule.fatal = field.boolean;
    } else {
      // Reject unknown keys loudly: a typo'd "for_window" would otherwise
      // silently weaken a gate.
      return Status::InvalidArgument("slo rule: unknown field \"" + key +
                                     "\"");
    }
  }
  if (!have_metric) {
    return Status::InvalidArgument("slo rule: missing \"metric\"");
  }
  if (rule.name.empty()) rule.name = rule.metric;
  rule.name = SanitizeRuleName(rule.name);
  return rule;
}

Result<std::vector<SloRule>> ParseSloRules(std::string_view json_text) {
  Result<JsonValue> doc = ParseJson(json_text);
  if (!doc.ok()) return doc.status();
  std::vector<SloRule> rules;
  if (doc->is_object()) {
    Result<SloRule> rule = ParseSloRule(*doc);
    if (!rule.ok()) return rule.status();
    rules.push_back(std::move(*rule));
    return rules;
  }
  if (!doc->is_array()) {
    return Status::InvalidArgument(
        "slo rules: want an array of rule objects");
  }
  for (const JsonValue& item : doc->items) {
    Result<SloRule> rule = ParseSloRule(item);
    if (!rule.ok()) return rule.status();
    rules.push_back(std::move(*rule));
  }
  return rules;
}

void SloWatchdog::AddRule(SloRule rule) {
  RuleState state;
  state.rule = std::move(rule);
  if (registry_ != nullptr) {
    state.m_alerts = registry_->GetCounter("obs.watchdog.rule." +
                                           state.rule.name + ".alerts");
  }
  rules_.push_back(std::move(state));
}

Status SloWatchdog::LoadRulesText(std::string_view json_text) {
  Result<std::vector<SloRule>> rules = ParseSloRules(json_text);
  if (!rules.ok()) return rules.status();
  for (SloRule& rule : *rules) AddRule(std::move(rule));
  return Status::OK();
}

Status SloWatchdog::LoadRulesFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("slo rules: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return LoadRulesText(text.str());
}

void SloWatchdog::SetMetrics(MetricsRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    m_alerts_ = m_fatal_alerts_ = nullptr;
    for (RuleState& state : rules_) state.m_alerts = nullptr;
    return;
  }
  m_alerts_ = registry->GetCounter("obs.watchdog.alerts");
  m_fatal_alerts_ = registry->GetCounter("obs.watchdog.fatal_alerts");
  for (RuleState& state : rules_) {
    state.m_alerts =
        registry->GetCounter("obs.watchdog.rule." + state.rule.name + ".alerts");
  }
}

void SloWatchdog::OnWindow(const TimeSeriesSampler& sampler,
                           size_t window_index, sim::SimTime window_end) {
  ++windows_evaluated_;
  for (RuleState& state : rules_) {
    double value = 0;
    if (!sampler.LastValue(state.rule.metric, state.rule.stat, &value)) {
      state.last_valid = false;
      continue;  // no series yet: the streak neither grows nor resets
    }
    state.last_value = value;
    state.last_valid = true;
    if (!Holds(state.rule.pred, value, state.rule.threshold)) {
      state.streak = 0;
      state.alerting = false;
      continue;
    }
    ++state.breach_windows;
    if (state.streak < state.rule.for_windows) ++state.streak;
    if (state.streak < state.rule.for_windows || state.alerting) continue;
    // Edge-triggered: one alert per excursion, however long it lasts.
    state.alerting = true;
    ++state.alerts;
    ++alerts_;
    if (state.rule.fatal) ++fatal_alerts_;
    if (state.m_alerts != nullptr) state.m_alerts->Add();
    if (m_alerts_ != nullptr) m_alerts_->Add();
    if (state.rule.fatal && m_fatal_alerts_ != nullptr) {
      m_fatal_alerts_->Add();
    }
    if (state.first_alert_window < 0) {
      state.first_alert_window = static_cast<int64_t>(window_index);
    }
    char msg[256];
    std::snprintf(msg, sizeof(msg),
                  "rule %s: %s%s%s %s %g for %u windows (value %g)%s",
                  state.rule.name.c_str(), state.rule.metric.c_str(),
                  state.rule.stat.empty() ? "" : ".",
                  state.rule.stat.c_str(), PredName(state.rule.pred),
                  state.rule.threshold, state.rule.for_windows, value,
                  state.rule.fatal ? " [fatal]" : "");
    std::fprintf(stderr, "slo-watchdog: alert at t=%llu ns: %s\n",
                 static_cast<unsigned long long>(window_end), msg);
    if (flightrec_ != nullptr) {
      flightrec_->Record(window_end, "watchdog", msg);
    }
  }
}

uint64_t SloWatchdog::AlertsFor(std::string_view name) const {
  uint64_t total = 0;
  for (const RuleState& state : rules_) {
    if (state.rule.name == name) total += state.alerts;
  }
  return total;
}

void SloWatchdog::AppendJson(std::string* out) const {
  *out += "{\"windows_evaluated\": " + std::to_string(windows_evaluated_);
  *out += ", \"alerts\": " + std::to_string(alerts_);
  *out += ", \"fatal_alerts\": " + std::to_string(fatal_alerts_);
  *out += ", \"rules\": [";
  bool first = true;
  for (const RuleState& state : rules_) {
    if (!first) *out += ", ";
    first = false;
    *out += "{\"name\": \"" + JsonEscape(state.rule.name) + "\"";
    *out += ", \"metric\": \"" + JsonEscape(state.rule.metric) + "\"";
    *out += ", \"stat\": \"" + JsonEscape(state.rule.stat) + "\"";
    *out += ", \"pred\": \"" + std::string(PredName(state.rule.pred)) + "\"";
    *out += ", \"threshold\": " + JsonNumber(state.rule.threshold);
    *out += ", \"for_windows\": " + std::to_string(state.rule.for_windows);
    *out += std::string(", \"fatal\": ") + (state.rule.fatal ? "true" : "false");
    *out += ", \"alerts\": " + std::to_string(state.alerts);
    *out += ", \"breach_windows\": " + std::to_string(state.breach_windows);
    *out += ", \"first_alert_window\": " +
            std::to_string(state.first_alert_window);
    *out += ", \"last_value\": " + JsonNumber(state.last_value);
    *out += "}";
  }
  *out += "]}";
}

}  // namespace xssd::obs
