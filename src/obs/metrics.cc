#include "obs/metrics.h"

#include "common/logging.h"

namespace xssd::obs {

namespace {
bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}
}  // namespace

void MetricsRegistry::CheckName(const std::string& name, Kind kind) {
  XSSD_CHECK(!name.empty());
  XSSD_CHECK(name.front() != '.' && name.back() != '.');
  for (char c : name) XSSD_CHECK(ValidNameChar(c));
  auto [it, inserted] = kinds_.emplace(name, kind);
  // One kind per name: re-registering `cmb.credit` as a counter after it
  // was a gauge would silently fork the metric.
  XSSD_CHECK(it->second == kind);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  CheckName(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  CheckName(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyRecorder* MetricsRegistry::GetLatency(const std::string& name) {
  CheckName(name, Kind::kLatency);
  auto& slot = latencies_[name];
  if (!slot) slot = std::make_unique<LatencyRecorder>();
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const LatencyRecorder* MetricsRegistry::FindLatency(
    const std::string& name) const {
  auto it = latencies_.find(name);
  return it == latencies_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::Reset() {
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, recorder] : latencies_) recorder->Clear();
}

}  // namespace xssd::obs
