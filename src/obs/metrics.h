#ifndef XSSD_OBS_METRICS_H_
#define XSSD_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "sim/stats.h"

namespace xssd::obs {

/// \brief Monotonically increasing event/byte count.
///
/// Handed out by MetricsRegistry; components cache the pointer and bump it
/// on the hot path (one add, no lookup).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// \brief Instantaneous level: queue depth, occupancy, credit position,
/// or a bench result. Last write wins.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  void Sub(double delta) { value_ -= delta; }
  double value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  double value_ = 0;
};

/// Latency-style sample distributions reuse the simulator's recorder (it
/// already serves every benchmark) so samples flow to one place.
using LatencyRecorder = sim::LatencyRecorder;

/// \brief Registry of named metrics with hierarchical dotted names
/// (`cmb.append_bytes`, `ftl.gc.pages_moved`, `ntb.link.wire_bytes`).
///
/// Get*() registers on first use and returns a stable pointer — components
/// resolve their metrics once (SetMetrics) and update them branch-cheaply
/// afterwards. Iteration order is lexicographic by name, which makes every
/// export deterministic; two identical simulation runs snapshot to
/// byte-identical JSON.
///
/// A name has exactly one kind for the lifetime of the registry; asking
/// for an existing name with a different kind is a programming error.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned pointer stays valid for the registry's
  /// lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyRecorder* GetLatency(const std::string& name);

  /// Lookup without registering; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const LatencyRecorder* FindLatency(const std::string& name) const;

  size_t size() const {
    return counters_.size() + gauges_.size() + latencies_.size();
  }

  /// Zero every counter and gauge, clear every recorder. Registered names
  /// (and handed-out pointers) survive.
  void Reset();

  // Deterministic (name-sorted) iteration for exporters.
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<LatencyRecorder>>& latencies()
      const {
    return latencies_;
  }

 private:
  enum class Kind { kCounter, kGauge, kLatency };

  /// Enforce name validity and one-kind-per-name.
  void CheckName(const std::string& name, Kind kind);

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyRecorder>> latencies_;
  std::map<std::string, Kind> kinds_;
};

}  // namespace xssd::obs

#endif  // XSSD_OBS_METRICS_H_
