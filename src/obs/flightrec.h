#ifndef XSSD_OBS_FLIGHTREC_H_
#define XSSD_OBS_FLIGHTREC_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace xssd::obs {

struct FlightRecorderOptions {
  /// Ring capacity: the last N annotated events are retained. 512 entries
  /// cover the interesting prefix of any crash site while keeping the
  /// recorder O(100 KiB) regardless of campaign length.
  size_t capacity = 512;
  /// AutoDump() destination; empty dumps to stderr.
  std::string dump_path;
};

/// \brief Black-box flight recorder: a bounded ring of annotated events
/// stamped in virtual time.
///
/// Components that were handed a recorder append one-line entries at the
/// moments that matter in a post-mortem — fault injections, crash-site
/// firings, uncorrectable-read escalations, GC collects, destage-ring
/// wraps, HA promotions/fencings, watchdog alerts. Recording is always on
/// and always cheap (string append into a preallocated ring; no I/O, no
/// simulator interaction, no randomness — attaching a recorder cannot
/// perturb a run). The ring is dumped automatically at crash sites and on
/// Corruption escalation (AutoDump), and on demand at bench exit.
///
/// Single-threaded like the rest of the model: recorders are only written
/// from simulator callbacks (or the serial merge), never from parallel
/// workers — the components that record all live on fast-side devices that
/// share one domain.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  struct Entry {
    uint64_t seq = 0;  ///< global append index (never resets)
    sim::SimTime when = 0;
    std::string category;  ///< "fault", "ftl.gc", "ha", "watchdog", ...
    std::string message;
  };

  /// Append one entry, evicting the oldest when the ring is full.
  void Record(sim::SimTime when, std::string_view category,
              std::string message);

  /// Retained entries, oldest first.
  std::vector<Entry> Snapshot() const;

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return options_.capacity; }
  uint64_t appended() const { return appended_; }
  uint64_t evicted() const { return evicted_; }
  uint64_t auto_dumps() const { return auto_dumps_; }

  /// Human-readable dump of the retained ring, oldest first.
  void Dump(std::ostream& out, std::string_view reason) const;
  Status DumpToFile(const std::string& path, std::string_view reason) const;

  /// Crash-site dump: to options_.dump_path when set, stderr otherwise.
  /// Failures to write the file fall back to stderr — a post-mortem dump
  /// must never be lost to a bad path.
  void AutoDump(std::string_view reason);

  /// Register `obs.flightrec.*` self-metrics (appends/evictions/dumps);
  /// nullptr detaches. The obs.* namespace keeps them out of the CI
  /// zero-perturbation comparison.
  void SetMetrics(MetricsRegistry* registry);

  void set_dump_path(std::string path) {
    options_.dump_path = std::move(path);
  }
  const std::string& dump_path() const { return options_.dump_path; }

 private:
  FlightRecorderOptions options_;
  std::vector<Entry> ring_;
  size_t oldest_ = 0;  ///< index of the oldest entry once the ring is full
  uint64_t appended_ = 0;
  uint64_t evicted_ = 0;
  uint64_t auto_dumps_ = 0;

  Counter* m_appends_ = nullptr;
  Counter* m_evicted_ = nullptr;
  Counter* m_auto_dumps_ = nullptr;
};

}  // namespace xssd::obs

#endif  // XSSD_OBS_FLIGHTREC_H_
