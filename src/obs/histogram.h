#ifndef XSSD_OBS_HISTOGRAM_H_
#define XSSD_OBS_HISTOGRAM_H_

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "sim/histogram.h"

namespace xssd::obs {

/// The per-stage log2-bucket histogram used by the breakdown reporter is
/// the simulator-layer one; re-exported here so obs/ consumers need not
/// reach into sim/ directly.
using Log2Histogram = sim::Log2Histogram;

/// \brief Duration aggregate: exact count/total/min/max plus log2 buckets
/// for percentiles. One per (request kind, stage key) in the breakdown.
struct DurationStat {
  Log2Histogram hist;
  uint64_t count = 0;
  double total = 0;
  double min = 0;
  double max = 0;

  void Add(double value) {
    if (count == 0) {
      min = max = value;
    } else {
      if (value < min) min = value;
      if (value > max) max = value;
    }
    total += value;
    ++count;
    hist.Add(value);
  }

  double Mean() const {
    return count == 0 ? 0 : total / static_cast<double>(count);
  }

  /// Bucket-interpolated percentile, guarded against an empty histogram
  /// and clamped to the exact [min, max] (bucket interpolation can
  /// otherwise land above the largest recorded sample).
  double PercentileClamped(double p) const {
    if (count == 0) return 0;
    double v = hist.Percentile(p);
    return v < min ? min : (v > max ? max : v);
  }

  /// Deterministic JSON object: exact aggregates, bucket-interpolated
  /// percentiles, and the non-empty buckets as [lo, hi, count] triples.
  void AppendJson(std::string* out) const {
    *out += "{\"count\": " + std::to_string(count);
    *out += ", \"total_ns\": " + JsonNumber(total);
    *out += ", \"min_ns\": " + JsonNumber(min);
    *out += ", \"max_ns\": " + JsonNumber(max);
    *out += ", \"mean_ns\": " + JsonNumber(Mean());
    *out += ", \"p50_ns\": " + JsonNumber(PercentileClamped(50));
    *out += ", \"p99_ns\": " + JsonNumber(PercentileClamped(99));
    *out += ", \"p999_ns\": " + JsonNumber(PercentileClamped(99.9));
    *out += ", \"buckets\": [";
    bool first = true;
    for (const Log2Histogram::Bucket& b : hist.NonEmptyBuckets()) {
      if (!first) *out += ", ";
      first = false;
      *out += "[" + std::to_string(b.lo) + ", " + std::to_string(b.hi) +
              ", " + std::to_string(b.count) + "]";
    }
    *out += "]}";
  }
};

}  // namespace xssd::obs

#endif  // XSSD_OBS_HISTOGRAM_H_
