#ifndef XSSD_OBS_SPAN_H_
#define XSSD_OBS_SPAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::obs {

/// \brief Request-scoped span tracing in virtual time.
///
/// A request (log append, fsync, tail read) entering XLogClient mints a
/// trace: a root span plus a SpanContext that rides along the simulated
/// hardware path. Components on that path — PCIe delivery, CMB staging,
/// destage emit, flash program, NTB push, replication wait — open child
/// spans stamped with sim::Simulator virtual time. The recorder is purely
/// passive: it never schedules events, charges bandwidth, or perturbs the
/// simulation, so a traced run and an untraced run produce identical
/// metrics (enforced by the zero-overhead test).
///
/// Propagation is ambient: the recorder holds a "current context" that the
/// two asynchronous delivery points (PcieFabric MMIO delivery and the NTB
/// forward hop) capture into their scheduled closures and restore around
/// the downstream call. Synchronous hook chains (credit hook → destage
/// pump, arrival hook → transport mirror) inherit the context with no
/// signature changes.
///
/// Work triggered by timers or completions (a latency-threshold partial
/// destage page, an FTL GC write) has no ambient request context. Such
/// spans are still recorded, as *orphans* under a fresh trace id; the
/// critical-path analyzer re-attaches orphans that carry a log-stream
/// offset range to any request window they overlap, and ignores the rest.

using SpanId = uint64_t;  // 0 = none
using TraceId = uint64_t;

/// Pipeline stage a span measures. Doubles as the critical-path priority
/// domain: see StageDepth().
enum class Stage : uint8_t {
  kRequest = 0,          // root: one client-visible request
  kHostPoll = 1,         // host register poll (CPU overhead + MMIO read)
  kReplicationWait = 2,  // arrival → shadow counter covers the bytes
  kCmbStage = 3,         // ring write arrival → persisted in CMB backing
  kDestagePage = 4,      // destage page emit → durable on flash
  kNvmeRead = 5,         // NVMe read command lifetime
  kNtbLink = 6,          // one NTB hop: cable + forward latency
  kFlashProgram = 7,     // FTL write issue → program complete
  kReplicaFetch = 8,     // tail-read re-fetch of a lost range over NTB
  kScrubRefresh = 9,     // patrol-scrub refresh/escalation walk (orphan)
};

const char* StageName(Stage stage);

/// Priority when attributing an instant of a request's lifetime to exactly
/// one stage: the deepest (most specific) overlapping span wins. E.g. an
/// NTB hop nested inside a replication wait is charged to the link, and
/// the remaining wait time to replication.
int StageDepth(Stage stage);

/// The propagated identity: which trace this work belongs to and which
/// span is the parent of anything opened downstream.
struct SpanContext {
  TraceId trace_id = 0;
  SpanId span_id = 0;
  bool valid() const { return span_id != 0; }
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  TraceId trace_id = 0;
  Stage stage = Stage::kRequest;
  uint16_t node = 0;  // interned node tag, see SpanRecorder::InternNode
  sim::SimTime start = 0;
  sim::SimTime end = 0;  // 0 while open (a span may also end at start)
  bool closed = false;
  /// Log-stream byte range this span covers; empty (begin == end) when the
  /// work is not tied to specific log bytes. Used by the analyzer to join
  /// orphan spans to request windows.
  uint64_t offset_begin = 0;
  uint64_t offset_end = 0;
  /// Root spans carry the request kind ("append", "fsync", "read"); must
  /// point at a string literal.
  const char* name = "";
};

/// \brief Store + ambient-context holder for one tracing session.
///
/// Single-threaded (the simulator is); span ids are indices+1 into the
/// store, so lookups are O(1) and two identically seeded runs assign
/// identical ids.
class SpanRecorder {
 public:
  explicit SpanRecorder(sim::Simulator* sim) : sim_(sim) {}

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Intern a node tag ("pri", "sec0", ...) once at attach time so hot
  /// paths stamp a uint16 instead of a string.
  uint16_t InternNode(const std::string& tag);
  const std::string& NodeTag(uint16_t id) const { return nodes_[id]; }
  size_t node_count() const { return nodes_.size(); }

  /// Mint a new trace with a root span. `kind` must be a string literal.
  SpanContext StartTrace(const char* kind, uint16_t node,
                         uint64_t offset_begin, uint64_t offset_end);

  /// Open a child span under `parent`. An invalid parent still records the
  /// span — as an orphan root of a fresh trace — so timer-driven work keeps
  /// its timing and can be joined by offset range at analysis time.
  SpanContext StartSpan(Stage stage, uint16_t node, SpanContext parent);

  void SetRange(SpanContext ctx, uint64_t begin, uint64_t end);
  void EndSpan(SpanContext ctx) { EndSpanAt(ctx, sim_->Now()); }
  /// End at a known future instant (e.g. an NTB hop whose delivery time is
  /// computed at schedule time). Purely bookkeeping — nothing is scheduled.
  void EndSpanAt(SpanContext ctx, sim::SimTime when);

  /// Ambient context for synchronous call chains and captured closures.
  SpanContext current() const { return current_; }
  void set_current(SpanContext ctx) { current_ = ctx; }

  const std::vector<Span>& spans() const { return spans_; }
  const Span* Find(SpanId id) const {
    return (id == 0 || id > spans_.size()) ? nullptr : &spans_[id - 1];
  }
  size_t span_count() const { return spans_.size(); }

  void Clear();

 private:
  sim::Simulator* sim_;
  std::vector<Span> spans_;
  std::vector<std::string> nodes_ = {""};
  TraceId next_trace_ = 1;
  SpanContext current_;
};

/// RAII ambient-context scope. Accepts a null recorder as a no-op so call
/// sites stay branch-free.
class ScopedContext {
 public:
  ScopedContext(SpanRecorder* recorder, SpanContext ctx)
      : recorder_(recorder) {
    if (recorder_) {
      saved_ = recorder_->current();
      recorder_->set_current(ctx);
    }
  }
  ~ScopedContext() {
    if (recorder_) recorder_->set_current(saved_);
  }

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  SpanRecorder* recorder_;
  SpanContext saved_;
};

}  // namespace xssd::obs

#endif  // XSSD_OBS_SPAN_H_
