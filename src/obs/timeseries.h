#ifndef XSSD_OBS_TIMESERIES_H_
#define XSSD_OBS_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::obs {

class ChromeTraceWriter;
class SloWatchdog;

struct TimeSeriesOptions {
  /// Sampling window length in virtual time.
  sim::SimTime interval = sim::Ms(1);
  /// Per-series ring bound: oldest windows are evicted beyond this, so a
  /// runaway campaign cannot grow the series without bound.
  size_t max_windows = 4096;
};

/// \brief Virtual-time metric sampler: per-window time series over every
/// metric in a MetricsRegistry.
///
/// Attached to a simulator as a sim::TimeObserver — NOT as a scheduled
/// event. The simulator calls OnTimeAdvance() just before executing the
/// first event at or past each window boundary; the sampler closes every
/// window the jump covers and returns the next boundary. It therefore
/// adds no events, never advances the clock, and draws no randomness:
/// a sampled run executes the exact same event sequence as an unsampled
/// one, which is what lets CI require all non-obs.* metrics to be
/// byte-identical with the sampler on vs off.
///
/// Per closed window, every registered metric yields one point:
///  - counters: the per-window delta. A mid-run MetricsRegistry::Reset()
///    (current < previous) charges the post-reset value, so deltas never
///    go negative.
///  - gauges: the value at the window boundary (the state as of the last
///    event before it — gauges cannot change during event-free gaps).
///  - latency recorders: windowed count/min/max/mean/p50/p99/p999 via
///    LatencyRecorder window tracking (enabled on first sight).
/// Metrics registered mid-run join at the then-current window index
/// (`first_window` in the export). Series are bounded rings; evictions are
/// counted per series. The export (AppendJson) is deterministic: sorted
/// names, virtual timestamps, round-trip number formatting.
///
/// With a ChromeTraceWriter attached (set_trace), each closed window also
/// emits "ph":"C" counter-track events, so GC-reserve sawtooths and credit
/// levels render in Perfetto next to the existing span tracks. With an
/// SloWatchdog attached, rules are evaluated at each window close.
class TimeSeriesSampler : public sim::TimeObserver {
 public:
  using LatencyWindow = sim::LatencyRecorder::WindowStats;

  struct ValueSeries {
    size_t first_window = 0;  ///< window index of values.front()
    uint64_t evicted = 0;
    uint64_t last_raw = 0;  ///< counters: previous cumulative value
    std::deque<double> values;
  };
  struct LatencySeries {
    size_t first_window = 0;
    uint64_t evicted = 0;
    std::deque<LatencyWindow> windows;
  };

  TimeSeriesSampler(sim::Simulator* sim, MetricsRegistry* registry,
                    TimeSeriesOptions options = {});
  ~TimeSeriesSampler() override;

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Begin sampling at the simulator's current time: snapshot counter
  /// bases (pre-attach history is not charged to window 0), enable latency
  /// window tracking, attach as the simulator's time observer.
  void Start();

  /// Close any still-open windows up to the simulator's current (or final)
  /// time — including a trailing partial window — and detach. Idempotent;
  /// called automatically when the simulator is destroyed first.
  void Finalize();
  bool finalized() const { return finalized_; }

  /// Emit counter tracks into `trace` at each window close (not attached
  /// as a simulator trace sink — the writer may also be one, separately).
  void set_trace(ChromeTraceWriter* trace) { trace_ = trace; }
  /// Evaluate `watchdog` at each window close.
  void set_watchdog(SloWatchdog* watchdog) { watchdog_ = watchdog; }
  SloWatchdog* watchdog() const { return watchdog_; }

  // sim::TimeObserver
  sim::SimTime OnTimeAdvance(sim::SimTime when) override;
  void OnSimulatorTearDown(sim::SimTime last_now) override;

  size_t windows() const { return windows_; }
  sim::SimTime start_time() const { return start_; }
  /// Virtual end of the last closed window (== start_time before any
  /// window closes).
  sim::SimTime end_time() const { return end_; }
  const TimeSeriesOptions& options() const { return options_; }
  uint64_t evicted_values() const { return evicted_values_; }

  const std::map<std::string, ValueSeries>& counter_series() const {
    return counter_series_;
  }
  const std::map<std::string, ValueSeries>& gauge_series() const {
    return gauge_series_;
  }
  const std::map<std::string, LatencySeries>& latency_series() const {
    return latency_series_;
  }

  /// Value of `metric` in the most recently closed window, for the
  /// watchdog: counters yield their delta (stat "" or "delta"), gauges
  /// their value ("" or "value"), latency series the named stat (count,
  /// min, max, mean, p50, p99, p999). False when the metric has no series
  /// yet or the stat name is unknown.
  bool LastValue(const std::string& metric, const std::string& stat,
                 double* out) const;

  /// Deterministic JSON object: interval/start/end/window count plus one
  /// entry per series (sorted by name). Includes the watchdog's rule state
  /// when one is attached.
  void AppendJson(std::string* out) const;

 private:
  void CloseWindow(sim::SimTime window_end);
  void PushValue(ValueSeries* s, double v);

  sim::Simulator* sim_;
  MetricsRegistry* registry_;
  TimeSeriesOptions options_;
  ChromeTraceWriter* trace_ = nullptr;
  SloWatchdog* watchdog_ = nullptr;

  bool started_ = false;
  bool attached_ = false;
  bool finalized_ = false;
  sim::SimTime start_ = 0;
  sim::SimTime end_ = 0;
  sim::SimTime next_due_ = 0;
  sim::SimTime teardown_now_ = 0;
  size_t windows_ = 0;
  uint64_t evicted_values_ = 0;

  std::map<std::string, ValueSeries> counter_series_;
  std::map<std::string, ValueSeries> gauge_series_;
  std::map<std::string, LatencySeries> latency_series_;

  Counter* m_windows_ = nullptr;  ///< obs.timeseries.windows
};

}  // namespace xssd::obs

#endif  // XSSD_OBS_TIMESERIES_H_
