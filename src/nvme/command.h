#ifndef XSSD_NVME_COMMAND_H_
#define XSSD_NVME_COMMAND_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace xssd::nvme {

/// NVM command set opcodes (I/O queue).
enum class IoOpcode : uint8_t {
  kFlush = 0x00,
  kWrite = 0x01,
  kRead = 0x02,
};

/// Admin opcodes. Opcodes >= 0xC0 are vendor specific; the Villars device
/// ships its Transport/Destage/CMB configuration there (paper §4.2: "the
/// commands we added are sent using vendor-specific features of the regular
/// NVMe drivers").
enum class AdminOpcode : uint8_t {
  kIdentify = 0x06,
  // --- Villars vendor-specific extensions ---
  kXssdSetRole = 0xC0,        ///< cdw10: 0 standalone, 1 primary, 2 secondary
  kXssdAddPeer = 0xC1,        ///< cdw10: peer id (NTB window index)
  kXssdSetUpdatePeriod = 0xC2,///< cdw10: shadow-counter period in ns
  kXssdSetDestagePolicy = 0xC3,///< cdw10: ftl::SchedulingPolicy
  kXssdSetReplication = 0xC4, ///< cdw10: ReplicationProtocol
  kXssdGetLogRing = 0xC5,     ///< returns destage ring head/tail in result
  kXssdClearPeers = 0xC6,
  kXssdSetTerm = 0xC7,        ///< cdw10: term, cdw11: authorised writer slot
  kXssdRemovePeer = 0xC8,     ///< cdw10: member slot to drop from the group
  kXssdTruncate = 0xC9,       ///< cdw11:cdw10: keep stream bytes [0, offset)
};

/// \brief One 64-byte submission-queue entry.
///
/// Field layout follows the spirit of the spec (command dword 0, nsid,
/// PRP1/2, cdw10-15); SLBA and length live in cdw10..12 as in the NVM
/// command set. PRP1 points at a physically contiguous host buffer in this
/// model.
struct Command {
  uint8_t opcode = 0;
  uint16_t cid = 0;
  uint32_t nsid = 1;
  uint64_t prp1 = 0;  ///< host buffer address
  uint64_t prp2 = 0;
  uint32_t cdw10 = 0;
  uint32_t cdw11 = 0;
  uint32_t cdw12 = 0;
  uint32_t cdw13 = 0;
  uint32_t cdw14 = 0;
  uint32_t cdw15 = 0;

  uint64_t slba() const {
    return (static_cast<uint64_t>(cdw11) << 32) | cdw10;
  }
  void set_slba(uint64_t lba) {
    cdw10 = static_cast<uint32_t>(lba);
    cdw11 = static_cast<uint32_t>(lba >> 32);
  }
  /// Number of logical blocks, 0-based per spec (0 == 1 block).
  uint32_t nlb0() const { return cdw12 & 0xFFFF; }
  void set_nlb(uint32_t blocks) { cdw12 = (blocks - 1) & 0xFFFF; }
};

inline constexpr size_t kSqeBytes = 64;
inline constexpr size_t kCqeBytes = 16;

/// Serialize a command into the 64-byte SQE image placed in host memory.
void EncodeCommand(const Command& cmd, uint8_t out[kSqeBytes]);
Command DecodeCommand(const uint8_t in[kSqeBytes]);

/// NVMe status codes (subset).
enum class CmdStatus : uint16_t {
  kSuccess = 0x0,
  kInvalidOpcode = 0x1,
  kInvalidField = 0x2,
  kLbaOutOfRange = 0x80,
  kInternalError = 0x6,
  kMediaWriteFault = 0x280,
  kMediaUnrecoveredRead = 0x281,
};

/// \brief One 16-byte completion-queue entry.
struct Completion {
  uint32_t result = 0;  ///< command-specific dword 0
  uint16_t sq_id = 0;
  uint16_t sq_head = 0;
  uint16_t cid = 0;
  CmdStatus status = CmdStatus::kSuccess;
  bool phase = false;

  bool ok() const { return status == CmdStatus::kSuccess; }
};

void EncodeCompletion(const Completion& cpl, uint8_t out[kCqeBytes]);
Completion DecodeCompletion(const uint8_t in[kCqeBytes]);

}  // namespace xssd::nvme

#endif  // XSSD_NVME_COMMAND_H_
