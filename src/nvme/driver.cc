#include "nvme/driver.h"

#include <cstring>

#include "common/logging.h"

namespace xssd::nvme {

Driver::Driver(sim::Simulator* sim, pcie::PcieFabric* fabric,
               Controller* controller, uint64_t bar0_base, Options options)
    : sim_(sim),
      fabric_(fabric),
      controller_(controller),
      bar0_base_(bar0_base),
      options_(options) {}

void Driver::SetSpans(obs::SpanRecorder* spans, const std::string& node_tag) {
  spans_ = spans;
  span_node_ = spans ? spans->InternNode(node_tag) : 0;
}

uint64_t Driver::AllocHostBuffer(uint64_t bytes) {
  // 64-byte align every allocation.
  bump_ = (bump_ + 63) & ~63ull;
  XSSD_CHECK(bump_ + bytes <= fabric_->host_memory_size());
  uint64_t addr = bump_;
  bump_ += bytes;
  return addr;
}

Status Driver::Initialize() {
  for (int q = 0; q < 2; ++q) {
    sq_base_[q] = AllocHostBuffer(options_.queue_entries * kSqeBytes);
    cq_base_[q] = AllocHostBuffer(options_.queue_entries * kCqeBytes);
    QueueConfig config;
    config.sq_base = sq_base_[q];
    config.cq_base = cq_base_[q];
    config.entries = options_.queue_entries;
    XSSD_RETURN_IF_ERROR(
        controller_->ConfigureQueue(static_cast<uint16_t>(q), config));
  }
  controller_->SetInterruptHandler(
      [this](uint16_t qid) { OnInterrupt(qid); });
  return Status::OK();
}

void Driver::Submit(uint16_t qid, Command cmd, Pending pending) {
  XSSD_CHECK(qid < 2);
  cmd.cid = next_cid_++;
  if (next_cid_ == 0) next_cid_ = 1;
  uint32_t key = (static_cast<uint32_t>(qid) << 16) | cmd.cid;
  outstanding_.emplace(key, std::move(pending));

  // The host CPU writes the SQE into its own memory (functional) and rings
  // the doorbell after the submission-path overhead.
  uint8_t sqe[kSqeBytes];
  EncodeCommand(cmd, sqe);
  std::memcpy(fabric_->host_memory() + sq_base_[qid] +
                  sq_tail_[qid] * kSqeBytes,
              sqe, kSqeBytes);
  sq_tail_[qid] =
      static_cast<uint16_t>((sq_tail_[qid] + 1) % options_.queue_entries);
  uint32_t tail = sq_tail_[qid];

  sim_->Schedule(options_.submit_overhead, [this, qid, tail]() {
    uint64_t db = bar0_base_ + kDoorbellBase + qid * kDoorbellStride;
    uint8_t value[4];
    std::memcpy(value, &tail, 4);
    fabric_->HostWrite(db, value, 4, 4);
  });
}

void Driver::OnInterrupt(uint16_t qid) {
  XSSD_CHECK(qid < 2);
  // Drain all new completions; each costs the completion-path overhead.
  while (true) {
    const uint8_t* cqe = fabric_->host_memory() + cq_base_[qid] +
                         cq_head_[qid] * kCqeBytes;
    Completion cpl = DecodeCompletion(cqe);
    if (cpl.phase != cq_phase_[qid]) break;  // no new entry
    cq_head_[qid] =
        static_cast<uint16_t>((cq_head_[qid] + 1) % options_.queue_entries);
    if (cq_head_[qid] == 0) cq_phase_[qid] = !cq_phase_[qid];

    uint32_t key = (static_cast<uint32_t>(qid) << 16) | cpl.cid;
    auto it = outstanding_.find(key);
    if (it == outstanding_.end()) {
      XSSD_LOG(kWarning) << "completion for unknown cid " << cpl.cid;
      continue;
    }
    Pending pending = std::move(it->second);
    outstanding_.erase(it);
    sim_->Schedule(options_.completion_overhead,
                   [cpl, pending = std::move(pending)]() mutable {
                     pending.done(cpl);
                   });
  }
}

uint64_t Driver::AcquireBuffer(uint64_t bytes) {
  auto& pool = buffer_pool_[bytes];
  if (!pool.empty()) {
    uint64_t addr = pool.back();
    pool.pop_back();
    return addr;
  }
  return AllocHostBuffer(bytes);
}

void Driver::ReleaseBuffer(uint64_t addr, uint64_t bytes) {
  buffer_pool_[bytes].push_back(addr);
}

void Driver::Write(uint64_t lba, const uint8_t* data, uint32_t blocks,
                   IoCallback done) {
  uint64_t bytes = static_cast<uint64_t>(blocks) * block_bytes();
  uint64_t buf = AcquireBuffer(bytes);
  std::memcpy(fabric_->host_memory() + buf, data, bytes);

  Command cmd;
  cmd.opcode = static_cast<uint8_t>(IoOpcode::kWrite);
  cmd.prp1 = buf;
  cmd.set_slba(lba);
  cmd.set_nlb(blocks);

  Pending pending;
  pending.done = [this, buf, bytes, done = std::move(done)](Completion cpl) {
    ReleaseBuffer(buf, bytes);
    done(cpl.ok() ? Status::OK()
                  : Status::IoError("NVMe write failed"));
  };
  Submit(1, cmd, std::move(pending));
}

void Driver::Read(uint64_t lba, uint32_t blocks, ReadCallback done) {
  uint64_t bytes = static_cast<uint64_t>(blocks) * block_bytes();
  uint64_t buf = AcquireBuffer(bytes);

  Command cmd;
  cmd.opcode = static_cast<uint8_t>(IoOpcode::kRead);
  cmd.prp1 = buf;
  cmd.set_slba(lba);
  cmd.set_nlb(blocks);

  // Span covers the whole command round trip: submission syscall, doorbell,
  // device work, interrupt, completion processing.
  obs::SpanContext read_span;
  if (spans_) {
    read_span = spans_->StartSpan(obs::Stage::kNvmeRead, span_node_,
                                  spans_->current());
  }

  Pending pending;
  pending.read_buffer = buf;
  pending.read_bytes = static_cast<uint32_t>(bytes);
  pending.done = [this, buf, bytes, read_span,
                  done = std::move(done)](Completion cpl) {
    if (spans_) spans_->EndSpan(read_span);
    if (!cpl.ok()) {
      ReleaseBuffer(buf, bytes);
      // Preserve the media-error class: an uncorrectable read is the HA
      // client's cue to re-fetch from a replica, unlike a plain IO error.
      done(cpl.status == CmdStatus::kMediaUnrecoveredRead
               ? Status::Corruption("NVMe read: unrecovered media error")
               : Status::IoError("NVMe read failed"),
           {});
      return;
    }
    std::vector<uint8_t> data(fabric_->host_memory() + buf,
                              fabric_->host_memory() + buf + bytes);
    ReleaseBuffer(buf, bytes);
    done(Status::OK(), std::move(data));
  };
  Submit(1, cmd, std::move(pending));
}

void Driver::Flush(IoCallback done) {
  Command cmd;
  cmd.opcode = static_cast<uint8_t>(IoOpcode::kFlush);
  Pending pending;
  pending.done = [done = std::move(done)](Completion cpl) {
    done(cpl.ok() ? Status::OK() : Status::IoError("NVMe flush failed"));
  };
  Submit(1, cmd, std::move(pending));
}

void Driver::Admin(Command cmd, AdminCallback done) {
  Pending pending;
  pending.done = std::move(done);
  Submit(0, cmd, std::move(pending));
}

}  // namespace xssd::nvme
