#include "nvme/command.h"

namespace xssd::nvme {

namespace {
void Put16(uint8_t* out, uint16_t v) {
  out[0] = static_cast<uint8_t>(v);
  out[1] = static_cast<uint8_t>(v >> 8);
}
void Put32(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}
void Put64(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}
uint16_t Get16(const uint8_t* in) {
  return static_cast<uint16_t>(in[0] | (in[1] << 8));
}
uint32_t Get32(const uint8_t* in) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}
uint64_t Get64(const uint8_t* in) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}
}  // namespace

void EncodeCommand(const Command& cmd, uint8_t out[kSqeBytes]) {
  std::memset(out, 0, kSqeBytes);
  out[0] = cmd.opcode;
  Put16(out + 2, cmd.cid);
  Put32(out + 4, cmd.nsid);
  Put64(out + 24, cmd.prp1);
  Put64(out + 32, cmd.prp2);
  Put32(out + 40, cmd.cdw10);
  Put32(out + 44, cmd.cdw11);
  Put32(out + 48, cmd.cdw12);
  Put32(out + 52, cmd.cdw13);
  Put32(out + 56, cmd.cdw14);
  Put32(out + 60, cmd.cdw15);
}

Command DecodeCommand(const uint8_t in[kSqeBytes]) {
  Command cmd;
  cmd.opcode = in[0];
  cmd.cid = Get16(in + 2);
  cmd.nsid = Get32(in + 4);
  cmd.prp1 = Get64(in + 24);
  cmd.prp2 = Get64(in + 32);
  cmd.cdw10 = Get32(in + 40);
  cmd.cdw11 = Get32(in + 44);
  cmd.cdw12 = Get32(in + 48);
  cmd.cdw13 = Get32(in + 52);
  cmd.cdw14 = Get32(in + 56);
  cmd.cdw15 = Get32(in + 60);
  return cmd;
}

void EncodeCompletion(const Completion& cpl, uint8_t out[kCqeBytes]) {
  std::memset(out, 0, kCqeBytes);
  Put32(out, cpl.result);
  Put16(out + 8, cpl.sq_head);
  Put16(out + 10, cpl.sq_id);
  Put16(out + 12, cpl.cid);
  uint16_t status_phase = static_cast<uint16_t>(
      (static_cast<uint16_t>(cpl.status) << 1) | (cpl.phase ? 1 : 0));
  Put16(out + 14, status_phase);
}

Completion DecodeCompletion(const uint8_t in[kCqeBytes]) {
  Completion cpl;
  cpl.result = Get32(in);
  cpl.sq_head = Get16(in + 8);
  cpl.sq_id = Get16(in + 10);
  cpl.cid = Get16(in + 12);
  uint16_t status_phase = Get16(in + 14);
  cpl.phase = (status_phase & 1) != 0;
  cpl.status = static_cast<CmdStatus>(status_phase >> 1);
  return cpl;
}

}  // namespace xssd::nvme
