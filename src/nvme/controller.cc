#include "nvme/controller.h"

#include <cstring>

#include "common/logging.h"
#include "fault/fault_injector.h"

namespace xssd::nvme {

Controller::Controller(sim::Simulator* sim, pcie::PcieFabric* fabric,
                       ftl::Ftl* ftl, std::string name)
    : sim_(sim), fabric_(fabric), ftl_(ftl), name_(std::move(name)) {}

void Controller::SetMetrics(obs::MetricsRegistry* registry,
                            const std::string& prefix) {
  m_doorbells_ = registry->GetCounter(prefix + "nvme.doorbells");
  m_commands_ = registry->GetCounter(prefix + "nvme.commands");
  m_completions_ = registry->GetCounter(prefix + "nvme.completions");
  m_flushes_ = registry->GetCounter(prefix + "nvme.flushes");
  m_writes_ = registry->GetCounter(prefix + "nvme.writes");
  m_reads_ = registry->GetCounter(prefix + "nvme.reads");
  m_cmd_latency_us_ = registry->GetLatency(prefix + "nvme.cmd_latency_us");
}

Status Controller::ConfigureQueue(uint16_t qid, const QueueConfig& config) {
  if (qid >= kMaxQueues) return Status::InvalidArgument("queue id too large");
  if (config.entries == 0) return Status::InvalidArgument("empty queue");
  queues_[qid] = QueueState{};
  queues_[qid].config = config;
  return Status::OK();
}

void Controller::OnMmioWrite(uint64_t offset, const uint8_t* data,
                             size_t len) {
  if (offset >= kDoorbellBase &&
      offset < kDoorbellBase + kMaxQueues * kDoorbellStride) {
    uint64_t rel = offset - kDoorbellBase;
    uint16_t qid = static_cast<uint16_t>(rel / kDoorbellStride);
    bool is_sq_tail = (rel % kDoorbellStride) < 4;
    uint32_t value = 0;
    std::memcpy(&value, data, std::min<size_t>(len, 4));
    if (is_sq_tail) {
      OnDoorbell(qid, value);
    }
    // CQ head doorbells only free CQE slots; the model's queues are deep
    // enough that we track but do not throttle on them.
    return;
  }
  if (offset == kRegCc && len >= 4) {
    std::memcpy(&cc_, data, 4);
    return;
  }
  // Other register writes (AQA/ASQ/ACQ) are accepted but queue setup goes
  // through ConfigureQueue() in this model.
}

void Controller::OnMmioRead(uint64_t offset, uint8_t* out, size_t len) {
  std::memset(out, 0, len);
  if (offset == kRegCap && len >= 8) {
    uint64_t cap = 0x1ull;  // minimal: MQES
    std::memcpy(out, &cap, std::min<size_t>(len, 8));
  } else if (offset == kRegCsts && len >= 4) {
    uint32_t csts = (cc_ & 1) ? 1u : 0u;  // RDY mirrors CC.EN
    std::memcpy(out, &csts, 4);
  }
}

void Controller::OnDoorbell(uint16_t qid, uint32_t value) {
  if (qid >= kMaxQueues || queues_[qid].config.entries == 0) {
    XSSD_LOG(kWarning) << name_ << ": doorbell for unconfigured queue "
                       << qid;
    return;
  }
  if (m_doorbells_) m_doorbells_->Add();
  QueueState& q = queues_[qid];
  q.sq_tail_shadow = static_cast<uint16_t>(value % q.config.entries);
  FetchNext(qid);
}

void Controller::FetchNext(uint16_t qid) {
  QueueState& q = queues_[qid];
  if (q.fetching || q.sq_head == q.sq_tail_shadow) return;
  q.fetching = true;
  uint64_t sqe_addr = q.config.sq_base + q.sq_head * kSqeBytes;
  // DMA-fetch the submission entry from host memory.
  fabric_->DmaFromHost(sqe_addr, kSqeBytes,
                       [this, qid](std::vector<uint8_t> bytes) {
                         QueueState& queue = queues_[qid];
                         queue.fetching = false;
                         queue.sq_head = static_cast<uint16_t>(
                             (queue.sq_head + 1) % queue.config.entries);
                         Command cmd = DecodeCommand(bytes.data());
                         Execute(qid, cmd);
                         FetchNext(qid);  // pipeline further entries
                       });
}

void Controller::Execute(uint16_t qid, const Command& cmd) {
  if (m_commands_) m_commands_->Add();
  sim::SimTime started_at = sim_->Now();
  auto done = [this, qid, started_at](Completion cpl) {
    if (m_cmd_latency_us_) {
      m_cmd_latency_us_->Add(sim::ToUs(sim_->Now() - started_at));
    }
    PostCompletion(qid, cpl);
  };
  if (qid == 0) {
    ExecuteAdmin(qid, cmd, done);
    return;
  }
  if (injector_ != nullptr) {
    auto decision = injector_->InjectNvmeTimeout();
    if (decision.timeout) {
      // The command is swallowed and surfaces only as a late error
      // completion — the shape a host-side timeout + abort would take.
      Completion cpl;
      cpl.cid = cmd.cid;
      cpl.status = CmdStatus::kInternalError;
      sim_->Schedule(decision.delay,
                     [done = std::move(done), cpl]() { done(cpl); });
      return;
    }
  }
  ExecuteIo(qid, cmd, done);
}

void Controller::ExecuteIo(uint16_t qid, const Command& cmd,
                           std::function<void(Completion)> done) {
  (void)qid;
  Completion cpl;
  cpl.cid = cmd.cid;
  switch (static_cast<IoOpcode>(cmd.opcode)) {
    case IoOpcode::kFlush: {
      if (m_flushes_) m_flushes_->Add();
      ftl_->Flush([cpl, done = std::move(done)](Status status) mutable {
        cpl.status =
            status.ok() ? CmdStatus::kSuccess : CmdStatus::kInternalError;
        done(cpl);
      });
      return;
    }
    case IoOpcode::kWrite: {
      if (m_writes_) m_writes_->Add();
      uint64_t lba = cmd.slba();
      uint32_t blocks = cmd.nlb0() + 1;
      if (lba + blocks > namespace_blocks()) {
        cpl.status = CmdStatus::kLbaOutOfRange;
        done(cpl);
        return;
      }
      // DMA the data in, then write page-per-LBA through the data buffer.
      uint64_t bytes = static_cast<uint64_t>(blocks) * block_bytes();
      fabric_->DmaFromHost(
          cmd.prp1, bytes,
          [this, lba, blocks, cpl,
           done = std::move(done)](std::vector<uint8_t> data) mutable {
            auto remaining = std::make_shared<uint32_t>(blocks);
            auto failed = std::make_shared<bool>(false);
            for (uint32_t i = 0; i < blocks; ++i) {
              std::vector<uint8_t> page(
                  data.begin() + static_cast<size_t>(i) * block_bytes(),
                  data.begin() + static_cast<size_t>(i + 1) * block_bytes());
              ftl_->WriteBuffered(
                  lba + i, std::move(page),
                  [remaining, failed, cpl, done](Status status) mutable {
                    if (!status.ok()) *failed = true;
                    if (--*remaining == 0) {
                      cpl.status = *failed ? CmdStatus::kMediaWriteFault
                                           : CmdStatus::kSuccess;
                      done(cpl);
                    }
                  });
            }
          });
      return;
    }
    case IoOpcode::kRead: {
      if (m_reads_) m_reads_->Add();
      uint64_t lba = cmd.slba();
      uint32_t blocks = cmd.nlb0() + 1;
      if (lba + blocks > namespace_blocks()) {
        cpl.status = CmdStatus::kLbaOutOfRange;
        done(cpl);
        return;
      }
      auto buffer = std::make_shared<std::vector<uint8_t>>(
          static_cast<size_t>(blocks) * block_bytes());
      auto remaining = std::make_shared<uint32_t>(blocks);
      auto failed = std::make_shared<bool>(false);
      for (uint32_t i = 0; i < blocks; ++i) {
        ftl_->ReadPage(
            ftl::IoClass::kConventional, lba + i,
            [this, i, buffer, remaining, failed, cpl, prp = cmd.prp1,
             done](Status status, std::vector<uint8_t> page) mutable {
              if (!status.ok()) {
                *failed = true;
              } else {
                std::memcpy(buffer->data() +
                                static_cast<size_t>(i) * block_bytes(),
                            page.data(),
                            std::min<size_t>(page.size(), block_bytes()));
              }
              if (--*remaining == 0) {
                if (*failed) {
                  cpl.status = CmdStatus::kMediaUnrecoveredRead;
                  done(cpl);
                  return;
                }
                fabric_->DmaToHost(prp, buffer->data(), buffer->size(),
                                   [cpl, done]() mutable {
                                     cpl.status = CmdStatus::kSuccess;
                                     done(cpl);
                                   });
              }
            });
      }
      return;
    }
  }
  cpl.status = CmdStatus::kInvalidOpcode;
  done(cpl);
}

void Controller::ExecuteAdmin(uint16_t qid, const Command& cmd,
                              std::function<void(Completion)> done) {
  (void)qid;
  Completion cpl;
  cpl.cid = cmd.cid;
  if (cmd.opcode >= 0xC0) {
    if (vendor_) {
      Command copy = cmd;
      vendor_(copy, std::move(done));
      return;
    }
    cpl.status = CmdStatus::kInvalidOpcode;
    done(cpl);
    return;
  }
  switch (static_cast<AdminOpcode>(cmd.opcode)) {
    case AdminOpcode::kIdentify: {
      // Return namespace size in result (compact identify).
      cpl.result = static_cast<uint32_t>(namespace_blocks());
      cpl.status = CmdStatus::kSuccess;
      done(cpl);
      return;
    }
    default:
      break;
  }
  cpl.status = CmdStatus::kInvalidOpcode;
  done(cpl);
}

void Controller::PostCompletion(uint16_t qid, Completion cpl) {
  if (m_completions_) m_completions_->Add();
  QueueState& q = queues_[qid];
  cpl.sq_id = qid;
  cpl.sq_head = q.sq_head;
  cpl.phase = q.cq_phase;
  uint8_t cqe[kCqeBytes];
  EncodeCompletion(cpl, cqe);
  uint64_t cqe_addr = q.config.cq_base + q.cq_tail * kCqeBytes;
  q.cq_tail = static_cast<uint16_t>((q.cq_tail + 1) % q.config.entries);
  if (q.cq_tail == 0) q.cq_phase = !q.cq_phase;
  fabric_->DmaToHost(cqe_addr, cqe, kCqeBytes, [this, qid]() {
    if (interrupt_) interrupt_(qid);
  });
}

void Controller::ExecuteForTest(const Command& cmd,
                                std::function<void(Completion)> done) {
  if (cmd.opcode >= 0xC0 || cmd.nsid == 0) {
    ExecuteAdmin(0, cmd, std::move(done));
  } else {
    ExecuteAdmin(0, cmd, std::move(done));
  }
}

}  // namespace xssd::nvme
