#ifndef XSSD_NVME_DRIVER_H_
#define XSSD_NVME_DRIVER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "nvme/command.h"
#include "nvme/controller.h"
#include "obs/span.h"
#include "pcie/fabric.h"

namespace xssd::nvme {

/// \brief Host-side NVMe driver: owns queue rings in host memory, rings
/// doorbells, consumes completions off interrupts.
///
/// The conventional-path costs a database pays — submission syscall,
/// doorbell MMIO, interrupt handling — are charged here. The x_* drop-in
/// API (host/) bypasses exactly these costs, which is the asymmetry the
/// paper's Figure 9 exposes.
struct DriverOptions {
  uint16_t queue_entries = 256;
  /// CPU cost of an I/O submission syscall (pwrite into the kernel).
  sim::SimTime submit_overhead = sim::Us(2);
  /// CPU cost of interrupt + completion processing.
  sim::SimTime completion_overhead = sim::Us(3);
};

class Driver {
 public:
  using Options = DriverOptions;

  Driver(sim::Simulator* sim, pcie::PcieFabric* fabric,
         Controller* controller, uint64_t bar0_base,
         Options options = Options());

  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  /// Set up admin + one I/O queue pair and register the interrupt handler.
  /// Functional (models boot-time initialization).
  Status Initialize();

  /// Carve a buffer out of the host-memory image (bump allocation).
  uint64_t AllocHostBuffer(uint64_t bytes);

  // -- Asynchronous block I/O ----------------------------------------------

  using IoCallback = std::function<void(Status)>;
  using ReadCallback = std::function<void(Status, std::vector<uint8_t>)>;
  using AdminCallback = std::function<void(Completion)>;

  /// Write `blocks` logical blocks starting at `lba`. `data` must hold
  /// blocks * block_bytes() bytes; it is copied into a host DMA buffer.
  void Write(uint64_t lba, const uint8_t* data, uint32_t blocks,
             IoCallback done);

  void Read(uint64_t lba, uint32_t blocks, ReadCallback done);

  /// Durability barrier (NVMe Flush).
  void Flush(IoCallback done);

  /// Vendor/admin command on the admin queue.
  void Admin(Command cmd, AdminCallback done);

  uint32_t block_bytes() const { return controller_->block_bytes(); }
  uint64_t namespace_blocks() const { return controller_->namespace_blocks(); }

  /// Outstanding commands on the I/O queue.
  uint32_t inflight() const {
    return static_cast<uint32_t>(outstanding_.size());
  }

  /// Attach span tracing (nullptr detaches). Each I/O-queue read opens an
  /// nvme.read span (submission → completion delivered) under the ambient
  /// context.
  void SetSpans(obs::SpanRecorder* spans, const std::string& node_tag);

 private:
  struct Pending {
    std::function<void(Completion)> done;
    uint64_t read_buffer = 0;  // host address to collect read data from
    uint32_t read_bytes = 0;
  };

  /// Place the SQE in host memory, ring the doorbell.
  void Submit(uint16_t qid, Command cmd, Pending pending);
  void OnInterrupt(uint16_t qid);

  /// Reusable DMA buffers (size-class pooled over the bump arena).
  uint64_t AcquireBuffer(uint64_t bytes);
  void ReleaseBuffer(uint64_t addr, uint64_t bytes);

  sim::Simulator* sim_;
  pcie::PcieFabric* fabric_;
  Controller* controller_;
  uint64_t bar0_base_;
  Options options_;

  uint64_t bump_ = 0;       // host-memory bump allocator cursor
  uint64_t sq_base_[2] = {0, 0};
  uint64_t cq_base_[2] = {0, 0};
  uint16_t sq_tail_[2] = {0, 0};
  uint16_t cq_head_[2] = {0, 0};
  bool cq_phase_[2] = {true, true};
  uint16_t next_cid_ = 1;

  std::unordered_map<uint32_t, Pending> outstanding_;  // (qid<<16)|cid
  std::unordered_map<uint64_t, std::vector<uint64_t>> buffer_pool_;

  obs::SpanRecorder* spans_ = nullptr;
  uint16_t span_node_ = 0;
};

}  // namespace xssd::nvme

#endif  // XSSD_NVME_DRIVER_H_
