#ifndef XSSD_NVME_CONTROLLER_H_
#define XSSD_NVME_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "ftl/ftl.h"
#include "nvme/command.h"
#include "obs/metrics.h"
#include "pcie/fabric.h"
#include "sim/simulator.h"

namespace xssd::fault {
class FaultInjector;
}  // namespace xssd::fault

namespace xssd::nvme {

/// BAR0 register offsets (subset of the spec layout).
inline constexpr uint64_t kRegCap = 0x00;
inline constexpr uint64_t kRegCc = 0x14;
inline constexpr uint64_t kRegCsts = 0x1C;
inline constexpr uint64_t kRegAqa = 0x24;
inline constexpr uint64_t kRegAsq = 0x28;
inline constexpr uint64_t kRegAcq = 0x30;
inline constexpr uint64_t kDoorbellBase = 0x1000;
inline constexpr uint64_t kDoorbellStride = 8;  // SQ tail at +0, CQ head at +4
inline constexpr uint64_t kBar0Bytes = 0x2000;
inline constexpr uint32_t kMaxQueues = 4;  // admin + 3 I/O queues

/// Queue registration supplied by the host driver during setup.
struct QueueConfig {
  uint64_t sq_base = 0;  ///< host memory address of the SQ ring
  uint64_t cq_base = 0;
  uint16_t entries = 64;
};

/// \brief The Host Interface Controller of Figure 2: fetches SQEs over DMA,
/// executes NVM commands against the FTL, posts CQEs, raises interrupts.
///
/// The controller is an MmioDevice mapped at BAR0. Doorbell writes trigger
/// command fetches; admin vendor-specific commands are forwarded to a hook
/// so the Villars device can layer its extensions without subclassing.
class Controller : public pcie::MmioDevice {
 public:
  using InterruptHandler = std::function<void(uint16_t queue_id)>;
  using VendorHandler =
      std::function<void(const Command&, std::function<void(Completion)>)>;

  Controller(sim::Simulator* sim, pcie::PcieFabric* fabric, ftl::Ftl* ftl,
             std::string name);

  /// Logical-block size exposed by the namespace. Matches the FTL page so
  /// one LBA == one flash page (16 KiB by default, the paper's group-commit
  /// unit).
  uint32_t block_bytes() const { return ftl_->page_bytes(); }
  uint64_t namespace_blocks() const { return ftl_->lpn_count(); }

  /// Host driver setup (functional, untimed — models the boot-time init).
  Status ConfigureQueue(uint16_t qid, const QueueConfig& config);
  void SetInterruptHandler(InterruptHandler handler) {
    interrupt_ = std::move(handler);
  }
  void SetVendorHandler(VendorHandler handler) {
    vendor_ = std::move(handler);
  }

  // pcie::MmioDevice
  void OnMmioWrite(uint64_t offset, const uint8_t* data, size_t len) override;
  void OnMmioRead(uint64_t offset, uint8_t* out, size_t len) override;

  /// Queue-0 (admin) submission entry point used by tests to bypass the
  /// doorbell machinery. Normal traffic goes through the driver.
  void ExecuteForTest(const Command& cmd,
                      std::function<void(Completion)> done);

  ftl::Ftl* ftl() { return ftl_; }
  const std::string& name() const { return name_; }

  /// Register this controller's metrics under `prefix` + "nvme.".
  void SetMetrics(obs::MetricsRegistry* registry,
                  const std::string& prefix = "");

  /// Attach a fault injector (nullptr detaches). Affects I/O queues only;
  /// admin commands are exempt so setup/recovery tooling stays usable.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

 private:
  struct QueueState {
    QueueConfig config;
    uint16_t sq_tail_shadow = 0;  // last doorbell value written by host
    uint16_t sq_head = 0;         // controller consumption point
    uint16_t cq_tail = 0;
    bool cq_phase = true;
    bool fetching = false;
  };

  void OnDoorbell(uint16_t qid, uint32_t value);
  /// Fetch and launch the next command if the SQ is non-empty.
  void FetchNext(uint16_t qid);
  void Execute(uint16_t qid, const Command& cmd);
  void ExecuteIo(uint16_t qid, const Command& cmd,
                 std::function<void(Completion)> done);
  void ExecuteAdmin(uint16_t qid, const Command& cmd,
                    std::function<void(Completion)> done);
  void PostCompletion(uint16_t qid, Completion cpl);

  sim::Simulator* sim_;
  pcie::PcieFabric* fabric_;
  ftl::Ftl* ftl_;
  std::string name_;
  fault::FaultInjector* injector_ = nullptr;

  QueueState queues_[kMaxQueues];
  InterruptHandler interrupt_;
  VendorHandler vendor_;
  uint32_t cc_ = 0;  // controller configuration register

  // Observability (null until SetMetrics).
  obs::Counter* m_doorbells_ = nullptr;
  obs::Counter* m_commands_ = nullptr;
  obs::Counter* m_completions_ = nullptr;
  obs::Counter* m_flushes_ = nullptr;
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_reads_ = nullptr;
  obs::LatencyRecorder* m_cmd_latency_us_ = nullptr;
};

}  // namespace xssd::nvme

#endif  // XSSD_NVME_CONTROLLER_H_
