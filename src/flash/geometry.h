#ifndef XSSD_FLASH_GEOMETRY_H_
#define XSSD_FLASH_GEOMETRY_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace xssd::flash {

/// \brief Physical organization of a NAND flash subsystem.
///
/// Defaults approximate the Cosmos+ OpenSSD board the paper builds Villars
/// on (§6): 8 channels × 8 ways of MLC NAND with 16 KiB pages. Capacities
/// are scaled down from the board's 2 TB so simulations stay light; all
/// behaviours under test (parallelism, channel contention, GC) depend on
/// the *shape*, not the total capacity.
struct Geometry {
  uint32_t channels = 8;
  uint32_t dies_per_channel = 8;
  uint32_t planes_per_die = 1;
  uint32_t blocks_per_plane = 64;
  uint32_t pages_per_block = 256;
  uint32_t page_bytes = 16 * kKiB;
  /// Out-of-band (spare) bytes per page, programmed atomically with the
  /// page's data area. The FTL stores its mapping metadata (lpn + write
  /// seq) here; recovery rebuilds the page map from an OOB scan.
  uint32_t oob_bytes = 64;

  uint32_t dies() const { return channels * dies_per_channel; }
  uint64_t blocks() const {
    return static_cast<uint64_t>(dies()) * planes_per_die * blocks_per_plane;
  }
  uint64_t pages() const { return blocks() * pages_per_block; }
  uint64_t capacity_bytes() const { return pages() * page_bytes; }
  uint64_t pages_per_die() const {
    return static_cast<uint64_t>(planes_per_die) * blocks_per_plane *
           pages_per_block;
  }
};

/// \brief Physical address of one flash page (or block, with page ignored).
struct Address {
  uint32_t channel = 0;
  uint32_t die = 0;    ///< die (way) within the channel
  uint32_t plane = 0;
  uint32_t block = 0;  ///< block within the plane
  uint32_t page = 0;   ///< page within the block

  friend bool operator==(const Address& a, const Address& b) {
    return a.channel == b.channel && a.die == b.die && a.plane == b.plane &&
           a.block == b.block && a.page == b.page;
  }

  std::string ToString() const;
};

/// Dense index of a page within the whole array, for mapping tables.
uint64_t PageIndex(const Geometry& g, const Address& a);
Address AddressOfPage(const Geometry& g, uint64_t page_index);

/// Dense index of a block within the whole array.
uint64_t BlockIndex(const Geometry& g, const Address& a);
Address AddressOfBlock(const Geometry& g, uint64_t block_index);

/// Validates that `a` addresses a page inside `g`.
bool Contains(const Geometry& g, const Address& a);

}  // namespace xssd::flash

#endif  // XSSD_FLASH_GEOMETRY_H_
