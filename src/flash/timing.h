#ifndef XSSD_FLASH_TIMING_H_
#define XSSD_FLASH_TIMING_H_

#include "sim/time.h"

namespace xssd::flash {

/// \brief NAND operation latencies and channel speed.
///
/// Defaults model the MLC NAND on the Cosmos+ board in the paper's
/// prototype class: tR ≈ 45 µs, tPROG ≈ 300 µs, tBERS ≈ 3.5 ms, with a
/// 250 MB/s channel bus (8 channels ≈ 2 GB/s aggregate, matching the
/// platform's stated 2 GB/s ceiling [44]).
struct Timing {
  sim::SimTime read_latency = sim::Us(45);      ///< tR: cell array -> page reg
  sim::SimTime program_latency = sim::Us(250);  ///< tPROG (fast-page MLC)
  sim::SimTime erase_latency = sim::Us(3500);   ///< tBERS
  double channel_bytes_per_sec = 250e6;         ///< page reg <-> controller
  sim::SimTime command_overhead = sim::Us(1);   ///< cmd/addr cycles per op
};

/// \brief Reliability model knobs.
struct Reliability {
  /// Raw bit-error rate per read at zero wear. 0 disables injection.
  double raw_bit_error_rate = 0.0;
  /// Additional BER per program/erase cycle of the block (wear-out).
  double ber_per_pe_cycle = 0.0;
  /// Additional BER per second of retention dwell (virtual time since the
  /// block was first programmed after its last erase). Charge retention
  /// loss: data sitting cold decays.
  double ber_per_retention_sec = 0.0;
  /// Additional BER per read issued to the block since its last erase
  /// (read disturb). Hot-read blocks decay faster.
  double ber_per_read_disturb = 0.0;
  /// Correctable bits per page (BCH-class code strength, whole-page basis).
  uint32_t ecc_correctable_bits = 72;
  /// Read-retry ladder depth: when a read samples more errors than the ECC
  /// budget, the die re-senses up to this many times with shifted read
  /// reference voltages, each level re-sampling at
  /// effective_ber *= retry_ber_factor and charging one extra tR.
  uint32_t read_retry_levels = 4;
  /// Effective-BER multiplier applied per retry level (< 1).
  double retry_ber_factor = 0.5;
  /// Probability a program operation fails, grows with wear.
  double program_fail_rate = 0.0;
  /// Fraction of blocks marked factory-bad.
  double factory_bad_block_rate = 0.0;
};

}  // namespace xssd::flash

#endif  // XSSD_FLASH_TIMING_H_
