#ifndef XSSD_FLASH_ARRAY_H_
#define XSSD_FLASH_ARRAY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "flash/geometry.h"
#include "flash/timing.h"
#include "obs/metrics.h"
#include "sim/bandwidth_server.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace xssd::fault {
class FaultInjector;
}  // namespace xssd::fault

namespace xssd::flash {

/// Per-array operation statistics.
struct ArrayStats {
  uint64_t reads = 0;
  uint64_t programs = 0;
  uint64_t erases = 0;
  uint64_t program_failures = 0;
  uint64_t erase_failures = 0;
  uint64_t bad_block_rejects = 0;  ///< ops refused because the block is bad
  uint64_t corrected_bit_errors = 0;
  uint64_t uncorrectable_reads = 0;
  uint64_t read_retries = 0;     ///< extra sense passes spent on the ladder
  uint64_t retry_exhausted = 0;  ///< reads still uncorrectable after it
};

/// \brief The NAND flash array: channels × dies with real page contents and
/// timing-accurate operation service.
///
/// This is the "Flash Storage Controller + Flash arrays" bottom layer of
/// Figure 2. The array enforces NAND physics:
///  - a die serves one operation at a time (tR / tPROG / tBERS busy);
///  - page data moves over the per-channel bus at channel_bytes_per_sec;
///  - pages must be programmed in order within an erased block;
///  - reads sample bit errors against the ECC budget (wear-dependent).
///
/// Scheduling *policy* (who goes next) lives above, in ftl::Scheduler; the
/// array exposes busy probes so the scheduler can be opportunistic.
class Array {
 public:
  using ProgramCallback = std::function<void(Status)>;
  using ReadCallback = std::function<void(Status, std::vector<uint8_t>)>;
  using EraseCallback = std::function<void(Status)>;

  Array(sim::Simulator* sim, Geometry geometry, Timing timing,
        Reliability reliability, uint64_t seed);

  Array(const Array&) = delete;
  Array& operator=(const Array&) = delete;

  /// Program a full page. `data` shorter than page_bytes is zero-padded.
  /// Fails with kIoError on (injected) program failure — the caller must
  /// treat the block as bad — or kFailedPrecondition on NAND rule
  /// violations (page not erased / out-of-order program).
  /// `oob` (at most geometry().oob_bytes) lands in the page's spare area in
  /// the same program pulse — data and OOB are atomic, which is what makes
  /// an OOB mapping scan a sound recovery source.
  /// `bus_released` (optional) fires when the channel-bus transfer into the
  /// die's page register finishes — the point the scheduler may start the
  /// next transfer on this channel while tPROG runs.
  void Program(const Address& addr, std::vector<uint8_t> data,
               std::vector<uint8_t> oob, ProgramCallback done,
               sim::Simulator::Callback bus_released = nullptr);
  void Program(const Address& addr, std::vector<uint8_t> data,
               ProgramCallback done,
               sim::Simulator::Callback bus_released = nullptr) {
    Program(addr, std::move(data), std::vector<uint8_t>{}, std::move(done),
            std::move(bus_released));
  }

  /// Read a full page. kCorruption when errors exceed the ECC budget; the
  /// returned data is then the *corrupted* image.
  void Read(const Address& addr, ReadCallback done);

  /// Erase a block (page component of `addr` ignored).
  void Erase(const Address& addr, EraseCallback done);

  // -- Scheduler probes -----------------------------------------------------

  /// True if the die can start an operation right now.
  bool DieIdle(uint32_t channel, uint32_t die) const;
  /// True if the channel bus can start a transfer right now.
  bool ChannelIdle(uint32_t channel) const;
  /// Absolute time the die becomes free.
  sim::SimTime DieBusyUntil(uint32_t channel, uint32_t die) const;

  bool IsBadBlock(const Address& addr) const;
  uint32_t EraseCount(const Address& addr) const;

  /// Reads issued to the page's block since its last erase (read disturb).
  uint64_t ReadsSinceErase(const Address& addr) const;
  /// Virtual time the block was last erased or first programmed after that
  /// erase — the epoch retention dwell is measured from.
  sim::SimTime ProgrammedAt(const Address& addr) const;
  /// Current effective raw bit-error rate of the page's block: wear +
  /// retention dwell + read disturb. Pure prediction — no sampling, no
  /// fault-injection boosts. The patrol scrubber ranks blocks with this.
  double PredictedBer(const Address& addr) const;

  /// Synchronous functional peek at stored page bytes (tests/recovery
  /// tooling only — no timing, no ECC).
  const std::vector<uint8_t>* PeekPage(const Address& addr) const;

  /// Synchronous peek at a page's OOB (spare) bytes, or nullptr when the
  /// page is erased or carries no OOB. Recovery's boot-time mapping scan
  /// reads through this probe (timing is charged by the caller).
  const std::vector<uint8_t>* PeekOob(const Address& addr) const;

  /// Test hook: XOR `xor_mask` into one stored OOB byte (index taken modulo
  /// the record length). No-op on erased pages; returns whether it landed.
  bool CorruptOob(const Address& addr, size_t byte_index, uint8_t xor_mask);

  const Geometry& geometry() const { return geometry_; }
  const Timing& timing() const { return timing_; }
  const Reliability& reliability() const { return reliability_; }
  const ArrayStats& stats() const { return stats_; }

  /// Aggregate sustainable program bandwidth (all dies busy), bytes/sec.
  double MaxProgramBandwidth() const;

  /// Register this array's metrics under `prefix` + "flash.".
  void SetMetrics(obs::MetricsRegistry* registry,
                  const std::string& prefix = "");

  /// Attach a fault injector (nullptr detaches). Injected program/erase
  /// failures and uncorrectable reads ride the same paths as the wear
  /// model's, so callers cannot tell them apart — which is the point.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

 private:
  struct Block {
    std::vector<std::vector<uint8_t>> pages;  // empty vector == erased
    std::vector<std::vector<uint8_t>> oob;    // spare area, same lifecycle
    uint32_t next_page = 0;                   // NAND in-order program cursor
    uint32_t erase_count = 0;
    sim::SimTime programmed_at = 0;   // retention-dwell epoch (see header)
    uint64_t reads_since_erase = 0;   // read-disturb counter
    bool bad = false;
  };
  struct Die {
    sim::SimTime busy_until = 0;
    std::vector<Block> blocks;  // planes * blocks_per_plane
  };

  Block& BlockAt(const Address& addr);
  const Block& BlockAt(const Address& addr) const;
  Die& DieAt(uint32_t channel, uint32_t die) {
    return dies_[channel * geometry_.dies_per_channel + die];
  }
  const Die& DieAt(uint32_t channel, uint32_t die) const {
    return dies_[channel * geometry_.dies_per_channel + die];
  }

  /// Occupy the die starting no earlier than `earliest`; returns end time.
  sim::SimTime OccupyDie(Die& die, sim::SimTime earliest,
                         sim::SimTime duration);

  /// Effective BER of a block right now: raw + wear + retention + disturb.
  /// No fault-injection terms (PredictedBer shares this).
  double BaseBer(const Block& block) const;

  /// Sample read bit errors for a block at its current wear, retention
  /// dwell, and disturb count, scaled by `ber_scale` (the retry ladder
  /// passes < 1 for shifted-reference re-senses). Fault-injection dwell and
  /// disturb boosts are added here so injected decay is indistinguishable
  /// from organic decay.
  uint64_t SampleBitErrors(const Block& block, double ber_scale);

  sim::Simulator* sim_;
  Geometry geometry_;
  Timing timing_;
  Reliability reliability_;
  sim::Rng rng_;
  fault::FaultInjector* injector_ = nullptr;

  std::vector<Die> dies_;
  std::vector<std::unique_ptr<sim::BandwidthServer>> channel_bus_;
  ArrayStats stats_;

  // Observability (null until SetMetrics).
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_programs_ = nullptr;
  obs::Counter* m_erases_ = nullptr;
  obs::Counter* m_program_failures_ = nullptr;
  obs::Counter* m_erase_failures_ = nullptr;
  obs::Counter* m_bad_block_rejects_ = nullptr;
  obs::Counter* m_corrected_bit_errors_ = nullptr;
  obs::Counter* m_uncorrectable_reads_ = nullptr;
  obs::Counter* m_read_retries_ = nullptr;
  obs::Counter* m_retry_exhausted_ = nullptr;
};

}  // namespace xssd::flash

#endif  // XSSD_FLASH_ARRAY_H_
