#include "flash/array.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/fault_injector.h"

namespace xssd::flash {

Array::Array(sim::Simulator* sim, Geometry geometry, Timing timing,
             Reliability reliability, uint64_t seed)
    : sim_(sim),
      geometry_(geometry),
      timing_(timing),
      reliability_(reliability),
      rng_(seed) {
  dies_.resize(geometry_.dies());
  const uint32_t blocks_per_die =
      geometry_.planes_per_die * geometry_.blocks_per_plane;
  for (Die& die : dies_) {
    die.blocks.resize(blocks_per_die);
    for (Block& block : die.blocks) {
      block.pages.resize(geometry_.pages_per_block);
      block.oob.resize(geometry_.pages_per_block);
      if (reliability_.factory_bad_block_rate > 0 &&
          rng_.Bernoulli(reliability_.factory_bad_block_rate)) {
        block.bad = true;
      }
    }
  }
  channel_bus_.reserve(geometry_.channels);
  for (uint32_t c = 0; c < geometry_.channels; ++c) {
    channel_bus_.push_back(std::make_unique<sim::BandwidthServer>(
        sim_, timing_.channel_bytes_per_sec, timing_.command_overhead));
  }
}

void Array::SetMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) {
  m_reads_ = registry->GetCounter(prefix + "flash.reads");
  m_programs_ = registry->GetCounter(prefix + "flash.programs");
  m_erases_ = registry->GetCounter(prefix + "flash.erases");
  m_program_failures_ =
      registry->GetCounter(prefix + "flash.program_failures");
  m_erase_failures_ = registry->GetCounter(prefix + "flash.erase_failures");
  m_bad_block_rejects_ =
      registry->GetCounter(prefix + "flash.bad_block_rejects");
  m_corrected_bit_errors_ =
      registry->GetCounter(prefix + "flash.corrected_bit_errors");
  m_uncorrectable_reads_ =
      registry->GetCounter(prefix + "flash.uncorrectable_reads");
  m_read_retries_ = registry->GetCounter(prefix + "flash.read_retries");
  m_retry_exhausted_ =
      registry->GetCounter(prefix + "flash.retry_exhausted");
}

Array::Block& Array::BlockAt(const Address& addr) {
  Die& die = DieAt(addr.channel, addr.die);
  return die.blocks[addr.plane * geometry_.blocks_per_plane + addr.block];
}

const Array::Block& Array::BlockAt(const Address& addr) const {
  const Die& die = DieAt(addr.channel, addr.die);
  return die.blocks[addr.plane * geometry_.blocks_per_plane + addr.block];
}

sim::SimTime Array::OccupyDie(Die& die, sim::SimTime earliest,
                              sim::SimTime duration) {
  sim::SimTime start = std::max(earliest, die.busy_until);
  die.busy_until = start + duration;
  return die.busy_until;
}

double Array::BaseBer(const Block& block) const {
  double ber = reliability_.raw_bit_error_rate +
               reliability_.ber_per_pe_cycle * block.erase_count;
  // Retention dwell only applies to data: an erased block holds no charge
  // to leak, so its clock starts at the first program (see Program).
  if (reliability_.ber_per_retention_sec > 0 && block.next_page > 0 &&
      sim_->Now() > block.programmed_at) {
    ber += reliability_.ber_per_retention_sec *
           sim::ToSec(sim_->Now() - block.programmed_at);
  }
  ber += reliability_.ber_per_read_disturb *
         static_cast<double>(block.reads_since_erase);
  return ber;
}

uint64_t Array::SampleBitErrors(const Block& block, double ber_scale) {
  double ber = BaseBer(block);
  if (injector_ != nullptr) {
    sim::SimTime extra_dwell = injector_->InjectFlashRetentionDwell();
    if (extra_dwell > 0) {
      ber += reliability_.ber_per_retention_sec * sim::ToSec(extra_dwell);
    }
    uint64_t extra_reads = injector_->InjectFlashDisturbReads();
    if (extra_reads > 0) {
      ber += reliability_.ber_per_read_disturb *
             static_cast<double>(extra_reads);
    }
  }
  ber *= ber_scale;
  if (ber <= 0) return 0;
  // Binomial(page_bits, ber) approximated by its Poisson limit; exact
  // sampling is irrelevant at these rates.
  double mean = ber * geometry_.page_bytes * 8.0;
  uint64_t errors = 0;
  // Poisson via exponential inter-arrivals (mean is tiny in practice).
  double acc = rng_.Exponential(1.0);
  while (acc < mean) {
    ++errors;
    acc += rng_.Exponential(1.0);
  }
  return errors;
}

void Array::Program(const Address& addr, std::vector<uint8_t> data,
                    std::vector<uint8_t> oob, ProgramCallback done,
                    sim::Simulator::Callback bus_released) {
  XSSD_CHECK(Contains(geometry_, addr));
  XSSD_CHECK(oob.size() <= geometry_.oob_bytes);
  Block& block = BlockAt(addr);
  if (block.bad) {
    ++stats_.bad_block_rejects;
    if (m_bad_block_rejects_) m_bad_block_rejects_->Add();
    sim_->Schedule(timing_.command_overhead,
                   [done = std::move(done),
                    bus_released = std::move(bus_released)]() mutable {
                     if (bus_released) bus_released();
                     done(Status::IoError("program to bad block"));
                   });
    return;
  }
  if (addr.page != block.next_page) {
    // NAND requires in-order page programming within an erased block.
    sim_->Schedule(timing_.command_overhead,
                   [done = std::move(done),
                    bus_released = std::move(bus_released)]() mutable {
                     if (bus_released) bus_released();
                     done(Status::FailedPrecondition(
                         "out-of-order page program"));
                   });
    return;
  }
  data.resize(geometry_.page_bytes, 0);

  bool fail = reliability_.program_fail_rate > 0 &&
              rng_.Bernoulli(reliability_.program_fail_rate);
  if (injector_ != nullptr && injector_->InjectFlashProgramFail()) fail = true;

  // Data moves over the channel bus into the die's page register, then the
  // die is busy for tPROG.
  sim::SimTime bus_done =
      channel_bus_[addr.channel]->Acquire(geometry_.page_bytes);
  if (bus_released) sim_->ScheduleAt(bus_done, std::move(bus_released));
  Die& die = DieAt(addr.channel, addr.die);
  sim::SimTime prog_done = OccupyDie(die, bus_done, timing_.program_latency);

  ++stats_.programs;
  if (m_programs_) m_programs_->Add();
  if (fail) {
    ++stats_.program_failures;
    if (m_program_failures_) m_program_failures_->Add();
    block.bad = true;
    sim_->ScheduleAt(prog_done, [done = std::move(done)]() {
      done(Status::IoError("program operation failed"));
    });
    return;
  }
  if (block.next_page == 0) block.programmed_at = sim_->Now();
  block.pages[addr.page] = std::move(data);
  block.oob[addr.page] = std::move(oob);
  block.next_page = addr.page + 1;
  sim_->ScheduleAt(prog_done,
                   [done = std::move(done)]() { done(Status::OK()); });
}

void Array::Read(const Address& addr, ReadCallback done) {
  XSSD_CHECK(Contains(geometry_, addr));
  Block& block = BlockAt(addr);
  ++stats_.reads;
  if (m_reads_) m_reads_->Add();
  ++block.reads_since_erase;

  // Sample errors and walk the read-retry ladder up front: each level
  // re-senses with a shifted read reference (reduced effective BER) and
  // charges one extra tR of die time. Injector-forced uncorrectables model
  // damage beyond what reference shifting can recover, so they bypass the
  // ladder.
  uint64_t errors;
  uint32_t retries = 0;
  if (injector_ != nullptr && injector_->InjectFlashReadUncorrectable()) {
    errors = reliability_.ecc_correctable_bits + 1;
  } else {
    errors = SampleBitErrors(block, 1.0);
    double scale = 1.0;
    while (errors > reliability_.ecc_correctable_bits &&
           retries < reliability_.read_retry_levels) {
      ++retries;
      scale *= reliability_.retry_ber_factor;
      errors = SampleBitErrors(block, scale);
    }
    if (retries > 0) {
      stats_.read_retries += retries;
      if (m_read_retries_) m_read_retries_->Add(retries);
    }
  }

  // tR (once per sense pass) moves the page into the register, then it
  // streams over the bus.
  Die& die = DieAt(addr.channel, addr.die);
  sim::SimTime sense_done = OccupyDie(
      die, sim_->Now(), timing_.read_latency * (1 + retries));
  sim::SimTime start_bus = std::max(sense_done, sim_->Now());
  // Bus transfer starts once the register holds the data.
  sim::SimTime bus_done = std::max(
      channel_bus_[addr.channel]->Acquire(geometry_.page_bytes), start_bus);

  std::vector<uint8_t> data = block.pages[addr.page];
  if (data.empty()) data.assign(geometry_.page_bytes, 0xFF);  // erased page

  Status status = Status::OK();
  if (errors > reliability_.ecc_correctable_bits) {
    ++stats_.uncorrectable_reads;
    if (m_uncorrectable_reads_) m_uncorrectable_reads_->Add();
    ++stats_.retry_exhausted;
    if (m_retry_exhausted_) m_retry_exhausted_->Add();
    // Corrupt the returned image deterministically.
    for (uint64_t i = 0; i < errors && i < 64; ++i) {
      uint64_t bit = rng_.Uniform(data.size() * 8);
      data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    status = Status::Corruption("uncorrectable bit errors");
  } else {
    stats_.corrected_bit_errors += errors;
    if (m_corrected_bit_errors_) m_corrected_bit_errors_->Add(errors);
  }
  sim_->ScheduleAt(bus_done, [status, data = std::move(data),
                              done = std::move(done)]() mutable {
    done(status, std::move(data));
  });
}

void Array::Erase(const Address& addr, EraseCallback done) {
  XSSD_CHECK(Contains(geometry_, addr));
  Block& block = BlockAt(addr);
  if (block.bad) {
    ++stats_.bad_block_rejects;
    if (m_bad_block_rejects_) m_bad_block_rejects_->Add();
    sim_->Schedule(timing_.command_overhead, [done = std::move(done)]() {
      done(Status::IoError("erase of bad block"));
    });
    return;
  }
  Die& die = DieAt(addr.channel, addr.die);
  sim::SimTime erase_done =
      OccupyDie(die, sim_->Now() + timing_.command_overhead,
                timing_.erase_latency);
  ++stats_.erases;
  if (m_erases_) m_erases_->Add();
  if (injector_ != nullptr && injector_->InjectFlashEraseFail()) {
    // An erase failure grows a bad block, same as a program failure.
    ++stats_.erase_failures;
    if (m_erase_failures_) m_erase_failures_->Add();
    block.bad = true;
    sim_->ScheduleAt(erase_done, [done = std::move(done)]() {
      done(Status::IoError("erase operation failed"));
    });
    return;
  }
  ++block.erase_count;
  for (auto& page : block.pages) page.clear();
  for (auto& spare : block.oob) spare.clear();
  block.next_page = 0;
  block.programmed_at = sim_->Now();  // dwell epoch restarts at the erase
  block.reads_since_erase = 0;
  sim_->ScheduleAt(erase_done,
                   [done = std::move(done)]() { done(Status::OK()); });
}

bool Array::DieIdle(uint32_t channel, uint32_t die) const {
  return DieAt(channel, die).busy_until <= sim_->Now();
}

bool Array::ChannelIdle(uint32_t channel) const {
  return channel_bus_[channel]->IdleNow();
}

sim::SimTime Array::DieBusyUntil(uint32_t channel, uint32_t die) const {
  return DieAt(channel, die).busy_until;
}

bool Array::IsBadBlock(const Address& addr) const {
  return BlockAt(addr).bad;
}

uint32_t Array::EraseCount(const Address& addr) const {
  return BlockAt(addr).erase_count;
}

uint64_t Array::ReadsSinceErase(const Address& addr) const {
  return BlockAt(addr).reads_since_erase;
}

sim::SimTime Array::ProgrammedAt(const Address& addr) const {
  return BlockAt(addr).programmed_at;
}

double Array::PredictedBer(const Address& addr) const {
  return BaseBer(BlockAt(addr));
}

const std::vector<uint8_t>* Array::PeekPage(const Address& addr) const {
  const Block& block = BlockAt(addr);
  if (block.pages[addr.page].empty()) return nullptr;
  return &block.pages[addr.page];
}

const std::vector<uint8_t>* Array::PeekOob(const Address& addr) const {
  const Block& block = BlockAt(addr);
  if (block.oob[addr.page].empty()) return nullptr;
  return &block.oob[addr.page];
}

bool Array::CorruptOob(const Address& addr, size_t byte_index,
                       uint8_t xor_mask) {
  Block& block = BlockAt(addr);
  std::vector<uint8_t>& spare = block.oob[addr.page];
  if (spare.empty() || xor_mask == 0) return false;
  spare[byte_index % spare.size()] ^= xor_mask;
  return true;
}

double Array::MaxProgramBandwidth() const {
  double per_die = static_cast<double>(geometry_.page_bytes) /
                   sim::ToSec(timing_.program_latency);
  double die_bound = per_die * geometry_.dies();
  double bus_bound = timing_.channel_bytes_per_sec * geometry_.channels;
  return std::min(die_bound, bus_bound);
}

}  // namespace xssd::flash
