#include "flash/geometry.h"

#include <sstream>

namespace xssd::flash {

std::string Address::ToString() const {
  std::ostringstream os;
  os << "ch" << channel << "/die" << die << "/pl" << plane << "/blk" << block
     << "/pg" << page;
  return os.str();
}

uint64_t PageIndex(const Geometry& g, const Address& a) {
  uint64_t idx = a.channel;
  idx = idx * g.dies_per_channel + a.die;
  idx = idx * g.planes_per_die + a.plane;
  idx = idx * g.blocks_per_plane + a.block;
  idx = idx * g.pages_per_block + a.page;
  return idx;
}

Address AddressOfPage(const Geometry& g, uint64_t page_index) {
  Address a;
  a.page = static_cast<uint32_t>(page_index % g.pages_per_block);
  page_index /= g.pages_per_block;
  a.block = static_cast<uint32_t>(page_index % g.blocks_per_plane);
  page_index /= g.blocks_per_plane;
  a.plane = static_cast<uint32_t>(page_index % g.planes_per_die);
  page_index /= g.planes_per_die;
  a.die = static_cast<uint32_t>(page_index % g.dies_per_channel);
  page_index /= g.dies_per_channel;
  a.channel = static_cast<uint32_t>(page_index);
  return a;
}

uint64_t BlockIndex(const Geometry& g, const Address& a) {
  uint64_t idx = a.channel;
  idx = idx * g.dies_per_channel + a.die;
  idx = idx * g.planes_per_die + a.plane;
  idx = idx * g.blocks_per_plane + a.block;
  return idx;
}

Address AddressOfBlock(const Geometry& g, uint64_t block_index) {
  Address a;
  a.block = static_cast<uint32_t>(block_index % g.blocks_per_plane);
  block_index /= g.blocks_per_plane;
  a.plane = static_cast<uint32_t>(block_index % g.planes_per_die);
  block_index /= g.planes_per_die;
  a.die = static_cast<uint32_t>(block_index % g.dies_per_channel);
  block_index /= g.dies_per_channel;
  a.channel = static_cast<uint32_t>(block_index);
  a.page = 0;
  return a;
}

bool Contains(const Geometry& g, const Address& a) {
  return a.channel < g.channels && a.die < g.dies_per_channel &&
         a.plane < g.planes_per_die && a.block < g.blocks_per_plane &&
         a.page < g.pages_per_block;
}

}  // namespace xssd::flash
