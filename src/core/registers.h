#ifndef XSSD_CORE_REGISTERS_H_
#define XSSD_CORE_REGISTERS_H_

#include <cstdint>

namespace xssd::core {

/// CMB BAR layout: a 4 KiB control page followed by the byte-addressable
/// PM ring window. The control page is the "log control interface" of the
/// paper (§4.1/§4.3): the credit counter, ring geometry, destage progress,
/// transport status, and the shadow-counter mailboxes that secondaries
/// write over NTB.
inline constexpr uint64_t kCtrlPageBytes = 4096;
inline constexpr uint64_t kRingWindowOffset = kCtrlPageBytes;

// --- Control-page register offsets (all 8-byte) ---------------------------

/// Protocol-visible credit counter: bytes persisted according to the active
/// replication protocol (read-only; the x_fsync loop polls this).
inline constexpr uint64_t kRegCredit = 0x00;
/// Local persistence counter (bytes contiguous in the PM ring).
inline constexpr uint64_t kRegLocalCredit = 0x08;
/// Staging-queue size negotiated with the database.
inline constexpr uint64_t kRegQueueBytes = 0x10;
/// PM ring capacity.
inline constexpr uint64_t kRegRingBytes = 0x18;
/// Stream bytes destaged to the conventional side so far.
inline constexpr uint64_t kRegDestaged = 0x20;
/// Destaging-ring geometry on the conventional side.
inline constexpr uint64_t kRegDestageStartLba = 0x28;
inline constexpr uint64_t kRegDestageLbaCount = 0x30;
/// Transport status word (see StatusBits below).
inline constexpr uint64_t kRegTransportStatus = 0x38;
/// Destage barrier for the advanced x_alloc API: stream offsets >= barrier
/// are not destaged (write-only; ~0 disables).
inline constexpr uint64_t kRegDestageBarrier = 0x40;
/// Device epoch: bumped on every reboot so hosts can detect restarts.
inline constexpr uint64_t kRegEpoch = 0x48;
/// Replication term (generation) number: bumped by the supervisor on every
/// promotion (kXssdSetTerm). Unlike the epoch, the term survives only in
/// the transport module — it fences *writers*, not reboots: a ring write
/// arriving through a peer intake window whose writer term is older than
/// the device term is dropped (split-brain fencing, see src/ha/).
inline constexpr uint64_t kRegTerm = 0x50;
/// Count of ring writes rejected by the term fence (read-only telemetry;
/// the ha_campaign asserts this goes nonzero in the partition scenario).
inline constexpr uint64_t kRegFencedWrites = 0x58;

/// Shadow-counter mailboxes: secondary i writes its credit at
/// kRegShadowBase + 8*i (via NTB).
inline constexpr uint64_t kRegShadowBase = 0x80;
inline constexpr uint32_t kMaxPeers = 8;

/// Per-writer term registers: the last term under which member slot i was
/// authorised to push ring bytes into this device (set locally by this
/// node's supervisor agent via kXssdSetTerm). Placed after the shadow
/// mailboxes — kMaxPeers 8-byte slots span [0xC0, 0x100).
inline constexpr uint64_t kRegWriterTermBase = 0xC0;

/// Transport status word bit assignments.
struct StatusBits {
  static constexpr uint64_t kRoleMask = 0x3;            // Role enum
  static constexpr uint64_t kPeerCountShift = 2;        // bits 2..5
  static constexpr uint64_t kPeerCountMask = 0xF << 2;
  static constexpr uint64_t kReplicationStalled = 1ull << 8;
  static constexpr uint64_t kHalted = 1ull << 9;
  /// Primary is logging un-replicated (all lagging peers written off until
  /// they catch up); see TransportConfig::degrade_timeout.
  static constexpr uint64_t kDegraded = 1ull << 10;
};

}  // namespace xssd::core

#endif  // XSSD_CORE_REGISTERS_H_
