#include "core/validate.h"

#include <string>

#include "core/registers.h"

namespace xssd::core {

namespace {

Status ValidateGeometry(const flash::Geometry& geometry) {
  if (geometry.channels == 0 || geometry.dies_per_channel == 0 ||
      geometry.planes_per_die == 0 || geometry.blocks_per_plane == 0 ||
      geometry.pages_per_block == 0) {
    return Status::InvalidArgument("flash geometry has a zero dimension");
  }
  if (geometry.page_bytes < DestagePageHeader::kSize + 1) {
    return Status::InvalidArgument("flash page too small for destage header");
  }
  return Status::OK();
}

uint64_t LpnCount(const flash::Geometry& geometry,
                  const ftl::FtlConfig& ftl) {
  return static_cast<uint64_t>(static_cast<double>(geometry.pages()) *
                               (1.0 - ftl.overprovision));
}

Status ValidateFastSide(const CmbConfig& cmb, const DestageConfig& destage,
                        const flash::Geometry& geometry,
                        const ftl::FtlConfig& ftl, const std::string& who) {
  if (cmb.queue_bytes == 0) {
    return Status::InvalidArgument(who + ": staging queue must be > 0");
  }
  if (cmb.ring_bytes < cmb.queue_bytes) {
    return Status::InvalidArgument(
        who + ": PM ring must be at least the staging-queue size");
  }
  if (cmb.sram_bytes_per_sec <= 0 || cmb.dram_bytes_per_sec <= 0 ||
      cmb.dram_available_fraction <= 0 || cmb.dram_available_fraction > 1) {
    return Status::InvalidArgument(who + ": invalid backing-memory rates");
  }
  if (cmb.peer_intake_slots > kMaxPeers) {
    return Status::InvalidArgument(
        who + ": more intake aliases than peer slots");
  }
  if (destage.ring_lba_count == 0) {
    return Status::InvalidArgument(who + ": destage ring is empty");
  }
  if (destage.ring_start_lba + destage.ring_lba_count >
      LpnCount(geometry, ftl)) {
    return Status::OutOfRange(
        who + ": destage ring exceeds the logical address space");
  }
  if (destage.max_inflight == 0) {
    return Status::InvalidArgument(who + ": destage pipeline depth is 0");
  }
  // The ring must hold at least one full destage page's worth of data,
  // or the destage loop could never emit a full page.
  if (cmb.ring_bytes < DestagePayloadCapacity(geometry.page_bytes)) {
    return Status::InvalidArgument(
        who + ": PM ring smaller than one destage page payload");
  }
  return Status::OK();
}

Status ValidateFtl(const ftl::FtlConfig& ftl) {
  if (ftl.overprovision < 0 || ftl.overprovision >= 0.9) {
    return Status::InvalidArgument("overprovision must be in [0, 0.9)");
  }
  if (ftl.buffer_pages == 0) {
    return Status::InvalidArgument("data buffer must hold >= 1 page");
  }
  if (ftl.max_writeback_inflight == 0) {
    return Status::InvalidArgument("writeback pipeline depth is 0");
  }
  return Status::OK();
}

}  // namespace

Status ValidateConfig(const VillarsConfig& config) {
  XSSD_RETURN_IF_ERROR(ValidateGeometry(config.geometry));
  XSSD_RETURN_IF_ERROR(ValidateFtl(config.ftl));
  XSSD_RETURN_IF_ERROR(ValidateFastSide(config.cmb, config.destage,
                                        config.geometry, config.ftl,
                                        "fast side"));
  if (config.power.supercap_page_budget == 0) {
    return Status::InvalidArgument("supercap budget cannot destage anything");
  }
  return Status::OK();
}

Status ValidateConfig(const PartitionedConfig& config) {
  XSSD_RETURN_IF_ERROR(ValidateGeometry(config.geometry));
  XSSD_RETURN_IF_ERROR(ValidateFtl(config.ftl));
  if (config.partitions.empty()) {
    return Status::InvalidArgument("need at least one partition");
  }
  for (size_t i = 0; i < config.partitions.size(); ++i) {
    XSSD_RETURN_IF_ERROR(ValidateFastSide(
        config.partitions[i].cmb, config.partitions[i].destage,
        config.geometry, config.ftl,
        "partition " + std::to_string(i)));
  }
  for (size_t i = 0; i < config.partitions.size(); ++i) {
    for (size_t j = i + 1; j < config.partitions.size(); ++j) {
      const DestageConfig& a = config.partitions[i].destage;
      const DestageConfig& b = config.partitions[j].destage;
      bool disjoint =
          a.ring_start_lba + a.ring_lba_count <= b.ring_start_lba ||
          b.ring_start_lba + b.ring_lba_count <= a.ring_start_lba;
      if (!disjoint) {
        return Status::InvalidArgument(
            "partitions " + std::to_string(i) + " and " + std::to_string(j) +
            " have overlapping destage rings");
      }
    }
  }
  return Status::OK();
}

}  // namespace xssd::core
