#include "core/partitioned_device.h"

#include <cstring>

#include "common/logging.h"

namespace xssd::core {

PartitionedVillars::PartitionedVillars(sim::Simulator* sim,
                                       pcie::PcieFabric* fabric,
                                       const PartitionedConfig& config,
                                       std::string name)
    : sim_(sim), fabric_(fabric), name_(std::move(name)) {
  XSSD_CHECK(!config.partitions.empty());
  array_ = std::make_unique<flash::Array>(sim_, config.geometry,
                                          config.flash_timing,
                                          config.reliability, config.seed);
  ftl_ = std::make_unique<ftl::Ftl>(sim_, array_.get(), config.ftl);
  ftl_->scheduler().set_policy(config.scheduling);
  controller_ = std::make_unique<nvme::Controller>(sim_, fabric_, ftl_.get(),
                                                   name_ + "/nvme");
  controller_->SetVendorHandler(
      [this](const nvme::Command& cmd,
             std::function<void(nvme::Completion)> done) {
        HandleVendorAdmin(cmd, std::move(done));
      });

  uint64_t offset = 0;
  for (const PartitionConfig& pc : config.partitions) {
    auto partition = std::make_unique<Partition>();
    partition->config = pc;
    partition->bar_offset = offset;
    partition->cmb = std::make_unique<CmbModule>(sim_, pc.cmb);
    partition->destage = std::make_unique<DestageModule>(
        sim_, ftl_.get(), partition->cmb.get(), pc.destage, /*epoch=*/0);
    partition->transport =
        std::make_unique<TransportModule>(sim_, fabric_, pc.transport);
    partition->transport->set_ring_bytes(pc.cmb.ring_bytes);

    CmbModule* cmb = partition->cmb.get();
    DestageModule* destage = partition->destage.get();
    TransportModule* transport = partition->transport.get();
    cmb->SetCreditHook([destage, transport](uint64_t credit) {
      destage->OnCreditAdvance(credit);
      transport->OnLocalCredit(credit);
    });
    cmb->SetArrivalHook(
        [transport](uint64_t stream_offset, const uint8_t* data,
                    size_t len) {
          transport->OnCmbArrival(stream_offset, data, len);
        });

    partition_offset_.push_back(offset);
    offset += kCtrlPageBytes + pc.cmb.ring_bytes;
    partitions_.push_back(std::move(partition));
  }
  bar_bytes_ = offset;

  // Destage rings of different tenants must not overlap on the shared
  // conventional side.
  for (size_t i = 0; i < partitions_.size(); ++i) {
    for (size_t j = i + 1; j < partitions_.size(); ++j) {
      const DestageConfig& a = partitions_[i]->config.destage;
      const DestageConfig& b = partitions_[j]->config.destage;
      bool disjoint =
          a.ring_start_lba + a.ring_lba_count <= b.ring_start_lba ||
          b.ring_start_lba + b.ring_lba_count <= a.ring_start_lba;
      XSSD_CHECK(disjoint);
    }
  }
}

PartitionedVillars::~PartitionedVillars() = default;

Status PartitionedVillars::Attach(uint64_t bar0_base, uint64_t cmb_base) {
  XSSD_RETURN_IF_ERROR(fabric_->AddMmioRegion(
      bar0_base, nvme::kBar0Bytes, controller_.get(), name_ + "/bar0"));
  XSSD_RETURN_IF_ERROR(
      fabric_->AddMmioRegion(cmb_base, bar_bytes_, this, name_ + "/cmb"));
  cmb_base_ = cmb_base;
  return Status::OK();
}

PartitionedVillars::Partition* PartitionedVillars::Find(uint64_t offset) {
  for (auto& partition : partitions_) {
    uint64_t size =
        kCtrlPageBytes + partition->config.cmb.ring_bytes;
    if (offset >= partition->bar_offset &&
        offset < partition->bar_offset + size) {
      return partition.get();
    }
  }
  return nullptr;
}

void PartitionedVillars::OnMmioWrite(uint64_t offset, const uint8_t* data,
                                     size_t len) {
  Partition* partition = Find(offset);
  if (partition == nullptr) return;
  uint64_t rel = offset - partition->bar_offset;
  if (rel >= kRingWindowOffset) {
    partition->cmb->OnRingWrite(rel - kRingWindowOffset, data, len);
    return;
  }
  if (rel >= kRegShadowBase && rel + len <= kRegShadowBase + 8 * kMaxPeers &&
      len == 8) {
    uint64_t value = 0;
    std::memcpy(&value, data, 8);
    partition->transport->OnShadowWrite(
        static_cast<uint32_t>((rel - kRegShadowBase) / 8), value);
    return;
  }
  if (rel == kRegDestageBarrier && len == 8) {
    uint64_t value = 0;
    std::memcpy(&value, data, 8);
    partition->destage->SetBarrier(value);
    return;
  }
}

uint64_t PartitionedVillars::ReadRegister(const Partition& partition,
                                          uint64_t reg) const {
  switch (reg) {
    case kRegCredit:
      return partition.transport->EffectiveCredit(
          partition.cmb->local_credit());
    case kRegLocalCredit:
      return partition.cmb->local_credit();
    case kRegQueueBytes:
      return partition.cmb->queue_bytes();
    case kRegRingBytes:
      return partition.cmb->ring_bytes();
    case kRegDestaged:
      return partition.destage->destaged();
    case kRegDestageStartLba:
      return partition.destage->ring_start_lba();
    case kRegDestageLbaCount:
      return partition.destage->ring_lba_count();
    case kRegTransportStatus:
      return partition.transport->StatusWord(partition.cmb->local_credit());
    case kRegDestageBarrier:
      return partition.destage->barrier();
    default:
      if (reg >= kRegShadowBase && reg < kRegShadowBase + 8 * kMaxPeers) {
        return partition.transport->shadow_counter(
            static_cast<uint32_t>((reg - kRegShadowBase) / 8));
      }
      return 0;
  }
}

void PartitionedVillars::OnMmioRead(uint64_t offset, uint8_t* out,
                                    size_t len) {
  std::memset(out, 0, len);
  Partition* partition = Find(offset);
  if (partition == nullptr) return;
  uint64_t rel = offset - partition->bar_offset;
  if (rel >= kRingWindowOffset) {
    partition->cmb->ReadRing(rel - kRingWindowOffset, out, len);
    return;
  }
  uint64_t reg = rel & ~7ull;
  uint64_t value = ReadRegister(*partition, reg);
  size_t shift = rel - reg;
  for (size_t i = 0; i < len && shift + i < 8; ++i) {
    out[i] = static_cast<uint8_t>(value >> (8 * (shift + i)));
  }
}

void PartitionedVillars::HandleVendorAdmin(
    const nvme::Command& cmd, std::function<void(nvme::Completion)> done) {
  nvme::Completion cpl;
  cpl.cid = cmd.cid;
  cpl.status = nvme::CmdStatus::kSuccess;
  // cdw13 selects the partition (a virtual function in SR-IOV terms).
  uint32_t index = cmd.cdw13;
  if (index >= partitions_.size()) {
    cpl.status = nvme::CmdStatus::kInvalidField;
    done(cpl);
    return;
  }
  Partition& partition = *partitions_[index];
  switch (static_cast<nvme::AdminOpcode>(cmd.opcode)) {
    case nvme::AdminOpcode::kXssdSetRole: {
      if (cmd.cdw10 > static_cast<uint32_t>(Role::kSecondary)) {
        cpl.status = nvme::CmdStatus::kInvalidField;
        break;
      }
      partition.transport->SetRole(static_cast<Role>(cmd.cdw10));
      if (static_cast<Role>(cmd.cdw10) == Role::kSecondary) {
        uint64_t addr = (static_cast<uint64_t>(cmd.cdw12) << 32) | cmd.cdw11;
        partition.transport->ConfigureSecondary(addr);
      }
      break;
    }
    case nvme::AdminOpcode::kXssdAddPeer: {
      uint64_t addr = (static_cast<uint64_t>(cmd.cdw12) << 32) | cmd.cdw11;
      if (!partition.transport->AddPeer(addr).ok()) {
        cpl.status = nvme::CmdStatus::kInvalidField;
      }
      break;
    }
    case nvme::AdminOpcode::kXssdClearPeers:
      partition.transport->ClearPeers();
      break;
    case nvme::AdminOpcode::kXssdSetUpdatePeriod:
      partition.transport->set_update_period(sim::Ns(cmd.cdw10));
      break;
    case nvme::AdminOpcode::kXssdSetReplication: {
      if (cmd.cdw10 > static_cast<uint32_t>(ReplicationProtocol::kChain)) {
        cpl.status = nvme::CmdStatus::kInvalidField;
        break;
      }
      partition.transport->set_protocol(
          static_cast<ReplicationProtocol>(cmd.cdw10));
      break;
    }
    case nvme::AdminOpcode::kXssdSetDestagePolicy: {
      if (cmd.cdw10 >
          static_cast<uint32_t>(
              ftl::SchedulingPolicy::kConventionalPriority)) {
        cpl.status = nvme::CmdStatus::kInvalidField;
        break;
      }
      ftl_->scheduler().set_policy(
          static_cast<ftl::SchedulingPolicy>(cmd.cdw10));
      break;
    }
    case nvme::AdminOpcode::kXssdGetLogRing:
      cpl.result = static_cast<uint32_t>(partition.destage->next_sequence());
      break;
    default:
      cpl.status = nvme::CmdStatus::kInvalidOpcode;
      break;
  }
  done(cpl);
}

}  // namespace xssd::core
