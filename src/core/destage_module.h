#ifndef XSSD_CORE_DESTAGE_MODULE_H_
#define XSSD_CORE_DESTAGE_MODULE_H_

#include <cstdint>
#include <functional>

#include "core/cmb_module.h"
#include "core/config.h"
#include "core/page_format.h"
#include "ftl/ftl.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace xssd::obs {
class FlightRecorder;
}  // namespace xssd::obs

namespace xssd::core {

/// Destage statistics.
struct DestageStats {
  uint64_t pages_written = 0;
  uint64_t partial_pages = 0;     ///< pages cut short by latency threshold
  uint64_t filler_bytes = 0;
  uint64_t stream_bytes = 0;      ///< payload destaged
  uint64_t write_retries = 0;     ///< re-issues after a failed page write
  uint64_t ring_trims = 0;        ///< wrapped slots invalidated before reuse
};

/// \brief The Destage module (paper §4.3): moves the PM ring's persisted
/// prefix into a ring of logical blocks on the conventional side.
///
/// It monitors the credit counter, bundles ring-head data into flash pages
/// (adding filler when the latency threshold forces a partial page), and
/// writes them through the FTL with IoClass::kDestage so the channel
/// scheduler can apply the opportunistic-destaging policies. Destaging is
/// pipelined across dies but the destaged counter advances strictly in
/// stream order.
class DestageModule {
 public:
  DestageModule(sim::Simulator* sim, ftl::Ftl* ftl, CmbModule* cmb,
                const DestageConfig& config, uint32_t epoch = 0);

  DestageModule(const DestageModule&) = delete;
  DestageModule& operator=(const DestageModule&) = delete;

  /// Hooked to the CMB credit counter; wakes the destage loop.
  void OnCreditAdvance(uint64_t credit);

  /// Stream bytes destaged to the conventional side (in-order).
  uint64_t destaged() const { return destaged_; }

  /// Next destage-ring slot (sequence number; LBA = start + seq % count).
  uint64_t next_sequence() const { return next_sequence_; }

  /// Stream bytes issued to flash so far (may run ahead of destaged()).
  uint64_t destage_cursor() const { return destage_cursor_; }

  uint64_t ring_start_lba() const { return config_.ring_start_lba; }
  uint64_t ring_lba_count() const { return config_.ring_lba_count; }

  /// Advanced-API barrier: stream offsets >= `stream_offset` are withheld
  /// from destaging (active x_alloc areas). ~0 disables.
  void SetBarrier(uint64_t stream_offset);
  uint64_t barrier() const { return barrier_; }

  /// Crash protocol step 2 (paper §4.1): destage everything persisted
  /// (stopping at the credit, which by construction stops at the first
  /// gap), bounded by the supercap energy budget in pages. `done` fires
  /// when the ring is fully drained or the budget is exhausted.
  void DestageAllForPowerLoss(uint32_t page_budget,
                              std::function<void()> done);

  /// Freeze/unfreeze (used during power-loss handling to stop the normal
  /// background loop).
  void set_frozen(bool frozen) { frozen_ = frozen; }

  /// Hard crash: freeze permanently and cancel pending write retries (a
  /// halted device issues no more flash traffic). Unlike set_frozen this
  /// is not undone by the power-loss destage path.
  void HaltForCrash() {
    frozen_ = true;
    halted_ = true;
  }

  const DestageStats& stats() const { return stats_; }

  /// Register this module's metrics under `prefix` + "destage.".
  void SetMetrics(obs::MetricsRegistry* registry,
                  const std::string& prefix = "");

  /// Attach span tracing (nullptr detaches). Each emitted page opens a
  /// destage.page span (emit → durable, spanning retries) covering its
  /// stream extent; pages cut by the latency timer have no ambient request
  /// context and are recorded as orphans joined by offset range.
  void SetSpans(obs::SpanRecorder* spans, const std::string& node_tag);

  /// Attach a fault injector (nullptr detaches). Crash sites:
  /// "destage.emit_page" (before a page is built/issued) and
  /// "destage.page_complete" (page durable in flash, progress accounting
  /// lost). `site_prefix` (e.g. "pri/") namespaces the sites per device.
  void SetFaultInjector(fault::FaultInjector* injector,
                        std::string site_prefix);

  /// Attach a flight recorder (nullptr detaches). Records ring wraps —
  /// each reuse of a log-ring slot trims the superseded page, a rare,
  /// load-bearing event worth having in every post-mortem. `node_tag`
  /// prefixes messages per device (e.g. "pri").
  void SetFlightRecorder(obs::FlightRecorder* recorder,
                         const std::string& node_tag = "") {
    flightrec_ = recorder;
    fr_tag_ = node_tag.empty() ? "" : node_tag + " ";
  }

  // -- Conformance observation taps (src/check) -----------------------------
  // Pure observers, called in addition to the normal control flow; the
  // checker's reference model cross-checks each step. Detach with nullptr.
  // Note a Reboot() recreates this module, so a checker must re-attach.

  /// A page was built and issued (fires strictly in stream order, before
  /// the flash write; retried pages do not re-fire).
  using EmitObserver =
      std::function<void(const DestagePageHeader& header, uint64_t lba)>;
  void SetEmitObserver(EmitObserver observer) {
    emit_observer_ = std::move(observer);
  }

  /// A page's completion was accounted — the extent [begin, end) is durable
  /// in flash (fires in completion order, which may reorder across dies).
  using DurableObserver = std::function<void(uint64_t begin, uint64_t end)>;
  void SetDurableObserver(DurableObserver observer) {
    durable_observer_ = std::move(observer);
  }

  /// The in-order destaged counter advanced.
  using DestagedObserver = std::function<void(uint64_t destaged)>;
  void SetDestagedObserver(DestagedObserver observer) {
    destaged_observer_ = std::move(observer);
  }

 private:
  /// Payload capacity of one destage page.
  uint32_t Capacity() const {
    return DestagePayloadCapacity(ftl_->page_bytes());
  }

  /// Destage eligible data: full pages immediately; partial pages once the
  /// latency threshold expires.
  void Pump();

  /// Emit one page covering [destage_cursor_, destage_cursor_ + len).
  void EmitPage(uint32_t len);

  /// Issue (or re-issue) a built page to the FTL. Retries keep the same
  /// sequence number and ring slot — the recovery chain walk depends on
  /// consecutive sequences with chaining stream offsets, so a retried page
  /// must land exactly where the failed attempt would have.
  void IssuePage(uint64_t lba, std::vector<uint8_t> page, uint64_t begin,
                 uint64_t end, uint32_t len, sim::SimTime issued_at,
                 uint32_t attempt, obs::SpanContext span);

  void ArmTimer();

  sim::Simulator* sim_;
  ftl::Ftl* ftl_;
  CmbModule* cmb_;
  DestageConfig config_;
  uint32_t epoch_;

  uint64_t credit_seen_ = 0;
  uint64_t destaged_ = 0;        ///< contiguous, completion-ordered
  uint64_t destage_cursor_ = 0;  ///< issued (may be ahead of destaged_)
  uint64_t next_sequence_ = 0;
  uint64_t barrier_ = ~0ull;
  uint32_t inflight_ = 0;
  bool timer_armed_ = false;
  bool frozen_ = false;
  bool halted_ = false;  ///< hard crash: no further flash traffic
  sim::SimTime oldest_pending_since_ = 0;
  fault::FaultInjector* injector_ = nullptr;
  std::string site_prefix_;
  obs::SpanRecorder* spans_ = nullptr;
  uint16_t span_node_ = 0;
  obs::FlightRecorder* flightrec_ = nullptr;
  std::string fr_tag_;
  EmitObserver emit_observer_;
  DurableObserver durable_observer_;
  DestagedObserver destaged_observer_;

  // Completion reordering: pages finish out of order across dies; destaged_
  // advances over the contiguous prefix of completed stream extents.
  sim::IntervalSet completed_;

  DestageStats stats_;

  // Observability (null until SetMetrics).
  obs::Counter* m_pages_written_ = nullptr;
  obs::Counter* m_partial_pages_ = nullptr;
  obs::Counter* m_filler_bytes_ = nullptr;
  obs::Counter* m_stream_bytes_ = nullptr;
  obs::Counter* m_write_failures_ = nullptr;
  obs::Counter* m_write_retries_ = nullptr;
  obs::Counter* m_ring_trims_ = nullptr;
  obs::Gauge* m_inflight_ = nullptr;
  obs::Gauge* m_backlog_bytes_ = nullptr;
  obs::LatencyRecorder* m_page_latency_us_ = nullptr;
};

}  // namespace xssd::core

#endif  // XSSD_CORE_DESTAGE_MODULE_H_
