#ifndef XSSD_CORE_PARTITIONED_DEVICE_H_
#define XSSD_CORE_PARTITIONED_DEVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cmb_module.h"
#include "core/config.h"
#include "core/destage_module.h"
#include "core/registers.h"
#include "core/transport_module.h"
#include "flash/array.h"
#include "ftl/ftl.h"
#include "nvme/controller.h"
#include "pcie/fabric.h"

namespace xssd::core {

/// One tenant's slice of the fast side.
struct PartitionConfig {
  CmbConfig cmb;
  DestageConfig destage;
  TransportConfig transport;
};

/// \brief Multi-tenant X-SSD configuration (paper §7.2).
struct PartitionedConfig {
  flash::Geometry geometry;
  flash::Timing flash_timing;
  flash::Reliability reliability;
  ftl::FtlConfig ftl;
  std::vector<PartitionConfig> partitions;
  ftl::SchedulingPolicy scheduling = ftl::SchedulingPolicy::kNeutral;
  uint64_t seed = 42;
};

/// \brief An X-SSD whose CMB is segmented into independent regions — the
/// SR-IOV-style virtualization sketched in the paper's §7.2, which also
/// subsumes the per-writer-counter extension of §7.1 (one partition per
/// pinned writer behaves exactly like one credit counter per core).
///
/// Each partition is a complete fast side: its own staging queue, PM ring,
/// credit counter, destage ring (a disjoint LBA range on the shared
/// conventional side), and its own replication configuration. The
/// conventional side — flash array, FTL, NVMe controller — is shared, as a
/// single physical function would be.
///
/// The CMB BAR lays partitions out back to back, each with the standard
/// control page + ring window, so an unmodified host::XLogClient pointed
/// at a partition's base address works as-is — tenants need no special
/// client.
class PartitionedVillars : public pcie::MmioDevice {
 public:
  PartitionedVillars(sim::Simulator* sim, pcie::PcieFabric* fabric,
                     const PartitionedConfig& config, std::string name);
  ~PartitionedVillars();

  PartitionedVillars(const PartitionedVillars&) = delete;
  PartitionedVillars& operator=(const PartitionedVillars&) = delete;

  /// Map BAR0 (shared NVMe) and the partitioned CMB BAR.
  Status Attach(uint64_t bar0_base, uint64_t cmb_base);

  size_t partition_count() const { return partitions_.size(); }

  /// Bus address of partition `index`'s control page (give this to an
  /// XLogClient as its cmb_base).
  uint64_t partition_base(size_t index) const {
    return cmb_base_ + partition_offset_[index];
  }
  /// Whole-BAR size.
  uint64_t cmb_bar_bytes() const { return bar_bytes_; }

  // pcie::MmioDevice — dispatches into the owning partition.
  void OnMmioWrite(uint64_t offset, const uint8_t* data, size_t len) override;
  void OnMmioRead(uint64_t offset, uint8_t* out, size_t len) override;

  CmbModule& cmb(size_t index) { return *partitions_[index]->cmb; }
  DestageModule& destage(size_t index) {
    return *partitions_[index]->destage;
  }
  TransportModule& transport(size_t index) {
    return *partitions_[index]->transport;
  }
  ftl::Ftl& ftl() { return *ftl_; }
  flash::Array& flash_array() { return *array_; }
  nvme::Controller& controller() { return *controller_; }

  uint64_t EffectiveCredit(size_t index) const {
    return partitions_[index]->transport->EffectiveCredit(
        partitions_[index]->cmb->local_credit());
  }

 private:
  struct Partition {
    PartitionConfig config;
    uint64_t bar_offset;  // of the control page within the CMB BAR
    std::unique_ptr<CmbModule> cmb;
    std::unique_ptr<DestageModule> destage;
    std::unique_ptr<TransportModule> transport;
  };

  /// Partition containing BAR offset `offset`, or nullptr.
  Partition* Find(uint64_t offset);

  void HandleVendorAdmin(const nvme::Command& cmd,
                         std::function<void(nvme::Completion)> done);
  uint64_t ReadRegister(const Partition& partition, uint64_t reg) const;

  sim::Simulator* sim_;
  pcie::PcieFabric* fabric_;
  std::string name_;

  std::unique_ptr<flash::Array> array_;
  std::unique_ptr<ftl::Ftl> ftl_;
  std::unique_ptr<nvme::Controller> controller_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<uint64_t> partition_offset_;
  uint64_t bar_bytes_ = 0;
  uint64_t cmb_base_ = 0;
};

}  // namespace xssd::core

#endif  // XSSD_CORE_PARTITIONED_DEVICE_H_
