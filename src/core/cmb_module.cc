#include "core/cmb_module.h"

#include <cstring>

#include "common/logging.h"
#include "fault/fault_injector.h"

namespace xssd::core {

namespace {
double BackingRate(const CmbConfig& config) {
  if (config.backing == BackingKind::kSram) return config.sram_bytes_per_sec;
  return config.dram_bytes_per_sec * config.dram_available_fraction;
}
}  // namespace

CmbModule::CmbModule(sim::Simulator* sim, const CmbConfig& config)
    : sim_(sim),
      config_(config),
      backing_bytes_per_sec_(BackingRate(config)),
      backing_(sim, backing_bytes_per_sec_, config.persist_overhead),
      ring_(config.ring_bytes, 0) {
  XSSD_CHECK(config_.queue_bytes > 0);
  XSSD_CHECK(config_.ring_bytes >= config_.queue_bytes);
}

void CmbModule::SetMetrics(obs::MetricsRegistry* registry,
                           const std::string& prefix) {
  m_append_bytes_ = registry->GetCounter(prefix + "cmb.append_bytes");
  m_append_chunks_ = registry->GetCounter(prefix + "cmb.append_chunks");
  m_persisted_bytes_ = registry->GetCounter(prefix + "cmb.persisted_bytes");
  m_overwrite_violations_ =
      registry->GetCounter(prefix + "cmb.overwrite_violations");
  m_powerloss_drains_ = registry->GetCounter(prefix + "cmb.powerloss_drains");
  m_staging_occupancy_ =
      registry->GetGauge(prefix + "cmb.staging_occupancy_bytes");
  m_credit_ = registry->GetGauge(prefix + "cmb.credit");
}

uint64_t CmbModule::InferStreamOffset(uint64_t ring_offset) const {
  XSSD_CHECK(ring_offset < config_.ring_bytes);
  uint64_t base = credit_;
  uint64_t base_ring = base % config_.ring_bytes;
  uint64_t delta =
      (ring_offset + config_.ring_bytes - base_ring) % config_.ring_bytes;
  return base + delta;
}

void CmbModule::OnRingWrite(uint64_t ring_offset, const uint8_t* data,
                            size_t len) {
  XSSD_CHECK(ring_offset + len <= config_.ring_bytes);
  uint64_t stream_offset = InferStreamOffset(ring_offset);

  // Ring-overwrite check: a conforming host never writes bytes that would
  // clobber data the Destage module has not yet moved out.
  if (stream_offset + len > destaged_floor_ + config_.ring_bytes) {
    if (overwrite_violations_ == 0) {
      XSSD_LOG(kWarning) << "CMB write overwrote un-destaged ring data "
                            "(advisory flow control not respected; "
                            "counting silently from here on)";
    }
    ++overwrite_violations_;
    if (m_overwrite_violations_) m_overwrite_violations_->Add();
  }

  // Open the chunk's staging span under the ambient request context (the
  // append root on a primary, the NTB link span on a secondary) and make
  // it current for the synchronous arrival fan-out, so the transport
  // mirror nests under the chunk that triggered it.
  obs::SpanContext span_ctx;
  if (spans_) {
    span_ctx = spans_->StartSpan(obs::Stage::kCmbStage, span_node_,
                                 spans_->current());
    spans_->SetRange(span_ctx, stream_offset, stream_offset + len);
  }
  obs::ScopedContext span_scope(spans_, span_ctx);

  if (arrival_observer_) arrival_observer_(stream_offset, data, len);
  if (arrival_hook_) arrival_hook_(stream_offset, data, len);

  if (m_append_bytes_) {
    m_append_bytes_->Add(len);
    m_append_chunks_->Add();
  }

  // Stage, then proactively dequeue into backing memory (Figure 5, 1→2).
  staging_.push_back(
      Staged{stream_offset, std::vector<uint8_t>(data, data + len),
             span_ctx});
  staging_bytes_ += len;
  if (m_staging_occupancy_) {
    m_staging_occupancy_->Set(static_cast<double>(staging_bytes_));
  }
  if (test_only_early_credit_) {
    // Planted Figure 5 ordering bug: acknowledge on arrival, before the
    // chunk is persistent. See set_test_only_early_credit().
    received_.Insert(stream_offset, stream_offset + len);
    highest_received_ = std::max(highest_received_, stream_offset + len);
    AdvanceCredit();
  }

  backing_.Acquire(len, [this, epoch = drain_epoch_]() {
    // Stale events from before a power-loss drain or reboot are ignored.
    if (epoch != drain_epoch_ || staging_.empty()) return;
    Staged chunk = std::move(staging_.front());
    staging_.pop_front();
    staging_bytes_ -= chunk.data.size();
    if (m_staging_occupancy_) {
      m_staging_occupancy_->Set(static_cast<double>(staging_bytes_));
    }
    Persist(chunk.stream_offset, std::move(chunk.data), chunk.span);
  });
}

void CmbModule::SetFaultInjector(fault::FaultInjector* injector,
                                 std::string site_prefix) {
  injector_ = injector;
  site_prefix_ = std::move(site_prefix);
}

void CmbModule::SetSpans(obs::SpanRecorder* spans,
                         const std::string& node_tag) {
  spans_ = spans;
  span_node_ = spans ? spans->InternNode(node_tag) : 0;
}

void CmbModule::Persist(uint64_t stream_offset, std::vector<uint8_t> data,
                        obs::SpanContext span) {
  if (injector_ != nullptr &&
      injector_->CrashPoint(site_prefix_ + "cmb.persist")) {
    // The crash handler ran inside CrashPoint; this chunk was already off
    // the staging queue and dies here, leaving a gap above the credit.
    return;
  }
  // Restore the chunk's context so credit-hook work (destage pump, shadow
  // push) nests under the chunk whose persistence triggered it.
  obs::ScopedContext span_scope(spans_, span);
  uint64_t ring_at = stream_offset % config_.ring_bytes;
  size_t first = static_cast<size_t>(
      std::min<uint64_t>(data.size(), config_.ring_bytes - ring_at));
  std::memcpy(ring_.data() + ring_at, data.data(), first);
  if (first < data.size()) {
    std::memcpy(ring_.data(), data.data() + first, data.size() - first);
  }
  received_.Insert(stream_offset, stream_offset + data.size());
  highest_received_ =
      std::max(highest_received_, stream_offset + data.size());
  if (m_persisted_bytes_) m_persisted_bytes_->Add(data.size());
  if (spans_) spans_->EndSpan(span);
  AdvanceCredit();
}

void CmbModule::AdvanceCredit() {
  // Figure 5 step 3: the counter is incremented only after data reached
  // backing memory, and only over contiguous chunks.
  uint64_t new_credit = received_.ContiguousEnd(credit_);
  if (new_credit != credit_) {
    credit_ = new_credit;
    received_.TrimBelow(destaged_floor_);  // bounded metadata
    if (m_credit_) m_credit_->Set(static_cast<double>(credit_));
    if (credit_observer_) credit_observer_(credit_);
    if (credit_hook_) credit_hook_(credit_);
  }
}

void CmbModule::ReadRing(uint64_t ring_offset, uint8_t* out,
                         size_t len) const {
  XSSD_CHECK(ring_offset + len <= config_.ring_bytes);
  std::memcpy(out, ring_.data() + ring_offset, len);
}

void CmbModule::CopyOut(uint64_t stream_offset, uint8_t* out,
                        size_t len) const {
  XSSD_CHECK(stream_offset + len <= credit_);
  XSSD_CHECK(stream_offset + config_.ring_bytes >= credit_);
  uint64_t ring_at = stream_offset % config_.ring_bytes;
  size_t first = static_cast<size_t>(
      std::min<uint64_t>(len, config_.ring_bytes - ring_at));
  std::memcpy(out, ring_.data() + ring_at, first);
  if (first < len) std::memcpy(out + first, ring_.data(), len - first);
}

bool CmbModule::HasPendingBeyondCredit() const {
  return staging_bytes_ > 0 || received_.HasGapAfter(credit_) ||
         highest_received_ > credit_;
}

void CmbModule::DrainStagingForPowerLoss() {
  // The supercaps keep the SRAM queue and PM alive; everything already
  // inside the device is flushed to the ring. Bytes still on the PCIe link
  // never arrived and are simply absent (potentially leaving a gap).
  ++drain_epoch_;
  if (m_powerloss_drains_) m_powerloss_drains_->Add();
  while (!staging_.empty()) {
    Staged chunk = std::move(staging_.front());
    staging_.pop_front();
    staging_bytes_ -= chunk.data.size();
    Persist(chunk.stream_offset, std::move(chunk.data), chunk.span);
  }
  if (m_staging_occupancy_) m_staging_occupancy_->Set(0);
}

void CmbModule::AbandonStagingForCrash() {
  // No supercap flush: queued chunks never reach backing memory. The PM
  // ring and credit keep whatever had persisted before the crash.
  ++drain_epoch_;
  staging_.clear();
  staging_bytes_ = 0;
  if (m_staging_occupancy_) m_staging_occupancy_->Set(0);
}

void CmbModule::TruncateTo(uint64_t offset) {
  ++drain_epoch_;
  staging_.clear();
  staging_bytes_ = 0;
  received_.TrimAbove(offset);
  credit_ = std::min(credit_, offset);
  highest_received_ = std::min(highest_received_, offset);
  destaged_floor_ = std::min(destaged_floor_, offset);
  if (m_staging_occupancy_) m_staging_occupancy_->Set(0);
  if (m_credit_) m_credit_->Set(static_cast<double>(credit_));
}

void CmbModule::ResetForReboot() {
  ++drain_epoch_;
  std::fill(ring_.begin(), ring_.end(), 0);
  received_.Clear();
  staging_.clear();
  staging_bytes_ = 0;
  credit_ = 0;
  highest_received_ = 0;
  destaged_floor_ = 0;
  if (m_staging_occupancy_) m_staging_occupancy_->Set(0);
  if (m_credit_) m_credit_->Set(0);
}

}  // namespace xssd::core
