#ifndef XSSD_CORE_TRANSPORT_MODULE_H_
#define XSSD_CORE_TRANSPORT_MODULE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/config.h"
#include "core/registers.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "pcie/fabric.h"
#include "sim/simulator.h"

namespace xssd::obs {
class FlightRecorder;
}  // namespace xssd::obs

namespace xssd::core {

/// \brief The Transport module (paper §4.2): replication of the fast-side
/// write stream across Villars devices over NTB.
///
/// On a *primary*, the module taps the mirror of CMB arrivals and re-posts
/// each chunk to every peer's CMB window (one independent flow per
/// secondary — the paper deliberately forgoes NTB multicast). It also owns
/// the shadow counters that secondaries update, and computes the
/// protocol-visible credit from them.
///
/// On a *secondary*, the module periodically (every update_period) writes
/// the local credit counter into the primary's shadow mailbox through the
/// NTB window.
///
/// All cross-device traffic is plain posted writes issued on the local
/// fabric (PeerWrite to the NTB adapter's window), exactly the TLP
/// repackaging §2.3 describes.
class TransportModule {
 public:
  TransportModule(sim::Simulator* sim, pcie::PcieFabric* fabric,
                  const TransportConfig& config);

  TransportModule(const TransportModule&) = delete;
  TransportModule& operator=(const TransportModule&) = delete;

  // -- Role management (driven by vendor-specific NVMe admin commands) -----

  void SetRole(Role role);
  Role role() const { return role_; }

  void set_protocol(ReplicationProtocol protocol) { protocol_ = protocol; }
  ReplicationProtocol protocol() const { return protocol_; }

  void set_update_period(sim::SimTime period) {
    config_.update_period = period;
  }
  sim::SimTime update_period() const { return config_.update_period; }

  /// Ring size of the replication group (set by the owning device; used to
  /// wrap mirrored stream offsets into peer ring windows).
  void set_ring_bytes(uint64_t ring_bytes) { ring_bytes_ = ring_bytes; }

  /// Primary: register a peer whose CMB BAR is reachable at
  /// `peer_cmb_window` on the local fabric (an NTB window address).
  /// Occupies the lowest free member slot.
  Status AddPeer(uint64_t peer_cmb_window);
  /// Register a peer at an explicit member slot (HA supervisor: slots are
  /// stable member ids, so a rejoining node reclaims its old slot and the
  /// chain order — insertion order of active slots — is re-linked around
  /// a removed middle node). Re-adding an active slot updates the window.
  Status AddPeerAt(uint32_t slot, uint64_t peer_cmb_window);
  /// Drop the peer at `slot` from the group (its shadow no longer gates
  /// the credit; chain order closes over the hole).
  Status RemovePeer(uint32_t slot);
  bool HasPeer(uint32_t slot) const {
    return slot < kMaxPeers && peer_slots_[slot].active;
  }
  void ClearPeers();
  uint32_t peer_count() const {
    return static_cast<uint32_t>(active_slots_.size());
  }

  // -- Term fencing (HA failover, see src/ha/) ------------------------------

  /// Adopt replication term `term` with member slot `writer_slot` as the
  /// authorised writer. Also records `writer_slot` as this device's own
  /// slot for outgoing mirror traffic: the supervisor calls SetTerm on the
  /// *leader* with the leader's slot, and on followers with the leader's
  /// slot too (followers do not mirror, so the writer identity is always
  /// the current leader's).
  void SetTerm(uint64_t term, uint32_t writer_slot);
  uint64_t term() const { return term_; }
  uint64_t writer_term(uint32_t slot) const {
    return slot < kMaxPeers ? writer_terms_[slot] : 0;
  }
  uint32_t member_slot() const { return member_slot_; }

  /// Admission decision for a ring write arriving through the per-peer
  /// intake alias of member `slot`: admitted iff the slot's writer term is
  /// current. A deposed primary still pushing at its old term is fenced
  /// here (split-brain protection); rejections are counted.
  bool AdmitRingWrite(uint32_t slot);
  uint64_t fenced_writes() const { return fenced_writes_; }

  /// Primary: mirror through a single NTB *multicast* window instead of
  /// one flow per peer — the hardware fan-out §4.2 mentions. Shadow
  /// counters still flow back per secondary. Pass 0 to disable.
  void EnableMulticast(uint64_t multicast_window_addr) {
    multicast_window_ = multicast_window_addr;
  }
  bool multicast_enabled() const { return multicast_window_ != 0; }

  /// Secondary: where (on the local fabric, through NTB) this device's
  /// shadow mailbox on the primary lives.
  void ConfigureSecondary(uint64_t primary_shadow_addr);

  // -- Data-path hooks ------------------------------------------------------

  /// Primary tap: a chunk arrived on the local CMB (Figure 6 step 1-2).
  void OnCmbArrival(uint64_t stream_offset, const uint8_t* data, size_t len);

  /// Secondary tap: local credit advanced (reported on the next cycle).
  void OnLocalCredit(uint64_t credit);

  /// A secondary wrote shadow mailbox `index` (landed on the control page).
  void OnShadowWrite(uint32_t index, uint64_t value);

  /// Observer invoked on every shadow-counter advance (instrumentation for
  /// replication-delay measurements; not part of the device protocol).
  using ShadowHook = std::function<void(uint32_t index, uint64_t value)>;
  void SetShadowHook(ShadowHook hook) { shadow_hook_ = std::move(hook); }

  /// Reader for retransmission payloads: copies persisted stream bytes
  /// [stream_offset, +len) out of the local CMB ring. Must only be asked
  /// for offsets within the last ring_bytes below the local credit — the
  /// retransmit path clamps to that window itself.
  using RingReader =
      std::function<void(uint64_t stream_offset, uint8_t* out, size_t len)>;
  void SetRingReader(RingReader reader) { ring_reader_ = std::move(reader); }

  /// Protocol-visible credit (what the kRegCredit register returns).
  uint64_t EffectiveCredit(uint64_t local_credit) const;

  uint64_t shadow_counter(uint32_t index) const { return shadows_[index]; }

  /// Status word for kRegTransportStatus.
  uint64_t StatusWord(uint64_t local_credit) const;

  /// Wire bytes sent for mirror traffic / counter updates (diagnostics).
  uint64_t mirrored_bytes() const { return mirrored_bytes_; }
  uint64_t counter_updates_sent() const { return counter_updates_sent_; }

  /// Retransmission diagnostics: silent-shadow rounds fired and ring bytes
  /// re-mirrored (0 unless retransmit_timeout is configured).
  uint64_t retransmit_rounds() const { return retransmit_rounds_; }
  uint64_t retransmitted_bytes() const { return retransmitted_bytes_; }

  /// True while the primary logs un-replicated because every lagging peer
  /// has been silent past degrade_timeout.
  bool degraded() const { return degraded_; }
  uint64_t degraded_entries() const { return degraded_entries_; }

  /// Register this module's metrics under `prefix` + "transport.".
  void SetMetrics(obs::MetricsRegistry* registry,
                  const std::string& prefix = "");

  /// Attach span tracing (nullptr detaches). Each mirrored chunk opens a
  /// replication.wait span (arrival → every shadow counter covers the
  /// bytes); NTB link spans nest under it via the ambient context.
  void SetSpans(obs::SpanRecorder* spans, const std::string& node_tag);

  /// Attach a flight recorder (nullptr detaches). Records each fenced
  /// stale-term ring write — the term fence doing its job is exactly what
  /// a split-brain post-mortem needs to see. `node_tag` prefixes messages
  /// per device (e.g. "sec0").
  void SetFlightRecorder(obs::FlightRecorder* recorder,
                         const std::string& node_tag = "") {
    flightrec_ = recorder;
    fr_tag_ = node_tag.empty() ? "" : node_tag + " ";
  }

 private:
  void UpdateTick();
  void UpdateLagGauge();

  /// Smallest shadow counter across registered peers (the eager bound).
  uint64_t MinShadow() const;

  /// Arm the retransmit timer if lag exists and retransmission is enabled.
  void ArmRetransmitTimer();
  void OnRetransmitTimer();

  /// Re-mirror [from, local_credit_) — clamped to the last ring_bytes of
  /// the stream — into `window_base`'s ring window in retransmit_chunk
  /// pieces, via the same posted-write path the live mirror uses.
  void RetransmitRange(uint64_t window_base, uint64_t from);
  void RetransmitRound();

  /// Base address of the ring intake on a peer reachable at `window_base`:
  /// the shared host window, or this device's per-slot intake alias when
  /// use_intake_aliases is set (so the receiver can term-fence us).
  uint64_t PeerRingBase(uint64_t window_base) const;

  sim::Simulator* sim_;
  pcie::PcieFabric* fabric_;
  TransportConfig config_;

  Role role_ = Role::kStandalone;
  ReplicationProtocol protocol_;

  uint64_t ring_bytes_ = 0;
  uint64_t multicast_window_ = 0;  ///< 0 = per-peer unicast flows

  /// Sparse peer table indexed by member slot; active_slots_ keeps the
  /// insertion order (the chain order: tail = back()).
  struct PeerSlot {
    uint64_t window = 0;  ///< local-fabric window of the peer's CMB BAR
    bool active = false;
  };
  PeerSlot peer_slots_[kMaxPeers];
  std::vector<uint32_t> active_slots_;
  uint64_t shadows_[kMaxPeers] = {0};
  sim::SimTime last_shadow_advance_ = 0;

  // Term fencing state (HA).
  uint64_t term_ = 0;
  uint64_t writer_terms_[kMaxPeers] = {0};
  uint32_t member_slot_ = 0;
  uint64_t fenced_writes_ = 0;

  // Secondary state.
  uint64_t primary_shadow_addr_ = 0;
  uint64_t local_credit_ = 0;
  uint64_t last_sent_credit_ = 0;
  uint64_t timer_generation_ = 0;  ///< cancels stale periodic timers

  uint64_t mirrored_bytes_ = 0;
  uint64_t counter_updates_sent_ = 0;
  ShadowHook shadow_hook_;
  RingReader ring_reader_;

  obs::SpanRecorder* spans_ = nullptr;
  uint16_t span_node_ = 0;
  obs::FlightRecorder* flightrec_ = nullptr;
  std::string fr_tag_;
  /// Open replication.wait spans in stream order; the front is closed once
  /// MinShadow() reaches its end offset. Dropped (left open, skipped by
  /// the analyzer) on role changes.
  struct WaitSpan {
    uint64_t end_offset;
    obs::SpanContext ctx;
  };
  std::deque<WaitSpan> wait_spans_;

  // Retransmit / degraded-mode state (primary only).
  bool rt_armed_ = false;
  uint64_t rt_generation_ = 0;   ///< cancels stale retransmit timers
  sim::SimTime current_rto_ = 0;  ///< doubles per silent round
  bool degraded_ = false;
  uint64_t retransmit_rounds_ = 0;
  uint64_t retransmitted_bytes_ = 0;
  uint64_t degraded_entries_ = 0;

  // Observability (null until SetMetrics).
  obs::Counter* m_mirrored_bytes_ = nullptr;
  obs::Counter* m_mirror_chunks_ = nullptr;
  obs::Counter* m_counter_updates_ = nullptr;
  obs::Counter* m_shadow_advances_ = nullptr;
  obs::Counter* m_retransmit_rounds_ = nullptr;
  obs::Counter* m_retransmitted_bytes_ = nullptr;
  obs::Counter* m_degraded_entries_ = nullptr;
  obs::Counter* m_fenced_writes_ = nullptr;
  obs::Gauge* m_replication_lag_bytes_ = nullptr;
  obs::Gauge* m_degraded_ = nullptr;
};

}  // namespace xssd::core

#endif  // XSSD_CORE_TRANSPORT_MODULE_H_
