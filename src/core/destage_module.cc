#include "core/destage_module.h"

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "obs/flightrec.h"

namespace xssd::core {

DestageModule::DestageModule(sim::Simulator* sim, ftl::Ftl* ftl,
                             CmbModule* cmb, const DestageConfig& config,
                             uint32_t epoch)
    : sim_(sim), ftl_(ftl), cmb_(cmb), config_(config), epoch_(epoch) {
  XSSD_CHECK(config_.ring_lba_count > 0);
  XSSD_CHECK(config_.ring_start_lba + config_.ring_lba_count <=
             ftl_->lpn_count());
}

void DestageModule::SetMetrics(obs::MetricsRegistry* registry,
                               const std::string& prefix) {
  m_pages_written_ = registry->GetCounter(prefix + "destage.pages_written");
  m_partial_pages_ = registry->GetCounter(prefix + "destage.partial_pages");
  m_filler_bytes_ = registry->GetCounter(prefix + "destage.filler_bytes");
  m_stream_bytes_ = registry->GetCounter(prefix + "destage.stream_bytes");
  m_write_failures_ = registry->GetCounter(prefix + "destage.write_failures");
  m_write_retries_ = registry->GetCounter(prefix + "destage.write_retries");
  m_ring_trims_ = registry->GetCounter(prefix + "destage.ring_trims");
  m_inflight_ = registry->GetGauge(prefix + "destage.inflight");
  m_backlog_bytes_ = registry->GetGauge(prefix + "destage.backlog_bytes");
  m_page_latency_us_ =
      registry->GetLatency(prefix + "destage.page_latency_us");
}

void DestageModule::OnCreditAdvance(uint64_t credit) {
  if (credit > credit_seen_) {
    if (credit_seen_ == destage_cursor_) {
      // New data started pending; remember when, for the threshold timer.
      oldest_pending_since_ = sim_->Now();
    }
    credit_seen_ = credit;
  }
  if (m_backlog_bytes_) {
    m_backlog_bytes_->Set(
        static_cast<double>(credit_seen_ - destage_cursor_));
  }
  Pump();
}

void DestageModule::SetBarrier(uint64_t stream_offset) {
  barrier_ = stream_offset;
  Pump();
}

void DestageModule::SetFaultInjector(fault::FaultInjector* injector,
                                     std::string site_prefix) {
  injector_ = injector;
  site_prefix_ = std::move(site_prefix);
}

void DestageModule::SetSpans(obs::SpanRecorder* spans,
                             const std::string& node_tag) {
  spans_ = spans;
  span_node_ = spans ? spans->InternNode(node_tag) : 0;
}

void DestageModule::Pump() {
  if (frozen_) return;
  while (inflight_ < config_.max_inflight) {
    // Re-checked inside the loop: a crash point firing in EmitPage may
    // freeze the module from under us.
    if (frozen_) return;
    uint64_t limit = std::min(credit_seen_, barrier_);
    uint64_t pending = limit > destage_cursor_ ? limit - destage_cursor_ : 0;
    if (pending == 0) return;
    if (pending >= Capacity()) {
      EmitPage(Capacity());
      continue;
    }
    // Not a full page: wait for the latency threshold before padding.
    sim::SimTime age = sim_->Now() - oldest_pending_since_;
    if (age >= config_.latency_threshold) {
      EmitPage(static_cast<uint32_t>(pending));
      continue;
    }
    ArmTimer();
    return;
  }
}

void DestageModule::ArmTimer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  sim::SimTime fire_at = oldest_pending_since_ + config_.latency_threshold;
  sim::SimTime delay = fire_at > sim_->Now() ? fire_at - sim_->Now() : 0;
  sim_->Schedule(delay, [this]() {
    timer_armed_ = false;
    Pump();
  });
}

void DestageModule::EmitPage(uint32_t len) {
  XSSD_CHECK(len > 0 && len <= Capacity());
  if (injector_ != nullptr &&
      injector_->CrashPoint(site_prefix_ + "destage.emit_page")) {
    // Crash before the page exists: the extent stays pending, so a
    // graceful shutdown's emergency destage will pick it up again.
    return;
  }
  DestagePageHeader header;
  header.sequence = next_sequence_;
  header.stream_offset = destage_cursor_;
  header.data_len = len;
  header.epoch = epoch_;

  if (emit_observer_) {
    emit_observer_(header,
                   config_.ring_start_lba +
                       (next_sequence_ % config_.ring_lba_count));
  }

  std::vector<uint8_t> data(len);
  cmb_->CopyOut(destage_cursor_, data.data(), len);
  // Reading the ring consumes backing-memory bandwidth too — the shared-
  // DRAM contention the paper's DRAM-backed CMB exhibits under load.
  cmb_->backing_port().Acquire(len);

  std::vector<uint8_t> page =
      BuildDestagePage(header, data.data(), len, ftl_->page_bytes());

  uint64_t begin = destage_cursor_;
  uint64_t end = destage_cursor_ + len;
  uint64_t lba = config_.ring_start_lba +
                 (next_sequence_ % config_.ring_lba_count);
  if (next_sequence_ >= config_.ring_lba_count) {
    // Ring wrap: the reused slot still maps the page written
    // ring_lba_count sequences ago, long superseded in the stream. Trim it
    // now so GC never wastes a relocation on a dead slot while the
    // replacing write is in flight. (Recovery is unaffected: the chain
    // walk stops at a stale sequence and at an unwritten page alike.)
    ftl_->Trim(lba);
    ++stats_.ring_trims;
    if (m_ring_trims_) m_ring_trims_->Add();
    if (flightrec_ != nullptr) {
      flightrec_->Record(sim_->Now(), "destage",
                         fr_tag_ + "ring wrap: trimmed slot lba " +
                             std::to_string(lba) + " for seq " +
                             std::to_string(next_sequence_));
    }
  }
  ++next_sequence_;
  destage_cursor_ = end;
  if (destage_cursor_ < std::min(credit_seen_, barrier_)) {
    // More is already pending behind this page.
  } else {
    oldest_pending_since_ = sim_->Now();
  }
  ++inflight_;
  if (m_inflight_) m_inflight_->Set(inflight_);
  if (m_backlog_bytes_) {
    m_backlog_bytes_->Set(static_cast<double>(
        std::min(credit_seen_, barrier_) - destage_cursor_));
  }
  sim::SimTime issued_at = sim_->Now();
  // Open the page's span: emit → durable, covering the stream extent. The
  // ambient parent is the chunk whose persistence pumped us; timer-cut
  // partial pages run with no ambient context and become orphans that the
  // analyzer re-attaches by offset range.
  obs::SpanContext page_span;
  if (spans_) {
    page_span = spans_->StartSpan(obs::Stage::kDestagePage, span_node_,
                                  spans_->current());
    spans_->SetRange(page_span, begin, end);
  }
  IssuePage(lba, std::move(page), begin, end, len, issued_at, /*attempt=*/0,
            page_span);
}

void DestageModule::IssuePage(uint64_t lba, std::vector<uint8_t> page,
                              uint64_t begin, uint64_t end, uint32_t len,
                              sim::SimTime issued_at, uint32_t attempt,
                              obs::SpanContext span) {
  // The FTL consumes its argument; keep the original for a potential
  // re-issue after a failed program.
  std::vector<uint8_t> copy = page;
  // Make the page span ambient so the FTL's flash.program span (and any
  // re-issue after backoff) nests under it.
  obs::ScopedContext span_scope(spans_, span);
  ftl_->WriteDirect(
      ftl::IoClass::kDestage, lba, std::move(copy),
      [this, lba, page = std::move(page), begin, end, len, issued_at,
       attempt, span](Status status) mutable {
        if (!status.ok()) {
          if (m_write_failures_) m_write_failures_->Add();
          if (attempt < config_.max_write_retries) {
            // Retry the same extent into the same ring slot after a
            // doubling backoff. The inflight_ slot stays held so the
            // power-loss drain waits for the outcome.
            ++stats_.write_retries;
            if (m_write_retries_) m_write_retries_->Add();
            sim::SimTime backoff = config_.retry_backoff << attempt;
            sim_->Schedule(backoff, [this, lba, page = std::move(page), begin,
                                     end, len, issued_at, attempt,
                                     span]() mutable {
              if (halted_) {
                // Hard crash while backing off: the device is gone; the
                // write never happens.
                --inflight_;
                if (m_inflight_) m_inflight_->Set(inflight_);
                return;
              }
              IssuePage(lba, std::move(page), begin, end, len, issued_at,
                        attempt + 1, span);
            });
            return;
          }
          --inflight_;
          if (m_inflight_) m_inflight_->Set(inflight_);
          if (spans_) spans_->EndSpan(span);
          // FTL bad-block retries and our own re-issues are exhausted;
          // the extent is lost. Keep the counter honest: destaged_ will
          // simply never cross the hole.
          XSSD_LOG(kError) << "destage write failed permanently: "
                           << status.ToString();
          Pump();
          return;
        }
        --inflight_;
        if (m_inflight_) m_inflight_->Set(inflight_);
        if (injector_ != nullptr &&
            injector_->CrashPoint(site_prefix_ + "destage.page_complete")) {
          // The page is durable in flash but the progress accounting dies
          // with the crash — recovery must find it via the chain walk.
          return;
        }
        ++stats_.pages_written;
        stats_.stream_bytes += len;
        if (m_pages_written_) {
          m_pages_written_->Add();
          m_stream_bytes_->Add(len);
          m_page_latency_us_->Add(sim::ToUs(sim_->Now() - issued_at));
        }
        if (len < Capacity()) {
          ++stats_.partial_pages;
          stats_.filler_bytes += Capacity() - len;
          if (m_partial_pages_) {
            m_partial_pages_->Add();
            m_filler_bytes_->Add(Capacity() - len);
          }
        }
        if (spans_) spans_->EndSpan(span);
        if (durable_observer_) durable_observer_(begin, end);
        completed_.Insert(begin, end);
        uint64_t new_destaged = completed_.ContiguousEnd(destaged_);
        if (new_destaged != destaged_) {
          destaged_ = new_destaged;
          completed_.TrimBelow(destaged_);
          cmb_->set_destaged_floor(destaged_);
          if (destaged_observer_) destaged_observer_(destaged_);
        }
        Pump();
      });
}

void DestageModule::DestageAllForPowerLoss(uint32_t page_budget,
                                           std::function<void()> done) {
  frozen_ = false;
  // Temporarily lift the latency threshold and barrier: on power loss the
  // device flushes everything persisted, immediately.
  sim::SimTime saved_threshold = config_.latency_threshold;
  config_.latency_threshold = 0;
  uint64_t saved_barrier = barrier_;
  barrier_ = ~0ull;

  uint64_t pages_before = stats_.pages_written;
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [this, page_budget, pages_before, saved_threshold, saved_barrier,
           done = std::move(done), poll]() mutable {
    bool budget_left =
        stats_.pages_written - pages_before + inflight_ < page_budget;
    // Also done when everything was issued and nothing is in flight —
    // destaged_ can be pinned below credit when completion accounting was
    // lost to a crash point, and no further progress is possible then.
    bool drained = inflight_ == 0 && (destaged_ >= credit_seen_ ||
                                      destage_cursor_ >= credit_seen_);
    if (drained || !budget_left) {
      if (!budget_left) {
        XSSD_LOG(kWarning) << "supercap budget exhausted during power-loss "
                              "destage";
      }
      config_.latency_threshold = saved_threshold;
      barrier_ = saved_barrier;
      frozen_ = true;  // device halts after the emergency destage
      done();
      return;
    }
    Pump();
    sim_->Schedule(sim::Us(5), *poll);
  };
  (*poll)();
}

}  // namespace xssd::core
