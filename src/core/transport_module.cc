#include "core/transport_module.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/flightrec.h"
#include "pcie/store_engine.h"

namespace xssd::core {

TransportModule::TransportModule(sim::Simulator* sim,
                                 pcie::PcieFabric* fabric,
                                 const TransportConfig& config)
    : sim_(sim), fabric_(fabric), config_(config), protocol_(config.protocol) {}

void TransportModule::SetRole(Role role) {
  role_ = role;
  wait_spans_.clear();  // abandoned opens are skipped by the analyzer
  ++timer_generation_;  // cancel any running secondary timer
  ++rt_generation_;     // and any pending retransmit timer
  rt_armed_ = false;
  current_rto_ = config_.retransmit_timeout;
  degraded_ = false;
  if (m_degraded_) m_degraded_->Set(0);
  if (role_ == Role::kSecondary) {
    uint64_t generation = timer_generation_;
    sim_->Schedule(config_.update_period, [this, generation]() {
      if (generation != timer_generation_) return;
      UpdateTick();
    });
  }
}

Status TransportModule::AddPeer(uint64_t peer_cmb_window) {
  for (uint32_t slot = 0; slot < kMaxPeers; ++slot) {
    if (!peer_slots_[slot].active) return AddPeerAt(slot, peer_cmb_window);
  }
  return Status::ResourceExhausted("peer table full");
}

Status TransportModule::AddPeerAt(uint32_t slot, uint64_t peer_cmb_window) {
  if (slot >= kMaxPeers) {
    return Status::InvalidArgument("peer slot out of range");
  }
  if (peer_slots_[slot].active) {
    peer_slots_[slot].window = peer_cmb_window;
    return Status::OK();
  }
  peer_slots_[slot] = PeerSlot{peer_cmb_window, true};
  active_slots_.push_back(slot);
  shadows_[slot] = 0;
  last_shadow_advance_ = sim_->Now();
  UpdateLagGauge();
  // A freshly added peer starts at shadow 0; if the local log is ahead the
  // retransmit path must stream it to convergence even when the primary is
  // otherwise idle (rejoin after a crash, no new writes arriving).
  ArmRetransmitTimer();
  return Status::OK();
}

Status TransportModule::RemovePeer(uint32_t slot) {
  if (slot >= kMaxPeers || !peer_slots_[slot].active) {
    return Status::NotFound("peer slot not active");
  }
  peer_slots_[slot] = PeerSlot{};
  shadows_[slot] = 0;
  active_slots_.erase(
      std::find(active_slots_.begin(), active_slots_.end(), slot));
  if (active_slots_.empty()) {
    ++rt_generation_;
    rt_armed_ = false;
    current_rto_ = config_.retransmit_timeout;
    degraded_ = false;
    if (m_degraded_) m_degraded_->Set(0);
  }
  UpdateLagGauge();
  return Status::OK();
}

void TransportModule::ClearPeers() {
  for (auto& slot : peer_slots_) slot = PeerSlot{};
  active_slots_.clear();
  std::fill(std::begin(shadows_), std::end(shadows_), 0);
  ++rt_generation_;
  rt_armed_ = false;
  current_rto_ = config_.retransmit_timeout;
  degraded_ = false;
  if (m_degraded_) m_degraded_->Set(0);
}

void TransportModule::SetTerm(uint64_t term, uint32_t writer_slot) {
  if (writer_slot >= kMaxPeers) return;
  term_ = std::max(term_, term);
  writer_terms_[writer_slot] = std::max(writer_terms_[writer_slot], term);
  member_slot_ = writer_slot;
}

bool TransportModule::AdmitRingWrite(uint32_t slot) {
  if (slot < kMaxPeers && writer_terms_[slot] >= term_) return true;
  ++fenced_writes_;
  if (m_fenced_writes_) m_fenced_writes_->Add();
  if (flightrec_ != nullptr) {
    flightrec_->Record(
        sim_->Now(), "transport",
        fr_tag_ + "fenced stale-term ring write from slot " +
            std::to_string(slot) + " (writer term " +
            std::to_string(slot < kMaxPeers ? writer_terms_[slot] : 0) +
            " < device term " + std::to_string(term_) + ")");
  }
  return false;
}

void TransportModule::ConfigureSecondary(uint64_t primary_shadow_addr) {
  primary_shadow_addr_ = primary_shadow_addr;
}

void TransportModule::SetMetrics(obs::MetricsRegistry* registry,
                                 const std::string& prefix) {
  m_mirrored_bytes_ =
      registry->GetCounter(prefix + "transport.mirrored_bytes");
  m_mirror_chunks_ = registry->GetCounter(prefix + "transport.mirror_chunks");
  m_counter_updates_ =
      registry->GetCounter(prefix + "transport.counter_updates");
  m_shadow_advances_ =
      registry->GetCounter(prefix + "transport.shadow_advances");
  m_replication_lag_bytes_ =
      registry->GetGauge(prefix + "transport.replication_lag_bytes");
  m_retransmit_rounds_ =
      registry->GetCounter(prefix + "transport.retransmit_rounds");
  m_retransmitted_bytes_ =
      registry->GetCounter(prefix + "transport.retransmitted_bytes");
  m_degraded_entries_ =
      registry->GetCounter(prefix + "transport.degraded_entries");
  m_fenced_writes_ = registry->GetCounter(prefix + "transport.fenced_writes");
  m_degraded_ = registry->GetGauge(prefix + "transport.degraded");
}

void TransportModule::SetSpans(obs::SpanRecorder* spans,
                               const std::string& node_tag) {
  spans_ = spans;
  span_node_ = spans ? spans->InternNode(node_tag) : 0;
  wait_spans_.clear();
}

uint64_t TransportModule::MinShadow() const {
  uint64_t min_shadow = ~0ull;
  for (uint32_t slot : active_slots_) {
    min_shadow = std::min(min_shadow, shadows_[slot]);
  }
  return min_shadow;
}

void TransportModule::UpdateLagGauge() {
  if (!m_replication_lag_bytes_) return;
  if (role_ != Role::kPrimary || active_slots_.empty()) {
    m_replication_lag_bytes_->Set(0);
    return;
  }
  uint64_t lag = 0;
  for (uint32_t slot : active_slots_) {
    if (local_credit_ > shadows_[slot]) {
      lag = std::max(lag, local_credit_ - shadows_[slot]);
    }
  }
  m_replication_lag_bytes_->Set(static_cast<double>(lag));
}

uint64_t TransportModule::PeerRingBase(uint64_t window_base) const {
  uint64_t base = window_base + kRingWindowOffset;
  if (config_.use_intake_aliases) base += ring_bytes_ * (1 + member_slot_);
  return base;
}

void TransportModule::OnCmbArrival(uint64_t stream_offset,
                                   const uint8_t* data, size_t len) {
  if (role_ != Role::kPrimary || active_slots_.empty()) return;
  XSSD_CHECK(ring_bytes_ > 0);
  // Replication wait: arrival until every peer's shadow counter covers
  // these bytes (closed in OnShadowWrite). Ambient for the mirror fan-out
  // below so the NTB link spans nest under it.
  obs::SpanContext wait_ctx;
  if (spans_) {
    wait_ctx = spans_->StartSpan(obs::Stage::kReplicationWait, span_node_,
                                 spans_->current());
    spans_->SetRange(wait_ctx, stream_offset, stream_offset + len);
    wait_spans_.push_back(WaitSpan{stream_offset + len, wait_ctx});
  }
  obs::ScopedContext wait_scope(spans_, wait_ctx);
  // One mirror flow per secondary (no multicast — §4.2), each an
  // independent posted-write stream into the peer's ring window at the
  // same ring offset the local write used (rings are sized identically
  // within a replication group).
  uint64_t ring_offset = stream_offset % ring_bytes_;
  size_t first = static_cast<size_t>(
      std::min<uint64_t>(len, ring_bytes_ - ring_offset));
  if (m_mirror_chunks_) m_mirror_chunks_->Add();
  if (multicast_window_ != 0) {
    // One flow; the NTB adapter fans out in hardware.
    mirrored_bytes_ += len;
    if (m_mirrored_bytes_) m_mirrored_bytes_->Add(len);
    uint64_t base = PeerRingBase(multicast_window_);
    fabric_->PeerWrite(base + ring_offset, data, first,
                       pcie::StoreEngine::kWcLineBytes);
    if (first < len) {
      fabric_->PeerWrite(base, data + first, len - first,
                         pcie::StoreEngine::kWcLineBytes);
    }
    return;
  }
  for (uint32_t slot : active_slots_) {
    mirrored_bytes_ += len;
    if (m_mirrored_bytes_) m_mirrored_bytes_->Add(len);
    uint64_t base = PeerRingBase(peer_slots_[slot].window);
    fabric_->PeerWrite(base + ring_offset, data, first,
                       pcie::StoreEngine::kWcLineBytes);
    if (first < len) {
      fabric_->PeerWrite(base, data + first, len - first,
                         pcie::StoreEngine::kWcLineBytes);
    }
  }
}

void TransportModule::OnLocalCredit(uint64_t credit) {
  local_credit_ = credit;
  UpdateLagGauge();
  ArmRetransmitTimer();
}

void TransportModule::UpdateTick() {
  if (role_ != Role::kSecondary) return;
  // The counter is forwarded on every cycle: the paper's bandwidth-vs-
  // freshness tradeoff (Figure 13) assumes a fixed per-period cost.
  if (primary_shadow_addr_ != 0) {
    uint8_t payload[8];
    uint64_t value = local_credit_;
    std::memcpy(payload, &value, 8);
    fabric_->PeerWrite(primary_shadow_addr_, payload, 8, 8);
    last_sent_credit_ = local_credit_;
    ++counter_updates_sent_;
    if (m_counter_updates_) m_counter_updates_->Add();
  }
  uint64_t generation = timer_generation_;
  sim_->Schedule(config_.update_period, [this, generation]() {
    if (generation != timer_generation_) return;
    UpdateTick();
  });
}

void TransportModule::OnShadowWrite(uint32_t index, uint64_t value) {
  // Accepted for any in-range slot: credit math only consults active
  // slots, and AddPeerAt re-zeroes the slot, so a removed peer's stale
  // pushes are harmless here.
  if (index >= kMaxPeers) return;
  if (value > shadows_[index]) {
    shadows_[index] = value;
    last_shadow_advance_ = sim_->Now();
    if (m_shadow_advances_) m_shadow_advances_->Add();
    // Progress resets the backoff: the next silent window starts small.
    current_rto_ = config_.retransmit_timeout;
    if (degraded_ && role_ == Role::kPrimary && !active_slots_.empty() &&
        MinShadow() >= local_credit_) {
      // Every peer caught back up to the local counter: leave degraded
      // mode and resume the configured protocol.
      degraded_ = false;
      if (m_degraded_) m_degraded_->Set(0);
      XSSD_LOG(kInfo) << "transport: peers caught up, leaving degraded mode";
    }
    UpdateLagGauge();
    if (spans_ && role_ == Role::kPrimary && !active_slots_.empty()) {
      uint64_t covered = MinShadow();
      while (!wait_spans_.empty() &&
             wait_spans_.front().end_offset <= covered) {
        spans_->EndSpan(wait_spans_.front().ctx);
        wait_spans_.pop_front();
      }
    }
    if (shadow_hook_) shadow_hook_(index, value);
  }
}

void TransportModule::ArmRetransmitTimer() {
  if (rt_armed_ || role_ != Role::kPrimary || active_slots_.empty() ||
      config_.retransmit_timeout == 0 || !ring_reader_) {
    return;
  }
  if (MinShadow() >= local_credit_) return;  // nothing outstanding
  if (current_rto_ == 0) current_rto_ = config_.retransmit_timeout;
  rt_armed_ = true;
  uint64_t generation = rt_generation_;
  sim_->Schedule(current_rto_, [this, generation]() {
    if (generation != rt_generation_) return;
    rt_armed_ = false;
    OnRetransmitTimer();
  });
}

void TransportModule::OnRetransmitTimer() {
  if (role_ != Role::kPrimary || active_slots_.empty()) return;
  if (MinShadow() >= local_credit_) {
    current_rto_ = config_.retransmit_timeout;
    return;
  }
  sim::SimTime silent = sim_->Now() - last_shadow_advance_;
  if (silent >= current_rto_) {
    // No shadow progress for a full timeout: assume mirror writes (or the
    // returning counter updates) were lost and re-mirror the outstanding
    // ring bytes. The backoff doubles so a dead link is not hammered.
    RetransmitRound();
    current_rto_ =
        std::min(current_rto_ * 2, config_.retransmit_backoff_max);
    if (!degraded_ && config_.degrade_timeout > 0 &&
        silent >= config_.degrade_timeout) {
      degraded_ = true;
      ++degraded_entries_;
      if (m_degraded_entries_) m_degraded_entries_->Add();
      if (m_degraded_) m_degraded_->Set(1);
      XSSD_LOG(kWarning)
          << "transport: no shadow progress for " << sim::ToUs(silent)
          << " us, entering degraded (un-replicated) mode";
    }
  }
  // Shadows may have advanced since the timer was armed; either way, keep
  // watching until the lag clears.
  ArmRetransmitTimer();
}

void TransportModule::RetransmitRange(uint64_t window_base, uint64_t from) {
  XSSD_CHECK(ring_bytes_ > 0);
  // Bytes older than one ring length have been overwritten locally and can
  // no longer be replayed; a peer that far behind must be re-seeded by the
  // host (degraded mode covers the interim).
  uint64_t floor =
      local_credit_ > ring_bytes_ ? local_credit_ - ring_bytes_ : 0;
  from = std::max(from, floor);
  std::vector<uint8_t> buf;
  uint64_t base = PeerRingBase(window_base);
  for (uint64_t off = from; off < local_credit_;) {
    size_t n = static_cast<size_t>(std::min<uint64_t>(
        config_.retransmit_chunk, local_credit_ - off));
    buf.resize(n);
    ring_reader_(off, buf.data(), n);
    uint64_t ring_offset = off % ring_bytes_;
    size_t first = static_cast<size_t>(
        std::min<uint64_t>(n, ring_bytes_ - ring_offset));
    fabric_->PeerWrite(base + ring_offset, buf.data(), first,
                       pcie::StoreEngine::kWcLineBytes);
    if (first < n) {
      fabric_->PeerWrite(base, buf.data() + first, n - first,
                         pcie::StoreEngine::kWcLineBytes);
    }
    retransmitted_bytes_ += n;
    if (m_retransmitted_bytes_) m_retransmitted_bytes_->Add(n);
    off += n;
  }
}

void TransportModule::RetransmitRound() {
  ++retransmit_rounds_;
  if (m_retransmit_rounds_) m_retransmit_rounds_->Add();
  if (multicast_window_ != 0) {
    // One hardware-fanned flow, replayed from the slowest peer's counter;
    // faster peers see duplicate ring bytes, which is idempotent.
    RetransmitRange(multicast_window_, MinShadow());
    return;
  }
  for (uint32_t slot : active_slots_) {
    if (shadows_[slot] < local_credit_) {
      RetransmitRange(peer_slots_[slot].window, shadows_[slot]);
    }
  }
}

uint64_t TransportModule::EffectiveCredit(uint64_t local_credit) const {
  if (role_ != Role::kPrimary || active_slots_.empty()) return local_credit;
  // Degraded mode: every lagging peer has been silent past the degrade
  // timeout. The primary falls back to its local counter — logging keeps
  // its durability on this device only — until the peers catch back up.
  if (degraded_) return local_credit;
  switch (protocol_) {
    case ReplicationProtocol::kLazy:
      // Lazy replication [58]: the primary proceeds independently.
      return local_credit;
    case ReplicationProtocol::kChain:
      // Chain replication [72]: only the tail's counter matters.
      return std::min(local_credit, shadows_[active_slots_.back()]);
    case ReplicationProtocol::kEager: {
      // Eager: the counter with the most significant delay among the
      // secondaries (paper §4.2) — an entry is persisted only if it is
      // persisted everywhere.
      uint64_t credit = local_credit;
      for (uint32_t slot : active_slots_) {
        credit = std::min(credit, shadows_[slot]);
      }
      return credit;
    }
  }
  return local_credit;
}

uint64_t TransportModule::StatusWord(uint64_t local_credit) const {
  uint64_t word = static_cast<uint64_t>(role_) & StatusBits::kRoleMask;
  word |= (static_cast<uint64_t>(active_slots_.size())
           << StatusBits::kPeerCountShift) &
          StatusBits::kPeerCountMask;
  if (role_ == Role::kPrimary && !active_slots_.empty()) {
    if (degraded_) word |= StatusBits::kDegraded;
    uint64_t min_shadow = MinShadow();
    if (min_shadow < local_credit &&
        sim_->Now() - last_shadow_advance_ > config_.stall_timeout) {
      word |= StatusBits::kReplicationStalled;
    }
  }
  return word;
}

}  // namespace xssd::core
