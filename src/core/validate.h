#ifndef XSSD_CORE_VALIDATE_H_
#define XSSD_CORE_VALIDATE_H_

#include "core/config.h"
#include "core/partitioned_device.h"

namespace xssd::core {

/// Sanity-check a device configuration before construction: geometry,
/// memory rates, ring/queue relationships, and the destage ring's fit
/// inside the logical address space. Returns the first violation found.
Status ValidateConfig(const VillarsConfig& config);

/// Multi-tenant variant: everything above per partition, plus pairwise
/// disjointness of the tenants' destage rings.
Status ValidateConfig(const PartitionedConfig& config);

}  // namespace xssd::core

#endif  // XSSD_CORE_VALIDATE_H_
