#ifndef XSSD_CORE_CONFIG_H_
#define XSSD_CORE_CONFIG_H_

#include <cstdint>

#include "common/units.h"
#include "flash/geometry.h"
#include "flash/timing.h"
#include "ftl/ftl.h"
#include "ftl/scheduler.h"
#include "ftl/scrub.h"
#include "sim/time.h"

namespace xssd::core {

/// Memory technology backing the CMB area (paper §4.1 evaluates both).
enum class BackingKind {
  kSram,  ///< FPGA BlockRAM: 128-bit @ 250 MHz = 4 GB/s, small (128 KiB)
  kDram,  ///< device DDR3: 64-bit @ 250 MHz = 2 GB/s, shared, large (128 MiB)
};

/// \brief Fast-side (CMB module) configuration.
struct CmbConfig {
  BackingKind backing = BackingKind::kSram;
  /// PM ring capacity. Paper: 128 KiB (SRAM) / 128 MiB (DRAM).
  uint64_t ring_bytes = 128 * kKiB;
  /// Staging-queue size pre-negotiated with the database (§4.1); the flow-
  /// control window. Paper finds 32 KiB best (§6.3).
  uint64_t queue_bytes = 32 * kKiB;
  /// Raw SRAM port bandwidth.
  double sram_bytes_per_sec = 4e9;
  /// Raw DRAM port bandwidth (DDR3 through the 64-bit bus).
  double dram_bytes_per_sec = 2e9;
  /// Fraction of DRAM bandwidth left for CMB after the device's regular
  /// data-buffering activity (the DRAM is shared; §6 implementation notes).
  /// The CMB intake and the destage module's ring reads both draw from
  /// this budget.
  double dram_available_fraction = 0.30;
  /// Fixed staging cost per chunk moved from the queue into the PM ring
  /// (queue pop + PM controller issue).
  sim::SimTime persist_overhead = sim::Ns(0);
  /// Number of per-peer intake aliases of the ring window appended to the
  /// CMB BAR. With P slots the BAR is laid out as [0,4K) control page,
  /// [4K, 4K+ring) the direct host window, then P further ring-sized
  /// aliases — a write into alias s is attributed to member slot s and
  /// subject to the term fence (kRegTerm). 0 keeps the legacy layout.
  uint32_t peer_intake_slots = 0;
};

/// \brief Destage module configuration (paper §4.3).
struct DestageConfig {
  /// First LBA of the conventional-side destaging ring.
  uint64_t ring_start_lba = 0;
  /// Ring length in logical blocks ("much larger than the fast side").
  uint64_t ring_lba_count = 2048;
  /// Destage less than a full page if data has waited this long (the
  /// "latency threshold" of §4.3); filler pads the page.
  sim::SimTime latency_threshold = sim::Us(500);
  /// Maximum concurrent destage programs (pipeline depth across dies).
  uint32_t max_inflight = 32;
  /// Re-issue attempts when a destage page write fails even after the
  /// FTL's own bad-block retries. Retries reuse the same sequence number
  /// and ring slot so the recovery chain walk is unaffected.
  uint32_t max_write_retries = 4;
  /// Backoff before re-issuing a failed destage write; doubles per attempt.
  sim::SimTime retry_backoff = sim::Us(50);
};

/// Device role in a replication group (§4.2).
enum class Role : uint32_t {
  kStandalone = 0,
  kPrimary = 1,
  kSecondary = 2,
};

/// Replication protocol the credit counter implements (§4.2).
enum class ReplicationProtocol : uint32_t {
  kEager = 0,  ///< credit = slowest secondary (log persisted everywhere)
  kLazy = 1,   ///< credit = local counter (primary proceeds independently)
  kChain = 2,  ///< credit = counter of the last secondary in the chain
};

/// \brief Transport module configuration (§4.2).
struct TransportConfig {
  /// How often a secondary forwards its credit counter to the primary.
  /// Figure 13 sweeps 0.4–1.6 µs.
  sim::SimTime update_period = sim::Ns(800);
  ReplicationProtocol protocol = ReplicationProtocol::kEager;
  /// A shadow counter lagging the local credit for longer than this while
  /// traffic is outstanding raises the stalled bit in the status register.
  sim::SimTime stall_timeout = sim::Ms(10);
  /// Retransmit timer: when a shadow counter has made no progress for this
  /// long while lagging, the primary re-mirrors the missing ring bytes.
  /// Doubles per silent round up to retransmit_backoff_max. 0 disables
  /// (the paper's prototype behaviour; fault-tolerant setups opt in).
  sim::SimTime retransmit_timeout = 0;
  sim::SimTime retransmit_backoff_max = sim::Ms(5);
  /// TLP payload granularity of retransmitted ring bytes.
  uint32_t retransmit_chunk = 4096;
  /// After this long without any shadow progress the primary enters
  /// degraded mode: credit falls back to the local counter (logging
  /// continues un-replicated) until the lagging peers catch back up.
  /// 0 disables degraded mode (the paper's strict eager behaviour). The
  /// watchdog rides the retransmit timer, so this requires
  /// retransmit_timeout > 0.
  sim::SimTime degrade_timeout = 0;
  /// Mirror ring bytes into the peers' per-slot intake aliases (see
  /// CmbConfig::peer_intake_slots) instead of the shared host window, so
  /// the receiving device can attribute each push to a member slot and
  /// apply the term fence. Requires every peer's CMB BAR to carry intake
  /// aliases; set by the HA supervisor, off for the legacy topology.
  bool use_intake_aliases = false;
};

/// \brief Power-loss protection model: supercapacitors hold the device up
/// long enough to destage the fast side (§3.1 crash consistency).
struct PowerConfig {
  /// Pages the stored energy can destage after a sudden power cut. The
  /// default comfortably covers the largest SRAM ring.
  uint32_t supercap_page_budget = 64;
};

/// \brief Full Villars device configuration.
struct VillarsConfig {
  flash::Geometry geometry;
  flash::Timing flash_timing;
  flash::Reliability reliability;
  ftl::FtlConfig ftl;
  /// Patrol scrubber (off by default — see ScrubConfig::enabled).
  ftl::ScrubConfig scrub;
  CmbConfig cmb;
  DestageConfig destage;
  TransportConfig transport;
  PowerConfig power;
  ftl::SchedulingPolicy scheduling = ftl::SchedulingPolicy::kNeutral;
  uint64_t seed = 42;
};

}  // namespace xssd::core

#endif  // XSSD_CORE_CONFIG_H_
