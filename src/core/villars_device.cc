#include "core/villars_device.h"

#include <cstring>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "obs/flightrec.h"
#include "fault/fault_plan.h"

namespace xssd::core {

VillarsDevice::VillarsDevice(sim::Simulator* sim, pcie::PcieFabric* fabric,
                             const VillarsConfig& config, std::string name)
    : sim_(sim), fabric_(fabric), config_(config), name_(std::move(name)) {
  array_ = std::make_unique<flash::Array>(sim_, config_.geometry,
                                          config_.flash_timing,
                                          config_.reliability, config_.seed);
  ftl_ = std::make_unique<ftl::Ftl>(sim_, array_.get(), config_.ftl);
  ftl_->scheduler().set_policy(config_.scheduling);
  scrubber_ = std::make_unique<ftl::PatrolScrubber>(sim_, ftl_.get(),
                                                    array_.get(),
                                                    config_.scrub);
  scrubber_->Start();  // no-op unless config_.scrub.enabled
  controller_ = std::make_unique<nvme::Controller>(sim_, fabric_, ftl_.get(),
                                                   name_ + "/nvme");
  cmb_ = std::make_unique<CmbModule>(sim_, config_.cmb);
  destage_ = std::make_unique<DestageModule>(sim_, ftl_.get(), cmb_.get(),
                                             config_.destage, epoch_);
  transport_ =
      std::make_unique<TransportModule>(sim_, fabric_, config_.transport);
  transport_->set_ring_bytes(config_.cmb.ring_bytes);
  WireHooks();
}

VillarsDevice::~VillarsDevice() = default;

void VillarsDevice::WireHooks() {
  cmb_->SetCreditHook([this](uint64_t credit) {
    destage_->OnCreditAdvance(credit);
    transport_->OnLocalCredit(credit);
  });
  cmb_->SetArrivalHook(
      [this](uint64_t stream_offset, const uint8_t* data, size_t len) {
        transport_->OnCmbArrival(stream_offset, data, len);
      });
  transport_->SetRingReader(
      [this](uint64_t stream_offset, uint8_t* out, size_t len) {
        cmb_->CopyOut(stream_offset, out, len);
      });
  controller_->SetVendorHandler(
      [this](const nvme::Command& cmd,
             std::function<void(nvme::Completion)> done) {
        HandleVendorAdmin(cmd, std::move(done));
      });
}

void VillarsDevice::EnableMetrics(obs::MetricsRegistry* registry,
                                  const std::string& prefix) {
  metrics_registry_ = registry;
  metrics_prefix_ = prefix;
  array_->SetMetrics(registry, prefix);
  ftl_->SetMetrics(registry, prefix);
  scrubber_->SetMetrics(registry, prefix);
  controller_->SetMetrics(registry, prefix);
  cmb_->SetMetrics(registry, prefix);
  destage_->SetMetrics(registry, prefix);
  transport_->SetMetrics(registry, prefix);
}

void VillarsDevice::EnableSpans(obs::SpanRecorder* spans,
                                const std::string& node_tag) {
  spans_ = spans;
  span_node_tag_ = node_tag;
  cmb_->SetSpans(spans, node_tag);
  destage_->SetSpans(spans, node_tag);
  transport_->SetSpans(spans, node_tag);
  ftl_->SetSpans(spans, node_tag);
}

void VillarsDevice::EnableFlightRecorder(obs::FlightRecorder* recorder) {
  flightrec_ = recorder;
  ftl_->SetFlightRecorder(recorder, name_);
  destage_->SetFlightRecorder(recorder, name_);
  transport_->SetFlightRecorder(recorder, name_);
}

void VillarsDevice::ArmFaults(fault::FaultInjector* injector,
                              bool install_crash_handler) {
  injector_ = injector;
  array_->set_fault_injector(injector);
  controller_->set_fault_injector(injector);
  cmb_->SetFaultInjector(injector, name_ + "/");
  destage_->SetFaultInjector(injector, name_ + "/");
  ftl_->SetFaultInjector(injector, name_ + "/");
  if (injector != nullptr && install_crash_handler) {
    injector->SetCrashHandler([this](const fault::FaultSpec& spec) {
      if (spec.graceful) {
        PowerFail([] {});
      } else {
        CrashHard();
      }
    });
  }
}

Status VillarsDevice::Attach(uint64_t bar0_base, uint64_t cmb_base) {
  XSSD_RETURN_IF_ERROR(fabric_->AddMmioRegion(
      bar0_base, nvme::kBar0Bytes, controller_.get(), name_ + "/bar0"));
  XSSD_RETURN_IF_ERROR(fabric_->AddMmioRegion(cmb_base, cmb_bar_bytes(), this,
                                              name_ + "/cmb"));
  bar0_base_ = bar0_base;
  cmb_base_ = cmb_base;
  return Status::OK();
}

void VillarsDevice::OnMmioWrite(uint64_t offset, const uint8_t* data,
                                size_t len) {
  if (halted_) return;
  if (offset >= kRingWindowOffset) {
    // Ring region: the direct host window first, then one intake alias per
    // peer slot (same ring, but writes are attributed to a member slot and
    // term-fenced — a deposed primary's stale pushes die here).
    uint64_t rel = offset - kRingWindowOffset;
    uint64_t window = rel / config_.cmb.ring_bytes;
    uint64_t ring_offset = rel % config_.cmb.ring_bytes;
    if (window > 0 &&
        !transport_->AdmitRingWrite(static_cast<uint32_t>(window - 1))) {
      return;
    }
    cmb_->OnRingWrite(ring_offset, data, len);
    return;
  }
  // Control-page writes.
  if (offset >= kRegShadowBase &&
      offset + len <= kRegShadowBase + 8 * kMaxPeers && len == 8) {
    uint64_t value = 0;
    std::memcpy(&value, data, 8);
    uint32_t index = static_cast<uint32_t>((offset - kRegShadowBase) / 8);
    transport_->OnShadowWrite(index, value);
    return;
  }
  if (offset == kRegDestageBarrier && len == 8) {
    uint64_t value = 0;
    std::memcpy(&value, data, 8);
    destage_->SetBarrier(value);
    return;
  }
  XSSD_LOG(kDebug) << name_ << ": ignored control write at offset "
                   << offset;
}

uint64_t VillarsDevice::ReadRegister(uint64_t offset) const {
  switch (offset) {
    case kRegCredit:
      return transport_->EffectiveCredit(cmb_->local_credit());
    case kRegLocalCredit:
      return cmb_->local_credit();
    case kRegQueueBytes:
      return cmb_->queue_bytes();
    case kRegRingBytes:
      return cmb_->ring_bytes();
    case kRegDestaged:
      return destage_->destaged();
    case kRegDestageStartLba:
      return destage_->ring_start_lba();
    case kRegDestageLbaCount:
      return destage_->ring_lba_count();
    case kRegTransportStatus: {
      uint64_t word = transport_->StatusWord(cmb_->local_credit());
      if (halted_) word |= StatusBits::kHalted;
      return word;
    }
    case kRegDestageBarrier:
      return destage_->barrier();
    case kRegEpoch:
      return epoch_;
    case kRegTerm:
      return transport_->term();
    case kRegFencedWrites:
      return transport_->fenced_writes();
    default:
      if (offset >= kRegShadowBase && offset < kRegShadowBase + 8 * kMaxPeers) {
        return transport_->shadow_counter(
            static_cast<uint32_t>((offset - kRegShadowBase) / 8));
      }
      if (offset >= kRegWriterTermBase &&
          offset < kRegWriterTermBase + 8 * kMaxPeers) {
        return transport_->writer_term(
            static_cast<uint32_t>((offset - kRegWriterTermBase) / 8));
      }
      return 0;
  }
}

void VillarsDevice::OnMmioRead(uint64_t offset, uint8_t* out, size_t len) {
  if (offset >= kRingWindowOffset) {
    if (halted_) {
      std::memset(out, 0, len);
      return;
    }
    cmb_->ReadRing((offset - kRingWindowOffset) % config_.cmb.ring_bytes, out,
                   len);
    return;
  }
  // Control registers are 8-byte aligned; serve any aligned span.
  std::memset(out, 0, len);
  uint64_t reg = offset & ~7ull;
  uint64_t value = ReadRegister(reg);
  size_t shift = offset - reg;
  for (size_t i = 0; i < len && shift + i < 8; ++i) {
    out[i] = static_cast<uint8_t>(value >> (8 * (shift + i)));
  }
}

void VillarsDevice::HandleVendorAdmin(
    const nvme::Command& cmd, std::function<void(nvme::Completion)> done) {
  nvme::Completion cpl;
  cpl.cid = cmd.cid;
  cpl.status = nvme::CmdStatus::kSuccess;
  if (halted_) {
    // A halted device answers nothing; the error completion models the
    // driver-side timeout a dead peer would produce mid-setup.
    cpl.status = nvme::CmdStatus::kInternalError;
    done(cpl);
    return;
  }
  switch (static_cast<nvme::AdminOpcode>(cmd.opcode)) {
    case nvme::AdminOpcode::kXssdSetRole: {
      if (cmd.cdw10 > static_cast<uint32_t>(Role::kSecondary)) {
        cpl.status = nvme::CmdStatus::kInvalidField;
        break;
      }
      transport_->SetRole(static_cast<Role>(cmd.cdw10));
      // cdw11/cdw12: secondary's shadow mailbox address through NTB
      // (64-bit split across the dwords).
      if (static_cast<Role>(cmd.cdw10) == Role::kSecondary) {
        uint64_t addr =
            (static_cast<uint64_t>(cmd.cdw12) << 32) | cmd.cdw11;
        transport_->ConfigureSecondary(addr);
      }
      break;
    }
    case nvme::AdminOpcode::kXssdAddPeer: {
      uint64_t addr = (static_cast<uint64_t>(cmd.cdw12) << 32) | cmd.cdw11;
      Status status = transport_->AddPeerAt(cmd.cdw10, addr);
      if (!status.ok()) cpl.status = nvme::CmdStatus::kInvalidField;
      break;
    }
    case nvme::AdminOpcode::kXssdRemovePeer: {
      Status status = transport_->RemovePeer(cmd.cdw10);
      if (!status.ok()) cpl.status = nvme::CmdStatus::kInvalidField;
      break;
    }
    case nvme::AdminOpcode::kXssdClearPeers:
      transport_->ClearPeers();
      break;
    case nvme::AdminOpcode::kXssdSetTerm: {
      if (cmd.cdw11 >= kMaxPeers) {
        cpl.status = nvme::CmdStatus::kInvalidField;
        break;
      }
      transport_->SetTerm(cmd.cdw10, cmd.cdw11);
      break;
    }
    case nvme::AdminOpcode::kXssdTruncate: {
      uint64_t cut = (static_cast<uint64_t>(cmd.cdw11) << 32) | cmd.cdw10;
      TruncateLog(cut);
      break;
    }
    case nvme::AdminOpcode::kXssdSetUpdatePeriod:
      transport_->set_update_period(sim::Ns(cmd.cdw10));
      break;
    case nvme::AdminOpcode::kXssdSetDestagePolicy: {
      if (cmd.cdw10 >
          static_cast<uint32_t>(ftl::SchedulingPolicy::kConventionalPriority)) {
        cpl.status = nvme::CmdStatus::kInvalidField;
        break;
      }
      ftl_->scheduler().set_policy(
          static_cast<ftl::SchedulingPolicy>(cmd.cdw10));
      break;
    }
    case nvme::AdminOpcode::kXssdSetReplication: {
      if (cmd.cdw10 > static_cast<uint32_t>(ReplicationProtocol::kChain)) {
        cpl.status = nvme::CmdStatus::kInvalidField;
        break;
      }
      transport_->set_protocol(static_cast<ReplicationProtocol>(cmd.cdw10));
      break;
    }
    case nvme::AdminOpcode::kXssdGetLogRing:
      cpl.result = static_cast<uint32_t>(destage_->next_sequence());
      break;
    default:
      cpl.status = nvme::CmdStatus::kInvalidOpcode;
      break;
  }
  done(cpl);
}

void VillarsDevice::PowerFail(std::function<void()> done) {
  XSSD_LOG(kInfo) << name_ << ": POWER FAIL — emergency destage";
  if (flightrec_ != nullptr) {
    flightrec_->Record(sim_->Now(), "device",
                       name_ + " power fail, emergency destage (supercap "
                               "budget " +
                           std::to_string(config_.power.supercap_page_budget) +
                           " pages)");
  }
  halted_ = true;  // reject further host traffic immediately
  scrubber_->Stop();
  // Freeze the background pump first so the emergency destage (below)
  // accounts every page against the supercap energy budget.
  destage_->set_frozen(true);
  cmb_->DrainStagingForPowerLoss();
  destage_->DestageAllForPowerLoss(config_.power.supercap_page_budget,
                                   std::move(done));
  if (flightrec_ != nullptr) {
    flightrec_->AutoDump(name_ + " power fail");
  }
}

void VillarsDevice::CrashHard() {
  XSSD_LOG(kWarning) << name_ << ": HARD CRASH — no supercap flush";
  if (flightrec_ != nullptr) {
    flightrec_->Record(sim_->Now(), "device",
                       name_ + " hard crash, staged data abandoned");
  }
  halted_ = true;
  scrubber_->Stop();
  // Order matters: halt the destage pipeline (cancelling any backed-off
  // write retries) before dropping staged chunks, so nothing schedules new
  // flash traffic against the dead device.
  destage_->HaltForCrash();
  cmb_->AbandonStagingForCrash();
  if (flightrec_ != nullptr) {
    flightrec_->AutoDump(name_ + " hard crash");
  }
}

void VillarsDevice::TruncateLog(uint64_t offset) {
  if (flightrec_ != nullptr) {
    flightrec_->Record(sim_->Now(), "device",
                       name_ + " log truncate to offset " +
                           std::to_string(offset));
  }
  cmb_->TruncateTo(offset);
  if (destage_->destage_cursor() > offset) {
    // Pages beyond the cut already went to flash and cannot be unwritten;
    // rolling the cursor back would break the sequence-chain law. Restart
    // the destage stream in a fresh epoch instead — recovery keeps only
    // the newest epoch, so the stale pages are ignored, and [0, offset)
    // re-destages under the new epoch stamp.
    ++epoch_;
    destage_ = std::make_unique<DestageModule>(sim_, ftl_.get(), cmb_.get(),
                                               config_.destage, epoch_);
    if (metrics_registry_ != nullptr) {
      destage_->SetMetrics(metrics_registry_, metrics_prefix_);
    }
    if (injector_ != nullptr) {
      destage_->SetFaultInjector(injector_, name_ + "/");
    }
    if (spans_ != nullptr) {
      destage_->SetSpans(spans_, span_node_tag_);
    }
    if (flightrec_ != nullptr) {
      destage_->SetFlightRecorder(flightrec_, name_);
    }
    cmb_->set_destaged_floor(0);
    WireHooks();
  }
  destage_->OnCreditAdvance(cmb_->local_credit());
  transport_->OnLocalCredit(cmb_->local_credit());
}

void VillarsDevice::Reboot() {
  if (flightrec_ != nullptr) {
    flightrec_->Record(sim_->Now(), "device",
                       name_ + " reboot into epoch " +
                           std::to_string(epoch_ + 1));
  }
  ++epoch_;
  halted_ = false;
  cmb_->ResetForReboot();
  // The destage module restarts with a fresh cursor in the new epoch; the
  // conventional side keeps all destaged pages (recovery reads them).
  destage_ = std::make_unique<DestageModule>(sim_, ftl_.get(), cmb_.get(),
                                             config_.destage, epoch_);
  if (metrics_registry_ != nullptr) {
    destage_->SetMetrics(metrics_registry_, metrics_prefix_);
  }
  if (injector_ != nullptr) {
    destage_->SetFaultInjector(injector_, name_ + "/");
  }
  if (spans_ != nullptr) {
    destage_->SetSpans(spans_, span_node_tag_);
  }
  if (flightrec_ != nullptr) {
    destage_->SetFlightRecorder(flightrec_, name_);
  }
  // Advance the destage ring cursor past the previous epoch's pages so new
  // destages do not immediately overwrite recovery data. Recovery tooling
  // reads the ring before writing resumes.
  WireHooks();
  // The scrubber survives the reboot (its per-block risk inputs live in
  // the flash array, which persists); only the tick needs re-arming.
  scrubber_->Start();
  // The transport module survives the reboot (term fence, role, peers),
  // but its credit view must follow the reset CMB: a rebooted secondary
  // advertising its pre-crash counter would make the primary skip the
  // catch-up prefix during resync.
  transport_->OnLocalCredit(cmb_->local_credit());
}

}  // namespace xssd::core
