#ifndef XSSD_CORE_PAGE_FORMAT_H_
#define XSSD_CORE_PAGE_FORMAT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace xssd::core {

/// \brief On-flash layout of one destaged page.
///
/// The Destage module bundles a run of the append stream into a flash page
/// with this self-describing header (paper §4.3: partial pages carry filler
/// to "complete a page's worth of data"). After a crash, recovery scans the
/// destage ring, validates CRCs, and reassembles the stream from
/// (stream_offset, data_len) runs — stopping at the first hole.
struct DestagePageHeader {
  static constexpr uint32_t kMagic = 0x58535344;  // "XSSD"
  static constexpr uint32_t kSize = 32;

  uint32_t magic = kMagic;
  uint32_t crc = 0;           ///< CRC-32C over header (crc=0) + data
  uint64_t sequence = 0;      ///< destage ring sequence number
  uint64_t stream_offset = 0; ///< first stream byte stored in this page
  uint32_t data_len = 0;      ///< valid bytes after the header
  uint32_t epoch = 0;         ///< device epoch that wrote the page
};

/// Stream payload bytes a page of `page_bytes` can carry.
constexpr uint32_t DestagePayloadCapacity(uint32_t page_bytes) {
  return page_bytes - DestagePageHeader::kSize;
}

/// Assemble a full page image: header + data + zero filler.
std::vector<uint8_t> BuildDestagePage(const DestagePageHeader& header,
                                      const uint8_t* data, size_t len,
                                      uint32_t page_bytes);

/// Parsed view of a destaged page.
struct ParsedDestagePage {
  DestagePageHeader header;
  std::vector<uint8_t> data;
};

/// Validate magic + CRC and extract the payload. kNotFound for a page that
/// was never destaged (no magic); kCorruption for a bad CRC.
Result<ParsedDestagePage> ParseDestagePage(const std::vector<uint8_t>& page);

}  // namespace xssd::core

#endif  // XSSD_CORE_PAGE_FORMAT_H_
