#include "core/page_format.h"

#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"

namespace xssd::core {

namespace {

void EncodeHeader(const DestagePageHeader& header, uint8_t* out) {
  std::memcpy(out + 0, &header.magic, 4);
  std::memcpy(out + 4, &header.crc, 4);
  std::memcpy(out + 8, &header.sequence, 8);
  std::memcpy(out + 16, &header.stream_offset, 8);
  std::memcpy(out + 24, &header.data_len, 4);
  std::memcpy(out + 28, &header.epoch, 4);
}

DestagePageHeader DecodeHeader(const uint8_t* in) {
  DestagePageHeader header;
  std::memcpy(&header.magic, in + 0, 4);
  std::memcpy(&header.crc, in + 4, 4);
  std::memcpy(&header.sequence, in + 8, 8);
  std::memcpy(&header.stream_offset, in + 16, 8);
  std::memcpy(&header.data_len, in + 24, 4);
  std::memcpy(&header.epoch, in + 28, 4);
  return header;
}

uint32_t PageCrc(const DestagePageHeader& header, const uint8_t* data,
                 size_t len) {
  DestagePageHeader crc_view = header;
  crc_view.crc = 0;
  uint8_t image[DestagePageHeader::kSize];
  EncodeHeader(crc_view, image);
  uint32_t crc = Crc32c(image, sizeof(image));
  return Crc32c(data, len, crc);
}

}  // namespace

std::vector<uint8_t> BuildDestagePage(const DestagePageHeader& header,
                                      const uint8_t* data, size_t len,
                                      uint32_t page_bytes) {
  XSSD_CHECK(len <= DestagePayloadCapacity(page_bytes));
  XSSD_CHECK(header.data_len == len);
  std::vector<uint8_t> page(page_bytes, 0);
  DestagePageHeader out = header;
  out.crc = PageCrc(header, data, len);
  EncodeHeader(out, page.data());
  std::memcpy(page.data() + DestagePageHeader::kSize, data, len);
  return page;
}

Result<ParsedDestagePage> ParseDestagePage(const std::vector<uint8_t>& page) {
  if (page.size() < DestagePageHeader::kSize) {
    return Status::InvalidArgument("page smaller than header");
  }
  DestagePageHeader header = DecodeHeader(page.data());
  if (header.magic != DestagePageHeader::kMagic) {
    return Status::NotFound("no destage header (unwritten page)");
  }
  if (header.data_len > page.size() - DestagePageHeader::kSize) {
    return Status::Corruption("data length exceeds page");
  }
  uint32_t expect = PageCrc(header, page.data() + DestagePageHeader::kSize,
                            header.data_len);
  if (expect != header.crc) {
    return Status::Corruption("destage page CRC mismatch");
  }
  ParsedDestagePage parsed;
  parsed.header = header;
  parsed.data.assign(
      page.begin() + DestagePageHeader::kSize,
      page.begin() + DestagePageHeader::kSize + header.data_len);
  return parsed;
}

}  // namespace xssd::core
