#ifndef XSSD_CORE_CMB_MODULE_H_
#define XSSD_CORE_CMB_MODULE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/config.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/bandwidth_server.h"
#include "sim/interval_set.h"
#include "sim/simulator.h"

namespace xssd::fault {
class FaultInjector;
}  // namespace xssd::fault

namespace xssd::core {

/// \brief The CMB module (paper §4.1): the fast side's intake.
///
/// Writes arriving on the byte-addressable window land in an SRAM staging
/// queue, are proactively drained into the PM backing ring, and — only once
/// they reach backing memory — advance the credit counter over the
/// contiguous prefix of the append stream. This ordering (Figure 5: queue →
/// backing → counter) is the device's persistence contract: a byte is
/// persistent iff the credit counter has moved past it.
///
/// The ring is addressed by *stream offset*: the writer appends at
/// monotonically increasing offsets, and ring address = offset mod ring
/// size. Arrival may be mostly-sequential (out of order within the staging
/// window); credit only ever advances over gap-free data.
class CmbModule {
 public:
  /// Fires with the new local credit each time it advances.
  using CreditHook = std::function<void(uint64_t credit)>;
  /// Fires on every chunk arrival (before persistence) with the stream
  /// offset — the Transport module's mirror tap (Figure 6 step 1).
  using ArrivalHook =
      std::function<void(uint64_t stream_offset, const uint8_t* data,
                         size_t len)>;

  CmbModule(sim::Simulator* sim, const CmbConfig& config);

  CmbModule(const CmbModule&) = delete;
  CmbModule& operator=(const CmbModule&) = delete;

  /// A memory-write TLP landed on the ring window at `ring_offset`.
  void OnRingWrite(uint64_t ring_offset, const uint8_t* data, size_t len);

  /// Serve a read of the ring window (CMB is readable per the standard).
  void ReadRing(uint64_t ring_offset, uint8_t* out, size_t len) const;

  /// Bytes persisted into the PM ring, contiguous from stream offset 0.
  uint64_t local_credit() const { return credit_; }

  uint64_t ring_bytes() const { return config_.ring_bytes; }
  uint64_t queue_bytes() const { return config_.queue_bytes; }

  /// Bytes currently in the staging queue (arrived, not yet persisted).
  uint64_t staging_occupancy() const { return staging_bytes_; }

  /// Copy persisted stream bytes [stream_offset, +len) out of the ring —
  /// the Destage module's read path. The range must lie within the last
  /// ring_bytes of the stream and be below local_credit().
  void CopyOut(uint64_t stream_offset, uint8_t* out, size_t len) const;

  /// The Destage module reports progress so the module can detect ring
  /// overwrites of un-destaged data (a protocol violation by the host).
  void set_destaged_floor(uint64_t stream_offset) {
    destaged_floor_ = stream_offset;
  }
  uint64_t destaged_floor() const { return destaged_floor_; }

  /// Count of writes that clobbered not-yet-destaged bytes (diagnostics;
  /// zero under a conforming host).
  uint64_t overwrite_violations() const { return overwrite_violations_; }

  void SetCreditHook(CreditHook hook) { credit_hook_ = std::move(hook); }
  void SetArrivalHook(ArrivalHook hook) { arrival_hook_ = std::move(hook); }

  /// Observation taps for the conformance checker (src/check): called in
  /// addition to — and before — the wired hooks, so a cross-checking model
  /// sees each protocol step before downstream modules react to it. Unlike
  /// the hooks these carry no device behaviour; detach with nullptr.
  void SetCreditObserver(CreditHook observer) {
    credit_observer_ = std::move(observer);
  }
  void SetArrivalObserver(ArrivalHook observer) {
    arrival_observer_ = std::move(observer);
  }

  /// TEST-ONLY planted ordering bug (conformance-fuzzer gate): advance the
  /// credit counter at *arrival* time, before the chunk reaches backing
  /// memory — the exact Figure 5 ordering violation the persistence
  /// contract exists to prevent. A crash that loses staged or in-flight
  /// chunks then leaves acknowledged bytes unrecoverable. Never set outside
  /// the checker's planted-bug mode.
  void set_test_only_early_credit(bool enabled) {
    test_only_early_credit_ = enabled;
  }

  /// Crash protocol step 1: on power failure the staging queue is drained
  /// into the PM ring using residual energy (functional, instantaneous in
  /// virtual time — the caps hold the device up). Credit advances as usual,
  /// including over chunks that were still queued.
  void DrainStagingForPowerLoss();

  /// Hard-crash variant: the supercap flush never happens. Staged chunks
  /// are dropped on the floor; whatever already reached the PM ring (and
  /// only that) survives into recovery.
  void AbandonStagingForCrash();

  /// Attach a fault injector (nullptr detaches). Crash site "cmb.persist"
  /// fires at the head of Persist(), losing the chunk being persisted —
  /// the in-flight-byte gap the credit contract promises to fence off.
  /// `site_prefix` (e.g. "pri/") namespaces the site per device.
  void SetFaultInjector(fault::FaultInjector* injector,
                        std::string site_prefix);

  /// Reset to a pristine fast side (reboot after destage). The stream
  /// restarts at offset 0 in a new epoch.
  void ResetForReboot();

  /// Discard stream bytes at or above `offset` (HA resync: a rejoining
  /// secondary truncates its unreplicated suffix before adopting the new
  /// primary's stream). Ring contents below `offset` are kept; staged and
  /// in-flight chunks are dropped; the credit rolls back if it had passed
  /// the cut. No credit hooks fire — the caller rewires downstream state.
  void TruncateTo(uint64_t offset);

  /// Highest stream offset received (gaps may exist below it).
  uint64_t highest_received() const { return highest_received_; }
  /// True if some byte above the credit has arrived (i.e. a gap or
  /// in-staging data exists).
  bool HasPendingBeyondCredit() const;

  double backing_bytes_per_sec() const { return backing_bytes_per_sec_; }
  sim::BandwidthServer& backing_port() { return backing_; }

  /// Register this module's metrics under `prefix` + "cmb." (occupancy,
  /// credit, intake/persist byte counts). Safe to call more than once.
  void SetMetrics(obs::MetricsRegistry* registry,
                  const std::string& prefix = "");

  /// Attach span tracing (nullptr detaches). Each arriving chunk opens a
  /// cmb.stage span (arrival → persisted in backing) under the ambient
  /// request context; the chunk's context is restored around Persist() so
  /// credit-hook work nests under the chunk that caused it.
  void SetSpans(obs::SpanRecorder* spans, const std::string& node_tag);

 private:
  /// Infer the stream offset a ring-window write addresses. The writer may
  /// run up to one staging window ahead of the credit, so the unique
  /// candidate in [credit, credit + ring) is correct for conforming hosts.
  uint64_t InferStreamOffset(uint64_t ring_offset) const;

  /// Move one staged chunk into backing memory (persist point). `span` is
  /// the chunk's cmb.stage span, closed once the bytes are persistent.
  void Persist(uint64_t stream_offset, std::vector<uint8_t> data,
               obs::SpanContext span);

  void AdvanceCredit();

  sim::Simulator* sim_;
  CmbConfig config_;
  double backing_bytes_per_sec_;
  sim::BandwidthServer backing_;

  std::vector<uint8_t> ring_;
  sim::IntervalSet received_;       ///< persisted stream intervals
  uint64_t credit_ = 0;             ///< contiguous persisted prefix
  uint64_t highest_received_ = 0;
  uint64_t destaged_floor_ = 0;
  uint64_t staging_bytes_ = 0;
  uint64_t overwrite_violations_ = 0;

  struct Staged {
    uint64_t stream_offset;
    std::vector<uint8_t> data;
    obs::SpanContext span;
  };
  std::deque<Staged> staging_;  ///< arrived, persist event pending
  uint64_t drain_epoch_ = 0;    ///< invalidates stale persist events

  CreditHook credit_hook_;
  ArrivalHook arrival_hook_;
  CreditHook credit_observer_;
  ArrivalHook arrival_observer_;
  bool test_only_early_credit_ = false;
  fault::FaultInjector* injector_ = nullptr;
  std::string site_prefix_;
  obs::SpanRecorder* spans_ = nullptr;
  uint16_t span_node_ = 0;

  // Observability (null until SetMetrics; hot paths test one pointer).
  obs::Counter* m_append_bytes_ = nullptr;
  obs::Counter* m_append_chunks_ = nullptr;
  obs::Counter* m_persisted_bytes_ = nullptr;
  obs::Counter* m_overwrite_violations_ = nullptr;
  obs::Counter* m_powerloss_drains_ = nullptr;
  obs::Gauge* m_staging_occupancy_ = nullptr;
  obs::Gauge* m_credit_ = nullptr;
};

}  // namespace xssd::core

#endif  // XSSD_CORE_CMB_MODULE_H_
