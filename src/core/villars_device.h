#ifndef XSSD_CORE_VILLARS_DEVICE_H_
#define XSSD_CORE_VILLARS_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/cmb_module.h"
#include "core/config.h"
#include "core/destage_module.h"
#include "core/registers.h"
#include "core/transport_module.h"
#include "flash/array.h"
#include "ftl/ftl.h"
#include "ftl/scrub.h"
#include "nvme/controller.h"
#include "pcie/fabric.h"

namespace xssd::core {

/// \brief The Villars device: the reference X-SSD design (paper §4).
///
/// One object assembles the whole of Figure 4:
///  - the *conventional side*: flash array + FTL + NVMe controller (BAR0);
///  - the *fast side*: CMB module (PM ring behind a byte-addressable BAR),
///    Destage module, and optional Transport module.
///
/// The device registers two MMIO regions on its host's PCIe fabric: BAR0
/// (NVMe registers/doorbells) and the CMB BAR (control page + ring window).
/// Vendor-specific NVMe admin commands switch roles, add peers, and tune
/// destage/replication policy — "changing the networking mode ... is done
/// via software" (§4.2).
class VillarsDevice : public pcie::MmioDevice {
 public:
  VillarsDevice(sim::Simulator* sim, pcie::PcieFabric* fabric,
                const VillarsConfig& config, std::string name);
  ~VillarsDevice();

  VillarsDevice(const VillarsDevice&) = delete;
  VillarsDevice& operator=(const VillarsDevice&) = delete;

  /// Map BAR0 and the CMB BAR onto the fabric.
  Status Attach(uint64_t bar0_base, uint64_t cmb_base);

  uint64_t bar0_base() const { return bar0_base_; }
  uint64_t cmb_base() const { return cmb_base_; }
  /// Bus address of the ring window (cmb_base + control page).
  uint64_t ring_window_base() const { return cmb_base_ + kRingWindowOffset; }
  /// Control page + direct ring window + one ring-sized intake alias per
  /// configured peer slot (CmbConfig::peer_intake_slots; 0 = legacy BAR).
  uint64_t cmb_bar_bytes() const {
    return kCtrlPageBytes +
           config_.cmb.ring_bytes * (1 + config_.cmb.peer_intake_slots);
  }

  // pcie::MmioDevice — the CMB BAR (control page + ring window).
  void OnMmioWrite(uint64_t offset, const uint8_t* data, size_t len) override;
  void OnMmioRead(uint64_t offset, uint8_t* out, size_t len) override;

  // -- Power events ---------------------------------------------------------

  /// Sudden power interruption: drain the staging queue, destage the PM
  /// ring (bounded by the supercap budget), then halt. `done` fires when
  /// the emergency destage finishes.
  void PowerFail(std::function<void()> done);

  /// Hard crash (firmware wedge / supercap failure): the device halts with
  /// NO staging drain and NO emergency destage. Only bytes that already
  /// reached the PM ring (and pages already durable in flash) survive into
  /// recovery — the worst case the recovery chain walk must handle.
  void CrashHard();

  /// Bring the device back: fast side restarts empty in a new epoch; the
  /// conventional side (flash) retains everything destaged.
  void Reboot();

  /// HA resync: discard stream bytes at or above `offset` (the rejoining
  /// secondary's unreplicated suffix). If pages beyond the cut were already
  /// issued to flash, the destage stream restarts in a fresh epoch so the
  /// recovery chain walk ignores them; otherwise the cursor simply stops
  /// short of the cut. Exposed over admin as kXssdTruncate.
  void TruncateLog(uint64_t offset);

  bool halted() const { return halted_; }
  uint32_t epoch() const { return epoch_; }

  // -- Component access -----------------------------------------------------

  CmbModule& cmb() { return *cmb_; }
  DestageModule& destage() { return *destage_; }
  TransportModule& transport() { return *transport_; }
  ftl::Ftl& ftl() { return *ftl_; }
  /// Patrol scrubber over this device's FTL (running only when
  /// config.scrub.enabled; halted with the device, re-armed on Reboot).
  ftl::PatrolScrubber& scrubber() { return *scrubber_; }
  flash::Array& flash_array() { return *array_; }
  nvme::Controller& controller() { return *controller_; }
  const VillarsConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

  /// Credit the host sees (protocol-dependent on a primary).
  uint64_t EffectiveCredit() const {
    return transport_->EffectiveCredit(cmb_->local_credit());
  }

  /// Register metrics for every component under `prefix` (e.g. "cmb.*",
  /// "destage.*", "flash.*"). The registry pointer is retained so the
  /// destage module recreated by Reboot() is re-instrumented.
  void EnableMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix = "");

  /// Attach span tracing to every component under node tag `node_tag`
  /// (nullptr detaches). The recorder is retained so the destage module
  /// recreated by Reboot()/TruncateLog() is re-instrumented.
  void EnableSpans(obs::SpanRecorder* spans, const std::string& node_tag);

  /// Attach a flight recorder to every component of this device (nullptr
  /// detaches). Components record their rare, load-bearing events (ring
  /// wraps, fenced writes, uncorrectable-read escalations, GC collects)
  /// tagged with this device's name; the device itself records power
  /// fails, hard crashes, reboots, and log truncations, and AutoDumps the
  /// ring at both crash flavours. Retained so the destage module recreated
  /// by Reboot()/TruncateLog() stays instrumented.
  void EnableFlightRecorder(obs::FlightRecorder* recorder);

  /// Attach a fault injector to every component of this device (nullptr
  /// detaches). Crash sites are namespaced `name() + "/"` (a plan site
  /// "destage.emit_page" matches any device; "pri/destage.emit_page" only
  /// this one). With `install_crash_handler`, a firing crash clause drives
  /// this device: graceful → PowerFail (supercap flush + emergency
  /// destage), otherwise → CrashHard. The injector is retained so the
  /// destage module recreated by Reboot() stays instrumented.
  void ArmFaults(fault::FaultInjector* injector,
                 bool install_crash_handler = true);

 private:
  /// Vendor-specific admin command dispatch.
  void HandleVendorAdmin(const nvme::Command& cmd,
                         std::function<void(nvme::Completion)> done);

  /// Read a control-page register.
  uint64_t ReadRegister(uint64_t offset) const;

  void WireHooks();

  sim::Simulator* sim_;
  pcie::PcieFabric* fabric_;
  VillarsConfig config_;
  std::string name_;

  std::unique_ptr<flash::Array> array_;
  std::unique_ptr<ftl::Ftl> ftl_;
  std::unique_ptr<ftl::PatrolScrubber> scrubber_;
  std::unique_ptr<nvme::Controller> controller_;
  std::unique_ptr<CmbModule> cmb_;
  std::unique_ptr<DestageModule> destage_;
  std::unique_ptr<TransportModule> transport_;

  uint64_t bar0_base_ = 0;
  uint64_t cmb_base_ = 0;
  bool halted_ = false;
  uint32_t epoch_ = 0;

  // Observability (set by EnableMetrics; survives Reboot()).
  obs::MetricsRegistry* metrics_registry_ = nullptr;
  std::string metrics_prefix_;

  // Span tracing (set by EnableSpans; survives Reboot()).
  obs::SpanRecorder* spans_ = nullptr;
  std::string span_node_tag_;

  // Fault injection (set by ArmFaults; survives Reboot()).
  fault::FaultInjector* injector_ = nullptr;

  // Flight recorder (set by EnableFlightRecorder; survives Reboot()).
  obs::FlightRecorder* flightrec_ = nullptr;
};

}  // namespace xssd::core

#endif  // XSSD_CORE_VILLARS_DEVICE_H_
