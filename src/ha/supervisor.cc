#include "ha/supervisor.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/flightrec.h"
#include "host/sync.h"

namespace xssd::ha {

namespace {

void EncodeHeartbeat(const Heartbeat& hb, uint8_t out[kHeartbeatBytes]) {
  std::memcpy(out + 0, &hb.seq, 8);
  std::memcpy(out + 8, &hb.term, 8);
  std::memcpy(out + 16, &hb.credit, 8);
  std::memcpy(out + 24, &hb.leader, 8);
  std::memcpy(out + 32, &hb.base, 8);
}

Heartbeat DecodeHeartbeat(const uint8_t in[kHeartbeatBytes]) {
  Heartbeat hb;
  std::memcpy(&hb.seq, in + 0, 8);
  std::memcpy(&hb.term, in + 8, 8);
  std::memcpy(&hb.credit, in + 16, 8);
  std::memcpy(&hb.leader, in + 24, 8);
  std::memcpy(&hb.base, in + 32, 8);
  return hb;
}

nvme::Command SetTermCmd(uint64_t term, size_t writer_slot) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetTerm);
  cmd.cdw10 = static_cast<uint32_t>(term);
  cmd.cdw11 = static_cast<uint32_t>(writer_slot);
  return cmd;
}

nvme::Command SetRoleCmd(core::Role role, uint64_t mailbox_addr) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetRole);
  cmd.cdw10 = static_cast<uint32_t>(role);
  cmd.cdw11 = static_cast<uint32_t>(mailbox_addr);
  cmd.cdw12 = static_cast<uint32_t>(mailbox_addr >> 32);
  return cmd;
}

nvme::Command ClearPeersCmd() {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdClearPeers);
  return cmd;
}

nvme::Command RemovePeerCmd(size_t slot) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdRemovePeer);
  cmd.cdw10 = static_cast<uint32_t>(slot);
  return cmd;
}

nvme::Command SetReplicationCmd(core::ReplicationProtocol protocol) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetReplication);
  cmd.cdw10 = static_cast<uint32_t>(protocol);
  return cmd;
}

nvme::Command SetUpdatePeriodCmd(sim::SimTime period) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetUpdatePeriod);
  cmd.cdw10 = static_cast<uint32_t>(period);
  return cmd;
}

nvme::Command TruncateCmd(uint64_t offset) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdTruncate);
  cmd.cdw10 = static_cast<uint32_t>(offset);
  cmd.cdw11 = static_cast<uint32_t>(offset >> 32);
  return cmd;
}

}  // namespace

ReplicaSupervisor::ReplicaSupervisor(sim::Simulator* sim,
                                     std::vector<host::StorageNode*> nodes,
                                     HaConfig config)
    : sim_(sim),
      nodes_(std::move(nodes)),
      config_(config),
      agents_(nodes_.size()) {}

void ReplicaSupervisor::ConfigureDevice(core::VillarsConfig* config,
                                        size_t cluster_size) {
  config->cmb.peer_intake_slots = static_cast<uint32_t>(cluster_size);
  config->transport.use_intake_aliases = true;
  if (config->transport.retransmit_timeout == 0) {
    config->transport.retransmit_timeout = sim::Us(200);
  }
  // Resync must converge on failover timescales, not the milliseconds the
  // standalone default allows the backoff to grow to.
  config->transport.retransmit_backoff_max = std::min<sim::SimTime>(
      config->transport.retransmit_backoff_max, sim::Us(400));
  // Degraded mode silently un-replicates acked bytes — exactly what the
  // fencing machinery exists to rule out.
  config->transport.degrade_timeout = 0;
}

uint64_t ReplicaSupervisor::DataWindow(size_t to) {
  return host::NodeLayout::kNtbBase + to * host::NodeLayout::kNtbWindowBytes;
}

uint64_t ReplicaSupervisor::HeartbeatWindow(size_t to) {
  return host::NodeLayout::kNtbBase +
         (kHeartbeatWindowBase + to) * host::NodeLayout::kNtbWindowBytes;
}

uint64_t ReplicaSupervisor::ReadLocalCredit(size_t i) {
  uint8_t raw[8] = {0};
  nodes_[i]->fabric().FunctionalRead(
      host::NodeLayout::kCmbBase + core::kRegLocalCredit, raw, 8);
  uint64_t value = 0;
  std::memcpy(&value, raw, 8);
  return value;
}

Status ReplicaSupervisor::AdminSyncBlocking(size_t i,
                                            const nvme::Command& cmd) {
  host::SyncRunner runner(sim_);
  return runner.Await([&](std::function<void(Status)> done) {
    nodes_[i]->driver().Admin(
        cmd, [done = std::move(done)](nvme::Completion cpl) mutable {
          done(cpl.ok() ? Status::OK()
                        : Status::IoError("ha: admin command failed"));
        });
  });
}

Status ReplicaSupervisor::Setup() {
  size_t n = nodes_.size();
  if (n < 2) {
    return Status::InvalidArgument("ha: need at least 2 members");
  }
  if (n > kHeartbeatWindowBase) {
    return Status::InvalidArgument(
        "ha: data and heartbeat windows share the 8-slot NTB BAR; at most " +
        std::to_string(kHeartbeatWindowBase) + " members");
  }
  for (size_t i = 0; i < n; ++i) {
    const core::VillarsConfig& config = nodes_[i]->device().config();
    if (config.cmb.peer_intake_slots < n ||
        !config.transport.use_intake_aliases) {
      return Status::InvalidArgument(
          "ha: member " + std::to_string(i) +
          " lacks per-peer intake aliases; build its config with "
          "ReplicaSupervisor::ConfigureDevice");
    }
    if (config.transport.retransmit_timeout == 0) {
      return Status::InvalidArgument(
          "ha: member " + std::to_string(i) +
          " has retransmit disabled; rejoin resync cannot converge");
    }
  }

  // Full mesh: every member can mirror data into every other member's CMB
  // and post heartbeats into every other member's scratchpad.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      Result<uint64_t> data = nodes_[i]->ConnectWindowTo(
          static_cast<uint32_t>(j), *nodes_[j]);
      if (!data.ok()) return data.status();
      Result<uint64_t> hb = nodes_[i]->ConnectScratchpadWindowTo(
          static_cast<uint32_t>(kHeartbeatWindowBase + j), *nodes_[j]);
      if (!hb.ok()) return hb.status();
    }
  }

  // Form the group at term 1, member 0 leading. Followers first, so the
  // leader starts mirroring only into fenced-in members.
  for (size_t j = 1; j < n; ++j) {
    XSSD_RETURN_IF_ERROR(AdminSyncBlocking(j, SetTermCmd(1, 0)));
    uint64_t mailbox = DataWindow(0) + core::kRegShadowBase + 8ull * j;
    XSSD_RETURN_IF_ERROR(
        AdminSyncBlocking(j, SetRoleCmd(core::Role::kSecondary, mailbox)));
    XSSD_RETURN_IF_ERROR(
        AdminSyncBlocking(j, SetUpdatePeriodCmd(config_.update_period)));
  }
  XSSD_RETURN_IF_ERROR(AdminSyncBlocking(0, SetTermCmd(1, 0)));
  for (size_t j = 1; j < n; ++j) {
    nvme::Command add;
    add.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdAddPeer);
    add.cdw10 = static_cast<uint32_t>(j);
    add.cdw11 = static_cast<uint32_t>(DataWindow(j));
    add.cdw12 = static_cast<uint32_t>(DataWindow(j) >> 32);
    XSSD_RETURN_IF_ERROR(AdminSyncBlocking(0, add));
  }
  XSSD_RETURN_IF_ERROR(
      AdminSyncBlocking(0, SetReplicationCmd(config_.protocol)));
  XSSD_RETURN_IF_ERROR(
      AdminSyncBlocking(0, SetRoleCmd(core::Role::kPrimary, 0)));

  for (size_t i = 0; i < n; ++i) {
    agents_[i] = Agent{};
    agents_[i].term = 1;
    agents_[i].leader = 0;
  }
  for (size_t j = 1; j < n; ++j) agents_[0].in_group[j] = true;
  leader_hint_ = 0;
  return Status::OK();
}

void ReplicaSupervisor::Start() {
  running_ = true;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    sim_->Schedule(0, [this, i]() { Tick(i); });
  }
}

void ReplicaSupervisor::Stop() { running_ = false; }

void ReplicaSupervisor::Tick(size_t i) {
  if (!running_) return;
  Agent& agent = agents_[i];
  if (!nodes_[i]->device().halted()) {
    SendHeartbeat(i);
    ScanHeartbeats(i);
    if (!agent.busy && !MaybeAdopt(i)) {
      if (agent.leader == i) {
        LeaderDuties(i);
      } else {
        MaybeElect(i);
      }
    }
  }
  sim_->Schedule(config_.heartbeat_period, [this, i]() { Tick(i); });
}

void ReplicaSupervisor::SendHeartbeat(size_t i) {
  Agent& agent = agents_[i];
  Heartbeat hb;
  hb.seq = ++agent.seq;
  hb.term = agent.term;
  hb.credit = ReadLocalCredit(i);
  hb.leader = agent.leader;
  hb.base = agent.base;
  agent.last_credit = hb.credit;
  uint8_t payload[kHeartbeatBytes];
  EncodeHeartbeat(hb, payload);
  for (size_t j = 0; j < nodes_.size(); ++j) {
    if (j == i) continue;
    nodes_[i]->fabric().HostWrite(
        HeartbeatWindow(j) + kHeartbeatStride * i, payload, kHeartbeatBytes,
        64);
  }
}

void ReplicaSupervisor::ScanHeartbeats(size_t i) {
  Agent& agent = agents_[i];
  for (size_t j = 0; j < nodes_.size(); ++j) {
    if (j == i) continue;
    uint8_t raw[kHeartbeatBytes] = {0};
    nodes_[i]->fabric().FunctionalRead(
        host::StorageNode::ScratchpadBase() + kHeartbeatStride * j, raw,
        kHeartbeatBytes);
    Heartbeat hb = DecodeHeartbeat(raw);
    PeerView& view = agent.peers[j];
    if (hb.seq > view.hb.seq) {
      view.hb = hb;
      view.misses = 0;
      view.ever = true;
    } else if (view.misses < config_.suspicion_threshold) {
      ++view.misses;
    }
  }
}

uint32_t ReplicaSupervisor::LiveCount(size_t i) const {
  const Agent& agent = agents_[i];
  uint32_t live = 1;  // self
  for (size_t j = 0; j < nodes_.size(); ++j) {
    if (j == i) continue;
    const PeerView& view = agent.peers[j];
    if (view.ever && view.misses < config_.suspicion_threshold) ++live;
  }
  return live;
}

bool ReplicaSupervisor::MaybeAdopt(size_t i) {
  Agent& agent = agents_[i];
  size_t best = nodes_.size();
  uint64_t best_term = agent.term;
  for (size_t j = 0; j < nodes_.size(); ++j) {
    if (j == i) continue;
    const PeerView& view = agent.peers[j];
    // Only the leader's own claim counts — a relayed term could name a
    // leader whose promotion never completed.
    if (view.ever && view.hb.leader == j && view.hb.term > best_term) {
      best = j;
      best_term = view.hb.term;
    }
  }
  if (best == nodes_.size()) return false;
  Adopt(i, best, agent.peers[best].hb);
  return true;
}

void ReplicaSupervisor::MaybeElect(size_t i) {
  Agent& agent = agents_[i];
  size_t leader = static_cast<size_t>(agent.leader);
  if (agent.peers[leader].misses < config_.suspicion_threshold) return;
  // Quorum: a minority island must not elect — its members wait (their
  // clients see stalls, not lost acks) until the partition heals.
  if (LiveCount(i) * 2 <= nodes_.size()) return;
  // The most-caught-up live member promotes; ties break to the lowest id.
  // Own candidacy uses the credit last *broadcast*, so every live member
  // compares the same values once heartbeats settle.
  size_t best = i;
  uint64_t best_credit = agent.last_credit;
  for (size_t j = 0; j < nodes_.size(); ++j) {
    if (j == i) continue;
    const PeerView& view = agent.peers[j];
    if (!view.ever || view.misses >= config_.suspicion_threshold) continue;
    if (view.hb.term != agent.term) continue;
    if (view.hb.credit > best_credit ||
        (view.hb.credit == best_credit && j < best)) {
      best = j;
      best_credit = view.hb.credit;
    }
  }
  if (best == i) Promote(i, agent.term + 1);
}

void ReplicaSupervisor::Promote(size_t i, uint64_t new_term) {
  Agent& agent = agents_[i];
  agent.busy = true;
  uint64_t base = ReadLocalCredit(i);
  std::vector<size_t> live;
  for (size_t j = 0; j < nodes_.size(); ++j) {
    if (j == i) continue;
    const PeerView& view = agent.peers[j];
    if (view.ever && view.misses < config_.suspicion_threshold) {
      live.push_back(j);
    }
  }
  XSSD_LOG(kInfo) << "ha: member " << i << " promoting at term " << new_term
                  << " (base " << base << ", " << live.size()
                  << " live peers)";
  if (flightrec_ != nullptr) {
    flightrec_->Record(sim_->Now(), "ha",
                       "member " + std::to_string(i) + " promoting at term " +
                           std::to_string(new_term) + " (base " +
                           std::to_string(base) + ", " +
                           std::to_string(live.size()) + " live peers)");
  }
  std::vector<nvme::Command> cmds;
  cmds.push_back(SetTermCmd(new_term, i));
  cmds.push_back(ClearPeersCmd());
  for (size_t j : live) {
    nvme::Command add;
    add.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdAddPeer);
    add.cdw10 = static_cast<uint32_t>(j);
    add.cdw11 = static_cast<uint32_t>(DataWindow(j));
    add.cdw12 = static_cast<uint32_t>(DataWindow(j) >> 32);
    cmds.push_back(add);
  }
  cmds.push_back(SetReplicationCmd(config_.protocol));
  cmds.push_back(SetRoleCmd(core::Role::kPrimary, 0));
  RunAdminChain(i, std::move(cmds), 0,
                [this, i, new_term, base, live](Status status) {
                  Agent& agent = agents_[i];
                  agent.busy = false;
                  if (!status.ok()) return;  // retried from the next tick
                  agent.term = new_term;
                  agent.leader = i;
                  agent.base = base;
                  for (size_t j = 0; j < core::kMaxPeers; ++j) {
                    agent.in_group[j] = false;
                  }
                  for (size_t j : live) agent.in_group[j] = true;
                  ++promotions_;
                  leader_hint_ = i;
                  // The promoted log is intact (same epoch): the client
                  // adopts the device tail and keeps its cursors.
                  Status reconnect = nodes_[i]->client().Reconnect();
                  if (!reconnect.ok()) {
                    XSSD_LOG(kWarning)
                        << "ha: post-promotion reconnect failed: "
                        << reconnect.message();
                  }
                });
}

void ReplicaSupervisor::Adopt(size_t i, size_t leader, const Heartbeat& hb) {
  Agent& agent = agents_[i];
  agent.busy = true;
  bool was_leader = agent.leader == i;
  // Cut the unreplicated suffix: everything this member holds beyond the
  // new leader's promotion base diverges from the surviving history. For
  // a member that was merely behind, min() makes the cut a no-op.
  uint64_t join = std::min(ReadLocalCredit(i), hb.base);
  uint64_t new_term = hb.term;
  XSSD_LOG(kInfo) << "ha: member " << i << (was_leader ? " demoting," : "")
                  << " adopting leader " << leader << " at term " << new_term
                  << " (join base " << join << ")";
  if (flightrec_ != nullptr) {
    flightrec_->Record(
        sim_->Now(), "ha",
        "member " + std::to_string(i) +
            std::string(was_leader ? " demoting," : "") + " adopting leader " +
            std::to_string(leader) + " at term " + std::to_string(new_term) +
            " (join base " + std::to_string(join) + ")");
  }
  std::vector<nvme::Command> cmds;
  cmds.push_back(SetTermCmd(new_term, leader));
  cmds.push_back(TruncateCmd(join));
  cmds.push_back(ClearPeersCmd());
  uint64_t mailbox = DataWindow(leader) + core::kRegShadowBase + 8ull * i;
  cmds.push_back(SetRoleCmd(core::Role::kSecondary, mailbox));
  cmds.push_back(SetUpdatePeriodCmd(config_.update_period));
  RunAdminChain(i, std::move(cmds), 0,
                [this, i, leader, new_term, was_leader](Status status) {
                  Agent& agent = agents_[i];
                  agent.busy = false;
                  if (!status.ok()) return;
                  agent.term = new_term;
                  agent.leader = leader;
                  agent.base = 0;
                  for (size_t j = 0; j < core::kMaxPeers; ++j) {
                    agent.in_group[j] = false;
                  }
                  if (was_leader) ++demotions_;
                });
}

void ReplicaSupervisor::LeaderDuties(size_t i) {
  Agent& agent = agents_[i];
  uint32_t live = LiveCount(i);
  for (size_t j = 0; j < nodes_.size(); ++j) {
    if (j == i) continue;
    PeerView& view = agent.peers[j];
    bool fresh = view.ever && view.misses < config_.suspicion_threshold;
    // Drop a dead member only while a live majority remains: a leader on
    // the minority side must keep its dead peers so eager credit freezes
    // instead of acking un-replicated bytes.
    if (agent.in_group[j] && !fresh && live * 2 > nodes_.size()) {
      agent.busy = true;
      XSSD_LOG(kInfo) << "ha: leader " << i << " removing member " << j;
      if (flightrec_ != nullptr) {
        flightrec_->Record(sim_->Now(), "ha",
                           "leader " + std::to_string(i) +
                               " removing suspected member " +
                               std::to_string(j));
      }
      RunAdminChain(i, {RemovePeerCmd(j)}, 0, [this, i, j](Status status) {
        agents_[i].busy = false;
        if (status.ok()) {
          agents_[i].in_group[j] = false;
          ++removals_;
        }
      });
      return;  // one membership change per tick
    }
    // Re-admit a member once its heartbeat shows it adopted this term
    // (truncated + fenced in). AddPeerAt resets its shadow counter, so the
    // retransmit path streams it back from its (possibly rolled-back)
    // credit.
    if (!agent.in_group[j] && fresh && view.hb.term == agent.term &&
        view.hb.leader == i) {
      agent.busy = true;
      XSSD_LOG(kInfo) << "ha: leader " << i << " re-admitting member " << j;
      if (flightrec_ != nullptr) {
        flightrec_->Record(sim_->Now(), "ha",
                           "leader " + std::to_string(i) +
                               " re-admitting member " + std::to_string(j));
      }
      nvme::Command add;
      add.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdAddPeer);
      add.cdw10 = static_cast<uint32_t>(j);
      add.cdw11 = static_cast<uint32_t>(DataWindow(j));
      add.cdw12 = static_cast<uint32_t>(DataWindow(j) >> 32);
      RunAdminChain(i, {add}, 0, [this, i, j](Status status) {
        agents_[i].busy = false;
        if (status.ok()) {
          agents_[i].in_group[j] = true;
          ++joins_;
        }
      });
      return;
    }
  }
}

void ReplicaSupervisor::RunAdminChain(size_t i,
                                      std::vector<nvme::Command> cmds,
                                      size_t next,
                                      std::function<void(Status)> done) {
  if (next == cmds.size()) {
    done(Status::OK());
    return;
  }
  nvme::Command cmd = cmds[next];
  nodes_[i]->driver().Admin(
      cmd, [this, i, cmds = std::move(cmds), next,
            done = std::move(done)](nvme::Completion cpl) mutable {
        if (!cpl.ok()) {
          done(Status::IoError("ha: admin command failed"));
          return;
        }
        RunAdminChain(i, std::move(cmds), next + 1, std::move(done));
      });
}

}  // namespace xssd::ha
