#ifndef XSSD_HA_SUPERVISOR_H_
#define XSSD_HA_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/registers.h"
#include "host/node.h"
#include "nvme/command.h"
#include "sim/simulator.h"

namespace xssd::obs {
class FlightRecorder;
}  // namespace xssd::obs

namespace xssd::ha {

/// \brief Replication-lifecycle policy knobs.
struct HaConfig {
  core::ReplicationProtocol protocol = core::ReplicationProtocol::kEager;
  /// Shadow-counter forwarding period handed to every secondary.
  sim::SimTime update_period = sim::Ns(800);
  /// Heartbeat broadcast/scan period of every member's agent.
  sim::SimTime heartbeat_period = sim::Us(50);
  /// Consecutive silent heartbeat periods before a member is suspected
  /// dead. The product with heartbeat_period is the failure-detection
  /// window; flaps shorter than it cause no membership churn.
  uint32_t suspicion_threshold = 5;
};

/// One member's heartbeat record as laid out in every peer's NTB
/// scratchpad: member m owns the 64-byte stride at offset 64*m; the first
/// five u64 fields carry the payload, the rest of the stride is padding.
struct Heartbeat {
  uint64_t seq = 0;     ///< broadcast counter (liveness)
  uint64_t term = 0;    ///< sender's current term
  uint64_t credit = 0;  ///< sender's local credit (log tail in PM)
  uint64_t leader = 0;  ///< member id the sender follows (== sender if leader)
  uint64_t base = 0;    ///< leader only: credit at promotion (join cut)
};

inline constexpr size_t kHeartbeatBytes = 40;
inline constexpr size_t kHeartbeatStride = 64;
/// NTB window slot of the heartbeat window to member 0; data windows use
/// slots [0, cluster), heartbeat windows [kHeartbeatWindowBase,
/// kHeartbeatWindowBase + cluster). Both share the 8-slot NTB BAR, so
/// clusters are capped at kHeartbeatWindowBase members.
inline constexpr uint32_t kHeartbeatWindowBase = 4;

/// \brief Host-side autonomous replication supervisor (one agent per
/// member, all driven from this object).
///
/// The supervisor runs the full replication lifecycle over public
/// interfaces only — NTB windows and scratchpads, vendor admin commands,
/// and control-page registers:
///
///  - *Failure detection*: every agent broadcasts a heartbeat into each
///    peer's NTB scratchpad once per heartbeat_period and counts silent
///    periods per peer; suspicion_threshold misses mark a peer dead.
///  - *Fenced failover*: when the leader is suspected, the most-caught-up
///    live member (highest broadcast credit, lowest id on ties) — and only
///    it — promotes: it bumps the term on its own device (kXssdSetTerm),
///    re-adds the live members, and takes the primary role. Every device
///    checks pushed ring bytes against the term fence, so a deposed
///    primary's stale mirror/retransmit traffic is rejected
///    (kRegFencedWrites) — no split brain. Elections and membership
///    removals require a live majority: a minority-side leader keeps its
///    dead peers, its credit freezes, and its clients see stall errors
///    instead of un-replicated acks.
///  - *Rejoin/resync*: a member seeing a higher-term leader heartbeat
///    adopts it — truncates its unreplicated suffix to
///    min(own credit, leader's promotion base), re-arms the term fence for
///    the new writer, and rejoins as a secondary; the leader's retransmit
///    path streams it back to convergence. Chain topologies re-link
///    through the same add/remove path when a middle member dies.
///  - *Online membership*: the leader removes suspected members (majority
///    permitting) and re-admits any member whose heartbeat shows it has
///    adopted the current term.
///
/// Setup() is blocking (pumps the simulator); agents then run entirely
/// inside simulator callbacks, issuing admin commands asynchronously and
/// only ever to their own member's device.
class ReplicaSupervisor {
 public:
  ReplicaSupervisor(sim::Simulator* sim,
                    std::vector<host::StorageNode*> nodes, HaConfig config);

  ReplicaSupervisor(const ReplicaSupervisor&) = delete;
  ReplicaSupervisor& operator=(const ReplicaSupervisor&) = delete;

  /// Make a device config HA-capable for a cluster of `cluster_size`
  /// members: per-peer intake aliases (the term fence needs per-member
  /// write attribution), alias-addressed mirroring, and a bounded
  /// retransmit backoff so resync converges on failover timescales.
  static void ConfigureDevice(core::VillarsConfig* config,
                              size_t cluster_size);

  /// Wire the full NTB mesh (data + heartbeat windows) and form the group:
  /// term 1, member 0 primary, everyone else secondary. Blocking.
  Status Setup();

  /// Attach a flight recorder (nullptr detaches). Records the HA state
  /// machine's rare transitions — promotions, demotions/leader adoption,
  /// membership removals and re-admissions — stamped in virtual time, so
  /// a failover post-mortem reads as a timeline.
  void SetFlightRecorder(obs::FlightRecorder* recorder) {
    flightrec_ = recorder;
  }

  /// Start the per-member agent loops. Call after Setup().
  void Start();
  /// Stop the agent loops (pending ticks become no-ops).
  void Stop();

  /// Member id the supervisor currently believes is leader.
  size_t leader_index() const { return leader_hint_; }
  /// Term of the believed leader.
  uint64_t term() const { return agents_[leader_hint_].term; }

  /// Completed promotions (exactly-once per failover is the HA invariant).
  uint64_t promotions() const { return promotions_; }
  /// Leaders demoted back to secondary after seeing a higher term.
  uint64_t demotions() const { return demotions_; }
  /// Members dropped from the group by the leader.
  uint64_t removals() const { return removals_; }
  /// Members (re-)admitted by the leader after group formation.
  uint64_t joins() const { return joins_; }

  size_t cluster_size() const { return nodes_.size(); }
  host::StorageNode& node(size_t i) { return *nodes_[i]; }
  const HaConfig& config() const { return config_; }

 private:
  struct PeerView {
    Heartbeat hb;
    uint32_t misses = 0;
    bool ever = false;  ///< any heartbeat seen yet
  };
  struct Agent {
    uint64_t term = 0;
    uint64_t leader = 0;       ///< member id this agent follows
    uint64_t base = 0;         ///< leader only: promotion-time credit
    uint64_t seq = 0;          ///< own broadcast counter
    uint64_t last_credit = 0;  ///< credit in the last broadcast
    bool busy = false;         ///< admin chain in flight
    bool in_group[core::kMaxPeers] = {false};  ///< leader's membership view
    PeerView peers[core::kMaxPeers];
  };

  void Tick(size_t i);
  void SendHeartbeat(size_t i);
  void ScanHeartbeats(size_t i);
  /// Returns true if an adoption chain was started.
  bool MaybeAdopt(size_t i);
  void MaybeElect(size_t i);
  void LeaderDuties(size_t i);
  void Promote(size_t i, uint64_t new_term);
  void Adopt(size_t i, size_t leader, const Heartbeat& hb);

  /// Live members in i's view (self plus fresh peers).
  uint32_t LiveCount(size_t i) const;
  /// Local bus address on node `from` of the data window to node `to`.
  static uint64_t DataWindow(size_t to);
  /// Local bus address on node `from` of the heartbeat window to `to`.
  static uint64_t HeartbeatWindow(size_t to);
  uint64_t ReadLocalCredit(size_t i);

  /// Issue `cmds` to node i's device one at a time; `done` fires with the
  /// first failure or OK after the last completion.
  void RunAdminChain(size_t i, std::vector<nvme::Command> cmds, size_t next,
                     std::function<void(Status)> done);
  Status AdminSyncBlocking(size_t i, const nvme::Command& cmd);

  sim::Simulator* sim_;
  std::vector<host::StorageNode*> nodes_;
  HaConfig config_;
  std::vector<Agent> agents_;
  bool running_ = false;

  obs::FlightRecorder* flightrec_ = nullptr;

  size_t leader_hint_ = 0;
  uint64_t promotions_ = 0;
  uint64_t demotions_ = 0;
  uint64_t removals_ = 0;
  uint64_t joins_ = 0;
};

}  // namespace xssd::ha

#endif  // XSSD_HA_SUPERVISOR_H_
