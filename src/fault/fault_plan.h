#ifndef XSSD_FAULT_FAULT_PLAN_H_
#define XSSD_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sim/time.h"

namespace xssd::fault {

/// What a FaultSpec injects. Each kind maps to exactly one hook site in the
/// component it names (see FaultInjector).
enum class FaultKind {
  kFlashProgramFail,      ///< NAND program op fails -> grown bad block
  kFlashEraseFail,        ///< NAND erase op fails -> grown bad block
  kFlashReadUncorrectable,///< read returns more bit errors than ECC corrects
  kFlashRetention,        ///< reads see `delay` of extra retention dwell
  kFlashDisturb,          ///< reads see `magnitude` extra disturb reads
  kNtbLinkDown,           ///< NTB drops forwarded TLPs (link flap)
  kNtbLinkStall,          ///< NTB delays forwarded TLPs by `delay`
  kPcieStoreDelay,        ///< MMIO stores arrive `delay` late
  kPcieStoreTruncate,     ///< peer-path MMIO stores lose their tail bytes
  kNvmeTimeout,           ///< NVMe I/O command completes in error after `delay`
  kCrash,                 ///< whole-device crash at a named source site
};

/// Stable wire name for a kind ("flash.program_fail", "crash", ...).
const char* FaultKindName(FaultKind kind);
Result<FaultKind> FaultKindFromName(std::string_view name);

/// One fault clause. Times are virtual (simulator) nanoseconds; the JSON
/// schema expresses them in microseconds (`at_us`, `duration_us`,
/// `delay_us`) to match the rest of the repo's knobs.
struct FaultSpec {
  static constexpr sim::SimTime kForever =
      std::numeric_limits<sim::SimTime>::max();

  FaultKind kind = FaultKind::kFlashProgramFail;
  sim::SimTime at = 0;               ///< window start (inclusive)
  sim::SimTime duration = kForever;  ///< window length; kForever = open-ended
  double probability = 1.0;          ///< chance a hook inside the window fires
  sim::SimTime delay = 0;            ///< stall/delay/timeout/dwell magnitude
  double magnitude = 0.0;            ///< unitless boost (disturb read count)
  std::string site;                  ///< crash only: named crash site
  uint32_t after_hits = 1;           ///< crash only: fire on the Nth site hit
  bool graceful = true;              ///< crash only: supercap flush vs hard

  /// Window end (exclusive); saturates instead of overflowing.
  sim::SimTime end() const {
    return (duration >= kForever - at) ? kForever : at + duration;
  }
};

/// \brief A named, ordered list of fault clauses.
///
/// JSON schema (all *_us fields are microseconds, doubles allowed):
/// {
///   "name": "ntb-flap",
///   "faults": [
///     {"kind": "ntb.link_down", "at_us": 200, "duration_us": 400},
///     {"kind": "flash.program_fail", "at_us": 0, "probability": 0.05},
///     {"kind": "crash", "site": "destage.emit_page", "after_hits": 3,
///      "graceful": false}
///   ]
/// }
/// Unknown kinds or fields are hard errors, so plan files cannot silently
/// drift out of sync with the injector.
struct FaultPlan {
  std::string name;
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }
};

/// Parse a plan from a JSON document / load one from a file.
Result<FaultPlan> ParseFaultPlan(std::string_view json);
Result<FaultPlan> LoadFaultPlan(const std::string& path);

/// \brief Programmatic plan construction — the JSON-free path.
///
/// The conformance fuzzer (src/check) composes plans clause by clause from
/// a seeded schedule, and tests read better without inline documents:
///
///   FaultPlan plan = FaultPlanBuilder("flaky-link")
///                        .Window(FaultKind::kNtbLinkDown, sim::Us(100),
///                                sim::Us(400))
///                        .Crash("pri/destage.emit_page", /*after_hits=*/3,
///                               /*graceful=*/false)
///                        .Build();
class FaultPlanBuilder {
 public:
  explicit FaultPlanBuilder(std::string name);

  /// Add a windowed fault clause of `kind` active in [at, at + duration).
  /// `delay` is the stall/timeout/dwell magnitude for the kinds that take
  /// one; `magnitude` is the unitless boost (extra disturb reads).
  FaultPlanBuilder& Window(FaultKind kind, sim::SimTime at,
                           sim::SimTime duration, double probability = 1.0,
                           sim::SimTime delay = 0, double magnitude = 0.0);

  /// Add a crash clause firing on the `after_hits`-th visit of `site`.
  FaultPlanBuilder& Crash(std::string site, uint32_t after_hits,
                          bool graceful);

  /// Append an already-formed clause verbatim.
  FaultPlanBuilder& Add(const FaultSpec& spec);

  FaultPlan Build() const { return plan_; }

 private:
  FaultPlan plan_;
};

}  // namespace xssd::fault

#endif  // XSSD_FAULT_FAULT_PLAN_H_
