#include "fault/fault_plan.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace xssd::fault {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kFlashProgramFail, "flash.program_fail"},
    {FaultKind::kFlashEraseFail, "flash.erase_fail"},
    {FaultKind::kFlashReadUncorrectable, "flash.read_uncorrectable"},
    {FaultKind::kFlashRetention, "flash.retention"},
    {FaultKind::kFlashDisturb, "flash.disturb"},
    {FaultKind::kNtbLinkDown, "ntb.link_down"},
    {FaultKind::kNtbLinkStall, "ntb.link_stall"},
    {FaultKind::kPcieStoreDelay, "pcie.store_delay"},
    {FaultKind::kPcieStoreTruncate, "pcie.store_truncate"},
    {FaultKind::kNvmeTimeout, "nvme.timeout"},
    {FaultKind::kCrash, "crash"},
};

Status BadField(const std::string& where, const std::string& what) {
  return Status::InvalidArgument("fault plan: " + where + ": " + what);
}

/// Microsecond JSON field -> SimTime; rejects negatives.
Result<sim::SimTime> TimeField(const obs::JsonValue& v, const std::string& ctx) {
  if (!v.is_number() || v.number < 0) {
    return BadField(ctx, "must be a non-negative number of microseconds");
  }
  return sim::UsF(v.number);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

Result<FaultKind> FaultKindFromName(std::string_view name) {
  for (const auto& entry : kKindNames) {
    if (name == entry.name) return entry.kind;
  }
  return Status::InvalidArgument("fault plan: unknown fault kind '" +
                                 std::string(name) + "'");
}

Result<FaultPlan> ParseFaultPlan(std::string_view json) {
  auto doc = obs::ParseJson(json);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return Status::InvalidArgument("fault plan: top level must be an object");
  }

  FaultPlan plan;
  for (const auto& [key, value] : doc->fields) {
    if (key == "name") {
      if (!value.is_string()) return BadField("name", "must be a string");
      plan.name = value.string;
    } else if (key == "faults") {
      if (!value.is_array()) return BadField("faults", "must be an array");
      for (size_t i = 0; i < value.items.size(); ++i) {
        const obs::JsonValue& entry = value.items[i];
        const std::string ctx = "faults[" + std::to_string(i) + "]";
        if (!entry.is_object()) return BadField(ctx, "must be an object");

        FaultSpec spec;
        bool saw_kind = false;
        for (const auto& [fkey, fval] : entry.fields) {
          if (fkey == "kind") {
            if (!fval.is_string()) return BadField(ctx, "kind must be a string");
            auto kind = FaultKindFromName(fval.string);
            if (!kind.ok()) return kind.status();
            spec.kind = *kind;
            saw_kind = true;
          } else if (fkey == "at_us") {
            auto t = TimeField(fval, ctx + ".at_us");
            if (!t.ok()) return t.status();
            spec.at = *t;
          } else if (fkey == "duration_us") {
            auto t = TimeField(fval, ctx + ".duration_us");
            if (!t.ok()) return t.status();
            spec.duration = *t;
          } else if (fkey == "delay_us") {
            auto t = TimeField(fval, ctx + ".delay_us");
            if (!t.ok()) return t.status();
            spec.delay = *t;
          } else if (fkey == "magnitude") {
            if (!fval.is_number() || fval.number < 0) {
              return BadField(ctx, "magnitude must be a non-negative number");
            }
            spec.magnitude = fval.number;
          } else if (fkey == "probability") {
            if (!fval.is_number() || fval.number < 0 || fval.number > 1) {
              return BadField(ctx, "probability must be in [0, 1]");
            }
            spec.probability = fval.number;
          } else if (fkey == "site") {
            if (!fval.is_string()) return BadField(ctx, "site must be a string");
            spec.site = fval.string;
          } else if (fkey == "after_hits") {
            if (!fval.is_number() || fval.number < 1 ||
                fval.number != std::floor(fval.number)) {
              return BadField(ctx, "after_hits must be a positive integer");
            }
            spec.after_hits = static_cast<uint32_t>(fval.number);
          } else if (fkey == "graceful") {
            if (!fval.is_bool()) return BadField(ctx, "graceful must be a bool");
            spec.graceful = fval.boolean;
          } else {
            return BadField(ctx, "unknown field '" + fkey + "'");
          }
        }
        if (!saw_kind) return BadField(ctx, "missing 'kind'");
        if (spec.kind == FaultKind::kCrash && spec.site.empty()) {
          return BadField(ctx, "crash faults require a 'site'");
        }
        plan.faults.push_back(std::move(spec));
      }
    } else {
      return BadField(key, "unknown top-level field");
    }
  }
  return plan;
}

Result<FaultPlan> LoadFaultPlan(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open fault plan " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto plan = ParseFaultPlan(buf.str());
  if (plan.ok() && plan->name.empty()) {
    plan->name = path;  // unnamed file plans report their path
  }
  return plan;
}

FaultPlanBuilder::FaultPlanBuilder(std::string name) {
  plan_.name = std::move(name);
}

FaultPlanBuilder& FaultPlanBuilder::Window(FaultKind kind, sim::SimTime at,
                                           sim::SimTime duration,
                                           double probability,
                                           sim::SimTime delay,
                                           double magnitude) {
  FaultSpec spec;
  spec.kind = kind;
  spec.at = at;
  spec.duration = duration;
  spec.probability = probability;
  spec.delay = delay;
  spec.magnitude = magnitude;
  plan_.faults.push_back(std::move(spec));
  return *this;
}

FaultPlanBuilder& FaultPlanBuilder::Crash(std::string site,
                                          uint32_t after_hits, bool graceful) {
  FaultSpec spec;
  spec.kind = FaultKind::kCrash;
  spec.site = std::move(site);
  spec.after_hits = after_hits;
  spec.graceful = graceful;
  plan_.faults.push_back(std::move(spec));
  return *this;
}

FaultPlanBuilder& FaultPlanBuilder::Add(const FaultSpec& spec) {
  plan_.faults.push_back(spec);
  return *this;
}

}  // namespace xssd::fault
