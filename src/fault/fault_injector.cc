#include "fault/fault_injector.h"

#include "obs/flightrec.h"

namespace xssd::fault {

FaultInjector::FaultInjector(sim::Simulator* sim, FaultPlan plan, uint64_t seed)
    : sim_(sim), plan_(std::move(plan)), rng_(seed ^ 0xFA017FA017FA017Aull) {
  clauses_.reserve(plan_.faults.size());
  for (const FaultSpec& spec : plan_.faults) {
    clauses_.push_back(Clause{spec});
  }
}

void FaultInjector::SetMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_flash_program_fails_ = m_flash_erase_fails_ = nullptr;
    m_flash_read_uncorrectable_ = m_ntb_dropped_ = m_ntb_stalled_ = nullptr;
    m_flash_retention_boosts_ = m_flash_disturb_boosts_ = nullptr;
    m_pcie_delayed_ = m_pcie_truncated_ = m_nvme_timeouts_ = nullptr;
    m_crashes_ = nullptr;
    return;
  }
  m_flash_program_fails_ = registry->GetCounter("fault.flash.program_fails");
  m_flash_erase_fails_ = registry->GetCounter("fault.flash.erase_fails");
  m_flash_read_uncorrectable_ =
      registry->GetCounter("fault.flash.read_uncorrectable");
  m_flash_retention_boosts_ =
      registry->GetCounter("fault.flash.retention_boosts");
  m_flash_disturb_boosts_ =
      registry->GetCounter("fault.flash.disturb_boosts");
  m_ntb_dropped_ = registry->GetCounter("fault.ntb.dropped_writes");
  m_ntb_stalled_ = registry->GetCounter("fault.ntb.stalled_writes");
  m_pcie_delayed_ = registry->GetCounter("fault.pcie.delayed_stores");
  m_pcie_truncated_ = registry->GetCounter("fault.pcie.truncated_stores");
  m_nvme_timeouts_ = registry->GetCounter("fault.nvme.timeouts");
  m_crashes_ = registry->GetCounter("fault.crashes");
}

void FaultInjector::Count(obs::Counter* counter, uint64_t* total) {
  ++*total;
  if (counter != nullptr) counter->Add(1);
}

void FaultInjector::RecordFault(std::string message) {
  if (flightrec_ != nullptr) {
    flightrec_->Record(sim_->Now(), "fault", std::move(message));
  }
}

bool FaultInjector::Fires(const FaultSpec& spec) {
  const sim::SimTime now = sim_->Now();
  if (now < spec.at || now >= spec.end()) return false;
  if (spec.probability >= 1.0) return true;
  // Rng state advances only for probabilistic clauses inside their window,
  // so adding an unrelated clause to a plan cannot shift existing draws.
  return rng_.Bernoulli(spec.probability);
}

const FaultSpec* FaultInjector::Match(FaultKind kind) {
  if (crashed_) return nullptr;
  for (Clause& clause : clauses_) {
    if (clause.spec.kind != kind) continue;
    if (Fires(clause.spec)) return &clause.spec;
  }
  return nullptr;
}

bool FaultInjector::InjectFlashProgramFail() {
  if (Match(FaultKind::kFlashProgramFail) == nullptr) return false;
  Count(m_flash_program_fails_, &totals_.flash_program_fails);
  RecordFault("flash program fail injected");
  return true;
}

bool FaultInjector::InjectFlashEraseFail() {
  if (Match(FaultKind::kFlashEraseFail) == nullptr) return false;
  Count(m_flash_erase_fails_, &totals_.flash_erase_fails);
  RecordFault("flash erase fail injected");
  return true;
}

bool FaultInjector::InjectFlashReadUncorrectable() {
  if (Match(FaultKind::kFlashReadUncorrectable) == nullptr) return false;
  Count(m_flash_read_uncorrectable_, &totals_.flash_read_uncorrectable);
  RecordFault("uncorrectable flash read injected");
  return true;
}

sim::SimTime FaultInjector::InjectFlashRetentionDwell() {
  const FaultSpec* spec = Match(FaultKind::kFlashRetention);
  if (spec == nullptr) return 0;
  Count(m_flash_retention_boosts_, &totals_.flash_retention_boosts);
  RecordFault("retention dwell boost injected (" +
              std::to_string(spec->delay) + " ns)");
  return spec->delay;
}

uint64_t FaultInjector::InjectFlashDisturbReads() {
  const FaultSpec* spec = Match(FaultKind::kFlashDisturb);
  if (spec == nullptr) return 0;
  Count(m_flash_disturb_boosts_, &totals_.flash_disturb_boosts);
  RecordFault("read-disturb boost injected");
  return static_cast<uint64_t>(spec->magnitude);
}

FaultInjector::NtbDecision FaultInjector::NtbForwardDecision() {
  if (Match(FaultKind::kNtbLinkDown) != nullptr) {
    Count(m_ntb_dropped_, &totals_.ntb_dropped);
    RecordFault("ntb write dropped (link down)");
    return {LinkAction::kDrop, 0};
  }
  if (const FaultSpec* spec = Match(FaultKind::kNtbLinkStall)) {
    Count(m_ntb_stalled_, &totals_.ntb_stalled);
    RecordFault("ntb write stalled " + std::to_string(spec->delay) + " ns");
    return {LinkAction::kStall, spec->delay};
  }
  return {LinkAction::kForward, 0};
}

sim::SimTime FaultInjector::InjectPcieStoreDelay() {
  const FaultSpec* spec = Match(FaultKind::kPcieStoreDelay);
  if (spec == nullptr) return 0;
  Count(m_pcie_delayed_, &totals_.pcie_delayed);
  RecordFault("pcie store delayed " + std::to_string(spec->delay) + " ns");
  return spec->delay;
}

uint64_t FaultInjector::InjectPcieTruncation(uint64_t len) {
  if (len == 0) return 0;
  if (Match(FaultKind::kPcieStoreTruncate) == nullptr) return len;
  Count(m_pcie_truncated_, &totals_.pcie_truncated);
  RecordFault("pcie store truncated");
  // Drop the tail: at least one byte lands (a fully-dropped store is the
  // NTB link-down fault's job), at least one byte is lost.
  if (len == 1) return 0;
  return 1 + rng_.Uniform(len - 1);
}

FaultInjector::NvmeDecision FaultInjector::InjectNvmeTimeout() {
  const FaultSpec* spec = Match(FaultKind::kNvmeTimeout);
  if (spec == nullptr) return {};
  Count(m_nvme_timeouts_, &totals_.nvme_timeouts);
  RecordFault("nvme command timeout injected");
  return {true, spec->delay};
}

bool FaultInjector::CrashPoint(std::string_view site) {
  if (crashed_) return false;
  for (Clause& clause : clauses_) {
    if (clause.spec.kind != FaultKind::kCrash) continue;
    const std::string& want = clause.spec.site;
    // Accept the full "<device>/<site>" name or the unprefixed tail, so a
    // plan can target one device or every device sharing the injector.
    const bool matches =
        site == want ||
        (site.size() > want.size() &&
         site.substr(site.size() - want.size()) == want &&
         site[site.size() - want.size() - 1] == '/');
    if (!matches) continue;
    const sim::SimTime now = sim_->Now();
    if (now < clause.spec.at || now >= clause.spec.end()) continue;
    if (++clause.hits < clause.spec.after_hits) continue;
    crashed_ = true;
    Count(m_crashes_, &totals_.crashes);
    RecordFault("crash clause fired at site " + std::string(site) +
                (clause.spec.graceful ? " (graceful)" : " (hard)"));
    if (crash_handler_) crash_handler_(clause.spec);
    // Dump after the handler so the post-mortem includes the device's own
    // halt/power-fail entries alongside the injection that caused them.
    if (flightrec_ != nullptr) {
      flightrec_->AutoDump("injected crash at " + std::string(site));
    }
    return true;
  }
  return false;
}

}  // namespace xssd::fault
