#ifndef XSSD_FAULT_FAULT_INJECTOR_H_
#define XSSD_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::obs {
class FlightRecorder;
}  // namespace xssd::obs

namespace xssd::fault {

/// \brief Seeded, deterministic fault oracle consulted by the component
/// hooks (flash, NTB, PCIe, NVMe, cmb/destage crash sites).
///
/// Components that were handed an injector call the matching Inject*/
/// CrashPoint hook at each candidate event; the injector answers from the
/// plan's active windows and its own Rng. Because draws happen only inside
/// active windows and the simulator is single-threaded with deterministic
/// event order, a (plan, seed) pair replays bit-identically.
///
/// The injector never mutates the system itself — it only decides. The one
/// exception is CrashPoint, which invokes the registered crash handler
/// (synchronously) the first time a crash clause trips.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator* sim, FaultPlan plan, uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Register `fault.*` counters; pass nullptr to detach. Counters record
  /// *injected* events; the components' own metrics record how they coped.
  void SetMetrics(obs::MetricsRegistry* registry);

  /// Attach a flight recorder (nullptr detaches): every injected fault and
  /// crash-site firing is recorded, and a firing crash clause AutoDumps
  /// the ring after the crash handler runs — the post-mortem then shows
  /// both the injection and the device's reaction to it.
  void SetFlightRecorder(obs::FlightRecorder* recorder) {
    flightrec_ = recorder;
  }

  /// Invoked (once, synchronously) when a crash clause fires; receives the
  /// spec so the handler can honour `graceful`.
  using CrashHandler = std::function<void(const FaultSpec&)>;
  void SetCrashHandler(CrashHandler handler) { crash_handler_ = std::move(handler); }

  // --- Component hooks ------------------------------------------------------

  /// flash::Array::Program — true forces the program op to fail.
  bool InjectFlashProgramFail();
  /// flash::Array::Erase — true forces the erase op to fail.
  bool InjectFlashEraseFail();
  /// flash::Array::Read — true forces an uncorrectable (beyond-ECC) read.
  bool InjectFlashReadUncorrectable();
  /// flash::Array read-BER sampling — extra retention dwell (virtual time)
  /// added to the block's organic dwell; 0 when no clause is active.
  sim::SimTime InjectFlashRetentionDwell();
  /// flash::Array read-BER sampling — extra disturb-equivalent reads added
  /// to the block's organic count; 0 when no clause is active.
  uint64_t InjectFlashDisturbReads();

  /// ntb::NtbAdapter forwarding decision for one translated write.
  enum class LinkAction { kForward, kDrop, kStall };
  struct NtbDecision {
    LinkAction action = LinkAction::kForward;
    sim::SimTime delay = 0;  ///< extra latency when action == kStall
  };
  NtbDecision NtbForwardDecision();

  /// pcie::PcieFabric — extra latency added to a routed store (0 = none).
  sim::SimTime InjectPcieStoreDelay();
  /// pcie::PcieFabric — bytes of a peer-path store that actually land
  /// (returns `len` when no truncation fault is active).
  uint64_t InjectPcieTruncation(uint64_t len);

  /// nvme::Controller — I/O command timeout decision.
  struct NvmeDecision {
    bool timeout = false;
    sim::SimTime delay = 0;  ///< when the error completion is delivered
  };
  NvmeDecision InjectNvmeTimeout();

  /// Whole-device crash sites. Components announce a site as
  /// "<device>/<site>" (e.g. "pri/destage.emit_page"); a spec matches on
  /// the full name or on the unprefixed tail. Fires at most once per
  /// injector; after the crash every hook reports "no fault" so recovery
  /// and emergency destage run uninstrumented.
  bool CrashPoint(std::string_view site);
  bool crashed() const { return crashed_; }

  /// Injection totals, usable without a metrics registry.
  struct Totals {
    uint64_t flash_program_fails = 0;
    uint64_t flash_erase_fails = 0;
    uint64_t flash_read_uncorrectable = 0;
    uint64_t flash_retention_boosts = 0;
    uint64_t flash_disturb_boosts = 0;
    uint64_t ntb_dropped = 0;
    uint64_t ntb_stalled = 0;
    uint64_t pcie_delayed = 0;
    uint64_t pcie_truncated = 0;
    uint64_t nvme_timeouts = 0;
    uint64_t crashes = 0;
  };
  const Totals& totals() const { return totals_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  struct Clause {
    FaultSpec spec;
    uint64_t hits = 0;  ///< crash clauses: matching site visits so far
  };

  /// True when `spec`'s window covers Now() and its probability draw (if
  /// any) passes. Draws consume Rng state only for probabilistic clauses
  /// inside their window.
  bool Fires(const FaultSpec& spec);
  /// First firing clause of `kind`, else nullptr.
  const FaultSpec* Match(FaultKind kind);

  void Count(obs::Counter* counter, uint64_t* total);

  /// Flight-recorder append for one injected fault (no-op when detached).
  void RecordFault(std::string message);

  sim::Simulator* sim_;
  FaultPlan plan_;
  sim::Rng rng_;
  std::vector<Clause> clauses_;
  CrashHandler crash_handler_;
  bool crashed_ = false;
  Totals totals_;
  obs::FlightRecorder* flightrec_ = nullptr;

  obs::Counter* m_flash_program_fails_ = nullptr;
  obs::Counter* m_flash_erase_fails_ = nullptr;
  obs::Counter* m_flash_read_uncorrectable_ = nullptr;
  obs::Counter* m_flash_retention_boosts_ = nullptr;
  obs::Counter* m_flash_disturb_boosts_ = nullptr;
  obs::Counter* m_ntb_dropped_ = nullptr;
  obs::Counter* m_ntb_stalled_ = nullptr;
  obs::Counter* m_pcie_delayed_ = nullptr;
  obs::Counter* m_pcie_truncated_ = nullptr;
  obs::Counter* m_nvme_timeouts_ = nullptr;
  obs::Counter* m_crashes_ = nullptr;
};

}  // namespace xssd::fault

#endif  // XSSD_FAULT_FAULT_INJECTOR_H_
