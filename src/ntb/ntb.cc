#include "ntb/ntb.h"

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "pcie/tlp.h"

namespace xssd::ntb {

NtbAdapter::NtbAdapter(sim::Simulator* sim, pcie::PcieFabric* local,
                       NtbConfig config, std::string name)
    : sim_(sim),
      local_(local),
      config_(config),
      name_(std::move(name)),
      link_(sim, config.bytes_per_sec) {
  scratchpad_.resize(config_.scratchpad_bytes, 0);
  // The NTB hop is the only cross-fabric edge in the module graph, so its
  // cut-through latency is the parallel scheduler's lookahead horizon: no
  // forwarded write can land on the far fabric sooner than this.
  if (config_.hop_latency > 0) sim_->DeclareLookahead(config_.hop_latency);
}

void NtbAdapter::SetMetrics(obs::MetricsRegistry* registry,
                            const std::string& prefix) {
  m_wire_bytes_ = registry->GetCounter(prefix + "ntb.wire_bytes");
  m_payload_bytes_ = registry->GetCounter(prefix + "ntb.payload_bytes");
  m_packets_ = registry->GetCounter(prefix + "ntb.packets");
  m_forwards_ = registry->GetCounter(prefix + "ntb.forwards");
  m_dropped_writes_ = registry->GetCounter(prefix + "ntb.dropped_writes");
  m_dropped_bytes_ = registry->GetCounter(prefix + "ntb.dropped_bytes");
  m_link_busy_us_ = registry->GetGauge(prefix + "ntb.link_busy_us");
}

void NtbAdapter::SetSpans(obs::SpanRecorder* spans,
                          const std::string& node_tag) {
  spans_ = spans;
  span_node_ = spans ? spans->InternNode(node_tag) : 0;
  // Span recorders are shared across domains and not thread-safe: pin the
  // parallel backend to its (identical) serial merge while one is attached.
  if (spans != nullptr) sim_->set_force_serial(true);
}

Status NtbAdapter::CheckOverlap(uint64_t offset, uint64_t size) const {
  for (const Window& w : windows_) {
    bool disjoint = offset + size <= w.offset || w.offset + w.size <= offset;
    if (!disjoint) return Status::InvalidArgument("NTB windows overlap");
  }
  return Status::OK();
}

Status NtbAdapter::AddWindow(uint64_t offset, uint64_t size,
                             pcie::PcieFabric* remote_fabric,
                             uint64_t remote_base) {
  if (remote_fabric == nullptr || size == 0) {
    return Status::InvalidArgument("bad NTB window");
  }
  XSSD_RETURN_IF_ERROR(CheckOverlap(offset, size));
  windows_.push_back(
      Window{offset, size, {MulticastTarget{remote_fabric, remote_base}}});
  return Status::OK();
}

Status NtbAdapter::AddMulticastWindow(uint64_t offset, uint64_t size,
                                      std::vector<MulticastTarget> members) {
  if (members.empty() || size == 0) {
    return Status::InvalidArgument("empty multicast group");
  }
  for (const MulticastTarget& member : members) {
    if (member.remote == nullptr) {
      return Status::InvalidArgument("null multicast member");
    }
  }
  XSSD_RETURN_IF_ERROR(CheckOverlap(offset, size));
  windows_.push_back(Window{offset, size, std::move(members)});
  return Status::OK();
}

const NtbAdapter::Window* NtbAdapter::FindWindow(uint64_t offset) const {
  for (const Window& w : windows_) {
    if (offset >= w.offset && offset < w.offset + w.size) return &w;
  }
  return nullptr;
}

void NtbAdapter::OnMmioWrite(uint64_t offset, const uint8_t* data,
                             size_t len) {
  if (config_.scratchpad_bytes > 0 && offset >= config_.scratchpad_offset &&
      offset + len <= config_.scratchpad_offset + config_.scratchpad_bytes) {
    // Scratchpad store: terminate locally, never forward. An inbound
    // link-down window loses it the same way it loses a forwarded write —
    // a heartbeat the failure detector simply never sees.
    if (scratchpad_injector_ != nullptr &&
        scratchpad_injector_->NtbForwardDecision().action ==
            fault::FaultInjector::LinkAction::kDrop) {
      ++scratchpad_dropped_;
      return;
    }
    std::copy(data, data + len,
              scratchpad_.begin() +
                  static_cast<ptrdiff_t>(offset - config_.scratchpad_offset));
    ++scratchpad_writes_;
    return;
  }
  const Window* window = FindWindow(offset);
  if (window == nullptr || offset + len > window->offset + window->size) {
    XSSD_LOG(kWarning) << name_ << ": write outside any NTB window";
    return;
  }
  uint64_t window_offset = offset - window->offset;

  sim::SimTime stall_delay = 0;
  if (injector_ != nullptr) {
    auto decision = injector_->NtbForwardDecision();
    if (decision.action == fault::FaultInjector::LinkAction::kDrop) {
      // Link is down: the posted write vanishes on the cable. The sender
      // gets no error — recovering these bytes is the transport module's
      // retransmit job.
      ++dropped_writes_;
      dropped_payload_bytes_ += len;
      if (m_dropped_writes_) {
        m_dropped_writes_->Add();
        m_dropped_bytes_->Add(len);
      }
      return;
    }
    if (decision.action == fault::FaultInjector::LinkAction::kStall) {
      stall_delay = decision.delay;
    }
  }

  // One cable transfer regardless of fan-out: the adapter replicates in
  // hardware on the far side of the link.
  uint64_t wire = pcie::WireBytesFor(len, config_.forward_chunk);
  uint64_t packets = pcie::TlpCountFor(len, config_.forward_chunk);
  forwarded_wire_bytes_ += wire;
  forwarded_payload_bytes_ += len;
  forwarded_packets_ += packets;
  if (m_wire_bytes_) {
    m_wire_bytes_->Add(wire);
    m_payload_bytes_->Add(len);
    m_packets_->Add(packets);
    m_forwards_->Add();
  }

  std::vector<uint8_t> copy(data, data + len);
  sim::SimTime cable_done = link_.Acquire(wire);
  if (m_link_busy_us_) m_link_busy_us_->Set(sim::ToUs(link_.busy_time()));
  sim::SimTime delivered_at = cable_done + config_.hop_latency + stall_delay;
  // The link span covers cable serialisation plus the adapter hop; its end
  // is known now, so stamp it up front. The captured context is restored on
  // delivery so remote-side spans nest under this transfer.
  obs::SpanContext link_ctx;
  if (spans_) {
    link_ctx = spans_->StartSpan(obs::Stage::kNtbLink, span_node_,
                                 spans_->current());
    spans_->EndSpanAt(link_ctx, delivered_at);
  }
  bool cross_domain = false;
  for (const MulticastTarget& member : window->members) {
    if (member.remote->domain() != local_->domain()) cross_domain = true;
  }
  if (!cross_domain) {
    sim_->ScheduleAt(
        delivered_at,
        [this, link_ctx, members = window->members, window_offset,
         copy = std::move(copy), chunk = config_.forward_chunk]() {
          obs::ScopedContext scope(spans_, link_ctx);
          for (const MulticastTarget& member : members) {
            // Address translation is the only transformation NTB performs
            // (§2.3); inject into each member fabric as peer-to-peer traffic.
            member.remote->PeerWrite(member.remote_base + window_offset,
                                     copy.data(), copy.size(), chunk);
          }
        });
    return;
  }
  // Partitioned run: deliver into each member's own scheduler domain. The
  // delivery time satisfies the lookahead contract by construction
  // (delivered_at >= now + hop_latency >= now + lookahead). The payload is
  // shared, not copied per member — delivery callbacks only read it.
  auto shared_copy = std::make_shared<std::vector<uint8_t>>(std::move(copy));
  for (const MulticastTarget& member : window->members) {
    sim_->ScheduleAtIn(
        member.remote->domain(), delivered_at,
        [this, link_ctx, member, window_offset, shared_copy,
         chunk = config_.forward_chunk]() {
          obs::ScopedContext scope(spans_, link_ctx);
          member.remote->PeerWrite(member.remote_base + window_offset,
                                   shared_copy->data(), shared_copy->size(),
                                   chunk);
        });
  }
}

void NtbAdapter::OnMmioRead(uint64_t offset, uint8_t* out, size_t len) {
  if (config_.scratchpad_bytes > 0 && offset >= config_.scratchpad_offset &&
      offset + len <= config_.scratchpad_offset + config_.scratchpad_bytes) {
    auto base = scratchpad_.begin() +
                static_cast<ptrdiff_t>(offset - config_.scratchpad_offset);
    std::copy(base, base + static_cast<ptrdiff_t>(len), out);
    return;
  }
  // Cross-NTB reads exist but are slow and unused by the Villars protocol
  // (all coordination is done with posted writes). Serve them functionally
  // from the first member for completeness.
  const Window* window = FindWindow(offset);
  if (window == nullptr || offset + len > window->offset + window->size) {
    std::fill(out, out + len, 0);
    return;
  }
  const MulticastTarget& member = window->members.front();
  uint64_t remote_addr = member.remote_base + (offset - window->offset);
  Status status = member.remote->FunctionalRead(remote_addr, out, len);
  if (!status.ok()) std::fill(out, out + len, 0);
}

}  // namespace xssd::ntb
