#ifndef XSSD_NTB_NTB_H_
#define XSSD_NTB_NTB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "pcie/fabric.h"
#include "sim/bandwidth_server.h"

namespace xssd::fault {
class FaultInjector;
}  // namespace xssd::fault

namespace xssd::ntb {

/// \brief NTB adapter/link parameters.
///
/// Defaults approximate the Dolphin PXH830 daisy-chain of the paper's
/// testbed. NTB carries raw TLPs — no protocol conversion (paper §2.3) —
/// so the per-packet overhead is the PCIe TLP overhead, and the hop latency
/// is the adapter's cut-through forwarding time.
struct NtbConfig {
  double bytes_per_sec = 2e9;             ///< cross-link bandwidth
  sim::SimTime hop_latency = sim::Ns(1300);  ///< adapter cut-through latency
  uint32_t forward_chunk = 64;           ///< TLP payload granularity
  /// Doorbell/scratchpad region of the BAR: writes landing here are stored
  /// locally (never forwarded) and served back to reads — the mailbox real
  /// NTB hardware exposes, used by the HA supervisor for heartbeats.
  /// scratchpad_bytes == 0 disables the region.
  uint64_t scratchpad_offset = 0;
  uint64_t scratchpad_bytes = 0;
};

/// \brief A Non-Transparent Bridge adapter: an MMIO window on the local
/// fabric whose writes are forwarded — address-translated — into a remote
/// fabric.
///
/// One NtbAdapter models the local card plus the cable to its peer. Windows
/// are the NTB translation entries: [window_base, +size) on this adapter
/// maps to `remote_base` on the peer fabric. A window may target another
/// adapter's window, which is how the daisy-chained three-server topology
/// of the paper composes.
class NtbAdapter : public pcie::MmioDevice {
 public:
  NtbAdapter(sim::Simulator* sim, pcie::PcieFabric* local, NtbConfig config,
             std::string name);

  /// Map [offset, offset+size) of this adapter's BAR onto
  /// remote_fabric[remote_base ...]. Windows must not overlap.
  Status AddWindow(uint64_t offset, uint64_t size,
                   pcie::PcieFabric* remote_fabric, uint64_t remote_base);

  /// One member of a multicast group.
  struct MulticastTarget {
    pcie::PcieFabric* remote;
    uint64_t remote_base;
  };

  /// Map [offset, offset+size) as a *multicast* window: each write is
  /// carried once on the local cable and fanned out to every member — the
  /// hardware multicast the paper notes NTB adapters support (§4.2) but
  /// its prototype leaves unused. The bandwidth saving on the primary is
  /// exactly (members - 1)x.
  Status AddMulticastWindow(uint64_t offset, uint64_t size,
                            std::vector<MulticastTarget> members);

  // pcie::MmioDevice — traffic landing on the local window.
  void OnMmioWrite(uint64_t offset, const uint8_t* data, size_t len) override;
  void OnMmioRead(uint64_t offset, uint8_t* out, size_t len) override;

  /// Bytes forwarded across the cable so far (wire bytes incl. overhead) —
  /// the denominator data for Figure 13's bandwidth-share series.
  uint64_t forwarded_wire_bytes() const { return forwarded_wire_bytes_; }
  uint64_t forwarded_payload_bytes() const {
    return forwarded_payload_bytes_;
  }
  uint64_t forwarded_packets() const { return forwarded_packets_; }
  /// Writes/bytes lost to injected link-down windows (flaps).
  uint64_t dropped_writes() const { return dropped_writes_; }
  uint64_t dropped_payload_bytes() const { return dropped_payload_bytes_; }
  void ResetStats() {
    forwarded_wire_bytes_ = 0;
    forwarded_payload_bytes_ = 0;
    forwarded_packets_ = 0;
    dropped_writes_ = 0;
    dropped_payload_bytes_ = 0;
  }

  const NtbConfig& config() const { return config_; }
  sim::BandwidthServer& link() { return link_; }

  /// Register this adapter's metrics under `prefix` + "ntb.".
  void SetMetrics(obs::MetricsRegistry* registry,
                  const std::string& prefix = "");

  /// Attach span tracing (nullptr detaches). Each forwarded write opens an
  /// ntb.link span (cable acquisition → delivery into the remote fabric)
  /// under the ambient context, and relays that context to the remote side.
  void SetSpans(obs::SpanRecorder* spans, const std::string& node_tag);

  /// Attach a fault injector (nullptr detaches). Link-down windows silently
  /// drop forwarded writes (the sender's posted write cannot tell); stall
  /// windows add the injected delay on top of the hop latency. Also governs
  /// inbound scratchpad stores (see set_scratchpad_fault_injector).
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
    scratchpad_injector_ = injector;
  }

  /// Separate injector for *inbound* scratchpad stores only, so a bench
  /// can partition heartbeat delivery asymmetrically from the data path
  /// (a node whose outbound link heals before its inbound one — the
  /// split-brain shape the fencing test needs). nullptr detaches.
  void set_scratchpad_fault_injector(fault::FaultInjector* injector) {
    scratchpad_injector_ = injector;
  }

  /// Inbound scratchpad stores accepted / dropped by injected faults.
  uint64_t scratchpad_writes() const { return scratchpad_writes_; }
  uint64_t scratchpad_dropped() const { return scratchpad_dropped_; }

 private:
  struct Window {
    uint64_t offset;
    uint64_t size;
    // A unicast window has one member; a multicast window has several.
    std::vector<MulticastTarget> members;
  };

  const Window* FindWindow(uint64_t offset) const;
  Status CheckOverlap(uint64_t offset, uint64_t size) const;

  sim::Simulator* sim_;
  pcie::PcieFabric* local_;
  NtbConfig config_;
  std::string name_;
  sim::BandwidthServer link_;
  std::vector<Window> windows_;
  std::vector<uint8_t> scratchpad_;
  uint64_t scratchpad_writes_ = 0;
  uint64_t scratchpad_dropped_ = 0;
  fault::FaultInjector* injector_ = nullptr;
  fault::FaultInjector* scratchpad_injector_ = nullptr;
  obs::SpanRecorder* spans_ = nullptr;
  uint16_t span_node_ = 0;

  uint64_t forwarded_wire_bytes_ = 0;
  uint64_t forwarded_payload_bytes_ = 0;
  uint64_t forwarded_packets_ = 0;
  uint64_t dropped_writes_ = 0;
  uint64_t dropped_payload_bytes_ = 0;

  // Observability (null until SetMetrics).
  obs::Counter* m_wire_bytes_ = nullptr;
  obs::Counter* m_payload_bytes_ = nullptr;
  obs::Counter* m_packets_ = nullptr;
  obs::Counter* m_forwards_ = nullptr;
  obs::Counter* m_dropped_writes_ = nullptr;
  obs::Counter* m_dropped_bytes_ = nullptr;
  obs::Gauge* m_link_busy_us_ = nullptr;
};

}  // namespace xssd::ntb

#endif  // XSSD_NTB_NTB_H_
