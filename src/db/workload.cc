#include "db/workload.h"

#include "common/logging.h"

namespace xssd::db {

WorkloadDriver::WorkloadDriver(sim::Simulator* sim, Database* db,
                               TpccWorkload* workload, uint32_t worker_count,
                               uint64_t seed)
    : sim_(sim),
      db_(db),
      workload_(workload),
      worker_count_(worker_count),
      rng_(seed) {}

void WorkloadDriver::WorkerStep(Worker* worker) {
  if (stopping_) {
    worker->stopped = true;
    return;
  }
  TpccTxnType type = workload_->NextType();
  auto txn = std::make_shared<Transaction>(db_);
  sim::SimTime cpu = workload_->Prepare(type, txn.get());
  // ±20% execution-time jitter.
  cpu = static_cast<sim::SimTime>(cpu * (0.8 + 0.4 * rng_.NextDouble()));
  sim::SimTime started = sim_->Now();

  sim_->Schedule(cpu, [this, worker, txn, started]() {
    size_t wal_bytes = txn->LogBytes();
    db_->log()->WaitForSpace(wal_bytes, [this, worker, txn, started]() {
      bool started_in_window = measuring_;
      txn->Commit([this, started, started_in_window](Status status) {
        if (!status.ok()) return;
        // Throughput counts every commit inside the window; latency only
        // covers transactions that also *started* inside it (so queueing
        // built up before the window does not skew the distribution).
        if (measuring_) {
          ++committed_;
          if (started_in_window) {
            latency_us_.Add(sim::ToUs(sim_->Now() - started));
          }
        }
      });
      // Pipelined commit: the worker moves on immediately.
      WorkerStep(worker);
    });
  });
}

WorkloadResult WorkloadDriver::Run(sim::SimTime warmup,
                                   sim::SimTime measure) {
  measuring_ = false;
  stopping_ = false;
  committed_ = 0;
  latency_us_.Clear();

  workers_.clear();
  for (uint32_t i = 0; i < worker_count_; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->id = i;
  }
  for (auto& worker : workers_) {
    WorkerStep(worker.get());
  }

  sim_->RunFor(warmup);
  measuring_ = true;
  log_bytes_start_ = db_->log()->backend()->bytes_logged();
  sim_->RunFor(measure);
  measuring_ = false;
  stopping_ = true;
  uint64_t log_bytes =
      db_->log()->backend()->bytes_logged() - log_bytes_start_;

  // Let in-flight transactions drain (not counted).
  sim_->RunFor(sim::Ms(50));

  WorkloadResult result;
  result.committed_txns = committed_;
  result.txns_per_sec = static_cast<double>(committed_) / sim::ToSec(measure);
  result.latency_us = latency_us_;
  result.log_bytes = log_bytes;
  result.log_bytes_per_sec =
      static_cast<double>(log_bytes) / sim::ToSec(measure);
  result.avg_log_bytes_per_txn =
      committed_ ? static_cast<double>(log_bytes) / committed_ : 0;
  return result;
}

}  // namespace xssd::db
