#ifndef XSSD_DB_DATABASE_H_
#define XSSD_DB_DATABASE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/log_manager.h"
#include "db/log_record.h"

namespace xssd::db {

/// \brief One main-memory table: key → row bytes, with simple statistics.
class Table {
 public:
  Table(uint32_t id, std::string name) : id_(id), name_(std::move(name)) {}

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  size_t row_count() const { return rows_.size(); }

  const std::vector<uint8_t>* Get(uint64_t key) const {
    auto it = rows_.find(key);
    return it == rows_.end() ? nullptr : &it->second;
  }

  void Put(uint64_t key, std::vector<uint8_t> row) {
    rows_[key] = std::move(row);
  }

  /// Apply a delta at `offset` within the row (update logging unit).
  Status ApplyDelta(uint64_t key, size_t offset,
                    const std::vector<uint8_t>& delta);

  bool Erase(uint64_t key) { return rows_.erase(key) > 0; }

 private:
  uint32_t id_;
  std::string name_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> rows_;
};

/// \brief The in-memory database: a set of tables plus the WAL.
///
/// This is the substrate playing ERMIA's part: all data lives in (host)
/// memory; only the transaction log needs persistence, which is why the
/// log path *is* the bottleneck the paper attacks.
class Database {
 public:
  explicit Database(LogManager* log) : log_(log) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Table* CreateTable(const std::string& name);
  Table* GetTable(uint32_t id);
  Table* GetTableByName(const std::string& name);

  LogManager* log() { return log_; }

  uint64_t NextTxnId() { return next_txn_id_++; }

 private:
  LogManager* log_;
  std::vector<std::unique_ptr<Table>> tables_;
  uint64_t next_txn_id_ = 1;
};

/// \brief A transaction: buffered writes + redo records, applied and
/// logged at commit.
///
/// Commit is pipelined (ERMIA-style group commit): Commit() applies the
/// writes, appends the redo records to the WAL, and returns immediately;
/// `on_durable` fires when the commit LSN is durable per the backend. The
/// worker is free to start its next transaction in between.
class Transaction {
 public:
  explicit Transaction(Database* db)
      : db_(db), txn_id_(db->NextTxnId()) {}

  uint64_t id() const { return txn_id_; }

  /// Read a row (no read logging; snapshot semantics are out of scope).
  const std::vector<uint8_t>* Get(Table* table, uint64_t key) {
    return table->Get(key);
  }

  void Insert(Table* table, uint64_t key, std::vector<uint8_t> row);
  void UpdateDelta(Table* table, uint64_t key, size_t offset,
                   std::vector<uint8_t> delta);
  void Erase(Table* table, uint64_t key);

  /// Serialized WAL footprint of the buffered writes (+ commit marker).
  size_t LogBytes() const;

  /// Apply writes, append redo records, register the durability waiter.
  /// Returns the commit LSN.
  uint64_t Commit(std::function<void(Status)> on_durable);

  size_t write_count() const { return writes_.size(); }

 private:
  struct PendingWrite {
    Table* table;
    LogRecord record;
    size_t delta_offset;  // for kUpdate
  };

  Database* db_;
  uint64_t txn_id_;
  std::vector<PendingWrite> writes_;
};

}  // namespace xssd::db

#endif  // XSSD_DB_DATABASE_H_
