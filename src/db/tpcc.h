#ifndef XSSD_DB_TPCC_H_
#define XSSD_DB_TPCC_H_

#include <cstdint>

#include "db/database.h"
#include "sim/random.h"
#include "sim/time.h"

namespace xssd::db {

/// \brief TPC-C workload parameters.
///
/// Row sizes follow the spec's minima; transaction CPU costs are the
/// simulated compute charged per transaction, calibrated so that 8 workers
/// with no logging reach ≈300 ktxn/s — the ERMIA ceiling the paper's
/// Figure 9 reports on its 8-core Xeon testbed.
struct TpccConfig {
  uint32_t warehouses = 16;  ///< paper §6: 16 warehouses
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 3000;
  uint32_t items = 100000;

  // Transaction mix (percent; spec-standard).
  uint32_t new_order_pct = 45;
  uint32_t payment_pct = 43;
  uint32_t order_status_pct = 4;
  uint32_t delivery_pct = 4;
  // stock_level = remainder.

  // Simulated CPU cost per transaction type.
  sim::SimTime new_order_cpu = sim::Us(40);
  sim::SimTime payment_cpu = sim::Us(15);
  sim::SimTime order_status_cpu = sim::Us(12);
  sim::SimTime delivery_cpu = sim::Us(35);
  sim::SimTime stock_level_cpu = sim::Us(25);

  /// Scale knob for data population (rows actually materialized); the
  /// full spec population is pointless for log-path experiments.
  uint32_t populated_customers_per_district = 64;
  uint32_t populated_items = 2048;
};

/// Transaction types in the mix.
enum class TpccTxnType {
  kNewOrder,
  kPayment,
  kOrderStatus,
  kDelivery,
  kStockLevel,
};

const char* TpccTxnName(TpccTxnType type);

/// \brief TPC-C schema + transaction logic over the mini database.
///
/// All five transaction profiles are implemented with real row reads,
/// updates (delta-logged), and inserts, so the WAL carries a realistic
/// record-size distribution — the property Figure 9/11 depend on.
class TpccWorkload {
 public:
  TpccWorkload(Database* db, TpccConfig config, uint64_t seed);

  /// Create tables and populate warehouses/districts/customers/items.
  void Populate();

  /// Pick a type per the mix.
  TpccTxnType NextType();

  /// Build (but do not commit) one transaction of the given type.
  /// Returns its simulated CPU cost.
  sim::SimTime Prepare(TpccTxnType type, Transaction* txn);

  const TpccConfig& config() const { return config_; }

  Table* warehouse() { return warehouse_; }
  Table* district() { return district_; }
  Table* customer() { return customer_; }
  Table* item() { return item_; }
  Table* stock() { return stock_; }
  Table* orders() { return orders_; }
  Table* order_line() { return order_line_; }
  Table* new_order() { return new_order_; }
  Table* history() { return history_; }

  uint64_t next_order_id() const { return next_order_id_; }

 private:
  // Row sizes (spec-minimum bytes).
  static constexpr size_t kWarehouseRow = 89;
  static constexpr size_t kDistrictRow = 95;
  static constexpr size_t kCustomerRow = 655;
  static constexpr size_t kItemRow = 82;
  static constexpr size_t kStockRow = 306;
  static constexpr size_t kOrderRow = 24;
  static constexpr size_t kOrderLineRow = 54;
  static constexpr size_t kNewOrderRow = 8;
  static constexpr size_t kHistoryRow = 46;

  uint64_t WarehouseKey(uint32_t w) const { return w; }
  uint64_t DistrictKey(uint32_t w, uint32_t d) const {
    return static_cast<uint64_t>(w) * 100 + d;
  }
  uint64_t CustomerKey(uint32_t w, uint32_t d, uint32_t c) const {
    return (static_cast<uint64_t>(w) * 100 + d) * 100000 + c;
  }
  uint64_t StockKey(uint32_t w, uint32_t i) const {
    return static_cast<uint64_t>(w) * 1000000 + i;
  }

  std::vector<uint8_t> MakeRow(size_t len);

  void DoNewOrder(Transaction* txn);
  void DoPayment(Transaction* txn);
  void DoOrderStatus(Transaction* txn);
  void DoDelivery(Transaction* txn);
  void DoStockLevel(Transaction* txn);

  Database* db_;
  TpccConfig config_;
  sim::Rng rng_;

  Table* warehouse_ = nullptr;
  Table* district_ = nullptr;
  Table* customer_ = nullptr;
  Table* item_ = nullptr;
  Table* stock_ = nullptr;
  Table* orders_ = nullptr;
  Table* order_line_ = nullptr;
  Table* new_order_ = nullptr;
  Table* history_ = nullptr;

  uint64_t next_order_id_ = 1;
  uint64_t next_history_id_ = 1;
};

}  // namespace xssd::db

#endif  // XSSD_DB_TPCC_H_
