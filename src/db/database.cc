#include "db/database.h"

#include <cstring>

#include "common/logging.h"

namespace xssd::db {

Status Table::ApplyDelta(uint64_t key, size_t offset,
                         const std::vector<uint8_t>& delta) {
  auto it = rows_.find(key);
  if (it == rows_.end()) return Status::NotFound("no row for delta");
  if (offset + delta.size() > it->second.size()) {
    return Status::OutOfRange("delta past end of row");
  }
  std::memcpy(it->second.data() + offset, delta.data(), delta.size());
  return Status::OK();
}

Table* Database::CreateTable(const std::string& name) {
  uint32_t id = static_cast<uint32_t>(tables_.size());
  tables_.push_back(std::make_unique<Table>(id, name));
  return tables_.back().get();
}

Table* Database::GetTable(uint32_t id) {
  return id < tables_.size() ? tables_[id].get() : nullptr;
}

Table* Database::GetTableByName(const std::string& name) {
  for (auto& table : tables_) {
    if (table->name() == name) return table.get();
  }
  return nullptr;
}

void Transaction::Insert(Table* table, uint64_t key,
                         std::vector<uint8_t> row) {
  LogRecord record;
  record.txn_id = txn_id_;
  record.table_id = table->id();
  record.op = LogOp::kInsert;
  record.key = key;
  record.payload = std::move(row);
  writes_.push_back(PendingWrite{table, std::move(record), 0});
}

void Transaction::UpdateDelta(Table* table, uint64_t key, size_t offset,
                              std::vector<uint8_t> delta) {
  LogRecord record;
  record.txn_id = txn_id_;
  record.table_id = table->id();
  record.op = LogOp::kUpdate;
  record.key = key;
  // Delta payload: 4-byte offset prefix + changed bytes, so the record is
  // self-describing for replay.
  record.payload.resize(4 + delta.size());
  uint32_t off32 = static_cast<uint32_t>(offset);
  std::memcpy(record.payload.data(), &off32, 4);
  std::memcpy(record.payload.data() + 4, delta.data(), delta.size());
  writes_.push_back(PendingWrite{table, std::move(record), offset});
}

void Transaction::Erase(Table* table, uint64_t key) {
  LogRecord record;
  record.txn_id = txn_id_;
  record.table_id = table->id();
  record.op = LogOp::kDelete;
  record.key = key;
  writes_.push_back(PendingWrite{table, std::move(record), 0});
}

size_t Transaction::LogBytes() const {
  size_t bytes = LogRecord::kHeaderBytes;  // commit marker
  for (const PendingWrite& write : writes_) {
    bytes += write.record.SerializedSize();
  }
  return bytes;
}

uint64_t Transaction::Commit(std::function<void(Status)> on_durable) {
  // Apply to the in-memory tables.
  for (PendingWrite& write : writes_) {
    switch (write.record.op) {
      case LogOp::kInsert:
        write.table->Put(write.record.key, write.record.payload);
        break;
      case LogOp::kUpdate: {
        std::vector<uint8_t> delta(write.record.payload.begin() + 4,
                                   write.record.payload.end());
        Status status = write.table->ApplyDelta(write.record.key,
                                                write.delta_offset, delta);
        if (!status.ok()) {
          XSSD_LOG(kWarning) << "delta apply failed: " << status.ToString();
        }
        break;
      }
      case LogOp::kDelete:
        write.table->Erase(write.record.key);
        break;
      case LogOp::kCommit:
        break;
    }
  }

  // Serialize redo records + commit marker into the WAL.
  std::vector<uint8_t> wal;
  wal.reserve(LogBytes());
  for (const PendingWrite& write : writes_) {
    SerializeLogRecord(write.record, &wal);
  }
  LogRecord commit_marker;
  commit_marker.txn_id = txn_id_;
  commit_marker.op = LogOp::kCommit;
  SerializeLogRecord(commit_marker, &wal);

  uint64_t lsn = db_->log()->Append(wal.data(), wal.size());
  db_->log()->WaitDurable(lsn, std::move(on_durable));
  return lsn;
}

}  // namespace xssd::db
