#ifndef XSSD_DB_LOG_RECORD_H_
#define XSSD_DB_LOG_RECORD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace xssd::db {

/// Redo-record kinds.
enum class LogOp : uint8_t {
  kInsert = 0,
  kUpdate = 1,   ///< delta: changed column bytes only
  kDelete = 2,
  kCommit = 3,   ///< transaction commit marker
};

/// \brief One redo log record (after-image / delta logging, the ERMIA
/// style). Serialized with a fixed header + payload + CRC so a recovered
/// log stream can be replayed and validated.
struct LogRecord {
  uint64_t txn_id = 0;
  uint32_t table_id = 0;
  LogOp op = LogOp::kInsert;
  uint64_t key = 0;
  std::vector<uint8_t> payload;  ///< row image or delta bytes

  /// Serialized size (header + payload).
  size_t SerializedSize() const { return kHeaderBytes + payload.size(); }

  static constexpr size_t kHeaderBytes = 29;
};

/// Append the wire image of `record` to `out`.
void SerializeLogRecord(const LogRecord& record, std::vector<uint8_t>* out);

/// Parse one record starting at `data[offset]`; advances `*offset`.
/// kOutOfRange when the buffer ends mid-record (torn tail after a crash),
/// kCorruption on CRC mismatch.
Result<LogRecord> ParseLogRecord(const std::vector<uint8_t>& data,
                                 size_t* offset);

/// Parse a whole stream, stopping cleanly at a torn tail. `torn` (optional)
/// reports whether the stream ended mid-record.
std::vector<LogRecord> ParseLogStream(const std::vector<uint8_t>& data,
                                      bool* torn = nullptr);

}  // namespace xssd::db

#endif  // XSSD_DB_LOG_RECORD_H_
