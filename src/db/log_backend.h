#ifndef XSSD_DB_LOG_BACKEND_H_
#define XSSD_DB_LOG_BACKEND_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "host/xlog_client.h"
#include "nvme/driver.h"
#include "sim/bandwidth_server.h"
#include "sim/simulator.h"

namespace xssd::db {

/// \brief Where the WAL goes. The LogManager group-commits through one of
/// these; the implementations are exactly the methods Figure 9 compares.
class LogBackend {
 public:
  virtual ~LogBackend() = default;

  /// Make `len` bytes durable; `done` fires when the durability criterion
  /// of the method holds (persist barrier, NVMe flush, or credit counter).
  virtual void AppendDurable(const uint8_t* data, size_t len,
                             std::function<void(Status)> done) = 0;

  virtual std::string name() const = 0;

  /// Host-side data movements per logged byte (paper §5.1 "Destaging
  /// Efficiency"): how many times the payload crosses the host memory bus.
  virtual int data_movements_per_byte() const = 0;

  uint64_t bytes_logged() const { return bytes_logged_; }
  uint64_t flushes() const { return flushes_; }

 protected:
  void Account(size_t len) {
    bytes_logged_ += len;
    ++flushes_;
  }

 private:
  uint64_t bytes_logged_ = 0;
  uint64_t flushes_ = 0;
};

/// "No Log" baseline: durability is free (and absent).
class NoLogBackend : public LogBackend {
 public:
  explicit NoLogBackend(sim::Simulator* sim) : sim_(sim) {}

  void AppendDurable(const uint8_t* data, size_t len,
                     std::function<void(Status)> done) override;
  std::string name() const override { return "no-log"; }
  int data_movements_per_byte() const override { return 0; }

 private:
  sim::Simulator* sim_;
};

/// "Memory" baseline: log to host NVDIMM (battery-backed DRAM DIMMs, the
/// way ERMIA emulates PM). A store stream at DIMM bandwidth plus a persist
/// barrier (clwb+sfence class cost). The host later has to destage the log
/// to an SSD itself — see the ablation bench — costing 4 data movements in
/// total (§5.1); this backend charges the first movement on the critical
/// path.
class NvdimmBackend : public LogBackend {
 public:
  struct Options {
    double pm_bytes_per_sec = 8e9;           ///< NVDIMM write bandwidth
    sim::SimTime persist_barrier = sim::Ns(400);  ///< clwb + sfence drain
  };

  NvdimmBackend(sim::Simulator* sim, Options options)
      : sim_(sim), options_(options), pm_port_(sim, options.pm_bytes_per_sec) {}
  explicit NvdimmBackend(sim::Simulator* sim)
      : NvdimmBackend(sim, Options{}) {}

  void AppendDurable(const uint8_t* data, size_t len,
                     std::function<void(Status)> done) override;
  std::string name() const override { return "nvdimm"; }
  int data_movements_per_byte() const override { return 4; }

  sim::BandwidthServer& pm_port() { return pm_port_; }

 private:
  sim::Simulator* sim_;
  Options options_;
  sim::BandwidthServer pm_port_;
};

/// "NVMe" baseline: log to the conventional (block) side — pwrite of the
/// group into a log file region + fsync (NVMe write + Flush, QD1).
class NvmeLogBackend : public LogBackend {
 public:
  /// Logs into [start_lba, start_lba + lba_count) as a circular file.
  NvmeLogBackend(nvme::Driver* driver, uint64_t start_lba,
                 uint64_t lba_count)
      : driver_(driver), start_lba_(start_lba), lba_count_(lba_count) {}

  void AppendDurable(const uint8_t* data, size_t len,
                     std::function<void(Status)> done) override;
  std::string name() const override { return "nvme-conventional"; }
  int data_movements_per_byte() const override { return 2; }

 private:
  nvme::Driver* driver_;
  uint64_t start_lba_;
  uint64_t lba_count_;
  uint64_t cursor_ = 0;  // in blocks
};

/// The Villars fast side: x_pwrite + x_fsync through the CMB (this is the
/// Villars-SRAM / Villars-DRAM series depending on the device's backing).
class VillarsLogBackend : public LogBackend {
 public:
  explicit VillarsLogBackend(host::XLogClient* client) : client_(client) {}

  void AppendDurable(const uint8_t* data, size_t len,
                     std::function<void(Status)> done) override;
  std::string name() const override { return "villars-fast"; }
  int data_movements_per_byte() const override { return 2; }

 private:
  host::XLogClient* client_;
};

}  // namespace xssd::db

#endif  // XSSD_DB_LOG_BACKEND_H_
