#ifndef XSSD_DB_WORKLOAD_H_
#define XSSD_DB_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "db/database.h"
#include "db/tpcc.h"
#include "sim/stats.h"

namespace xssd::db {

/// \brief Result of one workload run.
struct WorkloadResult {
  uint64_t committed_txns = 0;
  double txns_per_sec = 0;
  /// Commit latency (txn start → durable) in microseconds.
  sim::LatencyRecorder latency_us;
  uint64_t log_bytes = 0;
  double log_bytes_per_sec = 0;
  double avg_log_bytes_per_txn = 0;
};

/// \brief Drives N worker "threads" (simulated cores) over a TPC-C mix
/// with pipelined group commit — the load generator of Figure 9.
///
/// Each worker loops: pick a transaction, charge its CPU time, commit
/// (append WAL + register durability waiter), continue. A worker stalls
/// only when the log buffer is full (back-pressure) — matching ERMIA's
/// pipelined commit behaviour where the log is the only brake.
class WorkloadDriver {
 public:
  WorkloadDriver(sim::Simulator* sim, Database* db, TpccWorkload* workload,
                 uint32_t worker_count, uint64_t seed = 7);

  /// Run for `warmup + measure` of virtual time; statistics cover only the
  /// measurement window.
  WorkloadResult Run(sim::SimTime warmup, sim::SimTime measure);

 private:
  struct Worker {
    uint32_t id;
    bool stopped = false;
  };

  void WorkerStep(Worker* worker);

  sim::Simulator* sim_;
  Database* db_;
  TpccWorkload* workload_;
  uint32_t worker_count_;
  sim::Rng rng_;

  bool measuring_ = false;
  bool stopping_ = false;
  uint64_t committed_ = 0;
  uint64_t log_bytes_start_ = 0;
  sim::LatencyRecorder latency_us_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace xssd::db

#endif  // XSSD_DB_WORKLOAD_H_
