#include "db/tpcc.h"

#include <cstring>
#include "common/logging.h"

namespace xssd::db {

const char* TpccTxnName(TpccTxnType type) {
  switch (type) {
    case TpccTxnType::kNewOrder:
      return "new-order";
    case TpccTxnType::kPayment:
      return "payment";
    case TpccTxnType::kOrderStatus:
      return "order-status";
    case TpccTxnType::kDelivery:
      return "delivery";
    case TpccTxnType::kStockLevel:
      return "stock-level";
  }
  return "?";
}

TpccWorkload::TpccWorkload(Database* db, TpccConfig config, uint64_t seed)
    : db_(db), config_(config), rng_(seed) {}

std::vector<uint8_t> TpccWorkload::MakeRow(size_t len) {
  std::vector<uint8_t> row(len);
  for (auto& b : row) b = static_cast<uint8_t>(rng_.Next());
  return row;
}

void TpccWorkload::Populate() {
  warehouse_ = db_->CreateTable("warehouse");
  district_ = db_->CreateTable("district");
  customer_ = db_->CreateTable("customer");
  item_ = db_->CreateTable("item");
  stock_ = db_->CreateTable("stock");
  orders_ = db_->CreateTable("orders");
  order_line_ = db_->CreateTable("order_line");
  new_order_ = db_->CreateTable("new_order");
  history_ = db_->CreateTable("history");

  for (uint32_t w = 0; w < config_.warehouses; ++w) {
    warehouse_->Put(WarehouseKey(w), MakeRow(kWarehouseRow));
    for (uint32_t d = 0; d < config_.districts_per_warehouse; ++d) {
      district_->Put(DistrictKey(w, d), MakeRow(kDistrictRow));
      for (uint32_t c = 0; c < config_.populated_customers_per_district;
           ++c) {
        customer_->Put(CustomerKey(w, d, c), MakeRow(kCustomerRow));
      }
    }
    for (uint32_t i = 0; i < config_.populated_items; ++i) {
      stock_->Put(StockKey(w, i), MakeRow(kStockRow));
    }
  }
  for (uint32_t i = 0; i < config_.populated_items; ++i) {
    item_->Put(i, MakeRow(kItemRow));
  }
}

TpccTxnType TpccWorkload::NextType() {
  uint32_t roll = static_cast<uint32_t>(rng_.Uniform(100));
  if (roll < config_.new_order_pct) return TpccTxnType::kNewOrder;
  roll -= config_.new_order_pct;
  if (roll < config_.payment_pct) return TpccTxnType::kPayment;
  roll -= config_.payment_pct;
  if (roll < config_.order_status_pct) return TpccTxnType::kOrderStatus;
  roll -= config_.order_status_pct;
  if (roll < config_.delivery_pct) return TpccTxnType::kDelivery;
  return TpccTxnType::kStockLevel;
}

sim::SimTime TpccWorkload::Prepare(TpccTxnType type, Transaction* txn) {
  switch (type) {
    case TpccTxnType::kNewOrder:
      DoNewOrder(txn);
      return config_.new_order_cpu;
    case TpccTxnType::kPayment:
      DoPayment(txn);
      return config_.payment_cpu;
    case TpccTxnType::kOrderStatus:
      DoOrderStatus(txn);
      return config_.order_status_cpu;
    case TpccTxnType::kDelivery:
      DoDelivery(txn);
      return config_.delivery_cpu;
    case TpccTxnType::kStockLevel:
      DoStockLevel(txn);
      return config_.stock_level_cpu;
  }
  return 0;
}

void TpccWorkload::DoNewOrder(Transaction* txn) {
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(config_.warehouses));
  uint32_t d =
      static_cast<uint32_t>(rng_.Uniform(config_.districts_per_warehouse));
  uint32_t c = static_cast<uint32_t>(
      rng_.Uniform(config_.populated_customers_per_district));

  // Reads: warehouse tax, district (also RMW of next_o_id), customer.
  txn->Get(warehouse_, WarehouseKey(w));
  txn->Get(district_, DistrictKey(w, d));
  txn->Get(customer_, CustomerKey(w, d, c));

  // District next_o_id increment: 8-byte delta at offset 0.
  uint64_t order_id = next_order_id_++;
  std::vector<uint8_t> d_delta(8);
  std::memcpy(d_delta.data(), &order_id, 8);
  txn->UpdateDelta(district_, DistrictKey(w, d), 0, d_delta);

  // Insert ORDER and NEW-ORDER rows.
  txn->Insert(orders_, order_id, MakeRow(kOrderRow));
  txn->Insert(new_order_, order_id, MakeRow(kNewOrderRow));

  // 5..15 order lines, each: read item, stock quantity delta, insert line.
  uint32_t lines = static_cast<uint32_t>(rng_.UniformRange(5, 15));
  for (uint32_t l = 0; l < lines; ++l) {
    uint32_t i = static_cast<uint32_t>(rng_.Uniform(config_.populated_items));
    txn->Get(item_, i);
    // Stock: quantity (2B) + ytd (4B) + order/remote counts (4B) ≈ 10B,
    // plus the spec's s_dist_xx copy in the order line, not in stock.
    std::vector<uint8_t> s_delta = MakeRow(10);
    txn->UpdateDelta(stock_, StockKey(w, i), 16, s_delta);
    txn->Insert(order_line_, order_id * 16 + l, MakeRow(kOrderLineRow));
  }
}

void TpccWorkload::DoPayment(Transaction* txn) {
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(config_.warehouses));
  uint32_t d =
      static_cast<uint32_t>(rng_.Uniform(config_.districts_per_warehouse));
  uint32_t c = static_cast<uint32_t>(
      rng_.Uniform(config_.populated_customers_per_district));

  // Warehouse + district YTD deltas (8B each), customer balance delta
  // (~24B: balance, ytd_payment, payment_cnt, data timestamp), history
  // insert.
  txn->UpdateDelta(warehouse_, WarehouseKey(w), 8, MakeRow(8));
  txn->UpdateDelta(district_, DistrictKey(w, d), 8, MakeRow(8));
  txn->UpdateDelta(customer_, CustomerKey(w, d, c), 32, MakeRow(24));
  txn->Insert(history_, next_history_id_++, MakeRow(kHistoryRow));
}

void TpccWorkload::DoOrderStatus(Transaction* txn) {
  // Read-only: customer + last order + its lines.
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(config_.warehouses));
  uint32_t d =
      static_cast<uint32_t>(rng_.Uniform(config_.districts_per_warehouse));
  uint32_t c = static_cast<uint32_t>(
      rng_.Uniform(config_.populated_customers_per_district));
  txn->Get(customer_, CustomerKey(w, d, c));
  if (next_order_id_ > 1) {
    uint64_t o = 1 + rng_.Uniform(next_order_id_ - 1);
    txn->Get(orders_, o);
    for (uint32_t l = 0; l < 5; ++l) txn->Get(order_line_, o * 16 + l);
  }
}

void TpccWorkload::DoDelivery(Transaction* txn) {
  // Deliver up to 10 pending orders: order carrier delta + customer
  // balance delta per order; delete the NEW-ORDER row.
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(config_.warehouses));
  uint32_t d =
      static_cast<uint32_t>(rng_.Uniform(config_.districts_per_warehouse));
  uint32_t c = static_cast<uint32_t>(
      rng_.Uniform(config_.populated_customers_per_district));
  uint32_t delivered = 0;
  for (uint32_t attempt = 0; attempt < 10 && next_order_id_ > 1; ++attempt) {
    uint64_t o = 1 + rng_.Uniform(next_order_id_ - 1);
    if (new_order_->Get(o) == nullptr) continue;
    txn->Erase(new_order_, o);
    if (orders_->Get(o) != nullptr) {
      txn->UpdateDelta(orders_, o, 0, MakeRow(8));  // carrier id + ts
    }
    txn->UpdateDelta(customer_, CustomerKey(w, d, c), 32, MakeRow(16));
    ++delivered;
  }
  (void)delivered;
}

void TpccWorkload::DoStockLevel(Transaction* txn) {
  // Read-only: district + recent order lines + stock rows.
  uint32_t w = static_cast<uint32_t>(rng_.Uniform(config_.warehouses));
  uint32_t d =
      static_cast<uint32_t>(rng_.Uniform(config_.districts_per_warehouse));
  txn->Get(district_, DistrictKey(w, d));
  for (uint32_t n = 0; n < 20; ++n) {
    uint32_t i = static_cast<uint32_t>(rng_.Uniform(config_.populated_items));
    txn->Get(stock_, StockKey(w, i));
  }
}

}  // namespace xssd::db
