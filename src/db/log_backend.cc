#include "db/log_backend.h"

#include "common/logging.h"

namespace xssd::db {

void NoLogBackend::AppendDurable(const uint8_t* data, size_t len,
                                 std::function<void(Status)> done) {
  (void)data;
  Account(len);
  sim_->Schedule(0, [done = std::move(done)]() { done(Status::OK()); });
}

void NvdimmBackend::AppendDurable(const uint8_t* data, size_t len,
                                  std::function<void(Status)> done) {
  (void)data;
  Account(len);
  sim::SimTime stored = pm_port_.Acquire(len);
  sim_->ScheduleAt(stored + options_.persist_barrier,
                   [done = std::move(done)]() { done(Status::OK()); });
}

void NvmeLogBackend::AppendDurable(const uint8_t* data, size_t len,
                                   std::function<void(Status)> done) {
  Account(len);
  uint32_t block = driver_->block_bytes();
  uint32_t blocks = static_cast<uint32_t>((len + block - 1) / block);
  XSSD_CHECK(blocks <= lba_count_);
  if (cursor_ + blocks > lba_count_) cursor_ = 0;  // wrap the log file
  uint64_t lba = start_lba_ + cursor_;
  cursor_ += blocks;

  // Pad the tail block.
  std::vector<uint8_t> padded(static_cast<size_t>(blocks) * block, 0);
  std::copy(data, data + len, padded.begin());
  driver_->Write(lba, padded.data(), blocks,
                 [this, done = std::move(done)](Status status) mutable {
                   if (!status.ok()) {
                     done(status);
                     return;
                   }
                   driver_->Flush(std::move(done));
                 });
}

void VillarsLogBackend::AppendDurable(const uint8_t* data, size_t len,
                                      std::function<void(Status)> done) {
  Account(len);
  client_->AppendDurable(data, len, std::move(done));
}

}  // namespace xssd::db
