#ifndef XSSD_DB_LOG_MANAGER_H_
#define XSSD_DB_LOG_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/status.h"
#include "db/log_backend.h"
#include "sim/simulator.h"

namespace xssd::db {

/// \brief LogManager configuration.
struct LogManagerConfig {
  /// Group-commit trigger: the system waits for this much log before it
  /// commits (paper §6.1: 16 KB).
  uint64_t group_bytes = 16 * 1024;
  /// A flush takes everything accumulated up to this cap (the backlog a
  /// single QD1 flush can retire at once — multiple flash pages program in
  /// parallel across dies).
  uint64_t max_flush_bytes = 64 * 1024;
  /// If a partial group has waited this long, flush it anyway.
  sim::SimTime flush_timeout = sim::Ms(5);
  /// In-memory log buffer cap: appends stall (back-pressure on workers)
  /// when this much data is awaiting durability.
  uint64_t max_buffer_bytes = 256 * 1024;
};

/// \brief Write-ahead log with pipelined group commit, ERMIA style.
///
/// Workers append serialized records and register durability waiters at
/// their commit LSN, then continue with the next transaction; the manager
/// flushes `group_bytes` units through the LogBackend at queue depth 1 and
/// resolves waiters as the durable LSN advances. When the backend cannot
/// keep up, the buffer cap stalls appends — which is exactly how the
/// conventional side's latency turns into the ~200 ktxn/s throughput
/// ceiling in Figure 9.
class LogManager {
 public:
  LogManager(sim::Simulator* sim, LogBackend* backend,
             LogManagerConfig config = {});

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Can `len` more bytes be buffered right now?
  bool HasSpace(size_t len) const {
    return buffered_bytes_ + len <= config_.max_buffer_bytes;
  }

  /// Call `ready` once HasSpace(len) holds (immediately if it already does).
  void WaitForSpace(size_t len, std::function<void()> ready);

  /// Append serialized record bytes; returns the end LSN. The caller must
  /// have checked HasSpace (appends beyond the cap are still accepted but
  /// push the buffer over; workers are expected to WaitForSpace first).
  uint64_t Append(const uint8_t* data, size_t len);

  /// Call `committed` once durable_lsn >= lsn.
  void WaitDurable(uint64_t lsn, std::function<void(Status)> committed);

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t durable_lsn() const { return durable_lsn_; }
  uint64_t buffered_bytes() const { return buffered_bytes_; }
  uint64_t flushes_issued() const { return flushes_issued_; }

  LogBackend* backend() { return backend_; }

 private:
  void MaybeFlush();
  void FlushGroup(size_t len);
  void ArmTimer();
  void ResolveWaiters();
  size_t PendingBytes() const;
  void Compact();

  sim::Simulator* sim_;
  LogBackend* backend_;
  LogManagerConfig config_;

  std::vector<uint8_t> buffer_;   ///< bytes appended, not yet flushed
  size_t head_ = 0;               ///< consumed prefix of buffer_
  uint64_t next_lsn_ = 0;         ///< byte-offset LSN of the next append
  uint64_t durable_lsn_ = 0;
  uint64_t buffered_bytes_ = 0;   ///< bytes appended, not yet durable
  bool flushing_ = false;
  bool timer_armed_ = false;
  sim::SimTime oldest_pending_since_ = 0;
  uint64_t flushes_issued_ = 0;

  struct Waiter {
    uint64_t lsn;
    std::function<void(Status)> committed;
  };
  std::deque<Waiter> waiters_;  ///< commit waiters ordered by LSN

  struct SpaceWaiter {
    size_t len;
    std::function<void()> ready;
  };
  std::deque<SpaceWaiter> space_waiters_;
};

}  // namespace xssd::db

#endif  // XSSD_DB_LOG_MANAGER_H_
