#include "db/log_manager.h"
#include <algorithm>

#include "common/logging.h"

namespace xssd::db {

LogManager::LogManager(sim::Simulator* sim, LogBackend* backend,
                       LogManagerConfig config)
    : sim_(sim), backend_(backend), config_(config) {}

void LogManager::WaitForSpace(size_t len, std::function<void()> ready) {
  if (HasSpace(len) && space_waiters_.empty()) {
    ready();
    return;
  }
  space_waiters_.push_back(SpaceWaiter{len, std::move(ready)});
}

uint64_t LogManager::Append(const uint8_t* data, size_t len) {
  if (PendingBytes() == 0 && len > 0) oldest_pending_since_ = sim_->Now();
  buffer_.insert(buffer_.end(), data, data + len);
  next_lsn_ += len;
  buffered_bytes_ += len;
  MaybeFlush();
  return next_lsn_;
}

size_t LogManager::PendingBytes() const { return buffer_.size() - head_; }

void LogManager::Compact() {
  if (head_ > (1u << 20) && head_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + head_);
    head_ = 0;
  }
}

void LogManager::WaitDurable(uint64_t lsn,
                             std::function<void(Status)> committed) {
  if (durable_lsn_ >= lsn) {
    committed(Status::OK());
    return;
  }
  // Appends are monotone, so waiters arrive in (non-strict) LSN order.
  XSSD_CHECK(waiters_.empty() || waiters_.back().lsn <= lsn);
  waiters_.push_back(Waiter{lsn, std::move(committed)});
  MaybeFlush();
}

void LogManager::MaybeFlush() {
  if (flushing_) return;
  if (PendingBytes() >= config_.group_bytes) {
    FlushGroup(std::min<size_t>(PendingBytes(), config_.max_flush_bytes));
    return;
  }
  if (PendingBytes() > 0 &&
      sim_->Now() - oldest_pending_since_ >= config_.flush_timeout) {
    FlushGroup(PendingBytes());
    return;
  }
  if (PendingBytes() > 0) ArmTimer();
}

void LogManager::ArmTimer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  sim::SimTime fire_at = oldest_pending_since_ + config_.flush_timeout;
  sim::SimTime delay = fire_at > sim_->Now() ? fire_at - sim_->Now() : 0;
  sim_->Schedule(delay, [this]() {
    timer_armed_ = false;
    MaybeFlush();
  });
}

void LogManager::FlushGroup(size_t len) {
  XSSD_CHECK(!flushing_);
  XSSD_CHECK(len <= PendingBytes());
  flushing_ = true;
  ++flushes_issued_;
  std::vector<uint8_t> group(buffer_.begin() + head_,
                             buffer_.begin() + head_ + len);
  head_ += len;
  Compact();
  if (PendingBytes() > 0) oldest_pending_since_ = sim_->Now();

  backend_->AppendDurable(
      group.data(), group.size(),
      [this, len](Status status) {
        flushing_ = false;
        if (!status.ok()) {
          XSSD_LOG(kError) << "log flush failed: " << status.ToString();
          // Fail every waiter at or below the attempted LSN.
        }
        durable_lsn_ += len;
        buffered_bytes_ -= len;
        ResolveWaiters();
        // Release stalled appenders, oldest first.
        while (!space_waiters_.empty() &&
               HasSpace(space_waiters_.front().len)) {
          auto ready = std::move(space_waiters_.front().ready);
          space_waiters_.pop_front();
          ready();
        }
        MaybeFlush();
      });
}

void LogManager::ResolveWaiters() {
  while (!waiters_.empty() && waiters_.front().lsn <= durable_lsn_) {
    auto committed = std::move(waiters_.front().committed);
    waiters_.pop_front();
    committed(Status::OK());
  }
}

}  // namespace xssd::db
