#include "db/log_record.h"

#include <cstring>

#include "common/crc32.h"

namespace xssd::db {

// Wire layout: txn_id(8) table_id(4) op(1) key(8) payload_len(4) crc(4)
// then payload. CRC covers header-with-crc-zero + payload.

void SerializeLogRecord(const LogRecord& record, std::vector<uint8_t>* out) {
  size_t at = out->size();
  out->resize(at + record.SerializedSize());
  uint8_t* p = out->data() + at;
  // Layout: [0..7] txn_id, [8..11] table_id, [12] op, [13..20] key,
  // [21..24] payload_len, [25..28] crc.
  std::memcpy(p + 0, &record.txn_id, 8);
  std::memcpy(p + 8, &record.table_id, 4);
  p[12] = static_cast<uint8_t>(record.op);
  std::memcpy(p + 13, &record.key, 8);
  uint32_t len = static_cast<uint32_t>(record.payload.size());
  std::memcpy(p + 21, &len, 4);
  uint32_t zero = 0;
  std::memcpy(p + 25, &zero, 4);
  if (!record.payload.empty()) {
    std::memcpy(p + LogRecord::kHeaderBytes, record.payload.data(),
                record.payload.size());
  }
  uint32_t crc = Crc32c(p, record.SerializedSize());
  std::memcpy(p + 25, &crc, 4);
}

Result<LogRecord> ParseLogRecord(const std::vector<uint8_t>& data,
                                 size_t* offset) {
  size_t at = *offset;
  if (at + LogRecord::kHeaderBytes > data.size()) {
    return Status::OutOfRange("truncated header");
  }
  const uint8_t* p = data.data() + at;
  LogRecord record;
  std::memcpy(&record.txn_id, p + 0, 8);
  std::memcpy(&record.table_id, p + 8, 4);
  record.op = static_cast<LogOp>(p[12]);
  std::memcpy(&record.key, p + 13, 8);
  uint32_t len = 0;
  std::memcpy(&len, p + 21, 4);
  if (at + LogRecord::kHeaderBytes + len > data.size()) {
    return Status::OutOfRange("truncated payload");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, p + 25, 4);

  // Recompute with the CRC field zeroed.
  std::vector<uint8_t> image(p, p + LogRecord::kHeaderBytes + len);
  std::memset(image.data() + 25, 0, 4);
  uint32_t crc = Crc32c(image.data(), image.size());
  if (crc != stored_crc) {
    return Status::Corruption("log record CRC mismatch");
  }
  record.payload.assign(p + LogRecord::kHeaderBytes,
                        p + LogRecord::kHeaderBytes + len);
  *offset = at + LogRecord::kHeaderBytes + len;
  return record;
}

std::vector<LogRecord> ParseLogStream(const std::vector<uint8_t>& data,
                                      bool* torn) {
  std::vector<LogRecord> records;
  if (torn) *torn = false;
  size_t offset = 0;
  while (offset < data.size()) {
    Result<LogRecord> record = ParseLogRecord(data, &offset);
    if (!record.ok()) {
      if (torn) *torn = record.status().IsOutOfRange();
      break;
    }
    records.push_back(std::move(*record));
  }
  return records;
}

}  // namespace xssd::db
