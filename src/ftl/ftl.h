#ifndef XSSD_FTL_FTL_H_
#define XSSD_FTL_FTL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "flash/array.h"
#include "ftl/mapping.h"
#include "ftl/scheduler.h"
#include "ftl/wear.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/bandwidth_server.h"

namespace xssd::obs {
class FlightRecorder;
}  // namespace xssd::obs

namespace xssd::fault {
class FaultInjector;
}  // namespace xssd::fault

namespace xssd::ftl {

/// \brief FTL configuration.
struct FtlConfig {
  /// Fraction of raw capacity reserved as over-provisioning.
  double overprovision = 0.125;
  /// Data-buffer capacity in pages (the device DRAM write cache).
  uint32_t buffer_pages = 256;
  /// Background flush starts when dirty pages exceed this count.
  uint32_t flush_watermark = 64;
  /// Concurrent background writebacks (spread across dies).
  uint32_t max_writeback_inflight = 32;
  /// GC starts when the erased-block pool falls below this count.
  uint64_t gc_low_watermark = 8;
  /// Device DRAM bandwidth serving the data buffer (DDR3 on Cosmos+).
  double buffer_bytes_per_sec = 2e9;
  /// Fixed device firmware latency per buffered-write acknowledgment.
  sim::SimTime firmware_latency = sim::Us(2);
  /// Grown-bad-block program retries before the IoError is surfaced to the
  /// caller. Bounds the damage of a fault window that fails every program:
  /// past the cap the caller (destage module / host) owns the retry policy.
  uint32_t max_program_retries = 8;
  /// Wear-leveling blend weight for GC victim selection (GcTuning).
  double gc_wear_alpha = 2.0;
  /// Erase-count-spread bound that triggers cold-data migration (GcTuning).
  uint32_t gc_max_erase_spread = 16;
  /// Erased blocks held back for GC relocation (BlockAllocator reserve).
  /// Prevents host streams from draining the pool GC needs to make
  /// progress — see BlockAllocator::set_gc_reserve.
  uint64_t gc_reserved_blocks = 2;
};

/// Cumulative FTL statistics.
struct FtlStats {
  uint64_t host_writes = 0;       ///< pages written by callers
  uint64_t flash_programs = 0;    ///< pages programmed to NAND
  uint64_t gc_relocations = 0;    ///< valid pages moved by GC
  uint64_t gc_erases = 0;
  uint64_t buffer_hits = 0;       ///< reads served from the data buffer
  uint64_t bad_block_retires = 0;

  // Media-reliability escalation chain (see RefreshBlock/EscalateBlock).
  uint64_t refresh_relocations = 0;  ///< valid pages moved by scrub refresh
  uint64_t refresh_erases = 0;       ///< blocks refreshed (erase + recycle)
  uint64_t uncorrectable_reads = 0;  ///< host reads that surfaced Corruption
  uint64_t escalations = 0;          ///< escalation chains started
  uint64_t reliability_retires = 0;  ///< blocks retired without erase
  uint64_t pages_lost = 0;           ///< pages unreadable during a collect

  /// Write amplification factor observed so far. An idle device has done
  /// no amplification at all — by convention that reads 0.0, not 1.0, so a
  /// dashboard can tell "no traffic yet" from "WA exactly 1".
  double WriteAmplification() const {
    return host_writes == 0
               ? 0.0
               : static_cast<double>(flash_programs) / host_writes;
  }
};

/// What RebuildFromOob saw while scanning the spare areas.
struct RebuildReport {
  uint64_t pages_scanned = 0;        ///< programmed pages with OOB present
  uint64_t oob_decode_failures = 0;  ///< CRC or framing mismatches (skipped)
  uint64_t stale_copies = 0;         ///< candidates that lost a seq/stamp race
  uint64_t mapped = 0;               ///< lpns in the rebuilt map
};

/// \brief The Firmware layer of Figure 2: page-mapped FTL with a DRAM
/// write-back data buffer, greedy garbage collection, bad-block
/// management, and the two-class channel scheduler underneath.
///
/// Conventional writes land in the data buffer and are acknowledged
/// immediately (write-back); Flush() provides the durability barrier the
/// NVMe Flush command maps to. Destage-class writes (the fast side's ring)
/// bypass the buffer — the CMB backing memory *is* their buffer — and go
/// straight to NAND through the scheduler.
class Ftl {
 public:
  using WriteCallback = std::function<void(Status)>;
  using ReadCallback = std::function<void(Status, std::vector<uint8_t>)>;
  using FlushCallback = std::function<void(Status)>;

  Ftl(sim::Simulator* sim, flash::Array* array, FtlConfig config);

  Ftl(const Ftl&) = delete;
  Ftl& operator=(const Ftl&) = delete;

  /// Logical pages exposed to callers (raw minus over-provisioning).
  uint64_t lpn_count() const { return map_.lpn_count(); }
  uint32_t page_bytes() const { return array_->geometry().page_bytes; }

  /// Buffered page write (conventional class). `done` fires when the data
  /// is accepted into the data buffer, not when it reaches NAND.
  void WriteBuffered(uint64_t lpn, std::vector<uint8_t> data,
                     WriteCallback done);

  /// Direct page write that bypasses the buffer. `done` fires when the
  /// page is programmed. Used by the Destage module (IoClass::kDestage)
  /// and by GC internally.
  void WriteDirect(IoClass io_class, uint64_t lpn, std::vector<uint8_t> data,
                   WriteCallback done);

  /// Page read; served from the data buffer when present.
  void ReadPage(IoClass io_class, uint64_t lpn, ReadCallback done);

  /// Durability barrier: `done` fires when every page dirty at call time
  /// has been programmed.
  void Flush(FlushCallback done);

  /// Invalidate a logical page.
  void Trim(uint64_t lpn);

  /// How a block collection walk disposes of its victim.
  enum class CollectMode {
    kGc,       ///< garbage collection: crash sites + erase + recycle
    kRefresh,  ///< proactive scrub refresh: erase + recycle, dwell resets
    kRetire,   ///< escalation: relocate what reads, retire without erase
  };

  /// Proactively relocate a sealed, quiesced block's valid pages and erase
  /// it — resetting its retention dwell and read-disturb count. Degrades to
  /// retire-without-erase if any page turns out unreadable, so lost lpns
  /// keep signalling Corruption instead of silently reading zeros. Returns
  /// false (and never calls `done`) when the block is open, has programs in
  /// flight, another refresh/escalation is running, or the FTL is halted.
  bool RefreshBlock(uint64_t block, WriteCallback done);

  /// Uncorrectable-read escalation: relocate the block's still-correctable
  /// pages, then retire the block through the bad-block path without
  /// erasing it (the unreadable lpns stay mapped so host reads keep
  /// returning Corruption and can be re-fetched from a replica). Same
  /// refusal conditions as RefreshBlock.
  bool EscalateBlock(uint64_t block, WriteCallback done);

  /// In-flight NAND programs targeting `block` (scrub quiescence probe).
  uint32_t inflight_programs(uint64_t block) const {
    return inflight_programs_[block];
  }

  Scheduler& scheduler() { return scheduler_; }
  const FtlStats& stats() const { return stats_; }
  uint64_t dirty_pages() const { return dirty_count_; }
  uint64_t free_blocks() const { return allocator_.free_blocks(); }
  const PageMap& page_map() const { return map_; }
  const BlockAllocator& allocator() const { return allocator_; }
  const WearTracker& wear() const { return wear_; }

  /// \brief Reconstruct the logical→physical map from the per-page OOB
  /// records alone — the power-loss recovery path.
  ///
  /// Scans every page of every block (grown-bad blocks stay readable) and
  /// keeps, per lpn, the copy with the highest logical version `seq`,
  /// breaking ties on the physical program counter `stamp` (a GC-relocated
  /// copy carries its victim's seq but a fresher stamp, so the relocation
  /// destination wins over the not-yet-erased source). The result equals
  /// the live map (PageMap::operator==) at any quiesced point, with one
  /// documented exception: TRIM is not crash-persistent — an unmapped lpn
  /// whose flash copy still exists is resurrected.
  PageMap RebuildFromOob(RebuildReport* report = nullptr) const;

  /// Arm fault hooks. GC visits crash points `<prefix>ftl.gc.relocate`
  /// (before each relocation program) and `<prefix>ftl.gc.erase` (before
  /// the victim erase); after any crash clause fires the FTL stops
  /// initiating background work (GC, writeback) so the mid-GC state is
  /// frozen for recovery, while already-issued NAND operations complete.
  void SetFaultInjector(fault::FaultInjector* injector,
                        const std::string& site_prefix = "");

  /// Register this FTL's metrics under `prefix` + "ftl." (also wires the
  /// channel scheduler under `prefix` + "ftl.sched.").
  void SetMetrics(obs::MetricsRegistry* registry,
                  const std::string& prefix = "");

  /// Attach span tracing (nullptr detaches). Each direct write opens a
  /// flash.program span (issue → programmed, covering scheduler queueing
  /// and bad-block retries) under the ambient context.
  void SetSpans(obs::SpanRecorder* spans, const std::string& node_tag);

  /// Attach a flight recorder (nullptr detaches): block collects
  /// (GC/refresh/retire), block retirements, and uncorrectable host reads
  /// are recorded; a host-read Corruption escalation AutoDumps the ring.
  /// Entries are tagged with `node_tag` so multi-device runs stay legible.
  void SetFlightRecorder(obs::FlightRecorder* recorder,
                         const std::string& node_tag = "");

 private:
  struct BufferSlot {
    std::vector<uint8_t> data;
    uint64_t seq = 0;  ///< logical version of the buffered copy
    bool dirty = false;
    bool flushing = false;
    std::list<uint64_t>::iterator lru_pos;
  };

  /// Program `data` for `lpn` via `stream`, retrying on grown-bad blocks
  /// up to config_.max_program_retries times. `seq` is the logical write
  /// version carried in the OOB; each physical attempt gets a fresh stamp.
  /// `src_ppn == kUnmapped` maps through PageMap::Map (host/destage write);
  /// otherwise the program is a GC relocation applied via MapRelocated.
  void ProgramPage(IoClass io_class, BlockAllocator::Stream stream,
                   uint64_t lpn, uint64_t seq, uint64_t src_ppn,
                   std::vector<uint8_t> data, WriteCallback done,
                   uint32_t attempts = 0);

  /// True after a crash clause fired: stop initiating background work.
  bool Halted() const;

  /// Kick background flushing if the dirty count warrants it.
  void MaybeScheduleFlush();
  /// Write back one dirty page (LRU order). Returns false if nothing
  /// could be started.
  bool FlushOne();
  /// Admit a buffered write or queue it when the buffer is saturated.
  /// `seq` was assigned at accept time; a queued write that gets lapped by
  /// a newer in-buffer write for the same lpn is superseded on admission.
  void AdmitWrite(uint64_t lpn, uint64_t seq, std::vector<uint8_t> data,
                  WriteCallback done);
  void DrainAdmissionQueue();
  /// Resolve Flush() waiters whose target has been reached.
  void CheckFlushWaiters();

  /// Kick GC if the free pool is low.
  void MaybeStartGc();
  void GcStep();

  /// Shared guard for refresh/escalation: checks the victim is sealed and
  /// quiesced, unseals it, and starts the collection walk.
  bool StartReclaim(uint64_t block, CollectMode mode, WriteCallback done);
  /// Relocate `victim`'s valid pages then dispose of it per `mode`. The
  /// victim must already be unsealed and quiesced. In kGc mode crash sites
  /// fire and a crash freezes the walk without calling `done`; the other
  /// modes abort with Status::Aborted instead.
  void CollectBlock(uint64_t victim, CollectMode mode, WriteCallback done);

  void TouchLru(uint64_t lpn);
  void EvictIfNeeded();

  /// Refresh the dirty-page / free-block / write-amp gauges (no-op before
  /// SetMetrics).
  void UpdateGauges();
  /// Refresh the erase-count min/max/spread gauges. Linear in block count,
  /// so only called when an erase count actually changed.
  void UpdateWearGauges();

  sim::Simulator* sim_;
  flash::Array* array_;
  FtlConfig config_;
  Scheduler scheduler_;
  PageMap map_;
  BlockAllocator allocator_;
  WearTracker wear_;
  sim::BandwidthServer buffer_port_;

  std::unordered_map<uint64_t, BufferSlot> buffer_;  // lpn -> slot
  std::list<uint64_t> lru_;                          // front = most recent
  uint64_t dirty_count_ = 0;
  uint64_t flush_inflight_ = 0;

  struct FlushWaiter {
    uint64_t remaining;  // dirty+inflight pages to retire before done
    FlushCallback done;
  };
  std::vector<FlushWaiter> flush_waiters_;
  uint64_t flushed_generation_ = 0;  // pages written back so far

  struct AdmissionWaiter {
    uint64_t lpn;
    uint64_t seq;
    std::vector<uint8_t> data;
    WriteCallback done;
  };
  std::deque<AdmissionWaiter> admission_queue_;

  bool gc_running_ = false;
  /// One refresh/escalation collect at a time (determinism + bounded churn).
  bool reclaim_busy_ = false;
  /// In-flight NAND programs per block. A block is sealed when its last
  /// page is *allocated*, not when it is programmed, so a sealed block can
  /// still have programs in flight; GC must not pick such a block — the
  /// late completion would map a live page into an erased block.
  std::vector<uint32_t> inflight_programs_;
  uint64_t next_seq_ = 1;    ///< logical write versions (0 = never written)
  uint64_t next_stamp_ = 0;  ///< physical program counter (pre-incremented)
  FtlStats stats_;
  fault::FaultInjector* injector_ = nullptr;
  std::string site_prefix_;
  obs::SpanRecorder* spans_ = nullptr;
  uint16_t span_node_ = 0;
  obs::FlightRecorder* flightrec_ = nullptr;
  std::string fr_tag_;

  // Observability (null until SetMetrics).
  obs::Counter* m_host_writes_ = nullptr;
  obs::Counter* m_flash_programs_ = nullptr;
  obs::Counter* m_gc_pages_moved_ = nullptr;
  obs::Counter* m_gc_erases_ = nullptr;
  obs::Counter* m_buffer_hits_ = nullptr;
  obs::Counter* m_bad_block_retires_ = nullptr;
  obs::Counter* m_refresh_pages_moved_ = nullptr;
  obs::Counter* m_refresh_erases_ = nullptr;
  obs::Counter* m_uncorrectable_reads_ = nullptr;
  obs::Counter* m_escalations_ = nullptr;
  obs::Counter* m_reliability_retires_ = nullptr;
  obs::Counter* m_pages_lost_ = nullptr;
  obs::Gauge* m_dirty_pages_ = nullptr;
  obs::Gauge* m_free_blocks_ = nullptr;
  obs::Gauge* m_write_amp_ = nullptr;
  obs::Gauge* m_erase_min_ = nullptr;
  obs::Gauge* m_erase_max_ = nullptr;
  obs::Gauge* m_erase_spread_ = nullptr;
};

}  // namespace xssd::ftl

#endif  // XSSD_FTL_FTL_H_
