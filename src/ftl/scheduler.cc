#include "ftl/scheduler.h"

#include "common/logging.h"

namespace xssd::ftl {

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kNeutral:
      return "neutral";
    case SchedulingPolicy::kDestagePriority:
      return "destage-priority";
    case SchedulingPolicy::kConventionalPriority:
      return "conventional-priority";
  }
  return "?";
}

Scheduler::Scheduler(sim::Simulator* sim, flash::Array* array,
                     SchedulingPolicy policy)
    : sim_(sim), array_(array), policy_(policy) {
  channels_.resize(array_->geometry().channels);
}

void Scheduler::SetMetrics(obs::MetricsRegistry* registry,
                           const std::string& prefix) {
  m_issued_[0] = registry->GetCounter(prefix + "ftl.sched.conv.issued");
  m_issued_[1] = registry->GetCounter(prefix + "ftl.sched.destage.issued");
  m_completed_bytes_[0] =
      registry->GetCounter(prefix + "ftl.sched.conv.completed_bytes");
  m_completed_bytes_[1] =
      registry->GetCounter(prefix + "ftl.sched.destage.completed_bytes");
  m_queued_[0] = registry->GetGauge(prefix + "ftl.sched.conv.queued");
  m_queued_[1] = registry->GetGauge(prefix + "ftl.sched.destage.queued");
  m_wait_ns_[0] = registry->GetCounter(prefix + "ftl.sched.conv.wait_ns");
  m_wait_ns_[1] = registry->GetCounter(prefix + "ftl.sched.destage.wait_ns");
  m_inflight_ = registry->GetGauge(prefix + "ftl.sched.inflight");
}

void Scheduler::Enqueue(uint32_t channel, Op op) {
  op.seq = next_seq_++;
  op.enqueued = sim_->Now();
  int k = static_cast<int>(op.io_class);
  queued_[k]++;
  if (m_queued_[k]) m_queued_[k]->Set(static_cast<double>(queued_[k]));
  channels_[channel].queue[k].push_back(std::move(op));
  Dispatch(channel);
}

int Scheduler::FindEligible(uint32_t channel,
                            const std::deque<Op>& queue) const {
  for (size_t i = 0; i < queue.size(); ++i) {
    if (array_->DieIdle(channel, queue[i].die)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Scheduler::Dispatch(uint32_t channel) {
  ChannelState& state = channels_[channel];
  while (!state.bus_busy) {
    const std::deque<Op>& conv = state.queue[0];
    const std::deque<Op>& dest = state.queue[1];
    int conv_idx = FindEligible(channel, conv);
    int dest_idx = FindEligible(channel, dest);
    if (conv_idx < 0 && dest_idx < 0) return;

    int pick_class = 0;
    switch (policy_) {
      case SchedulingPolicy::kNeutral:
        // A traditional device: arrival order, no class awareness. Under
        // overload each class degrades in proportion to its demand.
        if (conv_idx >= 0 && dest_idx >= 0) {
          pick_class = conv[conv_idx].seq < dest[dest_idx].seq ? 0 : 1;
        } else {
          pick_class = conv_idx >= 0 ? 0 : 1;
        }
        break;
      case SchedulingPolicy::kDestagePriority:
        // Conventional ops ride only in the gaps (Opportunistic Destaging).
        pick_class = dest_idx >= 0 ? 1 : 0;
        break;
      case SchedulingPolicy::kConventionalPriority:
        pick_class = conv_idx >= 0 ? 0 : 1;
        break;
    }
    Issue(channel, pick_class, pick_class == 0 ? conv_idx : dest_idx);
  }
}

void Scheduler::Issue(uint32_t channel, int io_class, size_t index) {
  ChannelState& state = channels_[channel];
  Op op = std::move(state.queue[io_class][index]);
  state.queue[io_class].erase(state.queue[io_class].begin() + index);
  queued_[io_class]--;
  ++inflight_;
  ++issued_[io_class];
  uint64_t waited = static_cast<uint64_t>(sim_->Now() - op.enqueued);
  wait_ns_[io_class] += waited;
  if (m_queued_[io_class]) {
    m_queued_[io_class]->Set(static_cast<double>(queued_[io_class]));
  }
  if (m_wait_ns_[io_class]) m_wait_ns_[io_class]->Add(waited);
  if (m_issued_[io_class]) m_issued_[io_class]->Add();
  if (m_inflight_) m_inflight_->Set(static_cast<double>(inflight_));
  if (op.uses_bus) state.bus_busy = true;

  auto bus_released = [this, channel, uses_bus = op.uses_bus]() {
    if (uses_bus) {
      channels_[channel].bus_busy = false;
      Dispatch(channel);
    }
  };
  auto completed = [this, channel, io_class, bytes = op.bytes]() {
    --inflight_;
    completed_bytes_[io_class] += bytes;
    if (m_inflight_) m_inflight_->Set(static_cast<double>(inflight_));
    if (m_completed_bytes_[io_class]) {
      m_completed_bytes_[io_class]->Add(bytes);
    }
    Dispatch(channel);
  };
  op.run(std::move(bus_released), std::move(completed));
}

void Scheduler::Program(IoClass io_class, const flash::Address& addr,
                        std::vector<uint8_t> data, std::vector<uint8_t> oob,
                        flash::Array::ProgramCallback done) {
  Op op;
  op.io_class = io_class;
  op.die = addr.die;
  op.bytes = array_->geometry().page_bytes;
  op.uses_bus = true;
  op.run = [this, addr, data = std::move(data), oob = std::move(oob),
            done = std::move(done)](std::function<void()> bus_released,
                                    std::function<void()> completed) mutable {
    array_->Program(addr, std::move(data), std::move(oob),
                    [completed = std::move(completed),
                     done = std::move(done)](Status status) mutable {
                      completed();
                      done(status);
                    },
                    std::move(bus_released));
  };
  Enqueue(addr.channel, std::move(op));
}

void Scheduler::Read(IoClass io_class, const flash::Address& addr,
                     flash::Array::ReadCallback done) {
  Op op;
  op.io_class = io_class;
  op.die = addr.die;
  op.bytes = array_->geometry().page_bytes;
  // Reads sense first and stream out afterwards; the array serializes the
  // outbound transfer on the bus internally. Gate on the die only.
  op.uses_bus = false;
  op.run = [this, addr, done = std::move(done)](
               std::function<void()> bus_released,
               std::function<void()> completed) mutable {
    bus_released();
    array_->Read(addr, [completed = std::move(completed),
                        done = std::move(done)](
                           Status status,
                           std::vector<uint8_t> data) mutable {
      completed();
      done(status, std::move(data));
    });
  };
  Enqueue(addr.channel, std::move(op));
}

void Scheduler::Erase(IoClass io_class, const flash::Address& addr,
                      flash::Array::EraseCallback done) {
  Op op;
  op.io_class = io_class;
  op.die = addr.die;
  op.bytes = 0;
  op.uses_bus = false;
  op.run = [this, addr, done = std::move(done)](
               std::function<void()> bus_released,
               std::function<void()> completed) mutable {
    bus_released();
    array_->Erase(addr, [completed = std::move(completed),
                         done = std::move(done)](Status status) mutable {
      completed();
      done(status);
    });
  };
  Enqueue(addr.channel, std::move(op));
}

}  // namespace xssd::ftl
