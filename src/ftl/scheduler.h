#ifndef XSSD_FTL_SCHEDULER_H_
#define XSSD_FTL_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "flash/array.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace xssd::ftl {

/// Source class of a flash operation. Conventional traffic comes from the
/// block interface / data buffer; destage traffic is the fast side's ring
/// being moved into NAND (paper §4.3).
enum class IoClass {
  kConventional = 0,
  kDestage = 1,
};

/// Destage scheduling modes (paper §4.3): Neutral serves the two classes
/// in arrival order (a traditional device); the priority modes implement
/// *Opportunistic Destaging* — low-priority requests are only placed in
/// the "gaps" where a channel has nothing schedulable from the
/// high-priority class.
enum class SchedulingPolicy {
  kNeutral = 0,
  kDestagePriority = 1,
  kConventionalPriority = 2,
};

const char* SchedulingPolicyName(SchedulingPolicy policy);

/// \brief Low-level channel scheduler: the only component that talks to
/// the flash array. It arbitrates the per-channel bus — the contended
/// resource on a write-heavy device — and respects die busy times, so a
/// page transfer for one die overlaps another die's program.
///
/// Implementing the Villars priorities here and nowhere else mirrors the
/// paper's claim that "other than in the scheduler, practically no
/// additional change is necessary to the Storage Controller".
class Scheduler {
 public:
  Scheduler(sim::Simulator* sim, flash::Array* array,
            SchedulingPolicy policy = SchedulingPolicy::kNeutral);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void set_policy(SchedulingPolicy policy) { policy_ = policy; }
  SchedulingPolicy policy() const { return policy_; }

  /// Enqueue operations; completion callbacks fire when the array finishes.
  /// `oob` rides along with the page data and is stored in the spare area.
  void Program(IoClass io_class, const flash::Address& addr,
               std::vector<uint8_t> data, std::vector<uint8_t> oob,
               flash::Array::ProgramCallback done);
  void Program(IoClass io_class, const flash::Address& addr,
               std::vector<uint8_t> data, flash::Array::ProgramCallback done) {
    Program(io_class, addr, std::move(data), {}, std::move(done));
  }
  void Read(IoClass io_class, const flash::Address& addr,
            flash::Array::ReadCallback done);
  void Erase(IoClass io_class, const flash::Address& addr,
             flash::Array::EraseCallback done);

  /// Operations admitted but not yet completed.
  uint64_t inflight() const { return inflight_; }
  uint64_t queued(IoClass io_class) const {
    return queued_[static_cast<int>(io_class)];
  }

  /// Bytes completed per class (the bandwidth accounting of Figure 12).
  uint64_t completed_bytes(IoClass io_class) const {
    return completed_bytes_[static_cast<int>(io_class)];
  }

  /// Cumulative queue-wait (enqueue → issue) per class, in sim ns. The
  /// per-class skew is the channel-contention signal: GC relocation
  /// traffic rides the conventional queue, so a GC storm shows up as
  /// destage wait growing while conventional stays flat (or vice versa,
  /// depending on policy).
  uint64_t wait_ns(IoClass io_class) const {
    return wait_ns_[static_cast<int>(io_class)];
  }
  uint64_t issued(IoClass io_class) const {
    return issued_[static_cast<int>(io_class)];
  }
  void ResetStats() {
    completed_bytes_[0] = completed_bytes_[1] = 0;
    wait_ns_[0] = wait_ns_[1] = 0;
    issued_[0] = issued_[1] = 0;
  }

  /// Register this scheduler's metrics under `prefix` + "ftl.sched.".
  void SetMetrics(obs::MetricsRegistry* registry,
                  const std::string& prefix = "");

 private:
  struct Op {
    IoClass io_class;
    uint32_t die;        ///< die index within the channel
    uint64_t seq;        ///< global arrival order (Neutral policy)
    uint64_t bytes;
    sim::SimTime enqueued = 0;  ///< arrival time, for wait accounting
    bool uses_bus;       ///< programs hold the bus for their transfer
    /// run(bus_released, completed)
    std::function<void(std::function<void()>, std::function<void()>)> run;
  };
  struct ChannelState {
    std::deque<Op> queue[2];  // indexed by IoClass
    bool bus_busy = false;
    bool neutral_toggle = false;
  };

  void Enqueue(uint32_t channel, Op op);

  /// Issue as much as the channel allows right now.
  void Dispatch(uint32_t channel);

  /// Index into the class queue of the first op whose die can start now,
  /// or -1.
  int FindEligible(uint32_t channel, const std::deque<Op>& queue) const;

  /// Pop & issue queue[k][index]; returns false if the bus is held.
  void Issue(uint32_t channel, int io_class, size_t index);

  sim::Simulator* sim_;
  flash::Array* array_;
  SchedulingPolicy policy_;
  std::vector<ChannelState> channels_;
  uint64_t next_seq_ = 0;
  uint64_t inflight_ = 0;
  uint64_t queued_[2] = {0, 0};
  uint64_t completed_bytes_[2] = {0, 0};
  uint64_t wait_ns_[2] = {0, 0};
  uint64_t issued_[2] = {0, 0};

  // Observability (null until SetMetrics; indexed by IoClass).
  obs::Counter* m_issued_[2] = {nullptr, nullptr};
  obs::Counter* m_completed_bytes_[2] = {nullptr, nullptr};
  obs::Counter* m_wait_ns_[2] = {nullptr, nullptr};
  obs::Gauge* m_queued_[2] = {nullptr, nullptr};
  obs::Gauge* m_inflight_ = nullptr;
};

}  // namespace xssd::ftl

#endif  // XSSD_FTL_SCHEDULER_H_
