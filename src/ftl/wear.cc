#include "ftl/wear.h"

#include <algorithm>
#include <limits>

namespace xssd::ftl {

uint32_t WearTracker::MinCount() const {
  uint32_t best = std::numeric_limits<uint32_t>::max();
  for (uint64_t b = 0; b < counts_.size(); ++b) {
    if (!retired_[b] && counts_[b] < best) best = counts_[b];
  }
  return best == std::numeric_limits<uint32_t>::max() ? 0 : best;
}

uint32_t WearTracker::MaxCount() const {
  uint32_t best = 0;
  for (uint64_t b = 0; b < counts_.size(); ++b) {
    if (!retired_[b] && counts_[b] > best) best = counts_[b];
  }
  return best;
}

uint64_t SelectGcVictim(const std::deque<uint64_t>& sealed,
                        const PageMap& map, const WearTracker& wear,
                        const GcTuning& tuning) {
  if (sealed.empty()) return kUnmapped;
  const uint32_t min_erase = wear.MinCount();

  if (tuning.max_erase_spread > 0 &&
      wear.Spread() >= tuning.max_erase_spread) {
    // Cold-data migration: the least-worn sealed block holds the data that
    // never gets invalidated; freeing it is the only way min_erase rises.
    uint64_t victim = kUnmapped;
    uint32_t best_erase = 0;
    uint32_t best_valid = 0;
    for (uint64_t candidate : sealed) {
      uint32_t erase = wear.count(candidate);
      uint32_t valid = map.ValidCount(candidate);
      if (victim == kUnmapped || erase < best_erase ||
          (erase == best_erase && valid < best_valid)) {
        victim = candidate;
        best_erase = erase;
        best_valid = valid;
      }
    }
    return victim;
  }

  uint64_t victim = kUnmapped;
  double best_score = 0;
  // The wear penalty is capped just below one full block of relocation
  // cost: however worn a block is, a block holding ANY garbage must still
  // outrank a garbage-free one. Uncapped, a few dozen erases of skew make
  // the wear term swamp the valid count entirely and greedy GC starts
  // relocating fully-valid cold blocks — write amplification explodes.
  const double penalty_cap =
      static_cast<double>(map.geometry().pages_per_block) - 1.0;
  for (uint64_t candidate : sealed) {
    double penalty =
        tuning.wear_alpha *
        static_cast<double>(wear.count(candidate) - min_erase);
    double score = static_cast<double>(map.ValidCount(candidate)) +
                   std::min(penalty, penalty_cap);
    if (victim == kUnmapped || score < best_score) {
      victim = candidate;
      best_score = score;
      if (best_score == 0) break;  // free victim, can't do better
    }
  }
  return victim;
}

}  // namespace xssd::ftl
