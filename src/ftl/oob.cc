#include "ftl/oob.h"

#include "common/crc32.h"

namespace xssd::ftl {

namespace {

void PutU64(std::vector<uint8_t>& out, size_t at, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[at + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

uint64_t GetU64(const std::vector<uint8_t>& in, size_t at) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(in[at + i]) << (8 * i);
  }
  return value;
}

}  // namespace

std::vector<uint8_t> EncodeOob(const OobMeta& meta) {
  std::vector<uint8_t> raw(kOobRecordBytes, 0);
  PutU64(raw, 0, meta.lpn);
  PutU64(raw, 8, meta.seq);
  PutU64(raw, 16, meta.stamp);
  uint32_t crc = Crc32c(raw.data(), 24);
  for (int i = 0; i < 4; ++i) {
    raw[24 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return raw;
}

bool DecodeOob(const std::vector<uint8_t>& raw, OobMeta* out) {
  if (raw.size() < kOobRecordBytes) return false;
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(raw[24 + i]) << (8 * i);
  }
  if (Crc32c(raw.data(), 24) != stored) return false;
  out->lpn = GetU64(raw, 0);
  out->seq = GetU64(raw, 8);
  out->stamp = GetU64(raw, 16);
  return true;
}

}  // namespace xssd::ftl
