#include "ftl/ftl.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "ftl/oob.h"
#include "obs/flightrec.h"

namespace xssd::ftl {

namespace {

BlockAllocator::Stream StreamFor(IoClass io_class) {
  return io_class == IoClass::kDestage ? BlockAllocator::kDestageStream
                                       : BlockAllocator::kConventionalStream;
}

}  // namespace

Ftl::Ftl(sim::Simulator* sim, flash::Array* array, FtlConfig config)
    : sim_(sim),
      array_(array),
      config_(config),
      scheduler_(sim, array),
      map_(array->geometry(),
           static_cast<uint64_t>(
               static_cast<double>(array->geometry().pages()) *
               (1.0 - config.overprovision))),
      allocator_(array->geometry()),
      wear_(array->geometry().blocks()),
      buffer_port_(sim, config.buffer_bytes_per_sec),
      inflight_programs_(array->geometry().blocks(), 0) {
  allocator_.set_gc_reserve(config_.gc_reserved_blocks);
}

void Ftl::SetFaultInjector(fault::FaultInjector* injector,
                           const std::string& site_prefix) {
  injector_ = injector;
  site_prefix_ = site_prefix;
}

bool Ftl::Halted() const { return injector_ != nullptr && injector_->crashed(); }

void Ftl::SetMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) {
  m_host_writes_ = registry->GetCounter(prefix + "ftl.host_writes");
  m_flash_programs_ = registry->GetCounter(prefix + "ftl.flash_programs");
  m_gc_pages_moved_ = registry->GetCounter(prefix + "ftl.gc.pages_moved");
  m_gc_erases_ = registry->GetCounter(prefix + "ftl.gc.erases");
  m_buffer_hits_ = registry->GetCounter(prefix + "ftl.buffer_hits");
  m_bad_block_retires_ =
      registry->GetCounter(prefix + "ftl.bad_block_retires");
  m_refresh_pages_moved_ =
      registry->GetCounter(prefix + "reliability.refresh_pages_moved");
  m_refresh_erases_ =
      registry->GetCounter(prefix + "reliability.refresh_erases");
  m_uncorrectable_reads_ =
      registry->GetCounter(prefix + "reliability.uncorrectable_reads");
  m_escalations_ = registry->GetCounter(prefix + "reliability.escalations");
  m_reliability_retires_ =
      registry->GetCounter(prefix + "reliability.retired_blocks");
  m_pages_lost_ = registry->GetCounter(prefix + "reliability.pages_lost");
  m_dirty_pages_ = registry->GetGauge(prefix + "ftl.dirty_pages");
  m_free_blocks_ = registry->GetGauge(prefix + "ftl.free_blocks");
  m_write_amp_ = registry->GetGauge(prefix + "ftl.write_amp");
  m_erase_min_ = registry->GetGauge(prefix + "ftl.erase_count_min");
  m_erase_max_ = registry->GetGauge(prefix + "ftl.erase_count_max");
  m_erase_spread_ = registry->GetGauge(prefix + "ftl.erase_count_spread");
  scheduler_.SetMetrics(registry, prefix);
  UpdateGauges();
  UpdateWearGauges();
}

void Ftl::SetSpans(obs::SpanRecorder* spans, const std::string& node_tag) {
  spans_ = spans;
  span_node_ = spans ? spans->InternNode(node_tag) : 0;
}

void Ftl::SetFlightRecorder(obs::FlightRecorder* recorder,
                            const std::string& node_tag) {
  flightrec_ = recorder;
  fr_tag_ = node_tag.empty() ? std::string() : node_tag + " ";
}

void Ftl::UpdateGauges() {
  if (!m_dirty_pages_) return;
  m_dirty_pages_->Set(static_cast<double>(dirty_count_));
  m_free_blocks_->Set(static_cast<double>(allocator_.free_blocks()));
  m_write_amp_->Set(stats_.WriteAmplification());
}

void Ftl::UpdateWearGauges() {
  if (!m_erase_spread_) return;
  uint32_t min = wear_.MinCount();
  uint32_t max = wear_.MaxCount();
  m_erase_min_->Set(static_cast<double>(min));
  m_erase_max_->Set(static_cast<double>(max));
  m_erase_spread_->Set(static_cast<double>(max - min));
}

void Ftl::TouchLru(uint64_t lpn) {
  auto it = buffer_.find(lpn);
  XSSD_CHECK(it != buffer_.end());
  lru_.erase(it->second.lru_pos);
  lru_.push_front(lpn);
  it->second.lru_pos = lru_.begin();
}

void Ftl::EvictIfNeeded() {
  while (buffer_.size() > config_.buffer_pages && !lru_.empty()) {
    // Evict the least-recently-used *clean* page; dirty pages leave the
    // buffer only through writeback.
    bool evicted = false;
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      auto it = buffer_.find(*rit);
      if (!it->second.dirty && !it->second.flushing) {
        lru_.erase(std::next(rit).base());
        buffer_.erase(it);
        evicted = true;
        break;
      }
    }
    if (!evicted) break;  // everything dirty; flushing will drain it
  }
}

void Ftl::WriteBuffered(uint64_t lpn, std::vector<uint8_t> data,
                        WriteCallback done) {
  XSSD_CHECK(lpn < map_.lpn_count());
  data.resize(page_bytes(), 0);
  ++stats_.host_writes;
  if (m_host_writes_) m_host_writes_->Add();
  // The logical version is assigned at accept so that writes queued behind
  // back-pressure keep their arrival order relative to later writes.
  uint64_t seq = next_seq_++;

  // Device-side back-pressure: when the data buffer is all dirty, new
  // writes wait for writeback to free a slot (the host sees a slower ack,
  // exactly like a saturated real device).
  if (dirty_count_ + flush_inflight_ >= config_.buffer_pages &&
      buffer_.find(lpn) == buffer_.end()) {
    admission_queue_.push_back(
        AdmissionWaiter{lpn, seq, std::move(data), std::move(done)});
    MaybeScheduleFlush();
    return;
  }
  AdmitWrite(lpn, seq, std::move(data), std::move(done));
}

void Ftl::AdmitWrite(uint64_t lpn, uint64_t seq, std::vector<uint8_t> data,
                     WriteCallback done) {
  auto it = buffer_.find(lpn);
  if (it == buffer_.end()) {
    lru_.push_front(lpn);
    BufferSlot slot;
    slot.data = std::move(data);
    slot.seq = seq;
    slot.dirty = true;
    slot.lru_pos = lru_.begin();
    buffer_.emplace(lpn, std::move(slot));
    ++dirty_count_;
  } else if (seq < it->second.seq) {
    // This write waited in the admission queue while a newer write for the
    // same lpn went straight into the buffer; its data is already
    // superseded. Acknowledge without clobbering the newer copy.
  } else {
    it->second.data = std::move(data);
    it->second.seq = seq;
    if (!it->second.dirty) {
      it->second.dirty = true;
      ++dirty_count_;
    }
    TouchLru(lpn);
  }
  UpdateGauges();
  EvictIfNeeded();
  MaybeScheduleFlush();

  // Acknowledge once the data has crossed the device DRAM port plus a
  // small firmware cost — the device-visible latency of a cached write.
  sim::SimTime ack = buffer_port_.Acquire(page_bytes());
  sim_->ScheduleAt(ack + config_.firmware_latency,
                   [done = std::move(done)]() { done(Status::OK()); });
}

void Ftl::WriteDirect(IoClass io_class, uint64_t lpn,
                      std::vector<uint8_t> data, WriteCallback done) {
  XSSD_CHECK(lpn < map_.lpn_count());
  data.resize(page_bytes(), 0);
  ++stats_.host_writes;
  if (m_host_writes_) m_host_writes_->Add();
  uint64_t seq = next_seq_++;
  // A direct write supersedes any buffered copy.
  auto it = buffer_.find(lpn);
  if (it != buffer_.end()) {
    if (it->second.dirty) --dirty_count_;
    lru_.erase(it->second.lru_pos);
    buffer_.erase(it);
    UpdateGauges();
  }
  if (spans_) {
    // Issue → programmed, including scheduler queueing and bad-block
    // retries. GC's internal WriteDirect calls have no ambient request
    // context and record never-joined orphans.
    obs::SpanContext span = spans_->StartSpan(obs::Stage::kFlashProgram,
                                              span_node_, spans_->current());
    obs::SpanRecorder* spans = spans_;
    done = [spans, span, done = std::move(done)](Status status) {
      spans->EndSpan(span);
      done(status);
    };
  }
  ProgramPage(io_class, StreamFor(io_class), lpn, seq, kUnmapped,
              std::move(data), std::move(done));
}

void Ftl::ProgramPage(IoClass io_class, BlockAllocator::Stream stream,
                      uint64_t lpn, uint64_t seq, uint64_t src_ppn,
                      std::vector<uint8_t> data, WriteCallback done,
                      uint32_t attempts) {
  Result<flash::Address> addr = allocator_.AllocatePage(stream);
  if (!addr.ok()) {
    // Out of erased blocks: force a GC pass, then retry.
    MaybeStartGc();
    if (!gc_running_) {
      done(Status::ResourceExhausted("device full: no erased blocks"));
      return;
    }
    sim_->Schedule(sim::Us(100), [this, io_class, stream, lpn, seq, src_ppn,
                                  data = std::move(data),
                                  done = std::move(done), attempts]() mutable {
      ProgramPage(io_class, stream, lpn, seq, src_ppn, std::move(data),
                  std::move(done), attempts);
    });
    return;
  }
  flash::Address target = *addr;
  uint64_t ppn = flash::PageIndex(array_->geometry(), target);
  // Every physical program carries {lpn, seq, stamp} in the spare area —
  // the recovery record. The stamp is fresh per attempt so a relocated
  // copy always outranks its source under equal seq.
  uint64_t stamp = ++next_stamp_;
  std::vector<uint8_t> oob = EncodeOob(OobMeta{lpn, seq, stamp});
  ++inflight_programs_[flash::BlockIndex(array_->geometry(), target)];
  scheduler_.Program(
      io_class, target, data, std::move(oob),
      [this, io_class, stream, lpn, seq, stamp, src_ppn, ppn, target, data,
       attempts, done = std::move(done)](Status status) mutable {
        --inflight_programs_[flash::BlockIndex(array_->geometry(), target)];
        if (status.IsIoError()) {
          // Grown bad block: retire it and retry elsewhere (paper §7.1:
          // "handled internally by picking a new block to write").
          uint64_t block = flash::BlockIndex(array_->geometry(), target);
          allocator_.MarkBad(block);
          wear_.Retire(block);
          UpdateWearGauges();
          ++stats_.bad_block_retires;
          if (m_bad_block_retires_) m_bad_block_retires_->Add();
          if (attempts + 1 >= config_.max_program_retries) {
            // A fault window is failing every program; stop burning blocks
            // and let the caller apply its own retry/backoff policy.
            done(status);
            return;
          }
          ProgramPage(io_class, stream, lpn, seq, src_ppn, std::move(data),
                      std::move(done), attempts + 1);
          return;
        }
        if (!status.ok()) {
          done(status);
          return;
        }
        ++stats_.flash_programs;
        if (m_flash_programs_) m_flash_programs_->Add();
        if (src_ppn == kUnmapped) {
          // Host/destage write: applies unless a copy outranking it under
          // the (seq, stamp) recovery order completed first (out-of-order
          // die completions, duplicate writebacks of one version).
          map_.Map(lpn, ppn, seq, stamp);
        } else {
          // GC/scrub relocation: applies while the source (or a same-seq,
          // older-stamp duplicate of it) is the live copy; a host rewrite
          // to a newer version mid-flight makes this a dead page.
          map_.MapRelocated(lpn, src_ppn, ppn, seq, stamp);
        }
        UpdateGauges();
        MaybeStartGc();
        done(Status::OK());
      });
}

void Ftl::ReadPage(IoClass io_class, uint64_t lpn, ReadCallback done) {
  XSSD_CHECK(lpn < map_.lpn_count());
  auto it = buffer_.find(lpn);
  if (it != buffer_.end()) {
    ++stats_.buffer_hits;
    if (m_buffer_hits_) m_buffer_hits_->Add();
    TouchLru(lpn);
    std::vector<uint8_t> copy = it->second.data;
    sim::SimTime at = buffer_port_.Acquire(page_bytes());
    sim_->ScheduleAt(
        at + config_.firmware_latency,
        [copy = std::move(copy), done = std::move(done)]() mutable {
          done(Status::OK(), std::move(copy));
        });
    return;
  }
  uint64_t ppn = map_.Lookup(lpn);
  if (ppn == kUnmapped) {
    // Unwritten page reads as zeros, like a fresh namespace.
    sim_->Schedule(config_.firmware_latency,
                   [len = page_bytes(), done = std::move(done)]() {
                     done(Status::OK(), std::vector<uint8_t>(len, 0));
                   });
    return;
  }
  flash::Address addr = flash::AddressOfPage(array_->geometry(), ppn);
  scheduler_.Read(
      io_class, addr,
      [this, ppn, done = std::move(done)](Status status,
                                          std::vector<uint8_t> data) mutable {
        if (status.IsCorruption()) {
          // Retry-ladder exhaustion reached the host path. Start the
          // escalation chain in the background — relocate what still reads,
          // retire the block — while the Corruption propagates so the
          // caller can re-fetch the lost range from a replica.
          ++stats_.uncorrectable_reads;
          if (m_uncorrectable_reads_) m_uncorrectable_reads_->Add();
          uint64_t block = ppn / array_->geometry().pages_per_block;
          if (flightrec_ != nullptr) {
            flightrec_->Record(sim_->Now(), "reliability",
                               fr_tag_ + "uncorrectable host read ppn=" +
                                   std::to_string(ppn) + ", escalating block " +
                                   std::to_string(block));
          }
          if (EscalateBlock(block, [](Status) {})) {
            ++stats_.escalations;
            if (m_escalations_) m_escalations_->Add();
          }
          if (flightrec_ != nullptr) {
            flightrec_->AutoDump("Corruption escalation on host read");
          }
        }
        done(status, std::move(data));
      });
}

void Ftl::MaybeScheduleFlush() {
  if (Halted()) return;
  while (flush_inflight_ < config_.max_writeback_inflight &&
         (dirty_count_ > config_.flush_watermark ||
          !admission_queue_.empty() || !flush_waiters_.empty())) {
    if (!FlushOne()) break;
  }
}

bool Ftl::FlushOne() {
  // Oldest dirty page first.
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    auto it = buffer_.find(*rit);
    if (!it->second.dirty || it->second.flushing) continue;
    uint64_t lpn = *rit;
    it->second.flushing = true;
    it->second.dirty = false;
    --dirty_count_;
    ++flush_inflight_;
    UpdateGauges();
    std::vector<uint8_t> data = it->second.data;
    uint64_t seq = it->second.seq;
    ProgramPage(IoClass::kConventional, BlockAllocator::kConventionalStream,
                lpn, seq, kUnmapped, std::move(data),
                [this, lpn](Status status) {
                  auto slot = buffer_.find(lpn);
                  if (slot != buffer_.end()) slot->second.flushing = false;
                  --flush_inflight_;
                  ++flushed_generation_;
                  if (!status.ok()) {
                    XSSD_LOG(kWarning)
                        << "writeback of lpn " << lpn
                        << " failed: " << status.ToString();
                  }
                  CheckFlushWaiters();
                  EvictIfNeeded();
                  DrainAdmissionQueue();
                  MaybeScheduleFlush();
                });
    return true;
  }
  return false;
}

void Ftl::DrainAdmissionQueue() {
  while (!admission_queue_.empty() &&
         dirty_count_ + flush_inflight_ < config_.buffer_pages) {
    AdmissionWaiter waiter = std::move(admission_queue_.front());
    admission_queue_.pop_front();
    AdmitWrite(waiter.lpn, waiter.seq, std::move(waiter.data),
               std::move(waiter.done));
  }
}

void Ftl::CheckFlushWaiters() {
  auto it = flush_waiters_.begin();
  while (it != flush_waiters_.end()) {
    if (flushed_generation_ >= it->remaining) {
      FlushCallback done = std::move(it->done);
      it = flush_waiters_.erase(it);
      done(Status::OK());
    } else {
      ++it;
    }
  }
}

void Ftl::Flush(FlushCallback done) {
  if (dirty_count_ == 0 && flush_inflight_ == 0) {
    sim_->Schedule(config_.firmware_latency, [done = std::move(done)]() {
      done(Status::OK());
    });
    return;
  }
  FlushWaiter waiter;
  waiter.remaining = flushed_generation_ + dirty_count_ + flush_inflight_;
  waiter.done = std::move(done);
  flush_waiters_.push_back(std::move(waiter));
  MaybeScheduleFlush();
}

void Ftl::Trim(uint64_t lpn) {
  XSSD_CHECK(lpn < map_.lpn_count());
  auto it = buffer_.find(lpn);
  if (it != buffer_.end()) {
    if (it->second.dirty) --dirty_count_;
    lru_.erase(it->second.lru_pos);
    buffer_.erase(it);
    UpdateGauges();
  }
  map_.Unmap(lpn);
}

void Ftl::MaybeStartGc() {
  if (gc_running_ || Halted()) return;
  if (allocator_.free_blocks() >= config_.gc_low_watermark) return;
  gc_running_ = true;
  GcStep();
}

void Ftl::GcStep() {
  if (Halted()) {
    gc_running_ = false;
    return;
  }
  if (allocator_.free_blocks() >= config_.gc_low_watermark * 2 ||
      allocator_.sealed_blocks().empty()) {
    gc_running_ = false;
    return;
  }
  GcTuning tuning{config_.gc_wear_alpha, config_.gc_max_erase_spread};
  // Only quiesced blocks are candidates: a sealed block with programs
  // still in flight could gain a valid page after GC's walk passed it.
  std::deque<uint64_t> candidates;
  uint32_t min_candidate_erase = std::numeric_limits<uint32_t>::max();
  for (uint64_t b : allocator_.sealed_blocks()) {
    if (inflight_programs_[b] != 0) continue;
    candidates.push_back(b);
    min_candidate_erase = std::min(min_candidate_erase, wear_.count(b));
  }
  // Emergency cold-migration helps only while the least-worn candidate IS
  // the wear floor: erasing it raises the device minimum. Once the floor
  // moves to a free or write-point block, migrating sealed blocks cannot
  // close the spread — it just cycles fully-valid data between blocks,
  // burning erases forever (each migration erase keeps the spread open).
  if (tuning.max_erase_spread > 0 &&
      wear_.Spread() >= tuning.max_erase_spread &&
      min_candidate_erase > wear_.MinCount()) {
    tuning.max_erase_spread = 0;  // fall back to blended-greedy selection
  }
  uint64_t victim = SelectGcVictim(candidates, map_, wear_, tuning);
  if (victim == kUnmapped) {
    // Every sealed block is still quiescing; the pending completions call
    // MaybeStartGc and re-trigger a pass once their blocks settle.
    gc_running_ = false;
    return;
  }
  bool wear_emergency = tuning.max_erase_spread > 0 &&
                        wear_.Spread() >= tuning.max_erase_spread;
  if (!wear_emergency &&
      map_.ValidCount(victim) == array_->geometry().pages_per_block) {
    // The wear-blended pick carries zero garbage. Collecting it would
    // relocate a full block to free a full block — no net space. Retry
    // wear-blind: near 100% utilization the wear penalty can shadow a
    // garbage-bearing block behind a younger fully-valid one, and
    // reclaiming space beats leveling when the pool is empty.
    victim = SelectGcVictim(candidates, map_, wear_,
                            GcTuning{/*wear_alpha=*/0.0,
                                     /*max_erase_spread=*/0});
    if (map_.ValidCount(victim) == array_->geometry().pages_per_block) {
      // Genuinely no garbage anywhere: an endless GC treadmill. Stop;
      // garbage only reappears when the host invalidates something. (A
      // wear emergency is the one reason to move a fully-valid block.)
      gc_running_ = false;
      return;
    }
  }
  allocator_.Unseal(victim);
  CollectBlock(victim, CollectMode::kGc, [this](Status) { GcStep(); });
}

bool Ftl::RefreshBlock(uint64_t block, WriteCallback done) {
  return StartReclaim(block, CollectMode::kRefresh, std::move(done));
}

bool Ftl::EscalateBlock(uint64_t block, WriteCallback done) {
  return StartReclaim(block, CollectMode::kRetire, std::move(done));
}

bool Ftl::StartReclaim(uint64_t block, CollectMode mode, WriteCallback done) {
  if (Halted() || reclaim_busy_) return false;
  if (inflight_programs_[block] != 0) return false;
  // Only sealed blocks qualify: open blocks still take programs, and a
  // block GC (or another collect) already unsealed is being handled.
  const std::deque<uint64_t>& sealed = allocator_.sealed_blocks();
  if (std::find(sealed.begin(), sealed.end(), block) == sealed.end()) {
    return false;
  }
  allocator_.Unseal(block);
  reclaim_busy_ = true;
  CollectBlock(block, mode,
               [this, done = std::move(done)](Status status) {
                 reclaim_busy_ = false;
                 done(status);
               });
  return true;
}

void Ftl::CollectBlock(uint64_t victim, CollectMode mode, WriteCallback done) {
  const flash::Geometry& geom = array_->geometry();
  const bool for_gc = mode == CollectMode::kGc;
  if (flightrec_ != nullptr) {
    const char* why = for_gc                            ? "gc collect"
                      : mode == CollectMode::kRefresh   ? "refresh collect"
                                                        : "retire collect";
    flightrec_->Record(sim_->Now(), "ftl",
                       fr_tag_ + why + " block " + std::to_string(victim) +
                           ", valid=" +
                           std::to_string(map_.ValidCount(victim)));
  }
  // Pages that failed their relocation read. A refresh that hit one must
  // not erase the victim: erasing would unmap the lost lpns and turn a
  // loud Corruption into silent zeros. It degrades to a retire instead.
  auto lost = std::make_shared<uint64_t>(0);
  auto done_ptr = std::make_shared<WriteCallback>(std::move(done));
  auto step = std::make_shared<std::function<void(uint32_t)>>();
  auto self = this;
  auto dispose = [self, victim, geom, mode, lost, done_ptr]() {
    if (mode == CollectMode::kGc) {
      if (self->injector_ != nullptr &&
          self->injector_->CrashPoint(self->site_prefix_ + "ftl.gc.erase")) {
        self->gc_running_ = false;
        return;
      }
    }
    if (mode == CollectMode::kRetire || *lost > 0) {
      // Relocated what still reads; retire the husk through the bad-block
      // path. Unreadable lpns stay mapped into it so reads keep failing
      // loudly and the host can escalate to a replica.
      self->allocator_.MarkBad(victim);
      self->wear_.Retire(victim);
      if (self->flightrec_ != nullptr) {
        self->flightrec_->Record(
            self->sim_->Now(), "reliability",
            self->fr_tag_ + "block " + std::to_string(victim) +
                " retired unerased, " + std::to_string(*lost) +
                " lpns lost");
      }
      ++self->stats_.bad_block_retires;
      if (self->m_bad_block_retires_) self->m_bad_block_retires_->Add();
      ++self->stats_.reliability_retires;
      if (self->m_reliability_retires_) self->m_reliability_retires_->Add();
      self->UpdateGauges();
      self->UpdateWearGauges();
      (*done_ptr)(Status::OK());
      return;
    }
    flash::Address blk = flash::AddressOfBlock(geom, victim);
    self->scheduler_.Erase(
        IoClass::kConventional, blk,
        [self, victim, mode, done_ptr](Status status) {
          if (status.ok()) {
            self->wear_.OnErase(victim);
            self->map_.OnBlockErased(victim);
            self->allocator_.Release(victim);
            if (mode == CollectMode::kGc) {
              ++self->stats_.gc_erases;
              if (self->m_gc_erases_) self->m_gc_erases_->Add();
            } else {
              ++self->stats_.refresh_erases;
              if (self->m_refresh_erases_) self->m_refresh_erases_->Add();
            }
          } else {
            self->allocator_.MarkBad(victim);
            self->wear_.Retire(victim);
            ++self->stats_.bad_block_retires;
            if (self->m_bad_block_retires_) {
              self->m_bad_block_retires_->Add();
            }
          }
          self->UpdateGauges();
          self->UpdateWearGauges();
          (*done_ptr)(status);
        });
  };
  *step = [self, victim, geom, mode, for_gc, lost, step, done_ptr,
           dispose = std::move(dispose)](uint32_t page) {
    if (self->Halted()) {
      // Power was cut at some crash site; freeze the mid-collect state.
      // The victim stays unsealed and un-erased — exactly what recovery
      // sees. (GC's continuation is dropped; explicit collects abort.)
      if (for_gc) {
        self->gc_running_ = false;
        return;
      }
      (*done_ptr)(Status::Aborted("ftl halted mid-collect"));
      return;
    }
    if (page == geom.pages_per_block) {
      // All valid pages moved; dispose of the victim.
      dispose();
      return;
    }
    uint64_t ppn = victim * geom.pages_per_block + page;
    uint64_t lpn = self->map_.ReverseLookup(ppn);
    if (lpn == kUnmapped) {
      (*step)(page + 1);
      return;
    }
    flash::Address addr = flash::AddressOfPage(geom, ppn);
    self->scheduler_.Read(
        IoClass::kConventional, addr,
        [self, lpn, ppn, page, mode, for_gc, lost, step](
            Status status, std::vector<uint8_t> data) {
          if (!status.ok()) {
            if (for_gc) {
              XSSD_LOG(kWarning) << "GC read failed: " << status.ToString();
            } else {
              ++*lost;
              ++self->stats_.pages_lost;
              if (self->m_pages_lost_) self->m_pages_lost_->Add();
            }
            (*step)(page + 1);
            return;
          }
          if (self->map_.Lookup(lpn) != ppn) {
            // Overwritten while the relocation read was in flight; the
            // page is stale now — skip it.
            (*step)(page + 1);
            return;
          }
          if (for_gc && self->injector_ != nullptr &&
              self->injector_->CrashPoint(self->site_prefix_ +
                                          "ftl.gc.relocate")) {
            self->gc_running_ = false;
            return;
          }
          if (mode == Ftl::CollectMode::kGc) {
            ++self->stats_.gc_relocations;
            if (self->m_gc_pages_moved_) self->m_gc_pages_moved_->Add();
          } else {
            ++self->stats_.refresh_relocations;
            if (self->m_refresh_pages_moved_) {
              self->m_refresh_pages_moved_->Add();
            }
          }
          // The copy keeps the victim page's logical version; only the
          // physical stamp (inside ProgramPage) is fresh.
          uint64_t seq = self->map_.SeqOf(lpn);
          self->ProgramPage(
              IoClass::kConventional, BlockAllocator::kGcStream, lpn, seq,
              /*src_ppn=*/ppn, std::move(data),
              [step, page](Status) { (*step)(page + 1); });
        });
  };
  (*step)(0);
}

PageMap Ftl::RebuildFromOob(RebuildReport* report) const {
  const flash::Geometry& geom = array_->geometry();
  const uint64_t lpn_count = map_.lpn_count();
  // Winner per lpn: highest seq, then highest stamp. Grown-bad blocks are
  // scanned too — a program that went bad after commit still holds data.
  std::vector<uint64_t> best_ppn(lpn_count, kUnmapped);
  std::vector<uint64_t> best_seq(lpn_count, 0);
  std::vector<uint64_t> best_stamp(lpn_count, 0);
  RebuildReport local;
  for (uint64_t ppn = 0; ppn < geom.pages(); ++ppn) {
    const std::vector<uint8_t>* raw =
        array_->PeekOob(flash::AddressOfPage(geom, ppn));
    if (raw == nullptr) continue;
    ++local.pages_scanned;
    OobMeta meta;
    if (!DecodeOob(*raw, &meta) || meta.lpn >= lpn_count) {
      ++local.oob_decode_failures;
      continue;
    }
    if (best_ppn[meta.lpn] != kUnmapped &&
        (meta.seq < best_seq[meta.lpn] ||
         (meta.seq == best_seq[meta.lpn] &&
          meta.stamp < best_stamp[meta.lpn]))) {
      continue;
    }
    best_ppn[meta.lpn] = ppn;
    best_seq[meta.lpn] = meta.seq;
    best_stamp[meta.lpn] = meta.stamp;
  }
  PageMap rebuilt(geom, lpn_count);
  for (uint64_t lpn = 0; lpn < lpn_count; ++lpn) {
    if (best_ppn[lpn] == kUnmapped) continue;
    rebuilt.Map(lpn, best_ppn[lpn], best_seq[lpn], best_stamp[lpn]);
  }
  local.mapped = rebuilt.mapped_pages();
  local.stale_copies =
      local.pages_scanned - local.oob_decode_failures - local.mapped;
  if (report != nullptr) *report = local;
  return rebuilt;
}

}  // namespace xssd::ftl
