#include "ftl/ftl.h"

#include <algorithm>

#include "common/logging.h"

namespace xssd::ftl {

namespace {

BlockAllocator::Stream StreamFor(IoClass io_class) {
  return io_class == IoClass::kDestage ? BlockAllocator::kDestageStream
                                       : BlockAllocator::kConventionalStream;
}

}  // namespace

Ftl::Ftl(sim::Simulator* sim, flash::Array* array, FtlConfig config)
    : sim_(sim),
      array_(array),
      config_(config),
      scheduler_(sim, array),
      map_(array->geometry(),
           static_cast<uint64_t>(
               static_cast<double>(array->geometry().pages()) *
               (1.0 - config.overprovision))),
      allocator_(array->geometry()),
      buffer_port_(sim, config.buffer_bytes_per_sec) {}

void Ftl::SetMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) {
  m_host_writes_ = registry->GetCounter(prefix + "ftl.host_writes");
  m_flash_programs_ = registry->GetCounter(prefix + "ftl.flash_programs");
  m_gc_pages_moved_ = registry->GetCounter(prefix + "ftl.gc.pages_moved");
  m_gc_erases_ = registry->GetCounter(prefix + "ftl.gc.erases");
  m_buffer_hits_ = registry->GetCounter(prefix + "ftl.buffer_hits");
  m_bad_block_retires_ =
      registry->GetCounter(prefix + "ftl.bad_block_retires");
  m_dirty_pages_ = registry->GetGauge(prefix + "ftl.dirty_pages");
  m_free_blocks_ = registry->GetGauge(prefix + "ftl.free_blocks");
  scheduler_.SetMetrics(registry, prefix);
  UpdateGauges();
}

void Ftl::SetSpans(obs::SpanRecorder* spans, const std::string& node_tag) {
  spans_ = spans;
  span_node_ = spans ? spans->InternNode(node_tag) : 0;
}

void Ftl::UpdateGauges() {
  if (!m_dirty_pages_) return;
  m_dirty_pages_->Set(static_cast<double>(dirty_count_));
  m_free_blocks_->Set(static_cast<double>(allocator_.free_blocks()));
}

void Ftl::TouchLru(uint64_t lpn) {
  auto it = buffer_.find(lpn);
  XSSD_CHECK(it != buffer_.end());
  lru_.erase(it->second.lru_pos);
  lru_.push_front(lpn);
  it->second.lru_pos = lru_.begin();
}

void Ftl::EvictIfNeeded() {
  while (buffer_.size() > config_.buffer_pages && !lru_.empty()) {
    // Evict the least-recently-used *clean* page; dirty pages leave the
    // buffer only through writeback.
    bool evicted = false;
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      auto it = buffer_.find(*rit);
      if (!it->second.dirty && !it->second.flushing) {
        lru_.erase(std::next(rit).base());
        buffer_.erase(it);
        evicted = true;
        break;
      }
    }
    if (!evicted) break;  // everything dirty; flushing will drain it
  }
}

void Ftl::WriteBuffered(uint64_t lpn, std::vector<uint8_t> data,
                        WriteCallback done) {
  XSSD_CHECK(lpn < map_.lpn_count());
  data.resize(page_bytes(), 0);
  ++stats_.host_writes;
  if (m_host_writes_) m_host_writes_->Add();

  // Device-side back-pressure: when the data buffer is all dirty, new
  // writes wait for writeback to free a slot (the host sees a slower ack,
  // exactly like a saturated real device).
  if (dirty_count_ + flush_inflight_ >= config_.buffer_pages &&
      buffer_.find(lpn) == buffer_.end()) {
    admission_queue_.push_back(
        AdmissionWaiter{lpn, std::move(data), std::move(done)});
    MaybeScheduleFlush();
    return;
  }
  AdmitWrite(lpn, std::move(data), std::move(done));
}

void Ftl::AdmitWrite(uint64_t lpn, std::vector<uint8_t> data,
                     WriteCallback done) {
  auto it = buffer_.find(lpn);
  if (it == buffer_.end()) {
    lru_.push_front(lpn);
    BufferSlot slot;
    slot.data = std::move(data);
    slot.dirty = true;
    slot.lru_pos = lru_.begin();
    buffer_.emplace(lpn, std::move(slot));
    ++dirty_count_;
  } else {
    it->second.data = std::move(data);
    if (!it->second.dirty) {
      it->second.dirty = true;
      ++dirty_count_;
    }
    TouchLru(lpn);
  }
  UpdateGauges();
  EvictIfNeeded();
  MaybeScheduleFlush();

  // Acknowledge once the data has crossed the device DRAM port plus a
  // small firmware cost — the device-visible latency of a cached write.
  sim::SimTime ack = buffer_port_.Acquire(page_bytes());
  sim_->ScheduleAt(ack + config_.firmware_latency,
                   [done = std::move(done)]() { done(Status::OK()); });
}

void Ftl::WriteDirect(IoClass io_class, uint64_t lpn,
                      std::vector<uint8_t> data, WriteCallback done) {
  XSSD_CHECK(lpn < map_.lpn_count());
  data.resize(page_bytes(), 0);
  ++stats_.host_writes;
  if (m_host_writes_) m_host_writes_->Add();
  // A direct write supersedes any buffered copy.
  auto it = buffer_.find(lpn);
  if (it != buffer_.end()) {
    if (it->second.dirty) --dirty_count_;
    lru_.erase(it->second.lru_pos);
    buffer_.erase(it);
    UpdateGauges();
  }
  if (spans_) {
    // Issue → programmed, including scheduler queueing and bad-block
    // retries. GC's internal WriteDirect calls have no ambient request
    // context and record never-joined orphans.
    obs::SpanContext span = spans_->StartSpan(obs::Stage::kFlashProgram,
                                              span_node_, spans_->current());
    obs::SpanRecorder* spans = spans_;
    done = [spans, span, done = std::move(done)](Status status) {
      spans->EndSpan(span);
      done(status);
    };
  }
  ProgramPage(io_class, StreamFor(io_class), lpn, std::move(data),
              std::move(done));
}

void Ftl::ProgramPage(IoClass io_class, BlockAllocator::Stream stream,
                      uint64_t lpn, std::vector<uint8_t> data,
                      WriteCallback done, uint32_t attempts) {
  Result<flash::Address> addr = allocator_.AllocatePage(stream);
  if (!addr.ok()) {
    // Out of erased blocks: force a GC pass, then retry.
    MaybeStartGc();
    if (!gc_running_) {
      done(Status::ResourceExhausted("device full: no erased blocks"));
      return;
    }
    sim_->Schedule(sim::Us(100), [this, io_class, stream, lpn,
                                  data = std::move(data),
                                  done = std::move(done), attempts]() mutable {
      ProgramPage(io_class, stream, lpn, std::move(data), std::move(done),
                  attempts);
    });
    return;
  }
  flash::Address target = *addr;
  uint64_t ppn = flash::PageIndex(array_->geometry(), target);
  scheduler_.Program(
      io_class, target, data,
      [this, io_class, stream, lpn, ppn, target, data, attempts,
       done = std::move(done)](Status status) mutable {
        if (status.IsIoError()) {
          // Grown bad block: retire it and retry elsewhere (paper §7.1:
          // "handled internally by picking a new block to write").
          uint64_t block = flash::BlockIndex(array_->geometry(), target);
          allocator_.MarkBad(block);
          ++stats_.bad_block_retires;
          if (m_bad_block_retires_) m_bad_block_retires_->Add();
          if (attempts + 1 >= config_.max_program_retries) {
            // A fault window is failing every program; stop burning blocks
            // and let the caller apply its own retry/backoff policy.
            done(status);
            return;
          }
          ProgramPage(io_class, stream, lpn, std::move(data),
                      std::move(done), attempts + 1);
          return;
        }
        if (!status.ok()) {
          done(status);
          return;
        }
        ++stats_.flash_programs;
        if (m_flash_programs_) m_flash_programs_->Add();
        map_.Map(lpn, ppn);
        UpdateGauges();
        MaybeStartGc();
        done(Status::OK());
      });
}

void Ftl::ReadPage(IoClass io_class, uint64_t lpn, ReadCallback done) {
  XSSD_CHECK(lpn < map_.lpn_count());
  auto it = buffer_.find(lpn);
  if (it != buffer_.end()) {
    ++stats_.buffer_hits;
    if (m_buffer_hits_) m_buffer_hits_->Add();
    TouchLru(lpn);
    std::vector<uint8_t> copy = it->second.data;
    sim::SimTime at = buffer_port_.Acquire(page_bytes());
    sim_->ScheduleAt(
        at + config_.firmware_latency,
        [copy = std::move(copy), done = std::move(done)]() mutable {
          done(Status::OK(), std::move(copy));
        });
    return;
  }
  uint64_t ppn = map_.Lookup(lpn);
  if (ppn == kUnmapped) {
    // Unwritten page reads as zeros, like a fresh namespace.
    sim_->Schedule(config_.firmware_latency,
                   [len = page_bytes(), done = std::move(done)]() {
                     done(Status::OK(), std::vector<uint8_t>(len, 0));
                   });
    return;
  }
  flash::Address addr = flash::AddressOfPage(array_->geometry(), ppn);
  scheduler_.Read(io_class, addr, std::move(done));
}

void Ftl::MaybeScheduleFlush() {
  while (flush_inflight_ < config_.max_writeback_inflight &&
         (dirty_count_ > config_.flush_watermark ||
          !admission_queue_.empty() || !flush_waiters_.empty())) {
    if (!FlushOne()) break;
  }
}

bool Ftl::FlushOne() {
  // Oldest dirty page first.
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    auto it = buffer_.find(*rit);
    if (!it->second.dirty || it->second.flushing) continue;
    uint64_t lpn = *rit;
    it->second.flushing = true;
    it->second.dirty = false;
    --dirty_count_;
    ++flush_inflight_;
    UpdateGauges();
    std::vector<uint8_t> data = it->second.data;
    ProgramPage(IoClass::kConventional, BlockAllocator::kConventionalStream,
                lpn, std::move(data), [this, lpn](Status status) {
                  auto slot = buffer_.find(lpn);
                  if (slot != buffer_.end()) slot->second.flushing = false;
                  --flush_inflight_;
                  ++flushed_generation_;
                  if (!status.ok()) {
                    XSSD_LOG(kWarning)
                        << "writeback of lpn " << lpn
                        << " failed: " << status.ToString();
                  }
                  CheckFlushWaiters();
                  EvictIfNeeded();
                  DrainAdmissionQueue();
                  MaybeScheduleFlush();
                });
    return true;
  }
  return false;
}

void Ftl::DrainAdmissionQueue() {
  while (!admission_queue_.empty() &&
         dirty_count_ + flush_inflight_ < config_.buffer_pages) {
    AdmissionWaiter waiter = std::move(admission_queue_.front());
    admission_queue_.pop_front();
    AdmitWrite(waiter.lpn, std::move(waiter.data), std::move(waiter.done));
  }
}

void Ftl::CheckFlushWaiters() {
  auto it = flush_waiters_.begin();
  while (it != flush_waiters_.end()) {
    if (flushed_generation_ >= it->remaining) {
      FlushCallback done = std::move(it->done);
      it = flush_waiters_.erase(it);
      done(Status::OK());
    } else {
      ++it;
    }
  }
}

void Ftl::Flush(FlushCallback done) {
  if (dirty_count_ == 0 && flush_inflight_ == 0) {
    sim_->Schedule(config_.firmware_latency, [done = std::move(done)]() {
      done(Status::OK());
    });
    return;
  }
  FlushWaiter waiter;
  waiter.remaining = flushed_generation_ + dirty_count_ + flush_inflight_;
  waiter.done = std::move(done);
  flush_waiters_.push_back(std::move(waiter));
  MaybeScheduleFlush();
}

void Ftl::Trim(uint64_t lpn) {
  XSSD_CHECK(lpn < map_.lpn_count());
  auto it = buffer_.find(lpn);
  if (it != buffer_.end()) {
    if (it->second.dirty) --dirty_count_;
    lru_.erase(it->second.lru_pos);
    buffer_.erase(it);
    UpdateGauges();
  }
  map_.Unmap(lpn);
}

void Ftl::MaybeStartGc() {
  if (gc_running_) return;
  if (allocator_.free_blocks() >= config_.gc_low_watermark) return;
  gc_running_ = true;
  GcStep();
}

void Ftl::GcStep() {
  if (allocator_.free_blocks() >= config_.gc_low_watermark * 2 ||
      allocator_.sealed_blocks().empty()) {
    gc_running_ = false;
    return;
  }
  // Greedy victim: sealed block with the fewest valid pages.
  uint64_t victim = allocator_.sealed_blocks().front();
  uint32_t best = map_.ValidCount(victim);
  for (uint64_t candidate : allocator_.sealed_blocks()) {
    uint32_t valid = map_.ValidCount(candidate);
    if (valid < best) {
      victim = candidate;
      best = valid;
      if (best == 0) break;
    }
  }
  allocator_.Unseal(victim);

  const flash::Geometry& geom = array_->geometry();
  auto relocate = std::make_shared<std::function<void(uint32_t)>>();
  auto self = this;
  *relocate = [self, victim, geom, relocate](uint32_t page) {
    if (page == geom.pages_per_block) {
      // All valid pages moved; erase and recycle.
      flash::Address blk = flash::AddressOfBlock(geom, victim);
      self->scheduler_.Erase(
          IoClass::kConventional, blk, [self, victim](Status status) {
            if (status.ok()) {
              self->map_.OnBlockErased(victim);
              self->allocator_.Release(victim);
              ++self->stats_.gc_erases;
              if (self->m_gc_erases_) self->m_gc_erases_->Add();
            } else {
              self->allocator_.MarkBad(victim);
              ++self->stats_.bad_block_retires;
              if (self->m_bad_block_retires_) {
                self->m_bad_block_retires_->Add();
              }
            }
            self->UpdateGauges();
            self->GcStep();
          });
      return;
    }
    uint64_t ppn = victim * geom.pages_per_block + page;
    uint64_t lpn = self->map_.ReverseLookup(ppn);
    if (lpn == kUnmapped) {
      (*relocate)(page + 1);
      return;
    }
    flash::Address addr = flash::AddressOfPage(geom, ppn);
    self->scheduler_.Read(
        IoClass::kConventional, addr,
        [self, lpn, ppn, page, relocate](Status status,
                                         std::vector<uint8_t> data) {
          if (!status.ok()) {
            XSSD_LOG(kWarning) << "GC read failed: " << status.ToString();
            (*relocate)(page + 1);
            return;
          }
          if (self->map_.Lookup(lpn) != ppn) {
            // Overwritten while the relocation read was in flight; the
            // page is stale now — skip it.
            (*relocate)(page + 1);
            return;
          }
          ++self->stats_.gc_relocations;
          if (self->m_gc_pages_moved_) self->m_gc_pages_moved_->Add();
          self->ProgramPage(
              IoClass::kConventional, BlockAllocator::kGcStream, lpn,
              std::move(data),
              [relocate, page](Status) { (*relocate)(page + 1); });
        });
  };
  (*relocate)(0);
}

}  // namespace xssd::ftl
