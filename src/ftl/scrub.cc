#include "ftl/scrub.h"

#include <algorithm>
#include <memory>

#include "ftl/mapping.h"

namespace xssd::ftl {

PatrolScrubber::PatrolScrubber(sim::Simulator* sim, Ftl* ftl,
                               flash::Array* array, ScrubConfig config)
    : sim_(sim), ftl_(ftl), array_(array), config_(config) {}

void PatrolScrubber::SetMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) {
  m_ticks_ = registry->GetCounter(prefix + "scrub.ticks");
  m_deferred_busy_ = registry->GetCounter(prefix + "scrub.deferred_busy");
  m_patrol_reads_ = registry->GetCounter(prefix + "scrub.patrol_reads");
  m_patrol_uncorrectable_ =
      registry->GetCounter(prefix + "scrub.patrol_uncorrectable");
  m_refreshes_ = registry->GetCounter(prefix + "scrub.refreshes");
  m_escalations_ = registry->GetCounter(prefix + "scrub.escalations");
  m_retired_blocks_ = registry->GetCounter(prefix + "scrub.retired_blocks");
  m_refresh_pressure_ = registry->GetGauge(prefix + "scrub.refresh_pressure");
}

void PatrolScrubber::Start() {
  if (running_ || !config_.enabled) return;
  running_ = true;
  last_refill_ = sim_->Now();
  sim_->Schedule(config_.scan_interval, [this]() { Tick(); });
}

void PatrolScrubber::Stop() { running_ = false; }

uint64_t PatrolScrubber::PickRiskiest(double* ber_out) const {
  const flash::Geometry& geom = array_->geometry();
  uint64_t best = kUnmapped;
  double best_ber = 0.0;
  for (uint64_t b : ftl_->allocator().sealed_blocks()) {
    if (ftl_->inflight_programs(b) != 0) continue;
    if (ftl_->page_map().ValidCount(b) == 0) continue;  // nothing to protect
    double ber = array_->PredictedBer(flash::AddressOfBlock(geom, b));
    if (best == kUnmapped || ber > best_ber) {
      best = b;
      best_ber = ber;
    }
  }
  if (ber_out != nullptr) *ber_out = best_ber;
  return best;
}

void PatrolScrubber::Tick() {
  if (!running_) return;
  // Refill the token bucket; cap at one block's worth so a long idle
  // stretch cannot bank an unbounded read burst.
  const flash::Geometry& geom = array_->geometry();
  sim::SimTime now = sim_->Now();
  budget_ += config_.pages_per_sec * sim::ToSec(now - last_refill_);
  budget_ = std::min(budget_, static_cast<double>(geom.pages_per_block));
  last_refill_ = now;
  // Re-arm before doing any work so the cadence is independent of it.
  sim_->Schedule(config_.scan_interval, [this]() { Tick(); });

  // Idle gate: patrol only when the flash scheduler has no foreground
  // work. Deferral costs nothing — the budget keeps accruing.
  Scheduler& sched = ftl_->scheduler();
  uint64_t load = sched.inflight() + sched.queued(IoClass::kConventional) +
                  sched.queued(IoClass::kDestage);
  if (load >= config_.busy_threshold) {
    ++stats_.deferred_busy;
    if (m_deferred_busy_) m_deferred_busy_->Add();
    return;
  }
  ++stats_.ticks;
  if (m_ticks_) m_ticks_->Add();

  double ber = 0.0;
  uint64_t block = PickRiskiest(&ber);
  if (block == kUnmapped) {
    if (m_refresh_pressure_) m_refresh_pressure_->Set(0.0);
    return;
  }

  double mean_errors = ber * geom.page_bytes * 8.0;
  double refresh_at =
      config_.refresh_margin * array_->reliability().ecc_correctable_bits;
  uint32_t valid = ftl_->page_map().ValidCount(block);
  if (m_refresh_pressure_) {
    double budget_bits = array_->reliability().ecc_correctable_bits;
    m_refresh_pressure_->Set(budget_bits > 0 ? mean_errors / budget_bits
                                             : 0.0);
  }
  if (mean_errors >= refresh_at && budget_ >= static_cast<double>(valid)) {
    uint64_t retires_before = ftl_->stats().reliability_retires;
    if (ftl_->RefreshBlock(block, [this, retires_before](Status) {
          // A refresh that hit an unreadable page degrades to a retire
          // inside the FTL; surface that in the scrub stats.
          if (ftl_->stats().reliability_retires > retires_before) {
            ++stats_.retired_blocks;
            if (m_retired_blocks_) m_retired_blocks_->Add();
          }
        })) {
      budget_ -= static_cast<double>(valid);
      ++stats_.refreshes;
      if (m_refreshes_) m_refreshes_->Add();
    }
    return;
  }
  PatrolBlock(block);
}

void PatrolScrubber::PatrolBlock(uint64_t block) {
  const flash::Geometry& geom = array_->geometry();
  // One escalation per patrolled block: the first Corruption retires it;
  // later completions from the same sweep must not retrigger.
  auto escalated = std::make_shared<bool>(false);
  for (uint32_t page = 0; page < geom.pages_per_block; ++page) {
    if (budget_ < 1.0) break;
    uint64_t ppn = block * geom.pages_per_block + page;
    if (ftl_->page_map().ReverseLookup(ppn) == kUnmapped) continue;
    budget_ -= 1.0;
    ++stats_.patrol_reads;
    if (m_patrol_reads_) m_patrol_reads_->Add();
    flash::Address addr = flash::AddressOfPage(geom, ppn);
    ftl_->scheduler().Read(
        IoClass::kConventional, addr,
        [this, block, escalated](Status status, std::vector<uint8_t>) {
          if (!status.IsCorruption()) return;
          ++stats_.patrol_uncorrectable;
          if (m_patrol_uncorrectable_) m_patrol_uncorrectable_->Add();
          if (*escalated) return;
          *escalated = true;
          if (ftl_->EscalateBlock(block, [this](Status status) {
                if (!status.ok()) return;
                ++stats_.retired_blocks;
                if (m_retired_blocks_) m_retired_blocks_->Add();
              })) {
            ++stats_.escalations;
            if (m_escalations_) m_escalations_->Add();
          }
        });
  }
}

}  // namespace xssd::ftl
