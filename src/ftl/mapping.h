#ifndef XSSD_FTL_MAPPING_H_
#define XSSD_FTL_MAPPING_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "flash/geometry.h"

namespace xssd::ftl {

inline constexpr uint64_t kUnmapped = ~0ull;

/// \brief Page-level logical→physical mapping with reverse map and
/// per-block valid-page counts (the GC victim-selection signal).
class PageMap {
 public:
  PageMap(const flash::Geometry& geometry, uint64_t lpn_count);

  uint64_t lpn_count() const { return l2p_.size(); }

  /// Physical page currently backing `lpn`, or kUnmapped.
  uint64_t Lookup(uint64_t lpn) const { return l2p_[lpn]; }

  /// Point `lpn` at physical page `ppn`; the previous mapping (if any)
  /// becomes invalid and its block's valid count drops.
  void Map(uint64_t lpn, uint64_t ppn);

  /// Drop the mapping for `lpn` (TRIM).
  void Unmap(uint64_t lpn);

  /// Logical page stored at physical page `ppn`, or kUnmapped if invalid.
  uint64_t ReverseLookup(uint64_t ppn) const { return p2l_[ppn]; }

  /// Valid (still-mapped) pages in physical block `block_index`.
  uint32_t ValidCount(uint64_t block_index) const {
    return valid_count_[block_index];
  }

  /// All reverse entries of a block are cleared when it is erased.
  void OnBlockErased(uint64_t block_index);

  uint64_t mapped_pages() const { return mapped_; }

 private:
  flash::Geometry geometry_;
  std::vector<uint64_t> l2p_;
  std::vector<uint64_t> p2l_;
  std::vector<uint32_t> valid_count_;
  uint64_t mapped_ = 0;
};

/// \brief Erased-block pool and per-stream, per-die write points.
///
/// Streams keep classes of data (conventional, destage, GC relocation) in
/// separate blocks — the multi-stream idiom [35] — so destage-ring data is
/// never interleaved with conventional data in one block. Each stream keeps
/// one active block per die and hands pages out round-robin across dies for
/// channel parallelism; within a block, pages are allocated strictly in
/// order (the NAND program-order rule).
class BlockAllocator {
 public:
  enum Stream : int {
    kConventionalStream = 0,
    kDestageStream = 1,
    kGcStream = 2,
    kStreamCount = 3,
  };

  explicit BlockAllocator(const flash::Geometry& geometry);

  /// Next page to program for `stream`; advances the write point. Returns
  /// kResourceExhausted when no erased block is available (caller must GC).
  Result<flash::Address> AllocatePage(Stream stream);

  /// Return an erased block to the pool.
  void Release(uint64_t block_index);

  /// Permanently retire a block (grown bad). If it was a stream's active
  /// write point, the point is reset.
  void MarkBad(uint64_t block_index);

  /// Blocks that are fully programmed and not an active write point —
  /// the GC victim candidates, oldest first.
  const std::deque<uint64_t>& sealed_blocks() const { return sealed_; }
  /// Remove a block from the sealed list (it is being collected).
  void Unseal(uint64_t block_index);

  uint64_t free_blocks() const { return free_count_; }
  uint64_t bad_blocks() const { return bad_count_; }
  uint32_t dies() const { return static_cast<uint32_t>(free_per_die_.size()); }

 private:
  struct WritePoint {
    uint64_t block_index = kUnmapped;
    uint32_t next_page = 0;
  };

  uint32_t DieOfBlock(uint64_t block_index) const;

  flash::Geometry geometry_;
  std::vector<std::deque<uint64_t>> free_per_die_;
  std::deque<uint64_t> sealed_;
  // points_[stream][die]
  std::vector<std::vector<WritePoint>> points_;
  std::vector<uint32_t> cursor_;  // per-stream round-robin die cursor
  uint64_t free_count_ = 0;
  uint64_t bad_count_ = 0;
};

}  // namespace xssd::ftl

#endif  // XSSD_FTL_MAPPING_H_
