#ifndef XSSD_FTL_MAPPING_H_
#define XSSD_FTL_MAPPING_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "flash/geometry.h"

namespace xssd::ftl {

inline constexpr uint64_t kUnmapped = ~0ull;

/// \brief Page-level logical→physical mapping with reverse map, per-block
/// valid-page counts (the GC victim-selection signal), and a per-lpn write
/// sequence that makes concurrent program completions race-free: a stale
/// program (an older version whose NAND completion lost the race, or a GC
/// copy of data the host re-wrote mid-relocation) is rejected at map time
/// and its physical page is garbage on arrival.
class PageMap {
 public:
  PageMap(const flash::Geometry& geometry, uint64_t lpn_count);

  uint64_t lpn_count() const { return l2p_.size(); }

  const flash::Geometry& geometry() const { return geometry_; }

  /// Physical page currently backing `lpn`, or kUnmapped.
  uint64_t Lookup(uint64_t lpn) const { return l2p_[lpn]; }

  /// Point `lpn` at physical page `ppn` carrying logical version `seq`
  /// and physical program stamp `stamp`. Applies under the same
  /// (seq, stamp) lexicographic order RebuildFromOob uses to pick a
  /// winner — program completions may arrive out of write order
  /// (different dies finish at different times) and an older version, or
  /// an older physical attempt of the same version, must never shadow a
  /// newer one. Keeping the live order identical to the recovery order is
  /// what makes the two provably agree at any quiesced point. Returns
  /// whether the mapping was applied; when it was not, `ppn` stays
  /// invalid (garbage for the next GC pass).
  bool Map(uint64_t lpn, uint64_t ppn, uint64_t seq, uint64_t stamp = 0);

  /// GC/scrub relocation: move `lpn`'s mapping from `src_ppn` to
  /// `dst_ppn` without changing its logical version. Applies while the
  /// live mapping still points at `src_ppn`, or — when the source was
  /// superseded mid-flight by another physical copy of the *same* logical
  /// version — when (seq, stamp) outranks the current mapping, mirroring
  /// the recovery order. A host re-write to a newer version, or a TRIM,
  /// makes the copy dead on arrival and false is returned.
  bool MapRelocated(uint64_t lpn, uint64_t src_ppn, uint64_t dst_ppn,
                    uint64_t seq = 0, uint64_t stamp = 0);

  /// Drop the mapping for `lpn` (TRIM). The lpn's seq floor is kept so a
  /// later rewrite still outranks stale flash copies.
  void Unmap(uint64_t lpn);

  /// Logical page stored at physical page `ppn`, or kUnmapped if invalid.
  uint64_t ReverseLookup(uint64_t ppn) const { return p2l_[ppn]; }

  /// Logical version currently mapped (or last mapped) for `lpn`.
  uint64_t SeqOf(uint64_t lpn) const { return seq_[lpn]; }

  /// Physical program stamp of the copy currently mapped for `lpn`.
  uint64_t StampOf(uint64_t lpn) const { return stamp_[lpn]; }

  /// Valid (still-mapped) pages in physical block `block_index`.
  uint32_t ValidCount(uint64_t block_index) const {
    return valid_count_[block_index];
  }

  /// All reverse entries of a block are cleared when it is erased.
  void OnBlockErased(uint64_t block_index);

  uint64_t mapped_pages() const { return mapped_; }

  /// Full-state equality: l2p, p2l, valid counts, per-lpn seqs and the
  /// mapped total. This is the oracle `RebuildFromOob` is diffed against —
  /// "byte-identical" recovery means operator== holds.
  friend bool operator==(const PageMap& a, const PageMap& b) {
    return a.l2p_ == b.l2p_ && a.p2l_ == b.p2l_ &&
           a.valid_count_ == b.valid_count_ && a.seq_ == b.seq_ &&
           a.mapped_ == b.mapped_;
  }

 private:
  flash::Geometry geometry_;
  std::vector<uint64_t> l2p_;
  std::vector<uint64_t> p2l_;
  std::vector<uint32_t> valid_count_;
  std::vector<uint64_t> seq_;
  std::vector<uint64_t> stamp_;
  uint64_t mapped_ = 0;
};

/// \brief Erased-block pool and per-stream, per-die write points.
///
/// Streams keep classes of data (conventional, destage, GC relocation) in
/// separate blocks — the multi-stream idiom [35] — so destage-ring data is
/// never interleaved with conventional data in one block. Each stream keeps
/// one active block per die and hands pages out round-robin across dies for
/// channel parallelism; within a block, pages are allocated strictly in
/// order (the NAND program-order rule).
class BlockAllocator {
 public:
  enum Stream : int {
    kConventionalStream = 0,
    kDestageStream = 1,
    kGcStream = 2,
    kStreamCount = 3,
  };

  explicit BlockAllocator(const flash::Geometry& geometry);

  /// Next page to program for `stream`; advances the write point. Returns
  /// kResourceExhausted when no erased block is available (caller must GC).
  Result<flash::Address> AllocatePage(Stream stream);

  /// Erased blocks held back for the GC stream: non-GC streams cannot open
  /// a fresh block while free_blocks() is at or below the reserve. Without
  /// it host streams can drain the last erased blocks and deadlock GC —
  /// the relocation program waits for a free page, which waits for the
  /// victim erase, which waits for the relocation.
  void set_gc_reserve(uint64_t blocks) { gc_reserve_ = blocks; }

  /// Return an erased block to the pool.
  void Release(uint64_t block_index);

  /// Permanently retire a block (grown bad). If it was a stream's active
  /// write point, the point is reset.
  void MarkBad(uint64_t block_index);

  /// Blocks that are fully programmed and not an active write point —
  /// the GC victim candidates, oldest first.
  const std::deque<uint64_t>& sealed_blocks() const { return sealed_; }
  /// Remove a block from the sealed list (it is being collected).
  void Unseal(uint64_t block_index);

  uint64_t free_blocks() const { return free_count_; }
  uint64_t bad_blocks() const { return bad_count_; }
  uint32_t dies() const { return static_cast<uint32_t>(free_per_die_.size()); }

 private:
  struct WritePoint {
    uint64_t block_index = kUnmapped;
    uint32_t next_page = 0;
  };

  uint32_t DieOfBlock(uint64_t block_index) const;

  flash::Geometry geometry_;
  std::vector<std::deque<uint64_t>> free_per_die_;
  std::deque<uint64_t> sealed_;
  // points_[stream][die]
  std::vector<std::vector<WritePoint>> points_;
  std::vector<uint32_t> cursor_;  // per-stream round-robin die cursor
  uint64_t free_count_ = 0;
  uint64_t bad_count_ = 0;
  uint64_t gc_reserve_ = 0;
};

}  // namespace xssd::ftl

#endif  // XSSD_FTL_MAPPING_H_
