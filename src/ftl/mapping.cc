#include "ftl/mapping.h"

#include <algorithm>

#include "common/logging.h"

namespace xssd::ftl {

PageMap::PageMap(const flash::Geometry& geometry, uint64_t lpn_count)
    : geometry_(geometry),
      l2p_(lpn_count, kUnmapped),
      p2l_(geometry.pages(), kUnmapped),
      valid_count_(geometry.blocks(), 0),
      seq_(lpn_count, 0),
      stamp_(lpn_count, 0) {}

bool PageMap::Map(uint64_t lpn, uint64_t ppn, uint64_t seq, uint64_t stamp) {
  XSSD_CHECK(lpn < l2p_.size());
  XSSD_CHECK(ppn < p2l_.size());
  // (seq, stamp) precedence — exactly the order RebuildFromOob resolves
  // duplicate copies with, so the live map can never disagree with a
  // recovery scan. Equal (seq, stamp) still applies, preserving the
  // stamp-less legacy behaviour (stamp 0).
  if (seq < seq_[lpn]) return false;  // stale version lost the program race
  if (seq == seq_[lpn] && stamp < stamp_[lpn]) return false;
  uint64_t old_ppn = l2p_[lpn];
  if (old_ppn != kUnmapped) {
    p2l_[old_ppn] = kUnmapped;
    --valid_count_[old_ppn / geometry_.pages_per_block];
    --mapped_;
  }
  l2p_[lpn] = ppn;
  p2l_[ppn] = lpn;
  seq_[lpn] = seq;
  stamp_[lpn] = stamp;
  ++valid_count_[ppn / geometry_.pages_per_block];
  ++mapped_;
  return true;
}

bool PageMap::MapRelocated(uint64_t lpn, uint64_t src_ppn, uint64_t dst_ppn,
                           uint64_t seq, uint64_t stamp) {
  XSSD_CHECK(lpn < l2p_.size());
  XSSD_CHECK(dst_ppn < p2l_.size());
  uint64_t old_ppn = l2p_[lpn];
  if (old_ppn == kUnmapped) return false;  // trimmed mid-relocation
  if (old_ppn != src_ppn) {
    // Source superseded mid-flight. When the supersession was another
    // physical copy of the *same* logical version (a duplicate writeback
    // that completed between this relocation's issue and its landing),
    // the relocated copy still outranks it under the recovery order —
    // apply it, or an OOB rebuild would pick this copy while the live map
    // points elsewhere. A newer version (or a stale stamp) keeps the copy
    // dead on arrival.
    if (seq < seq_[lpn] || (seq == seq_[lpn] && stamp <= stamp_[lpn])) {
      return false;
    }
  }
  p2l_[old_ppn] = kUnmapped;
  --valid_count_[old_ppn / geometry_.pages_per_block];
  l2p_[lpn] = dst_ppn;
  p2l_[dst_ppn] = lpn;
  stamp_[lpn] = std::max(stamp_[lpn], stamp);
  ++valid_count_[dst_ppn / geometry_.pages_per_block];
  return true;
}

void PageMap::Unmap(uint64_t lpn) {
  XSSD_CHECK(lpn < l2p_.size());
  uint64_t ppn = l2p_[lpn];
  if (ppn == kUnmapped) return;
  l2p_[lpn] = kUnmapped;
  p2l_[ppn] = kUnmapped;
  --valid_count_[ppn / geometry_.pages_per_block];
  --mapped_;
}

void PageMap::OnBlockErased(uint64_t block_index) {
  uint64_t first = block_index * geometry_.pages_per_block;
  for (uint64_t p = first; p < first + geometry_.pages_per_block; ++p) {
    uint64_t lpn = p2l_[p];
    if (lpn != kUnmapped) {
      // Erasing a block with valid data would lose it; the GC must have
      // relocated everything first.
      XSSD_CHECK(l2p_[lpn] != p);
      p2l_[p] = kUnmapped;
    }
  }
  XSSD_CHECK(valid_count_[block_index] == 0);
}

BlockAllocator::BlockAllocator(const flash::Geometry& geometry)
    : geometry_(geometry),
      free_per_die_(geometry.dies()),
      points_(kStreamCount,
              std::vector<WritePoint>(geometry.dies())),
      cursor_(kStreamCount, 0) {
  // Initially every block is erased and free, distributed per die.
  for (uint64_t b = 0; b < geometry_.blocks(); ++b) {
    free_per_die_[DieOfBlock(b)].push_back(b);
    ++free_count_;
  }
}

uint32_t BlockAllocator::DieOfBlock(uint64_t block_index) const {
  uint64_t blocks_per_die =
      static_cast<uint64_t>(geometry_.planes_per_die) *
      geometry_.blocks_per_plane;
  return static_cast<uint32_t>(block_index / blocks_per_die);
}

Result<flash::Address> BlockAllocator::AllocatePage(Stream stream) {
  const uint32_t die_count = dies();
  for (uint32_t attempt = 0; attempt < die_count; ++attempt) {
    // Channel-interleaved die order: consecutive pages land on different
    // channels so their bus transfers overlap.
    uint32_t cursor = cursor_[stream];
    uint32_t die = (cursor % geometry_.channels) * geometry_.dies_per_channel +
                   (cursor / geometry_.channels) % geometry_.dies_per_channel;
    cursor_[stream] = (cursor_[stream] + 1) % die_count;
    WritePoint& wp = points_[stream][die];
    if (wp.block_index == kUnmapped) {
      if (free_per_die_[die].empty()) continue;
      if (stream != kGcStream && free_count_ <= gc_reserve_) continue;
      wp.block_index = free_per_die_[die].front();
      free_per_die_[die].pop_front();
      --free_count_;
      wp.next_page = 0;
    }
    flash::Address addr = flash::AddressOfBlock(geometry_, wp.block_index);
    addr.page = wp.next_page++;
    if (wp.next_page == geometry_.pages_per_block) {
      sealed_.push_back(wp.block_index);
      wp.block_index = kUnmapped;
      wp.next_page = 0;
    }
    return addr;
  }
  return Status::ResourceExhausted("no erased blocks available");
}

void BlockAllocator::Release(uint64_t block_index) {
  free_per_die_[DieOfBlock(block_index)].push_back(block_index);
  ++free_count_;
}

void BlockAllocator::MarkBad(uint64_t block_index) {
  ++bad_count_;
  Unseal(block_index);
  for (auto& stream_points : points_) {
    for (WritePoint& wp : stream_points) {
      if (wp.block_index == block_index) {
        wp.block_index = kUnmapped;
        wp.next_page = 0;
      }
    }
  }
  auto& free_list = free_per_die_[DieOfBlock(block_index)];
  auto it = std::find(free_list.begin(), free_list.end(), block_index);
  if (it != free_list.end()) {
    free_list.erase(it);
    --free_count_;
  }
}

void BlockAllocator::Unseal(uint64_t block_index) {
  auto it = std::find(sealed_.begin(), sealed_.end(), block_index);
  if (it != sealed_.end()) sealed_.erase(it);
}

}  // namespace xssd::ftl
