#ifndef XSSD_FTL_SCRUB_H_
#define XSSD_FTL_SCRUB_H_

#include <cstdint>
#include <string>

#include "flash/array.h"
#include "ftl/ftl.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::ftl {

/// \brief Patrol-scrub configuration.
struct ScrubConfig {
  /// Master switch. Off by default: the scrubber's self-rearming tick
  /// would keep an idle simulator's event queue from draining, so only
  /// deployments that pump the simulator (RunUntil/RunFor) enable it.
  bool enabled = false;
  /// Time between patrol ticks. Each tick inspects at most one block.
  sim::SimTime scan_interval = sim::Ms(5);
  /// Patrol-read budget (token bucket refilled at this rate, capped at one
  /// block's worth of pages). The scrubber never issues more reads per
  /// second than this, so it cannot starve foreground traffic even when
  /// the idle gate mis-predicts.
  double pages_per_sec = 2000.0;
  /// Idle gate: defer the tick (counting scrub.deferred_busy) while the
  /// flash scheduler has this many or more operations queued or in flight.
  uint64_t busy_threshold = 1;
  /// Refresh a block when its predicted mean bit errors per page reach
  /// this fraction of the ECC correction budget.
  double refresh_margin = 0.5;
};

/// Patrol-scrub statistics.
struct ScrubStats {
  uint64_t ticks = 0;            ///< patrol ticks that ran (not deferred)
  uint64_t deferred_busy = 0;    ///< ticks skipped for foreground traffic
  uint64_t patrol_reads = 0;     ///< pages patrol-read
  uint64_t patrol_uncorrectable = 0;  ///< patrol reads that found decay
  uint64_t refreshes = 0;        ///< proactive block refreshes started
  uint64_t escalations = 0;      ///< patrol-triggered retire chains
  uint64_t retired_blocks = 0;   ///< blocks the scrubber retired
};

/// \brief Background patrol scrubber: the proactive half of the media-
/// reliability story.
///
/// Every `scan_interval` of idle time it ranks the FTL's sealed, quiesced
/// blocks by predicted raw bit-error rate (wear + retention dwell + read
/// disturb, via flash::Array::PredictedBer) and either
///  - refreshes the riskiest block (Ftl::RefreshBlock — relocate + erase,
///    resetting its dwell and disturb counters) when its predicted error
///    mean crosses `refresh_margin` of the ECC budget, or
///  - patrol-reads its valid pages within the `pages_per_sec` token budget
///    to surface latent uncorrectables early; a patrol read that comes
///    back Corruption escalates the block (Ftl::EscalateBlock).
///
/// The scrubber issues only conventional-class I/O through the FTL's
/// scheduler, so destage priority is preserved by construction; the token
/// budget and idle gate bound how much conventional bandwidth it takes.
class PatrolScrubber {
 public:
  PatrolScrubber(sim::Simulator* sim, Ftl* ftl, flash::Array* array,
                 ScrubConfig config);

  PatrolScrubber(const PatrolScrubber&) = delete;
  PatrolScrubber& operator=(const PatrolScrubber&) = delete;

  /// Arm the periodic tick (no-op when already running or not enabled).
  void Start();
  /// Disarm: the pending tick fires but does nothing and does not re-arm.
  void Stop();
  bool running() const { return running_; }

  const ScrubConfig& config() const { return config_; }
  const ScrubStats& stats() const { return stats_; }

  /// Register `scrub.*` metrics under `prefix`.
  void SetMetrics(obs::MetricsRegistry* registry,
                  const std::string& prefix = "");

 private:
  void Tick();
  /// Riskiest sealed + quiesced block, or kUnmapped when none qualify.
  uint64_t PickRiskiest(double* ber_out) const;
  /// Patrol-read up to `budget_` valid pages of `block`.
  void PatrolBlock(uint64_t block);

  sim::Simulator* sim_;
  Ftl* ftl_;
  flash::Array* array_;
  ScrubConfig config_;
  bool running_ = false;
  double budget_ = 0.0;            ///< token bucket, in pages
  sim::SimTime last_refill_ = 0;
  ScrubStats stats_;

  // Observability (null until SetMetrics).
  obs::Counter* m_ticks_ = nullptr;
  obs::Counter* m_deferred_busy_ = nullptr;
  obs::Counter* m_patrol_reads_ = nullptr;
  obs::Counter* m_patrol_uncorrectable_ = nullptr;
  obs::Counter* m_refreshes_ = nullptr;
  obs::Counter* m_escalations_ = nullptr;
  obs::Counter* m_retired_blocks_ = nullptr;
  /// Riskiest block's expected raw errors as a fraction of the ECC
  /// budget; crossing refresh_margin triggers a refresh. Updated each
  /// non-deferred tick — the watchdog's view of media health.
  obs::Gauge* m_refresh_pressure_ = nullptr;
};

}  // namespace xssd::ftl

#endif  // XSSD_FTL_SCRUB_H_
