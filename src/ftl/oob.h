#ifndef XSSD_FTL_OOB_H_
#define XSSD_FTL_OOB_H_

#include <cstdint>
#include <vector>

namespace xssd::ftl {

/// \brief Per-page out-of-band mapping metadata, programmed atomically with
/// the page's data area (the ftl-sim `rebuild_from_oob` idiom).
///
/// `seq` is the *logical* version of the lpn — assigned when the host write
/// is accepted, preserved verbatim when GC relocates the page, so a stale
/// GC copy can never outrank a newer host write during recovery. `stamp` is
/// the *physical* program counter — fresh on every NAND program — and
/// breaks the equal-seq tie a crash between a relocation program and the
/// victim erase leaves behind (the relocated copy always carries the higher
/// stamp).
struct OobMeta {
  uint64_t lpn = 0;
  uint64_t seq = 0;    ///< logical write sequence (host-write order)
  uint64_t stamp = 0;  ///< physical program sequence (NAND program order)

  friend bool operator==(const OobMeta& a, const OobMeta& b) {
    return a.lpn == b.lpn && a.seq == b.seq && a.stamp == b.stamp;
  }
};

/// Encoded OOB record size: three little-endian u64 fields plus a CRC-32C.
inline constexpr uint32_t kOobRecordBytes = 3 * 8 + 4;

/// Serialize `meta` into the wire form stored in a page's spare area.
std::vector<uint8_t> EncodeOob(const OobMeta& meta);

/// Parse an OOB record; false on short buffers or CRC mismatch (a torn or
/// garbage spare area — recovery skips the page).
bool DecodeOob(const std::vector<uint8_t>& raw, OobMeta* out);

}  // namespace xssd::ftl

#endif  // XSSD_FTL_OOB_H_
