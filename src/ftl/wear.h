#ifndef XSSD_FTL_WEAR_H_
#define XSSD_FTL_WEAR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "ftl/mapping.h"

namespace xssd::ftl {

/// \brief Per-block program/erase cycle accounting, the wear-leveling
/// signal for GC victim selection.
///
/// Tracks the FTL's own view of erase counts (mirroring the NAND's), plus
/// the min/max over live (non-retired) blocks; `spread()` is the headline
/// wear-imbalance number the victim selector bounds.
class WearTracker {
 public:
  explicit WearTracker(uint64_t block_count)
      : counts_(block_count, 0), retired_(block_count, false) {}

  void OnErase(uint64_t block) { ++counts_[block]; }

  /// Grown-bad block: excluded from min/max/spread from now on.
  void Retire(uint64_t block) { retired_[block] = true; }

  uint32_t count(uint64_t block) const { return counts_[block]; }
  bool retired(uint64_t block) const { return retired_[block]; }

  /// Min/max erase count over live blocks (0 when everything is retired).
  uint32_t MinCount() const;
  uint32_t MaxCount() const;
  uint32_t Spread() const { return MaxCount() - MinCount(); }

 private:
  std::vector<uint32_t> counts_;
  std::vector<bool> retired_;
};

/// Knobs for wear-aware victim selection.
struct GcTuning {
  /// Blend weight: one erase above the pool minimum costs as much as this
  /// many extra valid pages to relocate. 0 degenerates to pure greedy.
  double wear_alpha = 2.0;
  /// Hard bound on erase-count spread: once Spread() reaches this, victim
  /// selection switches to cold-data migration (collect the least-worn
  /// sealed block so its block rejoins the hot pool) until the spread
  /// recedes.
  uint32_t max_erase_spread = 16;
};

/// \brief Pick a GC victim from `sealed` (oldest-first candidate list).
///
/// Normal mode minimizes `valid_count + wear_alpha * (erase - min_erase)` —
/// greedy on relocation cost, penalizing blocks that are already worn. The
/// penalty saturates just below one block of relocation cost
/// (pages_per_block - 1), so wear bias can steer among comparable victims
/// but never makes a garbage-holding block lose to a garbage-free one.
/// Wear-emergency mode (spread at/above the bound) instead picks the
/// least-worn sealed block regardless of valid count: its cold, never-
/// invalidated data is what pins the spread, and migrating it returns the
/// young block to the erased pool where hot writes level it. Ties break to
/// the earliest (oldest) sealed entry, keeping selection deterministic.
/// Returns kUnmapped when `sealed` is empty.
uint64_t SelectGcVictim(const std::deque<uint64_t>& sealed,
                        const PageMap& map, const WearTracker& wear,
                        const GcTuning& tuning);

}  // namespace xssd::ftl

#endif  // XSSD_FTL_WEAR_H_
