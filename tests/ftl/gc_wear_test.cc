#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "ftl/ftl.h"
#include "ftl/wear.h"
#include "sim/random.h"

namespace xssd::ftl {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;
  g.page_bytes = 4096;
  return g;
}

// ---------------------------------------------------------------------------
// WearTracker unit behavior.

TEST(WearTracker, TracksMinMaxSpreadOverLiveBlocks) {
  WearTracker wear(4);
  EXPECT_EQ(wear.Spread(), 0u);
  wear.OnErase(0);
  wear.OnErase(0);
  wear.OnErase(1);
  EXPECT_EQ(wear.MinCount(), 0u);  // blocks 2, 3 never erased
  EXPECT_EQ(wear.MaxCount(), 2u);
  EXPECT_EQ(wear.Spread(), 2u);
}

TEST(WearTracker, RetiredBlocksLeaveTheSpread) {
  WearTracker wear(3);
  for (int i = 0; i < 9; ++i) wear.OnErase(2);
  EXPECT_EQ(wear.Spread(), 9u);
  wear.Retire(2);  // grown bad: its extreme count no longer matters
  EXPECT_EQ(wear.MaxCount(), 0u);
  EXPECT_EQ(wear.Spread(), 0u);
}

// ---------------------------------------------------------------------------
// SelectGcVictim unit behavior. Victim scores use a PageMap for valid
// counts; block b's pages start at b * pages_per_block.

PageMap MapWithValidCounts(const flash::Geometry& g,
                           const std::vector<uint32_t>& valid_per_block) {
  PageMap map(g, g.pages());
  uint64_t lpn = 0;
  uint64_t seq = 0;
  for (uint64_t b = 0; b < valid_per_block.size(); ++b) {
    for (uint32_t i = 0; i < valid_per_block[b]; ++i) {
      map.Map(lpn++, b * g.pages_per_block + i, ++seq);
    }
  }
  return map;
}

TEST(SelectGcVictim, EmptySealedListYieldsNoVictim) {
  flash::Geometry g = SmallGeometry();
  PageMap map(g, 16);
  WearTracker wear(g.blocks());
  EXPECT_EQ(SelectGcVictim({}, map, wear, GcTuning{}), kUnmapped);
}

TEST(SelectGcVictim, GreedyPrefersFewestValidPages) {
  flash::Geometry g = SmallGeometry();
  PageMap map = MapWithValidCounts(g, {10, 2, 7});
  WearTracker wear(g.blocks());
  EXPECT_EQ(SelectGcVictim({0, 1, 2}, map, wear, GcTuning{}), 1u);
}

TEST(SelectGcVictim, WearPenaltyDivertsFromWornBlock) {
  flash::Geometry g = SmallGeometry();
  // Block 1 is slightly emptier but much more worn; with alpha = 2 the
  // penalty (2 * 4 erases) outweighs its 3-page advantage.
  PageMap map = MapWithValidCounts(g, {5, 2});
  WearTracker wear(g.blocks());
  for (int i = 0; i < 4; ++i) wear.OnErase(1);
  GcTuning tuning;
  tuning.wear_alpha = 2.0;
  tuning.max_erase_spread = 100;  // stay out of emergency mode
  EXPECT_EQ(SelectGcVictim({0, 1}, map, wear, tuning), 0u);
  // Pure greedy (alpha 0) would still pick block 1.
  tuning.wear_alpha = 0.0;
  EXPECT_EQ(SelectGcVictim({0, 1}, map, wear, tuning), 1u);
}

TEST(SelectGcVictim, EmergencyModePicksLeastWornRegardlessOfValid) {
  flash::Geometry g = SmallGeometry();
  // Block 0: cold — never erased and completely full. Block 1: hot and
  // nearly empty. Once the spread hits the bound, the cold block is the
  // victim even though relocating it costs a full block of programs.
  PageMap map = MapWithValidCounts(g, {16, 1});
  WearTracker wear(g.blocks());
  for (int i = 0; i < 8; ++i) wear.OnErase(1);
  GcTuning tuning;
  tuning.max_erase_spread = 8;
  EXPECT_EQ(SelectGcVictim({0, 1}, map, wear, tuning), 0u);
  // Below the bound (and with the wear penalty muted), greediness rules
  // again: at the default alpha block 1's 8-erase penalty would still
  // outweigh its 15-page advantage.
  tuning.max_erase_spread = 9;
  tuning.wear_alpha = 0.0;
  EXPECT_EQ(SelectGcVictim({0, 1}, map, wear, tuning), 1u);
}

TEST(SelectGcVictim, TiesBreakToOldestSealedBlock) {
  flash::Geometry g = SmallGeometry();
  PageMap map = MapWithValidCounts(g, {3, 3, 3});
  WearTracker wear(g.blocks());
  EXPECT_EQ(SelectGcVictim({2, 0, 1}, map, wear, GcTuning{}), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end wear behavior. A hot/cold split is the adversarial workload:
// cold blocks never invalidate, so greedy GC never erases them and the
// erase-count spread grows without bound; the wear-aware selector must
// migrate cold data and keep the spread near the configured bound.

struct ChurnOutcome {
  uint32_t max_spread_seen = 0;
  uint32_t final_spread = 0;
  uint64_t gc_erases = 0;
};

ChurnOutcome RunHotColdChurn(double wear_alpha, uint32_t max_erase_spread,
                             uint64_t seed) {
  sim::Simulator sim;
  flash::Array array(&sim, SmallGeometry(), flash::Timing{},
                     flash::Reliability{}, seed);
  FtlConfig config;
  config.buffer_pages = 16;
  config.flush_watermark = 4;
  config.gc_low_watermark = 4;
  config.gc_wear_alpha = wear_alpha;
  config.gc_max_erase_spread = max_erase_spread;
  Ftl ftl(&sim, &array, config);

  // Cold data: one-shot fill of a range that is never touched again.
  const uint64_t cold_lpns = 160;  // ~10 blocks of immortal data
  for (uint64_t lpn = 0; lpn < cold_lpns; ++lpn) {
    ftl.WriteBuffered(lpn, std::vector<uint8_t>(4096, 0xC0), [](Status) {});
    if (lpn % 16 == 15) sim.Run();
  }
  Status flushed = Status::Internal("pending");
  ftl.Flush([&](Status s) { flushed = s; });
  sim.Run();
  EXPECT_TRUE(flushed.ok());

  // Hot churn: a tiny working set overwritten far past raw capacity,
  // via WriteDirect so every overwrite reaches NAND (buffered writes to a
  // small set would coalesce in the DRAM buffer and starve GC of churn).
  // A separate warm buffered set keeps the conventional stream's write
  // points rolling — a permanently parked write point is a never-sealed,
  // never-erased block that would pin the wear floor outside GC's reach.
  // It must be disjoint from the hot set because a direct write supersedes
  // (and discards) any buffered copy of the same lpn before it can flush.
  sim::Rng rng(seed);
  ChurnOutcome outcome;
  for (int i = 0; i < 9000; ++i) {
    if (i % 8 == 1) {
      uint64_t warm = cold_lpns + 16 + rng.Uniform(32);
      ftl.WriteBuffered(warm,
                        std::vector<uint8_t>(4096, static_cast<uint8_t>(i)),
                        [](Status) {});
    } else {
      uint64_t lpn = cold_lpns + rng.Uniform(16);
      ftl.WriteDirect(IoClass::kDestage, lpn,
                      std::vector<uint8_t>(4096, static_cast<uint8_t>(i)),
                      [](Status) {});
    }
    if (i % 64 == 63) {
      sim.Run();
      outcome.max_spread_seen =
          std::max(outcome.max_spread_seen, ftl.wear().Spread());
    }
  }
  sim.Run();
  outcome.final_spread = ftl.wear().Spread();
  outcome.gc_erases = ftl.stats().gc_erases;
  return outcome;
}

TEST(GcWear, SpreadStaysNearBoundWhileGreedyDiverges) {
  const uint32_t bound = 6;
  ChurnOutcome aware = RunHotColdChurn(2.0, bound, 7);
  // Pure greedy: no wear term, bound effectively disabled.
  ChurnOutcome greedy = RunHotColdChurn(0.0, 0, 7);

  ASSERT_GT(aware.gc_erases, 0u);
  ASSERT_GT(greedy.gc_erases, 0u);
  // Cold blocks pin greedy's minimum at zero forever; the spread ends up
  // far past the bound the wear-aware selector holds.
  EXPECT_GT(greedy.final_spread, bound * 2);
  // Wear-aware: cold migration kicks in at the bound. The pool can
  // overshoot transiently (migration itself costs programs before the
  // young block rejoins), hence the slack of one migration round.
  EXPECT_LE(aware.max_spread_seen, bound + 4);
  EXPECT_LT(aware.max_spread_seen, greedy.max_spread_seen);
}

// GC must make forward progress under a concurrent destage-class stream:
// every write eventually acks OK (no erased-pool starvation turning into
// ResourceExhausted), and destage ops are not priority-inverted behind
// GC's conventional-class traffic when destage has priority.
TEST(GcWear, ForwardProgressUnderConcurrentDestageStream) {
  sim::Simulator sim;
  flash::Array array(&sim, SmallGeometry(), flash::Timing{},
                     flash::Reliability{}, 3);
  FtlConfig config;
  config.buffer_pages = 16;
  config.flush_watermark = 4;
  config.gc_low_watermark = 4;
  Ftl ftl(&sim, &array, config);
  ftl.scheduler().set_policy(SchedulingPolicy::kDestagePriority);

  sim::Rng rng(3);
  int acked = 0;
  int failed = 0;
  const int kWrites = 4000;
  for (int i = 0; i < kWrites; ++i) {
    // Interleave destage-class appends with conventional churn, far past
    // raw capacity so GC storms run concurrently with the stream.
    uint64_t lpn = rng.Uniform(64);
    auto done = [&](Status status) {
      status.ok() ? ++acked : ++failed;
    };
    if (i % 2 == 0) {
      ftl.WriteDirect(IoClass::kDestage, lpn,
                      std::vector<uint8_t>(4096, static_cast<uint8_t>(i)), done);
    } else {
      ftl.WriteBuffered(lpn, std::vector<uint8_t>(4096, static_cast<uint8_t>(i)), done);
    }
    if (i % 32 == 31) sim.Run();
  }
  sim.Run();

  EXPECT_EQ(acked, kWrites);
  EXPECT_EQ(failed, 0);  // GC kept the erased pool alive throughout
  EXPECT_GT(ftl.stats().gc_erases, 0u);
  EXPECT_GT(ftl.free_blocks(), 0u);

  // Destage priority held: per-op queue wait for the destage class stays
  // below the conventional class's (GC relocation traffic rides there).
  const Scheduler& sched = ftl.scheduler();
  ASSERT_GT(sched.issued(IoClass::kDestage), 0u);
  ASSERT_GT(sched.issued(IoClass::kConventional), 0u);
  double destage_wait = static_cast<double>(sched.wait_ns(IoClass::kDestage)) /
                        static_cast<double>(sched.issued(IoClass::kDestage));
  double conv_wait =
      static_cast<double>(sched.wait_ns(IoClass::kConventional)) /
      static_cast<double>(sched.issued(IoClass::kConventional));
  EXPECT_LT(destage_wait, conv_wait);
}

}  // namespace
}  // namespace xssd::ftl
