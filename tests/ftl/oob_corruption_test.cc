// Corrupted-OOB differential test: flipping bytes in stored OOB records
// must make the recovery scan skip exactly the affected copies (CRC/framing
// rejects), never mis-map them — the rebuilt map equals the live map minus
// the corrupted pages.

#include <gtest/gtest.h>

#include <vector>

#include "check/mapping_oracle.h"
#include "flash/array.h"
#include "ftl/ftl.h"
#include "sim/random.h"

namespace xssd::ftl {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;
  g.page_bytes = 4096;
  return g;
}

class OobCorruptionTest : public ::testing::Test {
 protected:
  OobCorruptionTest()
      : array_(&sim_, SmallGeometry(), flash::Timing{}, flash::Reliability{},
               3),
        ftl_(&sim_, &array_, FtlConfig{}) {}

  /// Write each of the first `count` lpns exactly once and push everything
  /// to NAND (single copies: no stale duplicates to resurrect).
  void FillOnce(uint64_t count) {
    for (uint64_t lpn = 0; lpn < count; ++lpn) {
      ftl_.WriteBuffered(lpn, std::vector<uint8_t>(4096, uint8_t(lpn)),
                         [](Status status) { ASSERT_TRUE(status.ok()); });
      if (lpn % 64 == 63) sim_.Run();
    }
    bool flushed = false;
    ftl_.Flush([&](Status) { flushed = true; });
    sim_.RunWhile([&]() { return flushed; });
    sim_.Run();  // drain writebacks completely
  }

  sim::Simulator sim_;
  flash::Array array_;
  Ftl ftl_;
};

TEST_F(OobCorruptionTest, CorruptedRecordsAreSkippedNotMisMapped) {
  FillOnce(256);
  // Baseline: clean flash rebuilds exactly.
  ASSERT_TRUE(check::CheckRebuildMatches(ftl_, array_.geometry()).empty());

  // Corrupt the OOB of the live copies of a seeded sample of lpns, at
  // varying byte offsets — header, middle, and tail of the record.
  sim::Rng rng(99);
  std::vector<uint64_t> victims;
  while (victims.size() < 12) {
    uint64_t lpn = rng.Uniform(256);
    bool seen = false;
    for (uint64_t v : victims) seen |= (v == lpn);
    if (seen) continue;  // one flip per page: flips must never cancel out
    uint64_t ppn = ftl_.page_map().Lookup(lpn);
    ASSERT_NE(ppn, kUnmapped);
    flash::Address addr = flash::AddressOfPage(array_.geometry(), ppn);
    ASSERT_TRUE(array_.CorruptOob(addr, static_cast<size_t>(rng.Uniform(32)),
                                  static_cast<uint8_t>(1 + rng.Uniform(255))));
    victims.push_back(lpn);
  }

  RebuildReport report;
  PageMap rebuilt = ftl_.RebuildFromOob(&report);
  // Every corrupted record was rejected by CRC/framing — none slipped
  // through as a plausible mapping.
  EXPECT_GE(report.oob_decode_failures, victims.size());
  EXPECT_EQ(report.mapped, ftl_.page_map().mapped_pages() - victims.size());

  // Differential: victims drop out (each was the lpn's only copy), every
  // other lpn maps identically to the live map.
  for (uint64_t lpn = 0; lpn < 256; ++lpn) {
    bool is_victim = false;
    for (uint64_t v : victims) is_victim |= (v == lpn);
    if (is_victim) {
      EXPECT_EQ(rebuilt.Lookup(lpn), kUnmapped) << "lpn " << lpn;
    } else {
      EXPECT_EQ(rebuilt.Lookup(lpn), ftl_.page_map().Lookup(lpn))
          << "lpn " << lpn;
      EXPECT_EQ(rebuilt.SeqOf(lpn), ftl_.page_map().SeqOf(lpn))
          << "lpn " << lpn;
    }
  }
  // The rebuilt map is still structurally sound.
  std::vector<check::Divergence> structural =
      check::CheckMappingConsistent(rebuilt, array_.geometry());
  EXPECT_TRUE(structural.empty())
      << structural[0].rule << " — " << structural[0].detail;
}

TEST_F(OobCorruptionTest, EveryByteOfTheRecordIsCovered) {
  // A single-byte flip at ANY offset in the record must be detected: walk
  // one page's whole OOB record byte by byte, rebuilding after each flip
  // (and undoing it after — XOR twice restores the original).
  FillOnce(64);
  uint64_t lpn = 7;
  uint64_t ppn = ftl_.page_map().Lookup(lpn);
  ASSERT_NE(ppn, kUnmapped);
  flash::Address addr = flash::AddressOfPage(array_.geometry(), ppn);
  const std::vector<uint8_t>* oob = array_.PeekOob(addr);
  ASSERT_NE(oob, nullptr);
  const size_t record_len = oob->size();
  for (size_t index = 0; index < record_len; ++index) {
    ASSERT_TRUE(array_.CorruptOob(addr, index, 0x5A));
    RebuildReport report;
    PageMap rebuilt = ftl_.RebuildFromOob(&report);
    EXPECT_EQ(rebuilt.Lookup(lpn), kUnmapped)
        << "flip at byte " << index << " went undetected";
    EXPECT_GE(report.oob_decode_failures, 1u) << "byte " << index;
    ASSERT_TRUE(array_.CorruptOob(addr, index, 0x5A));  // restore
  }
  // Restored record: the scan believes the copy again.
  EXPECT_TRUE(check::CheckRebuildMatches(ftl_, array_.geometry()).empty());
}

}  // namespace
}  // namespace xssd::ftl
