#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/mapping_oracle.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "ftl/ftl.h"
#include "sim/random.h"

namespace xssd::ftl {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;
  g.page_bytes = 4096;
  return g;
}

FtlConfig ChurnConfig() {
  FtlConfig config;
  config.buffer_pages = 16;
  config.flush_watermark = 4;
  config.gc_low_watermark = 4;
  return config;
}

// Run a mixed buffered/destage churn workload until the injector's crash
// clause fires (or the op budget runs out), then drain in-flight NAND
// operations — the power-cut model: issued physics completes, the firmware
// initiates nothing new (Ftl freezes GC and writeback once crashed).
struct CrashRun {
  sim::Simulator sim;
  flash::Array array;
  fault::FaultInjector injector;
  Ftl ftl;

  CrashRun(const fault::FaultPlan& plan, uint64_t seed)
      : array(&sim, SmallGeometry(), flash::Timing{}, flash::Reliability{},
              seed),
        injector(&sim, plan, seed),
        ftl(&sim, &array, ChurnConfig()) {
    ftl.SetFaultInjector(&injector, "");
  }

  bool ChurnUntilCrash(uint64_t seed, int max_ops) {
    sim::Rng rng(seed);
    for (int i = 0; i < max_ops; ++i) {
      // A wide working set (most of the 448 lpns) keeps GC victims
      // carrying valid pages, so the relocation crash sites are actually
      // visited; a narrow set invalidates victims completely and GC
      // degenerates to erase-only.
      uint64_t lpn = rng.Uniform(320);
      uint8_t fill = static_cast<uint8_t>(rng.Next());
      if (i % 3 == 0) {
        ftl.WriteDirect(IoClass::kDestage, lpn,
                        std::vector<uint8_t>(4096, fill), [](Status) {});
      } else {
        ftl.WriteBuffered(lpn, std::vector<uint8_t>(4096, fill),
                          [](Status) {});
      }
      if (i % 32 == 31) {
        sim.Run();
        if (injector.crashed()) break;
      }
    }
    sim.Run();  // drain whatever the cut left in flight
    return injector.crashed();
  }
};

// The tentpole acceptance check: at every injected crash site — including
// mid-GC relocation and the window between relocation and victim erase —
// RebuildFromOob() reproduces the pre-crash mapping byte-identically
// (PageMap::operator==, surfaced through the check-layer oracle).
TEST(Recovery, MidGcCrashRebuildsExactly) {
  struct Case {
    const char* site;
    uint32_t after_hits;
  };
  const Case cases[] = {
      {"ftl.gc.relocate", 1},  {"ftl.gc.relocate", 2},
      {"ftl.gc.relocate", 7},  {"ftl.gc.relocate", 33},
      {"ftl.gc.relocate", 90}, {"ftl.gc.erase", 1},
      {"ftl.gc.erase", 2},     {"ftl.gc.erase", 5},
      {"ftl.gc.erase", 11},
  };
  for (const Case& c : cases) {
    fault::FaultPlan plan =
        fault::FaultPlanBuilder("mid-gc-cut")
            .Crash(c.site, c.after_hits, /*graceful=*/false)
            .Build();
    CrashRun run(plan, /*seed=*/c.after_hits + 100);
    ASSERT_TRUE(run.ChurnUntilCrash(c.after_hits + 100, 6000))
        << c.site << " hit " << c.after_hits << " never fired";

    std::vector<check::Divergence> live_check = check::CheckMappingConsistent(
        run.ftl.page_map(), run.array.geometry());
    ASSERT_TRUE(live_check.empty())
        << c.site << "#" << c.after_hits << ": " << live_check[0].detail;

    std::vector<check::Divergence> divergences =
        check::CheckRebuildMatches(run.ftl, run.array.geometry());
    EXPECT_TRUE(divergences.empty())
        << c.site << "#" << c.after_hits << ": " << divergences[0].rule
        << " — " << divergences[0].detail;
  }
}

// A crash between relocation and erase leaves two flash copies of each
// relocated lpn carrying the same logical version; the stamp tie-break
// must resolve every one to the relocation destination.
TEST(Recovery, DuplicateCopiesResolveByStamp) {
  fault::FaultPlan plan = fault::FaultPlanBuilder("pre-erase-cut")
                              .Crash("ftl.gc.erase", 2, /*graceful=*/false)
                              .Build();
  CrashRun run(plan, 42);
  ASSERT_TRUE(run.ChurnUntilCrash(42, 6000));

  RebuildReport report;
  PageMap rebuilt = run.ftl.RebuildFromOob(&report);
  EXPECT_TRUE(rebuilt == run.ftl.page_map());
  // The frozen victim still holds its pre-relocation copies, so the scan
  // must have seen (and discarded) superseded duplicates.
  EXPECT_GT(report.stale_copies, 0u);
  EXPECT_EQ(report.oob_decode_failures, 0u);
  EXPECT_EQ(report.mapped, run.ftl.page_map().mapped_pages());
}

// Recovery is a pure function of flash state: scanning twice yields
// identical maps and identical reports.
TEST(Recovery, RebuildIsDeterministic) {
  fault::FaultPlan plan = fault::FaultPlanBuilder("cut")
                              .Crash("ftl.gc.relocate", 5, /*graceful=*/false)
                              .Build();
  CrashRun run(plan, 9);
  ASSERT_TRUE(run.ChurnUntilCrash(9, 6000));

  RebuildReport first_report;
  RebuildReport second_report;
  PageMap first = run.ftl.RebuildFromOob(&first_report);
  PageMap second = run.ftl.RebuildFromOob(&second_report);
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first_report.pages_scanned, second_report.pages_scanned);
  EXPECT_EQ(first_report.stale_copies, second_report.stale_copies);
  EXPECT_EQ(first_report.mapped, second_report.mapped);
}

// Without any crash the same oracle holds after heavy churn — the recovery
// path is exercised against ordinary steady-state flash, not only frozen
// mid-GC snapshots.
TEST(Recovery, CleanShutdownRebuildsExactly) {
  fault::FaultPlan empty_plan;
  CrashRun run(empty_plan, 17);
  EXPECT_FALSE(run.ChurnUntilCrash(17, 4000));
  EXPECT_GT(run.ftl.stats().gc_erases, 0u);  // churn actually forced GC
  std::vector<check::Divergence> divergences =
      check::CheckRebuildMatches(run.ftl, run.array.geometry());
  EXPECT_TRUE(divergences.empty())
      << divergences[0].rule << " — " << divergences[0].detail;
}

}  // namespace
}  // namespace xssd::ftl
